// Package repro is a from-scratch Go reproduction of "Time-Warp: Lightweight
// Abort Minimization in Transactional Memory" (Diegues and Romano, PPoPP
// 2014).
//
// The repository contains the paper's contribution — the Time-Warp
// Multi-version STM (internal/core) — together with everything its evaluation
// depends on: four baseline STM engines (internal/tl2, internal/norec,
// internal/jvstm, internal/avstm) behind one object-based TM API
// (internal/stm), a transactional data-structure library (internal/ds/...),
// Go ports of six STAMP applications (internal/stamp/...), an Adya-style
// serializability oracle (internal/dsg), and a benchmark harness plus CLI
// (internal/bench, cmd/twm-bench) that regenerates every table and figure of
// the paper's §5.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for measured results.
package repro
