// Concurrentset runs the paper's §5.1 scenario interactively: a shared
// transactional skip list hammered by mixed lookup/insert/remove goroutines,
// executed on every engine in the repository, printing throughput and the
// abort-rate split per engine — a miniature of Fig. 3.
//
// Run with:
//
//	go run ./examples/concurrentset
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ds/skiplist"
	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/xrand"
)

const (
	workers  = 16
	elements = 2000
	keyRange = 4000
	duration = 300 * time.Millisecond
)

func main() {
	fmt.Printf("skip list, %d initial elements, 25%% updates, %d workers, %v per engine\n\n",
		elements, workers, duration)
	fmt.Printf("%-8s  %12s  %8s  %s\n", "engine", "ops/s", "aborts%", "abort reasons")
	for _, name := range engines.PaperSet() {
		run(name)
	}
}

func run(name string) {
	tm := engines.MustNew(name)
	set := skiplist.New(tm)

	// Populate.
	r := xrand.New(42)
	for done := 0; done < elements; {
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			for i := 0; i < 128 && done < elements; i++ {
				if set.Insert(tx, r.Int63()%keyRange) {
					done++
				}
			}
			return nil
		}); err != nil {
			panic(err)
		}
	}
	tm.Stats().Reset()

	var (
		stop bool
		mu   sync.Mutex
		ops  int
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			n := 0
			for {
				mu.Lock()
				s := stop
				mu.Unlock()
				if s {
					break
				}
				k := r.Int63() % keyRange
				switch {
				case r.Bool(0.25):
					_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
						if r.Bool(0.5) {
							set.Insert(tx, k)
						} else {
							set.Remove(tx, k)
						}
						return nil
					})
				default:
					_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
						set.Contains(tx, k)
						return nil
					})
				}
				n++
			}
			mu.Lock()
			ops += n
			mu.Unlock()
		}(uint64(w + 1))
	}
	time.Sleep(duration)
	mu.Lock()
	stop = true
	mu.Unlock()
	wg.Wait()

	snap := tm.Stats().Snapshot()
	fmt.Printf("%-8s  %12.0f  %8.2f  %v\n",
		name, float64(ops)/duration.Seconds(), snap.AbortRate()*100, snap.ByReason)
}
