// Hybrid demonstrates the paper's §6 future-work direction: a best-effort
// (simulated) hardware TM with TWM as the software fallback path. It sweeps
// hardware reliability and prints where transactions ended up committing —
// showing how the fallback engine absorbs load as the hardware degrades.
//
// Run with:
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/hytm"
	"repro/internal/stm"
	"repro/internal/xrand"
)

func main() {
	fmt.Println("hybrid TM: simulated best-effort hardware, TWM software fallback")
	fmt.Printf("%-22s %10s %10s %10s %10s\n",
		"hardware profile", "hw-commit", "conflict", "capacity", "fallback")
	run("reliable hardware", hytm.Options{})
	run("flaky (30% aborts)", hytm.Options{AbortProb: 0.3})
	run("tiny capacity", hytm.Options{MaxReads: 6, MaxWrites: 2})
	run("nearly useless (90%)", hytm.Options{AbortProb: 0.9, HWAttempts: 2})
}

func run(label string, opts hytm.Options) {
	tm := hytm.New(core.New(core.Options{}), opts)
	const nv = 64
	vars := make([]stm.Var, nv)
	for i := range vars {
		vars[i] = tm.NewVar(0)
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(r *xrand.Rand) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				// Mostly small transfers; occasionally a big sweep that
				// exceeds small hardware capacities.
				if r.Bool(0.05) {
					_ = tm.Atomically(false, func(tx stm.Tx) error {
						sum := 0
						for _, v := range vars[:16] {
							sum += tx.Read(v).(int)
						}
						tx.Write(vars[0], sum-sum) // keep totals at zero
						return nil
					})
					continue
				}
				i, j := r.Intn(nv), r.Intn(nv)
				_ = tm.Atomically(false, func(tx stm.Tx) error {
					tx.Write(vars[i], tx.Read(vars[i]).(int)+1)
					tx.Write(vars[j], tx.Read(vars[j]).(int)-1)
					return nil
				})
			}
		}(xrand.New(uint64(g + 1)))
	}
	wg.Wait()

	s := tm.HybridStats()
	fmt.Printf("%-22s %10d %10d %10d %10d\n", label,
		s.HWCommits.Load(), s.HWConflicts.Load(), s.HWCapacity.Load(), s.Fallbacks.Load())
}
