// Scheduler is a priority task dispatcher built on the transactional pairing
// heap: producers submit deadline-ordered jobs while a worker pool claims
// the most urgent one, atomically, with no locks in application code.
//
// Run with:
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/ds/pheap"
	"repro/internal/stm"
	"repro/internal/xrand"
)

type job struct {
	id       int
	deadline int64
}

func main() {
	tm := core.New(core.Options{})
	queue := pheap.New(tm)
	submitted := stm.NewTVar(tm, 0)

	const producers, jobsEach, workers = 3, 40, 4
	totalJobs := producers * jobsEach

	// Producers submit jobs with random deadlines.
	var pg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pg.Add(1)
		go func(p int, r *xrand.Rand) {
			defer pg.Done()
			for i := 0; i < jobsEach; i++ {
				j := job{id: p*jobsEach + i, deadline: int64(r.Intn(10_000))}
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					queue.Insert(tx, j.deadline, j)
					submitted.Set(tx, submitted.Get(tx)+1)
					return nil
				}); err != nil {
					panic(err)
				}
			}
		}(p, xrand.New(uint64(p+1)))
	}

	// Workers drain by urgency.
	var mu sync.Mutex
	executed := make([]job, 0, totalJobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var j job
				var got, done bool
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					got, done = false, false
					if _, v, ok := queue.DeleteMin(tx); ok {
						j, got = v.(job), true
						return nil
					}
					// Queue empty: finished only if all jobs were submitted.
					done = submitted.Get(tx) == totalJobs
					return nil
				}); err != nil {
					panic(err)
				}
				if got {
					mu.Lock()
					executed = append(executed, j)
					mu.Unlock()
					continue
				}
				if done {
					return
				}
			}
		}()
	}
	pg.Wait()
	wg.Wait()

	// Report: every job ran exactly once; urgency order is respected in
	// aggregate (later-claimed jobs can only have later-or-equal deadlines
	// among those present at claim time, so a full sort check is too strong;
	// we report the inversion fraction instead).
	seen := map[int]bool{}
	for _, j := range executed {
		if seen[j.id] {
			panic("job executed twice")
		}
		seen[j.id] = true
	}
	inversions := 0
	for i := 1; i < len(executed); i++ {
		if executed[i].deadline < executed[i-1].deadline {
			inversions++
		}
	}
	deadlines := make([]int64, len(executed))
	for i, j := range executed {
		deadlines[i] = j.deadline
	}
	sorted := sort.SliceIsSorted(deadlines, func(i, j int) bool { return deadlines[i] < deadlines[j] })

	fmt.Printf("executed %d/%d jobs exactly once\n", len(executed), totalJobs)
	fmt.Printf("deadline inversions: %d (%.1f%%; racing producers make a few inevitable, fully sorted=%v)\n",
		inversions, float64(inversions)/float64(len(executed))*100, sorted)
	snap := tm.Stats().Snapshot()
	fmt.Printf("transactions: %d committed, %d restarted\n", snap.Commits, snap.Aborts)
}
