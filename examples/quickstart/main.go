// Quickstart: concurrent bank transfers on the Time-Warp Multi-version STM.
//
// Run with:
//
//	go run ./examples/quickstart
//
// Ten goroutines shuffle money between eight accounts while a read-only
// auditor continuously checks that the total is conserved — read-only
// transactions in TWM never abort and always see a consistent snapshot.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/xrand"
)

func main() {
	tm := core.New(core.Options{})

	const accounts = 8
	const initial = 100
	accs := make([]*stm.TVar[int], accounts)
	for i := range accs {
		accs[i] = stm.NewTVar(tm, initial)
	}

	transfer := func(from, to, amount int) error {
		return stm.Atomically(tm, false, func(tx stm.Tx) error {
			balance := accs[from].Get(tx)
			if balance < amount {
				return fmt.Errorf("insufficient funds in account %d", from)
			}
			// The balance guard makes this read-then-write window inherent;
			// the directive below is how twm-lint suppressions look.
			accs[from].Set(tx, balance-amount) //twm:allow abortshape balance check precedes the debit by design
			accs[to].Set(tx, accs[to].Get(tx)+amount)
			return nil
		})
	}

	audit := func() int {
		total := 0
		if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
			total = 0
			for _, a := range accs {
				total += a.Get(tx)
			}
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		return total
	}

	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			for i := 0; i < 500; i++ {
				from, to := r.Intn(accounts), r.Intn(accounts)
				if from == to {
					continue
				}
				_ = transfer(from, to, 1+r.Intn(25)) // insufficient funds is fine
			}
		}(uint64(g + 1))
	}

	done := make(chan struct{})
	go func() { // auditor
		for {
			select {
			case <-done:
				return
			default:
			}
			if total := audit(); total != accounts*initial {
				log.Fatalf("audit failed: total = %d", total)
			}
		}
	}()
	wg.Wait()
	close(done)

	fmt.Printf("final total: %d (expected %d)\n", audit(), accounts*initial)
	snap := tm.Stats().Snapshot()
	fmt.Printf("commits: %d (read-only %d), restarts: %d, abort rate: %.1f%%\n",
		snap.Commits, snap.ROCommits, snap.Aborts, snap.AbortRate()*100)
	// Snapshot every balance in one read-only transaction, then print outside
	// it: bodies re-execute on abort, so printing inside would duplicate lines.
	balances := make([]int, len(accs))
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		for i, a := range accs {
			balances[i] = a.Get(tx)
		}
		return nil
	})
	for i, b := range balances {
		fmt.Printf("  account %d: %d\n", i, b)
	}
}
