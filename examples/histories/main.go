// Histories replays the example executions from the paper — the Fig. 1
// linked-list history of §1.1 and the four abstract histories of Fig. 2 —
// against the real TWM engine, printing the decision it takes for each
// (commit in the present, time-warp commit in the past, or abort) together
// with the two commit orders N and TW.
//
// Run with:
//
//	go run ./examples/histories
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stm"
)

func main() {
	fig1()
	fig2a()
	fig2b()
	fig2cd()
}

func describe(tm *core.TM, name string, tx stm.Tx, committed bool) {
	if !committed {
		fmt.Printf("  %s: ABORTED\n", name)
		return
	}
	nat, tw := tm.CommitOrders(tx)
	switch {
	case nat == 0:
		fmt.Printf("  %s: committed (read-only)\n", name)
	case tw < nat:
		fmt.Printf("  %s: TIME-WARP commit, serialized at TW=%d (natural order N=%d)\n", name, tw, nat)
	default:
		fmt.Printf("  %s: committed in the present (N=TW=%d)\n", name, nat)
	}
}

// fig1 is the sorted linked-list history of §1.1: T1 (read-only lookup), T2
// inserts B near the head, T3 removes E near the tail. Classic validation
// aborts T3; TWM serializes it before T2.
func fig1() {
	fmt.Println("Fig. 1 — linked list [A D E]; T2 inserts B, T3 removes E:")
	tm := core.New(core.Options{})
	aNext := tm.NewVar("D")
	dNext := tm.NewVar("E")

	t1 := tm.Begin(true) // contains(D)?
	_ = t1.Read(aNext)
	ok1 := tm.Commit(t1)
	describe(tm, "T1 (lookup D)", t1, ok1)

	t3 := tm.Begin(false) // remove E: reads A.next, writes D.next
	_ = t3.Read(aNext)
	_ = t3.Read(dNext)
	t3.Write(dNext, "nil")

	t2 := tm.Begin(false) // insert B: reads+writes A.next
	_ = t2.Read(aNext)
	t2.Write(aNext, "B")
	ok2 := tm.Commit(t2)
	describe(tm, "T2 (insert B)", t2, ok2)

	ok3 := tm.Commit(t3)
	describe(tm, "T3 (remove E)", t3, ok3)
	fmt.Println("  equivalent serial history: T1 -> T3 -> T2")
	fmt.Println()
}

// fig2a: B misses the writes of two concurrent committers A1 and A2 and
// time-warp commits before both (Rule 1: TW(B) = N(A1)).
func fig2a() {
	fmt.Println("Fig. 2(a) — B reads y,z and writes x; A1 overwrites y, A2 overwrites z:")
	tm := core.New(core.Options{})
	x, y, z := tm.NewVar(0), tm.NewVar(0), tm.NewVar(0)

	b := tm.Begin(false)
	_ = b.Read(y)
	_ = b.Read(z)
	b.Write(x, 1)

	a1 := tm.Begin(false)
	a1.Write(y, 1)
	describe(tm, "A1 (write y)", a1, tm.Commit(a1))
	a2 := tm.Begin(false)
	a2.Write(z, 1)
	describe(tm, "A2 (write z)", a2, tm.Commit(a2))
	describe(tm, "B  (read y,z; write x)", b, tm.Commit(b))
	fmt.Println()
}

// fig2b: the triad. The read-only C makes its read of x semi-visible, so the
// pivot B (which also missed A's write) fails Rule 2 and aborts.
func fig2b() {
	fmt.Println("Fig. 2(b) — triad: C (read-only) reads x; B writes x and missed A's write to y:")
	tm := core.New(core.Options{})
	x, y, z := tm.NewVar(0), tm.NewVar(0), tm.NewVar(0)

	b := tm.Begin(false)
	_ = b.Read(y)
	b.Write(x, 1)

	a := tm.Begin(false)
	a.Write(y, 1)
	describe(tm, "A (write y)", a, tm.Commit(a))

	c := tm.Begin(true)
	_ = c.Read(x)
	_ = c.Read(z)
	describe(tm, "C (read-only, reads x)", c, tm.Commit(c))

	describe(tm, "B (pivot)", b, tm.Commit(b))
	fmt.Println("  B raised both source and target flags -> Rule 2 abort")
	fmt.Println()
}

// fig2cd: visibility of a time-warped version. A read-only transaction whose
// snapshot covers TW(B) observes B's write (Fig. 2(c)); an update transaction
// in the same position must not, and early-aborts when it would skip the
// time-warped version (the situation Fig. 2(d) guards against).
func fig2cd() {
	fmt.Println("Fig. 2(c)/(d) — observing a time-warp committed version:")
	tm := core.New(core.Options{})
	x, y := tm.NewVar(0), tm.NewVar(0)

	b := tm.Begin(false)
	_ = b.Read(y)
	b.Write(x, 7)

	a := tm.Begin(false)
	a.Write(y, 1)
	describe(tm, "A (write y)", a, tm.Commit(a))

	ro := tm.Begin(true)  // snapshot after N(A)
	up := tm.Begin(false) // update transaction, same snapshot
	describe(tm, "B (write x)", b, tm.Commit(b))

	fmt.Printf("  read-only snapshot sees x = %v (includes the time-warped version)\n", ro.Read(x))
	_ = tm.Commit(ro)

	func() {
		defer func() {
			if recover() != nil {
				fmt.Println("  update transaction reading x: EARLY ABORT (Rule 2, skipped a time-warped version)")
				tm.Abort(up)
			}
		}()
		_ = up.Read(x)
		fmt.Println("  update transaction unexpectedly read x")
	}()
	fmt.Println()
}
