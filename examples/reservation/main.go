// Reservation is a miniature travel-booking service composed from the public
// pieces of this repository: TWM as the engine, transactional treap tables
// for inventory, and multi-step business transactions (quote across tables,
// then book atomically). It is the vacation benchmark's domain, written the
// way an application author would use the library.
//
// Run with:
//
//	go run ./examples/reservation
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/ds/treap"
	"repro/internal/stm"
	"repro/internal/xrand"
)

// Room is an immutable inventory row; bookings replace the row.
type Room struct {
	Capacity int
	Booked   int
	Price    int
}

const (
	hotels    = 200
	travelers = 12
	tripsEach = 150
)

func main() {
	tm := core.New(core.Options{})
	inventory := treap.New(tm)
	revenue := stm.NewTVar(tm, 0)

	// Load inventory.
	seedRng := xrand.New(7)
	if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
		for id := int64(0); id < hotels; id++ {
			inventory.Put(tx, id, Room{Capacity: 2 + seedRng.Intn(4), Price: 80 + seedRng.Intn(220)})
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// bookCheapest scans a random window of hotels for the cheapest room with
	// capacity left and books it, paying into revenue — all in one atomic
	// transaction.
	bookCheapest := func(r *xrand.Rand) (booked bool) {
		from := int64(r.Intn(hotels))
		err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			booked = false
			bestID, bestPrice := int64(-1), 1<<30
			seen := 0
			inventory.RangeFrom(tx, from, func(id int64, v stm.Value) bool {
				room := v.(Room)
				if room.Booked < room.Capacity && room.Price < bestPrice {
					bestID, bestPrice = id, room.Price
				}
				seen++
				return seen < 20 // quote window
			})
			if bestID < 0 {
				return nil
			}
			v, _ := inventory.Get(tx, bestID)
			room := v.(Room)
			if room.Booked >= room.Capacity {
				return nil
			}
			room.Booked++
			inventory.Put(tx, bestID, room)
			revenue.Set(tx, revenue.Get(tx)+room.Price)
			booked = true
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		return booked
	}

	var wg sync.WaitGroup
	var bookedTotal sync.Map
	for tr := 0; tr < travelers; tr++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(uint64(id + 1))
			n := 0
			for i := 0; i < tripsEach; i++ {
				if bookCheapest(r) {
					n++
				}
			}
			bookedTotal.Store(id, n)
		}(tr)
	}
	wg.Wait()

	// Audit: revenue must equal the sum over rooms of booked*price, and no
	// room may be overbooked. The body only snapshots — bodies re-execute on
	// abort, so it resets its accumulators each attempt and all reporting
	// (printing, log.Fatalf) happens after the transaction commits.
	var (
		want, got    int
		rooms, taken int
		overbooked   []string
	)
	if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
		want, rooms, taken = 0, 0, 0
		overbooked = overbooked[:0]
		inventory.ForEach(tx, func(id int64, v stm.Value) bool {
			room := v.(Room)
			if room.Booked > room.Capacity {
				overbooked = append(overbooked, fmt.Sprintf("hotel %d overbooked: %+v", id, room))
			}
			want += room.Booked * room.Price
			rooms += room.Capacity
			taken += room.Booked
			return true
		})
		got = revenue.Get(tx)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	for _, msg := range overbooked {
		log.Fatal(msg)
	}
	fmt.Printf("rooms booked: %d / %d capacity\n", taken, rooms)
	fmt.Printf("revenue: %d (audit says %d) — %s\n", got, want, check(got == want))

	snap := tm.Stats().Snapshot()
	fmt.Printf("transactions: %d committed, %d restarted (%.1f%% abort rate)\n",
		snap.Commits, snap.Aborts, snap.AbortRate()*100)
}

func check(ok bool) string {
	if ok {
		return "consistent"
	}
	return "INCONSISTENT"
}
