package stm

// LSN is a log sequence number: the count of records a CommitLogger has
// accepted so far. LSNs are dense and monotone, so "everything at or below
// lsn is durable" is a single watermark comparison.
type LSN uint64

// LoggedWrite is one variable write inside a logged commit. VarID is the
// engine's stable per-TM variable id (stm.IDedVar); the value must be of a
// loggable type (the wal package's codec accepts nil, bool, int, int64,
// uint64, float64, string and []byte).
type LoggedWrite struct {
	VarID uint64
	Value Value
}

// CommitRecord is the write set of one committed update transaction in the
// engine's serialization order.
//
// Serial is the transaction's serialization key: the time-warp commit order
// (twOrder) for TWM, the write version for JVSTM. Tie is TWM's natural commit
// order and breaks Serial ties the same way the in-memory version chains do:
// when a time-warp clash elides a later natural committer onto an equal
// Serial, the surviving (readable) version is the one with the smallest Tie.
// Replay therefore folds records per variable as "max Serial wins; on equal
// Serial, min Tie wins", which reproduces exactly the chain head a reader at
// the recovered clock would observe. Engines without a natural/warp split
// log Tie == 0.
type CommitRecord struct {
	Serial uint64
	Tie    uint64
	Writes []LoggedWrite
	// Shards is the commit's clock-shard vector: the sorted set of clock
	// shards the write set touched, as assigned by the engine's sharder.
	// Serial is drawn from (and comparable within) exactly these shards'
	// number lines — a cross-shard commit raises every listed shard's clock
	// to Serial before the record is appended, so recovery's per-shard
	// max-Serial fold stays correct. Nil/empty means the engine ran unsharded
	// (ClockShards == 1, shard 0 implied); the WAL encodes that case
	// byte-identically to the pre-sharding format.
	Shards []uint32
}

// CommitLogger is the durability seam on an engine's commit path. Engines
// that are handed a logger call it in two phases around version install:
//
//   - Append is called with the committing transactions' write locks still
//     held, after validation has succeeded but BEFORE any new version becomes
//     visible to other transactions. The slice holds the write sets committing
//     under one clock advance — one element on the serial path, the whole
//     batch (in natural-commit order) from a group-commit leader. Because no
//     write is visible before its record is appended, append order respects
//     the reads-from order of the history: a crash can only lose a
//     dependency-closed suffix, so any recovered prefix is serializable.
//     An Append error aborts the commit (stm.ReasonDurability) — nothing was
//     installed, so the engine's memory state is untouched.
//   - Durable is called after the versions are installed and unlocked, with
//     the LSN Append returned. It blocks until that record is durable under
//     the logger's fsync policy (per-commit: an fsync covering the LSN has
//     completed; interval: returns immediately) — only then does the commit
//     report success to its caller, so an acknowledged commit is exactly as
//     durable as the policy promises.
//
// Implementations must be safe for concurrent use; Append calls themselves
// are naturally serialized per clock domain (the caller holds write locks),
// but Durable is invoked from many goroutines at once. The interface is
// engine-facing commit-path code: the txpurity analyzer exempts
// implementations from transaction-body purity checks, because a logger
// method runs exactly once per commit, never inside a re-executable body.
type CommitLogger interface {
	Append(recs []CommitRecord) (LSN, error)
	Durable(lsn LSN) error
}
