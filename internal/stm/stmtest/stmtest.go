// Package stmtest is a conformance suite run against every engine in this
// repository. It checks the transactional semantics all five STMs must share
// (atomicity, isolation, serializability-sensitive invariants) and the
// per-engine guarantees the TWM paper relies on (abort-free read-only
// transactions for the multi-version engines).
package stmtest

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/stm"
)

// Options selects the optional guarantees to verify.
type Options struct {
	// RONeverAborts asserts that read-only transactions are never restarted
	// (mv-permissiveness): true for TWM and JVSTM.
	RONeverAborts bool
	// NotOpaque relaxes the in-flight snapshot-consistency battery: engines
	// that are only probabilistically opaque (AVSTM — a doomed transaction
	// can observe an inconsistent state before its commit-time abort) run
	// every other battery but skip the strict in-flight assertion.
	NotOpaque bool
}

// Run executes the whole conformance battery against fresh TMs from factory.
func Run(t *testing.T, factory func() stm.TM, opts Options) {
	CheckGoroutines(t)
	t.Run("SequentialBasics", func(t *testing.T) { sequentialBasics(t, factory()) })
	t.Run("ReadYourWrites", func(t *testing.T) { readYourWrites(t, factory()) })
	t.Run("IsolationUncommitted", func(t *testing.T) { isolationUncommitted(t, factory()) })
	t.Run("UserAbort", func(t *testing.T) { userAbort(t, factory()) })
	t.Run("CounterExact", func(t *testing.T) { counterExact(t, factory()) })
	t.Run("BankInvariant", func(t *testing.T) { bankInvariant(t, factory()) })
	t.Run("SnapshotConsistency", func(t *testing.T) { snapshotConsistency(t, factory()) })
	t.Run("NoLostUpdate", func(t *testing.T) { noLostUpdate(t, factory()) })
	t.Run("WriteSkew", func(t *testing.T) { writeSkew(t, factory()) })
	if !opts.NotOpaque {
		t.Run("InflightConsistency", func(t *testing.T) { inflightConsistency(t, factory()) })
	}
	t.Run("Pipeline", func(t *testing.T) { pipeline(t, factory()) })
	if opts.RONeverAborts {
		t.Run("ROAbortFree", func(t *testing.T) { roAbortFree(t, factory()) })
	}
}

func sequentialBasics(t *testing.T, tm stm.TM) {
	x := stm.NewTVar(tm, 41)
	if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
		x.Set(tx, x.Get(tx)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
		if got := x.Get(tx); got != 42 {
			t.Errorf("x = %d, want 42", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	snap := tm.Stats().Snapshot()
	if snap.Commits != 2 || snap.ROCommits != 1 {
		t.Fatalf("stats = %+v", snap)
	}
}

func readYourWrites(t *testing.T, tm stm.TM) {
	x := stm.NewTVar(tm, "a")
	err := stm.Atomically(tm, false, func(tx stm.Tx) error {
		x.Set(tx, "b")
		if got := x.Get(tx); got != "b" {
			t.Errorf("read-your-write = %q", got)
		}
		x.Set(tx, "c")
		if got := x.Get(tx); got != "c" {
			t.Errorf("second read-your-write = %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func isolationUncommitted(t *testing.T, tm stm.TM) {
	x := stm.NewTVar(tm, 0)
	tx := tm.Begin(false)
	tx.Write(x.Raw(), 99)
	// A fully separate transaction must not see the buffered write.
	if err := stm.Atomically(tm, true, func(other stm.Tx) error {
		if got := x.Get(other); got != 0 {
			t.Errorf("dirty read: %d", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tm.Abort(tx)
}

func userAbort(t *testing.T, tm stm.TM) {
	x := stm.NewTVar(tm, 7)
	boom := errors.New("boom")
	if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
		x.Set(tx, 8)
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
		if got := x.Get(tx); got != 7 {
			t.Errorf("aborted write leaked: %d", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func counterExact(t *testing.T, tm stm.TM) {
	const goroutines, perG = 6, 150
	x := stm.NewTVar(tm, 0)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					x.Set(tx, x.Get(tx)+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
		if got := x.Get(tx); got != goroutines*perG {
			t.Errorf("counter = %d, want %d", got, goroutines*perG)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// bankInvariant moves money between accounts under concurrent read-only
// audits; every audit must observe the conserved total.
func bankInvariant(t *testing.T, tm stm.TM) {
	const accounts = 8
	const total = accounts * 100
	accs := make([]*stm.TVar[int], accounts)
	for i := range accs {
		accs[i] = stm.NewTVar(tm, 100)
	}
	stop := make(chan struct{})
	var transfers sync.WaitGroup
	for g := 0; g < 3; g++ {
		transfers.Add(1)
		go func(seed uint64) {
			defer transfers.Done()
			r := seed*2654435761 + 11
			next := func(n int) int {
				r ^= r << 13
				r ^= r >> 7
				r ^= r << 17
				return int(r % uint64(n))
			}
			for i := 0; i < 300; i++ {
				from, to := next(accounts), next(accounts)
				if from == to {
					continue
				}
				amt := 1 + next(20)
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					f := accs[from].Get(tx)
					if f < amt {
						return nil // insufficient funds; commit read-only
					}
					accs[from].Set(tx, f-amt) //twm:allow abortshape insufficient-funds guard; the invariant suite wants conflicting transfers
					accs[to].Set(tx, accs[to].Get(tx)+amt)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(g + 1))
	}
	var auditor sync.WaitGroup
	auditor.Add(1)
	go func() {
		defer auditor.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// The invariant is asserted only for the attempt that commits:
			// engines guarantee serializability of committed transactions;
			// in-flight guarantees are covered (per engine capability) by
			// the InflightConsistency battery.
			sum := 0
			if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
				sum = 0
				for _, a := range accs {
					sum += a.Get(tx)
				}
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
			if sum != total {
				t.Errorf("audit: total = %d, want %d", sum, total)
			}
		}
	}()
	transfers.Wait()
	close(stop)
	auditor.Wait()
	if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
		sum := 0
		for _, a := range accs {
			sum += a.Get(tx)
		}
		if sum != total {
			t.Errorf("final total = %d, want %d", sum, total)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// snapshotConsistency keeps x+y constant through paired updates while readers
// verify the invariant.
func snapshotConsistency(t *testing.T, tm stm.TM) {
	const pairSum = 1000
	x := stm.NewTVar(tm, 600)
	y := stm.NewTVar(tm, 400)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			delta := (i % 7) - 3
			if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
				x.Set(tx, x.Get(tx)+delta)
				y.Set(tx, y.Get(tx)-delta)
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 400; i++ {
		got := 0
		if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
			got = x.Get(tx) + y.Get(tx)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != pairSum {
			t.Errorf("committed snapshot x+y = %d, want %d", got, pairSum)
		}
	}
	wg.Wait()
}

func noLostUpdate(t *testing.T, tm stm.TM) {
	// Two overlapping read-modify-writes driven by hand: whichever commits
	// second must either abort or have seen the first.
	x := stm.NewTVar(tm, 0)
	committed := 0
	for i := 0; i < 50; i++ {
		t1 := tm.Begin(false)
		t2 := tm.Begin(false)
		v1, retry1 := tryRead(t1, x)
		v2, retry2 := tryRead(t2, x)
		if !retry1 {
			t1.Write(x.Raw(), v1+1)
			if tm.Commit(t1) {
				committed++
			}
		} else {
			tm.Abort(t1)
		}
		if !retry2 {
			t2.Write(x.Raw(), v2+1)
			if tm.Commit(t2) {
				committed++
			}
		} else {
			tm.Abort(t2)
		}
	}
	if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
		if got := x.Get(tx); got != committed {
			t.Errorf("x = %d but %d increments committed (lost update)", got, committed)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// tryRead performs a read that may raise an engine retry signal.
func tryRead(tx stm.Tx, v *stm.TVar[int]) (val int, retried bool) {
	defer func() {
		if recover() != nil {
			retried = true
		}
	}()
	return v.Get(tx), false
}

// writeSkew runs the classic snapshot-isolation anomaly: both transactions
// read x and y and each zeroes one of them, guarded by x+y >= limit. Under
// any serializable execution at most one guard can pass per round.
func writeSkew(t *testing.T, tm stm.TM) {
	for round := 0; round < 50; round++ {
		x := stm.NewTVar(tm, 1)
		y := stm.NewTVar(tm, 1)

		t1 := tm.Begin(false)
		t2 := tm.Begin(false)
		v1x, r1 := tryRead(t1, x)
		v1y, r1b := tryRead(t1, y)
		v2x, r2 := tryRead(t2, x)
		v2y, r2b := tryRead(t2, y)

		ok1, ok2 := false, false
		if !r1 && !r1b && v1x+v1y >= 2 {
			t1.Write(x.Raw(), v1x-2)
			ok1 = tm.Commit(t1)
		} else {
			tm.Abort(t1)
		}
		if !r2 && !r2b && v2x+v2y >= 2 {
			t2.Write(y.Raw(), v2y-2)
			ok2 = tm.Commit(t2)
		} else {
			tm.Abort(t2)
		}
		if ok1 && ok2 {
			t.Fatalf("round %d: write skew admitted (both guarded writes committed)", round)
		}
	}
}

// roAbortFree verifies mv-permissiveness: read-only transactions commit on
// the first attempt even under a write-heavy load.
func roAbortFree(t *testing.T, tm stm.TM) {
	vars := make([]*stm.TVar[int], 6)
	for i := range vars {
		vars[i] = stm.NewTVar(tm, 0)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
				for _, v := range vars {
					v.Set(tx, i)
				}
				return nil
			})
		}
	}()
	for i := 0; i < 400; i++ {
		tx := tm.Begin(true)
		first := vars[0].Get(tx)
		for _, v := range vars[1:] {
			if got := v.Get(tx); got != first {
				t.Errorf("torn read-only snapshot: %d vs %d", first, got)
			}
		}
		if !tm.Commit(tx) {
			t.Fatalf("read-only transaction aborted (mv-permissiveness violated)")
		}
	}
	close(stop)
	wg.Wait()
}
