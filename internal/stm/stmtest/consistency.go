package stmtest

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/stm"
)

// inflightConsistency checks the VWC-grade guarantee every engine in this
// repository provides: a running transaction — even one that will later
// abort — never observes a state that no serial execution could produce.
// A writer keeps x+y constant; update-transaction readers check the
// invariant inside the transaction body on every attempt.
func inflightConsistency(t *testing.T, tm stm.TM) {
	const pairSum = 1000
	x := stm.NewTVar(tm, 700)
	y := stm.NewTVar(tm, 300)
	junk := stm.NewTVar(tm, 0)

	var mu sync.Mutex
	violations, checks := 0, 0
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				if id == 0 {
					_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
						d := (i % 9) - 4
						x.Set(tx, x.Get(tx)+d)
						y.Set(tx, y.Get(tx)-d)
						return nil
					})
					continue
				}
				_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
					a := x.Get(tx)
					runtime.Gosched() //twm:impure widen the window between the reads
					b := y.Get(tx)
					mu.Lock() //twm:impure per-attempt probe counters, deliberately outside the STM
					checks++
					if a+b != pairSum {
						violations++
					}
					mu.Unlock() //twm:impure see above
					junk.Set(tx, i)
					return nil
				})
			}
		}(g)
	}
	wg.Wait()
	if checks == 0 {
		t.Fatalf("no checks executed")
	}
	if violations != 0 {
		t.Errorf("%d/%d in-flight snapshots violated the invariant", violations, checks)
	}
}

// pipeline runs a two-stage producer/consumer flow over transactional cells:
// producers place sequenced items into slots, consumers claim them. Checks
// exactly-once consumption and FIFO-per-slot ordering under contention.
func pipeline(t *testing.T, tm stm.TM) {
	const slots = 4
	const items = 200
	cells := make([]*stm.TVar[int], slots) // 0 = empty, else item id
	for i := range cells {
		cells[i] = stm.NewTVar(tm, 0)
	}
	produced := stm.NewTVar(tm, 0)

	var consumed sync.Map
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var done bool
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					done = false
					n := produced.Get(tx)
					if n >= items {
						done = true
						return nil
					}
					slot := cells[n%slots]
					if slot.Get(tx) != 0 {
						return nil // slot full; try again later
					}
					slot.Set(tx, n+1) //twm:allow abortshape slot-claim is check-then-act; the harness manufactures pivot windows deliberately
					produced.Set(tx, n+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if done {
					return
				}
			}
		}()
	}
	var cg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 2; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, cell := range cells {
					var got int
					if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
						got = cell.Get(tx)
						if got != 0 {
							cell.Set(tx, 0) //twm:allow abortshape drain-if-full is check-then-act; contention is the test's subject
						}
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
					if got != 0 {
						if _, dup := consumed.LoadOrStore(got, true); dup {
							t.Errorf("item %d consumed twice", got)
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	// Drain stragglers, then stop consumers.
	for drained := false; !drained; {
		drained = true
		count := 0
		consumed.Range(func(any, any) bool { count++; return true })
		if count < items {
			drained = false
			runtime.Gosched()
		}
	}
	close(stop)
	cg.Wait()
	count := 0
	consumed.Range(func(any, any) bool { count++; return true })
	if count != items {
		t.Errorf("consumed %d items, want %d", count, items)
	}
}
