package stmtest

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// CheckGoroutines snapshots the goroutine count and registers a cleanup that
// fails the test when goroutines outlive it. Engines, the admission gate and
// the health watchdog all promise not to leak background goroutines; the
// conformance battery and the watchdog tests hold them to it.
//
// Goroutines wind down asynchronously (timer callbacks, pool cleaners), so the
// cleanup polls with backoff for up to two seconds before declaring a leak,
// and dumps all stacks on failure so the culprit is identifiable.
func CheckGoroutines(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if n > base {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			// The testing runtime's own goroutines show up in the dump;
			// trim obviously uninteresting stacks to keep failures readable.
			var kept []string
			for _, s := range strings.Split(string(buf), "\n\n") {
				if strings.Contains(s, "testing.") || strings.Contains(s, "runtime.goexit") && !strings.Contains(s, "repro/") {
					continue
				}
				kept = append(kept, s)
			}
			t.Errorf("goroutine leak: %d alive, started with %d\n%s", n, base, strings.Join(kept, "\n\n"))
		}
	})
}
