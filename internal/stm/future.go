package stm

import (
	"context"
	"runtime/debug"
)

// Future is the pending result of an asynchronous transaction started by an
// AtomicallyAsync variant. The transaction runs on its own goroutine through
// the ordinary retry loop; the future resolves exactly once, when the
// transaction commits, returns a user error, or gives up on cancellation or
// overload. A Future is safe for concurrent use; Wait/WaitCtx/Done may be
// called any number of times, from any goroutine, in any order.
//
// The async entry points exist to overlap commit latency with new work: under
// the group-commit engines (core and jvstm with GroupCommit set) a committer
// can be parked in the combiner queue while its submitter keeps producing, so
// the combiner leader sees real batches even from a single producer. See
// DESIGN.md §13.
type Future struct {
	done chan struct{}
	err  error // written once, before done is closed
}

// Done returns a channel closed when the transaction has finished; after it
// is closed, Wait returns immediately. It composes with select loops the same
// way context.Done does.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the transaction finishes and returns its result: nil on
// commit, the body's error verbatim on a user abort, *CancelledError or
// *OverloadError when the retry loop gave up, or *PanicError when the body
// panicked (the panic is contained, not rethrown — see goRun).
func (f *Future) Wait() error {
	<-f.done
	return f.err
}

// WaitCtx is Wait bounded by ctx: it returns a *CancelledError when ctx is
// done first. Abandoning the wait does not abandon the transaction — it keeps
// running to its own conclusion (cancel the transaction's own context, passed
// to AtomicallyAsyncCtx or AtomicallyAsyncGated, to stop the retry loop
// itself). A nil ctx never cancels, same as Backoff.WaitCtx and the
// Atomically variants.
//
// An already-cancelled ctx deterministically returns a *CancelledError (with
// zero attempts published — this is the waiter giving up, not the transaction
// aborting), even when the future has also resolved: a two-ready-channel
// select chooses randomly, and a caller that checked its context before
// waiting must not sometimes observe a success it is required to discard.
func (f *Future) WaitCtx(ctx context.Context) error {
	if ctx == nil {
		return f.Wait()
	}
	if err := ctx.Err(); err != nil {
		return &CancelledError{Err: err}
	}
	select {
	case <-f.done:
		return f.err
	case <-ctx.Done():
		return &CancelledError{Err: ctx.Err()}
	}
}

// AtomicallyAsync starts fn as a transaction of tm on a new goroutine and
// returns a Future resolving to what Atomically would have returned. The body
// contract is unchanged: fn may run several times and must not retain the Tx.
func AtomicallyAsync(tm TM, readOnly bool, fn func(Tx) error) *Future {
	return goRun(nil, tm, readOnly, nil, nil, fn)
}

// AtomicallyAsyncCtx is AtomicallyAsync with cancellation: the transaction's
// retry loop checks ctx between attempts (and while queued at an admission
// gate), resolving the future with a *CancelledError once ctx is done. An
// attempt already in flight — including one parked in a group-commit combiner
// queue, whose commit outcome is owed to a leader — always finishes first, so
// cancellation never abandons a published commit request.
func AtomicallyAsyncCtx(ctx context.Context, tm TM, readOnly bool, fn func(Tx) error) *Future {
	return goRun(ctx, tm, readOnly, nil, nil, fn)
}

// AtomicallyAsyncGated is AtomicallyAsync wired through an admission gate and
// a contention-management policy, mirroring AtomicallyGated: the spawned
// goroutine acquires a gate slot before its first attempt and holds it until
// the future resolves, so async submitters saturate at the door (resolving
// with *OverloadError) instead of multiplying in-flight contenders. A nil g,
// p and ctx reduce to plain AtomicallyAsync.
func AtomicallyAsyncGated(ctx context.Context, tm TM, readOnly bool, g *AdmissionGate, p Policy, fn func(Tx) error) *Future {
	var cm ContentionManager
	if p != nil {
		cm = p.NewManager()
	}
	return goRun(ctx, tm, readOnly, g, cm, fn)
}

// goRun spawns the shared retry loop on its own goroutine and returns the
// future its result resolves. The goroutine's lifetime is bounded by the
// loop's own exit conditions (commit, user error, cancellation, overload), so
// async callers leak nothing as long as a caller with a ctx eventually
// cancels it — the same liveness contract as the synchronous variants.
//
// A body panic is contained here rather than rethrown: rethrowing on a
// goroutine with no caller would crash the process with the future forever
// unresolved. The retry loop has already run the engine's abort cleanup,
// recycled the descriptor and released any gate slot (its defers run during
// the unwind), so the panic reaches this recover with no engine state in
// flight; the future resolves with a *PanicError carrying the stack.
func goRun(ctx context.Context, tm TM, readOnly bool, gate *AdmissionGate, cm ContentionManager, fn func(Tx) error) *Future {
	f := &Future{done: make(chan struct{})}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				f.err = &PanicError{Value: r, Stack: debug.Stack()}
			}
			close(f.done)
		}()
		f.err = run(ctx, tm, readOnly, gate, cm, fn)
	}()
	return f
}
