package stm

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xrand"
)

// ContentionManager decides how the retry loop reacts to aborts. It is the
// liveness half of the STM: engines decide *whether* an attempt conflicts
// (safety), the contention manager decides *when* the next attempt runs and
// whether it gets special treatment (progress). Keeping the two separable is
// the standard factoring of the MV-STM literature — permissiveness results
// are stated about the conflict rule, starvation-freedom about the policy on
// top — and it is the seam AtomicallyCM exposes.
//
// One manager serves exactly one Atomically call: managers hold per-call
// state (attempt counters, RNG streams, escalation flags) and are not safe
// for concurrent use. Shared policy state — a serialization token, global
// counters — lives in the Policy that manufactured the manager.
//
// The retry loop drives a manager as follows, with attempt numbering from 1:
//
//	BeforeAttempt(n)   immediately before attempt n begins (gate here)
//	AfterAttempt(n)    immediately after attempt n finishes, any outcome
//	Wait(ctx, n, r)    after attempt n aborted with reason r; block for the
//	                   policy's delay, returning early if ctx is cancelled
type ContentionManager interface {
	BeforeAttempt(attempt int)
	AfterAttempt(attempt int)
	Wait(ctx context.Context, attempt int, reason AbortReason)
}

// Policy manufactures one ContentionManager per Atomically call. Policies may
// be shared freely across goroutines; the managers they return may not.
type Policy interface {
	NewManager() ContentionManager
}

// ---------------------------------------------------------------------------
// Randomized exponential backoff (the default).

// BackoffPolicy is the default policy: randomized exponential backoff,
// identical to the built-in schedule Atomically uses when no policy is given.
// It ignores the abort reason.
type BackoffPolicy struct{}

// NewManager implements Policy.
func (BackoffPolicy) NewManager() ContentionManager { return &backoffCM{} }

type backoffCM struct{ bo Backoff }

func (m *backoffCM) BeforeAttempt(int) {}
func (m *backoffCM) AfterAttempt(int)  {}
func (m *backoffCM) Wait(ctx context.Context, _ int, _ AbortReason) {
	m.bo.WaitCtx(ctx)
}

// ---------------------------------------------------------------------------
// Reason-aware backoff.

// reasonClass tunes the schedule for one family of abort reasons.
type reasonClass struct {
	yields   int    // attempts that merely yield before sleeping starts
	baseNS   uint64 // first sleep window
	maxShift int    // exponential growth cap: window <= baseNS << maxShift
}

// ReasonAwarePolicy backs off differently per abort reason, exploiting what
// the classification already tells us about the conflict:
//
//   - Lock timeouts mean a peer is mid-commit holding the lock we spun on;
//     retrying immediately just burns the spin budget again, so the schedule
//     starts sleeping at once with a larger base window (enough for a commit
//     to drain) and a higher cap.
//   - Triad and time-warp-skip aborts are structural: several update
//     transactions are interleaved into an anti-dependency pattern, and the
//     fix is to de-phase the contenders, so the windows grow faster than for
//     plain read conflicts.
//   - Read/write conflicts and validation failures are the cheap, common
//     case: yield a couple of times, then the classic schedule.
//   - User retries are waits for a state change; they start sleeping at once
//     with a patient cap since spinning cannot make the awaited write happen.
//
// The zero value is ready to use.
type ReasonAwarePolicy struct{}

// NewManager implements Policy.
func (ReasonAwarePolicy) NewManager() ContentionManager {
	return &reasonCM{rng: xrand.Mix(backoffSeq.Add(1)) | 1}
}

// reasonClasses maps every AbortReason to its schedule. Indexed by reason.
var reasonClasses = [numAbortReasons]reasonClass{
	ReasonNone:          {yields: 2, baseNS: 1 << 10, maxShift: 10},
	ReasonReadConflict:  {yields: 2, baseNS: 1 << 10, maxShift: 10},
	ReasonWriteConflict: {yields: 2, baseNS: 1 << 10, maxShift: 10},
	ReasonIntervalEmpty: {yields: 2, baseNS: 1 << 10, maxShift: 10},
	ReasonChaos:         {yields: 2, baseNS: 1 << 10, maxShift: 10},
	ReasonTriad:         {yields: 1, baseNS: 1 << 11, maxShift: 11},
	ReasonTimeWarpSkip:  {yields: 1, baseNS: 1 << 11, maxShift: 11},
	ReasonLockTimeout:   {yields: 0, baseNS: 1 << 13, maxShift: 9},
	ReasonUser:          {yields: 0, baseNS: 1 << 12, maxShift: 13},
	// Memory pressure means the budget's GC and trim passes could not free
	// enough: only draining in-flight snapshots (so the GC bound advances)
	// relieves it. Sleep immediately with a wide, patient window — spinning
	// re-runs a GC pass that just failed.
	ReasonMemoryPressure: {yields: 0, baseNS: 1 << 14, maxShift: 10},
	// Overload never reaches Wait (the gate refuses before any attempt runs);
	// the entry exists so the schedule table stays total over the reasons.
	ReasonOverload: {yields: 2, baseNS: 1 << 10, maxShift: 10},
	// A durability abort means the commit logger latched a failure, which no
	// retry can clear — the operator has to intervene. Sleep immediately with
	// the widest, most patient window in the table; spinning would hammer a
	// log that is already refusing appends.
	ReasonDurability: {yields: 0, baseNS: 1 << 14, maxShift: 10},
}

type reasonCM struct {
	rng    uint64
	sleeps int // attempts past the yield phase, drives the exponent
}

func (m *reasonCM) BeforeAttempt(int) {}
func (m *reasonCM) AfterAttempt(int)  {}

func (m *reasonCM) Wait(ctx context.Context, attempt int, reason AbortReason) {
	c := reasonClasses[reason]
	if attempt <= c.yields {
		runtime.Gosched()
		return
	}
	m.sleeps++
	m.rng ^= m.rng << 13
	m.rng ^= m.rng >> 7
	m.rng ^= m.rng << 17
	shift := m.sleeps - 1
	if shift > c.maxShift {
		shift = c.maxShift
	}
	window := c.baseNS << uint(shift)
	sleepCtx(ctx, time.Duration(m.rng%window))
}

// ---------------------------------------------------------------------------
// Starvation escalation.

// StarvationPolicy guarantees progress to transactions the backoff lottery
// keeps losing. Attempts up to K retry under the Inner policy as usual; once
// a call has aborted K times it escalates: its next attempt acquires the
// policy's process-wide serialization token exclusively, while every
// non-escalated attempt managed by the same policy holds the token shared.
// The escalated attempt therefore runs with no concurrent transaction in
// flight anywhere in the policy's domain, so no conflict rule in this
// repository can abort it — every engine commits a solo update transaction —
// and it commits on the first escalated attempt. (Fault-injection middleware
// observes EscalationActive and does not inject conflict-like faults into a
// serialized attempt — a solo transaction cannot conflict, so such a fault
// would model a failure mode no engine exhibits — keeping the bound of K+1
// attempts intact under chaos.)
//
// The guarantee only covers transactions routed through the same
// *StarvationPolicy value: the token cannot exclude transactions entering
// the engine through a different policy or plain Atomically. Share one
// policy per domain of mutually conflicting transactions.
//
// The token is a sync.RWMutex, whose writer-preference makes escalation
// acquisition itself bounded: once the starving transaction blocks on Lock,
// new shared acquisitions queue behind it.
type StarvationPolicy struct {
	// K is the number of aborted attempts tolerated before escalation
	// (default 8).
	K int
	// Inner is the policy applied below the escalation threshold (default
	// BackoffPolicy).
	Inner Policy

	token sync.RWMutex
	// escalations counts calls that crossed the threshold (observability).
	escalations atomic.Uint64
	// clamp is an externally imposed override of K (see Clamp): the health
	// watchdog's livelock remediation tightens the escalation threshold while
	// an alert is active and restores it on the all-clear.
	clamp atomic.Int32
}

// NewStarvationPolicy returns a policy escalating after k aborted attempts
// with inner backoff below the threshold. k <= 0 selects the default of 8;
// a nil inner selects BackoffPolicy.
func NewStarvationPolicy(k int, inner Policy) *StarvationPolicy {
	return &StarvationPolicy{K: k, Inner: inner}
}

func (p *StarvationPolicy) threshold() int {
	if c := p.clamp.Load(); c > 0 {
		return int(c)
	}
	if p.K > 0 {
		return p.K
	}
	return 8
}

// Clamp overrides the escalation threshold K process-wide until cleared:
// calls escalate after k aborted attempts regardless of the configured K.
// k <= 0 removes the override. It is safe to call concurrently with running
// transactions; in-flight calls observe the new threshold on their next
// abort. The health watchdog's livelock remediation uses it to serialize
// contenders aggressively (k = 1) while an alert is active.
func (p *StarvationPolicy) Clamp(k int) {
	if k <= 0 {
		p.clamp.Store(0)
		return
	}
	if k > 1<<30 {
		k = 1 << 30
	}
	p.clamp.Store(int32(k))
}

// Clamped reports the active override (0 when none).
func (p *StarvationPolicy) Clamped() int { return int(p.clamp.Load()) }

// Escalations reports how many calls have escalated to the serialization
// token so far.
func (p *StarvationPolicy) Escalations() uint64 { return p.escalations.Load() }

// NewManager implements Policy.
func (p *StarvationPolicy) NewManager() ContentionManager {
	inner := p.Inner
	if inner == nil {
		inner = BackoffPolicy{}
	}
	return &starvationCM{p: p, inner: inner.NewManager()}
}

// escalationDepth counts escalated attempts currently holding some
// StarvationPolicy token exclusively, process-wide.
var escalationDepth atomic.Int32

// EscalationActive reports whether an escalated (serialized) attempt is
// currently running anywhere in the process. Fault-injection middleware uses
// it to suppress conflict-like faults: a transaction holding a serialization
// token runs alone and cannot conflict, so injecting an abort into it would
// fake a failure no engine exhibits — and would void the starvation policy's
// bounded-attempts guarantee.
func EscalationActive() bool { return escalationDepth.Load() > 0 }

type starvationCM struct {
	p         *StarvationPolicy
	inner     ContentionManager
	escalated bool
}

func (m *starvationCM) BeforeAttempt(attempt int) {
	if m.escalated {
		m.p.token.Lock()
		escalationDepth.Add(1)
	} else {
		m.p.token.RLock()
	}
	m.inner.BeforeAttempt(attempt)
}

func (m *starvationCM) AfterAttempt(attempt int) {
	m.inner.AfterAttempt(attempt)
	if m.escalated {
		escalationDepth.Add(-1)
		m.p.token.Unlock()
	} else {
		m.p.token.RUnlock()
	}
}

func (m *starvationCM) Wait(ctx context.Context, attempt int, reason AbortReason) {
	if attempt >= m.p.threshold() {
		if !m.escalated {
			m.escalated = true
			m.p.escalations.Add(1)
		}
		// No backoff: exclusivity, not delay, provides progress from here.
		return
	}
	m.inner.Wait(ctx, attempt, reason)
}
