package stm

import "fmt"

// PanicError is how an asynchronous transaction reports a panicking body. The
// synchronous Atomically variants rethrow body panics to their caller
// unchanged (the caller's stack is the right place for them to land), but an
// AtomicallyAsync body runs on a goroutine nobody defers around: before this
// type existed, a body panic there killed the whole process and left the
// Future unresolved, so every observer blocked forever. goRun now contains
// the panic into a resolved future carrying a *PanicError instead; the engine
// has already aborted the attempt and recycled its descriptor, so no engine
// state leaks with the panic.
//
// Servers map it to an internal error response: the request that panicked
// fails, the process serves on. Stack preserves the panicking frames for the
// log line.
type PanicError struct {
	// Value is the recovered panic value, verbatim.
	Value any
	// Stack is the goroutine stack captured at recovery, including the
	// frames that panicked.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("stm: transaction body panicked: %v", e.Value)
}
