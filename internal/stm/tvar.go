package stm

// TVar is a typed wrapper over an engine Var. It removes the type assertions
// from user code; the transactional data structures and example applications
// in this repository are written against TVar.
type TVar[T any] struct {
	v Var
}

// NewTVar allocates a transactional variable of tm holding init.
func NewTVar[T any](tm TM, init T) *TVar[T] {
	return &TVar[T]{v: tm.NewVar(init)}
}

// Get reads the variable inside tx.
func (t *TVar[T]) Get(tx Tx) T {
	val := tx.Read(t.v)
	if val == nil {
		var zero T
		return zero
	}
	return val.(T)
}

// Set writes the variable inside tx.
func (t *TVar[T]) Set(tx Tx, val T) { tx.Write(t.v, val) }

// Raw exposes the underlying engine handle (used by the DSG oracle).
func (t *TVar[T]) Raw() Var { return t.v }
