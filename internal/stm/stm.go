// Package stm defines the common object-based transactional memory API shared
// by every engine in this repository: the Time-Warp Multi-version algorithm
// (internal/core) and the four baselines it is evaluated against (internal/tl2,
// internal/norec, internal/jvstm, internal/avstm).
//
// The design follows the evaluation methodology of Diegues and Romano,
// "Time-Warp: Lightweight Abort Minimization in Transactional Memory"
// (PPoPP 2014): all engines are driven through one manually-instrumented
// interface built around transactional variables, the analogue of the
// VBox-style interface the paper uses to compare STMs fairly. Benchmarks and
// transactional data structures are written once against TM/Tx and run
// unmodified on every engine.
//
// A transaction body runs inside Atomically, reads shared state only through
// Tx.Read and writes it only through Tx.Write. Engines request a restart by
// panicking with an internal retry signal (via Retry); Atomically recovers it,
// runs the engine's abort cleanup and re-executes the body, applying
// randomized exponential backoff under contention.
package stm

// Value is the type of the contents of a transactional variable. Engines store
// and return values opaquely; data structures layered on top perform the type
// assertions (or use the typed TVar wrapper).
type Value = any

// Var is an opaque handle to a transactional variable. Handles are created by
// a specific TM's NewVar and must only be passed back to transactions of that
// same TM; engines type-assert to their concrete variable representation.
type Var any

// Tx is a transaction in progress. A Tx must only be used by the goroutine
// that began it, and only between Begin and the matching Commit/Abort.
type Tx interface {
	// Read returns the value of v visible to this transaction. It may abort
	// the transaction by panicking with a retry signal (early abort); callers
	// inside Atomically need no special handling.
	Read(v Var) Value
	// Write buffers a new value for v. All engines in this repository use
	// lazy (commit-time) version installation, as the paper prescribes for
	// TWM ("write operations are privately buffered").
	Write(v Var, val Value)
	// ReadOnly reports whether the transaction was started as read-only.
	// Read-only transactions must not call Write.
	ReadOnly() bool
}

// TM is a transactional memory engine.
type TM interface {
	// Name identifies the engine ("twm", "tl2", "norec", "jvstm", "avstm").
	Name() string
	// NewVar allocates a transactional variable holding initial. Allocation
	// is not transactional; publish the handle before sharing it.
	NewVar(initial Value) Var
	// Begin starts a transaction. The paper's model statically identifies
	// read-only transactions; readOnly passes that knowledge to the engine
	// (read-only transactions skip read-set maintenance and validation where
	// the engine allows it).
	Begin(readOnly bool) Tx
	// Commit attempts to commit tx. It returns false if the transaction
	// failed validation and must be re-executed; the engine has already
	// cleaned up. On true the transaction's writes are durable and visible
	// per the engine's visibility rules.
	Commit(tx Tx) bool
	// Abort abandons tx, releasing any engine resources (locks, visible-read
	// registrations). It is called on user aborts and after retry signals.
	Abort(tx Tx)
	// Stats returns the engine's live counters.
	Stats() *Stats
}

// MultiVersioned is implemented by engines that keep more than one version per
// variable (TWM and JVSTM). Used by benchmarks for reporting only.
type MultiVersioned interface {
	MultiVersion() bool
}

// Profilable is implemented by engines that support the per-phase time
// breakdown of Fig. 4(c). Passing nil disables profiling (the default).
type Profilable interface {
	SetProfiler(p *Profiler)
}

// VersionRecord describes one committed version of a variable, for the DSG
// serializability oracle (internal/dsg). Records are reported in the engine's
// serialization order for that variable, oldest first.
type VersionRecord struct {
	Value Value
	// Serial is the engine's primary serialization key for the version
	// (twOrder for TWM, commit timestamp for the classic engines, the chosen
	// serialization point for AVSTM).
	Serial uint64
	// Tie breaks Serial ties (TWM time-warp clashes serialize in inverse
	// natural-commit order, so Tie carries natOrder and sorts descending).
	Tie uint64
	// Elided marks a write that was committed but never readable (a TWM
	// time-warp clash victim, paper line 31-32).
	Elided bool
}

// HistoryRecording is implemented by engines that can record per-variable
// version histories for the serializability oracle. Recording is off by
// default; EnableHistory must be called before any transaction runs.
type HistoryRecording interface {
	EnableHistory()
	// History returns the committed versions of v (excluding the initial
	// value) in serialization order, oldest first.
	History(v Var) []VersionRecord
}
