package stm_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/stm/stmtest"
)

func TestGateAcquireRelease(t *testing.T) {
	g := stm.NewAdmissionGate(2, time.Second)
	if err := g.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	g.Release()
	g.Release()
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
	if g.Admitted() != 2 {
		t.Fatalf("Admitted = %d, want 2", g.Admitted())
	}
}

func TestGateOverload(t *testing.T) {
	g := stm.NewAdmissionGate(1, 10*time.Millisecond)
	if err := g.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	err := g.Acquire(nil)
	var ov *stm.OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want *OverloadError", err)
	}
	if ov.Limit != 1 || ov.Wait != 10*time.Millisecond {
		t.Fatalf("overload = %+v", ov)
	}
	if g.Overloads() != 1 {
		t.Fatalf("Overloads = %d, want 1", g.Overloads())
	}
	g.Release()
}

func TestGateLoadShedding(t *testing.T) {
	g := stm.NewAdmissionGate(1, 0) // maxWait <= 0: refuse immediately
	if err := g.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	err := g.Acquire(nil)
	var ov *stm.OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want *OverloadError", err)
	}
	if d := time.Since(t0); d > 100*time.Millisecond {
		t.Fatalf("load-shedding refusal took %v", d)
	}
	g.Release()
}

func TestGateReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	stm.NewAdmissionGate(1, 0).Release()
}

// TestGateCancelledWhileQueued is the AtomicallyCtx satellite: a call blocked
// in the admission gate must honor cancellation promptly, not only between
// attempts.
func TestGateCancelledWhileQueued(t *testing.T) {
	stmtest.CheckGoroutines(t)
	g := stm.NewAdmissionGate(1, time.Minute)
	if err := g.Acquire(nil); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx) }()

	// Wait until the second call is queued at the gate, then cancel.
	for i := 0; g.Waiting() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if g.Waiting() == 0 {
		t.Fatal("second Acquire never queued")
	}
	cancel()
	select {
	case err := <-done:
		var ce *stm.CancelledError
		if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want *CancelledError wrapping context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued Acquire did not unblock on cancellation")
	}
	if g.Cancels() != 1 {
		t.Fatalf("Cancels = %d, want 1", g.Cancels())
	}
	g.Release()
}

// TestGatedAtomicallyCtxCancelUnblocks drives the same property through the
// full transaction entry point: a gated transaction queued behind a saturated
// gate returns promptly once its context is cancelled.
func TestGatedAtomicallyCtxCancelUnblocks(t *testing.T) {
	stmtest.CheckGoroutines(t)
	tm := core.New(core.Options{})
	v := stm.NewTVar(tm, 0)
	g := stm.NewAdmissionGate(1, time.Minute)

	release := make(chan struct{})
	occupied := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := stm.AtomicallyGated(nil, tm, false, g, nil, func(tx stm.Tx) error {
			close(occupied) //twm:impure test coordination; body runs exactly once
			<-release       //twm:impure hold the slot with a transaction in flight
			v.Set(tx, 1)
			return nil
		})
		if err != nil {
			t.Errorf("holder: %v", err)
		}
	}()
	<-occupied

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- stm.AtomicallyGated(ctx, tm, false, g, nil, func(tx stm.Tx) error {
			v.Set(tx, 2)
			return nil
		})
	}()
	for i := 0; g.Waiting() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		var ce *stm.CancelledError
		if !errors.As(err, &ce) {
			t.Fatalf("queued gated tx: err = %v, want *CancelledError", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued gated transaction did not unblock on cancellation")
	}
	close(release)
	wg.Wait()
}

func TestGatedAtomicallyOverloadRecorded(t *testing.T) {
	tm := core.New(core.Options{})
	v := stm.NewTVar(tm, 0)
	g := stm.NewAdmissionGate(1, 0) // pure load shedding

	release := make(chan struct{})
	occupied := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = stm.AtomicallyGated(nil, tm, false, g, nil, func(tx stm.Tx) error {
			close(occupied) //twm:impure test coordination; body runs exactly once
			<-release       //twm:impure hold the slot with a transaction in flight
			v.Set(tx, 1)
			return nil
		})
	}()
	<-occupied

	err := stm.AtomicallyGated(nil, tm, false, g, nil, func(tx stm.Tx) error {
		v.Set(tx, 2)
		return nil
	})
	var ov *stm.OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want *OverloadError", err)
	}
	close(release)
	wg.Wait()

	// The refusal is visible in the engine's stats under ReasonOverload, so
	// the bench reason histogram picks it up with no extra wiring.
	snap := tm.Stats().Snapshot()
	if snap.ByReason[stm.ReasonOverload.String()] != 1 {
		t.Fatalf("overload not recorded in stats: %+v", snap.ByReason)
	}
}

func TestGateReadOnlyBypass(t *testing.T) {
	tm := core.New(core.Options{})
	v := stm.NewTVar(tm, 7)
	g := stm.NewAdmissionGate(1, 0)
	if err := g.Acquire(nil); err != nil { // saturate the gate
		t.Fatal(err)
	}
	defer g.Release()
	// A read-only transaction must pass a saturated gate untouched.
	var got int
	if err := stm.AtomicallyGated(nil, tm, true, g, nil, func(tx stm.Tx) error {
		got = v.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
}

func TestGatedPolicyThroughAtomicallyCM(t *testing.T) {
	tm := core.New(core.Options{})
	v := stm.NewTVar(tm, 0)
	g := stm.NewAdmissionGate(4, time.Second)
	p := stm.GatedPolicy{Gate: g, Inner: stm.ReasonAwarePolicy{}}

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	var fail atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := stm.AtomicallyCM(nil, tm, false, p, func(tx stm.Tx) error {
					v.Set(tx, v.Get(tx)+1)
					return nil
				}); err != nil {
					fail.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if fail.Load() {
		t.Fatal("gated CM transaction failed")
	}
	var got int
	if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
		got = v.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if g.Admitted() == 0 {
		t.Fatal("gate never admitted anything — AtomicallyCM did not consult the Admitter")
	}
	if g.InFlight() != 0 {
		t.Fatalf("slots leaked: InFlight = %d", g.InFlight())
	}
}
