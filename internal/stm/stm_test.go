package stm

import (
	"errors"
	"testing"
	"testing/quick"
)

// fakeTM is a minimal in-memory TM used to test the Atomically driver without
// pulling in a real engine (engines live above this package).
type fakeTM struct {
	stats        Stats
	failCommits  int // number of Commits to reject before succeeding
	commits      int
	aborts       int
	retryInBody  int // number of body executions that should Retry first
	bodyAttempts int
}

type fakeVar struct{ val Value }

type fakeTx struct {
	tm       *fakeTM
	readOnly bool
	writes   map[*fakeVar]Value
}

func (f *fakeTM) Name() string { return "fake" }
func (f *fakeTM) NewVar(initial Value) Var {
	return &fakeVar{val: initial}
}
func (f *fakeTM) Begin(readOnly bool) Tx {
	f.stats.RecordStart()
	return &fakeTx{tm: f, readOnly: readOnly, writes: make(map[*fakeVar]Value)}
}
func (f *fakeTM) Commit(tx Tx) bool {
	if f.failCommits > 0 {
		f.failCommits--
		f.stats.RecordAbort(ReasonWriteConflict)
		return false
	}
	t := tx.(*fakeTx)
	for v, val := range t.writes {
		v.val = val
	}
	f.commits++
	f.stats.RecordCommit(t.readOnly)
	return true
}
func (f *fakeTM) Abort(Tx)      { f.aborts++ }
func (f *fakeTM) Stats() *Stats { return &f.stats }

func (t *fakeTx) Read(v Var) Value {
	fv := v.(*fakeVar)
	if val, ok := t.writes[fv]; ok {
		return val
	}
	return fv.val
}
func (t *fakeTx) Write(v Var, val Value) { t.writes[v.(*fakeVar)] = val }
func (t *fakeTx) ReadOnly() bool         { return t.readOnly }

func TestAtomicallyRetriesFailedCommits(t *testing.T) {
	tm := &fakeTM{failCommits: 3}
	v := tm.NewVar(0)
	runs := 0
	if err := Atomically(tm, false, func(tx Tx) error {
		runs++
		tx.Write(v, runs)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if runs != 4 {
		t.Fatalf("body ran %d times, want 4", runs)
	}
	if tm.commits != 1 {
		t.Fatalf("commits = %d", tm.commits)
	}
}

func TestAtomicallyRetrySignal(t *testing.T) {
	tm := &fakeTM{}
	tries := 0
	if err := Atomically(tm, false, func(Tx) error {
		tries++
		if tries < 3 {
			Retry(ReasonUser)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tries != 3 {
		t.Fatalf("tries = %d", tries)
	}
	if tm.aborts != 2 {
		t.Fatalf("aborts (cleanups) = %d, want 2", tm.aborts)
	}
}

func TestAtomicallyUserErrorNoRetry(t *testing.T) {
	tm := &fakeTM{}
	boom := errors.New("boom")
	runs := 0
	err := Atomically(tm, false, func(Tx) error {
		runs++
		return boom
	})
	if !errors.Is(err, boom) || runs != 1 {
		t.Fatalf("err=%v runs=%d", err, runs)
	}
	if tm.aborts != 1 {
		t.Fatalf("user error must abort, aborts = %d", tm.aborts)
	}
}

func TestAtomicallyForeignPanicPropagates(t *testing.T) {
	tm := &fakeTM{}
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v", r)
		}
		if tm.aborts != 1 {
			t.Fatalf("foreign panic must still clean up, aborts = %d", tm.aborts)
		}
	}()
	_ = Atomically(tm, false, func(Tx) error { panic("kaboom") })
}

func TestStatsCountersAndReset(t *testing.T) {
	var s Stats
	s.RecordStart()
	s.RecordStart()
	s.RecordCommit(true)
	s.RecordAbort(ReasonTriad)
	s.RecordAbort(ReasonTriad)
	s.RecordAbort(ReasonReadConflict)
	snap := s.Snapshot()
	if snap.Starts != 2 || snap.Commits != 1 || snap.ROCommits != 1 || snap.Aborts != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.ByReason["triad"] != 2 || snap.ByReason["read-conflict"] != 1 {
		t.Fatalf("byReason = %v", snap.ByReason)
	}
	if got := snap.AbortRate(); got != 0.75 {
		t.Fatalf("abort rate = %v, want 0.75", got)
	}
	s.Reset()
	if s.Snapshot().Starts != 0 || s.Snapshot().Aborts != 0 {
		t.Fatalf("reset failed: %+v", s.Snapshot())
	}
}

func TestAbortRateEmpty(t *testing.T) {
	var s Stats
	if got := s.Snapshot().AbortRate(); got != 0 {
		t.Fatalf("abort rate = %v", got)
	}
}

func TestAbortReasonStrings(t *testing.T) {
	for r := AbortReason(0); r < numAbortReasons; r++ {
		if r.String() == "unknown" {
			t.Fatalf("reason %d has no label", r)
		}
	}
	if AbortReason(200).String() != "unknown" {
		t.Fatalf("out-of-range reason should be unknown")
	}
}

func TestProfilerBreakdown(t *testing.T) {
	var p Profiler
	p.AddRead(2000)
	p.AddReadSetVal(1000)
	p.AddWriteSetVal(500)
	p.AddCommit(1500)
	p.AddTx()
	b := p.Snapshot()
	if b.ReadUS != 2.0 || b.ReadSetValUS != 1.0 || b.WriteSetValUS != 0.5 || b.CommitUS != 1.5 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.TotalUS() != 5.0 {
		t.Fatalf("total = %v", b.TotalUS())
	}
	p.Reset()
	if b := p.Snapshot(); b.Txs != 0 || b.TotalUS() != 0 {
		t.Fatalf("reset failed: %+v", b)
	}
}

func TestProfilerEmptySnapshot(t *testing.T) {
	var p Profiler
	if b := p.Snapshot(); b.TotalUS() != 0 {
		t.Fatalf("empty profiler = %+v", b)
	}
}

func TestTVarTypedAccess(t *testing.T) {
	tm := &fakeTM{}
	v := NewTVar(tm, "hello")
	if err := Atomically(tm, false, func(tx Tx) error {
		if got := v.Get(tx); got != "hello" {
			t.Errorf("get = %q", got)
		}
		v.Set(tx, "world") //twm:allow abortshape single-threaded semantics test; no concurrent readers exist
		if got := v.Get(tx); got != "world" {
			t.Errorf("get after set = %q", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.Raw() == nil {
		t.Fatalf("Raw returned nil")
	}
}

func TestTVarZeroValueForNil(t *testing.T) {
	tm := &fakeTM{}
	v := NewTVar[*int](tm, nil)
	_ = Atomically(tm, true, func(tx Tx) error {
		if got := v.Get(tx); got != nil {
			t.Errorf("nil-valued TVar = %v", got)
		}
		return nil
	})
}

func TestBackoffTerminatesAndGrows(t *testing.T) {
	var b Backoff
	for i := 0; i < 20; i++ {
		b.Wait() // must not hang even deep into the schedule
	}
	b.Reset()
	if b.attempt != 0 {
		t.Fatalf("reset failed")
	}
}

func TestBackoffWindowMonotonicProperty(t *testing.T) {
	// Property: the backoff window shift is capped and non-decreasing in the
	// attempt number.
	f := func(a uint8) bool {
		shift := int(a) - backoffYields
		if shift < 0 {
			return true
		}
		if shift > backoffMaxShift {
			shift = backoffMaxShift
		}
		return shift <= backoffMaxShift && shift >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
