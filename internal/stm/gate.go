package stm

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// OverloadError is returned by a gated Atomically variant when the admission
// gate stayed saturated for the whole bounded wait. No attempt ran and no
// durable change was made; the caller should shed the request (or retry it
// with its own higher-level policy). It is the load-shedding counterpart of
// *CancelledError.
type OverloadError struct {
	// Limit is the gate's concurrent-transaction cap.
	Limit int
	// Wait is how long the call queued before giving up.
	Wait time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("stm: admission gate saturated (%d in flight) after waiting %v", e.Limit, e.Wait)
}

// AdmissionGate caps the number of concurrently in-flight update transactions
// admitted through it. Without a gate, saturation in an STM shows up as an
// abort storm: every extra contender past the conflict capacity of the
// variable set converts throughput into retries. The gate converts the same
// saturation into backpressure — excess calls queue boundedly at the door and
// are refused with *OverloadError once the wait limit expires — which keeps
// the engine inside its productive regime and gives callers an explicit
// overload signal to act on.
//
// A slot is held for the whole Atomically call (all attempts and backoff),
// not per attempt: releasing between attempts would re-admit the retry storm
// the gate exists to prevent. Read-only transactions bypass gates entirely.
//
// The zero value is not usable; construct with NewAdmissionGate. A gate may
// be shared by any number of goroutines and Atomically variants.
type AdmissionGate struct {
	slots   chan struct{}
	maxWait time.Duration

	admitted  atomic.Uint64
	overloads atomic.Uint64
	cancels   atomic.Uint64
	waiting   atomic.Int64
}

// testHookShedRecheck, when non-nil, runs inside Acquire's pure-shed window —
// after the saturated fast path, before the final shed decision. Tests use it
// to free a slot at exactly the racing instant; always nil outside tests.
var testHookShedRecheck func()

// NewAdmissionGate returns a gate admitting at most limit concurrent update
// transactions. A queued call waits up to maxWait for a slot before giving up
// with *OverloadError; maxWait <= 0 selects pure load shedding (a saturated
// gate refuses immediately). limit must be positive.
func NewAdmissionGate(limit int, maxWait time.Duration) *AdmissionGate {
	if limit <= 0 {
		panic("stm: AdmissionGate limit must be positive")
	}
	return &AdmissionGate{slots: make(chan struct{}, limit), maxWait: maxWait}
}

// Limit returns the gate's concurrent-transaction cap.
func (g *AdmissionGate) Limit() int { return cap(g.slots) }

// Acquire takes one slot, queueing up to the gate's wait bound. It returns
// nil on admission, *OverloadError when the wait bound expires, and
// *CancelledError when ctx is cancelled first — cancellation is honored while
// blocked in the gate, not only between attempts, so a queued call unblocks
// promptly. A nil ctx never cancels.
func (g *AdmissionGate) Acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return nil
	default:
	}
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			g.cancels.Add(1)
			return &CancelledError{Err: err}
		}
		done = ctx.Done()
	}
	if g.maxWait <= 0 {
		if h := testHookShedRecheck; h != nil {
			h()
		}
		// Re-offer once before refusing: a slot freed between the saturated
		// fast path above and this decision would otherwise surface as a
		// spurious *OverloadError — the gate shedding load while a slot sits
		// free. One non-blocking retry closes the window the pure-shed path
		// is responsible for (the remaining race, a slot freed after this
		// select, is indistinguishable from the request simply arriving
		// earlier).
		select {
		case g.slots <- struct{}{}:
			g.admitted.Add(1)
			return nil
		default:
		}
		g.overloads.Add(1)
		return &OverloadError{Limit: cap(g.slots)}
	}
	g.waiting.Add(1)
	defer g.waiting.Add(-1)
	timer := time.NewTimer(g.maxWait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return nil
	case <-timer.C:
		g.overloads.Add(1)
		return &OverloadError{Limit: cap(g.slots), Wait: g.maxWait}
	case <-done:
		g.cancels.Add(1)
		return &CancelledError{Err: ctx.Err()}
	}
}

// Release returns one slot. It must pair with a successful Acquire.
func (g *AdmissionGate) Release() {
	select {
	case <-g.slots:
	default:
		panic("stm: AdmissionGate.Release without Acquire")
	}
}

// InFlight reports currently admitted calls.
func (g *AdmissionGate) InFlight() int { return len(g.slots) }

// Waiting reports calls currently queued at the gate.
func (g *AdmissionGate) Waiting() int64 { return g.waiting.Load() }

// Admitted reports total admissions so far.
func (g *AdmissionGate) Admitted() uint64 { return g.admitted.Load() }

// Overloads reports total refusals (OverloadError) so far.
func (g *AdmissionGate) Overloads() uint64 { return g.overloads.Load() }

// Cancels reports total queued calls that left on context cancellation.
func (g *AdmissionGate) Cancels() uint64 { return g.cancels.Load() }

// Admitter is implemented by policies that carry an admission gate; the
// AtomicallyCM path consults it so a gate can be attached without a new entry
// point (see GatedPolicy).
type Admitter interface {
	AdmissionGate() *AdmissionGate
}

// GatedPolicy combines an admission gate with a contention-management policy
// for the AtomicallyCM path: admission caps how many calls are in flight,
// the inner policy decides how each admitted call retries. A nil Inner uses
// the default backoff schedule.
type GatedPolicy struct {
	Gate  *AdmissionGate
	Inner Policy
}

// NewManager implements Policy.
func (p GatedPolicy) NewManager() ContentionManager {
	inner := p.Inner
	if inner == nil {
		inner = BackoffPolicy{}
	}
	return inner.NewManager()
}

// AdmissionGate implements Admitter.
func (p GatedPolicy) AdmissionGate() *AdmissionGate { return p.Gate }
