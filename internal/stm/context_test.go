package stm

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAtomicallyCtxCommits(t *testing.T) {
	tm := &fakeTM{}
	v := tm.NewVar(0)
	if err := AtomicallyCtx(context.Background(), tm, false, func(tx Tx) error {
		tx.Write(v, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tm.commits != 1 {
		t.Fatalf("commits = %d", tm.commits)
	}
}

func TestAtomicallyCtxCancelledBeforeStart(t *testing.T) {
	tm := &fakeTM{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runs := 0
	err := AtomicallyCtx(ctx, tm, false, func(Tx) error {
		runs++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if runs != 0 {
		t.Fatalf("body ran %d times after cancellation", runs)
	}
}

func TestAtomicallyCtxStopsRetrying(t *testing.T) {
	// A TM that always rejects commits: without cancellation the call would
	// retry forever; the deadline must end it.
	tm := &fakeTM{failCommits: 1 << 30}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := AtomicallyCtx(ctx, tm, false, func(Tx) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancellation took too long")
	}
}

func TestAtomicallyCtxUserError(t *testing.T) {
	tm := &fakeTM{}
	boom := errors.New("boom")
	if err := AtomicallyCtx(context.Background(), tm, false, func(Tx) error {
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}
