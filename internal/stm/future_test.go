package stm

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAsyncCommitsAndResolvesOnce(t *testing.T) {
	tm := &fakeTM{}
	v := tm.NewVar(0)
	f := AtomicallyAsync(tm, false, func(tx Tx) error {
		tx.Write(v, 7)
		return nil
	})
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	// Done is closed and every further Wait/WaitCtx returns the same result.
	select {
	case <-f.Done():
	default:
		t.Fatal("Done not closed after Wait returned")
	}
	if err := f.Wait(); err != nil {
		t.Fatalf("second Wait = %v", err)
	}
	if err := f.WaitCtx(context.Background()); err != nil {
		t.Fatalf("WaitCtx after resolution = %v", err)
	}
	if tm.commits != 1 {
		t.Fatalf("commits = %d", tm.commits)
	}
}

func TestAsyncUserErrorVerbatim(t *testing.T) {
	tm := &fakeTM{}
	boom := errors.New("boom")
	f := AtomicallyAsync(tm, false, func(Tx) error { return boom })
	if err := f.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestAsyncCtxCancelStopsRetrying(t *testing.T) {
	// A TM that never accepts commits: only cancellation ends the goroutine.
	tm := &fakeTM{failCommits: 1 << 30}
	ctx, cancel := context.WithCancel(context.Background())
	f := AtomicallyAsyncCtx(ctx, tm, false, func(Tx) error { return nil })
	cancel()
	err := f.Wait()
	var ce *CancelledError
	if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want *CancelledError wrapping context.Canceled", err)
	}
}

func TestAsyncWaitCtxAbandonsWaitNotTransaction(t *testing.T) {
	tm := &fakeTM{}
	release := make(chan struct{})
	f := AtomicallyAsync(tm, false, func(Tx) error {
		<-release //twm:impure test gate; fakeTM commits first try, body runs once
		return nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := f.WaitCtx(ctx)
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("WaitCtx = %v, want *CancelledError", err)
	}
	// The transaction was not cancelled with the wait: it still commits.
	close(release)
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	if tm.commits != 1 {
		t.Fatalf("commits = %d", tm.commits)
	}
}

func TestAsyncGatedHoldsSlotUntilResolved(t *testing.T) {
	tm := &fakeTM{}
	g := NewAdmissionGate(1, 0)
	release := make(chan struct{})
	first := AtomicallyAsyncGated(context.Background(), tm, false, g, nil, func(Tx) error {
		<-release //twm:impure test gate; fakeTM commits first try, body runs once
		return nil
	})
	// Wait until the first transaction holds the only slot.
	for g.InFlight() != 1 {
		time.Sleep(time.Millisecond)
	}
	// With maxWait=0 the saturated gate sheds the second submitter.
	second := AtomicallyAsyncGated(context.Background(), tm, false, g, nil, func(Tx) error { return nil })
	var oe *OverloadError
	if err := second.Wait(); !errors.As(err, &oe) {
		t.Fatalf("second future = %v, want *OverloadError", err)
	}
	close(release)
	if err := first.Wait(); err != nil {
		t.Fatal(err)
	}
	// The slot is released once the future resolves.
	for g.InFlight() != 0 {
		time.Sleep(time.Millisecond)
	}
}

func TestAsyncGatedNilGateAndPolicy(t *testing.T) {
	tm := &fakeTM{}
	v := tm.NewVar(0)
	f := AtomicallyAsyncGated(nil, tm, false, nil, nil, func(tx Tx) error {
		tx.Write(v, 1)
		return nil
	})
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestWaitCtxCancelledBeforeWaitDeterministic: a context that is already
// cancelled when WaitCtx is called must ALWAYS return a *CancelledError, even
// when the future has long since resolved successfully. A two-ready-channel
// select would choose randomly; a caller that honours its context must never
// be handed a success it is required to discard. The loop is what makes the
// regression reliable — the old behavior passed this test roughly half the
// iterations.
func TestWaitCtxCancelledBeforeWaitDeterministic(t *testing.T) {
	tm := &fakeTM{}
	f := AtomicallyAsync(tm, false, func(Tx) error { return nil })
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	attemptsBefore := tm.commits
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 200; i++ {
		err := f.WaitCtx(ctx)
		var ce *CancelledError
		if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want *CancelledError wrapping context.Canceled", i, err)
		}
		if ce.Attempts != 0 {
			t.Fatalf("iteration %d: published %d attempts; an abandoned wait is not an abort", i, ce.Attempts)
		}
	}
	if tm.commits != attemptsBefore {
		t.Fatalf("WaitCtx touched the transaction: commits %d -> %d", attemptsBefore, tm.commits)
	}
	// The resolved result is still there for a well-behaved waiter.
	if err := f.WaitCtx(context.Background()); err != nil {
		t.Fatalf("fresh-context WaitCtx = %v", err)
	}
}
