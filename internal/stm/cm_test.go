package stm

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingCM records every protocol callback so tests can assert the retry
// loop drives managers exactly as documented.
type countingCM struct {
	mu       sync.Mutex
	before   []int
	after    []int
	waits    []AbortReason
	waitFn   func(ctx context.Context, attempt int, reason AbortReason)
	managers int
}

func (c *countingCM) NewManager() ContentionManager {
	c.mu.Lock()
	c.managers++
	c.mu.Unlock()
	return c
}

func (c *countingCM) BeforeAttempt(n int) {
	c.mu.Lock()
	c.before = append(c.before, n)
	c.mu.Unlock()
}

func (c *countingCM) AfterAttempt(n int) {
	c.mu.Lock()
	c.after = append(c.after, n)
	c.mu.Unlock()
}

func (c *countingCM) Wait(ctx context.Context, attempt int, reason AbortReason) {
	c.mu.Lock()
	c.waits = append(c.waits, reason)
	fn := c.waitFn
	c.mu.Unlock()
	if fn != nil {
		fn(ctx, attempt, reason)
	}
}

func TestAtomicallyCMProtocol(t *testing.T) {
	tm := &fakeTM{failCommits: 2}
	cm := &countingCM{}
	if err := AtomicallyCM(nil, tm, false, cm, func(Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	wantAttempts := []int{1, 2, 3}
	if len(cm.before) != 3 || len(cm.after) != 3 {
		t.Fatalf("before=%v after=%v, want three attempts", cm.before, cm.after)
	}
	for i, n := range wantAttempts {
		if cm.before[i] != n || cm.after[i] != n {
			t.Fatalf("attempt numbering before=%v after=%v", cm.before, cm.after)
		}
	}
	// Two aborted attempts, each waited on exactly once; the committing
	// attempt does not wait.
	if len(cm.waits) != 2 {
		t.Fatalf("waits=%v, want 2", cm.waits)
	}
	if cm.managers != 1 {
		t.Fatalf("managers=%d, want one per call", cm.managers)
	}
}

func TestAtomicallyCMSeesCommitFailureReason(t *testing.T) {
	// fakeTM does not implement AbortReasoner, so commit failures must
	// default to ReasonWriteConflict.
	tm := &fakeTM{failCommits: 1}
	cm := &countingCM{}
	if err := AtomicallyCM(nil, tm, false, cm, func(Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(cm.waits) != 1 || cm.waits[0] != ReasonWriteConflict {
		t.Fatalf("waits=%v, want [write-conflict]", cm.waits)
	}
}

func TestAtomicallyCMSeesRetrySignalReason(t *testing.T) {
	tm := &fakeTM{}
	cm := &countingCM{}
	tries := 0
	if err := AtomicallyCM(nil, tm, false, cm, func(Tx) error {
		tries++
		if tries == 1 {
			Retry(ReasonUser)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(cm.waits) != 1 || cm.waits[0] != ReasonUser {
		t.Fatalf("waits=%v, want [user]", cm.waits)
	}
}

func TestAtomicallyCMNilPolicy(t *testing.T) {
	// A nil policy falls back to the built-in backoff fast path.
	tm := &fakeTM{failCommits: 2}
	if err := AtomicallyCM(nil, tm, false, nil, func(Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if tm.commits != 1 {
		t.Fatalf("commits=%d", tm.commits)
	}
}

// reasonedTM is a fakeTM variant whose descriptors remember a configured
// commit-failure reason, exercising the AbortReasoner read-back path.
type reasonedTM struct {
	fakeTM
	reason AbortReason
}

type reasonedTx struct {
	Tx
	tm *reasonedTM
}

func (m *reasonedTM) Begin(readOnly bool) Tx {
	return &reasonedTx{Tx: m.fakeTM.Begin(readOnly), tm: m}
}

func (m *reasonedTM) Commit(tx Tx) bool {
	return m.fakeTM.Commit(tx.(*reasonedTx).Tx)
}

func (m *reasonedTM) Abort(tx Tx) { m.fakeTM.Abort(tx.(*reasonedTx).Tx) }

func (x *reasonedTx) LastAbortReason() AbortReason { return x.tm.reason }

func TestAtomicallyCMReadsAbortReasoner(t *testing.T) {
	tm := &reasonedTM{fakeTM: fakeTM{failCommits: 1}, reason: ReasonLockTimeout}
	cm := &countingCM{}
	if err := AtomicallyCM(nil, tm, false, cm, func(Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(cm.waits) != 1 || cm.waits[0] != ReasonLockTimeout {
		t.Fatalf("waits=%v, want [lock-timeout]", cm.waits)
	}
}

func TestReasonAwareManagerCoversAllReasons(t *testing.T) {
	// Every reason must have a usable schedule entry: Wait must return for any
	// (attempt, reason) pair without panicking or hanging.
	for r := AbortReason(0); r < numAbortReasons; r++ {
		m := ReasonAwarePolicy{}.NewManager()
		for attempt := 1; attempt <= 6; attempt++ {
			m.BeforeAttempt(attempt)
			m.AfterAttempt(attempt)
			m.Wait(nil, attempt, r)
		}
	}
}

func TestReasonAwareLockTimeoutSleepsImmediately(t *testing.T) {
	// Lock timeouts have no yield phase: the first Wait must enter the sleep
	// schedule (yields=0), unlike read conflicts which only yield at first.
	c := reasonClasses[ReasonLockTimeout]
	if c.yields != 0 {
		t.Fatalf("lock-timeout yields=%d, want 0", c.yields)
	}
	if c.baseNS <= reasonClasses[ReasonReadConflict].baseNS {
		t.Fatalf("lock-timeout base window must exceed read-conflict base")
	}
	for _, r := range []AbortReason{ReasonTriad, ReasonTimeWarpSkip} {
		if reasonClasses[r].yields >= reasonClasses[ReasonReadConflict].yields {
			t.Fatalf("%v must start sleeping earlier than read conflicts", r)
		}
	}
}

func TestBackoffDistinctStreams(t *testing.T) {
	// Regression for the clock-seeded lockstep bug: many Backoffs created and
	// first used "at the same time" must still draw pairwise-distinct windows.
	// Drive each past the yield phase so the lazy seed materializes, then
	// compare generator states (equal states would replay identical window
	// sequences forever).
	const n = 64
	states := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		var b Backoff
		b.Wait()
		b.Wait()
		b.Wait() // first sleeping wait: seeds and advances the stream
		if b.rng == 0 {
			t.Fatalf("backoff %d never seeded", i)
		}
		if states[b.rng] {
			t.Fatalf("duplicate backoff stream state after %d instances", i)
		}
		states[b.rng] = true
	}
}

func TestBackoffDistinctStreamsConcurrent(t *testing.T) {
	// Same property when the instances race to seed: the atomic counter hands
	// every goroutine a distinct stream even when they seed in the same tick.
	const n = 32
	var wg sync.WaitGroup
	statesCh := make(chan uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b Backoff
			for j := 0; j < 3; j++ {
				b.Wait()
			}
			statesCh <- b.rng
		}()
	}
	wg.Wait()
	close(statesCh)
	seen := make(map[uint64]bool, n)
	for s := range statesCh {
		if s == 0 || seen[s] {
			t.Fatalf("backoff streams not pairwise distinct under concurrency")
		}
		seen[s] = true
	}
}

// overlapTM aborts every commit whose attempt overlapped in time with any
// other attempt — the harshest possible conflict rule. Without serialization
// no attempt can commit while contenders keep arriving, which makes it the
// ideal harness for the starvation-escalation guarantee: only an attempt that
// runs completely alone succeeds.
type overlapTM struct {
	stats    Stats
	inFlight atomic.Int32
	commits  atomic.Int32
}

type overlapTx struct {
	tm         *overlapTM
	overlapped bool
}

func (m *overlapTM) Name() string { return "overlap" }

func (m *overlapTM) NewVar(initial Value) Var { return &fakeVar{val: initial} }

func (m *overlapTM) Begin(readOnly bool) Tx {
	m.stats.RecordStart()
	t := &overlapTx{tm: m}
	if m.inFlight.Add(1) > 1 {
		t.overlapped = true
	}
	return t
}

func (m *overlapTM) Commit(tx Tx) bool {
	t := tx.(*overlapTx)
	if m.inFlight.Load() > 1 {
		t.overlapped = true
	}
	m.inFlight.Add(-1)
	if t.overlapped {
		m.stats.RecordAbort(ReasonWriteConflict)
		return false
	}
	m.commits.Add(1)
	m.stats.RecordCommit(false)
	return true
}

func (m *overlapTM) Abort(Tx) { m.inFlight.Add(-1) }

func (m *overlapTM) Stats() *Stats { return &m.stats }

func (t *overlapTx) Read(v Var) Value { return v.(*fakeVar).val }
func (t *overlapTx) Write(Var, Value) {}
func (t *overlapTx) ReadOnly() bool   { return false }

func TestStarvationEscalationGuaranteesProgress(t *testing.T) {
	// G goroutines hammer a TM that rejects any overlapped commit. The bodies
	// yield, so on any core count attempts overlap almost always and the
	// backoff lottery alone cannot guarantee progress. The escalation token
	// must: every call commits, and no call needs more than K+1 attempts
	// (attempt K+1 holds the token exclusively, runs alone, and a solo attempt
	// cannot be overlapped).
	const (
		G     = 6
		calls = 25
		K     = 3
	)
	tm := &overlapTM{}
	p := NewStarvationPolicy(K, nil)
	var maxAttempts atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				attempts := 0
				err := AtomicallyCM(nil, tm, false, p, func(Tx) error {
					attempts++
					runtime.Gosched() //twm:impure deliberate scheduling probe: widen the attempt window so contenders overlap
					runtime.Gosched() //twm:impure deliberate scheduling probe: widen the attempt window so contenders overlap
					return nil
				})
				if err != nil {
					t.Errorf("call failed: %v", err)
					return
				}
				for {
					cur := maxAttempts.Load()
					if int64(attempts) <= cur || maxAttempts.CompareAndSwap(cur, int64(attempts)) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := tm.commits.Load(); got != G*calls {
		t.Fatalf("commits=%d, want %d", got, G*calls)
	}
	if got := maxAttempts.Load(); got > K+1 {
		t.Fatalf("a call needed %d attempts; escalation must bound attempts at K+1=%d", got, K+1)
	}
	if p.Escalations() == 0 {
		t.Fatalf("no call escalated; workload did not exercise the guarantee")
	}
	t.Logf("max attempts %d (bound %d), escalations %d", maxAttempts.Load(), K+1, p.Escalations())
}

func TestStarvationEscalationThreshold(t *testing.T) {
	// Unit check of the escalation mechanism: Wait below K delegates to the
	// inner policy; Wait at K flips to escalated without sleeping and bumps
	// the policy counter exactly once per call.
	inner := &countingCM{}
	p := NewStarvationPolicy(2, inner)
	m := p.NewManager().(*starvationCM)
	m.Wait(nil, 1, ReasonReadConflict)
	if m.escalated || len(inner.waits) != 1 {
		t.Fatalf("below-threshold wait must delegate (escalated=%v inner waits=%d)", m.escalated, len(inner.waits))
	}
	m.Wait(nil, 2, ReasonReadConflict)
	m.Wait(nil, 3, ReasonReadConflict)
	if !m.escalated || len(inner.waits) != 1 {
		t.Fatalf("at-threshold wait must escalate without delegating (escalated=%v inner waits=%d)", m.escalated, len(inner.waits))
	}
	if p.Escalations() != 1 {
		t.Fatalf("escalations=%d, want 1 per escalated call", p.Escalations())
	}
}

func TestStarvationPolicyDefaults(t *testing.T) {
	p := NewStarvationPolicy(0, nil)
	if p.threshold() != 8 {
		t.Fatalf("default threshold=%d, want 8", p.threshold())
	}
	// Manager with nil inner must be fully usable.
	m := p.NewManager()
	m.BeforeAttempt(1)
	m.AfterAttempt(1)
	m.Wait(nil, 1, ReasonReadConflict)
}

func TestAtomicallyCMCancelledMidWait(t *testing.T) {
	// A policy sleeping far longer than the test budget: cancellation must cut
	// the wait short and surface a *CancelledError immediately.
	tm := &fakeTM{failCommits: 1 << 30}
	cm := &countingCM{waitFn: func(ctx context.Context, _ int, _ AbortReason) {
		sleepCtx(ctx, time.Hour)
	}}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := AtomicallyCM(ctx, tm, false, cm, func(Tx) error { return nil })
	elapsed := time.Since(start)
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("err=%v, want *CancelledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CancelledError must unwrap to context.Canceled, got %v", err)
	}
	if ce.Attempts < 1 {
		t.Fatalf("attempts=%d, want at least the attempt that was waited on", ce.Attempts)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation mid-wait took %v; must return promptly", elapsed)
	}
}

func TestCancelledErrorMessage(t *testing.T) {
	e := &CancelledError{Attempts: 3, Err: context.DeadlineExceeded}
	if e.Error() == "" || !errors.Is(e, context.DeadlineExceeded) {
		t.Fatalf("CancelledError broken: %v", e)
	}
}
