package stm

import "sync/atomic"

// Stats holds an engine's live transaction counters. All fields are updated
// atomically; engines share one Stats per TM instance. The abort-rate metric
// matches the paper (§5): restarts divided by executions, where executions
// count both committed and restarted attempts.
type Stats struct {
	starts    atomic.Uint64
	commits   atomic.Uint64
	roCommits atomic.Uint64
	aborts    atomic.Uint64
	byReason  [numAbortReasons]atomic.Uint64
}

// RecordStart notes one transaction attempt.
func (s *Stats) RecordStart() { s.starts.Add(1) }

// RecordCommit notes a successful commit; readOnly commits are also tracked
// separately so benchmarks can verify mv-permissiveness claims.
func (s *Stats) RecordCommit(readOnly bool) {
	s.commits.Add(1)
	if readOnly {
		s.roCommits.Add(1)
	}
}

// RecordAbort notes one restart with its cause.
func (s *Stats) RecordAbort(reason AbortReason) {
	s.aborts.Add(1)
	s.byReason[reason].Add(1)
}

// Snapshot is a consistent-enough copy of the counters for reporting.
type Snapshot struct {
	Starts    uint64
	Commits   uint64
	ROCommits uint64
	Aborts    uint64
	ByReason  map[string]uint64
}

// Snapshot copies the current counter values.
func (s *Stats) Snapshot() Snapshot {
	snap := Snapshot{
		Starts:    s.starts.Load(),
		Commits:   s.commits.Load(),
		ROCommits: s.roCommits.Load(),
		Aborts:    s.aborts.Load(),
		ByReason:  make(map[string]uint64),
	}
	for r := AbortReason(0); r < numAbortReasons; r++ {
		if n := s.byReason[r].Load(); n > 0 {
			snap.ByReason[r.String()] = n
		}
	}
	return snap
}

// Reset zeroes every counter.
func (s *Stats) Reset() {
	s.starts.Store(0)
	s.commits.Store(0)
	s.roCommits.Store(0)
	s.aborts.Store(0)
	for i := range s.byReason {
		s.byReason[i].Store(0)
	}
}

// AbortRate returns aborts/(commits+aborts) as in the paper's §5 metric, or 0
// when no transaction ran.
func (sn Snapshot) AbortRate() float64 {
	total := sn.Commits + sn.Aborts
	if total == 0 {
		return 0
	}
	return float64(sn.Aborts) / float64(total)
}
