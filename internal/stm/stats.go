package stm

import "sync/atomic"

// Stats holds an engine's live transaction counters. The abort-rate metric
// matches the paper (§5): restarts divided by executions, where executions
// count both committed and restarted attempts.
//
// The counters are striped across cache-line-padded shards so that Begin and
// Commit on different cores do not serialize on one contended cache line (a
// single shared atomic counter is a global synchronization point that grows
// linearly with core count — exactly the fixed cost the paper's "lightweight"
// argument says a TM must not pay). Long-lived recorders — pooled transaction
// descriptors — each hold a *StatShard obtained once from Shard() and record
// through it; Snapshot aggregates the shards. The Record* methods on Stats
// itself remain for one-off callers and route to shard 0.
type Stats struct {
	shards [statShards]StatShard
	next   atomic.Uint32 // round-robin shard assignment (cold path only)
}

// statShards is the stripe count. Sixteen shards suffice to separate the
// commit-rate of any realistic core count in this repository's benchmarks;
// must be a power of two.
const statShards = 16

// StatShard is one stripe of counters. It is padded so two shards never share
// a cache line (destructive interference granularity is 128 bytes on the
// x86-64 targets we care about: 2 lines, spatial prefetcher).
type StatShard struct {
	starts    atomic.Uint64
	commits   atomic.Uint64
	roCommits atomic.Uint64
	aborts    atomic.Uint64
	byReason  [numAbortReasons]atomic.Uint64

	// Read-path contention counters (semi-visible reads, DESIGN.md §12):
	// stampRetries counts failed CAS attempts while raising a read stamp (a
	// retry means another reader raced the same stamp location — the
	// cache-line ping-pong the sharded stamps exist to eliminate), and
	// stampScans counts committer max-over-shards scans (the commit-side
	// price paid for each promoted, sharded stamp encountered).
	stampRetries atomic.Uint64
	stampScans   atomic.Uint64

	// Group-commit counters (DESIGN.md §13): batches counts installed
	// combiner batches, batchTxs the update commits they carried, batchSpills
	// the members deferred to a later round because their write set overlapped
	// an earlier member's, handoffs the commits performed by another
	// goroutine's leader session, and clockAdvances the shared-clock
	// increments the batched path issued (one per installed batch — the
	// "single global-clock advance" the group-commit stage exists for).
	// batchHist is a coarse batch-size histogram indexed by size bit-length
	// (1, 2, 3-4, 5-8, ..., 65+).
	batches       atomic.Uint64
	batchTxs      atomic.Uint64
	batchSpills   atomic.Uint64
	handoffs      atomic.Uint64
	clockAdvances atomic.Uint64
	batchHist     [batchHistBuckets]atomic.Uint64

	// Sharded-clock counters (DESIGN.md §17): singleShard counts update
	// commits whose footprint stayed inside one clock shard (the
	// zero-coordination fast path — at ClockShards=1 every update commit is
	// one), crossShard counts commits that drew their write version through
	// the cross-shard fence, and shardCASRetries counts GV4-style raise
	// attempts inside the fence that lost to concurrent single-shard
	// fetch-adds.
	singleShard     atomic.Uint64
	crossShard      atomic.Uint64
	shardCASRetries atomic.Uint64

	_ [128 - (14+batchHistBuckets+int(numAbortReasons))*8%128]byte
}

// batchHistBuckets is the batch-size histogram width: bucket i covers sizes
// (2^(i-1), 2^i], so 1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, 65+.
const batchHistBuckets = 8

// Shard hands out a stripe for a long-lived recorder (one pooled transaction
// descriptor). The round-robin assignment costs one atomic add, paid once per
// descriptor lifetime — not per transaction.
func (s *Stats) Shard() *StatShard {
	return &s.shards[s.next.Add(1)&(statShards-1)]
}

// RecordStart notes one transaction attempt.
func (s *StatShard) RecordStart() { s.starts.Add(1) }

// RecordCommit notes a successful commit; readOnly commits are also tracked
// separately so benchmarks can verify mv-permissiveness claims.
func (s *StatShard) RecordCommit(readOnly bool) {
	s.commits.Add(1)
	if readOnly {
		s.roCommits.Add(1)
	}
}

// RecordAbort notes one restart with its cause.
func (s *StatShard) RecordAbort(reason AbortReason) {
	s.aborts.Add(1)
	s.byReason[reason].Add(1)
}

// RecordStampRetries notes n failed CAS attempts while raising a semi-visible
// read stamp. n == 0 is the common case and records nothing.
func (s *StatShard) RecordStampRetries(n uint64) {
	if n > 0 {
		s.stampRetries.Add(n)
	}
}

// RecordStampScan notes one committer max-over-shards stamp scan.
func (s *StatShard) RecordStampScan() { s.stampScans.Add(1) }

// RecordBatch notes one installed group-commit batch of the given size: the
// batch counter, the carried-commit counter and the size histogram advance
// together, so GroupBatchTxs/GroupBatches is the exact mean batch size.
func (s *StatShard) RecordBatch(size int) {
	s.batches.Add(1)
	s.batchTxs.Add(uint64(size))
	s.batchHist[batchHistBucket(size)].Add(1)
}

// batchHistBucket maps a batch size to its histogram bucket (bit length,
// clamped): 1→0, 2→1, 3-4→2, 5-8→3, ..., 65+→7.
func batchHistBucket(size int) int {
	b := 0
	for n := size - 1; n > 0; n >>= 1 {
		b++
	}
	if b >= batchHistBuckets {
		b = batchHistBuckets - 1
	}
	return b
}

// RecordBatchSpills notes n committers deferred to a later combiner round
// because their write sets overlapped an earlier member's.
func (s *StatShard) RecordBatchSpills(n int) {
	if n > 0 {
		s.batchSpills.Add(uint64(n))
	}
}

// RecordHandoff notes one commit performed on the committer's behalf by
// another goroutine's leader session (the flat-combining handoff).
func (s *StatShard) RecordHandoff() { s.handoffs.Add(1) }

// RecordClockAdvance notes one shared-clock increment issued by the batched
// commit path. The one-tick-per-batch invariant (DESIGN.md §13) is asserted
// by tests as ClockAdvances == GroupBatches.
func (s *StatShard) RecordClockAdvance() { s.clockAdvances.Add(1) }

// RecordShardCommit notes one installed update commit, classified by whether
// its footprint stayed inside a single clock shard (the zero-coordination
// path) or drew its write version through the cross-shard fence.
func (s *StatShard) RecordShardCommit(cross bool) {
	if cross {
		s.crossShard.Add(1)
	} else {
		s.singleShard.Add(1)
	}
}

// RecordShardCASRetries notes n CAS-max attempts that lost a race while the
// cross-shard fence raised touched clock cells (GV4-style adoption).
func (s *StatShard) RecordShardCASRetries(n int) {
	if n > 0 {
		s.shardCASRetries.Add(uint64(n))
	}
}

// RecordStart notes one transaction attempt (shard 0; use Shard() on hot
// paths).
func (s *Stats) RecordStart() { s.shards[0].RecordStart() }

// RecordCommit notes a successful commit (shard 0; use Shard() on hot paths).
func (s *Stats) RecordCommit(readOnly bool) { s.shards[0].RecordCommit(readOnly) }

// RecordAbort notes one restart with its cause (shard 0; use Shard() on hot
// paths).
func (s *Stats) RecordAbort(reason AbortReason) { s.shards[0].RecordAbort(reason) }

// Totals sums the shards without allocating (Snapshot builds a map). The
// health watchdog samples through it on its steady-state path, which is
// pinned at 0 allocs/op.
func (s *Stats) Totals() (starts, commits, roCommits, aborts uint64) {
	for i := range s.shards {
		sh := &s.shards[i]
		starts += sh.starts.Load()
		commits += sh.commits.Load()
		roCommits += sh.roCommits.Load()
		aborts += sh.aborts.Load()
	}
	return
}

// Snapshot is a consistent-enough copy of the counters for reporting.
type Snapshot struct {
	Starts    uint64
	Commits   uint64
	ROCommits uint64
	Aborts    uint64
	ByReason  map[string]uint64
	// StampCASRetries counts failed CAS attempts while raising semi-visible
	// read stamps; StampMaxScans counts committer max-over-shards stamp
	// scans. Both are zero on engines without semi-visible reads.
	StampCASRetries uint64
	StampMaxScans   uint64
	// Group-commit counters; all zero on engines without a combiner stage.
	// GroupBatches counts installed batches, GroupBatchTxs the update commits
	// they carried, BatchSpills the members deferred to a later round on a
	// write-write overlap, CombinerHandoffs the commits performed by another
	// goroutine's leader session, and ClockAdvances the shared-clock
	// increments the batched path issued (one per batch). BatchSizeHist is
	// the batch-size histogram (buckets 1, 2, 3-4, 5-8, ..., 65+).
	GroupBatches     uint64
	GroupBatchTxs    uint64
	BatchSpills      uint64
	CombinerHandoffs uint64
	ClockAdvances    uint64
	BatchSizeHist    [8]uint64
	// Sharded-clock counters (zero on engines without Options.ClockShards
	// support). SingleShardCommits counts update commits that advanced one
	// shard's clock with a plain fetch-add; CrossShardCommits counts commits
	// that drew through the cross-shard fence; ShardClockCASRetries counts
	// fence raise attempts that lost to concurrent single-shard advances.
	SingleShardCommits   uint64
	CrossShardCommits    uint64
	ShardClockCASRetries uint64
}

// MeanBatchSize returns the average installed-batch size, or 0 when the
// engine never batched.
func (sn Snapshot) MeanBatchSize() float64 {
	if sn.GroupBatches == 0 {
		return 0
	}
	return float64(sn.GroupBatchTxs) / float64(sn.GroupBatches)
}

// Snapshot sums the shards into one copy of the counter values.
func (s *Stats) Snapshot() Snapshot {
	snap := Snapshot{ByReason: make(map[string]uint64)}
	var byReason [numAbortReasons]uint64
	for i := range s.shards {
		sh := &s.shards[i]
		snap.Starts += sh.starts.Load()
		snap.Commits += sh.commits.Load()
		snap.ROCommits += sh.roCommits.Load()
		snap.Aborts += sh.aborts.Load()
		snap.StampCASRetries += sh.stampRetries.Load()
		snap.StampMaxScans += sh.stampScans.Load()
		snap.GroupBatches += sh.batches.Load()
		snap.GroupBatchTxs += sh.batchTxs.Load()
		snap.BatchSpills += sh.batchSpills.Load()
		snap.CombinerHandoffs += sh.handoffs.Load()
		snap.ClockAdvances += sh.clockAdvances.Load()
		snap.SingleShardCommits += sh.singleShard.Load()
		snap.CrossShardCommits += sh.crossShard.Load()
		snap.ShardClockCASRetries += sh.shardCASRetries.Load()
		for b := range sh.batchHist {
			snap.BatchSizeHist[b] += sh.batchHist[b].Load()
		}
		for r := range sh.byReason {
			byReason[r] += sh.byReason[r].Load()
		}
	}
	for r := AbortReason(0); r < numAbortReasons; r++ {
		if n := byReason[r]; n > 0 {
			snap.ByReason[r.String()] = n
		}
	}
	return snap
}

// Reset zeroes every counter in every shard.
func (s *Stats) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.starts.Store(0)
		sh.commits.Store(0)
		sh.roCommits.Store(0)
		sh.aborts.Store(0)
		sh.stampRetries.Store(0)
		sh.stampScans.Store(0)
		sh.batches.Store(0)
		sh.batchTxs.Store(0)
		sh.batchSpills.Store(0)
		sh.handoffs.Store(0)
		sh.clockAdvances.Store(0)
		sh.singleShard.Store(0)
		sh.crossShard.Store(0)
		sh.shardCASRetries.Store(0)
		for b := range sh.batchHist {
			sh.batchHist[b].Store(0)
		}
		for r := range sh.byReason {
			sh.byReason[r].Store(0)
		}
	}
}

// AbortRate returns aborts/(commits+aborts) as in the paper's §5 metric, or 0
// when no transaction ran.
func (sn Snapshot) AbortRate() float64 {
	total := sn.Commits + sn.Aborts
	if total == 0 {
		return 0
	}
	return float64(sn.Aborts) / float64(total)
}
