package stm

// Regression tests for the three transaction-lifecycle bugs fixed for the
// traffic-serving front end (cmd/twm-server):
//
//  1. a non-retry body panic leaked the pooled descriptor (run only recycled
//     on normal return from runOnce),
//  2. a body panic inside an async transaction crashed the process with the
//     Future never resolved,
//  3. AdmissionGate.Acquire's pure-shed path missed a slot freed between the
//     fast path and the refusal, shedding load with a free slot in hand.
//
// Each was harmless in a closed-loop benchmark (bodies there never panic and
// pure-shed gates are rare) and fatal in a server.

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// recycleTM is fakeTM plus descriptor pooling: it tracks how many descriptors
// were ever allocated and how many Recycle calls returned one to the free
// list, so tests can assert the pool stays balanced across every exit path of
// the retry loop.
type recycleTM struct {
	fakeTM
	allocated int
	recycled  int
	free      []*fakeTx
}

func (p *recycleTM) Begin(readOnly bool) Tx {
	p.stats.RecordStart()
	if n := len(p.free); n > 0 {
		tx := p.free[n-1]
		p.free = p.free[:n-1]
		tx.readOnly = readOnly
		return tx
	}
	p.allocated++
	return &fakeTx{tm: &p.fakeTM, readOnly: readOnly, writes: make(map[*fakeVar]Value)}
}

func (p *recycleTM) Recycle(tx Tx) {
	t := tx.(*fakeTx)
	clear(t.writes)
	p.recycled++
	p.free = append(p.free, t)
}

// TestPanicPathRecyclesDescriptor pins bug 1: a body panic that is not a
// retry signal must still return the descriptor to the pool (the attempt is
// already aborted and the Tx can never be observed again). Before the fix
// every such panic permanently dropped one descriptor.
func TestPanicPathRecyclesDescriptor(t *testing.T) {
	tm := &recycleTM{}
	boom := errors.New("boom")
	const rounds = 32
	for i := 0; i < rounds; i++ {
		func() {
			defer func() {
				if r := recover(); r != boom {
					t.Fatalf("recovered %v, want the body's panic value", r)
				}
			}()
			_ = Atomically(tm, false, func(Tx) error { panic(boom) })
		}()
	}
	if tm.recycled != rounds {
		t.Fatalf("recycled %d descriptors across %d panicking calls", tm.recycled, rounds)
	}
	if tm.allocated != 1 {
		t.Fatalf("allocated %d descriptors, want 1 (pool must be reused across panics)", tm.allocated)
	}
	if tm.aborts != rounds {
		t.Fatalf("aborts = %d, want %d (panic path must abort before recycling)", tm.aborts, rounds)
	}
}

// TestPanicPathRecycleOrdering asserts the panic path recycles after the
// abort, mirroring the documented TxRecycler contract ("after the attempt has
// fully finished").
func TestPanicPathRecycleOrdering(t *testing.T) {
	tm := &recycleTM{}
	defer func() { recover() }()
	_ = Atomically(tm, false, func(Tx) error {
		if tm.recycled != 0 {
			t.Error("recycled before the attempt finished")
		}
		panic("unwind")
	})
}

// TestAsyncBodyPanicResolvesFuture pins bug 2: a panic inside an async body
// must not crash the process — the future resolves with a *PanicError whose
// Stack includes the panic site, and every observer (Wait, WaitCtx, Done)
// sees the resolution.
func TestAsyncBodyPanicResolvesFuture(t *testing.T) {
	tm := &recycleTM{}
	release := make(chan struct{})

	f := AtomicallyAsync(tm, false, func(Tx) error {
		<-release //twm:impure test gate so observers can register before the panic
		panic("async kaboom")
	})

	// Register concurrent observers before the body is allowed to panic.
	var wg sync.WaitGroup
	errs := make([]error, 3)
	wg.Add(3)
	go func() { defer wg.Done(); errs[0] = f.Wait() }()
	go func() { defer wg.Done(); errs[1] = f.WaitCtx(context.Background()) }()
	go func() { defer wg.Done(); <-f.Done(); errs[2] = f.Wait() }()

	close(release)
	wg.Wait()

	for i, err := range errs {
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("observer %d: err = %v, want *PanicError", i, err)
		}
		if pe.Value != "async kaboom" {
			t.Fatalf("observer %d: panic value = %v", i, pe.Value)
		}
		if !bytes.Contains(pe.Stack, []byte("panic")) {
			t.Fatalf("observer %d: stack does not show the panic:\n%s", i, pe.Stack)
		}
	}
	if tm.aborts != 1 {
		t.Fatalf("aborts = %d, want 1 (engine cleanup must run before containment)", tm.aborts)
	}
	if tm.recycled != 1 {
		t.Fatalf("recycled = %d, want 1 (bug 1's fix must hold on the async path too)", tm.recycled)
	}
}

// TestAsyncPanicReleasesGateSlot: the retry loop's deferred gate release runs
// during the panic unwind, so a panicking gated transaction must not leak its
// admission slot.
func TestAsyncPanicReleasesGateSlot(t *testing.T) {
	tm := &recycleTM{}
	g := NewAdmissionGate(1, 0)
	f := AtomicallyAsyncGated(context.Background(), tm, false, g, nil, func(Tx) error {
		panic("gated kaboom")
	})
	var pe *PanicError
	if err := f.Wait(); !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for g.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("gate slot still held after panic containment: in-flight = %d", g.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
	if err := g.Acquire(nil); err != nil {
		t.Fatalf("gate unusable after panic: %v", err)
	}
	g.Release()
}

// TestFutureWaitCtxNil: WaitCtx(nil) must behave like Wait (never cancel),
// matching Backoff.WaitCtx's nil tolerance, instead of panicking on a nil
// context's Done.
func TestFutureWaitCtxNil(t *testing.T) {
	tm := &recycleTM{}
	f := AtomicallyAsync(tm, false, func(Tx) error { return nil })
	if err := f.WaitCtx(nil); err != nil {
		t.Fatalf("WaitCtx(nil) = %v", err)
	}
}

// TestAcquirePureShedReoffer pins bug 3: with maxWait <= 0, a slot freed
// between Acquire's saturated fast path and its refusal must be taken, not
// reported as overload. The test hook releases the only slot at exactly the
// racing instant.
func TestAcquirePureShedReoffer(t *testing.T) {
	g := NewAdmissionGate(1, 0)
	if err := g.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	testHookShedRecheck = func() { g.Release() }
	defer func() { testHookShedRecheck = nil }()
	if err := g.Acquire(nil); err != nil {
		t.Fatalf("Acquire = %v, want admission (a slot was free at decision time)", err)
	}
	testHookShedRecheck = nil
	if g.InFlight() != 1 {
		t.Fatalf("in-flight = %d, want 1", g.InFlight())
	}
	if got := g.Overloads(); got != 0 {
		t.Fatalf("overloads = %d, want 0 (the shed would have been spurious)", got)
	}
	g.Release()

	// A genuinely saturated pure-shed gate still refuses immediately.
	if err := g.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	var oe *OverloadError
	if err := g.Acquire(nil); !errors.As(err, &oe) {
		t.Fatalf("saturated Acquire = %v, want *OverloadError", err)
	}
	g.Release()
}
