package stm

import "slices"

// This file implements the shared write-set representation used by every
// engine's transaction descriptor. The paper's overhead argument (§5.2) is
// that TWM stays competitive because its per-transaction fixed costs are
// small; a Go map allocated on every attempt is not small — it costs several
// allocations at Begin and one hash per barrier. Write sets are almost always
// tiny (a handful of entries for the SkipList and STAMP workloads), so the
// representation below keeps them in an insertion-ordered slice probed
// linearly, spilling to a map index only past wsSpillThreshold entries.
//
// The backing array survives transaction reuse (see TxRecycler): Reset keeps
// capacity, so a retried or pooled transaction re-fills memory it already
// owns instead of re-allocating.

const (
	// wsSpillThreshold is the write-set size above which a map index is built.
	// Linear probes beat map hashing comfortably below it (pointer compares on
	// a contiguous array), and the paper's workloads essentially never exceed
	// it (8-write transactions are already on the large side).
	wsSpillThreshold = 32
	// wsSmallSort is the size at or below which SortEntriesByID uses a simple
	// insertion sort instead of slices.SortFunc.
	wsSmallSort = 16
	// wsMaxRetain caps the backing-array capacity kept across Reset; a
	// pathological transaction should not pin its peak footprint in a pool
	// forever.
	wsMaxRetain = 4096
)

// WSEntry is one buffered write: an engine variable handle and the pending
// value. Entries preserve insertion order until SortEntriesByID.
type WSEntry[K comparable] struct {
	Key K
	Val Value
}

// WriteSet is an insertion-ordered write buffer keyed by an engine's variable
// handle. The zero value is ready to use. It is not safe for concurrent use
// (a Tx belongs to one goroutine).
type WriteSet[K comparable] struct {
	entries []WSEntry[K]
	// spill maps Key to its index in entries once the set outgrows linear
	// probing. It is nil below the threshold and is invalidated by sorting
	// entries, which is only legal once lookups are over (at commit).
	spill map[K]int
}

// Len returns the number of distinct buffered writes.
func (ws *WriteSet[K]) Len() int { return len(ws.entries) }

// Get returns the buffered value for k, if any (the read-after-write path).
func (ws *WriteSet[K]) Get(k K) (Value, bool) {
	if ws.spill != nil {
		if i, ok := ws.spill[k]; ok {
			return ws.entries[i].Val, true
		}
		return nil, false
	}
	for i := range ws.entries {
		if ws.entries[i].Key == k {
			return ws.entries[i].Val, true
		}
	}
	return nil, false
}

// Put buffers val for k, overwriting any previous write to k.
func (ws *WriteSet[K]) Put(k K, val Value) {
	if ws.spill != nil {
		if i, ok := ws.spill[k]; ok {
			ws.entries[i].Val = val
			return
		}
		ws.spill[k] = len(ws.entries)
		ws.entries = append(ws.entries, WSEntry[K]{Key: k, Val: val})
		return
	}
	for i := range ws.entries {
		if ws.entries[i].Key == k {
			ws.entries[i].Val = val
			return
		}
	}
	ws.entries = append(ws.entries, WSEntry[K]{Key: k, Val: val})
	if len(ws.entries) > wsSpillThreshold {
		ws.spill = make(map[K]int, 2*len(ws.entries))
		for i := range ws.entries {
			ws.spill[ws.entries[i].Key] = i
		}
	}
}

// Entries exposes the underlying buffer for commit-time iteration (and
// sorting). The slice aliases the write set; it is valid until the next Put
// or Reset.
func (ws *WriteSet[K]) Entries() []WSEntry[K] { return ws.entries }

// Reset empties the set for reuse. The entry backing array is kept (up to
// wsMaxRetain capacity) but zeroed, so stale variable handles and values do
// not leak through the transaction pool and keep dead objects reachable. The
// spill map is dropped rather than cleared: Go maps never shrink, large write
// sets are rare, and rebuilding a small map on the next spill is cheaper than
// pinning a big one in the pool.
func (ws *WriteSet[K]) Reset() {
	if cap(ws.entries) > wsMaxRetain {
		ws.entries = nil
	} else {
		full := ws.entries[:cap(ws.entries)]
		clear(full)
		ws.entries = ws.entries[:0]
	}
	ws.spill = nil
}

// IDedVar is a variable handle with a stable, per-TM-unique numeric id; the
// lock-based engines acquire commit locks in id order for deadlock avoidance.
type IDedVar interface {
	comparable
	VarID() uint64
}

// SortEntriesByID orders entries by ascending variable id in place. Small
// sets — the overwhelmingly common case — use insertion sort; larger ones use
// slices.SortFunc. Neither path allocates (the comparison closure captures
// nothing), unlike the sort.Slice interface path this replaces.
//
// Sorting invalidates a spilled index, so it must only be called once lookups
// are over: at commit, after the last Get/Put.
func SortEntriesByID[K IDedVar](ents []WSEntry[K]) {
	if len(ents) <= wsSmallSort {
		for i := 1; i < len(ents); i++ {
			e := ents[i]
			id := e.Key.VarID()
			j := i - 1
			for j >= 0 && ents[j].Key.VarID() > id {
				ents[j+1] = ents[j]
				j--
			}
			ents[j+1] = e
		}
		return
	}
	slices.SortFunc(ents, func(a, b WSEntry[K]) int {
		ai, bi := a.Key.VarID(), b.Key.VarID()
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		}
		return 0
	})
}

// ResetVarSlice clears s through its full capacity and returns it with length
// zero, retaining the backing array (up to wsMaxRetain) for reuse. Engines
// use it on read sets, lock lists and other per-transaction slices whose
// stale tails would otherwise keep variables reachable from a pooled
// transaction.
func ResetVarSlice[T any](s []T) []T {
	if cap(s) > wsMaxRetain {
		return nil
	}
	full := s[:cap(s)]
	clear(full)
	return s[:0]
}
