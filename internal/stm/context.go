package stm

import (
	"context"
	"fmt"
)

// CancelledError is returned by AtomicallyCtx and AtomicallyCM when the
// context is cancelled or its deadline expires before the transaction
// commits. It is distinct from both user errors (returned verbatim from the
// body) and engine aborts (which retry silently): the transaction made no
// durable change, and Attempts reports how many attempts had aborted before
// the loop gave up. Unwrap yields the context's own error, so
// errors.Is(err, context.Canceled) and errors.Is(err, context.DeadlineExceeded)
// work as usual.
type CancelledError struct {
	// Attempts counts fully-finished (aborted) attempts before cancellation
	// was observed.
	Attempts int
	// Err is the context's error: context.Canceled or context.DeadlineExceeded.
	Err error
}

// Error implements error.
func (e *CancelledError) Error() string {
	return fmt.Sprintf("stm: transaction cancelled after %d attempts: %v", e.Attempts, e.Err)
}

// Unwrap exposes the context's error to errors.Is/As.
func (e *CancelledError) Unwrap() error { return e.Err }

// AtomicallyCtx is Atomically with cancellation: between retry attempts it
// checks ctx and gives up with a *CancelledError once the context is done.
// Cancellation also cuts a backoff sleep short, so the call returns promptly
// even when cancelled mid-wait. A transaction attempt already in flight is
// never interrupted midway (there is no preemption point inside an attempt),
// so a cancelled call returns only from a consistent state: either before
// starting an attempt or after one aborted.
//
// Use it for request-scoped work where livelock under pathological
// contention must be bounded by a deadline rather than by backoff alone.
func AtomicallyCtx(ctx context.Context, tm TM, readOnly bool, fn func(Tx) error) error {
	return run(ctx, tm, readOnly, nil, nil, fn)
}

// AtomicallyCM is Atomically with an explicit contention-management policy
// and optional cancellation (a nil ctx never cancels). The policy is
// consulted around every attempt and between retries with the attempt count
// and the abort reason; see ContentionManager for the exact protocol and the
// shipped policies (BackoffPolicy, ReasonAwarePolicy, StarvationPolicy).
//
// One manager is manufactured per call (a small allocation); the undecorated
// Atomically remains the allocation-free fast path for code that does not
// need a custom policy.
func AtomicallyCM(ctx context.Context, tm TM, readOnly bool, p Policy, fn func(Tx) error) error {
	var cm ContentionManager
	var gate *AdmissionGate
	if p != nil {
		cm = p.NewManager()
		if a, ok := p.(Admitter); ok {
			gate = a.AdmissionGate()
		}
	}
	return run(ctx, tm, readOnly, gate, cm, fn)
}

// AtomicallyGated is AtomicallyCM with an explicit admission gate: the call is
// admitted through g before its first attempt and occupies one gate slot until
// it finishes. When g is saturated the call waits boundedly and gives up with
// a *OverloadError (or a *CancelledError when ctx is cancelled first), so
// saturation becomes backpressure at the door instead of an abort storm
// inside the engine. Read-only calls bypass the gate. A nil g, p and ctx
// reduce to plain Atomically.
func AtomicallyGated(ctx context.Context, tm TM, readOnly bool, g *AdmissionGate, p Policy, fn func(Tx) error) error {
	var cm ContentionManager
	if p != nil {
		cm = p.NewManager()
	}
	return run(ctx, tm, readOnly, g, cm, fn)
}
