package stm

import "context"

// AtomicallyCtx is Atomically with cancellation: between retry attempts it
// checks ctx and gives up with ctx.Err() once the context is done. A
// transaction attempt already in flight is never interrupted midway (there
// is no preemption point inside an attempt), so a cancelled call returns
// only from a consistent state: either before starting an attempt or after
// one aborted.
//
// Use it for request-scoped work where livelock under pathological
// contention must be bounded by a deadline rather than by backoff alone.
func AtomicallyCtx(ctx context.Context, tm TM, readOnly bool, fn func(Tx) error) error {
	rec, _ := tm.(TxRecycler)
	var bo Backoff
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		tx := tm.Begin(readOnly)
		err, retry := runOnce(tm, tx, fn)
		if rec != nil {
			rec.Recycle(tx)
		}
		if !retry {
			return err
		}
		bo.Wait()
	}
}
