package stm

import (
	"sync/atomic"
	"time"
)

// Profiler accumulates per-phase wall time, reproducing the instrumentation
// behind Fig. 4(c) of the paper: time in read barriers, read-set validation,
// write-set validation, and the remainder of the commit procedure.
//
// Engines receive a Profiler via the Profilable interface; a nil profiler
// means the phase timers are skipped entirely, so regular benchmark runs pay
// no instrumentation cost.
type Profiler struct {
	readNS        atomic.Int64
	readSetValNS  atomic.Int64
	writeSetValNS atomic.Int64
	commitNS      atomic.Int64
	txs           atomic.Int64
}

// processStart anchors Profiler.Now. time.Since reads the monotonic clock,
// so phase deltas are immune to wall-clock steps (NTP slew or jump mid-run
// used to corrupt the Fig. 4(c) breakdown with negative or inflated phase
// times, because UnixNano strips Go's monotonic reading).
var processStart = time.Now()

// Now returns the current monotonic timestamp in nanoseconds since process
// start. Centralized so engines share one definition of "time" for the
// breakdown; only differences of Now values are meaningful.
func (p *Profiler) Now() int64 { return int64(time.Since(processStart)) }

// AddRead charges elapsed nanoseconds to the read-barrier phase.
func (p *Profiler) AddRead(ns int64) { p.readNS.Add(ns) }

// AddReadSetVal charges the read-set validation phase (commit-time read
// validation, plus NOrec-style in-flight revalidation).
func (p *Profiler) AddReadSetVal(ns int64) { p.readSetValNS.Add(ns) }

// AddWriteSetVal charges the write-set validation phase (only TWM and AVSTM
// have one, matching the paper's description).
func (p *Profiler) AddWriteSetVal(ns int64) { p.writeSetValNS.Add(ns) }

// AddCommit charges the remainder of the commit procedure (write-back, version
// installation, lock handoff).
func (p *Profiler) AddCommit(ns int64) { p.commitNS.Add(ns) }

// AddTx notes one finished transaction (committed or aborted attempt), the
// denominator for per-transaction averages.
func (p *Profiler) AddTx() { p.txs.Add(1) }

// Breakdown is the per-transaction average time in each phase, in
// microseconds, matching the units of Fig. 4(c).
type Breakdown struct {
	ReadUS        float64
	ReadSetValUS  float64
	WriteSetValUS float64
	CommitUS      float64
	Txs           int64
}

// TotalUS returns the sum of all phases.
func (b Breakdown) TotalUS() float64 {
	return b.ReadUS + b.ReadSetValUS + b.WriteSetValUS + b.CommitUS
}

// Snapshot computes the current averages.
func (p *Profiler) Snapshot() Breakdown {
	n := p.txs.Load()
	if n == 0 {
		return Breakdown{}
	}
	div := float64(n) * 1e3 // ns -> us and per-tx
	return Breakdown{
		ReadUS:        float64(p.readNS.Load()) / div,
		ReadSetValUS:  float64(p.readSetValNS.Load()) / div,
		WriteSetValUS: float64(p.writeSetValNS.Load()) / div,
		CommitUS:      float64(p.commitNS.Load()) / div,
		Txs:           n,
	}
}

// Reset zeroes all accumulators.
func (p *Profiler) Reset() {
	p.readNS.Store(0)
	p.readSetValNS.Store(0)
	p.writeSetValNS.Store(0)
	p.commitNS.Store(0)
	p.txs.Store(0)
}
