package stm

import (
	"runtime"
	"time"
)

// AbortReason classifies why an engine restarted a transaction. The TWM paper
// distinguishes aborts caused by the classic validation rule from those caused
// by its triad rule; the bench harness reports the split.
type AbortReason uint8

const (
	// ReasonNone is used for bookkeeping slots that never fired.
	ReasonNone AbortReason = iota
	// ReasonReadConflict: a read observed state newer than the snapshot
	// allows (classic validation failure on the read side).
	ReasonReadConflict
	// ReasonWriteConflict: commit-time write/write conflict or failure to
	// acquire ownership of a written variable.
	ReasonWriteConflict
	// ReasonTriad: TWM Rule 2 — committing would make the transaction the
	// time-warping pivot of a triad (source and target flags both raised).
	ReasonTriad
	// ReasonTimeWarpSkip: TWM early abort — an update transaction skipped a
	// version committed by a concurrent time-warping transaction
	// (natOrder != twOrder above the snapshot).
	ReasonTimeWarpSkip
	// ReasonLockTimeout: bounded spinning on a peer's commit lock expired;
	// the transaction self-aborts to avoid deadlock (substitution for the
	// lock-free commit of the paper's prototype).
	ReasonLockTimeout
	// ReasonIntervalEmpty: AVSTM — the transaction's validity interval
	// (lb, ub) became empty, so no serialization point exists.
	ReasonIntervalEmpty
	// ReasonUser: explicit Retry requested by user code.
	ReasonUser

	numAbortReasons
)

// String returns a short stable label for the reason.
func (r AbortReason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonReadConflict:
		return "read-conflict"
	case ReasonWriteConflict:
		return "write-conflict"
	case ReasonTriad:
		return "triad"
	case ReasonTimeWarpSkip:
		return "timewarp-skip"
	case ReasonLockTimeout:
		return "lock-timeout"
	case ReasonIntervalEmpty:
		return "interval-empty"
	case ReasonUser:
		return "user"
	}
	return "unknown"
}

// retrySignal is the sentinel panic value used for non-local aborts from
// inside transaction bodies (the Go analogue of Deuce's abort exception).
type retrySignal struct {
	reason AbortReason
}

// Retry aborts the current transaction and re-executes it from the top. It
// must be called (directly or transitively) from inside an Atomically body.
// Engines use it for early aborts discovered during Read; user code may use it
// to wait for a state change (the retry is subject to backoff).
func Retry(reason AbortReason) {
	panic(retrySignal{reason: reason})
}

// TxRecycler is implemented by engines that pool transaction descriptors.
// Atomically calls Recycle exactly once per attempt, after the attempt has
// fully finished (committed, failed validation, aborted on a retry signal, or
// returned a user error) and the Tx can never be observed again. Recycle
// resets the descriptor — including the backing arrays of its read and write
// sets — and returns it to the engine's pool, so the next Begin (often the
// immediate retry of the same transaction) reuses the memory instead of
// re-allocating it.
//
// Contract for fn bodies run under Atomically against a pooling engine: the
// Tx must not be retained or used after the body returns. Code that needs to
// inspect a transaction after commit (e.g. core's CommitOrders) must drive
// the engine through the manual Begin/Commit API, which never recycles.
type TxRecycler interface {
	Recycle(tx Tx)
}

// Atomically executes fn as a transaction of tm, retrying until it commits.
//
// fn may be executed several times; it must be idempotent apart from its
// transactional reads and writes. Returning a non-nil error aborts the
// transaction without retrying and returns that error (user-level abort).
// Panics other than retry signals propagate after the engine cleans up.
func Atomically(tm TM, readOnly bool, fn func(Tx) error) error {
	rec, _ := tm.(TxRecycler)
	var bo Backoff
	for {
		tx := tm.Begin(readOnly)
		err, retry := runOnce(tm, tx, fn)
		if rec != nil {
			rec.Recycle(tx)
		}
		if !retry {
			return err
		}
		bo.Wait()
	}
}

// runOnce executes one attempt of fn, mapping retry-signal panics to a retry
// request and committing on success.
func runOnce(tm TM, tx Tx, fn func(Tx) error) (err error, retry bool) {
	defer func() {
		if r := recover(); r != nil {
			tm.Abort(tx)
			if _, ok := r.(retrySignal); ok {
				retry = true
				return
			}
			panic(r)
		}
	}()
	if err := fn(tx); err != nil {
		tm.Abort(tx)
		return err, false
	}
	return nil, !tm.Commit(tx)
}

// Backoff implements randomized exponential backoff between transaction
// retries. The zero value is ready to use. The first few retries merely yield
// the processor (cheap on contended single-core schedules); later retries
// sleep for a bounded, randomized exponential duration.
type Backoff struct {
	attempt int
	rng     uint64
}

// backoff tuning. Caps keep worst-case latency bounded under pathological
// contention while still separating contenders in time.
const (
	backoffYields   = 2
	backoffBaseNS   = 1 << 10 // ~1us
	backoffMaxShift = 10      // cap at ~1ms
)

// Wait blocks for the next backoff period and advances the schedule.
func (b *Backoff) Wait() {
	b.attempt++
	if b.attempt <= backoffYields {
		runtime.Gosched()
		return
	}
	if b.rng == 0 {
		// Seed lazily from the clock; per-Backoff state avoids global
		// rand lock contention on the hot retry path.
		b.rng = uint64(time.Now().UnixNano()) | 1
	}
	b.rng ^= b.rng << 13
	b.rng ^= b.rng >> 7
	b.rng ^= b.rng << 17
	shift := b.attempt - backoffYields
	if shift > backoffMaxShift {
		shift = backoffMaxShift
	}
	window := uint64(backoffBaseNS) << uint(shift)
	time.Sleep(time.Duration(b.rng % window))
}

// Reset returns the backoff schedule to its initial state.
func (b *Backoff) Reset() { b.attempt = 0 }
