package stm

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/xrand"
)

// AbortReason classifies why an engine restarted a transaction. The TWM paper
// distinguishes aborts caused by the classic validation rule from those caused
// by its triad rule; the bench harness reports the split.
type AbortReason uint8

const (
	// ReasonNone is used for bookkeeping slots that never fired.
	ReasonNone AbortReason = iota
	// ReasonReadConflict: a read observed state newer than the snapshot
	// allows (classic validation failure on the read side).
	ReasonReadConflict
	// ReasonWriteConflict: commit-time write/write conflict or failure to
	// acquire ownership of a written variable.
	ReasonWriteConflict
	// ReasonTriad: TWM Rule 2 — committing would make the transaction the
	// time-warping pivot of a triad (source and target flags both raised).
	ReasonTriad
	// ReasonTimeWarpSkip: TWM early abort — an update transaction skipped a
	// version committed by a concurrent time-warping transaction
	// (natOrder != twOrder above the snapshot).
	ReasonTimeWarpSkip
	// ReasonLockTimeout: bounded spinning on a peer's commit lock expired;
	// the transaction self-aborts to avoid deadlock (substitution for the
	// lock-free commit of the paper's prototype).
	ReasonLockTimeout
	// ReasonIntervalEmpty: AVSTM — the transaction's validity interval
	// (lb, ub) became empty, so no serialization point exists.
	ReasonIntervalEmpty
	// ReasonUser: explicit Retry requested by user code.
	ReasonUser
	// ReasonChaos: a fault injected by the internal/chaos middleware (spurious
	// abort or forced commit failure). Never produced by a real engine.
	ReasonChaos
	// ReasonMemoryPressure: the version-memory budget is exhausted — a
	// multi-versioned engine refused a version install at the hard limit, or a
	// read walked into a region of a version chain the budget's trim pass had
	// already reclaimed. Only produced when a VersionBudget is configured.
	ReasonMemoryPressure
	// ReasonOverload: an admission gate refused entry (OverloadError). The
	// retry loop records it into the engine's stats so saturation shows up in
	// the retries-by-reason histogram; no engine ever produces it and no
	// attempt ran.
	ReasonOverload
	// ReasonDurability: the engine's CommitLogger refused the write-ahead
	// append, so the commit failed before installing any version — an
	// acknowledged commit must never be less durable than the fsync policy
	// promises. The logger latches its first failure, so these aborts persist
	// until the operator replaces the log (the health watchdog's WAL-stall
	// condition surfaces the state).
	ReasonDurability

	numAbortReasons
)

// String returns a short stable label for the reason.
func (r AbortReason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonReadConflict:
		return "read-conflict"
	case ReasonWriteConflict:
		return "write-conflict"
	case ReasonTriad:
		return "triad"
	case ReasonTimeWarpSkip:
		return "timewarp-skip"
	case ReasonLockTimeout:
		return "lock-timeout"
	case ReasonIntervalEmpty:
		return "interval-empty"
	case ReasonUser:
		return "user"
	case ReasonChaos:
		return "chaos"
	case ReasonMemoryPressure:
		return "memory-pressure"
	case ReasonOverload:
		return "overload"
	case ReasonDurability:
		return "durability"
	}
	return "unknown"
}

// retrySignal is the sentinel panic value used for non-local aborts from
// inside transaction bodies (the Go analogue of Deuce's abort exception).
type retrySignal struct {
	reason AbortReason
}

// Retry aborts the current transaction and re-executes it from the top. It
// must be called (directly or transitively) from inside an Atomically body.
// Engines use it for early aborts discovered during Read; user code may use it
// to wait for a state change (the retry is subject to backoff).
func Retry(reason AbortReason) {
	panic(retrySignal{reason: reason})
}

// TxRecycler is implemented by engines that pool transaction descriptors.
// Atomically calls Recycle exactly once per attempt, after the attempt has
// fully finished (committed, failed validation, aborted on a retry signal, or
// returned a user error) and the Tx can never be observed again. Recycle
// resets the descriptor — including the backing arrays of its read and write
// sets — and returns it to the engine's pool, so the next Begin (often the
// immediate retry of the same transaction) reuses the memory instead of
// re-allocating it.
//
// Contract for fn bodies run under Atomically against a pooling engine: the
// Tx must not be retained or used after the body returns. Code that needs to
// inspect a transaction after commit (e.g. core's CommitOrders) must drive
// the engine through the manual Begin/Commit API, which never recycles.
type TxRecycler interface {
	Recycle(tx Tx)
}

// AbortReasoner is implemented by transaction descriptors that remember why
// the engine last aborted them. Read-path aborts carry their reason in the
// retry signal, but a Commit that returns false has no other channel: the
// engine records the reason on the descriptor before returning, and the retry
// loop reads it back (before recycling) to tell the ContentionManager why the
// attempt failed. Engines that do not implement it are assumed to fail commits
// only on write/write conflicts.
type AbortReasoner interface {
	LastAbortReason() AbortReason
}

// Atomically executes fn as a transaction of tm, retrying until it commits.
//
// fn may be executed several times; it must be idempotent apart from its
// transactional reads and writes. Returning a non-nil error aborts the
// transaction without retrying and returns that error (user-level abort).
// Panics other than retry signals propagate after the engine cleans up.
//
// Retries use the built-in randomized exponential backoff (the schedule of
// the Backoff type). AtomicallyCM plugs in a different contention-management
// policy; AtomicallyCtx bounds the retry loop with a context.
func Atomically(tm TM, readOnly bool, fn func(Tx) error) error {
	return run(nil, tm, readOnly, nil, nil, fn)
}

// run is the shared retry loop behind Atomically, AtomicallyCtx, AtomicallyCM
// and AtomicallyGated. ctx, gate and cm may all be nil; with a nil cm the loop
// uses the built-in Backoff schedule inline (no interface calls, no
// allocation — the hot path of every benchmark).
//
// A non-nil gate admits the call before the first attempt and holds the slot
// until the call finishes (commit, user error, or cancellation) — retries and
// backoff happen inside the slot, so saturation queues new update work at the
// door instead of multiplying in-flight contenders. Read-only transactions
// bypass the gate: they hold no locks and (on the multi-versioned engines)
// never abort, so they are not what an abort storm is made of.
func run(ctx context.Context, tm TM, readOnly bool, gate *AdmissionGate, cm ContentionManager, fn func(Tx) error) error {
	if gate != nil && !readOnly {
		if err := gate.Acquire(ctx); err != nil {
			if _, ok := err.(*OverloadError); ok {
				// Surface the shed load in the engine's histogram: an
				// overload is a transaction the system refused to run.
				tm.Stats().RecordAbort(ReasonOverload)
			}
			return err
		}
		defer gate.Release()
	}
	rec, _ := tm.(TxRecycler)
	var bo Backoff
	for attempt := 1; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return &CancelledError{Attempts: attempt - 1, Err: err}
			}
		}
		if cm != nil {
			cm.BeforeAttempt(attempt)
		}
		tx := tm.Begin(readOnly)
		err, reason, retry := runOnce(tm, rec, tx, fn)
		if rec != nil {
			rec.Recycle(tx)
		}
		if cm != nil {
			cm.AfterAttempt(attempt)
		}
		if !retry {
			return err
		}
		if cm != nil {
			cm.Wait(ctx, attempt, reason)
		} else {
			bo.WaitCtx(ctx)
		}
	}
}

// runOnce executes one attempt of fn, mapping retry-signal panics to a retry
// request and committing on success. On retry it reports why the attempt
// aborted: read-path aborts carry the reason in the retry signal; commit
// failures are read back from the descriptor via AbortReasoner (defaulting to
// ReasonWriteConflict for engines that do not implement it).
func runOnce(tm TM, rec TxRecycler, tx Tx, fn func(Tx) error) (err error, reason AbortReason, retry bool) {
	defer func() {
		if r := recover(); r != nil {
			tm.Abort(tx)
			if sig, ok := r.(retrySignal); ok {
				reason, retry = sig.reason, true
				return
			}
			// A non-retry panic unwinds past the retry loop, so run's own
			// recycle never executes: the descriptor — already aborted, never
			// observable again — must return to the pool here or it is lost
			// for the life of the process (one body panic per pooled
			// descriptor would drain the pool entirely).
			if rec != nil {
				rec.Recycle(tx)
			}
			panic(r)
		}
	}()
	if err := fn(tx); err != nil {
		tm.Abort(tx)
		return err, ReasonNone, false
	}
	if tm.Commit(tx) {
		return nil, ReasonNone, false
	}
	reason = ReasonWriteConflict
	if ar, ok := tx.(AbortReasoner); ok {
		if r := ar.LastAbortReason(); r != ReasonNone {
			reason = r
		}
	}
	return nil, reason, true
}

// Backoff implements randomized exponential backoff between transaction
// retries. The zero value is ready to use. The first few retries merely yield
// the processor (cheap on contended single-core schedules); later retries
// sleep for a bounded, randomized exponential duration.
type Backoff struct {
	attempt int
	rng     uint64
}

// backoff tuning. Caps keep worst-case latency bounded under pathological
// contention while still separating contenders in time.
const (
	backoffYields   = 2
	backoffBaseNS   = 1 << 10 // ~1us
	backoffMaxShift = 10      // cap at ~1ms
)

// backoffSeq distinguishes Backoff streams created anywhere in the process.
// Seeding from the clock looked random but was not: goroutines entering
// backoff in the same nanosecond got byte-identical xorshift streams and
// backed off in lockstep, defeating the randomization exactly when it matters
// (a contention storm sends many losers into backoff together).
var backoffSeq atomic.Uint64

// Wait blocks for the next backoff period and advances the schedule.
func (b *Backoff) Wait() { b.WaitCtx(nil) }

// WaitCtx is Wait with early wake-up: when ctx is non-nil and is cancelled
// mid-sleep, the wait is cut short (the caller re-checks the context).
func (b *Backoff) WaitCtx(ctx context.Context) {
	b.attempt++
	if b.attempt <= backoffYields {
		runtime.Gosched()
		return
	}
	if b.rng == 0 {
		// Seed lazily from a process-wide counter mixed through the
		// SplitMix64 finalizer: every Backoff gets a distinct, well-spread
		// stream with no clock dependence and no global rand lock.
		b.rng = xrand.Mix(backoffSeq.Add(1)) | 1
	}
	b.rng ^= b.rng << 13
	b.rng ^= b.rng >> 7
	b.rng ^= b.rng << 17
	shift := b.attempt - backoffYields
	if shift > backoffMaxShift {
		shift = backoffMaxShift
	}
	window := uint64(backoffBaseNS) << uint(shift)
	sleepCtx(ctx, time.Duration(b.rng%window))
}

// Reset returns the backoff schedule to its initial state.
func (b *Backoff) Reset() { b.attempt = 0 }

// sleepCtx sleeps for d, returning early if ctx is cancelled. Short sleeps
// (below ~100us) are not worth a timer plus select; cancellation latency is
// bounded by the sleep itself in that regime.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if ctx == nil || d < 100*time.Microsecond {
		time.Sleep(d)
		return
	}
	done := ctx.Done()
	if done == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}
