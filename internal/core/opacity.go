package core

import "repro/internal/stm"

// Opacity mode — the extension sketched in §4.2 of the paper.
//
// Baseline TWM guarantees Virtual World Consistency: update transactions use
// a cheaper, invisible read with a stricter visibility rule (natOrder and
// twOrder both at or below the snapshot), so a concurrent reader and writer
// may perceive different serialization orders (one of them then aborts).
// The paper notes that opacity is obtained by "homogenizing the logic
// governing the execution of read operations for both read-only and update
// transactions": update transactions observe time-warp committed versions
// and perform (semi-)visible reads, exactly like read-only ones.
//
// Consequences implemented here:
//
//   - readOpaque: semi-visible read, then the newest version with
//     twOrder <= start — the read-only visibility rule. The semi-visible
//     stamp at read time is what forces a transaction that would time-warp
//     below this snapshot to observe the anti-dependency (and abort as a
//     pivot), keeping every already-read value stable within the snapshot:
//     a writer's warp destination always exceeds its own start, and any
//     writer that began before our read is caught by the stamp.
//   - scanOpaque: commit-time anti-dependency detection keys on twOrder
//     (the serialization order) instead of natOrder: the transaction missed
//     exactly the versions with twOrder above its start, and Rule 1 must
//     serialize it before the earliest of them in time-warp order. Versions
//     from committers with a larger natOrder are ignored when un-warped
//     (they serialize after us at their own natural position) and abort us
//     when warped (their destination is unordered against ours).
//
// The mode is validated by the same machinery as the baseline: the
// cross-engine conformance battery and the DSG serializability oracle (see
// opacity_test.go), plus an in-flight snapshot-consistency check.
func (tx *txn) readOpaque(tv *twvar) stm.Value {
	if val, ok := tx.writeSet.Get(tv); ok {
		return val // read-after-write
	}
	tx.readSet = append(tx.readSet, tv)
	tx.semiVisibleRead(tv, tx.tm.clock.Load(0)) // opacity excludes sharding
	if !tv.waitUnlocked(tx, tx.tm.opts.LockSpinBudget) {
		tx.stats.RecordAbort(stm.ReasonLockTimeout)
		stm.Retry(stm.ReasonLockTimeout)
	}
	ver := tv.latest.Load()
	for ver.twOrder > tx.start {
		ver = ver.next.Load()
		if ver == nil {
			// A hard-pressure trim reclaimed the version this snapshot needs
			// (trim only cuts a chain suffix, so a walk that terminates
			// normally saw everything it would have pre-trim).
			tx.stats.RecordAbort(stm.ReasonMemoryPressure)
			stm.Retry(stm.ReasonMemoryPressure)
		}
	}
	return ver.value
}

// scanOpaque performs the commit-time anti-dependency scan for one read
// variable under opacity visibility. It returns stm.ReasonNone when the
// transaction may proceed, stm.ReasonTimeWarpSkip when it must abort (a
// time-warped version from a later natural committer), and
// stm.ReasonMemoryPressure when the scan ran off a chain shortened by a
// hard-pressure trim — anti-dependency information may be lost, so the
// commit aborts rather than risk mis-serialization.
func (tx *txn) scanOpaque(ver *version) stm.AbortReason {
	for ver.twOrder > tx.start {
		if ver.natOrder < tx.natOrder {
			// Missed version from an earlier natural committer: serialize
			// before its time-warp position.
			if tx.minAntiDep == 0 || ver.twOrder < tx.minAntiDep {
				tx.minAntiDep = ver.twOrder
			}
			tx.source = true
		} else if ver.timeWarped() {
			return stm.ReasonTimeWarpSkip
		}
		ver = ver.next.Load()
		if ver == nil {
			return stm.ReasonMemoryPressure
		}
	}
	return stm.ReasonNone
}
