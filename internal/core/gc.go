package core

// Multi-version garbage collection (§3.4 of the paper): with k the start
// timestamp of the oldest active transaction, every version strictly older
// than the newest version visible at k can never again be read — the newest
// version with natOrder <= k and twOrder <= k satisfies every active and
// future snapshot, and the paper's argument shows no future commit can
// time-warp below k (such a transaction would need a concurrent
// anti-dependent committer with natOrder < k, contradicting k's minimality).

import "repro/internal/stm"

// maybeGC runs a collection pass every Options.GCEveryNCommits update commits.
func (tm *TM) maybeGC() {
	every := tm.opts.GCEveryNCommits
	if every < 0 {
		return
	}
	if tm.gcCount.Add(1)%uint64(every) != 0 {
		return
	}
	tm.GC()
}

// GC trims version lists down to the oldest version any active or future
// transaction can observe. It skips variables whose commit lock is busy (the
// next pass will get them) and returns the number of versions released.
func (tm *TM) GC() int {
	// Passes are serialized so each pass's bound is at least its
	// predecessor's; an older bound walking a list truncated by a newer pass
	// would run off the tail.
	tm.gcMu.Lock()
	defer tm.gcMu.Unlock()
	bound := tm.active.MinStart(tm.clock.Load())
	tm.varsMu.Lock()
	vars := tm.vars // snapshot; vars are append-only
	tm.varsMu.Unlock()

	freed := 0
	for _, v := range vars {
		if !v.owner.CompareAndSwap(nil, gcOwner) {
			continue // busy committer; skip
		}
		ver := v.latest.Load()
		for ver.natOrder > bound || ver.twOrder > bound {
			ver = ver.next.Load()
		}
		// ver is the newest version visible at bound; everything older is
		// unreachable by any current or future snapshot.
		for tail := ver.next.Load(); tail != nil; tail = tail.next.Load() {
			freed++
		}
		ver.next.Store(nil)
		v.owner.CompareAndSwap(gcOwner, nil)
	}
	return freed
}

// VersionCount returns the number of live versions of v (including the
// oldest retained one). Exposed for tests and the GC ablation benchmark.
func (tm *TM) VersionCount(v stm.Var) int {
	tv := v.(*twvar)
	n := 0
	for ver := tv.latest.Load(); ver != nil; ver = ver.next.Load() {
		n++
	}
	return n
}
