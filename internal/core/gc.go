package core

// Multi-version garbage collection (§3.4 of the paper): with k the start
// timestamp of the oldest active transaction, every version strictly older
// than the newest version visible at k can never again be read — the newest
// version with natOrder <= k and twOrder <= k satisfies every active and
// future snapshot, and the paper's argument shows no future commit can
// time-warp below k (such a transaction would need a concurrent
// anti-dependent committer with natOrder < k, contradicting k's minimality).
//
// Under a version budget (Options.Budget) two more passes exist on top of the
// snapshot-bounded rule: admitInstall runs the same pass eagerly when the
// budget crosses its soft limit, and trimLocked cuts chains to a fixed depth
// at hard pressure — the one pass that may free versions an active snapshot
// still needs (the affected transactions restart with
// stm.ReasonMemoryPressure; see DESIGN.md §11).

import (
	"repro/internal/mvutil"
	"repro/internal/stm"
)

// maybeGC runs a collection pass every Options.GCEveryNCommits update commits.
func (tm *TM) maybeGC() {
	every := tm.opts.GCEveryNCommits
	if every < 0 {
		return
	}
	if tm.gcCount.Add(1)%uint64(every) != 0 {
		return
	}
	tm.GC()
}

// GC trims version lists down to the oldest version any active or future
// transaction can observe. It skips variables whose commit lock is busy (the
// next pass will get them) and returns the number of versions released.
func (tm *TM) GC() int {
	// Passes are serialized so each pass's bound is at least its
	// predecessor's; an older bound walking a list truncated by a newer pass
	// would run off the tail.
	tm.gcMu.Lock()
	defer tm.gcMu.Unlock()
	return tm.gcLocked()
}

// gcLocked is the collection pass body; the caller holds gcMu.
//
// At ClockShards>1 the bound is computed per shard: active transactions
// register their snapshot vectors (RegisterVec), so shard s's bound is the
// oldest *component s* among live snapshots, capped by shard s's own clock —
// exact per domain. Folding the scalar min instead would couple every
// shard's bound to the slowest shard's clock and, under skewed progress,
// freeze collection on the busy shards (chains then grow without bound and
// each pass re-walks them).
func (tm *TM) gcLocked() int {
	var bounds [mvutil.MaxClockShards]uint64
	k := tm.clock.Shards()
	for s := 0; s < k; s++ {
		bounds[s] = tm.clock.Load(s)
	}
	tm.active.MinStarts(bounds[:k])
	tm.varsMu.Lock()
	vars := tm.vars // snapshot; vars are append-only
	tm.varsMu.Unlock()

	freed := 0
	var freedBytes int64
	for _, v := range vars {
		if !v.owner.CompareAndSwap(nil, gcOwner) {
			continue // busy committer; skip
		}
		bound := bounds[v.shard]
		ver := v.latest.Load()
		for ver.natOrder > bound || ver.twOrder > bound {
			next := ver.next.Load()
			if next == nil {
				// A trim pass already cut below the version visible at bound;
				// ver is the oldest retained version and nothing older exists
				// to free.
				break
			}
			ver = next
		}
		// ver is the newest version visible at bound (or the trim cut);
		// everything older is unreachable by any current or future snapshot.
		for tail := ver.next.Load(); tail != nil; tail = tail.next.Load() {
			freed++
			freedBytes += mvutil.ApproxVersionBytes(tail.value)
		}
		ver.next.Store(nil)
		v.owner.CompareAndSwap(gcOwner, nil)
	}
	if b := tm.opts.Budget; b != nil && freed > 0 {
		b.Release(int64(freed), freedBytes)
	}
	return freed
}

// trimLocked cuts every variable's chain to at most depth versions, newest
// first; the caller holds gcMu. Unlike gcLocked it ignores the active-snapshot
// bound, so it may free versions an in-flight transaction still needs — the
// hard-pressure degradation that trades the read-only no-abort guarantee for
// a memory bound. Safety survives because a trim only removes a chain suffix:
// every read and commit-time scan that terminates normally saw exactly what
// it would have seen pre-trim, and a walk that reaches the shortened end
// aborts with stm.ReasonMemoryPressure instead of guessing. It returns the
// number of versions released.
func (tm *TM) trimLocked(depth int) int {
	if depth < 1 {
		depth = 1
	}
	tm.varsMu.Lock()
	vars := tm.vars // snapshot; vars are append-only
	tm.varsMu.Unlock()

	freed := 0
	var freedBytes int64
	for _, v := range vars {
		if !v.owner.CompareAndSwap(nil, gcOwner) {
			continue // busy committer; skip
		}
		ver := v.latest.Load()
		for i := 1; i < depth; i++ {
			next := ver.next.Load()
			if next == nil {
				break
			}
			ver = next
		}
		for tail := ver.next.Load(); tail != nil; tail = tail.next.Load() {
			freed++
			freedBytes += mvutil.ApproxVersionBytes(tail.value)
		}
		ver.next.Store(nil)
		v.owner.CompareAndSwap(gcOwner, nil)
	}
	if b := tm.opts.Budget; b != nil && freed > 0 {
		b.Release(int64(freed), freedBytes)
	}
	return freed
}

// VersionCount returns the number of live versions of v (including the
// oldest retained one). Exposed for tests and the GC ablation benchmark.
func (tm *TM) VersionCount(v stm.Var) int {
	tv := v.(*twvar)
	n := 0
	for ver := tv.latest.Load(); ver != nil; ver = ver.next.Load() {
		n++
	}
	return n
}
