package core

import (
	"sync"
	"testing"

	"repro/internal/stm"
)

// TestGCUnderLoad hammers a small variable set with writers, long-running
// readers and aggressive automatic GC simultaneously, then verifies both
// application-level consistency and that the version lists were actually
// trimmed.
func TestGCUnderLoad(t *testing.T) {
	tm := New(Options{GCEveryNCommits: 16})
	const nv = 8
	const pairSum = 800
	vars := make([]stm.Var, nv)
	for i := range vars {
		vars[i] = tm.NewVar(pairSum / nv)
	}

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ { // transfer writers preserve the total
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := seed
			next := func(n int) int {
				r ^= r << 13
				r ^= r >> 7
				r ^= r << 17
				return int(r % uint64(n))
			}
			for i := 0; i < 400; i++ {
				from, to := next(nv), next(nv)
				if from == to {
					continue
				}
				_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
					f := tx.Read(vars[from]).(int)
					if f < 1 {
						return nil
					}
					tx.Write(vars[from], f-1) //twm:allow abortshape balance guard; the stress test wants conflicting transfers
					tx.Write(vars[to], tx.Read(vars[to]).(int)+1)
					return nil
				})
			}
		}(uint64(g)*77 + 13)
	}
	wg.Add(1)
	go func() { // long-running read-only snapshots across GC passes
		defer wg.Done()
		for i := 0; i < 200; i++ {
			tx := tm.Begin(true)
			sum := 0
			for _, v := range vars {
				sum += tx.Read(v).(int)
			}
			if sum != pairSum {
				t.Errorf("snapshot sum = %d, want %d", sum, pairSum)
			}
			if !tm.Commit(tx) {
				t.Errorf("read-only commit failed")
			}
		}
	}()
	wg.Add(1)
	go func() { // explicit GC pressure on top of the automatic passes
		defer wg.Done()
		for i := 0; i < 100; i++ {
			tm.GC()
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Final consistency and bounded version lists.
	tm.GC()
	total := 0
	tx := tm.Begin(true)
	for _, v := range vars {
		total += tx.Read(v).(int)
	}
	tm.Commit(tx)
	if total != pairSum {
		t.Fatalf("final sum = %d, want %d", total, pairSum)
	}
	for i, v := range vars {
		if n := tm.VersionCount(v); n > 2 {
			t.Fatalf("var %d retains %d versions after quiescent GC", i, n)
		}
	}
}

// TestGCConcurrentPassesDoNotInterfere runs many concurrent GC passes
// against a mutating workload (regression for the serialized-bound fix).
func TestGCConcurrentPassesDoNotInterfere(t *testing.T) {
	tm := New(Options{GCEveryNCommits: 8})
	x := tm.NewVar(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
					tx.Write(x, tx.Read(x).(int)+1)
					return nil
				})
				if i%10 == 0 {
					tm.GC()
				}
			}
		}()
	}
	wg.Wait()
	ro := tm.Begin(true)
	if got := ro.Read(x); got != 4*300 {
		t.Fatalf("counter = %v, want %d", got, 4*300)
	}
	tm.Commit(ro)
}
