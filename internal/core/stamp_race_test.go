package core

import (
	"sync"
	"testing"

	"repro/internal/mvutil"
	"repro/internal/stm"
)

// Adversarial tests for the sharded semi-visible read stamps (DESIGN.md §12):
// the committer-side max-over-shards must observe raises regardless of which
// home shard a reader landed on, and the shard-wise raise/observe race
// argument must hold end to end while readers pinned to distinct shards race
// a validating committer.

// TestShardedStampTargetAnyShard replays the Fig. 2(b) triad with x's stamp
// promoted, once per possible home shard of the semi-visible reader: the
// pivot B must observe the reader's raise (and abort under Rule 2) no matter
// which stripe carries it.
func TestShardedStampTargetAnyShard(t *testing.T) {
	for shard := 0; shard < mvutil.StampShards; shard++ {
		tm := newTM()
		x := tm.NewVar(0)
		y := tm.NewVar(0)
		tm.PromoteStamp(x)

		b := tm.Begin(false)
		b.Read(y)
		b.Write(x, 99)

		a := tm.Begin(false)
		a.Read(y)
		a.Write(y, 1)
		if !tm.Commit(a) {
			t.Fatalf("shard %d: a commit failed", shard)
		}

		c := tm.Begin(true).(*txn)
		c.stampShard = shard // pin the semi-visible raise to this stripe
		if got := c.Read(x); got != 0 {
			t.Fatalf("shard %d: c read = %v", shard, got)
		}
		if !tm.Commit(c) {
			t.Fatalf("shard %d: read-only c must commit", shard)
		}

		if tm.Commit(b) {
			t.Fatalf("shard %d: pivot B must abort — committer missed the raise in stripe %d", shard, shard)
		}
		snap := tm.Stats().Snapshot()
		if snap.ByReason["triad"] != 1 {
			t.Fatalf("shard %d: abort reasons = %v, want one triad", shard, snap.ByReason)
		}
		if snap.StampMaxScans == 0 {
			t.Fatalf("shard %d: committer never scanned the sharded stamp", shard)
		}
	}
}

// TestShardedStampRaiseObserveRace soaks the shard-wise raise/observe
// argument: readers pinned to distinct shards race a committer (B) that is
// an anti-dependency source and validates x's stamp under its commit lock.
// The checkable end-to-end invariant is exactly the one the argument proves:
// if B time-warp commits at TW(B), then every reader whose snapshot covers
// TW(B) observed B's write — a reader that instead read the old value must
// have raised its stamp early enough for B to see it, making B a
// source-and-target pivot that aborts. A violation here means a committer
// missed a raise in some stripe. Run under -race in CI.
func TestShardedStampRaiseObserveRace(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 60
	}
	const readers = 4
	for it := 0; it < iters; it++ {
		tm := newTM()
		x := tm.NewVar(0)
		y := tm.NewVar(0)
		tm.PromoteStamp(x)

		b := tm.Begin(false).(*txn)
		b.Read(y)
		b.Write(x, 99)

		a := tm.Begin(false)
		a.Read(y)
		a.Write(y, 1)
		if !tm.Commit(a) {
			t.Fatalf("iter %d: a commit failed", it)
		}

		type obs struct {
			start uint64
			val   stm.Value
		}
		results := make([]obs, readers)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < readers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				c := tm.Begin(true).(*txn)
				c.stampShard = i // distinct stripes across the readers
				v := c.Read(x)
				if !tm.Commit(c) {
					t.Errorf("iter %d: read-only reader aborted", it)
				}
				results[i] = obs{start: c.start, val: v}
			}(i)
		}
		close(start)
		committed := tm.Commit(b)
		wg.Wait()

		if committed {
			for i, r := range results {
				if r.start >= b.twOrder && r.val != 99 {
					t.Fatalf("iter %d: B committed at TW=%d (N=%d) but reader %d with snapshot %d read %v — a raise was missed",
						it, b.twOrder, b.natOrder, i, r.start, r.val)
				}
			}
		}
	}
}

// TestPromotionPublishesRaise covers the two promotion paths
// deterministically (the contention that normally triggers them needs real
// parallelism): a promotion must carry both the inline stamp it extends and
// the raise that triggered it, and a promoter that loses the pointer CAS
// must land its raise in the winner's register.
func TestPromotionPublishesRaise(t *testing.T) {
	tm := newTM()
	x := tm.NewVar(0).(*twvar)
	tx := tm.Begin(false).(*txn)

	tx.semiVisibleRead(x, 7) // inline fast path
	if tm.StampSharded(x) {
		t.Fatal("uncontended raise must not promote")
	}
	if got := tx.stampMax(x); got != 7 {
		t.Fatalf("inline stampMax = %d, want 7", got)
	}

	tx.promoteStamp(x, 9)
	if !tm.StampSharded(x) {
		t.Fatal("promoteStamp did not publish")
	}
	if got := tx.stampMax(x); got != 9 {
		t.Fatalf("post-promotion stampMax = %d, want 9 (raise carried by promotion)", got)
	}

	// A second promoter loses the pointer CAS; its raise must still land.
	tx2 := tm.Begin(false).(*txn)
	tx2.promoteStamp(x, 11)
	if got := tx.stampMax(x); got != 11 {
		t.Fatalf("lost-race promotion stampMax = %d, want 11", got)
	}

	// Post-promotion raises go through the register; the inline stamp stays
	// folded into the committer-side maximum.
	tx.semiVisibleRead(x, 13)
	if got := tx.stampMax(x); got != 13 {
		t.Fatalf("promoted raise stampMax = %d, want 13", got)
	}
	if got := x.readStamp.Load(); got != 7 {
		t.Fatalf("inline stamp changed after promotion: %d, want 7", got)
	}
}

// TestPreDoomedCommitLeavesClockAlone verifies the clock-pressure relief: a
// commit that preDoomed rejects — here the Fig. 2(b) triad pivot — must not
// bump the shared clock (doomed commits "pass" on their increment).
func TestPreDoomedCommitLeavesClockAlone(t *testing.T) {
	tm := newTM()
	x := tm.NewVar(0)
	y := tm.NewVar(0)

	b := tm.Begin(false)
	b.Read(y)
	b.Write(x, 99)

	a := tm.Begin(false)
	a.Read(y)
	a.Write(y, 1)
	if !tm.Commit(a) {
		t.Fatal("a commit failed")
	}

	c := tm.Begin(true)
	_ = c.Read(x)
	if !tm.Commit(c) {
		t.Fatal("read-only c must commit")
	}

	before := tm.Clock()
	if tm.Commit(b) {
		t.Fatal("pivot B must abort")
	}
	if after := tm.Clock(); after != before {
		t.Fatalf("doomed commit bumped the clock: %d -> %d", before, after)
	}
	if snap := tm.Stats().Snapshot(); snap.ByReason["triad"] != 1 {
		t.Fatalf("abort reasons = %v, want one triad", snap.ByReason)
	}
}

// TestPreDoomedClassicValidation checks the DisableTimeWarp ablation's
// pre-draw doom: a stale read set aborts before the clock is touched.
func TestPreDoomedClassicValidation(t *testing.T) {
	tm := New(Options{DisableTimeWarp: true, GCEveryNCommits: -1})
	x := tm.NewVar(0)
	y := tm.NewVar(0)

	b := tm.Begin(false)
	b.Read(x)
	b.Write(y, 1)

	a := tm.Begin(false)
	a.Write(x, 2)
	if !tm.Commit(a) {
		t.Fatal("a commit failed")
	}

	before := tm.Clock()
	if tm.Commit(b) {
		t.Fatal("classic validation must abort b")
	}
	if after := tm.Clock(); after != before {
		t.Fatalf("doomed commit bumped the clock: %d -> %d", before, after)
	}
}

// TestAdaptivePromotionUnderContention drives concurrent read-only readers
// at one variable until CAS contention promotes its inline stamp, then
// checks the promoted register carries subsequent raises and the retry
// counter recorded the collisions that triggered promotion.
func TestAdaptivePromotionUnderContention(t *testing.T) {
	tm := newTM()
	x := tm.NewVar(0)

	const readers = 8
	for round := 0; round < 200 && !tm.StampSharded(x); round++ {
		// Bump the clock so every raise proposes a fresh, larger stamp —
		// same-value raises are satisfied without a CAS and cannot collide.
		bump := tm.Begin(false)
		bump.Write(tm.NewVar(0), round)
		if !tm.Commit(bump) {
			t.Fatal("clock bump failed")
		}
		var wg sync.WaitGroup
		for i := 0; i < readers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := tm.Begin(true)
				_ = c.Read(x)
				_ = tm.Commit(c)
			}()
		}
		wg.Wait()
	}
	if !tm.StampSharded(x) {
		t.Skip("no CAS contention materialized on this machine; promotion not reached")
	}
	if snap := tm.Stats().Snapshot(); snap.StampCASRetries == 0 {
		t.Fatalf("promotion happened but no stamp CAS retries were recorded")
	}
	// Raises keep flowing through the promoted register.
	xv := x.(*twvar)
	before := xv.stamps.Load().Max()
	c := tm.Begin(true)
	_ = c.Read(x)
	if !tm.Commit(c) {
		t.Fatal("read-only commit failed")
	}
	if after := xv.stamps.Load().Max(); after < before {
		t.Fatalf("sharded stamp went backwards: %d -> %d", before, after)
	}
}
