package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/stm"
)

func TestQuiesceNoActivity(t *testing.T) {
	tm := newTM()
	done := make(chan struct{})
	go func() {
		tm.Quiesce()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("Quiesce hung with no active transactions")
	}
}

func TestQuiesceWaitsForActive(t *testing.T) {
	tm := newTM()
	x := tm.NewVar(0)

	tx := tm.Begin(false)
	tx.Read(x)

	released := make(chan struct{})
	quiesced := make(chan struct{})
	go func() {
		tm.Quiesce()
		close(quiesced)
	}()

	select {
	case <-quiesced:
		t.Fatalf("Quiesce returned while a transaction was active")
	case <-time.After(50 * time.Millisecond):
	}
	tm.Abort(tx)
	close(released)
	select {
	case <-quiesced:
	case <-time.After(2 * time.Second):
		t.Fatalf("Quiesce did not return after the transaction finished")
	}
	<-released
}

func TestQuiesceIgnoresLaterTransactions(t *testing.T) {
	// Transactions that begin after the fence must not delay quiescence:
	// start a continuous stream of new transactions and check Quiesce still
	// returns.
	tm := newTM()
	x := tm.NewVar(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
				tx.Write(x, tx.Read(x).(int)+1)
				return nil
			})
		}
	}()
	done := make(chan struct{})
	go func() {
		tm.Quiesce()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("Quiesce starved by later transactions")
	}
	close(stop)
	wg.Wait()
}

func TestPrivatizationPattern(t *testing.T) {
	// The privatization idiom: detach a structure transactionally, quiesce,
	// then read it non-transactionally. The detached value must reflect all
	// transactional updates, including time-warped ones.
	tm := newTM()
	shared := tm.NewVar(0)
	handle := tm.NewVar(true) // true = shared, false = privatized

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
					if !tx.Read(handle).(bool) {
						return nil // already privatized
					}
					tx.Write(shared, tx.Read(shared).(int)+1)
					return nil
				})
			}
		}()
	}

	// Privatize midway.
	time.Sleep(time.Millisecond)
	if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
		tx.Write(handle, false)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tm.Quiesce()

	// Safe non-transactional read: snapshot via a read-only transaction is
	// used here only to extract the value; after quiescence no concurrent
	// writer can still commit into the privatized variable.
	var frozen int
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		frozen = tx.Read(shared).(int)
		return nil
	})
	wg.Wait()
	var final int
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		final = tx.Read(shared).(int)
		return nil
	})
	if frozen != final {
		t.Fatalf("writes slipped past privatization: %d then %d", frozen, final)
	}
}
