package core

import (
	"math/bits"

	"repro/internal/mvutil"
	"repro/internal/stm"
)

// This file is the TWM group-commit stage (DESIGN.md §13): the engine-side
// callback behind mvutil.Combiner. The leader installs each batch by running,
// member by member, exactly the sequence of steps the serial Commit performs —
// lock, anti-dependency target check, semi-visible raises and read scan, the
// triad rule, time-warp order assignment, version insertion — with two
// deviations that define the batch:
//
//   - all members' commit locks are acquired before any member is processed,
//     and the shared clock advances once by the member count (base-k+1..base
//     become the members' natural orders in admitted order);
//   - locks held by not-yet-processed members are treated as unlocked during
//     a member's read scan (waitUnlockedBatch), since their versions do not
//     exist yet — just as in the sequential schedule the batch is equivalent
//     to.
//
// Per-member checks run at the member's processing turn, after every earlier
// member's raises and installs, so each member observes exactly the state the
// sequential schedule would show it. Batches are admitted pairwise
// write-write disjoint (overlapping members spill to the next round), which
// is what makes "lock everything, then install in order" deadlock- and
// alias-free.

// commitGrouped publishes tx to the combiner and waits for a leader —
// possibly this goroutine — to resolve it.
func (tm *TM) commitGrouped(tx *txn) bool {
	tx.req.Reset(tx)
	ok, handoff := tm.combiner.Submit(&tx.req, tx.stampShard, tm.commitBatch)
	if handoff {
		tx.stats.RecordHandoff()
	}
	return ok
}

// commitBatch installs one drained batch. It always runs under the combiner's
// leader lock, which guards the TM's batch scratch state; it must resolve
// every request exactly once.
func (tm *TM) commitBatch(reqs []*mvutil.CommitReq) {
	if tm.batchClaimed == nil {
		tm.batchClaimed = make(map[*twvar]struct{}, 64)
	}
	pend := tm.batchPend[:0]
	for _, r := range reqs {
		pend = append(pend, r.Tx.(*txn))
	}
	tm.batchPend = pend
	for len(pend) > 0 {
		pend = tm.commitRound(pend)
	}
	// Drop descriptor references: a resolved member may be recycled by its
	// submitter at any time, and TM-held scratch must not pin it.
	clear(tm.batchPend[:cap(tm.batchPend)])
	clear(tm.batchAdmitted[:cap(tm.batchAdmitted)])
	clear(tm.batchShard[:cap(tm.batchShard)])
	clear(tm.batchLogged[:cap(tm.batchLogged)])
	clear(tm.batchRecs[:cap(tm.batchRecs)])
}

// commitRound admits a write-write-disjoint subset of pend, installs it under
// one clock advance, and returns the members spilled to the next round.
func (tm *TM) commitRound(pend []*txn) []*txn {
	// Version-memory backpressure, once per round on behalf of every member
	// (the serial path pays this before taking any lock; here no lock is held
	// either). On refusal the whole round fails — escalation already ran, so
	// per-member retries would just repeat the rejection.
	if tm.opts.Budget != nil && !tm.admitInstall() {
		for _, m := range pend {
			tm.finishMember(m, stm.ReasonMemoryPressure)
		}
		return nil
	}

	// Durability fail-fast: a latched logger can never accept another append,
	// so fail the round at the door — before any lock or clock tick — instead
	// of installing versions whose batch record is known to be unwritable.
	logger := tm.opts.Logger
	if logger != nil {
		if e, ok := logger.(interface{ Err() error }); ok && e.Err() != nil {
			for _, m := range pend {
				tm.finishMember(m, stm.ReasonDurability)
			}
			return nil
		}
	}

	// Selection: provably doomed members fail without consuming clock ticks
	// (the batched form of the serial path's pass-on-abort relief), and each
	// surviving member joins the batch iff its sorted write set is disjoint
	// from every earlier member's claims; overlapping members spill to the
	// next round, which keeps the later install loop free of intra-batch
	// write aliasing.
	admitted := tm.batchAdmitted[:0]
	spill := pend[:0]
	clear(tm.batchClaimed)
	for _, m := range pend {
		if r := m.preDoomed(); r != stm.ReasonNone {
			tm.finishMember(m, r)
			continue
		}
		ents := m.writeSet.Entries()
		stm.SortEntriesByID(ents)
		overlap := false
		for i := range ents {
			if _, ok := tm.batchClaimed[ents[i].Key]; ok {
				overlap = true
				break
			}
		}
		if overlap {
			m.stats.RecordBatchSpills(1)
			spill = append(spill, m)
			continue
		}
		for i := range ents {
			tm.batchClaimed[ents[i].Key] = struct{}{}
		}
		admitted = append(admitted, m)
	}
	tm.batchAdmitted = admitted

	// Lock phase: acquire every admitted member's commit locks (per member in
	// id order) before any member is processed. Every update commit of this
	// engine flows through the combiner, so the only possible contender is
	// the GC's try-lock sentinel — a bounded spin suffices, and a timeout
	// fails just that member.
	budget := tm.opts.LockSpinBudget
	locked := admitted[:0]
	for _, m := range admitted {
		m.inBatch = true
		got := true
		for _, e := range m.writeSet.Entries() {
			if !e.Key.lock(m, budget) {
				got = false
				break
			}
			m.locked = append(m.locked, e.Key)
		}
		if !got {
			tm.finishMember(m, stm.ReasonLockTimeout)
			continue
		}
		locked = append(locked, m)
	}
	k := len(locked)
	if k == 0 {
		return spill
	}

	// Order assignment, one advance per number line. Unsharded, one shared-
	// clock advance covers the whole batch: members take the natural orders
	// base-k+1..base in admitted order. With clock shards, the locked members
	// are reordered into per-shard groups — single-shard members in admitted
	// order, one Add per touched shard — followed by the cross-shard members,
	// each drawing its write version through the fence; on every shard's
	// number line, natural orders still ascend in processing order, the
	// invariant the install loop's "observationally sequential" argument
	// rests on (the fence draws come after every group advance and are
	// themselves serialized). Either way the advances come after the lock
	// phase — a snapshot drawn at or above a member's order must find its
	// version installed or its variable locked, exactly the guarantee the
	// serial path derives from lock-before-increment.
	locked[0].stats.RecordBatch(k)
	if tm.sharded {
		locked = tm.assignShardOrders(locked)
	} else {
		base := tm.clock.Add(0, uint64(k))
		first := base - uint64(k) + 1
		locked[0].stats.RecordClockAdvance()
		for i, m := range locked {
			m.natOrder = first + uint64(i)
		}
	}

	// Install phase: process members in natural order. Each member's checks
	// run against the state left by every earlier member — raises already
	// applied, versions already installed — so the batch is observationally
	// the sequential schedule m_1; ...; m_k. A member that fails here wastes
	// its reserved tick (a harmless clock gap, same as a serial post-increment
	// abort).
	var charge mvutil.BatchCharge
	logged := tm.batchLogged[:0]
	tm.batchRecs = tm.batchRecs[:0]
	for _, m := range locked {
		cross := tm.sharded && m.smask&(m.smask-1) != 0
		if !cross {
			// Anti-dependency target check (serial HANDLEWRITE's stamp check),
			// deliberately at the member's turn rather than the lock phase:
			// earlier members' commit-time raises must be visible to it, or a
			// member could miss its target role in a triad and warp into a
			// cycle. Cross-shard members skip it for the serial path's reason:
			// they never warp and their write version exceeds every stamp on
			// every touched shard.
			for _, e := range m.writeSet.Entries() {
				if m.stampMax(e.Key) > m.snap(e.Key) {
					m.target = true
					break
				}
			}
		}
		if r := tm.scanMember(m, cross); r != stm.ReasonNone {
			tm.finishMember(m, r)
			continue
		}
		if m.target && m.source {
			tm.finishMember(m, stm.ReasonTriad)
			continue
		}
		if m.minAntiDep == 0 {
			m.twOrder = m.natOrder
		} else {
			m.twOrder = m.minAntiDep // time-warp commit
		}
		ents := m.writeSet.Entries()
		if logger == nil {
			for i := range ents {
				tm.createNewVersion(m, ents[i].Key, ents[i].Val, &charge)
				ents[i].Key.unlock(m)
			}
			m.locked = m.locked[:0]
			m.inBatch = false
			m.stats.RecordCommit(false)
			if tm.sharded {
				m.stats.RecordShardCommit(cross)
			}
			m.req.Finish(true)
			continue
		}
		// Durability path: install at the member's turn as usual (later
		// members' scans must see these versions), but keep the commit locks —
		// a version is only reachable by other transactions once its variable
		// unlocks, so deferring the unlock to after the batch append preserves
		// append-before-visible without disturbing intra-batch validation.
		for i := range ents {
			tm.createNewVersion(m, ents[i].Key, ents[i].Val, &charge)
		}
		logged = append(logged, m)
		tm.batchRecs = append(tm.batchRecs, m.logRecord())
	}
	tm.batchLogged = logged
	if logger != nil && len(logged) > 0 {
		// One record per clock advance: the batch's survivors in natural
		// order, appended while every survivor's write locks are still held.
		lsn, err := logger.Append(tm.batchRecs)
		for _, m := range logged {
			m.releaseLocks()
			m.inBatch = false
		}
		if err == nil {
			// Group commit: one durability wait covers the whole batch. A
			// Durable failure cannot demote the commits (versions are
			// visible); the latched writer fails the next round at the door
			// and the health watchdog surfaces the stall.
			logger.Durable(lsn) //nolint:errcheck
		}
		// On append failure the members were already installed, so the batch
		// stands in memory un-logged; acks must be gated on Writer.Err by
		// callers that promise zero loss (see internal/server).
		for _, m := range logged {
			m.stats.RecordCommit(false)
			if tm.sharded {
				m.stats.RecordShardCommit(m.smask&(m.smask-1) != 0)
			}
			m.req.Finish(true)
		}
	}
	charge.Flush(tm.opts.Budget)
	tm.maybeGCBatch(k)
	return spill
}

// scanMember is the serial HANDLEREAD for one batch member: commit-time
// semi-visible raises, then the anti-dependency scan, with in-batch locks
// treated as unlocked (their versions do not exist yet; see waitUnlockedBatch).
// cross selects the classic cross-shard walk (commitCross's): a version with
// natural order in (snap, wv] on its shard's line is a fatal stale read, one
// above wv belongs to a committer serializing after the member.
func (tm *TM) scanMember(m *txn, cross bool) stm.AbortReason {
	budget := tm.opts.LockSpinBudget
	for _, v := range m.readSet {
		m.semiVisibleRead(v, tm.clock.Load(int(v.shard)))
		if !v.waitUnlockedBatch(m, budget) {
			return stm.ReasonLockTimeout
		}
		snap := m.snap(v)
		ver := v.latest.Load()
		for ver.natOrder > snap {
			if ver.timeWarped() {
				return stm.ReasonTimeWarpSkip // Rule 2: writer already warped
			}
			if cross {
				if ver.natOrder <= m.natOrder {
					return stm.ReasonReadConflict // stale read; cross never warps
				}
			} else if ver.natOrder < m.natOrder {
				if m.minAntiDep == 0 || ver.natOrder < m.minAntiDep {
					m.minAntiDep = ver.natOrder
				}
				m.source = true
			}
			ver = ver.next.Load()
			if ver == nil {
				return stm.ReasonMemoryPressure // trimmed below the snapshot
			}
		}
	}
	return stm.ReasonNone
}

// assignShardOrders is the sharded batch order assignment: it stably
// partitions the locked members into per-shard groups (single-shard members,
// admitted order preserved within each group) followed by the cross-shard
// members, draws one clock advance per populated shard covering its whole
// group, then one fence draw per cross member, and returns the reordered
// processing sequence. The scratch slice is leader state under the combiner's
// leader lock, like the other batch scratch.
func (tm *TM) assignShardOrders(locked []*txn) []*txn {
	out := tm.batchShard[:0]
	var groupMask uint64
	ncross := 0
	for _, m := range locked {
		if m.smask&(m.smask-1) == 0 {
			groupMask |= m.smask
		} else {
			ncross++
		}
	}
	for mask := groupMask; mask != 0; mask &= mask - 1 {
		s := bits.TrailingZeros64(mask)
		start := len(out)
		for _, m := range locked {
			if m.smask == 1<<s {
				out = append(out, m)
			}
		}
		ks := uint64(len(out) - start)
		base := tm.clock.Add(s, ks)
		first := base - ks + 1
		out[start].stats.RecordClockAdvance()
		for i, m := range out[start:] {
			m.natOrder = first + uint64(i)
		}
	}
	if ncross > 0 {
		for _, m := range locked {
			if m.smask&(m.smask-1) == 0 {
				continue
			}
			wv, casRetries := tm.clock.AdvanceCross(m.smask)
			m.stats.RecordShardCASRetries(casRetries)
			m.stats.RecordClockAdvance()
			m.natOrder = wv
			out = append(out, m)
		}
	}
	tm.batchShard = out
	return out
}

// finishMember resolves one batch member as aborted: locks released, stats and
// descriptor reason recorded. Everything the submitter may observe is written
// before Finish — it can recycle the descriptor the moment Done reports true.
func (tm *TM) finishMember(m *txn, reason stm.AbortReason) {
	m.inBatch = false
	m.releaseLocks()
	m.stats.RecordAbort(reason)
	m.lastReason = reason
	m.req.Finish(false)
}

// maybeGCBatch is maybeGC for a batch of k commits: the commit counter
// advances by k at once, and a pass runs if the count crossed a multiple of
// the configured period anywhere inside the jump.
func (tm *TM) maybeGCBatch(k int) {
	every := tm.opts.GCEveryNCommits
	if every < 0 || k == 0 {
		return
	}
	e := uint64(every)
	n := tm.gcCount.Add(uint64(k))
	if n/e != (n-uint64(k))/e {
		tm.GC()
	}
}
