package core_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dsg"
	"repro/internal/stm"
	"repro/internal/stm/stmtest"
)

// Partitioned multi-clock tests (DESIGN.md §17): the full conformance and
// serializability batteries at several shard counts, the single- vs
// cross-shard commit accounting, and the per-shard clock seeding used by
// recovery.

func clockShardFactory(k int) func() stm.TM {
	return func() stm.TM { return core.New(core.Options{ClockShards: k}) }
}

func TestClockShardRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {65, 64}, {1 << 20, 64},
	} {
		tm := core.New(core.Options{ClockShards: c.in})
		if got := tm.ClockShards(); got != c.want {
			t.Errorf("ClockShards(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestClockShardOpacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Opacity + ClockShards > 1 must panic")
		}
	}()
	core.New(core.Options{Opacity: true, ClockShards: 2})
}

func TestConformanceClockShards(t *testing.T) {
	for _, k := range []int{2, 4, 16} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			stmtest.Run(t, clockShardFactory(k), stmtest.Options{RONeverAborts: true})
		})
	}
}

func TestSerializabilityDSGClockShards(t *testing.T) {
	for _, k := range []int{2, 4, 16} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			dsg.CheckRandom(t, clockShardFactory(k)(), dsg.RunOptions{Seed: uint64(k)})
		})
	}
}

func TestSerializabilityDSGClockShardsHighContention(t *testing.T) {
	// Few variables spread over few shards: nearly every update transaction
	// has a multi-shard footprint, hammering the cross-shard fence draw and
	// its per-shard classic validation.
	for _, k := range []int{2, 4} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			dsg.CheckRandom(t, clockShardFactory(k)(),
				dsg.RunOptions{Vars: 3, Goroutines: 8, TxPerG: 120, Seed: uint64(100 + k)})
		})
	}
}

func TestSerializabilityDSGClockShardsReadHeavy(t *testing.T) {
	dsg.CheckRandom(t, clockShardFactory(4)(),
		dsg.RunOptions{Vars: 6, Goroutines: 6, TxPerG: 150, ReadOnlyP: 0.6, Seed: 17})
}

func TestSerializabilityDSGClockShardsAblation(t *testing.T) {
	// Sharding composes with the no-time-warp ablation: every commit
	// validates classically, single- and cross-shard alike.
	dsg.CheckRandom(t, core.New(core.Options{ClockShards: 4, DisableTimeWarp: true}),
		dsg.RunOptions{Vars: 4, Goroutines: 8, TxPerG: 120, Seed: 23})
}

func TestSerializabilityDSGClockShardsGroupCommit(t *testing.T) {
	// Sharded group commit: per-shard batch advances plus fence draws for
	// cross-footprint members (groupcommit.go's assignShardOrders).
	for _, k := range []int{2, 4} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			dsg.CheckRandom(t, core.New(core.Options{ClockShards: k, GroupCommit: true}),
				dsg.RunOptions{Vars: 4, Goroutines: 8, TxPerG: 120, Seed: uint64(200 + k)})
		})
	}
}

func TestConformanceClockShardsGroupCommit(t *testing.T) {
	stmtest.Run(t, func() stm.TM {
		return core.New(core.Options{ClockShards: 4, GroupCommit: true})
	}, stmtest.Options{RONeverAborts: true})
}

// TestShardCommitAccounting drives one single-shard and one cross-shard
// update through a K=4 engine and checks the new counters and the cross
// commit's orders (natOrder == twOrder == a fence-drawn write version).
func TestShardCommitAccounting(t *testing.T) {
	tm := core.New(core.Options{ClockShards: 4})
	// Default sharder is round-robin on the id: var ids 1..4 land on shards
	// 0..3.
	a := tm.NewVar(0) // shard 0
	b := tm.NewVar(0) // shard 1
	if tm.VarShard(a) == tm.VarShard(b) {
		t.Fatalf("round-robin sharder put consecutive vars on one shard")
	}

	tx := tm.Begin(false)
	tx.Write(a, 1)
	if !tm.Commit(tx) {
		t.Fatalf("single-shard commit failed")
	}
	snap := tm.Stats().Snapshot()
	if snap.SingleShardCommits != 1 || snap.CrossShardCommits != 0 {
		t.Fatalf("after single-shard commit: single=%d cross=%d",
			snap.SingleShardCommits, snap.CrossShardCommits)
	}

	tx = tm.Begin(false)
	if got := tx.Read(a); got != 1 {
		t.Fatalf("read a = %v", got)
	}
	tx.Write(b, 2)
	if !tm.Commit(tx) {
		t.Fatalf("cross-shard commit failed")
	}
	nat, tw := tm.CommitOrders(tx)
	if nat != tw {
		t.Fatalf("cross-shard commit must not time-warp: nat=%d tw=%d", nat, tw)
	}
	snap = tm.Stats().Snapshot()
	if snap.SingleShardCommits != 1 || snap.CrossShardCommits != 1 {
		t.Fatalf("after cross-shard commit: single=%d cross=%d",
			snap.SingleShardCommits, snap.CrossShardCommits)
	}
}

// TestShardCustomSharder pins every variable to shard 3: all footprints are
// single-shard, so the cross path must never trigger.
func TestShardCustomSharder(t *testing.T) {
	tm := core.New(core.Options{
		ClockShards: 4,
		Sharder:     func(id uint64, shards int) int { return 3 },
	})
	a, b := tm.NewVar(0), tm.NewVar(0)
	if tm.VarShard(a) != 3 || tm.VarShard(b) != 3 {
		t.Fatalf("sharder not honored: shards %d, %d", tm.VarShard(a), tm.VarShard(b))
	}
	tx := tm.Begin(false)
	tx.Read(a)
	tx.Write(b, 1)
	if !tm.Commit(tx) {
		t.Fatalf("commit failed")
	}
	if snap := tm.Stats().Snapshot(); snap.CrossShardCommits != 0 || snap.SingleShardCommits != 1 {
		t.Fatalf("colocated footprint took the cross path: %+v", snap)
	}
}

// TestShardTimeWarpWithinShard reruns the paper's Fig. 1 history with both
// variables pinned to one shard of a K=4 engine: time-warp must still fire
// inside a clock domain (tw < nat for the warped committer).
func TestShardTimeWarpWithinShard(t *testing.T) {
	tm := core.New(core.Options{
		ClockShards: 4,
		Sharder:     func(id uint64, shards int) int { return 1 },
	})
	aNext := tm.NewVar("D")
	dNext := tm.NewVar("E")

	t3 := tm.Begin(false)
	t3.Read(aNext)
	t3.Read(dNext)
	t3.Write(dNext, "nil")

	t2 := tm.Begin(false)
	t2.Read(aNext)
	t2.Write(aNext, "B")
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}
	if !tm.Commit(t3) {
		t.Fatalf("TWM must time-warp commit t3 within its shard")
	}
	nat, tw := tm.CommitOrders(t3)
	if tw >= nat {
		t.Fatalf("t3 should have warped: nat=%d tw=%d", nat, tw)
	}
	ro := tm.Begin(true)
	if got := ro.Read(aNext); got != "B" {
		t.Fatalf("aNext = %v, want B", got)
	}
	if got := ro.Read(dNext); got != "nil" {
		t.Fatalf("dNext = %v, want nil", got)
	}
}

// TestShardCrossStaleReadAborts: a cross-shard footprint cannot time-warp, so
// the history that warps in TestShardTimeWarpWithinShard must abort when the
// two variables live on different shards.
func TestShardCrossStaleReadAborts(t *testing.T) {
	tm := core.New(core.Options{ClockShards: 4})
	aNext := tm.NewVar("D") // shard 0
	dNext := tm.NewVar("E") // shard 1

	t3 := tm.Begin(false)
	t3.Read(aNext)
	t3.Read(dNext)
	t3.Write(dNext, "nil")

	t2 := tm.Begin(false)
	t2.Read(aNext)
	t2.Write(aNext, "B")
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}
	if tm.Commit(t3) {
		t.Fatalf("cross-shard commit must validate classically and abort")
	}
	snap := tm.Stats().Snapshot()
	if snap.ByReason["read-conflict"] != 1 {
		t.Fatalf("abort reasons = %v, want one read-conflict", snap.ByReason)
	}
}

// TestSeedClockShardMonotone races per-shard and global clock seeding against
// concurrent single-shard committers on every shard (satellite: the recovery
// fast-forward path). No committed update may be lost and the final clock
// vector must dominate every seed.
func TestSeedClockShardMonotone(t *testing.T) {
	const (
		k       = 4
		workers = 8
		perW    = 300
		seedTo  = 5000
	)
	tm := core.New(core.Options{ClockShards: k})
	vars := make([]stm.Var, k)
	for i := range vars {
		vars[i] = tm.NewVar(0) // round-robin: vars[i] on shard i
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := vars[w%k]
			for i := 0; i < perW; i++ {
				err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					tx.Write(v, tx.Read(v).(int)+1)
					return nil
				})
				if err != nil {
					t.Errorf("atomic increment: %v", err)
					return
				}
			}
		}(w)
	}
	// Seed concurrently with the committers: Raise races Add on every cell.
	for s := 0; s < k; s++ {
		tm.SeedClockShard(s, seedTo)
	}
	tm.SeedClock(seedTo / 2) // lower global seed must be a no-op
	wg.Wait()

	vec := tm.ClockVec(nil)
	if len(vec) != k {
		t.Fatalf("ClockVec len = %d, want %d", len(vec), k)
	}
	for s, c := range vec {
		if c < seedTo {
			t.Fatalf("shard %d clock %d below seed %d", s, c, seedTo)
		}
	}
	total := 0
	ro := tm.Begin(true)
	for _, v := range vars {
		total += ro.Read(v).(int)
	}
	tm.Commit(ro)
	if want := workers * perW; total != want {
		t.Fatalf("lost updates across seeding: got %d, want %d", total, want)
	}
}

// TestShardQuiesceAndGC exercises Quiesce and a GC pass on a sharded engine
// with committed versions spread across domains.
func TestShardQuiesceAndGC(t *testing.T) {
	tm := core.New(core.Options{ClockShards: 4, GCEveryNCommits: -1})
	vars := make([]stm.Var, 8)
	for i := range vars {
		vars[i] = tm.NewVar(0)
	}
	for round := 1; round <= 5; round++ {
		for _, v := range vars {
			tx := tm.Begin(false)
			tx.Write(v, round)
			if !tm.Commit(tx) {
				t.Fatalf("commit failed")
			}
		}
	}
	tm.Quiesce()
	tm.GC()
	for i, v := range vars {
		if n := tm.VersionCount(v); n != 1 {
			t.Fatalf("var %d retains %d versions after GC, want 1", i, n)
		}
		ro := tm.Begin(true)
		if got := ro.Read(v); got != 5 {
			t.Fatalf("var %d = %v after GC, want 5", i, got)
		}
		tm.Commit(ro)
	}
}
