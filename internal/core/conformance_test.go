package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dsg"
	"repro/internal/stm"
	"repro/internal/stm/stmtest"
)

func factory() stm.TM { return core.New(core.Options{}) }

func TestConformance(t *testing.T) {
	stmtest.Run(t, factory, stmtest.Options{RONeverAborts: true})
}

func TestConformanceNoTimeWarpAblation(t *testing.T) {
	stmtest.Run(t, func() stm.TM { return core.New(core.Options{DisableTimeWarp: true}) },
		stmtest.Options{RONeverAborts: true})
}

func TestSerializabilityDSG(t *testing.T) {
	dsg.CheckRandom(t, factory(), dsg.RunOptions{})
}

func TestSerializabilityDSGHighContention(t *testing.T) {
	dsg.CheckRandom(t, factory(), dsg.RunOptions{Vars: 3, Goroutines: 8, TxPerG: 120, Seed: 42})
}

func TestSerializabilityDSGReadHeavy(t *testing.T) {
	dsg.CheckRandom(t, factory(), dsg.RunOptions{Vars: 6, Goroutines: 6, TxPerG: 150, ReadOnlyP: 0.6, Seed: 7})
}

func TestSerializabilityDSGWithGC(t *testing.T) {
	// GC must not perturb serializability bookkeeping (history records are
	// retained even when version bodies are trimmed).
	dsg.CheckRandom(t, core.New(core.Options{GCEveryNCommits: 64}), dsg.RunOptions{Seed: 11})
}

// shardedFactory promotes every stamp at creation, so the whole battery runs
// with shard-local semi-visible raises and committer max-over-shards scans
// (DESIGN.md §12).
func shardedFactory() stm.TM { return core.New(core.Options{EagerStampSharding: true}) }

func TestConformanceShardedStamps(t *testing.T) {
	stmtest.Run(t, shardedFactory, stmtest.Options{RONeverAborts: true})
}

func TestSerializabilityDSGShardedStamps(t *testing.T) {
	dsg.CheckRandom(t, shardedFactory(), dsg.RunOptions{})
}

func TestSerializabilityDSGShardedStampsHighContention(t *testing.T) {
	// High contention over few variables is where sharded raises and the
	// committer's shard-max scans interleave hardest.
	dsg.CheckRandom(t, shardedFactory(), dsg.RunOptions{Vars: 3, Goroutines: 8, TxPerG: 120, Seed: 43})
}
