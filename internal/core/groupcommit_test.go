package core_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dsg"
	"repro/internal/mvutil"
	"repro/internal/stm"
	"repro/internal/stm/stmtest"
)

func gcFactory() stm.TM { return core.New(core.Options{GroupCommit: true}) }

func TestGroupCommitConformance(t *testing.T) {
	stmtest.Run(t, gcFactory, stmtest.Options{RONeverAborts: true})
}

// A tiny batch cap forces the chunking path (every drain splits) through the
// whole battery.
func TestGroupCommitConformanceSmallBatches(t *testing.T) {
	stmtest.Run(t, func() stm.TM {
		return core.New(core.Options{GroupCommit: true, GroupMaxBatch: 2})
	}, stmtest.Options{RONeverAborts: true})
}

func TestGroupCommitSerializabilityDSG(t *testing.T) {
	dsg.CheckRandom(t, gcFactory(), dsg.RunOptions{})
}

func TestGroupCommitSerializabilityDSGHighContention(t *testing.T) {
	// Few variables, many writers: heavy write-write overlap exercises the
	// spill path, and intra-batch read-write overlap exercises batched warps.
	dsg.CheckRandom(t, gcFactory(), dsg.RunOptions{Vars: 3, Goroutines: 8, TxPerG: 120, Seed: 42})
}

func TestGroupCommitSerializabilityDSGSmallBatches(t *testing.T) {
	dsg.CheckRandom(t, core.New(core.Options{GroupCommit: true, GroupMaxBatch: 2}),
		dsg.RunOptions{Vars: 4, Goroutines: 8, TxPerG: 100, Seed: 9})
}

func TestGroupCommitSerializabilityDSGWithGC(t *testing.T) {
	dsg.CheckRandom(t, core.New(core.Options{GroupCommit: true, GCEveryNCommits: 64}),
		dsg.RunOptions{Seed: 11})
}

func TestGroupCommitRejectsIncompatibleModes(t *testing.T) {
	for _, opts := range []core.Options{
		{GroupCommit: true, Opacity: true},
		{GroupCommit: true, DisableTimeWarp: true},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) must panic", opts)
				}
			}()
			core.New(opts)
		}()
	}
}

// TestGroupCommitOneTickPerBatch is the acceptance assertion for DESIGN.md
// §13's headline invariant: the batched path advances the shared clock exactly
// once per installed batch, no matter how many commits the batch carries.
func TestGroupCommitOneTickPerBatch(t *testing.T) {
	tm := core.New(core.Options{GroupCommit: true})
	const goroutines, txPerG, vars = 8, 200, 64
	tvs := make([]*stm.TVar[int], vars)
	for i := range tvs {
		tvs[i] = stm.NewTVar(tm, 0)
	}
	clock0 := tm.Clock()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < txPerG; i++ {
				v := tvs[(g*txPerG+i*7)%vars]
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					v.Set(tx, v.Get(tx)+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	snap := tm.Stats().Snapshot()
	if snap.ClockAdvances != snap.GroupBatches {
		t.Fatalf("clock advances = %d, batches = %d: want exactly one advance per batch",
			snap.ClockAdvances, snap.GroupBatches)
	}
	if snap.GroupBatches == 0 || snap.GroupBatchTxs == 0 {
		t.Fatalf("no batches recorded: %+v", snap)
	}
	// Every update commit went through the combiner. A batch carries the
	// members that consumed its reserved ticks, so the carried count brackets
	// the commit count (a member can still fail its scan at its turn and
	// waste its tick) and the total clock motion equals the carried count
	// exactly — the advance-amortization the stage exists for.
	if snap.GroupBatchTxs < snap.Commits || snap.GroupBatchTxs > snap.Commits+snap.Aborts {
		t.Fatalf("batch txs = %d, commits = %d, aborts = %d",
			snap.GroupBatchTxs, snap.Commits, snap.Aborts)
	}
	if moved := tm.Clock() - clock0; moved != snap.GroupBatchTxs {
		t.Fatalf("clock moved %d, batch txs = %d", moved, snap.GroupBatchTxs)
	}
	var histTotal uint64
	for _, n := range snap.BatchSizeHist {
		histTotal += n
	}
	if histTotal != snap.GroupBatches {
		t.Fatalf("histogram total = %d, batches = %d", histTotal, snap.GroupBatches)
	}
	if mean := snap.MeanBatchSize(); mean < 1 {
		t.Fatalf("mean batch size = %v", mean)
	}
}

// TestGroupCommitSpillRound drives two committers with identical write sets
// through one leader session: the overlap forces one member to spill to a
// second round, and the increment must never be lost (the spilled RMW either
// sequences after the first or aborts its stale attempt and retries — a
// same-variable RMW race is a triad in TWM, batched or not).
func TestGroupCommitSpillRound(t *testing.T) {
	block := make(chan struct{})
	release := sync.OnceFunc(func() { close(block) })
	tm := core.New(core.Options{GroupCommit: true, GroupHooks: &mvutil.BatchHooks{
		// Stall the first leader until both committers have published, so the
		// drain is guaranteed to see both overlapping write sets in one batch.
		LeaderStall: func() { <-block },
	}})
	x := stm.NewTVar(tm, 0)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
				x.Set(tx, x.Get(tx)+1)
				return nil
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	// Both goroutines publish, then spin/sleep: one wins the leader lock and
	// blocks in the stall until the other has published too. Unblock once the
	// stats show two in-flight starts; a plain sleep-free release is enough
	// because the stall only needs to cover publication, which RecordStart
	// precedes. Simplest robust trigger: release when both attempts started.
	go func() {
		for {
			if s, _, _, _ := statsTotals(tm); s >= 2 {
				release()
				return
			}
		}
	}()
	wg.Wait()
	release()
	snap := tm.Stats().Snapshot()
	if snap.Commits != 2 {
		t.Fatalf("commits = %d, want 2 (aborts = %d)", snap.Commits, snap.Aborts)
	}
	if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
		if got := x.Get(tx); got != 2 {
			t.Errorf("x = %d, want 2", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func statsTotals(tm stm.TM) (starts, commits, ro, aborts uint64) {
	return tm.Stats().Totals()
}
