package core

import "runtime"

// Quiesce implements the §3.4 privatization-safety primitive: it blocks until
// every transaction that was active when Quiesce was called has finished
// (committed or aborted). After it returns, no transaction can time-warp
// commit and serialize before the caller's last committed transaction, so
// data made unreachable before the call can safely be accessed without
// transactional barriers.
//
// The wait is implemented over the active-transaction registry that also
// bounds version garbage collection: a transaction that began after the
// fence does not delay quiescence (its start exceeds the fence timestamp).
func (tm *TM) Quiesce() {
	// At ClockShards>1 a registered start is the min over the transaction's
	// snapshot vector, so the fence must be the min over the shard cells: any
	// transaction active at the call has registered at or below it.
	fence := tm.clock.Load(0)
	for s := 1; s < tm.clock.Shards(); s++ {
		if c := tm.clock.Load(s); c < fence {
			fence = c
		}
	}
	for tm.active.MinStart(fence+1) <= fence {
		runtime.Gosched()
	}
}
