package core

import (
	"testing"

	"repro/internal/mvutil"
	"repro/internal/stm"
)

// TestBudgetSoftGCEager: past the soft limit, commits trigger eager GC passes
// (with automatic GC disabled, the budget is the only thing that can collect),
// and version memory stabilizes near the limit instead of growing with the
// number of commits.
func TestBudgetSoftGCEager(t *testing.T) {
	b := mvutil.NewVersionBudget(mvutil.BudgetConfig{SoftVersions: 8, HardVersions: 10_000})
	tm := New(Options{GCEveryNCommits: -1, Budget: b})
	v := stm.NewTVar(tm, 0)
	for i := 0; i < 50; i++ {
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			v.Set(tx, v.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if b.SoftGCs() == 0 {
		t.Fatal("no eager GC pass ran past the soft limit")
	}
	if got := b.Versions(); got > 9 {
		t.Fatalf("version memory did not stabilize: %d live versions (soft limit 8)", got)
	}
	if b.Trims() != 0 || b.Rejects() != 0 {
		t.Fatalf("soft pressure escalated to trim/reject: %+v", b.Snapshot())
	}
	if lvl := b.Level(); lvl == mvutil.PressureHard {
		t.Fatalf("level = %v after stabilization", lvl)
	}
}

// TestBudgetHardTrim: a pinned old snapshot blocks ordinary GC, so sustained
// writing drives the budget to the hard limit and the engine trims chains to
// MaxVersionDepth — revoking the pinned reader's no-abort guarantee: its next
// read of the trimmed variable restarts with ReasonMemoryPressure, while a
// fresh read-only transaction (current snapshot) is served fine.
func TestBudgetHardTrim(t *testing.T) {
	b := mvutil.NewVersionBudget(mvutil.BudgetConfig{SoftVersions: 4, HardVersions: 8})
	tm := New(Options{GCEveryNCommits: -1, Budget: b, MaxVersionDepth: 2})
	v := stm.NewTVar(tm, 0)

	ro := tm.Begin(true) // pin the initial snapshot; GC cannot advance past it

	for i := 0; i < 30; i++ {
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			v.Set(tx, v.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Trims() == 0 {
		t.Fatalf("hard pressure never trimmed: %+v", b.Snapshot())
	}
	// Chains regrow between trims, but can never exceed the hard limit plus
	// the one install that trips it (without the budget, 30 commits against a
	// pinned snapshot would retain all 30 versions).
	if got := tm.VersionCount(v.Raw()); got > 9 {
		t.Fatalf("chain depth %d despite hard limit 8", got)
	}

	// The pinned reader's version is gone: its read must restart with
	// ReasonMemoryPressure (delivered as a retry signal).
	func() {
		defer func() {
			if recover() == nil {
				t.Error("pinned read-only transaction read a trimmed chain without restarting")
			}
		}()
		ro.Read(v.Raw())
	}()
	tm.Abort(ro)
	if got := tm.stats.Snapshot().ByReason[stm.ReasonMemoryPressure.String()]; got == 0 {
		t.Fatal("memory-pressure abort not recorded")
	}

	// A fresh read-only transaction takes a current snapshot, which the trim
	// depth always serves: full recovery.
	var got int
	if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
		got = v.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Fatalf("recovered read = %d, want 30", got)
	}
}

// TestBudgetHardReject: when GC is blocked by a pinned snapshot and trimming
// cannot get below the hard limit (the per-variable floor of MaxVersionDepth
// times the variable count exceeds it), installs are refused with
// ReasonMemoryPressure — and releasing the pin restores full service.
func TestBudgetHardReject(t *testing.T) {
	b := mvutil.NewVersionBudget(mvutil.BudgetConfig{SoftVersions: 4, HardVersions: 8})
	tm := New(Options{GCEveryNCommits: -1, Budget: b, MaxVersionDepth: 4})
	vars := make([]*stm.TVar[int], 4)
	for i := range vars {
		vars[i] = stm.NewTVar(tm, 0)
	}

	ro := tm.Begin(true) // pin

	write := func() bool {
		tx := tm.Begin(false).(*txn)
		for _, v := range vars {
			tx.Write(v.Raw(), 1)
		}
		return tm.Commit(tx)
	}
	var rejected *txn
	for i := 0; i < 10; i++ {
		tx := tm.Begin(false).(*txn)
		for _, v := range vars {
			tx.Write(v.Raw(), i)
		}
		if !tm.Commit(tx) {
			rejected = tx
			break
		}
	}
	if rejected == nil {
		t.Fatalf("no commit was refused under blocked-GC hard pressure: %+v", b.Snapshot())
	}
	if got := rejected.LastAbortReason(); got != stm.ReasonMemoryPressure {
		t.Fatalf("reject reason = %v, want memory-pressure", got)
	}
	if b.Rejects() == 0 {
		t.Fatal("reject not counted in the budget")
	}

	// Release the pin: GC can advance, pressure relieves, commits succeed.
	tm.Abort(ro)
	if !write() {
		t.Fatalf("commit still refused after pin release: %+v", b.Snapshot())
	}
	if lvl := b.Level(); lvl == mvutil.PressureHard {
		t.Fatalf("level = %v after recovery", lvl)
	}
}

// TestBudgetAccountingBalances: after quiescence and a full GC, the live
// count equals what is actually reachable (one retained version per
// variable) — installs and releases balance.
func TestBudgetAccountingBalances(t *testing.T) {
	b := mvutil.NewVersionBudget(mvutil.BudgetConfig{SoftVersions: 1 << 20, HardVersions: 1 << 21})
	tm := New(Options{GCEveryNCommits: -1, Budget: b})
	vars := make([]*stm.TVar[int], 8)
	for i := range vars {
		vars[i] = stm.NewTVar(tm, 0)
	}
	for i := 0; i < 25; i++ {
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			for _, v := range vars {
				v.Set(tx, v.Get(tx)+1)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	tm.GC()
	want := int64(0)
	for _, v := range vars {
		want += int64(tm.VersionCount(v.Raw()))
	}
	if got := b.Versions(); got != want {
		t.Fatalf("budget count %d, reachable versions %d", got, want)
	}
	if bytes := b.Bytes(); bytes <= 0 {
		t.Fatalf("budget bytes %d after GC, want positive", bytes)
	}
}
