// Package core implements the Time-Warp Multi-version (TWM) software
// transactional memory algorithm of Diegues and Romano (PPoPP 2014),
// Algorithms 1 and 2, together with the surrounding machinery the paper
// describes in prose: the two commit time lines (natural order and time-warp
// order), semi-visible reads, triad validation, time-warp clash elision,
// an active-transaction registry, and multi-version garbage collection.
//
// Key properties (argued in §4 of the paper and checked by this package's
// tests and the internal/dsg oracle):
//
//   - committed transactions are serializable; the serialization order is the
//     time-warp order TW, with clashes broken in inverse natural order;
//   - read-only transactions never abort and never validate
//     (mv-permissiveness);
//   - all transactions, including aborted ones, observe snapshots producible
//     by some sequential history (Virtual World Consistency).
//
// The paper's prototype uses the lock-free commit of JVSTM; as the paper
// notes, that concern is orthogonal to time-warping, and Algorithms 1-2 are
// presented with per-variable commit locks. This implementation follows the
// lock-based presentation, acquiring write-set locks in variable-id order and
// bounding every lock wait that could participate in a cycle with a
// spin-then-self-abort (which can only add safe, rare aborts).
package core

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/mvutil"
	"repro/internal/stm"
)

// Options tunes a TWM instance. The zero value is the paper's algorithm with
// sensible defaults.
type Options struct {
	// DisableTimeWarp turns off Rules 1-2: any anti-dependency discovered at
	// commit aborts the transaction (the classic validation rule). The engine
	// then degenerates to a JVSTM-style multi-version STM; this is the
	// ablation that isolates the benefit of time-warp commits.
	DisableTimeWarp bool
	// GCEveryNCommits triggers a version garbage-collection pass each time
	// this many update transactions have committed. 0 selects the default;
	// negative disables automatic GC (tests use this to inspect version
	// lists).
	GCEveryNCommits int
	// LockSpinBudget bounds the spin iterations an update transaction waits
	// on a peer's commit lock before self-aborting. 0 selects the default.
	LockSpinBudget int
	// Opacity enables the extension sketched in §4.2 of the paper:
	// update transactions read with the read-only visibility rule (newest
	// version with twOrder <= start, time-warped versions included) and
	// perform semi-visible reads during execution, homogenizing the
	// serialization order perceived by all transactions. Commit-time
	// anti-dependency detection then keys on twOrder instead of natOrder.
	// See opacity.go.
	Opacity bool
	// Budget, when non-nil, caps the engine's version memory (see
	// mvutil.VersionBudget and DESIGN.md §11): soft pressure triggers eager
	// GC, hard pressure trims chains to MaxVersionDepth and, as a last
	// resort, fails commits with stm.ReasonMemoryPressure. A budget may be
	// shared with other engines. Nil (the default) leaves version memory
	// unbounded, preserving every paper guarantee unconditionally.
	Budget *mvutil.VersionBudget
	// MaxVersionDepth is the per-variable chain depth the hard-pressure trim
	// pass cuts to. 0 selects the default; it is only consulted when Budget
	// is set.
	MaxVersionDepth int
	// EagerStampSharding promotes every variable's semi-visible read stamp to
	// the sharded register at creation instead of adaptively under CAS
	// contention. It trades ~2 KiB per variable for shard-local raises from
	// the first read; the conformance battery and race soaks use it to drive
	// every read and every committer validation through the sharded path.
	EagerStampSharding bool
	// GroupCommit routes every update commit through a flat-combining
	// leader/follower stage (DESIGN.md §13): committers publish their
	// validated-ready write sets to a striped combiner queue, and one leader
	// drains a batch of pairwise write-write-disjoint members (overlapping
	// members spill to the next round), performing the paper's full commit
	// protocol for each member under a single global-clock advance per batch.
	// Mutually exclusive with Opacity and DisableTimeWarp. The engine's name
	// becomes "twm-gc".
	GroupCommit bool
	// GroupMaxBatch caps the members installed per combiner batch; 0 selects
	// mvutil.DefaultMaxBatch. Only consulted when GroupCommit is set.
	GroupMaxBatch int
	// GroupHooks injects the combiner's fault points (leader stall, batch
	// split) for adversarial tests; see mvutil.BatchHooks and internal/chaos.
	GroupHooks *mvutil.BatchHooks
	// Logger, when non-nil, makes every update commit durable through the
	// write-ahead-log seam (DESIGN.md §16): the write set is appended — in
	// time-warp commit order, with write locks still held, before any version
	// becomes visible — and the commit acknowledges only after the logger's
	// Durable wait. Nil (the default) keeps the engine memory-only with zero
	// commit-path cost. Must be set before the engine serves transactions.
	Logger stm.CommitLogger
	// ClockShards partitions the variable space into that many clock domains
	// (rounded up to a power of two, capped at mvutil.MaxClockShards; 0 and 1
	// keep the single global clock, byte-identical to the pre-sharding
	// engine). Every variable belongs to one shard; a transaction whose
	// footprint stays inside one shard commits against that shard's clock
	// alone (a single fetch-add — zero cross-shard coordination), and a
	// transaction spanning shards draws its write version through the
	// cross-shard fence (two-phase: lock write set in global id order, then
	// max-fold every touched shard's clock; DESIGN.md §17). Time-warp rules
	// apply per clock domain; cross-shard commits validate classically and
	// never warp. Mutually exclusive with Opacity.
	ClockShards int
	// Sharder overrides the variable→shard assignment (default: round-robin
	// on the variable id). It is consulted once, at NewVar, with the
	// effective shard count; it must be pure and total. Deterministic
	// sharders keep shard assignment stable across recovery replays.
	Sharder func(id uint64, shards int) int
}

const (
	defaultGCEvery   = 4096
	defaultSpinLimit = 2048
	defaultTrimDepth = 8
)

// TM is a Time-Warp Multi-version transactional memory instance.
type TM struct {
	opts Options
	// clock defines N and S. At ClockShards=1 it degenerates to the single
	// shared logical clock (cell 0), now on its own cache line instead of
	// sharing one with the hot TM fields below; at K>1 each shard's cell is
	// an independent number line (DESIGN.md §17).
	clock   mvutil.ClockDomain
	sharded bool // ClockShards > 1
	stats   stm.Stats
	prof    atomic.Pointer[stm.Profiler]

	active  *mvutil.ActiveSet
	gcCount atomic.Uint64
	gcMu    sync.Mutex

	// txns pools transaction descriptors (with their read/write-set backing
	// arrays and active-set slot) across attempts; see Recycle.
	txns sync.Pool
	// stampSeq deals out sticky home shards for sharded read stamps, one per
	// descriptor lifetime — the same scheme as ActiveSet slots.
	stampSeq atomic.Uint32

	varsMu  sync.Mutex
	vars    []*twvar
	history atomic.Bool

	// combiner is the flat-combining commit stage; nil unless
	// Options.GroupCommit. The scratch slices and claim map below are leader
	// state, guarded by the combiner's leader lock (the batch callback only
	// ever runs under it).
	combiner      *mvutil.Combiner
	batchPend     []*txn
	batchAdmitted []*txn
	batchShard    []*txn // sharded processing order (assignShardOrders)
	batchClaimed  map[*twvar]struct{}
	// batchLogged/batchRecs are the leader's durability scratch (Logger
	// only): the members whose unlocks are deferred until the batch record is
	// appended, and the one record per clock advance handed to the logger.
	batchLogged []*txn
	batchRecs   []stm.CommitRecord
}

// New returns a TWM instance with the given options.
func New(opts Options) *TM {
	if opts.GCEveryNCommits == 0 {
		opts.GCEveryNCommits = defaultGCEvery
	}
	if opts.LockSpinBudget == 0 {
		opts.LockSpinBudget = defaultSpinLimit
	}
	if opts.Opacity && opts.DisableTimeWarp {
		panic("core: Opacity and DisableTimeWarp are mutually exclusive")
	}
	if opts.MaxVersionDepth <= 0 {
		opts.MaxVersionDepth = defaultTrimDepth
	}
	if opts.GroupCommit && (opts.Opacity || opts.DisableTimeWarp) {
		// The batched install path implements exactly the default time-warp
		// commit protocol; the opacity and ablation variants keep the serial
		// path.
		panic("core: GroupCommit requires the default time-warp mode")
	}
	if opts.Opacity && opts.ClockShards > 1 {
		// The opacity extension homogenizes every transaction onto the
		// read-only visibility rule against one serialization order; a
		// per-shard order has no single twOrder line to homogenize onto.
		panic("core: Opacity and ClockShards > 1 are mutually exclusive")
	}
	tm := &TM{opts: opts}
	if opts.GroupCommit {
		tm.combiner = mvutil.NewCombiner(opts.GroupMaxBatch, opts.GroupHooks)
	}
	// Every shard's clock starts at 1 so the zero readStamp of a never-read
	// variable can never satisfy the readStamp >= start target check in any
	// domain (initial versions keep natOrder = twOrder = 0 and are visible to
	// every snapshot).
	tm.sharded = tm.clock.Init(opts.ClockShards, 1) > 1
	tm.active = mvutil.NewActiveSet()
	tm.txns.New = func() any {
		return &txn{
			tm:         tm,
			stats:      tm.stats.Shard(),
			stampShard: int(tm.stampSeq.Add(1)) & (mvutil.StampShards - 1),
		}
	}
	return tm
}

// Name implements stm.TM.
func (tm *TM) Name() string {
	switch {
	case tm.opts.DisableTimeWarp:
		return "twm-notw"
	case tm.opts.Opacity:
		return "twm-opaque"
	case tm.opts.GroupCommit:
		return "twm-gc"
	}
	return "twm"
}

// MultiVersion implements stm.MultiVersioned.
func (tm *TM) MultiVersion() bool { return true }

// Stats implements stm.TM.
func (tm *TM) Stats() *stm.Stats { return &tm.stats }

// SetProfiler implements stm.Profilable.
func (tm *TM) SetProfiler(p *stm.Profiler) { tm.prof.Store(p) }

// Clock exposes a monotone logical-clock progress measure: the single clock
// value at ClockShards=1 and the sum of the shard cells otherwise (every
// commit strictly increases it, which is all the health watchdog and the
// tests that sample it rely on).
func (tm *TM) Clock() uint64 { return tm.clock.Sum() }

// ClockShards reports the effective clock-shard count (1 when unsharded).
func (tm *TM) ClockShards() int { return tm.clock.Shards() }

// ClockVec appends the current per-shard clock vector to dst (one consistent
// cut). Checkpoints use it to stamp snapshots with per-shard serials.
func (tm *TM) ClockVec(dst []uint64) []uint64 { return tm.clock.Snapshot(dst) }

// VarShard reports the clock shard v was assigned to (tests, checkpoints).
func (tm *TM) VarShard(v stm.Var) int { return int(v.(*twvar).shard) }

// ActiveSet exposes the active-transaction registry (health watchdog).
func (tm *TM) ActiveSet() *mvutil.ActiveSet { return tm.active }

// Budget exposes the configured version budget; nil when unbounded.
func (tm *TM) Budget() *mvutil.VersionBudget { return tm.opts.Budget }

// CommitLogger exposes the configured durability seam; nil when memory-only
// (the health watchdog probes it for the WAL-stall judge).
func (tm *TM) CommitLogger() stm.CommitLogger { return tm.opts.Logger }

// SeedClock advances every shard's clock to at least v. Recovery calls it,
// after replaying a write-ahead log whose highest serialization key is v and
// before the engine serves transactions, so every post-recovery commit orders
// strictly after everything recovered (recovered values are installed as
// initial versions with natOrder = twOrder = 0, visible to every snapshot).
// Raising every shard to the global maximum is always sound — clock values
// need not be dense, only monotone per shard — and stays correct even when
// the shard count or sharder changed across the restart.
func (tm *TM) SeedClock(v uint64) {
	for s := 0; s < tm.clock.Shards(); s++ {
		tm.clock.Raise(s, v)
	}
}

// SeedClockShard advances one shard's clock to at least v (per-shard recovery
// fast-forward from the WAL's per-shard max-Serial fold). Callers that cannot
// prove the variable→shard assignment is unchanged since the log was written
// must follow with SeedClock of the global maximum.
func (tm *TM) SeedClockShard(s int, v uint64) {
	if s >= 0 && s < tm.clock.Shards() {
		tm.clock.Raise(s, v)
	}
}

// CommitOrders reports the natural and time-warp commit orders assigned to a
// committed update transaction of this TM (both zero before commit). A
// transaction time-warp committed iff tw < nat. Exposed for tests, examples
// and instrumentation.
func (tm *TM) CommitOrders(txi stm.Tx) (nat, tw uint64) {
	tx := txi.(*txn)
	return tx.natOrder, tx.twOrder
}

// Start reports S(tx), the snapshot timestamp assigned at Begin (tests and
// instrumentation).
func (tm *TM) Start(txi stm.Tx) uint64 { return txi.(*txn).start }

// PromoteStamp forces v's semi-visible read stamp onto the sharded
// representation (tests and instrumentation; promotion otherwise happens
// adaptively when raisers contend on the inline stamp). Safe concurrently
// with readers and committers — it performs exactly the publication step of
// the adaptive path, minus the raise.
func (tm *TM) PromoteStamp(v stm.Var) {
	tv := v.(*twvar)
	if tv.stamps.Load() != nil {
		return
	}
	s := new(mvutil.ShardedStamp)
	s.Seed(tv.readStamp.Load())
	tv.stamps.CompareAndSwap(nil, s)
}

// StampSharded reports whether v's read stamp has been promoted (tests).
func (tm *TM) StampSharded(v stm.Var) bool { return v.(*twvar).stamps.Load() != nil }

// version is one committed value of a variable. Versions form a singly linked
// list from newest to oldest in descending twOrder; natOrder breaks no ties in
// the list because time-warp clashes are elided (paper lines 31-32).
type version struct {
	value    stm.Value
	natOrder uint64
	twOrder  uint64
	next     atomic.Pointer[version]
}

// timeWarped reports whether the version was produced by a time-warp commit.
func (v *version) timeWarped() bool { return v.natOrder != v.twOrder }

// twvar is the concrete transactional variable (Table 1's Var struct).
type twvar struct {
	id uint64
	// shard is the clock domain the variable belongs to (always 0 when
	// unsharded). Its versions' natOrder/twOrder, its read stamps and the
	// snapshot component it is read against all live on this shard's number
	// line; numbers from different shards are never compared.
	shard     uint32
	owner     atomic.Pointer[txn] // commit lock; nil means unlocked
	latest    atomic.Pointer[version]
	readStamp atomic.Uint64 // semi-visible read stamp (uncontended fast path)

	// stamps, once non-nil, extends readStamp with a sharded CAS-max register
	// (DESIGN.md §12). It is promoted lazily, the first time raisers actually
	// collide on readStamp: a ShardedStamp is ~2 KiB, far too heavy for the
	// many cold variables an application allocates, while the inline stamp is
	// a scalability cliff on the few read-hot ones. After promotion readers
	// raise only their home shard and committers fold readStamp into the
	// shard maximum, so a raise that landed inline before (or while) the
	// promotion published is never lost.
	stamps atomic.Pointer[mvutil.ShardedStamp]

	hist *historyLog // non-nil only when history recording is enabled
}

// VarID implements stm.IDedVar (commit-lock ordering).
func (v *twvar) VarID() uint64 { return v.id }

// NewVar implements stm.TM.
func (tm *TM) NewVar(initial stm.Value) stm.Var {
	v := &twvar{}
	root := &version{value: initial}
	v.latest.Store(root)
	if tm.opts.EagerStampSharding {
		v.stamps.Store(new(mvutil.ShardedStamp))
	}
	if b := tm.opts.Budget; b != nil {
		// The initial version is charged too: GC may free it once newer
		// versions exist, and releases must balance installs.
		b.Install(1, mvutil.ApproxVersionBytes(initial))
	}
	if tm.history.Load() {
		v.hist = &historyLog{}
	}
	tm.varsMu.Lock()
	v.id = uint64(len(tm.vars)) + 1
	tm.vars = append(tm.vars, v)
	tm.varsMu.Unlock()
	if tm.sharded {
		v.shard = uint32(tm.shardOf(v.id))
	}
	return v
}

// shardOf maps a variable id to its clock shard through the configured
// sharder (default: round-robin), clamped into range.
func (tm *TM) shardOf(id uint64) int {
	k := tm.clock.Shards()
	if f := tm.opts.Sharder; f != nil {
		s := f(id, k) % k
		if s < 0 {
			s += k
		}
		return s
	}
	return tm.clock.ShardOf(id)
}

// gcOwner is the sentinel lock holder used by the garbage collector.
var gcOwner = new(txn)

// lock attempts to acquire v's commit lock for tx, spinning up to budget
// iterations. It reports whether the lock was acquired.
func (v *twvar) lock(tx *txn, budget int) bool {
	for i := 0; ; i++ {
		if v.owner.CompareAndSwap(nil, tx) {
			return true
		}
		if i >= budget {
			return false
		}
		runtime.Gosched()
	}
}

func (v *twvar) unlock(tx *txn) { v.owner.CompareAndSwap(tx, nil) }

// waitUnlocked spins until v is unlocked or held by self (self may be nil).
// A negative budget waits forever (used by read-only transactions, which must
// never abort; they hold no locks, so the wait always terminates).
// It reports false if the budget expired.
func (v *twvar) waitUnlocked(self *txn, budget int) bool {
	for i := 0; ; i++ {
		o := v.owner.Load()
		if o == nil || o == self {
			return true
		}
		if budget >= 0 && i >= budget {
			return false
		}
		runtime.Gosched()
	}
}

// waitUnlockedBatch is the leader's variant of waitUnlocked: locks held by
// other members of the batch being installed count as unlocked. The leader
// lock-phases every member before processing any of them, so during member
// m's read scan a not-yet-installed member k still holds its write locks; k's
// versions do not exist yet (exactly as in the sequential schedule, where m
// commits before k), so waiting on k's lock would deadlock the leader against
// itself. Only the GC's sentinel owner (never in a batch) is genuinely waited
// out.
func (v *twvar) waitUnlockedBatch(self *txn, budget int) bool {
	for i := 0; ; i++ {
		o := v.owner.Load()
		if o == nil || o == self || o.inBatch {
			return true
		}
		if budget >= 0 && i >= budget {
			return false
		}
		runtime.Gosched()
	}
}

// promoteAfterRetries is the inline-CAS failure count at which a raise
// promotes the variable's stamp to a sharded register. One failed CAS is
// ordinary bad luck; a second failure within the same raise means at least
// two other raisers hit this stamp concurrently — the read-hot case the
// sharding exists for.
const promoteAfterRetries = 2

// semiVisibleRead advances v's read stamp to at least ts via a CAS maximum
// (paper's SEMIVISIBLEREAD): readers are visible in aggregate, without
// tracking individual reader identities. The stamp is adaptive: the inline
// readStamp serves uncontended variables with a single CAS, and sustained
// CAS contention promotes the variable to a sharded register in which this
// descriptor raises only its sticky home shard (DESIGN.md §12). Failed CAS
// attempts are counted into the stamp-contention stats either way.
func (tx *txn) semiVisibleRead(v *twvar, ts uint64) {
	if s := v.stamps.Load(); s != nil {
		tx.stats.RecordStampRetries(s.Raise(tx.stampShard, ts))
		return
	}
	var retries uint64
	for {
		last := v.readStamp.Load()
		if last >= ts || v.readStamp.CompareAndSwap(last, ts) {
			tx.stats.RecordStampRetries(retries)
			return
		}
		if retries++; retries >= promoteAfterRetries {
			tx.promoteStamp(v, ts)
			tx.stats.RecordStampRetries(retries)
			return
		}
	}
}

// promoteStamp publishes a sharded register for v carrying this raise. The
// raise is installed in the candidate register *before* the pointer CAS so
// that publication and raise are one atomic event: a committer that loads
// the stamps pointer after the CAS sees the raise in the shard maximum, and
// a committer that loaded it before falls under the missed-raise case of the
// raise/observe argument (it still holds v's commit lock, so this reader's
// subsequent waitUnlocked orders the version traversal after the committer's
// publications — see DESIGN.md §12). If another reader wins the CAS the
// raise is redone in the winner's register.
func (tx *txn) promoteStamp(v *twvar, ts uint64) {
	s := new(mvutil.ShardedStamp)
	s.Seed(v.readStamp.Load())
	s.Raise(tx.stampShard, ts)
	if !v.stamps.CompareAndSwap(nil, s) {
		tx.stats.RecordStampRetries(v.stamps.Load().Raise(tx.stampShard, ts))
	}
}

// stampMax observes v's semi-visible read stamp from the committer side: the
// inline stamp folded with the shard maximum when a register has been
// promoted. The inline stamp stays valid forever after promotion (raisers
// that lost the promotion race may have landed there), so both sources are
// always combined.
func (tx *txn) stampMax(v *twvar) uint64 {
	m := v.readStamp.Load()
	if s := v.stamps.Load(); s != nil {
		tx.stats.RecordStampScan()
		if sm := s.Max(); sm > m {
			m = sm
		}
	}
	return m
}

// txn is a TWM transaction (Table 1's Tx struct). Descriptors are pooled
// (see Recycle); every slice below keeps its backing array across reuse.
type txn struct {
	tm       *TM
	stats    *stm.StatShard // striped counters; assigned once per descriptor
	readOnly bool
	start    uint64 // S(tx); at ClockShards>1 the min over vec (GC registration)

	// vec is the per-shard snapshot vector S(tx)[s], one consistent cut
	// sampled at Begin (sharded mode only; nil otherwise). Every read of a
	// variable in shard s is judged against vec[s]. smask/wmask accumulate
	// the footprint: the shards of every variable read or written (smask)
	// and written (wmask); a multi-bit smask routes Commit onto the
	// cross-shard protocol.
	vec   []uint64
	smask uint64
	wmask uint64

	readSet  []*twvar
	writeSet stm.WriteSet[*twvar] // insertion-ordered, commit sorts by id

	source     bool   // tx is the source of an anti-dependency edge
	target     bool   // tx is the target of an anti-dependency edge
	minAntiDep uint64 // min natOrder over anti-dependent committers; 0 = none
	natOrder   uint64 // N(tx), assigned at commit
	twOrder    uint64 // TW(tx), assigned at commit

	locked []*twvar    // commit locks currently held (for failure cleanup)
	slot   mvutil.Slot // active-set registration, reused across attempts
	// stampShard is the sticky home shard this descriptor raises in promoted
	// (sharded) read stamps; assigned once per descriptor so raises from one
	// goroutine keep hitting the same cache line.
	stampShard int

	lastReason stm.AbortReason // why the last Commit returned false

	// logRecs/logWrites/logShards are the durability scratch (Logger only):
	// the commit record handed to CommitLogger.Append is built here so the
	// backing arrays survive recycling. The logger must not retain them past
	// Append.
	logRecs   []stm.CommitRecord
	logWrites []stm.LoggedWrite
	logShards []uint32

	// req is this descriptor's embedded combiner request (GroupCommit only);
	// publication allocates nothing. inBatch marks the descriptor as a member
	// of the batch the leader is currently installing: it is written only by
	// the leader, under the combiner's leader lock, and read by the leader's
	// own scans (waitUnlockedBatch) — it is always false by the time the
	// request resolves, so no other goroutine ever observes it true.
	req     mvutil.CommitReq
	inBatch bool
}

// ReadOnly implements stm.Tx.
func (tx *txn) ReadOnly() bool { return tx.readOnly }

// LastAbortReason implements stm.AbortReasoner: the reason of the most recent
// commit-time abort, so the retry loop can report it to the contention
// manager (read-path aborts carry their reason in the retry signal instead).
func (tx *txn) LastAbortReason() stm.AbortReason { return tx.lastReason }

// Begin implements stm.TM. The returned transaction observes the snapshot
// defined by the logical clock at this instant (S(tx)) — at ClockShards>1,
// one consistent per-shard vector cut (see mvutil.ClockDomain.Snapshot for
// why the fence seqlock makes the cut consistent).
func (tm *TM) Begin(readOnly bool) stm.Tx {
	tx := tm.txns.Get().(*txn)
	tx.readOnly = readOnly
	tx.stats.RecordStart()
	if tm.sharded {
		tx.vec = tm.clock.Snapshot(tx.vec)
		// Register the whole vector: the GC folds per-shard bounds from it
		// (gc.go), so shard s's bound tracks the oldest *component s* among
		// active snapshots instead of the oldest min-component — one lagging
		// shard clock must not freeze collection everywhere else. The scalar
		// min still backs the quiesce fence and the health watchdog.
		min := tx.vec[0]
		for _, c := range tx.vec[1:] {
			if c < min {
				min = c
			}
		}
		tm.active.RegisterVec(&tx.slot, tx.vec, min)
		tx.start = min
		return tx
	}
	// Register in the active set before sampling the start timestamp so the
	// garbage collector can never trim a version this transaction may read.
	// One clock sample serves both: the registered value equals start, hence
	// the GC bound is <= start.
	c0 := tm.clock.Load(0)
	tm.active.Register(&tx.slot, c0)
	tx.start = c0
	return tx
}

// snap is the snapshot component a read of v is judged against: the shard's
// vector component at ClockShards>1, the scalar start otherwise.
func (tx *txn) snap(v *twvar) uint64 {
	if tx.vec != nil {
		return tx.vec[v.shard]
	}
	return tx.start
}

// Recycle implements stm.TxRecycler: reset the descriptor and return it to
// the pool. Only stm.Atomically calls this, after an attempt has fully
// finished; manual Begin/Commit users (tests, examples) never recycle, so
// post-commit inspection such as CommitOrders stays valid for them.
func (tm *TM) Recycle(txi stm.Tx) {
	tx, ok := txi.(*txn)
	if !ok {
		return
	}
	tx.readSet = stm.ResetVarSlice(tx.readSet)
	tx.writeSet.Reset()
	tx.locked = stm.ResetVarSlice(tx.locked)
	tx.source, tx.target = false, false
	tx.minAntiDep, tx.natOrder, tx.twOrder, tx.start = 0, 0, 0, 0
	tx.smask, tx.wmask = 0, 0 // vec keeps its backing array; Begin refills it
	tx.lastReason = stm.ReasonNone
	tm.txns.Put(tx)
}

// Read implements stm.Tx (paper's READ plus SEMIVISIBLEREAD).
func (tx *txn) Read(v stm.Var) stm.Value {
	tv := v.(*twvar)
	prof := tx.tm.prof.Load()
	var t0 int64
	if prof != nil {
		t0 = prof.Now()
	}
	var out stm.Value
	switch {
	case tx.readOnly:
		out = tx.readRO(tv)
	case tx.tm.opts.Opacity:
		out = tx.readOpaque(tv)
	default:
		out = tx.readUpdate(tv)
	}
	if prof != nil {
		prof.AddRead(prof.Now() - t0)
	}
	return out
}

// readRO is the read-only visibility rule: semi-visible read, then the newest
// version with twOrder <= start (time-warp committed versions included).
//
// Without a budget the walk always terminates: GC never frees the newest
// version visible at the oldest active snapshot. A hard-pressure trim may
// have cut the version this snapshot needs; the walk then runs off the chain
// and the transaction restarts with ReasonMemoryPressure — the one documented
// case where a read-only transaction aborts (a fresh attempt takes a current
// snapshot, which the trim depth always serves).
func (tx *txn) readRO(tv *twvar) stm.Value {
	// The semi-visible read must precede the lock wait so that a concurrent
	// committer either observes the raised stamp (and raises its target
	// flag) or has already published its versions before we traverse. The
	// stamp is raised in the variable's own clock domain.
	tx.semiVisibleRead(tv, tx.tm.clock.Load(int(tv.shard)))
	tv.waitUnlocked(nil, -1)
	snap := tx.snap(tv)
	ver := tv.latest.Load()
	for ver.twOrder > snap {
		ver = ver.next.Load()
		if ver == nil {
			tx.stats.RecordAbort(stm.ReasonMemoryPressure)
			stm.Retry(stm.ReasonMemoryPressure)
		}
	}
	return ver.value
}

// readUpdate is the update-transaction visibility rule: both twOrder and
// natOrder must be <= start, and skipping a version produced by a concurrent
// time-warp commit is an early Rule 2 abort.
func (tx *txn) readUpdate(tv *twvar) stm.Value {
	if val, ok := tx.writeSet.Get(tv); ok {
		return val // read-after-write
	}
	tx.readSet = append(tx.readSet, tv)
	tx.smask |= 1 << tv.shard
	if !tv.waitUnlocked(tx, tx.tm.opts.LockSpinBudget) {
		tx.stats.RecordAbort(stm.ReasonLockTimeout)
		stm.Retry(stm.ReasonLockTimeout)
	}
	snap := tx.snap(tv)
	ver := tv.latest.Load()
	for ver.twOrder > snap || ver.natOrder > snap {
		if ver.timeWarped() {
			tx.stats.RecordAbort(stm.ReasonTimeWarpSkip)
			stm.Retry(stm.ReasonTimeWarpSkip)
		}
		ver = ver.next.Load()
		if ver == nil {
			// A hard-pressure trim reclaimed the version this snapshot
			// needs (trim only cuts a chain suffix, so a walk that
			// terminates normally saw everything it would have pre-trim).
			tx.stats.RecordAbort(stm.ReasonMemoryPressure)
			stm.Retry(stm.ReasonMemoryPressure)
		}
	}
	return ver.value
}

// Write implements stm.Tx: writes are privately buffered until commit.
func (tx *txn) Write(v stm.Var, val stm.Value) {
	if tx.readOnly {
		panic("core: Write on a read-only transaction")
	}
	tv := v.(*twvar)
	tx.smask |= 1 << tv.shard
	tx.wmask |= 1 << tv.shard
	tx.writeSet.Put(tv, val)
}

// Abort implements stm.TM: cleanup after a retry signal or user abort.
// Statistics for engine-initiated aborts are recorded at the abort site, where
// the reason is known.
func (tm *TM) Abort(txi stm.Tx) {
	tx := txi.(*txn)
	tx.releaseLocks()
	tm.active.Unregister(&tx.slot)
}

func (tx *txn) releaseLocks() {
	for _, v := range tx.locked {
		v.unlock(tx)
	}
	tx.locked = tx.locked[:0]
}

// Commit implements stm.TM (paper's COMMIT, HANDLEWRITE, HANDLEREAD and
// CREATENEWVERSION). It returns false when the transaction must be retried;
// all cleanup has already happened in that case.
func (tm *TM) Commit(txi stm.Tx) bool {
	tx := txi.(*txn)
	defer tm.active.Unregister(&tx.slot)

	if tx.readOnly || tx.writeSet.Len() == 0 {
		// Read-only transactions never validate and never abort. An update
		// transaction that wrote nothing also commits unvalidated: in the
		// default mode its visibility rule early-aborts on any concurrently
		// time-warped version, so its snapshot is the committed state at
		// S(tx); in opacity mode its reads already follow the read-only
		// rule. Writing nothing, it cannot be the target of an
		// anti-dependency, so no triad can pivot on it.
		tx.stats.RecordCommit(tx.readOnly)
		return true
	}

	if tm.combiner != nil {
		// Group commit: publish the write set to the flat-combining stage and
		// let a leader — possibly this goroutine — perform the whole protocol
		// batched (groupcommit.go).
		return tm.commitGrouped(tx)
	}

	// Version-memory backpressure: before taking any commit lock, make sure
	// the budget can absorb this transaction's installs, escalating through
	// eager GC and chain trimming; when even those cannot relieve hard
	// pressure, the commit fails so the retry loop and contention manager can
	// react (no locks are held yet).
	if tm.opts.Budget != nil && !tm.admitInstall() {
		return tm.failCommit(tx, stm.ReasonMemoryPressure)
	}

	// Clock-pressure relief (GV5-style "pass on abort", DESIGN.md §12): a
	// commit that is already provably doomed aborts here, before taking any
	// lock and — crucially — before bumping the shared clock at natOrder
	// assignment. Failed commits that bump the clock push every concurrent
	// snapshot further behind the present, manufacturing more stale reads and
	// more failed commits; passing on the bump breaks that feedback loop. The
	// check is conservative (only monotone, certainly-fatal conditions abort)
	// so it can never reject a commit the authoritative path would accept.
	if !tm.opts.Opacity {
		if r := tx.preDoomed(); r != stm.ReasonNone {
			return tm.failCommit(tx, r)
		}
	}

	if tm.sharded && tx.smask&(tx.smask-1) != 0 {
		// The footprint spans clock shards: the two-phase cross-shard commit
		// draws its write version through the fence and validates classically
		// per shard (commitCross below). Everything under this line is the
		// single-shard path — at ClockShards>1 it runs unchanged against the
		// footprint shard's clock alone.
		return tm.commitCross(tx)
	}

	prof := tm.prof.Load()
	var t0 int64
	if prof != nil {
		t0 = prof.Now()
		defer prof.AddTx()
	}

	// HANDLEWRITE: acquire commit locks in id order (deadlock avoidance) and
	// detect anti-dependencies targeting tx via the semi-visible read stamps.
	// Lookups are over, so sorting the entries in place is legal; the
	// insertion-sort fast path plus a closure-free comparator keeps this off
	// the allocator entirely (sort.Slice boxed the closure and the swapper).
	ents := tx.writeSet.Entries()
	stm.SortEntriesByID(ents)
	budget := tm.opts.LockSpinBudget
	for i := range ents {
		v := ents[i].Key
		if !v.lock(tx, budget) {
			return tm.failCommit(tx, stm.ReasonLockTimeout)
		}
		tx.locked = append(tx.locked, v)
		if tx.stampMax(v) > tx.snap(v) {
			// Some transaction concurrent with tx read a variable tx is
			// about to overwrite: tx is the target of an anti-dependency.
			// (The paper checks >= with stamps taken before the stamper's
			// clock increment; our stamps are taken after it, so the strict
			// inequality is the same condition: a reader stamped at or below
			// our start serializes at or below it, while any time-warp
			// destination of ours exceeds start.)
			tx.target = true
		}
	}
	if prof != nil {
		now := prof.Now()
		prof.AddWriteSetVal(now - t0)
		t0 = now
	}

	// Assign the natural commit order N(tx) *before* scanning the read set.
	// The paper presents the increment after validation (line 65), relying on
	// the atomicity of its lock-free commit; in a lock-based commit that
	// order admits a race in which two committers scan before either inserts
	// and both miss the other's anti-dependency. With the increment first,
	// the scan below provably observes every version of every committer with
	// a smaller N: such a committer already held all its write locks when it
	// drew its timestamp, and it releases each lock only after inserting into
	// that variable — so the lock wait in the scan orders us behind it. (At
	// ClockShards>1 the whole footprint lives in one shard, so "smaller N"
	// is well defined on that shard's number line and the argument carries
	// over verbatim; cross-shard draws through the fence only ever raise the
	// cell, preserving monotonicity.)
	tx.natOrder = tm.clock.Add(tx.homeShard(), 1)

	// HANDLEREAD: make the reads visible, then detect anti-dependencies
	// originating at tx (versions of read variables committed after start).
	for _, v := range tx.readSet {
		tx.semiVisibleRead(v, tm.clock.Load(int(v.shard)))
		if !v.waitUnlocked(tx, budget) {
			return tm.failCommit(tx, stm.ReasonLockTimeout)
		}
		snap := tx.snap(v)
		ver := v.latest.Load()
		if tm.opts.Opacity {
			if r := tx.scanOpaque(ver); r != stm.ReasonNone {
				return tm.failCommit(tx, r)
			}
			continue
		}
		for ver.natOrder > snap {
			if tm.opts.DisableTimeWarp {
				// Ablation: classic validation rejects any stale read.
				return tm.failCommit(tx, stm.ReasonReadConflict)
			}
			if ver.timeWarped() {
				// Rule 2: the writer time-warp committed; if tx committed
				// now the writer would become a time-warping pivot (and if
				// the writer serialized after us in N, its warp destination
				// is unordered against ours).
				return tm.failCommit(tx, stm.ReasonTimeWarpSkip)
			}
			if ver.natOrder < tx.natOrder {
				// The writer committed between our start and our own commit
				// without time-warping: a genuine anti-dependency; Rule 1
				// serializes us before the earliest such writer.
				if tx.minAntiDep == 0 || ver.natOrder < tx.minAntiDep {
					tx.minAntiDep = ver.natOrder
				}
				tx.source = true
			}
			// Versions with natOrder > ours belong to committers that will
			// serialize after us at their own (un-warped) natural position;
			// our twOrder <= natOrder < theirs already orders us first.
			ver = ver.next.Load()
			if ver == nil {
				// A trim reclaimed the tail before the scan reached a
				// version at or below our snapshot: anti-dependency
				// information may be lost, so abort rather than risk a
				// mis-serialized commit.
				return tm.failCommit(tx, stm.ReasonMemoryPressure)
			}
		}
	}
	if prof != nil {
		now := prof.Now()
		prof.AddReadSetVal(now - t0)
		t0 = now
	}

	// Rule 2: tx may not become a time-warping pivot.
	if tx.target && tx.source {
		return tm.failCommit(tx, stm.ReasonTriad)
	}

	// Rule 1: assign the time-warp commit order.
	if tx.minAntiDep == 0 {
		tx.twOrder = tx.natOrder
	} else {
		tx.twOrder = tx.minAntiDep // time-warp commit, before every missed writer
	}

	// Durability: append the write set to the log while every write lock is
	// still held — nothing is visible yet, so append order respects the
	// reads-from order and a crash can only lose a dependency-closed suffix.
	// A refused append fails the commit with nothing installed.
	var lsn stm.LSN
	if l := tm.opts.Logger; l != nil {
		tx.logRecs = append(tx.logRecs[:0], tx.logRecord())
		var err error
		if lsn, err = l.Append(tx.logRecs); err != nil {
			return tm.failCommit(tx, stm.ReasonDurability)
		}
	}

	for i := range ents {
		tm.createNewVersion(tx, ents[i].Key, ents[i].Val, nil)
		ents[i].Key.unlock(tx)
	}
	tx.locked = tx.locked[:0]
	if prof != nil {
		prof.AddCommit(prof.Now() - t0)
	}
	tx.stats.RecordCommit(false)
	if tm.sharded {
		tx.stats.RecordShardCommit(false)
	}
	tm.maybeGC()
	if l := tm.opts.Logger; l != nil {
		// Acknowledge only at the policy's durability point. An error here
		// means the writer latched mid-wait; the in-memory commit stands (the
		// versions are visible — reporting failure would invite a
		// double-apply) and every later commit fails at Append instead.
		l.Durable(lsn) //nolint:errcheck
	}
	return true
}

// logRecord builds tx's commit record from its write-set entries in the
// descriptor's scratch. Serial is the time-warp order (the serialization
// key); Tie the natural order (equal-Serial clashes replay smallest-Tie, the
// same winner clash elision keeps in memory). At ClockShards>1 the record
// carries the write-footprint shard vector so recovery can fold a per-shard
// max serial; unsharded records leave it nil and stay byte-identical on disk.
func (tx *txn) logRecord() stm.CommitRecord {
	ents := tx.writeSet.Entries()
	tx.logWrites = tx.logWrites[:0]
	for i := range ents {
		tx.logWrites = append(tx.logWrites, stm.LoggedWrite{VarID: ents[i].Key.id, Value: ents[i].Val})
	}
	rec := stm.CommitRecord{Serial: tx.twOrder, Tie: tx.natOrder, Writes: tx.logWrites}
	if tx.tm.sharded {
		tx.logShards = tx.logShards[:0]
		for m := tx.wmask; m != 0; m &= m - 1 {
			tx.logShards = append(tx.logShards, uint32(bits.TrailingZeros64(m)))
		}
		rec.Shards = tx.logShards
	}
	return rec
}

// homeShard is the clock shard a single-shard-footprint transaction commits
// against (0 in unsharded mode, where the mask may be unset).
func (tx *txn) homeShard() int {
	if tx.smask != 0 {
		return bits.TrailingZeros64(tx.smask)
	}
	return 0
}

// commitCross is the two-phase cross-shard commit (DESIGN.md §17), taken when
// the footprint spans clock domains and no single shard's number line can
// order the transaction.
//
// Phase one locks the write set in global variable-id order — the same
// deadlock-avoidance order the serial path uses; id order is shard-agnostic,
// so single-shard and cross-shard committers interleave safely. The lock-phase
// stamp (target) check is skipped: a cross-shard commit never time-warps, and
// its write version wv exceeds every number previously drawn on every touched
// shard, so it cannot shadow a stamped reader.
//
// Phase two draws wv through the cross-shard fence: one more than the maximum
// over every FOOTPRINT shard's clock (reads included — causality hops shard
// boundaries only through cross-footprint transactions, and the consistency
// of Begin's vector cuts rests on every such hop raising all the shards it
// connects inside one fence; see mvutil.ClockDomain). Each touched cell is
// raised to wv while the fence seqlock is odd, so a concurrent vector cut
// observes either no touched component at wv or all of them — never half a
// cross commit.
//
// Validation is then classic per shard: a version of a read variable with
// natural order in (vec[s], wv] on its shard's line means the read is stale
// and the commit aborts (cross commits cannot warp behind it, and an equal
// order would leave the pair unordered); versions above wv belong to
// committers that serialize after us — the anti-dependency they create points
// forward and is consistent with our position at wv on every touched line.
// Rule 1 is never invoked and the triad rule is vacuous (no warp, no pivot):
// natOrder = twOrder = wv.
func (tm *TM) commitCross(tx *txn) bool {
	prof := tm.prof.Load()
	var t0 int64
	if prof != nil {
		t0 = prof.Now()
		defer prof.AddTx()
	}

	ents := tx.writeSet.Entries()
	stm.SortEntriesByID(ents)
	budget := tm.opts.LockSpinBudget
	for i := range ents {
		v := ents[i].Key
		if !v.lock(tx, budget) {
			return tm.failCommit(tx, stm.ReasonLockTimeout)
		}
		tx.locked = append(tx.locked, v)
	}
	if prof != nil {
		now := prof.Now()
		prof.AddWriteSetVal(now - t0)
		t0 = now
	}

	// Draw the write version before scanning the read set, for the same
	// publication argument as the serial path: every committer with a smaller
	// order on any touched shard held its write locks when it drew, so the
	// lock waits below order our traversals behind its inserts.
	wv, casRetries := tm.clock.AdvanceCross(tx.smask)
	tx.stats.RecordShardCASRetries(casRetries)
	tx.natOrder, tx.twOrder = wv, wv

	for _, v := range tx.readSet {
		tx.semiVisibleRead(v, tm.clock.Load(int(v.shard)))
		if !v.waitUnlocked(tx, budget) {
			return tm.failCommit(tx, stm.ReasonLockTimeout)
		}
		snap := tx.snap(v)
		ver := v.latest.Load()
		for ver.natOrder > snap {
			if ver.timeWarped() {
				// A concurrent committer warped a version of a variable we
				// read; committing would leave our stale read unordered
				// against its warp destination.
				return tm.failCommit(tx, stm.ReasonTimeWarpSkip)
			}
			if ver.natOrder <= wv {
				// The writer serialized between our snapshot and wv: our read
				// is stale and a cross-shard commit cannot warp behind it.
				return tm.failCommit(tx, stm.ReasonReadConflict)
			}
			ver = ver.next.Load()
			if ver == nil {
				// Trimmed past the snapshot (see the serial scan).
				return tm.failCommit(tx, stm.ReasonMemoryPressure)
			}
		}
	}
	if prof != nil {
		now := prof.Now()
		prof.AddReadSetVal(now - t0)
		t0 = now
	}

	var lsn stm.LSN
	if l := tm.opts.Logger; l != nil {
		tx.logRecs = append(tx.logRecs[:0], tx.logRecord())
		var err error
		if lsn, err = l.Append(tx.logRecs); err != nil {
			return tm.failCommit(tx, stm.ReasonDurability)
		}
	}

	for i := range ents {
		tm.createNewVersion(tx, ents[i].Key, ents[i].Val, nil)
		ents[i].Key.unlock(tx)
	}
	tx.locked = tx.locked[:0]
	if prof != nil {
		prof.AddCommit(prof.Now() - t0)
	}
	tx.stats.RecordCommit(false)
	tx.stats.RecordShardCommit(true)
	tm.maybeGC()
	if l := tm.opts.Logger; l != nil {
		l.Durable(lsn) //nolint:errcheck
	}
	return true
}

// preDoomed checks cheap, monotone doom conditions before the commit draws
// its natural order or takes any lock, looking only at read-set heads and
// write-set stamps. Every signal used here can only intensify between this
// check and the authoritative commit path — read stamps only rise, version
// heads only get newer, and any version existing now carries a natural order
// below any timestamp this transaction could still draw — so a doom verdict
// is always genuine, never speculative:
//
//   - DisableTimeWarp ablation: a head newer than the snapshot is exactly
//     the classic validation failure the scan would hit first.
//   - A time-warped head newer than the snapshot is a Rule 2 abort; if GC
//     or trimming removes it first, every remaining newer version either
//     aborts the scan itself or ends it in ReasonMemoryPressure.
//   - An un-warped head newer than the snapshot makes this transaction an
//     anti-dependency source; combined with a raised stamp on any write-set
//     variable (the target condition the lock loop would find) the triad
//     rule applies.
//
// The authoritative scan still runs on the surviving path — it performs the
// commit-time semi-visible raises and walks complete chains; this check only
// lets doomed commits fail without touching the clock.
func (tx *txn) preDoomed() stm.AbortReason {
	tm := tx.tm
	// A cross-shard footprint commits classically and never warps: any stale
	// read-set head is fatal there, exactly as in the ablation engine. (Every
	// version existing now has a natural order below the write version the
	// cross commit would draw — AdvanceCross returns one more than the maximum
	// over the touched cells — so the authoritative per-shard scan aborts on
	// the same version.)
	cross := tm.sharded && tx.smask&(tx.smask-1) != 0
	source := false
	for _, v := range tx.readSet {
		ver := v.latest.Load()
		if ver.natOrder <= tx.snap(v) {
			continue
		}
		if tm.opts.DisableTimeWarp || cross {
			if ver.timeWarped() {
				return stm.ReasonTimeWarpSkip
			}
			return stm.ReasonReadConflict
		}
		if ver.timeWarped() {
			return stm.ReasonTimeWarpSkip
		}
		source = true
	}
	if !source {
		return stm.ReasonNone
	}
	ents := tx.writeSet.Entries()
	for i := range ents {
		if tx.stampMax(ents[i].Key) > tx.snap(ents[i].Key) {
			return stm.ReasonTriad // source ∧ target
		}
	}
	return stm.ReasonNone
}

// failCommit records the abort, releases held locks and reports failure. The
// reason is kept on the descriptor for stm.AbortReasoner.
func (tm *TM) failCommit(tx *txn, reason stm.AbortReason) bool {
	tx.releaseLocks()
	tx.stats.RecordAbort(reason)
	tx.lastReason = reason
	return false
}

// createNewVersion inserts tx's write to v in descending twOrder. On a
// time-warp clash (equal twOrder) the insertion is skipped: clashing
// transactions serialize in inverse natural order, so the version of the
// earliest natural committer — which, holding the commit lock, necessarily
// inserted first — is the one later transactions must not shadow.
//
// When the insertion walk runs off a chain shortened by a hard-pressure trim
// (every retained version has a larger twOrder than ours), the insertion is
// also skipped: appending below the trim cut would let a reader whose
// snapshot falls between our twOrder and the oldest retained version observe
// our value where a (trimmed) newer-serialized one was due. Skipping keeps
// those readers on the documented degradation path instead — their walk
// reaches nil and restarts with stm.ReasonMemoryPressure — and changes
// nothing for readers and scans that terminate within the retained prefix.
//
// charge, when non-nil, accumulates the version-budget install instead of
// charging it immediately — the group-commit leader flushes one accumulated
// charge per batch (DESIGN.md §13).
func (tm *TM) createNewVersion(tx *txn, v *twvar, val stm.Value, charge *mvutil.BatchCharge) {
	var newer *version
	older := v.latest.Load()
	for older != nil && tx.twOrder < older.twOrder {
		newer = older
		older = older.next.Load()
	}
	if older == nil {
		if v.hist != nil {
			v.hist.append(stm.VersionRecord{Value: val, Serial: tx.twOrder, Tie: tx.natOrder, Elided: true})
		}
		return // below the trim cut; see above
	}
	if tx.twOrder == older.twOrder {
		if v.hist != nil {
			v.hist.append(stm.VersionRecord{Value: val, Serial: tx.twOrder, Tie: tx.natOrder, Elided: true})
		}
		return // no transaction will ever read this value
	}
	ver := &version{value: val, natOrder: tx.natOrder, twOrder: tx.twOrder}
	ver.next.Store(older)
	if newer == nil {
		v.latest.Store(ver)
	} else {
		newer.next.Store(ver)
	}
	if b := tm.opts.Budget; b != nil {
		if charge != nil {
			charge.Add(1, mvutil.ApproxVersionBytes(val))
		} else {
			b.Install(1, mvutil.ApproxVersionBytes(val))
		}
	}
	if v.hist != nil {
		v.hist.append(stm.VersionRecord{Value: val, Serial: tx.twOrder, Tie: tx.natOrder})
	}
}

// admitInstall enforces the version budget before a commit may install new
// versions, escalating until pressure relents: soft pressure triggers an
// eager GC pass (non-blocking — when another pass is already running it frees
// versions on our behalf), hard pressure runs a blocking pass, then trims
// every chain to MaxVersionDepth, and when even trimming leaves the budget
// above its hard limit the install is refused. It runs before any commit lock
// is taken and reports whether the commit may proceed.
func (tm *TM) admitInstall() bool {
	b := tm.opts.Budget
	switch b.Level() {
	case mvutil.PressureNone:
		return true
	case mvutil.PressureSoft:
		if tm.gcMu.TryLock() {
			tm.gcLocked()
			tm.gcMu.Unlock()
			b.NoteSoftGC()
		}
		return true
	}
	// Hard pressure: one blocking pass at a time serves every committer that
	// hit the limit together (they re-check the level under the lock, so the
	// losers of the lock race usually find the pressure already relieved).
	tm.gcMu.Lock()
	if b.Level() == mvutil.PressureHard {
		tm.gcLocked()
		b.NoteSoftGC()
	}
	if b.Level() == mvutil.PressureHard {
		tm.trimLocked(tm.opts.MaxVersionDepth)
		b.NoteTrim()
	}
	level := b.Level()
	tm.gcMu.Unlock()
	if level == mvutil.PressureHard {
		b.NoteReject()
		return false
	}
	return true
}
