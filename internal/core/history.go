package core

import (
	"slices"
	"sync"

	"repro/internal/stm"
)

// historyLog records committed versions of one variable for the DSG
// serializability oracle (internal/dsg). Appends happen under the variable's
// commit lock; the mutex additionally orders them against post-run readers.
type historyLog struct {
	mu      sync.Mutex
	records []stm.VersionRecord
}

func (h *historyLog) append(r stm.VersionRecord) {
	h.mu.Lock()
	h.records = append(h.records, r)
	h.mu.Unlock()
}

// EnableHistory implements stm.HistoryRecording. It must be called before any
// variable is created.
func (tm *TM) EnableHistory() { tm.history.Store(true) }

// History implements stm.HistoryRecording: committed versions of v in TWM's
// serialization order O — ascending twOrder, ties (time-warp clashes) broken
// in inverse natural order (§4 of the paper).
func (tm *TM) History(v stm.Var) []stm.VersionRecord {
	tv := v.(*twvar)
	if tv.hist == nil {
		return nil
	}
	tv.hist.mu.Lock()
	out := make([]stm.VersionRecord, len(tv.hist.records))
	copy(out, tv.hist.records)
	tv.hist.mu.Unlock()
	slices.SortFunc(out, func(a, b stm.VersionRecord) int {
		if a.Serial != b.Serial {
			if a.Serial < b.Serial {
				return -1
			}
			return 1
		}
		switch {
		case a.Tie > b.Tie:
			return -1
		case a.Tie < b.Tie:
			return 1
		}
		return 0
	})
	return out
}
