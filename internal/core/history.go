package core

import (
	"sort"
	"sync"

	"repro/internal/stm"
)

// historyLog records committed versions of one variable for the DSG
// serializability oracle (internal/dsg). Appends happen under the variable's
// commit lock; the mutex additionally orders them against post-run readers.
type historyLog struct {
	mu      sync.Mutex
	records []stm.VersionRecord
}

func (h *historyLog) append(r stm.VersionRecord) {
	h.mu.Lock()
	h.records = append(h.records, r)
	h.mu.Unlock()
}

// EnableHistory implements stm.HistoryRecording. It must be called before any
// variable is created.
func (tm *TM) EnableHistory() { tm.history.Store(true) }

// History implements stm.HistoryRecording: committed versions of v in TWM's
// serialization order O — ascending twOrder, ties (time-warp clashes) broken
// in inverse natural order (§4 of the paper).
func (tm *TM) History(v stm.Var) []stm.VersionRecord {
	tv := v.(*twvar)
	if tv.hist == nil {
		return nil
	}
	tv.hist.mu.Lock()
	out := make([]stm.VersionRecord, len(tv.hist.records))
	copy(out, tv.hist.records)
	tv.hist.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Serial != out[j].Serial {
			return out[i].Serial < out[j].Serial
		}
		return out[i].Tie > out[j].Tie
	})
	return out
}
