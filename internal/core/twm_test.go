package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/stm"
)

// expectRetry runs fn and reports the retry reason it panicked with, failing
// the test if fn returned normally.
func expectRetry(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected a retry signal, got normal return")
		}
	}()
	fn()
	t.Fatalf("unreachable")
}

func newTM() *TM { return New(Options{GCEveryNCommits: -1}) }

func TestSequentialReadWrite(t *testing.T) {
	tm := newTM()
	x := tm.NewVar(10)

	tx := tm.Begin(false)
	if got := tx.Read(x); got != 10 {
		t.Fatalf("initial read = %v, want 10", got)
	}
	tx.Write(x, 20)
	if got := tx.Read(x); got != 20 {
		t.Fatalf("read-your-write = %v, want 20", got)
	}
	if !tm.Commit(tx) {
		t.Fatalf("uncontended commit failed")
	}

	ro := tm.Begin(true)
	if got := ro.Read(x); got != 20 {
		t.Fatalf("post-commit read = %v, want 20", got)
	}
	if !tm.Commit(ro) {
		t.Fatalf("read-only commit failed")
	}
}

func TestWriteBufferingIsolation(t *testing.T) {
	tm := newTM()
	x := tm.NewVar(1)
	tx := tm.Begin(false)
	tx.Write(x, 2)
	// Uncommitted writes must not be visible to others.
	other := tm.Begin(true)
	if got := other.Read(x); got != 1 {
		t.Fatalf("uncommitted write leaked: %v", got)
	}
	tm.Abort(tx)
	later := tm.Begin(true)
	if got := later.Read(x); got != 1 {
		t.Fatalf("aborted write leaked: %v", got)
	}
}

// TestFig1LinkedList replays the motivating example of §1.1 in abstract form:
// T3 read a variable that T2 then overwrote and committed, but T3's own writes
// were read by nobody. Classic validation aborts T3; TWM time-warp commits it
// before T2 (history T1 -> T3 -> T2).
func TestFig1LinkedList(t *testing.T) {
	tm := newTM()
	aNext := tm.NewVar("D") // A.next
	dNext := tm.NewVar("E") // D.next

	t3 := tm.Begin(false)
	if got := t3.Read(aNext); got != "D" {
		t.Fatalf("t3 read = %v", got)
	}
	t3.Read(dNext)
	t3.Write(dNext, "nil") // remove E

	t2 := tm.Begin(false)
	t2.Read(aNext)
	t2.Write(aNext, "B") // insert B between A and D
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}

	if !tm.Commit(t3) {
		t.Fatalf("TWM must time-warp commit t3 (spurious abort)")
	}

	// A read-only transaction starting now sees both updates.
	ro := tm.Begin(true)
	if got := ro.Read(aNext); got != "B" {
		t.Fatalf("aNext = %v, want B", got)
	}
	if got := ro.Read(dNext); got != "nil" {
		t.Fatalf("dNext = %v, want nil", got)
	}
}

// TestFig1ClassicValidationAborts verifies the ablation: with time-warp
// disabled the same history aborts, as in TL2-style classic validation.
func TestFig1ClassicValidationAborts(t *testing.T) {
	tm := New(Options{DisableTimeWarp: true, GCEveryNCommits: -1})
	aNext := tm.NewVar("D")
	dNext := tm.NewVar("E")

	t3 := tm.Begin(false)
	t3.Read(aNext)
	t3.Write(dNext, "nil")

	t2 := tm.Begin(false)
	t2.Read(aNext)
	t2.Write(aNext, "B")
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}
	if tm.Commit(t3) {
		t.Fatalf("classic validation must abort t3")
	}
	snap := tm.Stats().Snapshot()
	if snap.ByReason["read-conflict"] != 1 {
		t.Fatalf("abort reasons = %v, want one read-conflict", snap.ByReason)
	}
}

// TestFig2aDoubleAntiDependency: B misses the writes of two concurrent
// committers A1 (on y) and A2 (on z); Rule 1 orders B before both, at
// TW(B) = N(A1).
func TestFig2aDoubleAntiDependency(t *testing.T) {
	tm := newTM()
	x := tm.NewVar(0)
	y := tm.NewVar(0)
	z := tm.NewVar(0)

	b := tm.Begin(false).(*txn)
	b.Read(y)
	b.Read(z)
	b.Write(x, 99)

	a1 := tm.Begin(false)
	a1.Write(y, 1)
	if !tm.Commit(a1) {
		t.Fatalf("a1 commit failed")
	}
	a1Nat := tm.Clock()

	a2 := tm.Begin(false)
	a2.Write(z, 2)
	if !tm.Commit(a2) {
		t.Fatalf("a2 commit failed")
	}

	if !tm.Commit(b) {
		t.Fatalf("B must time-warp commit")
	}
	if b.twOrder != a1Nat {
		t.Fatalf("TW(B) = %d, want N(A1) = %d", b.twOrder, a1Nat)
	}
	if b.natOrder <= b.twOrder {
		t.Fatalf("time-warp commit must have natOrder > twOrder (got %d, %d)", b.natOrder, b.twOrder)
	}
}

// TestFig2bTriadAbort: a read-only transaction C reads x (semi-visibly), B
// writes x and also missed A's committed write to y. B is then the pivot of a
// triad (C -rw-> B -rw-> A) and must abort under Rule 2.
func TestFig2bTriadAbort(t *testing.T) {
	tm := newTM()
	x := tm.NewVar(0)
	y := tm.NewVar(0)
	z := tm.NewVar(0)

	b := tm.Begin(false)
	b.Read(y)
	b.Write(x, 99)

	a := tm.Begin(false)
	a.Read(y) // A also snapshots y before writing it
	a.Write(y, 1)
	if !tm.Commit(a) {
		t.Fatalf("a commit failed")
	}

	// Read-only C reads x after B started; its semi-visible read raises
	// x.readStamp so B's HANDLEWRITE sees the anti-dependency.
	c := tm.Begin(true)
	if got := c.Read(x); got != 0 {
		t.Fatalf("c read = %v", got)
	}
	c.Read(z)
	if !tm.Commit(c) {
		t.Fatalf("read-only c must commit")
	}

	if tm.Commit(b) {
		t.Fatalf("pivot B must abort (Rule 2)")
	}
	snap := tm.Stats().Snapshot()
	if snap.ByReason["triad"] != 1 {
		t.Fatalf("abort reasons = %v, want one triad", snap.ByReason)
	}
}

// TestFig2cReadOnlySeesTimeWarpedVersion: a read-only transaction whose
// snapshot covers a time-warp commit's serialization point must observe its
// writes, even though the natural commit happened after the snapshot.
func TestFig2cReadOnlySeesTimeWarpedVersion(t *testing.T) {
	tm := newTM()
	x := tm.NewVar(0)
	y := tm.NewVar(0)

	b := tm.Begin(false).(*txn)
	b.Read(y)
	b.Write(x, 7)

	a := tm.Begin(false)
	a.Write(y, 1)
	if !tm.Commit(a) {
		t.Fatalf("a commit failed")
	}

	c := tm.Begin(true) // S(C) >= N(A) = TW(B)
	if !tm.Commit(b) {
		t.Fatalf("B must time-warp commit")
	}
	if b.twOrder >= b.natOrder {
		t.Fatalf("B should have time-warped")
	}
	// C started before B's natural commit, but TW(B) <= S(C): Rule 3 makes
	// B's write part of C's snapshot.
	if got := c.Read(x); got != 7 {
		t.Fatalf("read-only snapshot must include time-warped version, got %v", got)
	}
	if !tm.Commit(c) {
		t.Fatalf("read-only c must commit")
	}
}

// TestFig2dUpdateReaderEarlyAbort: an update transaction in the same position
// as C above must NOT observe the time-warped version (Rule 3's natOrder
// condition) and must early-abort when it skips it (Rule 2 early check).
func TestFig2dUpdateReaderEarlyAbort(t *testing.T) {
	tm := newTM()
	x := tm.NewVar(0)
	y := tm.NewVar(0)

	b := tm.Begin(false)
	b.Read(y)
	b.Write(x, 7)

	a := tm.Begin(false)
	a.Write(y, 1)
	if !tm.Commit(a) {
		t.Fatalf("a commit failed")
	}

	u := tm.Begin(false) // update transaction, S(u) >= TW(B)
	if !tm.Commit(b) {
		t.Fatalf("B must time-warp commit")
	}
	expectRetry(t, func() { u.Read(x) })
	tm.Abort(u)
	snap := tm.Stats().Snapshot()
	if snap.ByReason["timewarp-skip"] != 1 {
		t.Fatalf("abort reasons = %v, want one timewarp-skip", snap.ByReason)
	}
}

// TestWriteSkewRejected: the classic SI anomaly (each transaction reads both
// variables and writes one) is non-serializable; TWM must abort the second
// committer via the triad rule.
func TestWriteSkewRejected(t *testing.T) {
	tm := newTM()
	x := tm.NewVar(1)
	y := tm.NewVar(1)

	t1 := tm.Begin(false)
	t1.Read(x)
	t1.Read(y)
	t1.Write(x, -1)

	t2 := tm.Begin(false)
	t2.Read(x)
	t2.Read(y)
	t2.Write(y, -1)

	if !tm.Commit(t1) {
		t.Fatalf("t1 commit failed")
	}
	if tm.Commit(t2) {
		t.Fatalf("write skew must be rejected")
	}
}

// TestTimeWarpClash: two transactions time-warp to the same point and write
// the same variable; the later natural committer's version is elided and the
// surviving state is the earlier committer's (inverse-N serialization).
func TestTimeWarpClash(t *testing.T) {
	tm := New(Options{GCEveryNCommits: -1})
	tm.EnableHistory()
	y := tm.NewVar(0)
	k := tm.NewVar("init")

	b1 := tm.Begin(false).(*txn)
	b1.Read(y)
	b1.Write(k, "b1")
	b2 := tm.Begin(false).(*txn)
	b2.Read(y)
	b2.Write(k, "b2")

	a := tm.Begin(false)
	a.Write(y, 1)
	if !tm.Commit(a) {
		t.Fatalf("a commit failed")
	}

	if !tm.Commit(b1) {
		t.Fatalf("b1 must commit")
	}
	if !tm.Commit(b2) {
		t.Fatalf("b2 must commit (clash, not conflict)")
	}
	if b1.twOrder != b2.twOrder {
		t.Fatalf("expected a clash: TW(b1)=%d TW(b2)=%d", b1.twOrder, b2.twOrder)
	}

	// b1 and b2 serialize in inverse natural order: b2 then b1, so b1's
	// value survives; b2's version is elided.
	ro := tm.Begin(true)
	if got := ro.Read(k); got != "b1" {
		t.Fatalf("surviving value = %v, want b1", got)
	}
	hist := tm.History(k)
	if len(hist) != 2 {
		t.Fatalf("history length = %d, want 2", len(hist))
	}
	if hist[0].Value != "b2" || !hist[0].Elided {
		t.Fatalf("first serialized version should be elided b2, got %+v", hist[0])
	}
	if hist[1].Value != "b1" || hist[1].Elided {
		t.Fatalf("second serialized version should be live b1, got %+v", hist[1])
	}
	if tm.VersionCount(k) != 2 { // init + b1
		t.Fatalf("version count = %d, want 2", tm.VersionCount(k))
	}
}

// TestReadOnlyNeverAborts hammers read-only transactions against a writer and
// checks mv-permissiveness: zero aborts attributable to the readers.
func TestReadOnlyNeverAborts(t *testing.T) {
	tm := newTM()
	vars := make([]stm.Var, 8)
	for i := range vars {
		vars[i] = tm.NewVar(0)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
				for _, v := range vars {
					tx.Write(v, i)
				}
				return nil
			})
		}
	}()
	for i := 0; i < 500; i++ {
		tx := tm.Begin(true)
		first := tx.Read(vars[0])
		for _, v := range vars[1:] {
			if got := tx.Read(v); got != first {
				t.Errorf("inconsistent read-only snapshot: %v vs %v", first, got)
			}
		}
		if !tm.Commit(tx) {
			t.Fatalf("read-only commit failed")
		}
	}
	close(stop)
	wg.Wait()
}

func TestEmptyWriteSetCommit(t *testing.T) {
	tm := newTM()
	x := tm.NewVar(0)
	u := tm.Begin(false)
	u.Read(x)
	w := tm.Begin(false)
	w.Write(x, 1)
	if !tm.Commit(w) {
		t.Fatalf("w commit failed")
	}
	// u wrote nothing: it serializes at its start, no validation needed.
	if !tm.Commit(u) {
		t.Fatalf("write-free update transaction must commit")
	}
}

func TestLockReleaseOnFailedCommit(t *testing.T) {
	tm := newTM()
	x := tm.NewVar(0)
	y := tm.NewVar(0)

	// Build a triad abort for t2 and check x's lock is free afterwards.
	t2 := tm.Begin(false)
	t2.Read(y)
	t2.Write(x, 1)

	w := tm.Begin(false)
	w.Write(y, 1)
	if !tm.Commit(w) {
		t.Fatalf("w commit failed")
	}
	ro := tm.Begin(true)
	ro.Read(x)
	if !tm.Commit(ro) {
		t.Fatalf("ro commit failed")
	}
	if tm.Commit(t2) {
		t.Fatalf("t2 should abort")
	}
	if x.(*twvar).owner.Load() != nil {
		t.Fatalf("lock leaked after failed commit")
	}
	// The variable remains writable.
	t3 := tm.Begin(false)
	t3.Write(x, 2)
	if !tm.Commit(t3) {
		t.Fatalf("post-abort commit failed")
	}
}

func TestStatsAccounting(t *testing.T) {
	tm := newTM()
	x := tm.NewVar(0)
	for i := 0; i < 5; i++ {
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			tx.Write(x, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	ro := tm.Begin(true)
	ro.Read(x)
	tm.Commit(ro)
	snap := tm.Stats().Snapshot()
	if snap.Commits != 6 || snap.ROCommits != 1 || snap.Starts != 6 || snap.Aborts != 0 {
		t.Fatalf("unexpected stats: %+v", snap)
	}
	if snap.AbortRate() != 0 {
		t.Fatalf("abort rate = %v", snap.AbortRate())
	}
}

func TestGCTrimsVersions(t *testing.T) {
	tm := New(Options{GCEveryNCommits: -1})
	x := tm.NewVar(0)
	for i := 0; i < 100; i++ {
		tx := tm.Begin(false)
		tx.Write(x, i)
		if !tm.Commit(tx) {
			t.Fatalf("commit %d failed", i)
		}
	}
	if n := tm.VersionCount(x); n != 101 {
		t.Fatalf("pre-GC version count = %d, want 101", n)
	}
	freed := tm.GC()
	if freed != 100 {
		t.Fatalf("freed = %d, want 100", freed)
	}
	if n := tm.VersionCount(x); n != 1 {
		t.Fatalf("post-GC version count = %d, want 1", n)
	}
	ro := tm.Begin(true)
	if got := ro.Read(x); got != 99 {
		t.Fatalf("post-GC read = %v, want 99", got)
	}
}

func TestGCPreservesActiveSnapshot(t *testing.T) {
	tm := New(Options{GCEveryNCommits: -1})
	x := tm.NewVar("old")

	ro := tm.Begin(true) // snapshot before any update
	w := tm.Begin(false)
	w.Write(x, "new")
	if !tm.Commit(w) {
		t.Fatalf("w commit failed")
	}
	// GC must keep the version ro still needs.
	tm.GC()
	if got := ro.Read(x); got != "old" {
		t.Fatalf("active reader lost its snapshot: %v", got)
	}
	if !tm.Commit(ro) {
		t.Fatalf("ro commit failed")
	}
	// With ro finished, the old version becomes collectable.
	if freed := tm.GC(); freed != 1 {
		t.Fatalf("freed = %d, want 1", freed)
	}
}

func TestVersionListInvariant(t *testing.T) {
	// After a randomized batch of concurrent commits, every version list must
	// be strictly descending in twOrder, with twOrder <= natOrder everywhere.
	tm := New(Options{GCEveryNCommits: -1})
	const nv = 6
	vars := make([]stm.Var, nv)
	for i := range vars {
		vars[i] = tm.NewVar(0)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			r := uint64(seed)*2654435761 + 12345
			next := func(n int) int {
				r ^= r << 13
				r ^= r >> 7
				r ^= r << 17
				return int(r % uint64(n))
			}
			for i := 0; i < 300; i++ {
				_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
					tx.Read(vars[next(nv)])
					tx.Read(vars[next(nv)])
					tx.Write(vars[next(nv)], i) //twm:allow abortshape randomized workload generates upgrade windows on purpose
					return nil
				})
			}
		}(g + 1)
	}
	wg.Wait()
	for i, v := range vars {
		tv := v.(*twvar)
		prev := uint64(1 << 62)
		for ver := tv.latest.Load(); ver != nil; ver = ver.next.Load() {
			if ver.twOrder >= prev {
				t.Fatalf("var %d: twOrder not strictly descending (%d then %d)", i, prev, ver.twOrder)
			}
			if ver.twOrder > ver.natOrder {
				t.Fatalf("var %d: twOrder %d > natOrder %d", i, ver.twOrder, ver.natOrder)
			}
			prev = ver.twOrder
		}
	}
}

func TestConcurrentCounterExact(t *testing.T) {
	tm := New(Options{})
	x := tm.NewVar(0)
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
					tx.Write(x, tx.Read(x).(int)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	ro := tm.Begin(true)
	if got := ro.Read(x); got != goroutines*perG {
		t.Fatalf("counter = %v, want %d", got, goroutines*perG)
	}
}

func TestNameAndFlags(t *testing.T) {
	if got := New(Options{}).Name(); got != "twm" {
		t.Fatalf("name = %q", got)
	}
	if got := New(Options{DisableTimeWarp: true}).Name(); got != "twm-notw" {
		t.Fatalf("ablation name = %q", got)
	}
	if !New(Options{}).MultiVersion() {
		t.Fatalf("TWM is multi-versioned")
	}
}

func TestHistoryOrdering(t *testing.T) {
	tm := New(Options{GCEveryNCommits: -1})
	tm.EnableHistory()
	x := tm.NewVar(0)
	for i := 1; i <= 4; i++ {
		tx := tm.Begin(false)
		tx.Write(x, i)
		if !tm.Commit(tx) {
			t.Fatalf("commit %d failed", i)
		}
	}
	hist := tm.History(x)
	if len(hist) != 4 {
		t.Fatalf("history length = %d", len(hist))
	}
	for i, rec := range hist {
		if rec.Value != i+1 {
			t.Fatalf("history[%d] = %+v, want value %d", i, rec, i+1)
		}
	}
}

func TestAtomicallyUserError(t *testing.T) {
	tm := newTM()
	x := tm.NewVar(0)
	wantErr := fmt.Errorf("boom")
	err := stm.Atomically(tm, false, func(tx stm.Tx) error {
		tx.Write(x, 42)
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("err = %v", err)
	}
	ro := tm.Begin(true)
	if got := ro.Read(x); got != 0 {
		t.Fatalf("user-aborted write leaked: %v", got)
	}
}
