package core_test

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dsg"
	"repro/internal/stm"
	"repro/internal/stm/stmtest"
)

func opaque() stm.TM { return core.New(core.Options{Opacity: true}) }

func TestOpacityConformance(t *testing.T) {
	stmtest.Run(t, opaque, stmtest.Options{RONeverAborts: true})
}

func TestOpacitySerializabilityDSG(t *testing.T) {
	dsg.CheckRandom(t, opaque(), dsg.RunOptions{})
	dsg.CheckRandom(t, opaque(), dsg.RunOptions{Vars: 3, Goroutines: 8, TxPerG: 120, Seed: 42})
}

func TestOpacitySerializabilityTrueParallelism(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	for round := 0; round < 30 && !t.Failed(); round++ {
		dsg.CheckRandom(t, opaque(), dsg.RunOptions{
			Vars: 5, Goroutines: 8, TxPerG: 80, ReadOnlyP: 0.2,
			Seed: uint64(round*71 + 3),
		})
	}
}

// TestOpacityUpdateReaderSeesTimeWarp is the Fig. 2(c)/(d) scenario with the
// roles inverted: under opacity visibility an update transaction observes
// the time-warp committed version (instead of early-aborting as baseline TWM
// does, see TestFig2dUpdateReaderEarlyAbort).
func TestOpacityUpdateReaderSeesTimeWarp(t *testing.T) {
	tm := core.New(core.Options{Opacity: true, GCEveryNCommits: -1})
	x := tm.NewVar(0)
	y := tm.NewVar(0)
	z := tm.NewVar(0)

	b := tm.Begin(false)
	b.Read(y)
	b.Write(x, 7)

	a := tm.Begin(false)
	a.Write(y, 1)
	if !tm.Commit(a) {
		t.Fatalf("a commit failed")
	}

	u := tm.Begin(false) // S(u) covers TW(B)
	if !tm.Commit(b) {
		t.Fatalf("B must time-warp commit")
	}
	nat, tw := tm.CommitOrders(b)
	if tw >= nat {
		t.Fatalf("B should have time-warped (nat=%d tw=%d)", nat, tw)
	}
	if got := u.Read(x); got != 7 {
		t.Fatalf("opaque update read = %v, want the time-warped 7", got)
	}
	u.Write(z, 1)
	if !tm.Commit(u) {
		t.Fatalf("u should commit")
	}
}

// TestOpacityMissedWarpSerializesBefore: an opaque update transaction that
// missed a committed write time-warps to the missed version's serialization
// point.
func TestOpacityMissedWarpSerializesBefore(t *testing.T) {
	tm := core.New(core.Options{Opacity: true, GCEveryNCommits: -1})
	x := tm.NewVar(0)
	y := tm.NewVar(0)

	u := tm.Begin(false)
	u.Read(y)
	u.Write(x, 1)

	w := tm.Begin(false)
	w.Write(y, 2)
	if !tm.Commit(w) {
		t.Fatalf("w commit failed")
	}
	wNat, _ := tm.CommitOrders(w)

	if !tm.Commit(u) {
		t.Fatalf("u must time-warp commit")
	}
	_, uTW := tm.CommitOrders(u)
	if uTW != wNat {
		t.Fatalf("TW(u) = %d, want %d (w's position)", uTW, wNat)
	}
}

// TestOpacityInflightSnapshotConsistency: the defining observable of opacity
// — even doomed update transactions only ever see consistent states. A
// writer keeps x+y constant; opaque update readers check the invariant
// mid-transaction and record (not fail on) what they saw, since consistency
// must hold on every attempt, including ones that later abort.
func TestOpacityInflightSnapshotConsistency(t *testing.T) {
	tm := core.New(core.Options{Opacity: true})
	const pairSum = 100
	x := tm.NewVar(60)
	y := tm.NewVar(40)
	junk := tm.NewVar(0)

	var violations, checks int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if id == 0 { // the invariant-preserving writer
					_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
						d := (i % 5) - 2
						tx.Write(x, tx.Read(x).(int)+d)
						tx.Write(y, tx.Read(y).(int)-d)
						return nil
					})
					continue
				}
				_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
					a := tx.Read(x).(int)
					runtime.Gosched() //twm:impure invite interleaving between the reads
					b := tx.Read(y).(int)
					mu.Lock() //twm:impure per-attempt probe counters, deliberately outside the STM
					checks++
					if a+b != pairSum {
						violations++
					}
					mu.Unlock() //twm:impure see above
					tx.Write(junk, i) // stay an update transaction
					return nil
				})
			}
		}(g)
	}
	wg.Wait()
	if checks == 0 {
		t.Fatalf("no consistency checks ran")
	}
	if violations != 0 {
		t.Fatalf("%d/%d in-flight snapshots were inconsistent", violations, checks)
	}
}
