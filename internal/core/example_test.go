package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stm"
)

// Example demonstrates the library's basic shape: create a TWM instance,
// allocate transactional variables, and run transactions through
// stm.Atomically.
func Example() {
	tm := core.New(core.Options{})
	balance := stm.NewTVar(tm, 100)

	// Transfer out 30, atomically.
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		balance.Set(tx, balance.Get(tx)-30)
		return nil
	})

	// Read-only transactions never abort under TWM. Capture inside the
	// body, print after it commits.
	var b int
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		b = balance.Get(tx)
		return nil
	})
	fmt.Println("balance:", b)
	// Output: balance: 70
}

// Example_timeWarp shows the paper's signature behavior: a transaction whose
// reads went stale commits anyway, serialized in the past.
func Example_timeWarp() {
	tm := core.New(core.Options{})
	x := tm.NewVar("old-x")
	y := tm.NewVar("old-y")

	// T reads x, then writes y (nobody reads y concurrently).
	t := tm.Begin(false)
	_ = t.Read(x)
	t.Write(y, "from-T")

	// A concurrent transaction overwrites x and commits first.
	w := tm.Begin(false)
	w.Write(x, "from-W")
	_ = tm.Commit(w)

	// Classic validation would abort T (its read of x is stale); TWM
	// commits it in the past, before W.
	fmt.Println("T committed:", tm.Commit(t))
	nat, tw := tm.CommitOrders(t)
	fmt.Println("time-warped:", tw < nat)
	// Output:
	// T committed: true
	// time-warped: true
}
