// Package bench is the measurement harness behind every table and figure of
// the paper's evaluation (§5): fixed-duration throughput runners for the
// microbenchmarks (Fig. 3 and 4), fixed-work runners for the STAMP
// applications (Fig. 5, Table 2), the per-phase overhead breakdown
// (Fig. 4(c)), and the aggregation used for the geometric-mean speedup
// summary (Fig. 5(i)).
//
// Absolute numbers depend on the host; what the harness preserves is the
// paper's comparative structure: the same engines, the same workload knobs,
// the same metrics (throughput, time-to-completion, abort rate as
// restarts/executions, per-phase microseconds).
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engines"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/xrand"
)

// Result is one measurement cell: an engine at a thread count.
type Result struct {
	Engine  string
	Threads int
	// Ops counts completed operations (committed application-level ops) for
	// fixed-duration runs; 0 for fixed-work runs.
	Ops uint64
	// Elapsed is the wall time of the measured region.
	Elapsed time.Duration
	// Stats is the engine's counter snapshot over the measured region.
	Stats stm.Snapshot
	// Breakdown is the per-phase profile; only filled by overhead runs.
	Breakdown stm.Breakdown
}

// Throughput returns operations per second (fixed-duration runs).
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// MicroOp executes one application-level operation (typically one
// transaction) for a worker; implementations receive the worker id and its
// private RNG stream.
type MicroOp func(threadID int, r *xrand.Rand)

// Micro is a fixed-duration microbenchmark: Prepare builds shared state and
// returns the per-operation closure.
type Micro struct {
	Name string
	// Prepare sets up state for a run with the given worker count and
	// returns the operation body.
	Prepare func(tm stm.TM, threads int) (MicroOp, error)
}

// RunMicro measures ops/second of m on the named engine over the duration.
// yieldEvery > 0 injects a scheduler yield after every yieldEvery-th barrier
// (see WithYield).
func RunMicro(engine string, m Micro, threads int, d time.Duration, seed uint64, yieldEvery int) (Result, error) {
	inner, err := engines.New(engine)
	if err != nil {
		return Result{}, err
	}
	return RunMicroOn(WithYield(inner, yieldEvery), engine, m, threads, d, seed)
}

// RunMicroOn is RunMicro over a pre-built engine instance — the entry point
// for sweeps whose engines need construction options the registry's plain
// names don't carry (sharded clocks, budgets, custom wrappers). label names
// the engine in the Result.
func RunMicroOn(tm stm.TM, label string, m Micro, threads int, d time.Duration, seed uint64) (Result, error) {
	op, err := m.Prepare(tm, threads)
	if err != nil {
		return Result{}, fmt.Errorf("bench: prepare %s: %w", m.Name, err)
	}
	tm.Stats().Reset()

	var stop atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	base := xrand.New(seed)
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int, r *xrand.Rand) {
			defer wg.Done()
			n := uint64(0)
			for !stop.Load() {
				op(id, r)
				n++
			}
			ops.Add(n)
		}(w, base.Split(w))
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	return Result{
		Engine:  label,
		Threads: threads,
		Ops:     ops.Load(),
		Elapsed: elapsed,
		Stats:   tm.Stats().Snapshot(),
	}, nil
}

// RunMicroProfiled is RunMicro with the Fig. 4(c) phase profiler attached.
func RunMicroProfiled(engine string, m Micro, threads int, d time.Duration, seed uint64, yieldEvery int) (Result, error) {
	inner, err := engines.New(engine)
	if err != nil {
		return Result{}, err
	}
	prof := &stm.Profiler{}
	if p, ok := inner.(stm.Profilable); ok {
		p.SetProfiler(prof)
	} else {
		return Result{}, fmt.Errorf("bench: engine %s is not profilable", engine)
	}
	tm := WithYield(inner, yieldEvery)
	op, err := m.Prepare(tm, threads)
	if err != nil {
		return Result{}, err
	}
	tm.Stats().Reset()
	prof.Reset()

	var stop atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	base := xrand.New(seed)
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int, r *xrand.Rand) {
			defer wg.Done()
			n := uint64(0)
			for !stop.Load() {
				op(id, r)
				n++
			}
			ops.Add(n)
		}(w, base.Split(w))
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	return Result{
		Engine:    engine,
		Threads:   threads,
		Ops:       ops.Load(),
		Elapsed:   elapsed,
		Stats:     tm.Stats().Snapshot(),
		Breakdown: prof.Snapshot(),
	}, nil
}

// RunStamp measures the time to complete a fixed-work STAMP application on
// the named engine, validating the application output afterwards.
func RunStamp(engine string, mk func() stamp.Workload, threads int, yieldEvery int) (Result, error) {
	inner, err := engines.New(engine)
	if err != nil {
		return Result{}, err
	}
	tm := WithYield(inner, yieldEvery)
	w := mk()
	if err := w.Setup(tm); err != nil {
		return Result{}, fmt.Errorf("bench: %s setup: %w", w.Name(), err)
	}
	tm.Stats().Reset()
	start := time.Now()
	if err := w.Run(tm, threads); err != nil {
		return Result{}, fmt.Errorf("bench: %s run: %w", w.Name(), err)
	}
	elapsed := time.Since(start)
	if err := w.Validate(tm); err != nil {
		return Result{}, fmt.Errorf("bench: %s validate (engine %s): %w", w.Name(), engine, err)
	}
	return Result{
		Engine:  engine,
		Threads: threads,
		Elapsed: elapsed,
		Stats:   tm.Stats().Snapshot(),
	}, nil
}
