package bench

import (
	"testing"

	"repro/internal/engines"
	"repro/internal/stm"
)

// BenchmarkTxOverhead measures the fixed per-transaction cost of every engine
// on an uncontended single goroutine: no conflicts, no parallelism, so ns/op
// and allocs/op isolate the constant factors the TWM paper's "lightweight"
// claim rests on (begin/commit bookkeeping, write-set maintenance, version
// installation). Run with:
//
//	go test ./internal/bench -bench TxOverhead -benchmem -run '^$'
//
// Three transaction shapes per engine, matching the allocation-regression
// tests in internal/engines: a read-only transaction touching 8 variables, a
// 1-read-1-write update, and an 8-write update.
func BenchmarkTxOverhead(b *testing.B) {
	for _, name := range engines.Names() {
		b.Run(name, func(b *testing.B) {
			const nv = 64
			tm := engines.MustNew(name)
			vars := make([]stm.Var, nv)
			for i := range vars {
				// Values stay below 256 so boxing hits the runtime's
				// small-int cache and adds no allocations of its own.
				vars[i] = tm.NewVar(i % 251)
			}

			b.Run("readonly8", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					base := i % (nv - 8)
					_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
						for k := 0; k < 8; k++ {
							_ = tx.Read(vars[base+k])
						}
						return nil
					})
				}
			})

			b.Run("update1", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					v := vars[i%nv]
					_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
						tx.Write(v, (tx.Read(v).(int)+1)%251)
						return nil
					})
				}
			})

			b.Run("update8", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					base := i % (nv - 8)
					_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
						for k := 0; k < 8; k++ {
							v := vars[base+k]
							tx.Write(v, (tx.Read(v).(int)+1)%251)
						}
						return nil
					})
				}
			})
		})
	}
}
