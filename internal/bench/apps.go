package bench

import (
	"fmt"

	"repro/internal/stamp"
	"repro/internal/stamp/genome"
	"repro/internal/stamp/intruder"
	"repro/internal/stamp/kmeans"
	"repro/internal/stamp/labyrinth"
	"repro/internal/stamp/ssca2"
	"repro/internal/stamp/vacation"
)

// StampApps returns factories for the eight Fig. 5 panels, keyed by reporting
// name. scale selects input sizes: "default" for benchmark runs, "small" for
// tests and the testing.B harness.
func StampApps(scale string) (map[string]func() stamp.Workload, error) {
	small := false
	switch scale {
	case "default", "":
	case "small":
		small = true
	default:
		return nil, fmt.Errorf("bench: unknown scale %q (want default or small)", scale)
	}
	pick := func(def, sm func() stamp.Workload) func() stamp.Workload {
		if small {
			return sm
		}
		return def
	}
	return map[string]func() stamp.Workload{
		"genome": pick(
			func() stamp.Workload { return genome.New(genome.Default()) },
			func() stamp.Workload { return genome.New(genome.Small()) }),
		"intruder": pick(
			func() stamp.Workload { return intruder.New(intruder.Default()) },
			func() stamp.Workload { return intruder.New(intruder.Small()) }),
		"kmeans-low": pick(
			func() stamp.Workload { return kmeans.New("kmeans-low", kmeans.Low()) },
			func() stamp.Workload { return kmeans.New("kmeans-low", kmeans.Small()) }),
		"kmeans-high": pick(
			func() stamp.Workload { return kmeans.New("kmeans-high", kmeans.High()) },
			func() stamp.Workload {
				p := kmeans.Small()
				p.Clusters = 2
				return kmeans.New("kmeans-high", p)
			}),
		"labyrinth": pick(
			func() stamp.Workload { return labyrinth.New(labyrinth.Default()) },
			func() stamp.Workload { return labyrinth.New(labyrinth.Small()) }),
		"ssca2": pick(
			func() stamp.Workload { return ssca2.New(ssca2.Default()) },
			func() stamp.Workload { return ssca2.New(ssca2.Small()) }),
		"vacation-low": pick(
			func() stamp.Workload { return vacation.New("vacation-low", vacation.Low()) },
			func() stamp.Workload {
				p := vacation.Small()
				p.QueryRange, p.UserPct = 0.9, 0.98
				return vacation.New("vacation-low", p)
			}),
		"vacation-high": pick(
			func() stamp.Workload { return vacation.New("vacation-high", vacation.High()) },
			func() stamp.Workload { return vacation.New("vacation-high", vacation.Small()) }),
	}, nil
}

// StampAppNames lists the Fig. 5 panels in the paper's order.
func StampAppNames() []string {
	return []string{"genome", "intruder", "ssca2", "kmeans-low", "kmeans-high", "labyrinth", "vacation-low", "vacation-high"}
}
