package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/xrand"
)

// BenchmarkReadScaling measures the read-dominated IntSet workload per engine
// across the goroutine axis — the read-path scalability probe behind the
// sharded semi-visible stamps (DESIGN.md §12). Each g-axis sub-benchmark
// splits b.N application-level operations (95% lookups) over exactly g
// goroutines with per-worker RNG streams, oversubscribing a fixed goroutine
// count the way the fixed-duration harness does. Run with:
//
//	go test ./internal/bench -bench ReadScaling -benchmem -run '^$'
func BenchmarkReadScaling(b *testing.B) {
	cfg := DefaultReadScaling()
	for _, name := range engines.Names() {
		b.Run(name, func(b *testing.B) {
			for _, g := range ReadScalingThreads() {
				b.Run(fmt.Sprintf("g%d", g), func(b *testing.B) {
					tm := engines.MustNew(name)
					op, err := ReadScalingMicro(cfg).Prepare(tm, g)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					runFixedGoroutines(b, g, op)
				})
			}
		})
	}
}

// runFixedGoroutines splits b.N operations across exactly g goroutines with
// per-worker RNG streams, mirroring RunMicro's worker structure.
func runFixedGoroutines(b *testing.B, g int, op MicroOp) {
	if g > b.N {
		g = b.N
	}
	done := make(chan struct{}, g)
	base := xrand.New(uint64(b.N) | 1)
	share := b.N / g
	extra := b.N % g
	for w := 0; w < g; w++ {
		n := share
		if w < extra {
			n++
		}
		go func(id, n int, r *xrand.Rand) {
			for i := 0; i < n; i++ {
				op(id, r)
			}
			done <- struct{}{}
		}(w, n, base.Split(w))
	}
	for w := 0; w < g; w++ {
		<-done
	}
}

// TestReadScaleSmoke is the CI smoke form of the read-scaling experiment: a
// tiny sweep on every engine, asserting the sweep completes, the JSON
// artifact round-trips, and the read path stays correct under concurrency
// (committed lookups dominate).
func TestReadScaleSmoke(t *testing.T) {
	threads := []int{1, 4}
	dur := 40 * time.Millisecond
	if testing.Short() {
		threads = []int{2}
		dur = 20 * time.Millisecond
	}
	cfg := FigureConfig{
		Engines:  engines.Names(),
		Threads:  threads,
		Duration: dur,
		Seed:     1,
		// One yield per barrier approximates multi-core interleaving on the
		// CI container, exactly as the figure sweeps do.
		YieldEvery: 1,
	}
	rs := ReadScalingConfig{Elements: 200, KeyRange: 400, UpdatePct: 0.05, Seed: 1}

	var out bytes.Buffer
	results, err := ReadScaleFigure(&out, cfg, rs)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cfg.Engines) * len(threads); len(results) != want {
		t.Fatalf("got %d cells, want %d", len(results), want)
	}
	for _, r := range results {
		if r.Stats.Commits == 0 {
			t.Errorf("%s t=%d: no commits", r.Engine, r.Threads)
		}
		if r.Stats.ROCommits == 0 {
			t.Errorf("%s t=%d: no read-only commits on a read-dominated workload", r.Engine, r.Threads)
		}
	}

	art := NewReadScaleArtifact(cfg, rs, results)
	var js bytes.Buffer
	if err := art.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back ReadScaleArtifact
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if back.Experiment != "readscale" || len(back.Cells) != len(results) {
		t.Fatalf("artifact mismatch: %+v", back)
	}
}

// TestStampContentionTable covers both renderings of the contention table:
// all-zero counters print the placeholder line, non-zero counters print rows.
func TestStampContentionTable(t *testing.T) {
	var out bytes.Buffer
	StampContentionTable(&out, []Result{{Engine: "tl2", Threads: 2}})
	if !strings.Contains(out.String(), "no read-stamp CAS retries") {
		t.Fatalf("zero-counter table output:\n%s", out.String())
	}
	out.Reset()
	r := Result{Engine: "twm", Threads: 4}
	r.Stats = stm.Snapshot{Commits: 10, StampCASRetries: 7, StampMaxScans: 3}
	StampContentionTable(&out, []Result{r})
	got := out.String()
	if !strings.Contains(got, "twm") || !strings.Contains(got, "7") || !strings.Contains(got, "0.700") {
		t.Fatalf("contention table output:\n%s", got)
	}
}
