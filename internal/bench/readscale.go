package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Read-scaling experiment: the read-path contention probe behind ISSUE 5.
//
// TWM's semi-visible reads make every read a *shared-memory write* (a CAS
// maximum on the variable's read stamp), and AVSTM's visible reads are worse
// (a mutex plus registry insert). On a read-dominated workload those writes
// are the scalability ceiling: a read-hot variable's stamp is one cache line
// ping-ponging across every reading core. This experiment sweeps goroutine
// counts on a read-dominated IntSet and reports reads/second, making the
// ceiling (and the effect of sharding the stamps) measurable. Cells are
// emitted as a machine-readable JSON artifact (BENCH_readscale.json) so
// successive PRs can compare like against like.

// ReadScalingConfig parameterizes the read-dominated IntSet sweep.
type ReadScalingConfig struct {
	Elements  int     // initial set size
	KeyRange  int64   // keys drawn from [0, KeyRange)
	UpdatePct float64 // fraction of update transactions (small: read-dominated)
	Seed      uint64
}

// DefaultReadScaling is the container-sized read-dominated configuration:
// 95% lookups over a shared skip list small enough that concurrent readers
// collide on the same hot variables (the head towers) at every thread count.
func DefaultReadScaling() ReadScalingConfig {
	return ReadScalingConfig{Elements: 2_000, KeyRange: 4_000, UpdatePct: 0.05, Seed: 1}
}

// ReadScalingThreads is the goroutine axis of the sweep.
func ReadScalingThreads() []int { return []int{1, 2, 4, 8, 16, 32, 64} }

// ReadScalingMicro is the read-dominated IntSet workload: UpdatePct
// insert/remove pairs, the rest lookups, over one shared skip list.
func ReadScalingMicro(cfg ReadScalingConfig) Micro {
	sl := SkipListMicro(SkipListConfig{
		Elements:  cfg.Elements,
		KeyRange:  cfg.KeyRange,
		UpdatePct: cfg.UpdatePct,
		Seed:      cfg.Seed,
	})
	sl.Name = "readscale"
	return sl
}

// ReadScaleFigure runs the read-scaling sweep and prints reads/s (committed
// transactions per second; at 95% lookups throughput is read throughput) and
// the stamp-contention counters per engine and thread count.
func ReadScaleFigure(w io.Writer, cfg FigureConfig, rs ReadScalingConfig) ([]Result, error) {
	results, err := microFigure(w, cfg, ReadScalingMicro(rs),
		fmt.Sprintf("Read scaling: read-dominated IntSet throughput (txs/s), %.0f%% updates", rs.UpdatePct*100),
		"Read scaling companion: abort rate (%)")
	if err != nil {
		return nil, err
	}
	StampContentionTable(w, results)
	return results, nil
}

// StampContentionTable prints the semi-visible-read contention counters (CAS
// retries on read stamps, committer max-over-shards scans) per engine and
// thread count — the observability for the sharded-stamp read path, next to
// the retries-by-reason histogram in the summary.
func StampContentionTable(w io.Writer, results []Result) {
	hasAny := false
	for _, r := range results {
		if r.Stats.StampCASRetries > 0 || r.Stats.StampMaxScans > 0 {
			hasAny = true
			break
		}
	}
	if !hasAny {
		fmt.Fprintln(w, "stamp contention: no read-stamp CAS retries or shard-max scans recorded")
		return
	}
	tbl := NewTable("Semi-visible read contention (stamp CAS retries / shard-max scans)",
		"engine", "threads", "cas-retries", "shard-max-scans", "retries/commit")
	for _, r := range results {
		perCommit := 0.0
		if r.Stats.Commits > 0 {
			perCommit = float64(r.Stats.StampCASRetries) / float64(r.Stats.Commits)
		}
		tbl.AddRow(r.Engine, fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%d", r.Stats.StampCASRetries),
			fmt.Sprintf("%d", r.Stats.StampMaxScans),
			fmt.Sprintf("%.3f", perCommit))
	}
	tbl.Fprint(w)
}

// ReadScaleCell is one engine×threads measurement in the JSON artifact.
type ReadScaleCell struct {
	Engine          string  `json:"engine"`
	Threads         int     `json:"threads"`
	Ops             uint64  `json:"ops"`
	ElapsedNS       int64   `json:"elapsed_ns"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	Commits         uint64  `json:"commits"`
	ROCommits       uint64  `json:"ro_commits"`
	Aborts          uint64  `json:"aborts"`
	AbortRate       float64 `json:"abort_rate"`
	StampCASRetries uint64  `json:"stamp_cas_retries"`
	StampMaxScans   uint64  `json:"stamp_max_scans"`
}

// ReadScaleArtifact is the machine-readable form of a read-scaling sweep —
// the baseline artifact format for the bench trajectory (BENCH_readscale.json).
type ReadScaleArtifact struct {
	Experiment string            `json:"experiment"`
	Config     ReadScalingConfig `json:"config"`
	DurationMS int64             `json:"duration_ms_per_cell"`
	YieldEvery int               `json:"yield_every"`
	Cells      []ReadScaleCell   `json:"cells"`
}

// NewReadScaleArtifact assembles the JSON artifact from a sweep's cells.
func NewReadScaleArtifact(cfg FigureConfig, rs ReadScalingConfig, results []Result) ReadScaleArtifact {
	art := ReadScaleArtifact{
		Experiment: "readscale",
		Config:     rs,
		DurationMS: cfg.Duration.Milliseconds(),
		YieldEvery: cfg.YieldEvery,
	}
	for _, r := range results {
		art.Cells = append(art.Cells, ReadScaleCell{
			Engine:          r.Engine,
			Threads:         r.Threads,
			Ops:             r.Ops,
			ElapsedNS:       int64(r.Elapsed / time.Nanosecond),
			OpsPerSec:       r.Throughput(),
			Commits:         r.Stats.Commits,
			ROCommits:       r.Stats.ROCommits,
			Aborts:          r.Stats.Aborts,
			AbortRate:       r.Stats.AbortRate(),
			StampCASRetries: r.Stats.StampCASRetries,
			StampMaxScans:   r.Stats.StampMaxScans,
		})
	}
	return art
}

// WriteJSON emits the artifact with stable indentation (diff-friendly when
// committed to the repository).
func (a ReadScaleArtifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}
