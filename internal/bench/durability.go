package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/wal"
	"repro/internal/xrand"
)

// Durability experiment: the fsync-policy latency ladder (DESIGN.md §16).
//
// Every cell runs the same contended bank-transfer workload on a WAL-capable
// engine; what varies is the durability policy the commit path waits on:
//
//	off         no log attached — the in-memory baseline
//	interval    append only; a ticker fsyncs in the background
//	per-batch   a dedicated syncer groups concurrent commits into one fsync
//	per-commit  every commit waits for its own record to be durable
//
// Throughput tells half the story; the ladder is about the latency
// distribution, so each cell samples per-transaction commit latency and
// reports the percentiles. The artifact (BENCH_durability.json) records the
// ladder so successive PRs can see a durability regression as numbers.

// DurabilityConfig parameterizes the transfer workload.
type DurabilityConfig struct {
	Accounts int    `json:"accounts"` // bank accounts (transfer picks two at random)
	Seed     uint64 `json:"seed"`
}

// DefaultDurability is the container-sized configuration.
func DefaultDurability() DurabilityConfig { return DurabilityConfig{Accounts: 1024, Seed: 1} }

// DurabilityPolicies is the ladder, cheapest first.
func DurabilityPolicies() []string { return []string{"off", "interval", "per-batch", "per-commit"} }

// DurabilityEngines pairs the serial flagship with its group-commit variant —
// group commit amortizes the log append (one record per batch) exactly where
// per-commit fsync hurts the most.
func DurabilityEngines() []string { return []string{"twm", "twm-gc"} }

// DurabilityThreads is the single goroutine count of the ladder: enough
// concurrency that the per-batch and group-commit amortization has something
// to combine.
func DurabilityThreads() int { return 16 }

// DurabilityCell is one engine×policy measurement.
type DurabilityCell struct {
	Engine      string  `json:"engine"`
	Policy      string  `json:"policy"`
	Threads     int     `json:"threads"`
	Ops         uint64  `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50us       float64 `json:"p50_us"`
	P95us       float64 `json:"p95_us"`
	P99us       float64 `json:"p99_us"`
	MaxUs       float64 `json:"max_us"`
	WALAppended uint64  `json:"wal_appended,omitempty"`
	WALSynced   uint64  `json:"wal_synced,omitempty"`
	LogBytes    int64   `json:"log_bytes,omitempty"`
}

// DurabilityArtifact is the machine-readable ladder (BENCH_durability.json).
type DurabilityArtifact struct {
	Experiment string           `json:"experiment"`
	Config     DurabilityConfig `json:"config"`
	DurationMS int64            `json:"duration_ms_per_cell"`
	Cells      []DurabilityCell `json:"cells"`
}

// WriteJSON emits the artifact with stable indentation.
func (a DurabilityArtifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// DurabilityFigure runs the ladder and prints the table. Engines and policies
// come from the arguments so the CLI axes apply; threads is a single count.
func DurabilityFigure(w io.Writer, engineNames, policies []string, threads int, d time.Duration, dc DurabilityConfig) (DurabilityArtifact, error) {
	art := DurabilityArtifact{Experiment: "durability", Config: dc, DurationMS: d.Milliseconds()}
	tbl := NewTable(fmt.Sprintf("Durability: fsync-policy latency ladder, %d goroutines, %d accounts", threads, dc.Accounts),
		"engine", "policy", "tx/s", "p50 µs", "p95 µs", "p99 µs", "max µs", "appended")
	for _, engine := range engineNames {
		for _, policy := range policies {
			cell, err := runDurabilityCell(engine, policy, threads, d, dc)
			if err != nil {
				return art, err
			}
			art.Cells = append(art.Cells, cell)
			tbl.AddRow(engine, policy, FormatCount(cell.OpsPerSec),
				fmt.Sprintf("%.1f", cell.P50us), fmt.Sprintf("%.1f", cell.P95us),
				fmt.Sprintf("%.1f", cell.P99us), fmt.Sprintf("%.0f", cell.MaxUs),
				fmt.Sprintf("%d", cell.WALAppended))
		}
	}
	tbl.Fprint(w)
	return art, nil
}

// runDurabilityCell measures one engine×policy cell on a fresh engine and a
// fresh throwaway log directory.
func runDurabilityCell(engine, policy string, threads int, d time.Duration, dc DurabilityConfig) (DurabilityCell, error) {
	cell := DurabilityCell{Engine: engine, Policy: policy, Threads: threads}

	var (
		tm stm.TM
		w  *wal.Writer
	)
	if policy == "off" {
		var err error
		if tm, err = engines.New(engine); err != nil {
			return cell, err
		}
	} else {
		pol, err := wal.ParsePolicy(policy)
		if err != nil {
			return cell, err
		}
		dir, err := os.MkdirTemp("", "twm-bench-wal-")
		if err != nil {
			return cell, err
		}
		defer os.RemoveAll(dir)
		if w, err = wal.Open(wal.Options{Dir: dir, Policy: pol}); err != nil {
			return cell, err
		}
		defer w.Close()
		if tm, err = engines.NewDurable(engine, w); err != nil {
			return cell, err
		}
	}

	vars := make([]*stm.TVar[int64], dc.Accounts)
	for i := range vars {
		vars[i] = stm.NewTVar(tm, int64(1000))
	}

	var (
		stop  atomic.Bool
		wg    sync.WaitGroup
		mu    sync.Mutex
		lats  []time.Duration
		total uint64
	)
	start := time.Now()
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(xrand.Mix(dc.Seed ^ uint64(g+1)))
			local := make([]time.Duration, 0, 4096)
			ops := uint64(0)
			for !stop.Load() {
				from, to := rng.Intn(dc.Accounts), rng.Intn(dc.Accounts)
				if from == to {
					continue
				}
				t0 := time.Now()
				err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					b := vars[from].Get(tx)
					if b < 1 {
						return nil
					}
					vars[from].Set(tx, b-1) //twm:allow abortshape insufficient-funds guard is the workload's inherent check-then-act
					vars[to].Set(tx, vars[to].Get(tx)+1)
					return nil
				})
				if err != nil {
					return // a latched log ends the cell early; counters still report
				}
				local = append(local, time.Since(t0))
				ops++
			}
			mu.Lock()
			lats = append(lats, local...)
			total += ops
			mu.Unlock()
		}(g)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	cell.Ops = total
	cell.OpsPerSec = float64(total) / elapsed.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	us := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		idx := int(q * float64(len(lats)-1))
		return float64(lats[idx]) / float64(time.Microsecond)
	}
	cell.P50us, cell.P95us, cell.P99us, cell.MaxUs = us(0.50), us(0.95), us(0.99), us(1)

	if w != nil {
		appended, synced, _, werr := w.WALCounters()
		if werr != nil {
			return cell, fmt.Errorf("bench: %s/%s: log failed mid-cell: %w", engine, policy, werr)
		}
		cell.WALAppended, cell.WALSynced = appended, synced
		filepath.Walk(w.Dir(), func(_ string, info os.FileInfo, err error) error { //nolint:errcheck
			if err == nil && !info.IsDir() {
				cell.LogBytes += info.Size()
			}
			return nil
		})
	}
	return cell, nil
}
