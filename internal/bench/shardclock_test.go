package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestShardClockFigureSmoke runs a tiny shard-clock sweep end to end: both
// engine rows appear, every cell carries commits, the sharded cells classify
// their commits (single-shard at cross = 0, both classes at cross > 0), and
// the artifact round-trips through the JSON writer.
func TestShardClockFigureSmoke(t *testing.T) {
	sc := ShardClockConfig{
		Partitions:       4,
		VarsPerPartition: 32,
		WritesPerTx:      3,
		ZipfS:            1.1,
		Seed:             7,
		CrossFracs:       []float64{0, 0.5},
	}
	cfg := FigureConfig{Threads: []int{4}, Duration: 30 * time.Millisecond, Seed: 7}
	var buf bytes.Buffer
	art, err := ShardClockFigure(&buf, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(sc.CrossFracs) * len(cfg.Threads) * 2; len(art.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(art.Cells), want)
	}
	for _, c := range art.Cells {
		if c.Commits == 0 {
			t.Errorf("cell %s t=%d cross=%.2f: no commits", c.Engine, c.Threads, c.CrossFrac)
		}
		if c.ClockShards > 1 {
			if c.SingleShardCommits == 0 {
				t.Errorf("sharded cell cross=%.2f: no single-shard commits", c.CrossFrac)
			}
			if c.CrossFrac > 0 && c.CrossShardCommits == 0 {
				t.Errorf("sharded cell cross=%.2f: no cross-shard commits", c.CrossFrac)
			}
			if c.CrossFrac == 0 && c.CrossShardCommits != 0 {
				t.Errorf("sharded cell cross=0: %d cross-shard commits", c.CrossShardCommits)
			}
		} else if c.SingleShardCommits != 0 || c.CrossShardCommits != 0 {
			t.Errorf("unsharded cell recorded shard commit classes")
		}
	}
	for _, want := range []string{"twm-shard4", "Shard clock gain", "Shard commit classes"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("figure output missing %q", want)
		}
	}
	var js bytes.Buffer
	if err := art.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"experiment": "shardclock"`) {
		t.Errorf("artifact JSON missing experiment tag")
	}
}

// TestShardClockSharder pins the partition-major id mapping: NewVar ids are
// 1-based, so partition p's variables (ids p*V+1 .. (p+1)*V) must land on
// shard p.
func TestShardClockSharder(t *testing.T) {
	s := shardClockSharder(32)
	for p := 0; p < 4; p++ {
		for i := 0; i < 32; i++ {
			id := uint64(p*32 + i + 1)
			if got := s(id, 4); got != p {
				t.Fatalf("sharder(%d) = %d, want %d", id, got, p)
			}
		}
	}
}
