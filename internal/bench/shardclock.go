package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/xrand"
)

// Shard-clock experiment: the partitioned multi-clock probe (DESIGN.md §17).
//
// The workload partitions a counter array into P partitions aligned with the
// sharded engine's clock domains; every worker is sticky to a home partition
// (worker id mod P — the NUMA-ish shard-hint mode) and RMW-increments a few
// Zipf-drawn counters there, so contention is intra-partition by
// construction. A cross-shard mix knob makes each transaction also touch a
// second partition with the given probability. The A/B contrasts the same
// engine unsharded and sharded at several mixes:
//
//   - Single-shard mix (cross = 0): the sharded engine's commits draw from
//     their home shard's clock alone — zero coordination with other domains.
//     On a single-core host this A/B is close to isomorphic for twm (its
//     commit-time walks compare per-variable stamps, not clock reads, so a
//     partitioned workload drives the same decisions either way); the sweep
//     documents that honestly and exists to expose the coherence-limited
//     shape on real multicore hardware, where the unsharded engine's single
//     clock line is the contended word. See EXPERIMENTS.md.
//   - Cross mixes (10%, 50%): a fraction of commits pay the fence draw and
//     validate per shard — the price of the two-phase cross-shard protocol,
//     bounded by the acceptance criterion (≤10% under the unsharded engine).
type ShardClockConfig struct {
	Partitions       int     // partitions == clock shards in the sharded cells
	VarsPerPartition int     // counters per partition
	WritesPerTx      int     // RMW increments per transaction
	ZipfS            float64 // intra-partition access skew
	Seed             uint64
	CrossFracs       []float64 // cross-shard transaction fractions to sweep
}

// DefaultShardClock is the container-sized configuration: enough partitions
// that the sharded engine's number lines stay quiet, hot enough inside each
// partition (Zipf) that the unsharded engine's validation work is real.
func DefaultShardClock() ShardClockConfig {
	return ShardClockConfig{
		Partitions:       16,
		VarsPerPartition: 256,
		WritesPerTx:      4,
		ZipfS:            1.1,
		Seed:             1,
		CrossFracs:       []float64{0, 0.10, 0.50},
	}
}

// ShardClockThreads is the goroutine axis of the sweep.
func ShardClockThreads() []int { return []int{8, 16, 32, 64} }

// shardClockMicro builds the partitioned counter workload at one cross-shard
// fraction. Keys are drawn outside the transaction body so retries replay the
// same footprint.
func shardClockMicro(cfg ShardClockConfig, crossFrac float64) Micro {
	return Micro{
		Name: "shardclock",
		Prepare: func(tm stm.TM, threads int) (MicroOp, error) {
			p, v := cfg.Partitions, cfg.VarsPerPartition
			vars := make([]stm.Var, p*v)
			for i := range vars {
				vars[i] = tm.NewVar(0)
			}
			z := xrand.NewZipf(v, cfg.ZipfS)
			op := func(id int, r *xrand.Rand) {
				home := id % p // sticky shard hint: a worker's footprint lives here
				n := cfg.WritesPerTx
				var picks [16]int
				if n > len(picks) {
					n = len(picks)
				}
				part := home
				cross := crossFrac > 0 && r.Float64() < crossFrac
				other := home
				if cross {
					other = (home + 1 + r.Intn(p-1)) % p
				}
				for i := 0; i < n; i++ {
					// A cross transaction splits its writes over two
					// partitions; a single-shard one stays home.
					if cross && i >= n/2 {
						part = other
					}
					picks[i] = part*v + z.Next(r)
				}
				_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
					for i := 0; i < n; i++ {
						tv := vars[picks[i]]
						tx.Write(tv, tx.Read(tv).(int)+1)
					}
					return nil
				})
			}
			return op, nil
		},
	}
}

// shardClockSharder maps the workload's partition-major variable ids onto
// clock shards: partition p owns ids [p*V+1, (p+1)*V], so partition == shard.
func shardClockSharder(varsPerPartition int) func(id uint64, shards int) int {
	v := uint64(varsPerPartition)
	return func(id uint64, shards int) int {
		if id == 0 {
			return 0
		}
		return int(((id - 1) / v) % uint64(shards))
	}
}

// ShardClockCell is one measurement in the JSON artifact.
type ShardClockCell struct {
	Engine             string  `json:"engine"`
	ClockShards        int     `json:"clock_shards"`
	CrossFrac          float64 `json:"cross_frac"`
	Threads            int     `json:"threads"`
	Ops                uint64  `json:"ops"`
	ElapsedNS          int64   `json:"elapsed_ns"`
	OpsPerSec          float64 `json:"ops_per_sec"`
	Commits            uint64  `json:"commits"`
	Aborts             uint64  `json:"aborts"`
	AbortRate          float64 `json:"abort_rate"`
	SingleShardCommits uint64  `json:"single_shard_commits,omitempty"`
	CrossShardCommits  uint64  `json:"cross_shard_commits,omitempty"`
	ShardCASRetries    uint64  `json:"shard_cas_retries,omitempty"`
}

// ShardClockArtifact is the machine-readable sweep (BENCH_shardclock.json).
type ShardClockArtifact struct {
	Experiment string           `json:"experiment"`
	Config     ShardClockConfig `json:"config"`
	DurationMS int64            `json:"duration_ms_per_cell"`
	// GOMAXPROCSPerCell records that each cell ran at GOMAXPROCS equal to its
	// goroutine count (same rationale as the group-commit sweep).
	GOMAXPROCSPerCell bool `json:"gomaxprocs_per_cell"`
	// RepsPerCell is the repetitions each cell ran; the reported cell is the
	// throughput median (oversubscribed schedules are noisy).
	RepsPerCell int              `json:"reps_per_cell"`
	Cells       []ShardClockCell `json:"cells"`
}

// WriteJSON emits the artifact with stable indentation (diff-friendly when
// committed to the repository).
func (a ShardClockArtifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// shardClockReps is the per-cell repetition count; each cell reports its
// throughput median. Three is the smallest odd count with a true median.
const shardClockReps = 3

// medianRun executes run shardClockReps times and returns the result with the
// median throughput, forcing a collection between repetitions so one rep's
// version-chain residue does not bleed into the next.
func medianRun(run func() (Result, error)) (Result, error) {
	var results []Result
	for i := 0; i < shardClockReps; i++ {
		runtime.GC()
		r, err := run()
		if err != nil {
			return Result{}, err
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Throughput() < results[j].Throughput() })
	return results[len(results)/2], nil
}

// ShardClockFigure runs the unsharded-vs-sharded A/B over the cross-shard
// mixes and thread counts, printing throughput tables, the commit-class
// accounting, and the pairwise gains. Like the group-commit sweep it pins
// GOMAXPROCS to the cell's goroutine count: oversubscription is the point —
// the schedule interleaves many committers, and what separates the engines is
// how much commit-time work each transaction performs, not parallel clock
// hardware. Each cell is the median of shardClockReps repetitions.
func ShardClockFigure(w io.Writer, cfg FigureConfig, sc ShardClockConfig) (*ShardClockArtifact, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	art := &ShardClockArtifact{
		Experiment:        "shardclock",
		Config:            sc,
		DurationMS:        cfg.Duration.Milliseconds(),
		GOMAXPROCSPerCell: true,
		RepsPerCell:       shardClockReps,
	}
	sharded := fmt.Sprintf("twm-shard%d", sc.Partitions)
	for _, crossFrac := range sc.CrossFracs {
		m := shardClockMicro(sc, crossFrac)
		thr := NewTable(fmt.Sprintf("Shard clock: partitioned counters throughput (txs/s), %.0f%% cross-shard, %d writes/tx",
			crossFrac*100, sc.WritesPerTx),
			append([]string{"engine"}, threadHeaders(cfg.Threads)...)...)
		gain := NewTable(fmt.Sprintf("Shard clock gain over unsharded (%.0f%% cross-shard)", crossFrac*100),
			"threads", "unsharded tx/s", "sharded tx/s", "gain")
		rows := map[string][]string{"twm": {"twm"}, sharded: {sharded}}
		for _, t := range cfg.Threads {
			runtime.GOMAXPROCS(t)
			base, err := medianRun(func() (Result, error) {
				return RunMicro("twm", m, t, cfg.Duration, cfg.Seed, 0)
			})
			if err != nil {
				runtime.GOMAXPROCS(prev)
				return nil, err
			}
			sh, err := medianRun(func() (Result, error) {
				shTM := engines.MustNewSharded("twm", sc.Partitions, shardClockSharder(sc.VarsPerPartition))
				return RunMicroOn(shTM, sharded, m, t, cfg.Duration, cfg.Seed)
			})
			runtime.GOMAXPROCS(prev)
			if err != nil {
				return nil, err
			}
			for _, r := range []Result{base, sh} {
				shards := 1
				if r.Engine == sharded {
					shards = sc.Partitions
				}
				art.Cells = append(art.Cells, ShardClockCell{
					Engine:             r.Engine,
					ClockShards:        shards,
					CrossFrac:          crossFrac,
					Threads:            r.Threads,
					Ops:                r.Ops,
					ElapsedNS:          int64(r.Elapsed / time.Nanosecond),
					OpsPerSec:          r.Throughput(),
					Commits:            r.Stats.Commits,
					Aborts:             r.Stats.Aborts,
					AbortRate:          r.Stats.AbortRate(),
					SingleShardCommits: r.Stats.SingleShardCommits,
					CrossShardCommits:  r.Stats.CrossShardCommits,
					ShardCASRetries:    r.Stats.ShardClockCASRetries,
				})
				rows[r.Engine] = append(rows[r.Engine], FormatCount(r.Throughput()))
			}
			gain.AddRow(fmt.Sprintf("%d", t), FormatCount(base.Throughput()), FormatCount(sh.Throughput()),
				fmt.Sprintf("%+.1f%%", (sh.Throughput()/base.Throughput()-1)*100))
		}
		thr.AddRow(rows["twm"]...)
		thr.AddRow(rows[sharded]...)
		thr.Fprint(w)
		gain.Fprint(w)
	}
	ShardCommitClassTable(w, art.Cells)
	return art, nil
}

// ShardCommitClassTable prints the single- vs cross-shard commit accounting
// for every sharded cell, with the fence draw's CAS retries.
func ShardCommitClassTable(w io.Writer, cells []ShardClockCell) {
	any := false
	for _, c := range cells {
		if c.ClockShards > 1 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	tbl := NewTable("Shard commit classes (sharded cells)",
		"cross-frac", "threads", "single-shard", "cross-shard", "cas-retries")
	for _, c := range cells {
		if c.ClockShards <= 1 {
			continue
		}
		tbl.AddRow(fmt.Sprintf("%.0f%%", c.CrossFrac*100), fmt.Sprintf("%d", c.Threads),
			fmt.Sprintf("%d", c.SingleShardCommits), fmt.Sprintf("%d", c.CrossShardCommits),
			fmt.Sprintf("%d", c.ShardCASRetries))
	}
	tbl.Fprint(w)
}
