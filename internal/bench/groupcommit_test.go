package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/engines"
)

// BenchmarkGroupCommit measures the write-heavy Zipf counter workload on each
// serial engine and its group-commit variant across the goroutine axis — the
// A/B behind the flat-combining commit stage (DESIGN.md §13). Each cell pins
// GOMAXPROCS to its goroutine count, exactly as GroupCommitFigure does. Run
// with:
//
//	go test ./internal/bench -bench GroupCommit -benchmem -run '^$'
func BenchmarkGroupCommit(b *testing.B) {
	cfg := DefaultGroupCommit()
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, name := range GroupCommitEngines() {
		b.Run(name, func(b *testing.B) {
			for _, g := range GroupCommitThreads() {
				b.Run(fmt.Sprintf("g%d", g), func(b *testing.B) {
					tm := engines.MustNew(name)
					op, err := GroupCommitMicro(cfg).Prepare(tm, g)
					if err != nil {
						b.Fatal(err)
					}
					runtime.GOMAXPROCS(g)
					defer runtime.GOMAXPROCS(prev)
					b.ReportAllocs()
					b.ResetTimer()
					runFixedGoroutines(b, g, op)
				})
			}
		})
	}
}

// TestGroupCommitSmoke is the CI smoke form of the group-commit experiment:
// a tiny A/B sweep asserting that the sweep completes, the -gc engines
// actually batch with the one-tick-per-batch invariant intact, the counters
// stay exact, and the JSON artifact round-trips.
func TestGroupCommitSmoke(t *testing.T) {
	threads := []int{2, 4}
	dur := 40 * time.Millisecond
	if testing.Short() {
		threads = []int{2}
		dur = 20 * time.Millisecond
	}
	cfg := FigureConfig{
		Engines:  GroupCommitEngines(),
		Threads:  threads,
		Duration: dur,
		Seed:     1,
	}
	gc := GroupCommitConfig{Counters: 256, WritesPerTx: 4, ZipfS: 1.1, Seed: 1}

	var out bytes.Buffer
	results, err := GroupCommitFigure(&out, cfg, gc)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cfg.Engines) * len(threads); len(results) != want {
		t.Fatalf("got %d cells, want %d", len(results), want)
	}
	for _, r := range results {
		if r.Stats.Commits == 0 {
			t.Errorf("%s t=%d: no commits", r.Engine, r.Threads)
		}
		grouped := strings.HasSuffix(r.Engine, "-gc")
		if grouped && r.Stats.GroupBatches == 0 {
			t.Errorf("%s t=%d: group-commit engine never batched", r.Engine, r.Threads)
		}
		if !grouped && r.Stats.GroupBatches != 0 {
			t.Errorf("%s t=%d: serial engine reported batches", r.Engine, r.Threads)
		}
		if r.Stats.ClockAdvances != r.Stats.GroupBatches {
			t.Errorf("%s t=%d: clock advances %d != batches %d",
				r.Engine, r.Threads, r.Stats.ClockAdvances, r.Stats.GroupBatches)
		}
	}
	for _, want := range []string{"Group commit", "abort rate", "batch statistics", "speedup"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("figure output missing %q:\n%s", want, out.String())
		}
	}

	art := NewGroupCommitArtifact(cfg, gc, results)
	var js bytes.Buffer
	if err := art.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back GroupCommitArtifact
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if back.Experiment != "groupcommit" || !back.GOMAXPROCSPerCell || len(back.Cells) != len(results) {
		t.Fatalf("artifact mismatch: %+v", back)
	}
}

// TestGroupCommitMicroBatchesAllUpdates: on a group-commit engine every
// update commit of the workload flows through the combiner — the batched-tx
// counter covers all of them (and no more than commits+aborts, since locked
// members may still fail validation at their turn).
func TestGroupCommitMicroBatchesAllUpdates(t *testing.T) {
	gc := GroupCommitConfig{Counters: 64, WritesPerTx: 4, ZipfS: 1.1, Seed: 1}
	res, err := RunMicro("twm-gc", GroupCommitMicro(gc), 4, 30*time.Millisecond, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Stats.Commits == 0 {
		t.Fatalf("no work done: %+v", res.Stats)
	}
	updates := res.Stats.Commits - res.Stats.ROCommits
	if res.Stats.GroupBatchTxs < updates {
		t.Fatalf("batched txs %d < update commits %d", res.Stats.GroupBatchTxs, updates)
	}
	if res.Stats.GroupBatchTxs > res.Stats.Commits+res.Stats.Aborts {
		t.Fatalf("batched txs %d > commits+aborts %d",
			res.Stats.GroupBatchTxs, res.Stats.Commits+res.Stats.Aborts)
	}
}
