package bench

import (
	"fmt"
	"io"
	"sort"
)

// StampCell indexes one STAMP measurement for aggregation.
type StampCell struct {
	App string
	Result
}

// Summary aggregates a full STAMP sweep into the paper's Fig. 5(i) and
// Table 2.
type Summary struct {
	Cells []StampCell
}

// Add appends app's results.
func (s *Summary) Add(app string, results []Result) {
	for _, r := range results {
		s.Cells = append(s.Cells, StampCell{App: app, Result: r})
	}
}

// apps returns the distinct applications, sorted.
func (s *Summary) apps() []string {
	set := map[string]bool{}
	for _, c := range s.Cells {
		set[c.App] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// threads returns the distinct thread counts, ascending.
func (s *Summary) threads() []int {
	set := map[int]bool{}
	for _, c := range s.Cells {
		set[c.Threads] = true
	}
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// engines returns the distinct engines in first-seen order.
func (s *Summary) engines() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range s.Cells {
		if !seen[c.Engine] {
			seen[c.Engine] = true
			out = append(out, c.Engine)
		}
	}
	return out
}

func (s *Summary) cell(app, engine string, threads int) (StampCell, bool) {
	for _, c := range s.Cells {
		if c.App == app && c.Engine == engine && c.Threads == threads {
			return c, true
		}
	}
	return StampCell{}, false
}

// Fig5iSpeedups prints the geometric mean (and geometric deviation) of TWM's
// speedup relative to each baseline across all applications, per thread
// count — the paper's Fig. 5(i).
func (s *Summary) Fig5iSpeedups(w io.Writer, reference string) {
	baselines := []string{}
	for _, e := range s.engines() {
		if e != reference {
			baselines = append(baselines, e)
		}
	}
	tbl := NewTable(fmt.Sprintf("Fig 5(i): geometric mean speedup of %s (per baseline x threads)", reference),
		append([]string{"vs engine"}, threadHeaders(s.threads())...)...)
	for _, base := range baselines {
		row := []string{base}
		for _, t := range s.threads() {
			var speedups []float64
			for _, app := range s.apps() {
				ref, ok1 := s.cell(app, reference, t)
				b, ok2 := s.cell(app, base, t)
				if ok1 && ok2 && ref.Elapsed > 0 {
					speedups = append(speedups, float64(b.Elapsed)/float64(ref.Elapsed))
				}
			}
			gm := GeoMean(speedups)
			dev := GeoDev(speedups)
			row = append(row, fmt.Sprintf("%.2fx (g%.2f)", gm, dev))
		}
		tbl.AddRow(row...)
	}
	tbl.Fprint(w)
}

// Table2 prints the two halves of the paper's Table 2: average abort rate per
// benchmark (left, averaged over thread counts > 1) and per thread count
// (right, averaged over benchmarks).
func (s *Summary) Table2(w io.Writer) {
	apps := s.apps()
	left := NewTable("Table 2 (left): average abort rate (%) per STAMP benchmark",
		append([]string{"engine"}, apps...)...)
	for _, e := range s.engines() {
		row := []string{e}
		for _, app := range apps {
			var rates []float64
			for _, t := range s.threads() {
				if t == 1 {
					continue // single-threaded runs have no conflicts
				}
				if c, ok := s.cell(app, e, t); ok {
					rates = append(rates, c.Stats.AbortRate()*100)
				}
			}
			row = append(row, fmt.Sprintf("%.1f", mean(rates)))
		}
		left.AddRow(row...)
	}
	left.Fprint(w)

	threads := []int{}
	for _, t := range s.threads() {
		if t > 1 {
			threads = append(threads, t)
		}
	}
	right := NewTable("Table 2 (right): average abort rate (%) per thread count",
		append([]string{"engine"}, threadHeadersOf(threads)...)...)
	for _, e := range s.engines() {
		row := []string{e}
		for _, t := range threads {
			var rates []float64
			for _, app := range apps {
				if c, ok := s.cell(app, e, t); ok {
					rates = append(rates, c.Stats.AbortRate()*100)
				}
			}
			row = append(row, fmt.Sprintf("%.1f", mean(rates)))
		}
		right.AddRow(row...)
	}
	right.Fprint(w)
}

// ReasonHistogram prints a per-engine histogram of retries by abort reason,
// aggregated over every cell in the summary. Abort *rates* (Table 2) say how
// often engines restart; the histogram says *why* — whether an engine's
// aborts come from read validation, commit write conflicts, lock timeouts, or
// TWM's triad rule — which is the observability the contention-management
// policies key off (a reason-aware policy is only as good as this split is
// truthful). Each cell shows the count and its share of the engine's aborts.
func (s *Summary) ReasonHistogram(w io.Writer) {
	// Union of reasons seen anywhere, sorted for stable columns.
	reasonSet := map[string]bool{}
	totals := map[string]map[string]uint64{} // engine -> reason -> count
	aborts := map[string]uint64{}            // engine -> total aborts
	for _, c := range s.Cells {
		eng := totals[c.Engine]
		if eng == nil {
			eng = map[string]uint64{}
			totals[c.Engine] = eng
		}
		for reason, n := range c.Stats.ByReason {
			reasonSet[reason] = true
			eng[reason] += n
		}
		aborts[c.Engine] += c.Stats.Aborts
	}
	reasons := make([]string, 0, len(reasonSet))
	for r := range reasonSet {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	if len(reasons) == 0 {
		fmt.Fprintln(w, "retry histogram: no aborts recorded")
		return
	}
	tbl := NewTable("Retries by abort reason (count, share of engine's aborts)",
		append([]string{"engine"}, reasons...)...)
	for _, e := range s.engines() {
		row := []string{e}
		for _, r := range reasons {
			n := totals[e][r]
			if total := aborts[e]; total > 0 {
				row = append(row, fmt.Sprintf("%d (%.0f%%)", n, 100*float64(n)/float64(total)))
			} else {
				row = append(row, "0")
			}
		}
		tbl.AddRow(row...)
	}
	tbl.Fprint(w)
}

// ShardCommitSplit prints each engine's single- vs cross-shard commit split
// and fence CAS retries, aggregated over every cell. Engines running a single
// clock domain record nothing here, so the table only appears when a sharded
// engine contributed — the split is the first thing to read when a sharded
// run's throughput looks wrong (a cross-heavy split means the fence, not the
// fast path, set the pace).
func (s *Summary) ShardCommitSplit(w io.Writer) {
	single := map[string]uint64{}
	cross := map[string]uint64{}
	retries := map[string]uint64{}
	any := false
	for _, c := range s.Cells {
		single[c.Engine] += c.Stats.SingleShardCommits
		cross[c.Engine] += c.Stats.CrossShardCommits
		retries[c.Engine] += c.Stats.ShardClockCASRetries
		if c.Stats.SingleShardCommits > 0 || c.Stats.CrossShardCommits > 0 {
			any = true
		}
	}
	if !any {
		return
	}
	tbl := NewTable("Shard commit split (aggregated over cells)",
		"engine", "single-shard", "cross-shard", "cross share", "cas-retries")
	for _, e := range s.engines() {
		total := single[e] + cross[e]
		if total == 0 {
			continue
		}
		tbl.AddRow(e, fmt.Sprintf("%d", single[e]), fmt.Sprintf("%d", cross[e]),
			fmt.Sprintf("%.1f%%", 100*float64(cross[e])/float64(total)),
			fmt.Sprintf("%d", retries[e]))
	}
	tbl.Fprint(w)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func threadHeadersOf(threads []int) []string {
	out := make([]string, len(threads))
	for i, t := range threads {
		out[i] = fmt.Sprintf("t=%d", t)
	}
	return out
}
