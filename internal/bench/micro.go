package bench

import (
	"repro/internal/ds/skiplist"
	"repro/internal/stm"
	"repro/internal/xrand"
)

// SkipListConfig parameterizes the §5.1 microbenchmark.
type SkipListConfig struct {
	Elements  int     // initial set size
	KeyRange  int64   // keys drawn from [0, KeyRange)
	UpdatePct float64 // fraction of update transactions (rest are lookups)
	Seed      uint64
}

// PaperSkipList is the configuration of Fig. 3 (100k elements, 25% updates),
// with the key range at twice the size so inserts and removes balance.
func PaperSkipList() SkipListConfig {
	return SkipListConfig{Elements: 100_000, KeyRange: 200_000, UpdatePct: 0.25, Seed: 1}
}

// DefaultSkipList is a container-sized variant with the same shape. The set
// is small enough that concurrent update paths overlap at the thread counts
// of the sweep, which is what makes the paper's Fig. 3(b) abort-rate
// separation visible without 64 hardware threads.
func DefaultSkipList() SkipListConfig {
	return SkipListConfig{Elements: 2_000, KeyRange: 4_000, UpdatePct: 0.25, Seed: 1}
}

// SkipListMicro is the Fig. 3(a)/(b) workload: lookups plus insert/remove
// pairs over a shared skip list.
func SkipListMicro(cfg SkipListConfig) Micro {
	return Micro{
		Name: "skiplist",
		Prepare: func(tm stm.TM, threads int) (MicroOp, error) {
			s := skiplist.New(tm)
			r := xrand.New(cfg.Seed)
			const batch = 256
			for done := 0; done < cfg.Elements; {
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					for i := 0; i < batch && done < cfg.Elements; i++ {
						if s.Insert(tx, r.Int63()%cfg.KeyRange) {
							done++
						}
					}
					return nil
				}); err != nil {
					return nil, err
				}
			}
			op := func(_ int, r *xrand.Rand) {
				k := r.Int63() % cfg.KeyRange
				if r.Float64() < cfg.UpdatePct {
					insert := r.Bool(0.5)
					_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
						if insert {
							s.Insert(tx, k)
						} else {
							s.Remove(tx, k)
						}
						return nil
					})
				} else {
					_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
						s.Contains(tx, k)
						return nil
					})
				}
			}
			return op, nil
		},
	}
}

// CountersMicro is the Fig. 4(a) worst case: every transaction increments the
// same two shared counters, a conflict pattern no engine can accommodate.
func CountersMicro() Micro {
	return Micro{
		Name: "counters",
		Prepare: func(tm stm.TM, threads int) (MicroOp, error) {
			a := tm.NewVar(0)
			b := tm.NewVar(0)
			op := func(_ int, _ *xrand.Rand) {
				_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
					tx.Write(a, tx.Read(a).(int)+1)
					tx.Write(b, tx.Read(b).(int)+1)
					return nil
				})
			}
			return op, nil
		},
	}
}

// DisjointConfig parameterizes the conflict-free Fig. 4(b)/(c) workload.
type DisjointConfig struct {
	ElementsPerList int
	KeyRange        int64
	Seed            uint64
}

// DefaultDisjoint is the container-sized conflict-free configuration.
func DefaultDisjoint() DisjointConfig {
	return DisjointConfig{ElementsPerList: 2_000, KeyRange: 4_000, Seed: 1}
}

// DisjointMicro is the Fig. 4(b) workload: each worker updates a private skip
// list, so transactions are write-heavy (100% updates) but conflict-free —
// isolating the engines' fixed costs, which Fig. 4(c) then decomposes.
func DisjointMicro(cfg DisjointConfig) Micro {
	return Micro{
		Name: "disjoint",
		Prepare: func(tm stm.TM, threads int) (MicroOp, error) {
			lists := make([]*skiplist.Set, threads)
			r := xrand.New(cfg.Seed)
			for i := range lists {
				lists[i] = skiplist.New(tm)
				const batch = 256
				for done := 0; done < cfg.ElementsPerList; {
					if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
						for j := 0; j < batch && done < cfg.ElementsPerList; j++ {
							if lists[i].Insert(tx, r.Int63()%cfg.KeyRange) {
								done++
							}
						}
						return nil
					}); err != nil {
						return nil, err
					}
				}
			}
			op := func(id int, r *xrand.Rand) {
				s := lists[id]
				k := r.Int63() % cfg.KeyRange
				insert := r.Bool(0.5)
				_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
					if insert {
						s.Insert(tx, k)
					} else {
						s.Remove(tx, k)
					}
					return nil
				})
			}
			return op, nil
		},
	}
}
