package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/stamp"
)

// FigureConfig controls a sweep: which engines, which thread counts, and the
// per-cell duration for fixed-duration microbenchmarks.
type FigureConfig struct {
	Engines  []string
	Threads  []int
	Duration time.Duration
	Seed     uint64
	// YieldEvery injects a scheduler yield after every N-th transactional
	// barrier, simulating the mid-transaction preemption that real
	// multi-core overlap provides (see WithYield). 0 disables.
	YieldEvery int
}

// DefaultThreads is the paper's x-axis (goroutine counts here; the paper's
// machine had 64 hardware threads, this harness oversubscribes a container).
func DefaultThreads() []int { return []int{1, 4, 8, 16, 32, 64} }

// Fig3SkipList runs the Fig. 3(a)/(b) sweep and prints throughput and abort
// rate per engine and thread count. It returns all cells for further
// aggregation.
func Fig3SkipList(w io.Writer, cfg FigureConfig, sl SkipListConfig) ([]Result, error) {
	return microFigure(w, cfg, SkipListMicro(sl),
		"Fig 3(a): SkipList throughput (txs/s), 25% updates",
		"Fig 3(b): SkipList abort rate (%)")
}

// Fig4aCounters runs the Fig. 4(a) sweep (two shared counters, 100% writes).
func Fig4aCounters(w io.Writer, cfg FigureConfig) ([]Result, error) {
	return microFigure(w, cfg, CountersMicro(),
		"Fig 4(a): two shared counters throughput (txs/s)",
		"Fig 4(a) companion: abort rate (%)")
}

// Fig4bDisjoint runs the Fig. 4(b) sweep (per-thread skip lists, no
// conflicts).
func Fig4bDisjoint(w io.Writer, cfg FigureConfig, dj DisjointConfig) ([]Result, error) {
	return microFigure(w, cfg, DisjointMicro(dj),
		"Fig 4(b): disjoint SkipLists throughput (txs/s), 100% writes",
		"Fig 4(b) companion: abort rate (%)")
}

func microFigure(w io.Writer, cfg FigureConfig, m Micro, thrTitle, abortTitle string) ([]Result, error) {
	var all []Result
	thr := NewTable(thrTitle, append([]string{"engine"}, threadHeaders(cfg.Threads)...)...)
	ab := NewTable(abortTitle, append([]string{"engine"}, threadHeaders(cfg.Threads)...)...)
	for _, engine := range cfg.Engines {
		thrRow := []string{engine}
		abRow := []string{engine}
		for _, t := range cfg.Threads {
			res, err := RunMicro(engine, m, t, cfg.Duration, cfg.Seed, cfg.YieldEvery)
			if err != nil {
				return nil, err
			}
			all = append(all, res)
			thrRow = append(thrRow, FormatCount(res.Throughput()))
			abRow = append(abRow, fmt.Sprintf("%.1f", res.Stats.AbortRate()*100))
		}
		thr.AddRow(thrRow...)
		ab.AddRow(abRow...)
	}
	thr.Fprint(w)
	ab.Fprint(w)
	return all, nil
}

// Fig4cOverhead runs the per-phase breakdown on the conflict-free disjoint
// workload (the experiment behind Fig. 4(c)) and prints microseconds per
// transaction spent in each phase.
func Fig4cOverhead(w io.Writer, cfg FigureConfig, dj DisjointConfig) ([]Result, error) {
	var all []Result
	tbl := NewTable("Fig 4(c): overhead breakdown on disjoint SkipLists (us per update tx)",
		"engine", "threads", "read", "readSet-val", "writeSet-val", "commit", "total")
	for _, engine := range cfg.Engines {
		for _, t := range cfg.Threads {
			res, err := RunMicroProfiled(engine, DisjointMicro(dj), t, cfg.Duration, cfg.Seed, cfg.YieldEvery)
			if err != nil {
				return nil, err
			}
			all = append(all, res)
			b := res.Breakdown
			tbl.AddRow(engine, fmt.Sprintf("%d", t),
				fmt.Sprintf("%.2f", b.ReadUS),
				fmt.Sprintf("%.2f", b.ReadSetValUS),
				fmt.Sprintf("%.2f", b.WriteSetValUS),
				fmt.Sprintf("%.2f", b.CommitUS),
				fmt.Sprintf("%.2f", b.TotalUS()))
		}
	}
	tbl.Fprint(w)
	return all, nil
}

// Fig5Stamp runs one STAMP application across the sweep, printing time to
// complete (the paper's Fig. 5 metric, lower is better) and abort rates.
func Fig5Stamp(w io.Writer, cfg FigureConfig, mk func() stamp.Workload) ([]Result, error) {
	name := mk().Name()
	var all []Result
	tt := NewTable(fmt.Sprintf("Fig 5: %s time to complete (ms)", name),
		append([]string{"engine"}, threadHeaders(cfg.Threads)...)...)
	ab := NewTable(fmt.Sprintf("Fig 5 companion: %s abort rate (%%)", name),
		append([]string{"engine"}, threadHeaders(cfg.Threads)...)...)
	for _, engine := range cfg.Engines {
		ttRow := []string{engine}
		abRow := []string{engine}
		for _, t := range cfg.Threads {
			res, err := RunStamp(engine, mk, t, cfg.YieldEvery)
			if err != nil {
				return nil, err
			}
			all = append(all, res)
			ttRow = append(ttRow, fmt.Sprintf("%.0f", float64(res.Elapsed.Microseconds())/1000))
			abRow = append(abRow, fmt.Sprintf("%.1f", res.Stats.AbortRate()*100))
		}
		tt.AddRow(ttRow...)
		ab.AddRow(abRow...)
	}
	tt.Fprint(w)
	ab.Fprint(w)
	return all, nil
}

func threadHeaders(threads []int) []string {
	out := make([]string, len(threads))
	for i, t := range threads {
		out[i] = fmt.Sprintf("t=%d", t)
	}
	return out
}
