package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engines"
	"repro/internal/health"
	"repro/internal/mvutil"
	"repro/internal/stm"
)

// PressureConfig sizes the resource-exhaustion experiment: a version budget
// deliberately small relative to the working set, a trim depth whose
// per-variable floor (Vars x MaxVersionDepth) exceeds the hard limit (so
// trimming alone cannot relieve a blocked-GC regime), and an admission gate
// undersized for the worker count (so saturation surfaces as overload
// refusals rather than an abort storm).
type PressureConfig struct {
	// Vars is the shared working-set size.
	Vars int
	// SoftVersions / HardVersions are the budget limits (versions).
	SoftVersions int64
	HardVersions int64
	// MaxVersionDepth is the per-variable chain depth hard-pressure trims to.
	MaxVersionDepth int
	// GateLimit caps concurrently admitted update transactions; 0 derives
	// max(1, threads/2) per cell.
	GateLimit int
	// GateWait bounds how long a call queues at the gate before it is shed
	// with *stm.OverloadError.
	GateWait time.Duration
}

// DefaultPressure is the container-sized configuration: the same shape the
// chaos pressure soak validates (64 vars, depth 4 => trim floor 256 > hard
// 160, so a pinned snapshot forces commit refusal).
func DefaultPressure() PressureConfig {
	return PressureConfig{
		Vars:            64,
		SoftVersions:    96,
		HardVersions:    160,
		MaxVersionDepth: 4,
		GateWait:        100 * time.Microsecond,
	}
}

// pressureDetail is the per-cell observability the table prints beyond the
// generic Result.
type pressureDetail struct {
	budget    mvutil.BudgetSnapshot
	raised    int
	cleared   int
	recovered bool
}

// PressureFigure drives every multi-versioned engine in cfg.Engines through
// the three degradation regimes of the resource-exhaustion layer (DESIGN.md
// §11) and prints what each regime cost:
//
//  1. Stabilize: sustained gated update load under a small version budget —
//     soft pressure triggers eager GC and memory stays bounded.
//  2. Degrade: a pinned old snapshot blocks GC while the load continues —
//     hard pressure escalates through trim to commit refusal
//     (ReasonMemoryPressure) and the health watchdog raises alerts.
//  3. Recover: the pin is released — GC drains the backlog, commits resume,
//     and the watchdog clears.
//
// Engines without version chains (tl2, norec, avstm) have no version memory
// to exhaust and are skipped with a note. Each phase runs for cfg.Duration;
// the cell uses the largest configured thread count (the experiment probes
// degradation regimes, not scaling).
func PressureFigure(w io.Writer, cfg FigureConfig, pc PressureConfig) ([]Result, error) {
	mv := map[string]bool{}
	for _, name := range engines.MultiVersionSet() {
		mv[name] = true
	}
	threads := 1
	for _, t := range cfg.Threads {
		if t > threads {
			threads = t
		}
	}
	var all []Result
	tbl := NewTable(fmt.Sprintf("Pressure: stabilize/degrade/recover under a %d/%d-version budget (t=%d)",
		pc.SoftVersions, pc.HardVersions, threads),
		"engine", "commit/s", "mem-press", "overload", "softGCs", "trims", "rejects", "live-vers", "alerts", "recovered")
	for _, engine := range cfg.Engines {
		if !mv[engine] {
			fmt.Fprintf(w, "pressure: skipping %s (no version chains to exhaust)\n", engine)
			continue
		}
		res, det, err := runPressureCell(engine, threads, cfg.Duration, pc)
		if err != nil {
			return nil, err
		}
		all = append(all, res)
		tbl.AddRow(engine,
			FormatCount(res.Throughput()),
			fmt.Sprintf("%d", res.Stats.ByReason[stm.ReasonMemoryPressure.String()]),
			fmt.Sprintf("%d", res.Stats.ByReason[stm.ReasonOverload.String()]),
			fmt.Sprintf("%d", det.budget.SoftGCs),
			fmt.Sprintf("%d", det.budget.Trims),
			fmt.Sprintf("%d", det.budget.Rejects),
			fmt.Sprintf("%d", det.budget.Versions),
			fmt.Sprintf("%d up / %d down", det.raised, det.cleared),
			fmt.Sprintf("%v", det.recovered))
	}
	tbl.Fprint(w)
	return all, nil
}

// runPressureCell runs the three phases for one engine and returns the cell
// plus its budget/gate/watchdog detail. Result.Ops counts commits across all
// phases; Result.Elapsed covers the whole cell, so Throughput is the average
// commit rate including the degraded window.
func runPressureCell(engine string, threads int, d time.Duration, pc PressureConfig) (Result, pressureDetail, error) {
	b := mvutil.NewVersionBudget(mvutil.BudgetConfig{
		SoftVersions: pc.SoftVersions,
		HardVersions: pc.HardVersions,
	})
	tm, err := engines.NewBudgeted(engine, b, pc.MaxVersionDepth)
	if err != nil {
		return Result{}, pressureDetail{}, err
	}
	gateLimit := pc.GateLimit
	if gateLimit <= 0 {
		gateLimit = threads / 2
		if gateLimit < 1 {
			gateLimit = 1
		}
	}
	gate := stm.NewAdmissionGate(gateLimit, pc.GateWait)
	vars := make([]stm.Var, pc.Vars)
	for i := range vars {
		vars[i] = tm.NewVar(0)
	}
	det := pressureDetail{}
	wd := health.New(health.Config{RaiseAfter: 2, ClearAfter: 2, MinAborts: 8,
		OnAlert: []health.AlertFunc{func(a health.Alert) {
			if a.Raised {
				det.raised++
			} else {
				det.cleared++
			}
		}}}, health.TargetOf(tm))

	var (
		ops      atomic.Uint64
		shed     atomic.Uint64
		errMu    sync.Mutex
		firstErr error
	)
	// runPhase hammers gated updates from `threads` workers for the phase
	// duration while the cell goroutine samples the watchdog. Overload
	// refusals are shed (counted) rather than retried: the gate's contract is
	// that the caller decides, and this caller models a server dropping
	// requests at the door.
	runPhase := func(phase time.Duration) {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ctx.Err() == nil; i++ {
					idx := (g*31 + i) % pc.Vars
					err := stm.AtomicallyGated(ctx, tm, false, gate, nil, func(tx stm.Tx) error {
						tx.Write(vars[idx], tx.Read(vars[idx]).(int)+1)
						return nil
					})
					var oe *stm.OverloadError
					var ce *stm.CancelledError
					switch {
					case err == nil:
						ops.Add(1)
					case errors.As(err, &oe):
						shed.Add(1)
					case errors.As(err, &ce):
						// phase over
					default:
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}(g)
		}
		end := time.Now().Add(phase)
		for time.Now().Before(end) {
			wd.Step()
			time.Sleep(10 * time.Millisecond)
		}
		cancel()
		wg.Wait()
	}

	start := time.Now()
	// Phase 1 — stabilize under the budget.
	runPhase(d)
	// Phase 2 — degrade: a pinned snapshot blocks GC for the whole phase.
	pin := tm.Begin(true)
	runPhase(d)
	// Phase 3 — recover: release the pin, drain, and let the watchdog clear.
	tm.Abort(pin)
	end := time.Now().Add(d)
	for time.Now().Before(end) {
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			tx.Write(vars[0], tx.Read(vars[0]).(int)+1)
			return nil
		}); err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
			break
		}
		ops.Add(1)
		wd.Step()
		if b.Level() != mvutil.PressureHard && det.cleared >= det.raised && det.raised > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)

	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	if err != nil {
		return Result{}, pressureDetail{}, fmt.Errorf("bench: pressure %s: %w", engine, err)
	}
	det.budget = b.Snapshot()
	det.recovered = b.Level() != mvutil.PressureHard
	return Result{
		Engine:  engine,
		Threads: threads,
		Ops:     ops.Load(),
		Elapsed: elapsed,
		Stats:   tm.Stats().Snapshot(),
	}, det, nil
}
