package bench

import (
	"fmt"
	"io"

	"repro/internal/ds/rbtree"
	"repro/internal/ds/treap"
	"repro/internal/stm"
	"repro/internal/xrand"
)

// TreeConfig parameterizes the ordered-map microbenchmark (the IntSet-RBTree
// companion of the paper's skip-list experiment, plus a structure ablation:
// this repository's vacation uses a treap where STAMP uses a red-black
// tree, and this benchmark quantifies that substitution).
type TreeConfig struct {
	Impl      string  // "treap" or "rbtree"
	Elements  int     // initial size
	KeyRange  int64   // keys drawn from [0, KeyRange)
	UpdatePct float64 // fraction of update transactions
	ZipfS     float64 // access skew (0 = uniform)
	Seed      uint64
}

// DefaultTree returns the container-sized tree configuration.
func DefaultTree(impl string) TreeConfig {
	return TreeConfig{Impl: impl, Elements: 2_000, KeyRange: 4_000, UpdatePct: 0.25, Seed: 1}
}

// orderedMap abstracts the two tree implementations for the benchmark.
type orderedMap interface {
	Contains(tx stm.Tx, k int64) bool
	Put(tx stm.Tx, k int64, v stm.Value) bool
	Delete(tx stm.Tx, k int64) bool
}

// TreeMicro builds the tree workload: lookups plus insert/delete pairs, with
// optional Zipfian key skew.
func TreeMicro(cfg TreeConfig) Micro {
	return Micro{
		Name: "tree-" + cfg.Impl,
		Prepare: func(tm stm.TM, threads int) (MicroOp, error) {
			var m orderedMap
			switch cfg.Impl {
			case "treap":
				m = treap.New(tm)
			case "rbtree":
				m = rbtree.New(tm)
			default:
				return nil, fmt.Errorf("bench: unknown tree impl %q", cfg.Impl)
			}
			r := xrand.New(cfg.Seed)
			const batch = 128
			for done := 0; done < cfg.Elements; {
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					for i := 0; i < batch && done < cfg.Elements; i++ {
						if m.Put(tx, r.Int63()%cfg.KeyRange, done) {
							done++
						}
					}
					return nil
				}); err != nil {
					return nil, err
				}
			}
			var mkKey func(r *xrand.Rand) int64
			if cfg.ZipfS > 0 {
				// The CDF table is immutable after build and shared by all
				// workers, each sampling through its own RNG stream.
				z := xrand.NewZipf(int(cfg.KeyRange), cfg.ZipfS)
				mkKey = func(r *xrand.Rand) int64 { return int64(z.Next(r)) }
			} else {
				mkKey = func(r *xrand.Rand) int64 { return r.Int63() % cfg.KeyRange }
			}
			op := func(_ int, r *xrand.Rand) {
				k := mkKey(r)
				if r.Float64() < cfg.UpdatePct {
					insert := r.Bool(0.5)
					_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
						if insert {
							m.Put(tx, k, k)
						} else {
							m.Delete(tx, k)
						}
						return nil
					})
				} else {
					_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
						m.Contains(tx, k)
						return nil
					})
				}
			}
			return op, nil
		},
	}
}

// TreeFigure runs the treap-vs-rbtree comparison across engines and thread
// counts (an ablation beyond the paper's tables; see DESIGN.md §6).
func TreeFigure(w io.Writer, cfg FigureConfig, elements int, zipfS float64) ([]Result, error) {
	var all []Result
	for _, impl := range []string{"treap", "rbtree"} {
		tc := DefaultTree(impl)
		tc.Elements = elements
		tc.KeyRange = int64(elements) * 2
		tc.ZipfS = zipfS
		res, err := microFigure(w, cfg, TreeMicro(tc),
			fmt.Sprintf("Ablation: ordered map (%s) throughput (txs/s)", impl),
			fmt.Sprintf("Ablation: ordered map (%s) abort rate (%%)", impl))
		if err != nil {
			return nil, err
		}
		all = append(all, res...)
	}
	return all, nil
}
