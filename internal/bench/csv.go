package bench

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV appends results as machine-readable rows (one per engine×threads
// cell) labelled with the experiment id, for plotting outside the text-table
// pipeline. Columns: experiment, engine, threads, ops, elapsed_ms,
// throughput_ops_s, commits, aborts, abort_rate, read_us, readsetval_us,
// writesetval_us, commit_us.
func WriteCSV(w io.Writer, experiment string, results []Result) error {
	cw := csv.NewWriter(w)
	for _, r := range results {
		rec := []string{
			experiment,
			r.Engine,
			fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%d", r.Ops),
			fmt.Sprintf("%.3f", float64(r.Elapsed.Microseconds())/1000),
			fmt.Sprintf("%.1f", r.Throughput()),
			fmt.Sprintf("%d", r.Stats.Commits),
			fmt.Sprintf("%d", r.Stats.Aborts),
			fmt.Sprintf("%.5f", r.Stats.AbortRate()),
			fmt.Sprintf("%.3f", r.Breakdown.ReadUS),
			fmt.Sprintf("%.3f", r.Breakdown.ReadSetValUS),
			fmt.Sprintf("%.3f", r.Breakdown.WriteSetValUS),
			fmt.Sprintf("%.3f", r.Breakdown.CommitUS),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVHeader writes the column header row.
func CSVHeader(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"experiment", "engine", "threads", "ops", "elapsed_ms",
		"throughput_ops_s", "commits", "aborts", "abort_rate",
		"read_us", "readsetval_us", "writesetval_us", "commit_us",
	}); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
