package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/stm"
	"repro/internal/xrand"
)

// Group-commit experiment: the commit-pipelining probe behind the
// flat-combining commit stage (DESIGN.md §13).
//
// The workload is write-heavy and Zipf-skewed: every transaction RMW-
// increments a handful of counters drawn from a skewed distribution over a
// large array, so commits are frequent, small, and contended enough that the
// serial engines' per-commit lock/validate/clock-bump sequence is the
// bottleneck. The sweep intentionally runs each cell at
// GOMAXPROCS=goroutines: on a container with fewer cores that oversubscribes
// the scheduler, and kernel timeslicing then preempts serial committers in
// the middle of their locked commit sections — exactly the adverse schedule
// flat combining is immune to, because the single leader is the only
// goroutine that ever holds commit locks. Cells are emitted as a
// machine-readable JSON artifact (BENCH_groupcommit.json) so successive PRs
// can compare like against like.

// GroupCommitConfig parameterizes the write-heavy Zipf counter workload.
type GroupCommitConfig struct {
	Counters    int     // shared counter array size
	WritesPerTx int     // RMW increments per transaction
	ZipfS       float64 // access skew (0 = uniform; larger = hotter head keys)
	Seed        uint64
}

// DefaultGroupCommit is the container-sized configuration: enough counters
// that write-write overlap inside one batch is rare (spills stay low), skewed
// enough that serial committers contend on validation and the shared clock.
func DefaultGroupCommit() GroupCommitConfig {
	return GroupCommitConfig{Counters: 4096, WritesPerTx: 4, ZipfS: 1.1, Seed: 1}
}

// GroupCommitThreads is the goroutine axis of the A/B sweep.
func GroupCommitThreads() []int { return []int{8, 32, 64} }

// GroupCommitEngines interleaves each serial engine with its group-commit
// variant so every A/B pair runs back to back on the same machine state.
func GroupCommitEngines() []string { return []string{"twm", "twm-gc", "jvstm", "jvstm-gc"} }

// GroupCommitMicro is the write-heavy workload: WritesPerTx Zipf-drawn
// counters RMW-incremented per transaction, 100% updates.
func GroupCommitMicro(cfg GroupCommitConfig) Micro {
	return Micro{
		Name: "groupcommit",
		Prepare: func(tm stm.TM, threads int) (MicroOp, error) {
			vars := make([]stm.Var, cfg.Counters)
			for i := range vars {
				vars[i] = tm.NewVar(0)
			}
			z := xrand.NewZipf(cfg.Counters, cfg.ZipfS)
			op := func(_ int, r *xrand.Rand) {
				// Draw outside the body so retries replay the same keys.
				var picks [16]int
				n := cfg.WritesPerTx
				if n > len(picks) {
					n = len(picks)
				}
				for i := 0; i < n; i++ {
					picks[i] = z.Next(r)
				}
				_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
					for i := 0; i < n; i++ {
						v := vars[picks[i]]
						tx.Write(v, tx.Read(v).(int)+1)
					}
					return nil
				})
			}
			return op, nil
		},
	}
}

// GroupCommitFigure runs the A/B sweep and prints throughput, abort rate,
// batch statistics and the pairwise speedups. Unlike the other figures it
// pins GOMAXPROCS to the cell's goroutine count (restored afterwards) and
// ignores cfg.YieldEvery: the oversubscribed scheduler provides the
// preemption the yield knob otherwise simulates, and injected yields inside
// commit sections would mask the serial engines' real exposure to it.
func GroupCommitFigure(w io.Writer, cfg FigureConfig, gc GroupCommitConfig) ([]Result, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	m := GroupCommitMicro(gc)
	var all []Result
	thr := NewTable(fmt.Sprintf("Group commit: write-heavy Zipf counters throughput (txs/s), %d writes/tx, s=%.2f",
		gc.WritesPerTx, gc.ZipfS),
		append([]string{"engine"}, threadHeaders(cfg.Threads)...)...)
	ab := NewTable("Group commit companion: abort rate (%)",
		append([]string{"engine"}, threadHeaders(cfg.Threads)...)...)
	for _, engine := range cfg.Engines {
		thrRow := []string{engine}
		abRow := []string{engine}
		for _, t := range cfg.Threads {
			runtime.GOMAXPROCS(t)
			res, err := RunMicro(engine, m, t, cfg.Duration, cfg.Seed, 0)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				return nil, err
			}
			all = append(all, res)
			thrRow = append(thrRow, FormatCount(res.Throughput()))
			abRow = append(abRow, fmt.Sprintf("%.1f", res.Stats.AbortRate()*100))
		}
		thr.AddRow(thrRow...)
		ab.AddRow(abRow...)
	}
	thr.Fprint(w)
	ab.Fprint(w)
	BatchStatsTable(w, all)
	GroupCommitSpeedupTable(w, all)
	return all, nil
}

// BatchStatsTable prints the combiner counters for every cell that batched:
// installed batches, mean batch size, write-write spills, flat-combining
// handoffs, and the clock advances (== batches when the one-tick-per-batch
// invariant holds).
func BatchStatsTable(w io.Writer, results []Result) {
	hasAny := false
	for _, r := range results {
		if r.Stats.GroupBatches > 0 {
			hasAny = true
			break
		}
	}
	if !hasAny {
		fmt.Fprintln(w, "group commit: no batched commits recorded")
		return
	}
	tbl := NewTable("Group-commit batch statistics",
		"engine", "threads", "batches", "mean-batch", "spills", "handoffs", "clock-advances")
	for _, r := range results {
		if r.Stats.GroupBatches == 0 {
			continue
		}
		tbl.AddRow(r.Engine, fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%d", r.Stats.GroupBatches),
			fmt.Sprintf("%.2f", r.Stats.MeanBatchSize()),
			fmt.Sprintf("%d", r.Stats.BatchSpills),
			fmt.Sprintf("%d", r.Stats.CombinerHandoffs),
			fmt.Sprintf("%d", r.Stats.ClockAdvances))
	}
	tbl.Fprint(w)
}

// GroupCommitSpeedupTable prints the pairwise gain of each -gc engine over
// its serial baseline at every thread count present in results.
func GroupCommitSpeedupTable(w io.Writer, results []Result) {
	base := map[string]map[int]float64{}
	for _, r := range results {
		if m := base[r.Engine]; m == nil {
			base[r.Engine] = map[int]float64{}
		}
		base[r.Engine][r.Threads] = r.Throughput()
	}
	tbl := NewTable("Group-commit speedup over serial baseline (%)",
		"pair", "threads", "serial tx/s", "grouped tx/s", "gain")
	rows := 0
	for _, r := range results {
		if len(r.Engine) < 3 || r.Engine[len(r.Engine)-3:] != "-gc" {
			continue
		}
		serial, ok := base[r.Engine[:len(r.Engine)-3]][r.Threads]
		if !ok || serial <= 0 {
			continue
		}
		grouped := r.Throughput()
		tbl.AddRow(r.Engine[:len(r.Engine)-3]+" vs "+r.Engine, fmt.Sprintf("%d", r.Threads),
			FormatCount(serial), FormatCount(grouped),
			fmt.Sprintf("%+.1f%%", (grouped/serial-1)*100))
		rows++
	}
	if rows > 0 {
		tbl.Fprint(w)
	}
}

// GroupCommitCell is one engine×threads measurement in the JSON artifact.
type GroupCommitCell struct {
	Engine           string  `json:"engine"`
	Threads          int     `json:"threads"`
	Ops              uint64  `json:"ops"`
	ElapsedNS        int64   `json:"elapsed_ns"`
	OpsPerSec        float64 `json:"ops_per_sec"`
	Commits          uint64  `json:"commits"`
	Aborts           uint64  `json:"aborts"`
	AbortRate        float64 `json:"abort_rate"`
	GroupBatches     uint64  `json:"group_batches"`
	MeanBatchSize    float64 `json:"mean_batch_size"`
	BatchSpills      uint64  `json:"batch_spills"`
	CombinerHandoffs uint64  `json:"combiner_handoffs"`
	ClockAdvances    uint64  `json:"clock_advances"`
}

// GroupCommitArtifact is the machine-readable form of a group-commit sweep
// (BENCH_groupcommit.json).
type GroupCommitArtifact struct {
	Experiment string            `json:"experiment"`
	Config     GroupCommitConfig `json:"config"`
	DurationMS int64             `json:"duration_ms_per_cell"`
	// GOMAXPROCSPerCell records that each cell ran at GOMAXPROCS equal to its
	// goroutine count (see GroupCommitFigure).
	GOMAXPROCSPerCell bool              `json:"gomaxprocs_per_cell"`
	Cells             []GroupCommitCell `json:"cells"`
}

// NewGroupCommitArtifact assembles the JSON artifact from a sweep's cells.
func NewGroupCommitArtifact(cfg FigureConfig, gc GroupCommitConfig, results []Result) GroupCommitArtifact {
	art := GroupCommitArtifact{
		Experiment:        "groupcommit",
		Config:            gc,
		DurationMS:        cfg.Duration.Milliseconds(),
		GOMAXPROCSPerCell: true,
	}
	for _, r := range results {
		art.Cells = append(art.Cells, GroupCommitCell{
			Engine:           r.Engine,
			Threads:          r.Threads,
			Ops:              r.Ops,
			ElapsedNS:        int64(r.Elapsed / time.Nanosecond),
			OpsPerSec:        r.Throughput(),
			Commits:          r.Stats.Commits,
			Aborts:           r.Stats.Aborts,
			AbortRate:        r.Stats.AbortRate(),
			GroupBatches:     r.Stats.GroupBatches,
			MeanBatchSize:    r.Stats.MeanBatchSize(),
			BatchSpills:      r.Stats.BatchSpills,
			CombinerHandoffs: r.Stats.CombinerHandoffs,
			ClockAdvances:    r.Stats.ClockAdvances,
		})
	}
	return art
}

// WriteJSON emits the artifact with stable indentation (diff-friendly when
// committed to the repository).
func (a GroupCommitArtifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}
