package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/engines"
	"repro/internal/stamp"
	"repro/internal/stamp/ssca2"
	"repro/internal/stm"
	"repro/internal/xrand"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("empty geomean = %v", got)
	}
	if got := GeoMean([]float64{0, -1, 3}); math.Abs(got-3) > 1e-9 {
		t.Fatalf("geomean skipping nonpositive = %v, want 3", got)
	}
}

func TestGeoDev(t *testing.T) {
	if got := GeoDev([]float64{4, 4, 4}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("uniform geodev = %v, want 1", got)
	}
	if got := GeoDev(nil); got != 0 {
		t.Fatalf("empty geodev = %v", got)
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[float64]string{
		12:        "12",
		1500:      "1.5k",
		2_500_000: "2.50M",
		3e9:       "3.00G",
	}
	for in, want := range cases {
		if got := FormatCount(in); got != want {
			t.Errorf("FormatCount(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	tbl := NewTable("demo", "a", "bb")
	tbl.AddRow("xxx", "y")
	tbl.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "xxx") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestRunMicroCountsOps(t *testing.T) {
	res, err := RunMicro("twm", CountersMicro(), 2, 30*time.Millisecond, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatalf("no ops recorded")
	}
	if res.Stats.Commits == 0 {
		t.Fatalf("no commits recorded")
	}
	if res.Throughput() <= 0 {
		t.Fatalf("throughput = %v", res.Throughput())
	}
}

func TestRunMicroProfiledFillsBreakdown(t *testing.T) {
	res, err := RunMicroProfiled("tl2", DisjointMicro(DisjointConfig{ElementsPerList: 100, KeyRange: 200, Seed: 1}), 2, 30*time.Millisecond, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Txs == 0 || res.Breakdown.TotalUS() == 0 {
		t.Fatalf("profile empty: %+v", res.Breakdown)
	}
}

func TestRunStampValidates(t *testing.T) {
	mk := func() stamp.Workload { return ssca2.New(ssca2.Small()) }
	res, err := RunStamp("norec", mk, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.Stats.Commits == 0 {
		t.Fatalf("suspicious result: %+v", res)
	}
}

func TestRunMicroUnknownEngine(t *testing.T) {
	if _, err := RunMicro("nope", CountersMicro(), 1, time.Millisecond, 1, 0); err == nil {
		t.Fatalf("expected error for unknown engine")
	}
}

func TestSummaryAggregation(t *testing.T) {
	var s Summary
	mk := func(engine string, threads int, ms int, aborts uint64) Result {
		var st stm.Stats
		for i := uint64(0); i < 100; i++ {
			st.RecordCommit(false)
		}
		for i := uint64(0); i < aborts; i++ {
			st.RecordAbort(stm.ReasonReadConflict)
		}
		return Result{Engine: engine, Threads: threads, Elapsed: time.Duration(ms) * time.Millisecond, Stats: st.Snapshot()}
	}
	s.Add("appA", []Result{mk("twm", 4, 100, 10), mk("tl2", 4, 200, 50)})
	s.Add("appB", []Result{mk("twm", 4, 100, 0), mk("tl2", 4, 400, 100)})

	var buf bytes.Buffer
	s.Fig5iSpeedups(&buf, "twm")
	out := buf.String()
	// Speedups: appA 2x, appB 4x -> geomean sqrt(8) = 2.83x.
	if !strings.Contains(out, "2.83x") {
		t.Fatalf("speedup table missing geomean:\n%s", out)
	}
	buf.Reset()
	s.Table2(&buf)
	out = buf.String()
	if !strings.Contains(out, "Table 2 (left)") || !strings.Contains(out, "Table 2 (right)") {
		t.Fatalf("table2 output:\n%s", out)
	}
	// tl2 appA abort rate = 50/150 = 33.3%.
	if !strings.Contains(out, "33.3") {
		t.Fatalf("abort rate missing:\n%s", out)
	}
}

func TestSummaryReasonHistogram(t *testing.T) {
	var s Summary
	mk := func(engine string, reasons map[stm.AbortReason]uint64) Result {
		var st stm.Stats
		st.RecordCommit(false)
		for r, n := range reasons {
			for i := uint64(0); i < n; i++ {
				st.RecordAbort(r)
			}
		}
		return Result{Engine: engine, Threads: 4, Elapsed: time.Millisecond, Stats: st.Snapshot()}
	}
	s.Add("appA", []Result{
		mk("twm", map[stm.AbortReason]uint64{stm.ReasonTriad: 3, stm.ReasonReadConflict: 1}),
		mk("tl2", map[stm.AbortReason]uint64{stm.ReasonWriteConflict: 8}),
	})
	s.Add("appB", []Result{
		mk("twm", map[stm.AbortReason]uint64{stm.ReasonTriad: 1}),
		mk("tl2", map[stm.AbortReason]uint64{stm.ReasonWriteConflict: 2}),
	})

	var buf bytes.Buffer
	s.ReasonHistogram(&buf)
	out := buf.String()
	// twm: 4 triad of 5 aborts (80%), 1 read-conflict (20%);
	// tl2: 10 write-conflict of 10 (100%). Counts aggregate across apps.
	for _, want := range []string{"triad", "read-conflict", "write-conflict",
		"4 (80%)", "1 (20%)", "10 (100%)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram missing %q:\n%s", want, out)
		}
	}

	var empty Summary
	buf.Reset()
	empty.ReasonHistogram(&buf)
	if !strings.Contains(buf.String(), "no aborts") {
		t.Fatalf("empty summary output: %s", buf.String())
	}
}

func TestMicroOpSignatureUsable(t *testing.T) {
	// MicroOp receives a usable RNG stream.
	var op MicroOp = func(id int, r *xrand.Rand) {
		_ = r.Intn(10)
	}
	op(0, xrand.New(1))
}

func TestWriteCSV(t *testing.T) {
	var st stm.Stats
	st.RecordCommit(false)
	st.RecordAbort(stm.ReasonReadConflict)
	results := []Result{{
		Engine:  "twm",
		Threads: 4,
		Ops:     100,
		Elapsed: 250 * time.Millisecond,
		Stats:   st.Snapshot(),
	}}
	var buf bytes.Buffer
	if err := CSVHeader(&buf); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&buf, "fig3", results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"experiment,engine", "fig3,twm,4,100,250.000,400.0,1,1,0.50000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestWithYieldDelegation(t *testing.T) {
	inner := engines.MustNew("twm")
	tm := WithYield(inner, 1)
	if tm.Name() != "twm" {
		t.Fatalf("name = %q", tm.Name())
	}
	if WithYield(inner, 0) != inner {
		t.Fatalf("yieldEvery=0 must return the inner TM unchanged")
	}
	x := tm.NewVar(1)
	if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
		if !tx.ReadOnly() {
			tx.Write(x, tx.Read(x).(int)+1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tm.Stats().Snapshot().Commits != 1 {
		t.Fatalf("stats not delegated")
	}
	// History delegation (core implements it).
	if h, ok := tm.(stm.HistoryRecording); !ok {
		t.Fatalf("yield wrapper must forward HistoryRecording")
	} else {
		_ = h
	}
}
