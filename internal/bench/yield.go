package bench

import (
	"runtime"
	"sync"

	"repro/internal/stm"
)

// WithYield wraps a TM so that every transaction yields the processor after
// every `every`-th barrier (read or write). On the paper's 64-core machine,
// transactions from different threads genuinely overlap in time; on a
// single-core container they would otherwise run mostly back-to-back and
// almost never conflict. Injected yields put scheduler preemption points
// inside transactions, restoring the overlap that makes the paper's
// contention patterns (stale reads, anti-dependencies, triads) reachable.
// The cost is identical for every engine, so comparisons stay fair.
//
// every <= 0 returns tm unchanged.
func WithYield(tm stm.TM, every int) stm.TM {
	if every <= 0 {
		return tm
	}
	y := &yieldTM{inner: tm, every: every}
	y.rec, _ = tm.(stm.TxRecycler)
	y.pool.New = func() any { return &yieldTx{} }
	return y
}

type yieldTM struct {
	inner stm.TM
	rec   stm.TxRecycler // inner's recycler; nil when unsupported
	every int
	pool  sync.Pool // of *yieldTx wrappers
}

func (y *yieldTM) Name() string { return y.inner.Name() }

func (y *yieldTM) NewVar(initial stm.Value) stm.Var { return y.inner.NewVar(initial) }

func (y *yieldTM) Begin(readOnly bool) stm.Tx {
	t := y.pool.Get().(*yieldTx)
	t.inner, t.every, t.n = y.inner.Begin(readOnly), y.every, 0
	return t
}

// Recycle implements stm.TxRecycler: the wrapper returns to its own pool and
// the wrapped transaction is forwarded to the inner engine's recycler.
func (y *yieldTM) Recycle(tx stm.Tx) {
	t, ok := tx.(*yieldTx)
	if !ok {
		return
	}
	inner := t.inner
	t.inner = nil
	y.pool.Put(t)
	if y.rec != nil {
		y.rec.Recycle(inner)
	}
}

func (y *yieldTM) Commit(tx stm.Tx) bool { return y.inner.Commit(tx.(*yieldTx).inner) }

func (y *yieldTM) Abort(tx stm.Tx) { y.inner.Abort(tx.(*yieldTx).inner) }

func (y *yieldTM) Stats() *stm.Stats { return y.inner.Stats() }

// SetProfiler implements stm.Profilable when the inner engine does.
func (y *yieldTM) SetProfiler(p *stm.Profiler) {
	if prof, ok := y.inner.(stm.Profilable); ok {
		prof.SetProfiler(p)
	}
}

// EnableHistory implements stm.HistoryRecording when the inner engine does.
func (y *yieldTM) EnableHistory() {
	if h, ok := y.inner.(stm.HistoryRecording); ok {
		h.EnableHistory()
	}
}

// History implements stm.HistoryRecording when the inner engine does.
func (y *yieldTM) History(v stm.Var) []stm.VersionRecord {
	if h, ok := y.inner.(stm.HistoryRecording); ok {
		return h.History(v)
	}
	return nil
}

type yieldTx struct {
	inner stm.Tx
	every int
	n     int
}

func (t *yieldTx) maybeYield() {
	t.n++
	if t.n >= t.every {
		t.n = 0
		runtime.Gosched()
	}
}

func (t *yieldTx) Read(v stm.Var) stm.Value {
	t.maybeYield()
	return t.inner.Read(v)
}

func (t *yieldTx) Write(v stm.Var, val stm.Value) {
	t.maybeYield()
	t.inner.Write(v, val)
}

func (t *yieldTx) ReadOnly() bool { return t.inner.ReadOnly() }

// LastAbortReason implements stm.AbortReasoner when the inner transaction
// does, so the yield wrapper does not hide commit-failure reasons from the
// retry loop.
func (t *yieldTx) LastAbortReason() stm.AbortReason {
	if ar, ok := t.inner.(stm.AbortReasoner); ok {
		return ar.LastAbortReason()
	}
	return stm.ReasonNone
}
