package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple aligned text table for figure/table output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint writes the table, aligned, to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// GeoMean returns the geometric mean of xs (the paper's aggregation for
// normalized speedups); zero and negative entries are skipped.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// GeoDev returns the geometric standard deviation factor of xs.
func GeoDev(xs []float64) float64 {
	gm := GeoMean(xs)
	if gm == 0 {
		return 0
	}
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			d := math.Log(x) - math.Log(gm)
			sum += d * d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(math.Sqrt(sum / float64(n)))
}

// FormatCount renders large counts compactly (e.g. 1.25M).
func FormatCount(x float64) string {
	switch {
	case x >= 1e9:
		return fmt.Sprintf("%.2fG", x/1e9)
	case x >= 1e6:
		return fmt.Sprintf("%.2fM", x/1e6)
	case x >= 1e3:
		return fmt.Sprintf("%.1fk", x/1e3)
	default:
		return fmt.Sprintf("%.0f", x)
	}
}
