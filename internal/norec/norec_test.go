package norec_test

import (
	"testing"

	"repro/internal/dsg"
	"repro/internal/norec"
	"repro/internal/stm"
	"repro/internal/stm/stmtest"
)

func factory() stm.TM { return norec.New() }

func TestConformance(t *testing.T) {
	stmtest.Run(t, factory, stmtest.Options{})
}

func TestSerializabilityDSG(t *testing.T) {
	dsg.CheckRandom(t, factory(), dsg.RunOptions{})
}

func TestSerializabilityDSGHighContention(t *testing.T) {
	dsg.CheckRandom(t, factory(), dsg.RunOptions{Vars: 3, Goroutines: 8, TxPerG: 120, Seed: 42})
}

func TestValueBasedValidationSurvivesSilentClockBump(t *testing.T) {
	// NOrec's distinguishing feature: a concurrent commit that does not
	// change any value this transaction read must NOT abort it, because
	// validation compares values, not timestamps.
	tm := factory()
	x := tm.NewVar(10)
	y := tm.NewVar(20)

	t1 := tm.Begin(false)
	if got := t1.Read(x); got != 10 {
		t.Fatalf("read = %v", got)
	}

	// A concurrent writer bumps the clock on an unrelated variable.
	t2 := tm.Begin(false)
	t2.Write(y, 21)
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}

	// Reading again forces revalidation against the moved clock; values
	// match, so the transaction survives and commits.
	if got := t1.Read(x); got != 10 {
		t.Fatalf("revalidated read = %v", got)
	}
	t1.Write(x, 11)
	if !tm.Commit(t1) {
		t.Fatalf("value-based validation should admit this commit")
	}
}

func TestAbortsOnChangedValue(t *testing.T) {
	tm := factory()
	x := tm.NewVar(10)

	t1 := tm.Begin(false)
	t1.Read(x)
	t1.Write(x, 99)

	t2 := tm.Begin(false)
	t2.Write(x, 11)
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}
	if tm.Commit(t1) {
		t.Fatalf("NOrec must abort when a read value changed")
	}
}
