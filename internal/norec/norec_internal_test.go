package norec

import (
	"testing"

	"repro/internal/stm"
)

func TestSeqlockEvenWhenIdle(t *testing.T) {
	tm := New()
	if s := tm.waitEven(); s%2 != 0 {
		t.Fatalf("idle seqlock odd: %d", s)
	}
	x := tm.NewVar(0)
	tx := tm.Begin(false)
	tx.Write(x, 1)
	if !tm.Commit(tx) {
		t.Fatalf("commit failed")
	}
	if s := tm.waitEven(); s != 2 {
		t.Fatalf("seq after one commit = %d, want 2", s)
	}
}

func TestReadOnlyKeepsReadSetForRevalidation(t *testing.T) {
	// Unlike TL2/JVSTM/TWM, NOrec needs the read set even for read-only
	// transactions (the paper's §5 methodology note): a clock bump forces a
	// value-based revalidation of everything read so far.
	tm := New()
	x := tm.NewVar(10)
	ro := tm.Begin(true).(*txn)
	if got := ro.Read(x); got != 10 {
		t.Fatalf("read = %v", got)
	}
	if len(ro.readSet) != 1 {
		t.Fatalf("read-only read set size = %d, want 1", len(ro.readSet))
	}
}

func TestSilentClockBumpSurvivesByValue(t *testing.T) {
	// An ABA-friendly case: a concurrent committer writes the SAME value the
	// reader saw; value-based validation keeps the reader alive where
	// timestamp validation would abort it.
	tm := New()
	x := tm.NewVar(10)
	y := tm.NewVar(0)

	t1 := tm.Begin(false)
	if got := t1.Read(x); got != 10 {
		t.Fatalf("read = %v", got)
	}

	w := tm.Begin(false)
	w.Write(x, 10) // same value
	w.Write(y, 1)
	if !tm.Commit(w) {
		t.Fatalf("w commit failed")
	}

	// Reading y forces revalidation of x; the value still matches.
	if got := t1.Read(y); got != 1 {
		t.Fatalf("y = %v", got)
	}
	t1.Write(y, 2)
	if !tm.Commit(t1) {
		t.Fatalf("value-based validation should accept the unchanged value")
	}
}

func TestCommitSerializesWriters(t *testing.T) {
	tm := New()
	x := tm.NewVar(0)
	for i := 0; i < 10; i++ {
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			tx.Write(x, tx.Read(x).(int)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if s := tm.seq.Load(); s != 20 {
		t.Fatalf("seq = %d, want 20 (2 per update commit)", s)
	}
}
