// Package norec implements the NOrec algorithm of Dalessandro, Spear and
// Scott (PPoPP 2010) over the common stm API: a single-version STM whose only
// shared metadata is one global sequence lock, with value-based validation.
// It is the minimal-metadata baseline of the TWM paper's evaluation (§5):
// cheapest at low thread counts, collapsing under concurrent committers
// because writers serialize on the global lock and every clock change forces
// readers to revalidate their read sets by value.
//
// NOrec requires the values stored in transactional variables to be
// comparable with ==; every workload in this repository satisfies that.
package norec

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/stm"
)

// TM is a NOrec instance.
type TM struct {
	// seq is the global sequence lock: odd while a writer is writing back,
	// even otherwise. seq/2 is the "version" of the whole memory.
	seq   atomic.Uint64
	stats stm.Stats
	prof  atomic.Pointer[stm.Profiler]

	// txns pools transaction descriptors across attempts; see Recycle.
	txns sync.Pool

	varID   atomic.Uint64
	history atomic.Bool
}

// New returns a NOrec instance.
func New() *TM {
	tm := &TM{}
	tm.txns.New = func() any { return &txn{tm: tm, stats: tm.stats.Shard()} }
	return tm
}

// Name implements stm.TM.
func (tm *TM) Name() string { return "norec" }

// Stats implements stm.TM.
func (tm *TM) Stats() *stm.Stats { return &tm.stats }

// SetProfiler implements stm.Profilable.
func (tm *TM) SetProfiler(p *stm.Profiler) { tm.prof.Store(p) }

// nvar carries no per-variable metadata beyond the value cell — the defining
// property of NOrec ("no ownership records").
type nvar struct {
	id  uint64
	val atomic.Pointer[stm.Value]

	hist []stm.VersionRecord // guarded by the global write lock
}

// NewVar implements stm.TM.
func (tm *TM) NewVar(initial stm.Value) stm.Var {
	v := &nvar{id: tm.varID.Add(1)}
	v.val.Store(&initial)
	return v
}

// readEntry records one read for value-based validation.
type readEntry struct {
	v   *nvar
	val stm.Value
}

// txn is a NOrec transaction. Descriptors are pooled (see Recycle); the
// read- and write-set backing arrays survive reuse.
type txn struct {
	tm       *TM
	stats    *stm.StatShard // striped counters; assigned once per descriptor
	readOnly bool
	snapshot uint64

	readSet  []readEntry
	writeSet stm.WriteSet[*nvar]

	lastReason stm.AbortReason // why the last Commit returned false
}

// ReadOnly implements stm.Tx.
func (tx *txn) ReadOnly() bool { return tx.readOnly }

// LastAbortReason implements stm.AbortReasoner: the reason of the most recent
// commit-time abort (read-path aborts travel in the retry signal).
func (tx *txn) LastAbortReason() stm.AbortReason { return tx.lastReason }

// Begin implements stm.TM.
func (tm *TM) Begin(readOnly bool) stm.Tx {
	tx := tm.txns.Get().(*txn)
	tx.readOnly = readOnly
	tx.snapshot = tm.waitEven()
	tx.stats.RecordStart()
	return tx
}

// Recycle implements stm.TxRecycler: reset the descriptor and return it to
// the pool. Only stm.Atomically calls this, after an attempt has fully
// finished; manual Begin/Commit users never recycle. readSet entries hold
// interface values, so the reset clears them through capacity to avoid
// keeping dead objects alive from the pool.
func (tm *TM) Recycle(txi stm.Tx) {
	tx, ok := txi.(*txn)
	if !ok {
		return
	}
	tx.readSet = stm.ResetVarSlice(tx.readSet)
	tx.writeSet.Reset()
	tx.snapshot = 0
	tx.lastReason = stm.ReasonNone
	tm.txns.Put(tx)
}

// waitEven spins until the sequence lock is free and returns its value.
func (tm *TM) waitEven() uint64 {
	for {
		s := tm.seq.Load()
		if s&1 == 0 {
			return s
		}
		runtime.Gosched()
	}
}

// Read implements stm.Tx. Unlike the paper's ownership-record designs, a read
// costs one pointer load; consistency is re-established by revalidating the
// whole read set whenever the global clock moved.
func (tx *txn) Read(v stm.Var) stm.Value {
	tv := v.(*nvar)
	prof := tx.tm.prof.Load()
	var t0 int64
	if prof != nil {
		t0 = prof.Now()
	}
	if !tx.readOnly {
		if val, ok := tx.writeSet.Get(tv); ok {
			if prof != nil {
				prof.AddRead(prof.Now() - t0)
			}
			return val
		}
	}
	val := *tv.val.Load()
	for tx.tm.seq.Load() != tx.snapshot {
		tx.revalidate(prof)
		val = *tv.val.Load()
	}
	tx.readSet = append(tx.readSet, readEntry{v: tv, val: val})
	if prof != nil {
		prof.AddRead(prof.Now() - t0)
	}
	return val
}

// revalidate re-reads every read-set entry and compares values; on success
// the snapshot advances to the current (even) clock, otherwise the
// transaction aborts. This is the NOrec value-based validation loop.
func (tx *txn) revalidate(prof *stm.Profiler) {
	var t0 int64
	if prof != nil {
		t0 = prof.Now()
	}
	for {
		s := tx.tm.waitEven()
		ok := true
		for _, e := range tx.readSet {
			if *e.v.val.Load() != e.val {
				ok = false
				break
			}
		}
		if tx.tm.seq.Load() != s {
			continue // a writer slipped in during validation; retry
		}
		if prof != nil {
			prof.AddReadSetVal(prof.Now() - t0)
		}
		if !ok {
			tx.tm.stats.RecordAbort(stm.ReasonReadConflict)
			stm.Retry(stm.ReasonReadConflict)
		}
		tx.snapshot = s
		return
	}
}

// Write implements stm.Tx.
func (tx *txn) Write(v stm.Var, val stm.Value) {
	if tx.readOnly {
		panic("norec: Write on a read-only transaction")
	}
	tx.writeSet.Put(v.(*nvar), val)
}

// Abort implements stm.TM. NOrec transactions hold no resources mid-flight.
func (tm *TM) Abort(stm.Tx) {}

// Commit implements stm.TM.
func (tm *TM) Commit(txi stm.Tx) bool {
	tx := txi.(*txn)
	if tx.readOnly || tx.writeSet.Len() == 0 {
		// Reads were kept individually consistent with the snapshot, which
		// is a committed memory state: nothing to validate.
		tx.stats.RecordCommit(tx.readOnly)
		return true
	}
	prof := tm.prof.Load()
	var t0 int64
	if prof != nil {
		t0 = prof.Now()
		defer prof.AddTx()
	}

	// Acquire the global sequence lock from our snapshot; every failure
	// means the clock moved, requiring value-based revalidation first.
	for !tm.seq.CompareAndSwap(tx.snapshot, tx.snapshot+1) {
		if ok := tx.commitRevalidate(prof); !ok {
			tx.stats.RecordAbort(stm.ReasonReadConflict)
			tx.lastReason = stm.ReasonReadConflict
			return false
		}
	}
	if prof != nil {
		now := prof.Now()
		prof.AddCommit(now - t0)
		t0 = now
	}
	ents := tx.writeSet.Entries()
	for i := range ents {
		v, val := ents[i].Key, ents[i].Val
		v.val.Store(&val)
		if tm.history.Load() {
			v.hist = append(v.hist, stm.VersionRecord{Value: val, Serial: tx.snapshot + 2})
		}
	}
	tm.seq.Store(tx.snapshot + 2)
	if prof != nil {
		prof.AddCommit(prof.Now() - t0)
	}
	tx.stats.RecordCommit(false)
	return true
}

// commitRevalidate is revalidate without the panic path (Commit reports
// failure by return value).
func (tx *txn) commitRevalidate(prof *stm.Profiler) bool {
	var t0 int64
	if prof != nil {
		t0 = prof.Now()
	}
	for {
		s := tx.tm.waitEven()
		ok := true
		for _, e := range tx.readSet {
			if *e.v.val.Load() != e.val {
				ok = false
				break
			}
		}
		if tx.tm.seq.Load() != s {
			continue
		}
		if prof != nil {
			prof.AddReadSetVal(prof.Now() - t0)
		}
		if ok {
			tx.snapshot = s
		}
		return ok
	}
}

// EnableHistory implements stm.HistoryRecording.
func (tm *TM) EnableHistory() { tm.history.Store(true) }

// History implements stm.HistoryRecording. Appends happen while holding the
// global write lock, so the slice is already in serialization order.
func (tm *TM) History(v stm.Var) []stm.VersionRecord {
	tv := v.(*nvar)
	s := tm.waitEven() // quiesce writers
	_ = s
	out := make([]stm.VersionRecord, len(tv.hist))
	copy(out, tv.hist)
	return out
}
