package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/trace"
)

func TestRecordsLifecycle(t *testing.T) {
	tm := trace.New(core.New(core.Options{}), 64)
	x := tm.NewVar(0)
	if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
		tx.Write(x, tx.Read(x).(int)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	events := tm.Events()
	kinds := make([]trace.Kind, len(events))
	for i, e := range events {
		kinds[i] = e.Kind
	}
	want := []trace.Kind{trace.Begin, trace.Read, trace.Write, trace.Commit}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %v, want %v", kinds, want)
		}
	}
	if events[1].Var == nil {
		t.Fatalf("read event lost its variable")
	}
	s := tm.Summarize()
	if s.Attempts != 1 || s.Commits != 1 || s.Aborts != 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.ReadsPerAttempt != 1 || s.WritesPer != 1 {
		t.Fatalf("summary barriers = %+v", s)
	}
}

func TestRecordsAborts(t *testing.T) {
	tm := trace.New(core.New(core.Options{}), 64)
	x := tm.NewVar(0)
	t1 := tm.Begin(false)
	t1.Read(x)
	t1.Write(x, 1)
	t2 := tm.Begin(false)
	t2.Read(x)
	t2.Write(x, 2)
	if !tm.Commit(t1) {
		t.Fatalf("t1 commit failed")
	}
	if tm.Commit(t2) {
		t.Fatalf("t2 should abort")
	}
	s := tm.Summarize()
	if s.Commits != 1 || s.Aborts != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestRingWraps(t *testing.T) {
	tm := trace.New(core.New(core.Options{}), 8)
	x := tm.NewVar(0)
	for i := 0; i < 10; i++ {
		_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
			tx.Write(x, i)
			return nil
		})
	}
	events := tm.Events()
	if len(events) != 8 {
		t.Fatalf("ring kept %d events, want 8", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("events out of order: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
}

func TestDumpRendering(t *testing.T) {
	tm := trace.New(core.New(core.Options{}), 16)
	x := tm.NewVar(0)
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		tx.Read(x)
		return nil
	})
	var buf bytes.Buffer
	tm.Dump(&buf)
	out := buf.String()
	for _, want := range []string{"begin", "read", "commit", " ro"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	if tm.Name() != "twm+trace" {
		t.Fatalf("name = %q", tm.Name())
	}
}

func TestTracerForwardsEngineSurface(t *testing.T) {
	inner := core.New(core.Options{})
	tm := trace.New(inner, 64)
	// The tracer must forward the optional engine capabilities; losing
	// TxRecycler in particular silently disabled descriptor pooling for every
	// traced engine (see TestAllocsTracedReadOnly in internal/engines).
	if _, ok := stm.TM(tm).(stm.TxRecycler); !ok {
		t.Fatalf("trace.TM must implement stm.TxRecycler")
	}
	if _, ok := stm.TM(tm).(stm.HistoryRecording); !ok {
		t.Fatalf("trace.TM must forward history recording")
	}
	if _, ok := stm.TM(tm).(stm.Profilable); !ok {
		t.Fatalf("trace.TM must forward profiling")
	}
	if tm.Stats() != inner.Stats() {
		t.Fatalf("Stats must forward to the inner engine")
	}
}

func TestTracedTxForwardsAbortReason(t *testing.T) {
	tm := trace.New(core.New(core.Options{}), 64)
	x := tm.NewVar(0)
	t1 := tm.Begin(false)
	t1.Read(x)
	t1.Write(x, 1)
	t2 := tm.Begin(false)
	t2.Read(x)
	t2.Write(x, 2)
	if !tm.Commit(t1) {
		t.Fatalf("t1 commit failed")
	}
	if tm.Commit(t2) {
		t.Fatalf("t2 must lose the write/write race")
	}
	ar, ok := t2.(stm.AbortReasoner)
	if !ok {
		t.Fatalf("traced tx must forward AbortReasoner")
	}
	if got := ar.LastAbortReason(); got == stm.ReasonNone {
		t.Fatalf("commit-failure reason lost by the tracer")
	}
}
