// Package trace provides a TM middleware that records per-transaction event
// streams (begin, read, write, commit, abort) with logical sequence numbers.
// It is a debugging and analysis aid: replaying a trace shows exactly which
// barriers a transaction executed, how often it retried and what it touched
// — useful when diagnosing contention pathologies in workloads or engines.
//
// Like bench.WithYield, the wrapper composes with any stm.TM; recording is
// bounded by a ring capacity so long runs do not accumulate unbounded
// memory.
package trace

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/stm"
)

// Kind labels trace events.
type Kind uint8

// Event kinds.
const (
	Begin Kind = iota
	Read
	Write
	Commit
	Abort
)

func (k Kind) String() string {
	switch k {
	case Begin:
		return "begin"
	case Read:
		return "read"
	case Write:
		return "write"
	case Commit:
		return "commit"
	case Abort:
		return "abort"
	}
	return "?"
}

// Event is one recorded step.
type Event struct {
	Seq      uint64 // global sequence number (total order of recording)
	Tx       uint64 // transaction attempt id
	Kind     Kind
	Var      stm.Var // nil for begin/commit/abort
	ReadOnly bool
}

// TM wraps an inner engine with event recording.
type TM struct {
	inner stm.TM
	rec   stm.TxRecycler // inner's recycler; nil when unsupported
	seq   atomic.Uint64
	txSeq atomic.Uint64
	pool  sync.Pool // of *tracedTx wrappers

	mu   sync.Mutex
	ring []Event
	next int
	full bool
}

// New wraps inner, keeping the most recent capacity events (default 4096).
func New(inner stm.TM, capacity int) *TM {
	if capacity <= 0 {
		capacity = 4096
	}
	t := &TM{inner: inner, ring: make([]Event, capacity)}
	t.rec, _ = inner.(stm.TxRecycler)
	t.pool.New = func() any { return &tracedTx{} }
	return t
}

// Name implements stm.TM.
func (t *TM) Name() string { return t.inner.Name() + "+trace" }

// NewVar implements stm.TM.
func (t *TM) NewVar(initial stm.Value) stm.Var { return t.inner.NewVar(initial) }

// Stats implements stm.TM.
func (t *TM) Stats() *stm.Stats { return t.inner.Stats() }

// SetProfiler implements stm.Profilable when the inner engine does.
func (t *TM) SetProfiler(p *stm.Profiler) {
	if prof, ok := t.inner.(stm.Profilable); ok {
		prof.SetProfiler(p)
	}
}

// EnableHistory implements stm.HistoryRecording when the inner engine does.
func (t *TM) EnableHistory() {
	if h, ok := t.inner.(stm.HistoryRecording); ok {
		h.EnableHistory()
	}
}

// History implements stm.HistoryRecording when the inner engine does.
func (t *TM) History(v stm.Var) []stm.VersionRecord {
	if h, ok := t.inner.(stm.HistoryRecording); ok {
		return h.History(v)
	}
	return nil
}

func (t *TM) record(e Event) {
	e.Seq = t.seq.Add(1)
	t.mu.Lock()
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Begin implements stm.TM.
func (t *TM) Begin(readOnly bool) stm.Tx {
	id := t.txSeq.Add(1)
	t.record(Event{Tx: id, Kind: Begin, ReadOnly: readOnly})
	tt := t.pool.Get().(*tracedTx)
	tt.inner, tt.tm, tt.id, tt.readOnly = t.inner.Begin(readOnly), t, id, readOnly
	return tt
}

// Recycle implements stm.TxRecycler: the wrapper returns to its own pool and
// the wrapped transaction is forwarded to the inner engine's recycler. Without
// this forwarding, wrapping any engine in the tracer silently disabled the
// inner engine's descriptor pooling (Atomically's tm.(TxRecycler) assertion
// failed on the wrapper), so every traced attempt re-allocated its read and
// write sets.
func (t *TM) Recycle(tx stm.Tx) {
	tt, ok := tx.(*tracedTx)
	if !ok {
		return
	}
	inner := tt.inner
	tt.inner = nil
	t.pool.Put(tt)
	if t.rec != nil {
		t.rec.Recycle(inner)
	}
}

// Commit implements stm.TM.
func (t *TM) Commit(tx stm.Tx) bool {
	tt := tx.(*tracedTx)
	ok := t.inner.Commit(tt.inner)
	if ok {
		t.record(Event{Tx: tt.id, Kind: Commit, ReadOnly: tt.readOnly})
	} else {
		t.record(Event{Tx: tt.id, Kind: Abort, ReadOnly: tt.readOnly})
	}
	return ok
}

// Abort implements stm.TM.
func (t *TM) Abort(tx stm.Tx) {
	tt := tx.(*tracedTx)
	t.inner.Abort(tt.inner)
	t.record(Event{Tx: tt.id, Kind: Abort, ReadOnly: tt.readOnly})
}

// Events returns the recorded events, oldest first.
func (t *TM) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dump writes a human-readable rendering of the trace to w.
func (t *TM) Dump(w io.Writer) {
	for _, e := range t.Events() {
		ro := ""
		if e.ReadOnly {
			ro = " ro"
		}
		if e.Var != nil {
			fmt.Fprintf(w, "%6d tx%-5d %-6s %p%s\n", e.Seq, e.Tx, e.Kind, e.Var, ro)
		} else {
			fmt.Fprintf(w, "%6d tx%-5d %-6s%s\n", e.Seq, e.Tx, e.Kind, ro)
		}
	}
}

// Summary aggregates the trace into per-outcome counts and mean barrier
// counts per attempt.
type Summary struct {
	Attempts, Commits, Aborts  int
	ReadsPerAttempt, WritesPer float64
}

// Summarize computes aggregate statistics over the recorded window.
func (t *TM) Summarize() Summary {
	events := t.Events()
	var s Summary
	reads, writes := 0, 0
	for _, e := range events {
		switch e.Kind {
		case Begin:
			s.Attempts++
		case Commit:
			s.Commits++
		case Abort:
			s.Aborts++
		case Read:
			reads++
		case Write:
			writes++
		}
	}
	if s.Attempts > 0 {
		s.ReadsPerAttempt = float64(reads) / float64(s.Attempts)
		s.WritesPer = float64(writes) / float64(s.Attempts)
	}
	return s
}

// tracedTx forwards to the inner transaction, recording each barrier.
type tracedTx struct {
	inner    stm.Tx
	tm       *TM
	id       uint64
	readOnly bool
}

func (t *tracedTx) Read(v stm.Var) stm.Value {
	t.tm.record(Event{Tx: t.id, Kind: Read, Var: v, ReadOnly: t.readOnly})
	return t.inner.Read(v)
}

func (t *tracedTx) Write(v stm.Var, val stm.Value) {
	t.tm.record(Event{Tx: t.id, Kind: Write, Var: v, ReadOnly: t.readOnly})
	t.inner.Write(v, val)
}

func (t *tracedTx) ReadOnly() bool { return t.readOnly }

// LastAbortReason implements stm.AbortReasoner when the inner transaction
// does, so tracing does not hide commit-failure reasons from the retry loop.
func (t *tracedTx) LastAbortReason() stm.AbortReason {
	if ar, ok := t.inner.(stm.AbortReasoner); ok {
		return ar.LastAbortReason()
	}
	return stm.ReasonNone
}
