package avstm

import "sync"

// Striped visible-reader registry (DESIGN.md §12).
//
// AVSTM's reads are fully visible: every read registers the transaction in
// the variable's reader registry so a committing writer can clamp the
// intervals of the readers it overtakes. The original map-per-variable
// registry made that registration the read path's scalability ceiling: every
// reader of a hot variable serialized on one mutex and mutated one shared
// map. The registry is now striped — a fixed array of small intrusive
// doubly-linked lists, each with its own lock. A reader registers only in
// its sticky home shard (assigned once per descriptor, like the stats stripe
// and TWM's stamp shard), so readers that landed on different shards never
// contend; a committing writer walks all shards, which is the right place to
// pay — commits are the rare, already-serialized side (the global commit
// mutex) of this engine.
//
// Registration stays allocation-free: list nodes are pooled on the owning
// descriptor (a node is pushed back on the descriptor's freelist as soon as
// it is unlinked), so the steady state recycles nodes the way descriptors
// themselves are recycled.
//
// Ordering argument (replacing the single-mutex atomicity of the map
// design): a reader registers in its shard BEFORE reading value/wts under
// v.mu; a committing writer publishes value/wts under v.mu BEFORE walking
// the shards to clamp. If the reader's registration precedes the walk, the
// reader is clamped below the writer's point p (correct whether it read the
// old value, or the new one — then its lb is already ≥ p and it aborts on an
// empty interval, a safe outcome). If the walk precedes the registration,
// then lock ordering forces the reader's v.mu read after the publication, so
// it observes the new value and wts = p and serializes after p. Either way
// no committed reader of the old value can serialize after p. rts stays
// under v.mu, and all commit-side finalization remains under the global
// commit mutex, so the committed-reader edges (through rts) are unchanged.

// regShards is the stripe count of each variable's registry. Shards are
// deliberately unpadded: 8 stripes of {mutex, head} cost 128 bytes per
// variable, and splitting the lock already removes the serialization that
// mattered; per-variable padding (1 KiB each) would be too heavy for the
// many cold variables an application allocates.
const regShards = 8

// readerNode is one (transaction, variable) registration: an intrusive
// doubly-linked list element owned and pooled by its transaction descriptor.
type readerNode struct {
	tx   *txn
	v    *avar
	prev *readerNode
	next *readerNode // doubles as the freelist link while pooled
}

type regShard struct {
	mu   sync.Mutex
	head *readerNode
}

// readerRegistry is the striped visible-reader set embedded in each avar.
type readerRegistry struct {
	shards [regShards]regShard
}

// register links tx into its home shard and returns the node, or nil when tx
// is already registered for this variable (the home shard is walked under
// its lock — duplicates can only live in the reader's own shard, and the
// shard holds only the readers that share it, so the walk is short).
func (r *readerRegistry) register(tx *txn, v *avar) *readerNode {
	sh := &r.shards[tx.regShard]
	sh.mu.Lock()
	for n := sh.head; n != nil; n = n.next {
		if n.tx == tx {
			sh.mu.Unlock()
			return nil
		}
	}
	n := tx.newNode(v)
	n.next = sh.head
	if sh.head != nil {
		sh.head.prev = n
	}
	sh.head = n
	sh.mu.Unlock()
	return n
}

// unlink removes a registered node from its shard. The shard is recomputed
// from the owning descriptor's sticky home shard, which never changes over
// the node's lifetime. The node is NOT returned to the freelist here —
// callers do that once they are done with n.v.
func (r *readerRegistry) unlink(n *readerNode) {
	sh := &r.shards[n.tx.regShard]
	sh.mu.Lock()
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		sh.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	sh.mu.Unlock()
}

// clampAll clamps every registered reader except the committer itself to
// serialize below p. Lock order is shard.mu → txn.mu (clampUB); no path
// acquires a shard lock while holding a descriptor lock, so the order is
// acyclic.
func (r *readerRegistry) clampAll(except *txn, p uint64) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for n := sh.head; n != nil; n = n.next {
			if n.tx != except {
				n.tx.clampUB(p)
			}
		}
		sh.mu.Unlock()
	}
}

// size counts registered readers across all shards (tests only).
func (r *readerRegistry) size() int {
	total := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for n := sh.head; n != nil; n = n.next {
			total++
		}
		sh.mu.Unlock()
	}
	return total
}

// newNode pops a node from the descriptor's freelist, or allocates the
// pool's seed node. Nodes cycle between a variable's registry and their
// descriptor's freelist, so steady-state registration allocates nothing.
func (tx *txn) newNode(v *avar) *readerNode {
	n := tx.free
	if n == nil {
		n = &readerNode{tx: tx}
	} else {
		tx.free = n.next
	}
	n.v = v
	n.prev, n.next = nil, nil
	return n
}

// freeNode returns an unlinked node to the descriptor's freelist, dropping
// its variable reference so pooled nodes do not pin dead variables.
func (tx *txn) freeNode(n *readerNode) {
	n.v = nil
	n.prev = nil
	n.next = tx.free
	tx.free = n
}
