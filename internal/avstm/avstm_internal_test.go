package avstm

import (
	"testing"
	"testing/quick"
)

func TestChoosePointProperty(t *testing.T) {
	// choosePoint must return a point strictly inside (lb, ub) whenever the
	// interval contains one, and report failure otherwise.
	f := func(lb uint64, width uint16) bool {
		lb %= 1 << 40
		ub := lb + uint64(width)
		p, ok := choosePoint(lb, ub)
		hasPoint := ub > lb+1
		if ok != hasPoint {
			return false
		}
		if ok && (p <= lb || p >= ub) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoosePointUnbounded(t *testing.T) {
	p, ok := choosePoint(100, noUpperBound)
	if !ok || p != 100+pointGap {
		t.Fatalf("unbounded choosePoint = %d,%v", p, ok)
	}
}

func TestChoosePointNestedPastCommits(t *testing.T) {
	// Repeated "commit in the past" below a fixed upper bound must keep
	// finding points for many levels (the gap rationale).
	lb, ub := uint64(0), uint64(0)+pointGap
	for depth := 0; depth < 15; depth++ {
		p, ok := choosePoint(lb, ub)
		if !ok {
			t.Fatalf("interval exhausted at depth %d (lb=%d ub=%d)", depth, lb, ub)
		}
		ub = p // next committer must land below this one
	}
}

func TestReaderRegistryCleanup(t *testing.T) {
	tm := New()
	x := tm.NewVar(0).(*avar)

	// Committed reader deregisters.
	ro := tm.Begin(true)
	ro.Read(x)
	if x.readers.size() != 1 {
		t.Fatalf("reader not registered")
	}
	if !tm.Commit(ro) {
		t.Fatalf("ro commit failed")
	}
	if x.readers.size() != 0 {
		t.Fatalf("committed reader still registered")
	}

	// Aborted reader deregisters.
	up := tm.Begin(false)
	up.Read(x)
	tm.Abort(up)
	if x.readers.size() != 0 {
		t.Fatalf("aborted reader still registered")
	}
}

func TestStripedRegistryDedupAndPool(t *testing.T) {
	tm := New()
	x := tm.NewVar(0).(*avar)

	// Re-reading the same variable must not register twice.
	tx := tm.Begin(false).(*txn)
	tx.Read(x)
	tx.Read(x)
	if got := x.readers.size(); got != 1 {
		t.Fatalf("duplicate registration: size = %d, want 1", got)
	}
	if !tm.Commit(tx) {
		t.Fatalf("commit failed")
	}

	// The unlinked node went back to the descriptor's freelist.
	if tx.free == nil {
		t.Fatalf("node not pooled after commit")
	}
	if tx.free.v != nil {
		t.Fatalf("pooled node still pins its variable")
	}

	// Readers with different home shards land in different stripes.
	a := tm.Begin(true).(*txn)
	b := tm.Begin(true).(*txn)
	b.regShard = (a.regShard + 1) % regShards
	a.Read(x)
	b.Read(x)
	if x.readers.size() != 2 {
		t.Fatalf("striped registrations lost: size = %d, want 2", x.readers.size())
	}
	if !tm.Commit(a) || !tm.Commit(b) {
		t.Fatalf("reader commits failed")
	}
	if x.readers.size() != 0 {
		t.Fatalf("registry not empty after commits: %d", x.readers.size())
	}
}

func TestTimestampsAdvance(t *testing.T) {
	tm := New()
	x := tm.NewVar(0).(*avar)
	var last uint64
	for i := 1; i <= 4; i++ {
		tx := tm.Begin(false)
		tx.Read(x)
		tx.Write(x, i)
		if !tm.Commit(tx) {
			t.Fatalf("commit %d failed", i)
		}
		if x.wts <= last {
			t.Fatalf("wts not strictly increasing: %d then %d", last, x.wts)
		}
		last = x.wts
	}
	// rts records committed readers at or above the last writer's point.
	ro := tm.Begin(true)
	ro.Read(x)
	if !tm.Commit(ro) {
		t.Fatalf("ro commit failed")
	}
	if x.rts <= x.wts {
		t.Fatalf("rts %d should exceed wts %d after a later reader", x.rts, x.wts)
	}
}
