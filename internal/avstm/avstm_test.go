package avstm_test

import (
	"testing"

	"repro/internal/avstm"
	"repro/internal/dsg"
	"repro/internal/stm"
	"repro/internal/stm/stmtest"
)

func factory() stm.TM { return avstm.New() }

func TestConformance(t *testing.T) {
	stmtest.Run(t, factory, stmtest.Options{NotOpaque: true})
}

func TestSerializabilityDSG(t *testing.T) {
	dsg.CheckRandom(t, factory(), dsg.RunOptions{})
}

func TestSerializabilityDSGHighContention(t *testing.T) {
	dsg.CheckRandom(t, factory(), dsg.RunOptions{Vars: 3, Goroutines: 8, TxPerG: 120, Seed: 42})
}

func TestCommitsInThePast(t *testing.T) {
	// The interval mechanism must accept the Fig. 1-style history that
	// classic validation rejects: t1's read of x is overwritten by t2, but
	// t1 wrote only an unread variable, so t1 serializes before t2.
	tm := factory()
	x := tm.NewVar(0)
	y := tm.NewVar(0)

	t1 := tm.Begin(false)
	t1.Read(x)
	t1.Write(y, 1)

	t2 := tm.Begin(false)
	t2.Write(x, 1)
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}
	if !tm.Commit(t1) {
		t.Fatalf("interval STM must commit t1 in the past")
	}
	// Both effects visible afterwards.
	if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
		if tx.Read(x) != 1 || tx.Read(y) != 1 {
			t.Errorf("final state x=%v y=%v", tx.Read(x), tx.Read(y))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalEmptyAborts(t *testing.T) {
	// t1 read x (overwritten by t2 -> ub clamped) and must also serialize
	// after t2 because it overwrites what t2 wrote: interval empties.
	tm := factory()
	x := tm.NewVar(0)

	t1 := tm.Begin(false)
	t1.Read(x)
	t1.Write(x, 99)

	t2 := tm.Begin(false)
	t2.Write(x, 1)
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}
	if tm.Commit(t1) {
		t.Fatalf("lost update admitted")
	}
	snap := tm.Stats().Snapshot()
	if snap.ByReason["interval-empty"] == 0 {
		t.Fatalf("abort reasons = %v, want interval-empty", snap.ByReason)
	}
}

func TestCommittedReaderBlocksLaterWriterInPast(t *testing.T) {
	// rts bookkeeping: after a reader of y commits "late", a writer of y
	// that must serialize before that reader's point has an empty interval.
	tm := factory()
	x := tm.NewVar(0)
	y := tm.NewVar(0)

	// Writer w1 advances x's timestamp.
	w1 := tm.Begin(false)
	w1.Write(x, 5)
	if !tm.Commit(w1) {
		t.Fatalf("w1 commit failed")
	}

	// Reader r reads x (new) and y (old): serializes after w1.
	r := tm.Begin(true)
	if r.Read(x) != 5 {
		t.Fatalf("r should see w1's write")
	}
	r.Read(y)

	// Writer w2 writes y and reads x's OLD... it cannot: single version.
	// Instead w2 reads nothing but must come after r (r read y that w2
	// overwrites and r commits first).
	if !tm.Commit(r) {
		t.Fatalf("reader commit failed")
	}

	w2 := tm.Begin(false)
	w2.Write(y, 7)
	if !tm.Commit(w2) {
		t.Fatalf("w2 should commit after r")
	}

	// Final state consistent.
	if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
		if tx.Read(y) != 7 {
			t.Errorf("y = %v", tx.Read(y))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyCanAbortUnderConflict(t *testing.T) {
	// No mv-permissiveness: a read-only transaction squeezed between a
	// clamped upper bound and a raised lower bound aborts.
	tm := factory()
	x := tm.NewVar(0)
	y := tm.NewVar(0)

	ro := tm.Begin(true)
	ro.Read(x) // registers as reader of x

	// w1 overwrites x: ro.ub <- p(w1).
	w1 := tm.Begin(false)
	w1.Write(x, 1)
	if !tm.Commit(w1) {
		t.Fatalf("w1 commit failed")
	}
	// w2 writes y after w1 (p(w2) > p(w1) because w2 overwrites nothing of
	// w1; force ordering by having w2 read x first).
	w2 := tm.Begin(false)
	w2.Read(x)
	w2.Write(y, 2)
	if !tm.Commit(w2) {
		t.Fatalf("w2 commit failed")
	}
	// ro now reads y (wts = p(w2) >= ub): lb >= ub, interval empty.
	aborted := func() (aborted bool) {
		defer func() {
			if recover() != nil {
				aborted = true
			}
		}()
		ro.Read(y)
		return tm.Commit(ro) == false
	}()
	if !aborted {
		t.Fatalf("read-only transaction should have aborted (interval empty)")
	}
	tm.Abort(ro)
}
