// Package avstm implements an interval-based, abort-avoiding STM in the style
// of AVSTM (Guerraoui, Henzinger and Singh, DISC 2008), the (probabilistically)
// permissive baseline of the TWM paper's evaluation.
//
// Every transaction carries a validity interval (lb, ub) of serialization
// points, initially (0, +inf):
//
//   - reading a variable raises lb to the serialization point of its last
//     writer (wts) — the reader must come after that writer;
//   - overwriting a variable raises lb to max(wts, rts), where rts is the
//     largest serialization point of a committed reader — the writer must
//     come after the last writer and after every committed reader that missed
//     it;
//   - a committing writer clamps the ub of every still-active reader of the
//     variables it overwrites down to its own serialization point — those
//     readers missed the write and must serialize before it.
//
// A transaction commits by picking the lowest free point of its interval
// (p = lb+1) — possibly far in the "past" relative to later wall-clock
// commits, which is what lets interval STMs accept histories that classic
// validation rejects. It aborts only when its interval empties, so aborts
// correspond to genuine serializability violations (plus timestamp-granularity
// corner cases): this engine has the lowest abort rates of the baselines,
// matching Table 2 of the paper.
//
// Reads are fully visible (per-variable reader registries), and every commit
// runs under one global mutex, inside which a writer walks the reader
// registry of each written variable. Both costs — visible reads and a commit
// procedure that touches the metadata of every concurrent reader and
// serializes committers — reproduce the overhead profile §5.2 of the TWM
// paper measures for AVSTM (most expensive commits at high thread counts).
// Unlike TWM, read-only transactions can abort (no mv-permissiveness): with a
// single version there is nothing older to read once the interval empties.
//
// Also unlike TWM (which guarantees Virtual World Consistency), this engine is
// only probabilistically opaque, as the original: a transaction doomed to
// abort can briefly observe an inconsistent pair of values in the window
// between its own interval check and a concurrent committer's clamp; the
// inconsistency is always caught at (or before) commit, so committed
// transactions remain serializable. The conformance suite therefore runs this
// engine with stmtest.Options.NotOpaque.
package avstm

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/stm"
)

const noUpperBound = math.MaxUint64

// pointGap is the spacing a committer leaves above its lower bound when its
// interval is unbounded. Serialization points are integers standing in for
// reals; the gap leaves room for ~20 levels of nested "commit in the past"
// between any two adjacent committed points (each level halves the remaining
// sub-interval).
const pointGap = 1 << 20

// choosePoint picks a serialization point strictly inside (lb, ub), or
// reports failure when the integer interval is empty.
func choosePoint(lb, ub uint64) (uint64, bool) {
	if ub == noUpperBound {
		return lb + pointGap, true
	}
	p := lb + pointGap
	if p >= ub {
		p = lb + (ub-lb)/2 // midpoint; equals lb when ub == lb+1
	}
	return p, p > lb && p < ub
}

// TM is an AVSTM instance.
type TM struct {
	commitMu sync.Mutex // serializes commit finalization (see package doc)
	stats    stm.Stats
	prof     atomic.Pointer[stm.Profiler]

	// txns pools transaction descriptors across attempts; see Recycle.
	txns sync.Pool
	// regSeq deals out sticky home shards for the striped reader registries,
	// one per descriptor lifetime (see registry.go).
	regSeq atomic.Uint32

	varID   atomic.Uint64
	history atomic.Bool
}

// New returns an AVSTM instance.
func New() *TM {
	tm := &TM{}
	tm.txns.New = func() any {
		return &txn{
			tm:       tm,
			stats:    tm.stats.Shard(),
			regShard: int(tm.regSeq.Add(1)) & (regShards - 1),
		}
	}
	return tm
}

// Name implements stm.TM.
func (tm *TM) Name() string { return "avstm" }

// Stats implements stm.TM.
func (tm *TM) Stats() *stm.Stats { return &tm.stats }

// SetProfiler implements stm.Profilable.
func (tm *TM) SetProfiler(p *stm.Profiler) { tm.prof.Store(p) }

// avar is the transactional variable: a single version plus timestamps and
// the striped visible-reader registry (registry.go).
type avar struct {
	id      uint64
	mu      sync.Mutex // guards value, wts, rts, hist
	value   stm.Value
	wts     uint64 // serialization point of the last writer
	rts     uint64 // max serialization point of committed readers
	readers readerRegistry

	hist []stm.VersionRecord // guarded by mu
}

// NewVar implements stm.TM.
func (tm *TM) NewVar(initial stm.Value) stm.Var {
	return &avar{
		id:    tm.varID.Add(1),
		value: initial,
	}
}

// txn is an AVSTM transaction. Descriptors are pooled (see Recycle); reuse
// is safe against stale clamps because deregister acquires every joined
// variable's mutex, ordering it after any in-flight clampUB from a committer
// that found this transaction in a reader registry.
type txn struct {
	tm       *TM
	stats    *stm.StatShard // striped counters; assigned once per descriptor
	readOnly bool

	mu   sync.Mutex // protects lb, ub, done against concurrent clamps
	lb   uint64     // exclusive lower bound of the validity interval
	ub   uint64     // exclusive upper bound; noUpperBound = +inf
	done bool       // finalized: clamps are no-ops

	// regShard is the sticky home shard this descriptor registers reads in
	// (see registry.go); free is its pooled node list.
	regShard int
	free     *readerNode

	readSet  []*readerNode // one registration per read variable
	writeSet stm.WriteSet[*avar]

	lastReason stm.AbortReason // why the last Commit returned false
}

// ReadOnly implements stm.Tx.
func (tx *txn) ReadOnly() bool { return tx.readOnly }

// LastAbortReason implements stm.AbortReasoner: the reason of the most recent
// commit-time abort (read-path aborts travel in the retry signal).
func (tx *txn) LastAbortReason() stm.AbortReason { return tx.lastReason }

// Begin implements stm.TM.
func (tm *TM) Begin(readOnly bool) stm.Tx {
	tx := tm.txns.Get().(*txn)
	tx.readOnly = readOnly
	// No lock needed: the descriptor is not registered in any reader
	// registry, so nothing can clamp it yet (pool New leaves ub zero).
	tx.lb, tx.ub, tx.done = 0, noUpperBound, false
	tx.stats.RecordStart()
	return tx
}

// Recycle implements stm.TxRecycler: reset the descriptor and return it to
// the pool. Only stm.Atomically calls this, after an attempt has fully
// finished (every finish path has already deregistered, so readSet is empty;
// the reset clears the stale backing array so pooled descriptors do not pin
// dead variables).
func (tm *TM) Recycle(txi stm.Tx) {
	tx, ok := txi.(*txn)
	if !ok {
		return
	}
	tx.readSet = stm.ResetVarSlice(tx.readSet)
	tx.writeSet.Reset()
	tx.lastReason = stm.ReasonNone
	tm.txns.Put(tx)
}

// clampUB lowers the transaction's upper bound to p. Callers hold the global
// commit mutex, so a finalized transaction has already fixed a point strictly
// below p and is rightly immune.
func (tx *txn) clampUB(p uint64) {
	tx.mu.Lock()
	if !tx.done && p < tx.ub {
		tx.ub = p
	}
	tx.mu.Unlock()
}

// raiseLB raises the lower bound and reports whether the interval still
// contains an integer point (lb+1 < ub+1, i.e. lb+1 <= ub-… : p=lb+1 must be
// strictly below ub).
func (tx *txn) raiseLB(w uint64) bool {
	tx.mu.Lock()
	if w > tx.lb {
		tx.lb = w
	}
	ok := tx.lb+1 < tx.ub || tx.ub == noUpperBound
	tx.mu.Unlock()
	return ok
}

// Read implements stm.Tx: a visible read. The reader registers itself in the
// variable's registry, raises its lower bound to the writer's point and
// aborts early if its interval emptied.
func (tx *txn) Read(v stm.Var) stm.Value {
	tv := v.(*avar)
	prof := tx.tm.prof.Load()
	var t0 int64
	if prof != nil {
		t0 = prof.Now()
	}
	if !tx.readOnly {
		if val, ok := tx.writeSet.Get(tv); ok {
			if prof != nil {
				prof.AddRead(prof.Now() - t0)
			}
			return val
		}
	}
	// Register BEFORE reading value/wts: the ordering the striped registry's
	// soundness argument depends on (see registry.go).
	if n := tv.readers.register(tx, tv); n != nil {
		tx.readSet = append(tx.readSet, n)
	}
	tv.mu.Lock()
	val := tv.value
	wts := tv.wts
	tv.mu.Unlock()
	ok := tx.raiseLB(wts)
	if prof != nil {
		prof.AddRead(prof.Now() - t0)
	}
	if !ok {
		tx.stats.RecordAbort(stm.ReasonIntervalEmpty)
		tx.deregister()
		stm.Retry(stm.ReasonIntervalEmpty)
	}
	return val
}

// Write implements stm.Tx.
func (tx *txn) Write(v stm.Var, val stm.Value) {
	if tx.readOnly {
		panic("avstm: Write on a read-only transaction")
	}
	tx.writeSet.Put(v.(*avar), val)
}

// deregister removes the transaction from every reader registry it joined,
// returning the nodes to the descriptor's pool.
func (tx *txn) deregister() {
	for _, n := range tx.readSet {
		n.v.readers.unlink(n)
		tx.freeNode(n)
	}
	tx.readSet = tx.readSet[:0]
}

// Abort implements stm.TM.
func (tm *TM) Abort(txi stm.Tx) {
	tx := txi.(*txn)
	tx.mu.Lock()
	tx.done = true
	tx.mu.Unlock()
	tx.deregister()
}

// Commit implements stm.TM. All finalization runs under the global commit
// mutex, making the choice of serialization points atomic: while a committer
// holds the mutex no other transaction can finalize or clamp, so the interval
// it checks is exact.
//
// Conflicting transactions always end up with strictly ordered points (wr and
// ww edges through wts, committed-reader rw edges through rts, active-reader
// rw edges through ub clamps); unrelated transactions may share a point,
// which is harmless because any serial order among them is equivalent.
func (tm *TM) Commit(txi stm.Tx) bool {
	tx := txi.(*txn)
	prof := tm.prof.Load()
	var t0 int64
	if prof != nil {
		t0 = prof.Now()
		defer prof.AddTx()
	}

	tm.commitMu.Lock()

	if tx.readOnly || tx.writeSet.Len() == 0 {
		// Serialize inside (lb, ub): every read value was written at or
		// below lb and not overwritten below ub > p.
		p, ok := choosePoint(tx.lb, tx.ub)
		tx.mu.Lock()
		tx.done = true
		tx.mu.Unlock()
		if ok {
			for _, n := range tx.readSet {
				v := n.v
				v.mu.Lock()
				if p > v.rts {
					v.rts = p
				}
				v.mu.Unlock()
				v.readers.unlink(n)
				tx.freeNode(n)
			}
			tx.readSet = tx.readSet[:0]
		}
		tm.commitMu.Unlock()
		if !ok {
			tx.deregister()
			tx.stats.RecordAbort(stm.ReasonIntervalEmpty)
			tx.lastReason = stm.ReasonIntervalEmpty
			if prof != nil {
				prof.AddReadSetVal(prof.Now() - t0)
			}
			return false
		}
		tx.stats.RecordCommit(tx.readOnly)
		if prof != nil {
			prof.AddCommit(prof.Now() - t0)
		}
		return true
	}

	// Writer: serialize after every previous writer and committed reader of
	// the write set.
	lbOK := true
	ents := tx.writeSet.Entries()
	for i := range ents {
		v := ents[i].Key
		v.mu.Lock()
		w := v.wts
		if v.rts > w {
			w = v.rts
		}
		v.mu.Unlock()
		if !tx.raiseLB(w) {
			lbOK = false
			break
		}
	}
	p, pOK := choosePoint(tx.lb, tx.ub)
	ok := lbOK && pOK
	tx.mu.Lock()
	tx.done = true
	tx.mu.Unlock()
	if prof != nil {
		now := prof.Now()
		prof.AddReadSetVal(now - t0)
		t0 = now
	}
	if !ok {
		tm.commitMu.Unlock()
		tx.deregister()
		tx.stats.RecordAbort(stm.ReasonIntervalEmpty)
		tx.lastReason = stm.ReasonIntervalEmpty
		return false
	}

	// Publish, then clamp every still-active reader of the variables we
	// overwrite (they must serialize before p). Publication must precede the
	// clamp walk: a reader registers before reading value/wts, so one that
	// the walk misses provably read the published value (and raised its lb to
	// p), while any reader of the old value is still registered when the walk
	// reaches its shard — see registry.go for the full argument.
	for i := range ents {
		v := ents[i].Key
		v.mu.Lock()
		v.value = ents[i].Val
		v.wts = p
		if tm.history.Load() {
			v.hist = append(v.hist, stm.VersionRecord{Value: v.value, Serial: p})
		}
		v.mu.Unlock()
		v.readers.clampAll(tx, p)
	}
	if prof != nil {
		now := prof.Now()
		prof.AddWriteSetVal(now - t0)
		t0 = now
	}

	// Record our point as a committed read of everything we read.
	for _, n := range tx.readSet {
		v := n.v
		v.mu.Lock()
		if p > v.rts {
			v.rts = p
		}
		v.mu.Unlock()
		v.readers.unlink(n)
		tx.freeNode(n)
	}
	tx.readSet = tx.readSet[:0]

	tm.commitMu.Unlock()
	if prof != nil {
		prof.AddCommit(prof.Now() - t0)
	}
	tx.stats.RecordCommit(false)
	return true
}

// EnableHistory implements stm.HistoryRecording.
func (tm *TM) EnableHistory() { tm.history.Store(true) }

// History implements stm.HistoryRecording. Serial points can repeat across
// different variables but are strictly increasing per variable (each writer
// serializes strictly after the previous one).
func (tm *TM) History(v stm.Var) []stm.VersionRecord {
	tv := v.(*avar)
	tv.mu.Lock()
	defer tv.mu.Unlock()
	out := make([]stm.VersionRecord, len(tv.hist))
	copy(out, tv.hist)
	return out
}
