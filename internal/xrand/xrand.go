// Package xrand is a small, deterministic, splittable pseudo-random number
// generator (SplitMix64-based) used by workload generators and benchmarks.
// Each worker thread derives an independent stream from a base seed, so runs
// are reproducible regardless of scheduling and free of the lock contention
// of a shared generator.
package xrand

import "math/bits"

// Rand is a SplitMix64 generator. Not safe for concurrent use; derive one per
// goroutine with Split.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed (0 is remapped to a fixed odd
// constant so the stream is never degenerate).
func New(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Reseed resets the generator to the stream defined by seed, as if freshly
// created by New (0 is remapped as in New). It lets pooled owners reuse one
// Rand allocation across many short-lived streams.
func (r *Rand) Reseed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r.state = seed
}

// Split derives an independent stream for worker i.
func (r *Rand) Split(i int) *Rand {
	return New(mix(r.state + uint64(i+1)*0xBF58476D1CE4E5B9))
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Mix is the SplitMix64 finalizer: a cheap bijective scrambler that spreads
// nearby inputs across the whole 64-bit space. Exported for callers that need
// to turn a sequential counter into a well-distributed seed (e.g. stm.Backoff
// seeds one stream per instance from a global counter).
func Mix(z uint64) uint64 { return mix(z) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	return mix(r.state)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
//
// Sampling is exactly uniform via Lemire's multiply-then-rejection method:
// the previous Uint64()%n was modulo-biased toward low values whenever n did
// not divide 2^64, skewing "uniform" workload key choices toward low keys.
// The fix changes the consumed stream (one draw per call in the common case,
// occasionally more), so derived deterministic sequences — Perm, Shuffle,
// Zipf, workload traces — differ from pre-fix runs with the same seed.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un // (2^64 - n) % n, rejection zone size
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes s in place.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
