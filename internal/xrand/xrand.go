// Package xrand is a small, deterministic, splittable pseudo-random number
// generator (SplitMix64-based) used by workload generators and benchmarks.
// Each worker thread derives an independent stream from a base seed, so runs
// are reproducible regardless of scheduling and free of the lock contention
// of a shared generator.
package xrand

// Rand is a SplitMix64 generator. Not safe for concurrent use; derive one per
// goroutine with Split.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed (0 is remapped to a fixed odd
// constant so the stream is never degenerate).
func New(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Split derives an independent stream for worker i.
func (r *Rand) Split(i int) *Rand {
	return New(mix(r.state + uint64(i+1)*0xBF58476D1CE4E5B9))
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	return mix(r.state)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes s in place.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
