package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	base := New(7)
	s0, s1 := base.Split(0), base.Split(1)
	same := 0
	for i := 0; i < 64; i++ {
		if s0.Uint64() == s1.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams look correlated: %d collisions", same)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	if r.Uint64() == r.Uint64() {
		t.Fatalf("degenerate stream from zero seed")
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("out of range: %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(9)
	s := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("elements lost: %v", s)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatalf("negative Int63")
		}
	}
}

func TestMixScramblesSequentialInputs(t *testing.T) {
	// Mix turns a dense counter into well-spread seeds: sequential inputs must
	// map to pairwise-distinct outputs (Mix is bijective) that do not share
	// the counter's structure.
	seen := make(map[uint64]bool, 1024)
	for i := uint64(1); i <= 1024; i++ {
		m := Mix(i)
		if seen[m] {
			t.Fatalf("Mix collision at input %d", i)
		}
		seen[m] = true
	}
	if Mix(7) != Mix(7) {
		t.Fatalf("Mix must be deterministic")
	}
}

func TestReseedMatchesNew(t *testing.T) {
	fresh := New(42)
	reused := New(1)
	reused.Uint64() // advance, then reset
	reused.Reseed(42)
	for i := 0; i < 16; i++ {
		if fresh.Uint64() != reused.Uint64() {
			t.Fatalf("Reseed(42) diverged from New(42) at draw %d", i)
		}
	}
	z := New(0)
	rz := New(9)
	rz.Reseed(0)
	if z.Uint64() != rz.Uint64() {
		t.Fatalf("Reseed(0) must remap like New(0)")
	}
}

func TestIntnUnbiasedSmallRange(t *testing.T) {
	// Regression for the modulo-bias bug: Uint64()%n over-weights low values
	// when n does not divide 2^64. Lemire rejection makes the distribution
	// exactly uniform; check empirical frequencies on a small range. (The fix
	// changed the consumed stream, so deterministic sequences — Perm, Shuffle,
	// Zipf, workload traces — differ from pre-fix runs with the same seed;
	// this suite asserts distribution properties, never golden streams.)
	const n, draws = 3, 30000
	r := New(12345)
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for b, c := range counts {
		if c < want-1000 || c > want+1000 {
			t.Fatalf("bucket %d: %d draws, want %d±1000 (counts %v)", b, c, want, counts)
		}
	}
}
