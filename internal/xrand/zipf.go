package xrand

import "math"

// Zipf draws keys from a Zipf(s) distribution over [0, n): rank r is drawn
// with probability proportional to 1/(r+1)^s. Workload generators use it to
// skew accesses toward hot keys, the standard way to raise contention
// without shrinking the data set.
//
// The implementation precomputes the CDF into a lookup table sized for
// O(log n) binary-search sampling; build cost is O(n). The table is
// immutable after construction, so one Zipf may be shared by many workers,
// each sampling through its own Rand.
type Zipf struct {
	cdf []float64 // cdf[i] = P(rank <= i)
}

// NewZipf returns a sampler over [0, n) with exponent s (s = 0 is uniform,
// larger is more skewed; 0.99 is the YCSB default). It panics if n <= 0 or
// s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("xrand: NewZipf with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Next draws a rank in [0, n) using r; rank 0 is the hottest key.
func (z *Zipf) Next(r *Rand) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
