package xrand

import (
	"testing"
	"testing/quick"
)

func TestZipfRange(t *testing.T) {
	f := func(seed uint64, n uint8, tenthS uint8) bool {
		if n == 0 {
			return true
		}
		z := NewZipf(int(n), float64(tenthS%30)/10)
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := z.Next(r)
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	const n, draws = 100, 20000
	z := NewZipf(n, 1.0)
	r := New(7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next(r)]++
	}
	// Rank 0 should be drawn roughly n/H(n) times more often than rank n-1;
	// loosely: rank 0 must dominate rank 50 by at least 10x at s=1.
	if counts[0] < 10*counts[50] {
		t.Fatalf("insufficient skew: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// And the distribution must still have a tail.
	tail := 0
	for _, c := range counts[n/2:] {
		tail += c
	}
	if tail == 0 {
		t.Fatalf("no tail mass at all")
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	const n, draws = 10, 50000
	z := NewZipf(n, 0)
	r := New(3)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next(r)]++
	}
	for i, c := range counts {
		if c < draws/n/2 || c > draws/n*2 {
			t.Fatalf("s=0 not uniform: counts[%d]=%d", i, c)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		}()
	}
}
