package engines_test

import (
	"errors"
	"testing"

	"repro/internal/engines"
	"repro/internal/health"
	"repro/internal/mvutil"
	"repro/internal/stm"
	"repro/internal/trace"
)

// Steady-state allocation budgets per engine, measured after transaction
// descriptors became pooled and write sets moved off Go maps. The read-only
// path allocates nothing on every engine. The update path keeps only the
// irreducible per-written-variable cost: the multi-versioned engines (twm*,
// jvstm) allocate one version node per written variable, and the single-
// version engines (tl2, norec) box each published value into an escaping
// interface cell; avstm publishes in place under the variable mutex and
// allocates nothing at all. A regression here means a hot-path allocation
// crept back in — tighten the code, not the budget.
var allocBudgets = map[string]struct{ readOnly, update float64 }{
	"twm":        {0, 8},
	"twm-notw":   {0, 8},
	"twm-opaque": {0, 8},
	"twm-gc":     {0, 8},
	"jvstm":      {0, 8},
	"jvstm-gc":   {0, 8},
	"tl2":        {0, 8},
	"norec":      {0, 8},
	"avstm":      {0, 0},
}

// TestAllocsReadOnly verifies the read path allocates nothing once the
// per-engine transaction pool is warm: Begin reuses a pooled descriptor,
// reads append into retained backing arrays, and commit touches no heap.
func TestAllocsReadOnly(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			budget, ok := allocBudgets[name]
			if !ok {
				t.Fatalf("engine %q has no allocation budget; add one", name)
			}
			tm := engines.MustNew(name)
			vars := make([]stm.Var, 8)
			for i := range vars {
				vars[i] = tm.NewVar(i)
			}
			roTx := func() {
				_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
					for _, v := range vars {
						_ = tx.Read(v)
					}
					return nil
				})
			}
			roTx() // warm the descriptor pool and slice capacities
			if got := testing.AllocsPerRun(200, roTx); got > budget.readOnly {
				t.Errorf("read-only tx: %.1f allocs/op, budget %.0f", got, budget.readOnly)
			}
		})
	}
}

// TestAllocsSmallUpdate verifies an uncontended 8-write update transaction
// stays within the engine's irreducible per-write allocation cost (version
// nodes or boxed published values) — the map-based write set and fresh
// descriptor that used to dominate are gone. Values stay below 256 so
// interface boxing of the ints themselves is allocation-free.
func TestAllocsSmallUpdate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			budget, ok := allocBudgets[name]
			if !ok {
				t.Fatalf("engine %q has no allocation budget; add one", name)
			}
			tm := engines.MustNew(name)
			vars := make([]stm.Var, 8)
			for i := range vars {
				vars[i] = tm.NewVar(i)
			}
			n := 0
			upTx := func() {
				n++
				_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
					for _, v := range vars {
						tx.Write(v, (tx.Read(v).(int)+n)%251)
					}
					return nil
				})
			}
			upTx() // warm the descriptor pool and slice capacities
			if got := testing.AllocsPerRun(200, upTx); got > budget.update {
				t.Errorf("8-write tx: %.1f allocs/op, budget %.0f", got, budget.update)
			}
		})
	}
}

// TestAllocsTracedReadOnly verifies the trace middleware preserves the
// allocation-free read path of every engine: the tracedTx wrappers are pooled
// and the tracer forwards Recycle to the inner engine, so wrapping an engine
// for tracing costs ring-buffer writes but no heap. This is a regression test
// for the bug where the tracer did not implement stm.TxRecycler, which made
// Atomically's recycler assertion fail on the wrapper and silently disabled
// the inner engine's descriptor pooling (every traced attempt re-allocated
// its read and write sets).
func TestAllocsTracedReadOnly(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := trace.New(engines.MustNew(name), 1024)
			vars := make([]stm.Var, 8)
			for i := range vars {
				vars[i] = tm.NewVar(i)
			}
			roTx := func() {
				_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
					for _, v := range vars {
						_ = tx.Read(v)
					}
					return nil
				})
			}
			roTx() // warm the wrapper and descriptor pools
			if got := testing.AllocsPerRun(200, roTx); got > 0 {
				t.Errorf("traced read-only tx: %.1f allocs/op, budget 0", got)
			}
		})
	}
}

// TestAllocsWatchdogSample verifies the health watchdog's steady-state
// sampling path allocates nothing while watching every budgeted engine at
// full fidelity (stats deltas, clock, active set, budget level). The watchdog
// exists to observe a system in distress; a sampler that allocates adds GC
// load exactly when the process is dying of memory pressure.
func TestAllocsWatchdogSample(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}
	b := mvutil.NewVersionBudget(mvutil.BudgetConfig{SoftVersions: 1 << 16, HardVersions: 1 << 17})
	var targets []health.Target
	for _, name := range engines.MultiVersionSet() {
		tm := engines.MustNewBudgeted(name, b, 0)
		v := tm.NewVar(0)
		_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
			tx.Write(v, 1)
			return nil
		})
		targets = append(targets, health.TargetOf(tm))
	}
	w := health.New(health.Config{}, targets...)
	w.Step() // settle the baselines
	if got := testing.AllocsPerRun(200, w.Step); got > 0 {
		t.Errorf("watchdog Step: %.1f allocs/op, budget 0", got)
	}
}

// TestAllocsAVSTMRegistry pins the striped reader registry's allocation
// profile (DESIGN.md §12): creating a variable allocates exactly the variable
// itself (the registry is an embedded array, where the map-based registry
// paid an extra map header per variable), and the visible-read path — node
// registration, duplicate-read dedup, clamp-side unlink — recycles pooled
// nodes instead of churning registry storage.
func TestAllocsAVSTMRegistry(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}
	tm := engines.MustNew("avstm")
	if got := testing.AllocsPerRun(100, func() { _ = tm.NewVar(0) }); got > 1 {
		t.Errorf("NewVar: %.1f allocs/op, budget 1 (the avar itself)", got)
	}

	vars := make([]stm.Var, 4)
	for i := range vars {
		vars[i] = tm.NewVar(i)
	}
	hotReads := func() {
		//twm:allow abortshape measures the update path's visible-read accounting; readOnly=false is the point
		_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
			for range 3 { // re-reads exercise the home-shard dedup walk
				for _, v := range vars {
					_ = tx.Read(v)
				}
			}
			return nil
		})
	}
	hotReads() // warm the descriptor pool and its node freelist
	if got := testing.AllocsPerRun(200, hotReads); got > 0 {
		t.Errorf("visible-read tx: %.1f allocs/op, budget 0", got)
	}
}

// TestAllocsTWMShardedStampRead verifies the read path stays allocation-free
// after a variable's read stamp has been promoted to the sharded register:
// readers raise a home shard of the existing register, which must never
// allocate (only the one-time promotion pays the register's footprint).
func TestAllocsTWMShardedStampRead(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}
	type promoter interface {
		PromoteStamp(stm.Var)
		StampSharded(stm.Var) bool
	}
	for _, name := range []string{"twm", "twm-notw", "twm-opaque"} {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			core, ok := tm.(promoter)
			if !ok {
				t.Fatalf("%s does not expose stamp promotion", name)
			}
			vars := make([]stm.Var, 8)
			for i := range vars {
				vars[i] = tm.NewVar(i)
				core.PromoteStamp(vars[i])
				if !core.StampSharded(vars[i]) {
					t.Fatalf("stamp not promoted")
				}
			}
			roTx := func() {
				_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
					for _, v := range vars {
						_ = tx.Read(v)
					}
					return nil
				})
			}
			roTx() // warm the descriptor pool
			if got := testing.AllocsPerRun(200, roTx); got > 0 {
				t.Errorf("read-only tx over promoted stamps: %.1f allocs/op, budget 0", got)
			}
		})
	}
}

// TestAllocsEmptyUpdate verifies an update transaction that writes nothing
// commits without touching the heap — the write buffer is lazily grown, so
// a read-mostly workload declared as updates pays nothing for the privilege.
func TestAllocsEmptyUpdate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			v := tm.NewVar(7)
			emptyTx := func() {
				//twm:allow abortshape exercises the empty-write-set commit of an update transaction by design
				_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
					_ = tx.Read(v)
					return nil
				})
			}
			emptyTx()
			if got := testing.AllocsPerRun(200, emptyTx); got > 0 {
				t.Errorf("empty-write-set update tx: %.1f allocs/op, budget 0", got)
			}
		})
	}
}

// TestAllocsPanicPath verifies the panic exit of the retry loop recycles the
// pooled descriptor: a body panic (recovered by the caller) must leave the
// engine's pool balanced, so repeated panicking calls reuse one descriptor
// instead of allocating a fresh one per call. This is the regression test for
// the lifecycle bug where stm.run only recycled on normal return from
// runOnce, so every non-retry panic permanently drained one descriptor from
// the pool — invisible in benchmarks (bodies there never panic), a steady
// leak in a server whose request handlers can.
func TestAllocsPanicPath(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}
	boom := errors.New("boom")
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := engines.MustNew(name)
			v := tm.NewVar(0)
			panicTx := func() {
				defer func() {
					if r := recover(); r != boom {
						t.Fatalf("recovered %v, want the body's panic value", r)
					}
				}()
				//twm:allow abortshape the leak being regression-tested lives in the update-descriptor pool; readOnly=true would test the wrong pool
				_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
					_ = tx.Read(v)
					panic(boom)
				})
			}
			panicTx() // warm the descriptor pool
			// Budget 0: the panic value pre-exists, the descriptor and its
			// read/write sets come from the pool, and the unwind machinery
			// itself is allocation-free.
			if got := testing.AllocsPerRun(200, panicTx); got > 0 {
				t.Errorf("panicking tx: %.1f allocs/op, budget 0 (descriptor not recycled?)", got)
			}
		})
	}
}
