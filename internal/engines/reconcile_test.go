package engines_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/engines"
	"repro/internal/stm"
)

// ledgerPolicy observes the retry loop from the contention-manager seat:
// every attempt and every abort reason the loop reports. Reconciling its
// ledger against the engine's own Stats counters proves the two observability
// channels agree — every engine-recorded abort reaches the policy with the
// same classification, and no attempt is hidden from either side.
type ledgerPolicy struct {
	mu       sync.Mutex
	attempts uint64
	waits    uint64
	byReason map[stm.AbortReason]uint64
}

func newLedgerPolicy() *ledgerPolicy {
	return &ledgerPolicy{byReason: make(map[stm.AbortReason]uint64)}
}

func (p *ledgerPolicy) NewManager() stm.ContentionManager { return &ledgerCM{p: p} }

type ledgerCM struct{ p *ledgerPolicy }

func (m *ledgerCM) BeforeAttempt(int) {
	m.p.mu.Lock()
	m.p.attempts++
	m.p.mu.Unlock()
}

func (m *ledgerCM) AfterAttempt(int) {}

func (m *ledgerCM) Wait(_ context.Context, _ int, reason stm.AbortReason) {
	m.p.mu.Lock()
	m.p.waits++
	m.p.byReason[reason]++
	m.p.mu.Unlock()
}

// TestStatsReconcileWithContentionManager cross-checks, for every engine,
// the per-reason abort counters in Stats.Snapshot() against what the
// ContentionManager observed while driving the same transactions. Delay-only
// chaos (no injected aborts) interleaves attempts so real conflicts occur on
// any core count; every abort must then be (a) recorded by the engine, (b)
// reported to the policy, (c) under the same reason.
func TestStatsReconcileWithContentionManager(t *testing.T) {
	goroutines, calls := 4, 120
	if testing.Short() {
		goroutines, calls = 4, 40
	}
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			eng := engines.MustNew(name)
			// Delay-only injection: widens overlap without adding chaos
			// aborts, so engine stats and policy observations describe the
			// same set of events.
			tm := chaos.New(eng, chaos.Options{Seed: 11, DelayProb: 0.5})
			ledger := newLedgerPolicy()
			vars := make([]stm.Var, 6)
			for i := range vars {
				vars[i] = tm.NewVar(0)
			}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < calls; i++ {
						j := (g + i) % len(vars)
						err := stm.AtomicallyCM(nil, tm, false, ledger, func(tx stm.Tx) error {
							a := tx.Read(vars[j]).(int)
							b := tx.Read(vars[(j+1)%len(vars)]).(int)
							tx.Write(vars[j], a+1) //twm:allow abortshape overlapping two-var windows drive the contention manager under test
							tx.Write(vars[(j+1)%len(vars)], b+1)
							return nil
						})
						if err != nil {
							t.Errorf("tx failed: %v", err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			snap := eng.Stats().Snapshot()
			ledger.mu.Lock()
			defer ledger.mu.Unlock()

			if snap.Starts != ledger.attempts {
				t.Errorf("engine saw %d starts, policy saw %d attempts", snap.Starts, ledger.attempts)
			}
			if snap.Aborts != ledger.waits {
				t.Errorf("engine recorded %d aborts, policy observed %d", snap.Aborts, ledger.waits)
			}
			if want := ledger.attempts - ledger.waits; snap.Commits != want {
				t.Errorf("engine recorded %d commits, policy ledger implies %d", snap.Commits, want)
			}
			// Per-reason totals must match exactly: same abort, same label.
			for r, n := range ledger.byReason {
				if got := snap.ByReason[r.String()]; got != n {
					t.Errorf("reason %v: engine recorded %d, policy observed %d (engine map %v, policy map %v)",
						r, got, n, snap.ByReason, ledger.byReason)
				}
			}
			var ledgerTotal uint64
			for _, n := range ledger.byReason {
				ledgerTotal += n
			}
			if ledgerTotal != snap.Aborts {
				t.Errorf("policy per-reason total %d != engine aborts %d", ledgerTotal, snap.Aborts)
			}
			t.Logf("%s: %d attempts, %d aborts, by reason %v", name, ledger.attempts, ledger.waits, snap.ByReason)
		})
	}
}
