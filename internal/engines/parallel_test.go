package engines_test

import (
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/dsg"
	"repro/internal/engines"
	"repro/internal/stamp/vacation"
)

// TestSerializabilityTrueParallelism runs the DSG oracle with oversubscribed
// OS threads (GOMAXPROCS > cores) and per-barrier yields, the interleaving
// regime that exposed a commit-ordering race in the lock-based TWM commit
// (natural timestamps drawn after the read-set scan let two crossing
// committers miss each other's anti-dependencies). Regression for that fix,
// applied to every engine.
func TestSerializabilityTrueParallelism(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			for round := 0; round < 25 && !t.Failed(); round++ {
				tm := bench.WithYield(engines.MustNew(name), 1)
				dsg.CheckRandom(t, tm, dsg.RunOptions{
					Vars: 6, Goroutines: 8, TxPerG: 60, ReadOnlyP: 0.15,
					Seed: uint64(round*131 + 7),
				})
			}
		})
	}
}

// TestVacationTrueParallelism stresses the application-level invariant that
// first exposed the race (resource Used counts vs customer-held bookings).
func TestVacationTrueParallelism(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 40; i++ {
				p := vacation.Small()
				p.Seed = uint64(i + 1)
				w := vacation.New("vacation-high", p)
				tm := bench.WithYield(engines.MustNew(name), 1)
				if err := w.Setup(tm); err != nil {
					t.Fatal(err)
				}
				if err := w.Run(tm, 8); err != nil {
					t.Fatalf("seed %d run: %v", i+1, err)
				}
				if err := w.Validate(tm); err != nil {
					t.Fatalf("seed %d validate: %v", i+1, err)
				}
			}
		})
	}
}
