// Package engines is the registry of the five STM implementations compared in
// the paper's evaluation (plus the TWM no-time-warp ablation). Benchmarks,
// examples and the CLI instantiate engines through this package so every
// consumer agrees on construction defaults.
package engines

import (
	"fmt"
	"sort"

	"repro/internal/avstm"
	"repro/internal/core"
	"repro/internal/jvstm"
	"repro/internal/norec"
	"repro/internal/stm"
	"repro/internal/tl2"
)

// Factory constructs a fresh engine instance.
type Factory func() stm.TM

// factories maps engine names to constructors. Order of PaperSet matches the
// paper's figures (JVSTM, TL2, NOrec, AVSTM, TWM).
var factories = map[string]Factory{
	"twm":        func() stm.TM { return core.New(core.Options{}) },
	"twm-notw":   func() stm.TM { return core.New(core.Options{DisableTimeWarp: true}) },
	"twm-opaque": func() stm.TM { return core.New(core.Options{Opacity: true}) },
	"jvstm":      func() stm.TM { return jvstm.New(jvstm.Options{}) },
	"tl2":        func() stm.TM { return tl2.New(tl2.Options{}) },
	"norec":      func() stm.TM { return norec.New() },
	"avstm":      func() stm.TM { return avstm.New() },
}

// PaperSet is the engine lineup of the paper's figures, in their legend order.
func PaperSet() []string { return []string{"jvstm", "tl2", "norec", "avstm", "twm"} }

// Baselines is PaperSet without TWM.
func Baselines() []string { return []string{"jvstm", "tl2", "norec", "avstm"} }

// Names lists all registered engines, sorted.
func Names() []string {
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New constructs a fresh instance of the named engine.
func New(name string) (stm.TM, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("engines: unknown engine %q (have %v)", name, Names())
	}
	return f(), nil
}

// MustNew is New for static names in tests and benchmarks.
func MustNew(name string) stm.TM {
	tm, err := New(name)
	if err != nil {
		panic(err)
	}
	return tm
}
