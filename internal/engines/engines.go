// Package engines is the registry of the five STM implementations compared in
// the paper's evaluation (plus the TWM no-time-warp ablation). Benchmarks,
// examples and the CLI instantiate engines through this package so every
// consumer agrees on construction defaults.
package engines

import (
	"fmt"
	"sort"

	"repro/internal/avstm"
	"repro/internal/core"
	"repro/internal/jvstm"
	"repro/internal/mvutil"
	"repro/internal/norec"
	"repro/internal/stm"
	"repro/internal/tl2"
)

// Factory constructs a fresh engine instance.
type Factory func() stm.TM

// factories maps engine names to constructors. Order of PaperSet matches the
// paper's figures (JVSTM, TL2, NOrec, AVSTM, TWM).
var factories = map[string]Factory{
	"twm":        func() stm.TM { return core.New(core.Options{}) },
	"twm-notw":   func() stm.TM { return core.New(core.Options{DisableTimeWarp: true}) },
	"twm-opaque": func() stm.TM { return core.New(core.Options{Opacity: true}) },
	"twm-gc":     func() stm.TM { return core.New(core.Options{GroupCommit: true}) },
	"jvstm":      func() stm.TM { return jvstm.New(jvstm.Options{}) },
	"jvstm-gc":   func() stm.TM { return jvstm.New(jvstm.Options{GroupCommit: true}) },
	"tl2":        func() stm.TM { return tl2.New(tl2.Options{}) },
	"norec":      func() stm.TM { return norec.New() },
	"avstm":      func() stm.TM { return avstm.New() },
}

// PaperSet is the engine lineup of the paper's figures, in their legend order.
func PaperSet() []string { return []string{"jvstm", "tl2", "norec", "avstm", "twm"} }

// Baselines is PaperSet without TWM.
func Baselines() []string { return []string{"jvstm", "tl2", "norec", "avstm"} }

// Names lists all registered engines, sorted.
func Names() []string {
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New constructs a fresh instance of the named engine.
func New(name string) (stm.TM, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("engines: unknown engine %q (have %v)", name, Names())
	}
	return f(), nil
}

// MustNew is New for static names in tests and benchmarks.
func MustNew(name string) stm.TM {
	tm, err := New(name)
	if err != nil {
		panic(err)
	}
	return tm
}

// MultiVersionSet lists the engines that maintain version chains (and hence
// accept a version budget), in PaperSet order.
func MultiVersionSet() []string {
	return []string{"jvstm", "jvstm-gc", "twm", "twm-notw", "twm-opaque", "twm-gc"}
}

// GroupCommitSet lists the engines with a flat-combining group-commit stage
// (DESIGN.md §13), paired with their serial-commit counterparts for A/B runs.
func GroupCommitSet() []string { return []string{"twm-gc", "jvstm-gc"} }

// NewBudgeted constructs one of the multi-versioned engines with a version
// budget and trim depth attached (the resource-exhaustion configuration; see
// DESIGN.md §11). Only the engines in MultiVersionSet support a budget; any
// other name is an error. A zero maxDepth selects the engine's default trim
// depth, and one budget may be shared across several engines to cap their
// combined version memory.
func NewBudgeted(name string, budget *mvutil.VersionBudget, maxDepth int) (stm.TM, error) {
	switch name {
	case "twm":
		return core.New(core.Options{Budget: budget, MaxVersionDepth: maxDepth}), nil
	case "twm-notw":
		return core.New(core.Options{DisableTimeWarp: true, Budget: budget, MaxVersionDepth: maxDepth}), nil
	case "twm-opaque":
		return core.New(core.Options{Opacity: true, Budget: budget, MaxVersionDepth: maxDepth}), nil
	case "twm-gc":
		return core.New(core.Options{GroupCommit: true, Budget: budget, MaxVersionDepth: maxDepth}), nil
	case "jvstm":
		return jvstm.New(jvstm.Options{Budget: budget, MaxVersionDepth: maxDepth}), nil
	case "jvstm-gc":
		return jvstm.New(jvstm.Options{GroupCommit: true, Budget: budget, MaxVersionDepth: maxDepth}), nil
	}
	return nil, fmt.Errorf("engines: engine %q does not support a version budget (have %v)", name, MultiVersionSet())
}

// MustNewBudgeted is NewBudgeted for static names in tests and benchmarks.
func MustNewBudgeted(name string, budget *mvutil.VersionBudget, maxDepth int) stm.TM {
	tm, err := NewBudgeted(name, budget, maxDepth)
	if err != nil {
		panic(err)
	}
	return tm
}

// DurableSet lists the engines that accept a commit logger (DESIGN.md §16):
// the multi-versioned engines, serial and group-commit alike.
func DurableSet() []string { return []string{"jvstm", "jvstm-gc", "twm", "twm-gc"} }

// NewDurable constructs one of the WAL-capable engines with a commit logger
// attached: every update commit appends its write set before any version
// becomes visible and waits out the logger's durability policy before
// acknowledging (the stm.CommitLogger protocol). Attaching the logger at
// construction is safe even while recovery is still replaying — NewVar never
// logs, so re-creating variables with recovered values writes nothing.
func NewDurable(name string, logger stm.CommitLogger) (stm.TM, error) {
	switch name {
	case "twm":
		return core.New(core.Options{Logger: logger}), nil
	case "twm-gc":
		return core.New(core.Options{GroupCommit: true, Logger: logger}), nil
	case "jvstm":
		return jvstm.New(jvstm.Options{Logger: logger}), nil
	case "jvstm-gc":
		return jvstm.New(jvstm.Options{GroupCommit: true, Logger: logger}), nil
	}
	return nil, fmt.Errorf("engines: engine %q does not support a commit logger (have %v)", name, DurableSet())
}

// MustNewDurable is NewDurable for static names in tests and benchmarks.
func MustNewDurable(name string, logger stm.CommitLogger) stm.TM {
	tm, err := NewDurable(name, logger)
	if err != nil {
		panic(err)
	}
	return tm
}

// ShardedSet lists the engines that support a partitioned clock domain
// (DESIGN.md §17). Opacity mode homogenizes reads against the single global
// number line and is excluded.
func ShardedSet() []string { return []string{"jvstm", "jvstm-gc", "twm", "twm-gc", "twm-notw"} }

// NewSharded constructs one of the clock-shardable engines with shards clock
// domains (rounded to a power of two, capped at mvutil.MaxClockShards) and an
// optional variable-to-shard assignment function (nil selects round-robin on
// the variable id). shards <= 1 is the unsharded engine, byte-identical in
// behavior to New(name).
func NewSharded(name string, shards int, sharder func(id uint64, shards int) int) (stm.TM, error) {
	switch name {
	case "twm":
		return core.New(core.Options{ClockShards: shards, Sharder: sharder}), nil
	case "twm-notw":
		return core.New(core.Options{DisableTimeWarp: true, ClockShards: shards, Sharder: sharder}), nil
	case "twm-gc":
		return core.New(core.Options{GroupCommit: true, ClockShards: shards, Sharder: sharder}), nil
	case "jvstm":
		return jvstm.New(jvstm.Options{ClockShards: shards, Sharder: sharder}), nil
	case "jvstm-gc":
		return jvstm.New(jvstm.Options{GroupCommit: true, ClockShards: shards, Sharder: sharder}), nil
	}
	return nil, fmt.Errorf("engines: engine %q does not support clock shards (have %v)", name, ShardedSet())
}

// MustNewSharded is NewSharded for static names in tests and benchmarks.
func MustNewSharded(name string, shards int, sharder func(id uint64, shards int) int) stm.TM {
	tm, err := NewSharded(name, shards, sharder)
	if err != nil {
		panic(err)
	}
	return tm
}

// NewDurableSharded combines NewDurable and NewSharded: a WAL-capable engine
// with both a commit logger and a partitioned clock domain. Commit records
// carry the writer's shard list so recovery can fast-forward every shard
// clock independently (wal.Recovered.ShardSerials).
func NewDurableSharded(name string, logger stm.CommitLogger, shards int, sharder func(id uint64, shards int) int) (stm.TM, error) {
	switch name {
	case "twm":
		return core.New(core.Options{Logger: logger, ClockShards: shards, Sharder: sharder}), nil
	case "twm-gc":
		return core.New(core.Options{GroupCommit: true, Logger: logger, ClockShards: shards, Sharder: sharder}), nil
	case "jvstm":
		return jvstm.New(jvstm.Options{Logger: logger, ClockShards: shards, Sharder: sharder}), nil
	case "jvstm-gc":
		return jvstm.New(jvstm.Options{GroupCommit: true, Logger: logger, ClockShards: shards, Sharder: sharder}), nil
	}
	return nil, fmt.Errorf("engines: engine %q does not support a sharded commit log (have %v)", name, DurableSet())
}
