package engines_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/engines"
	"repro/internal/mvutil"
	"repro/internal/stm"
	"repro/internal/stm/stmtest"
)

// TestAsyncGroupCommitEngines: async futures drive real commits through the
// combiner on both group-commit engines, and concurrent async submitters sum
// to the expected total.
func TestAsyncGroupCommitEngines(t *testing.T) {
	for _, name := range engines.GroupCommitSet() {
		t.Run(name, func(t *testing.T) {
			stmtest.CheckGoroutines(t)
			tm, err := engines.New(name)
			if err != nil {
				t.Fatal(err)
			}
			x := stm.NewTVar(tm, 0)
			const producers, perProducer = 8, 25
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						f := stm.AtomicallyAsync(tm, false, func(tx stm.Tx) error {
							x.Set(tx, x.Get(tx)+1)
							return nil
						})
						if err := f.Wait(); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			var got int
			if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
				got = x.Get(tx)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if got != producers*perProducer {
				t.Fatalf("x = %d, want %d", got, producers*perProducer)
			}
			snap := tm.Stats().Snapshot()
			if snap.GroupBatches == 0 || snap.ClockAdvances != snap.GroupBatches {
				t.Fatalf("batch accounting off: batches=%d clockAdvances=%d",
					snap.GroupBatches, snap.ClockAdvances)
			}
		})
	}
}

// TestAsyncCancelWhileGroupCommitting: a transaction whose every attempt is
// published to the combiner and refused there (hard version-budget pressure
// the engine cannot relieve) retries until its context is cancelled. The
// future must resolve with *stm.CancelledError, the admission-gate slot must
// come back, and no goroutine may outlive the test.
func TestAsyncCancelWhileGroupCommitting(t *testing.T) {
	for _, name := range engines.GroupCommitSet() {
		t.Run(name, func(t *testing.T) {
			stmtest.CheckGoroutines(t)
			budget := mvutil.NewVersionBudget(mvutil.BudgetConfig{SoftVersions: 1, HardVersions: 2})
			tm, err := engines.NewBudgeted(name, budget, 0)
			if err != nil {
				t.Fatal(err)
			}
			// An external charge the engine's GC cannot release pins the
			// budget at hard pressure: every group-commit round refuses its
			// members with ReasonMemoryPressure, so every attempt travels the
			// full submit → leader → refuse → retry loop.
			budget.Install(8, 0)

			x := stm.NewTVar(tm, 0)
			gate := stm.NewAdmissionGate(1, 0)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			f := stm.AtomicallyAsyncGated(ctx, tm, false, gate, nil, func(tx stm.Tx) error {
				x.Set(tx, x.Get(tx)+1)
				return nil
			})

			// Wait until the combiner has demonstrably refused a few rounds.
			deadline := time.Now().Add(5 * time.Second)
			for tm.Stats().Snapshot().ByReason[stm.ReasonMemoryPressure.String()] < 3 {
				if time.Now().After(deadline) {
					t.Fatal("no memory-pressure refusals observed")
				}
				time.Sleep(time.Millisecond)
			}
			cancel()

			err = f.Wait()
			var ce *stm.CancelledError
			if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
				t.Fatalf("future = %v, want *stm.CancelledError wrapping context.Canceled", err)
			}
			if ce.Attempts == 0 {
				t.Fatal("cancellation reported zero attempts despite observed refusals")
			}
			// The gate slot is returned with the future's resolution.
			for deadline := time.Now().Add(time.Second); gate.InFlight() != 0; {
				if time.Now().After(deadline) {
					t.Fatalf("gate slot leaked: in-flight = %d", gate.InFlight())
				}
				time.Sleep(time.Millisecond)
			}
			// The variable was never updated: every attempt was refused.
			var got int
			if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
				got = x.Get(tx)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if got != 0 {
				t.Fatalf("x = %d after perpetual refusal, want 0", got)
			}
		})
	}
}
