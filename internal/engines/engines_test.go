package engines_test

import (
	"testing"

	"repro/internal/engines"
)

func TestRegistryComplete(t *testing.T) {
	names := engines.Names()
	want := map[string]bool{
		"twm": true, "twm-notw": true, "twm-opaque": true, "twm-gc": true,
		"jvstm": true, "jvstm-gc": true, "tl2": true, "norec": true, "avstm": true,
	}
	if len(names) != len(want) {
		t.Fatalf("registry = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected engine %q", n)
		}
		tm := engines.MustNew(n)
		if tm.Name() != n {
			t.Errorf("engine %q reports Name %q", n, tm.Name())
		}
	}
}

func TestPaperSetMatchesFigures(t *testing.T) {
	ps := engines.PaperSet()
	if len(ps) != 5 || ps[len(ps)-1] != "twm" {
		t.Fatalf("paper set = %v", ps)
	}
	for _, n := range ps {
		if _, err := engines.New(n); err != nil {
			t.Fatal(err)
		}
	}
	if len(engines.Baselines()) != 4 {
		t.Fatalf("baselines = %v", engines.Baselines())
	}
}

func TestUnknownEngine(t *testing.T) {
	if _, err := engines.New("nope"); err == nil {
		t.Fatalf("expected error")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNew must panic on unknown engine")
		}
	}()
	engines.MustNew("nope")
}

func TestFreshInstances(t *testing.T) {
	a, b := engines.MustNew("twm"), engines.MustNew("twm")
	x := a.NewVar(1)
	tx := a.Begin(false)
	tx.Write(x, 2)
	if !a.Commit(tx) {
		t.Fatalf("commit failed")
	}
	if b.Stats().Snapshot().Commits != 0 {
		t.Fatalf("factory returned shared instances")
	}
}
