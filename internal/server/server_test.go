package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/engines"
	"repro/internal/server"
	"repro/internal/stm/stmtest"
)

// quietLogger discards log output (the tests deliberately provoke error-level
// events — panics, overloads — that would spam the test log).
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newTestServer builds a server plus cleanup; tests layer their own config on
// top of quiet logging and leak checking.
func newTestServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	stmtest.CheckGoroutines(t)
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// post sends a JSON body to the handler and returns the recorder.
func post(h http.Handler, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr
}

// TestCommitPath walks the happy path end to end: create, deposit, transfer,
// reserve/capture, read, audit — every 2xx backed by a committed transaction.
func TestCommitPath(t *testing.T) {
	s := newTestServer(t, server.Config{Engine: "twm"})
	h := s.Handler()

	if rr := post(h, "/v1/accounts", `{"id":"alice","balance":100}`); rr.Code != http.StatusCreated {
		t.Fatalf("create alice: %d %s", rr.Code, rr.Body)
	}
	if rr := post(h, "/v1/accounts", `{"id":"bob","balance":50}`); rr.Code != http.StatusCreated {
		t.Fatalf("create bob: %d %s", rr.Code, rr.Body)
	}
	if rr := post(h, "/v1/transfer", `{"from":"alice","to":"bob","amount":30}`); rr.Code != http.StatusOK {
		t.Fatalf("transfer: %d %s", rr.Code, rr.Body)
	}
	if rr := post(h, "/v1/deposit", `{"account":"bob","amount":5}`); rr.Code != http.StatusOK {
		t.Fatalf("deposit: %d %s", rr.Code, rr.Body)
	}
	if rr := post(h, "/v1/reserve", `{"account":"bob","amount":25}`); rr.Code != http.StatusOK {
		t.Fatalf("reserve: %d %s", rr.Code, rr.Body)
	}
	if rr := post(h, "/v1/capture", `{"account":"bob","amount":25}`); rr.Code != http.StatusOK {
		t.Fatalf("capture: %d %s", rr.Code, rr.Body)
	}

	rr := get(h, "/v1/accounts/bob")
	if rr.Code != http.StatusOK {
		t.Fatalf("get bob: %d %s", rr.Code, rr.Body)
	}
	var view struct {
		Balance, Held, Available int64
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Balance != 60 || view.Held != 0 || view.Available != 60 {
		t.Fatalf("bob = %+v, want balance 60 held 0", view)
	}

	rr = get(h, "/v1/audit")
	var audit struct {
		Accounts     int
		TotalBalance int64
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &audit); err != nil {
		t.Fatal(err)
	}
	// 100+50 seeded, 5 deposited, 25 captured (destroyed) → 130 across 2.
	if audit.Accounts != 2 || audit.TotalBalance != 130 {
		t.Fatalf("audit = %+v", audit)
	}
	if got := s.Metrics().Commits.Load(); got == 0 {
		t.Fatal("no commits counted")
	}
}

// TestUserErrors checks the domain refusals map to their statuses and are
// never retried (one transaction attempt each, no durable change).
func TestUserErrors(t *testing.T) {
	s := newTestServer(t, server.Config{Engine: "twm"})
	h := s.Handler()
	post(h, "/v1/accounts", `{"id":"a","balance":10}`)
	post(h, "/v1/accounts", `{"id":"b","balance":10}`)

	cases := []struct {
		path, body string
		want       int
	}{
		{"/v1/transfer", `{"from":"a","to":"b","amount":99}`, http.StatusConflict},     // insufficient
		{"/v1/transfer", `{"from":"ghost","to":"b","amount":1}`, http.StatusNotFound},  // unknown account
		{"/v1/transfer", `{"from":"a","to":"a","amount":1}`, http.StatusBadRequest},    // self-transfer
		{"/v1/transfer", `{"from":"a","to":"b","amount":-5}`, http.StatusBadRequest},   // negative
		{"/v1/transfer", `{"from":`, http.StatusBadRequest},                            // malformed JSON
		{"/v1/accounts", `{"id":"a","balance":1}`, http.StatusConflict},                // duplicate create
		{"/v1/release", `{"account":"a","amount":1}`, http.StatusConflict},             // nothing held
		{"/v1/capture", `{"account":"a","amount":1}`, http.StatusConflict},             // nothing held
	}
	for _, c := range cases {
		if rr := post(h, c.path, c.body); rr.Code != c.want {
			t.Errorf("POST %s %s: got %d, want %d (%s)", c.path, c.body, rr.Code, c.want, rr.Body)
		}
	}
	// Failed requests made no durable change.
	rr := get(h, "/v1/accounts/a")
	var view struct{ Balance int64 }
	_ = json.Unmarshal(rr.Body.Bytes(), &view)
	if view.Balance != 10 {
		t.Fatalf("balance after refused requests = %d, want 10", view.Balance)
	}
}

// TestOverload429 saturates the admission gate and checks updates shed with
// 429 + Retry-After while read-only requests sail through (they bypass the
// gate by design).
func TestOverload429(t *testing.T) {
	s := newTestServer(t, server.Config{Engine: "twm", GateLimit: 1, GateWait: 0, Accounts: 2, InitialBalance: 100})
	h := s.Handler()

	// Occupy the gate's only slot directly — equivalent to one long-running
	// admitted update.
	if err := s.Gate().Acquire(nil); err != nil {
		t.Fatal(err)
	}
	defer s.Gate().Release()

	rr := post(h, "/v1/transfer", `{"from":"0","to":"1","amount":1}`)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated transfer: %d %s", rr.Code, rr.Body)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.Metrics().Sheds.Load(); got != 1 {
		t.Fatalf("sheds = %d", got)
	}
	// Reads bypass the gate.
	if rr := get(h, "/v1/accounts/0"); rr.Code != http.StatusOK {
		t.Fatalf("read under saturation: %d", rr.Code)
	}
}

// TestCancelMidRetry pins the 499 path: an engine under forced commit
// failures retries until the client disconnects, and the (unsendable)
// response records the cancellation rather than hanging or reporting success.
func TestCancelMidRetry(t *testing.T) {
	// Every update commit fails: the transfer can only end by cancellation.
	tm := chaos.New(engines.MustNew("twm"), chaos.Options{Seed: 1, CommitFailProb: 1})
	s := newTestServer(t, server.Config{TM: tm, Accounts: 2, InitialBalance: 100, RequestTimeout: -1})
	h := s.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/transfer", strings.NewReader(`{"from":"0","to":"1","amount":1}`)).WithContext(ctx)
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != server.StatusClientClosedRequest {
		t.Fatalf("cancelled transfer: %d %s, want 499", rr.Code, rr.Body)
	}
	if got := s.Metrics().Cancels.Load(); got != 1 {
		t.Fatalf("cancels = %d", got)
	}
}

// TestDeadline504: the per-request transaction deadline bounds a livelocked
// transaction; the client gets a 504, not a hung connection.
func TestDeadline504(t *testing.T) {
	tm := chaos.New(engines.MustNew("twm"), chaos.Options{Seed: 1, CommitFailProb: 1})
	s := newTestServer(t, server.Config{TM: tm, Accounts: 2, InitialBalance: 100, RequestTimeout: 50 * time.Millisecond})
	rr := post(s.Handler(), "/v1/transfer", `{"from":"0","to":"1","amount":1}`)
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline transfer: %d %s, want 504", rr.Code, rr.Body)
	}
}

// TestPanicContained pins the server consequence of the panic-safe
// lifecycle: a panic inside a transaction body answers 500 with the future
// resolved (no hang), the process keeps serving, and — the descriptor-leak
// fix — the engine's pool survives repeated panics.
func TestPanicContained(t *testing.T) {
	s := newTestServer(t, server.Config{Engine: "twm", Accounts: 2, InitialBalance: 100, Debug: true})
	h := s.Handler()

	for i := 0; i < 8; i++ {
		rr := post(h, "/debugz/txpanic", `{}`)
		if rr.Code != http.StatusInternalServerError {
			t.Fatalf("txpanic round %d: %d %s", i, rr.Code, rr.Body)
		}
	}
	if got := s.Metrics().Panics.Load(); got != 8 {
		t.Fatalf("panics = %d, want 8", got)
	}
	// A handler-level panic is caught by the recovery middleware instead.
	if rr := post(h, "/debugz/panic", `{}`); rr.Code != http.StatusInternalServerError {
		t.Fatalf("handler panic: %d", rr.Code)
	}
	// The server still serves and commits after nine contained panics.
	if rr := post(h, "/v1/transfer", `{"from":"0","to":"1","amount":1}`); rr.Code != http.StatusOK {
		t.Fatalf("transfer after panics: %d %s", rr.Code, rr.Body)
	}
}

// TestHealthz checks the watchdog snapshot document and its gate/server
// counter sections.
func TestHealthz(t *testing.T) {
	s := newTestServer(t, server.Config{Engine: "twm", Accounts: 2, InitialBalance: 100})
	h := s.Handler()
	post(h, "/v1/transfer", `{"from":"0","to":"1","amount":1}`)

	rr := get(h, "/healthz")
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz: %d %s", rr.Code, rr.Body)
	}
	var view struct {
		Status   string
		Watchdog *struct {
			Targets []struct{ Name string }
		}
		Gate   struct{ Limit int }
		Server struct{ Commits uint64 }
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &view); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, rr.Body)
	}
	if view.Status != "ok" {
		t.Fatalf("status = %q", view.Status)
	}
	if view.Watchdog == nil || len(view.Watchdog.Targets) != 1 || view.Watchdog.Targets[0].Name != "twm" {
		t.Fatalf("watchdog section = %+v", view.Watchdog)
	}
	if view.Gate.Limit == 0 || view.Server.Commits == 0 {
		t.Fatalf("gate/server sections = %+v", view)
	}
	if rr := get(h, "/statsz"); rr.Code != http.StatusOK || !bytes.Contains(rr.Body.Bytes(), []byte("Commits")) {
		t.Fatalf("statsz: %d %s", rr.Code, rr.Body)
	}
}

// TestGracefulShutdownDrains runs the real lifecycle over a TCP listener:
// concurrent traffic, shutdown mid-stream, every in-flight request answered,
// no goroutine left behind (the leak check covers the HTTP server, the async
// transaction goroutines and the watchdog).
func TestGracefulShutdownDrains(t *testing.T) {
	s := newTestServer(t, server.Config{Engine: "twm", Accounts: 8, InitialBalance: 1000})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln, 5*time.Second) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 5 * time.Second}

	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := map[int]int{}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				body := fmt.Sprintf(`{"from":"%d","to":"%d","amount":1}`, g, (g+1)%8)
				resp, err := client.Post(base+"/v1/transfer", "application/json", strings.NewReader(body))
				if err != nil {
					return // the listener closed mid-stream; that's the point
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				statuses[resp.StatusCode]++
				mu.Unlock()
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond) // let traffic get in flight
	cancel()
	wg.Wait()
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v, want clean drain", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if statuses[http.StatusOK] == 0 {
		t.Fatalf("no transfer committed before shutdown: %v", statuses)
	}
	for code := range statuses {
		if code != http.StatusOK {
			t.Errorf("unexpected status %d during drain: %v", code, statuses)
		}
	}
	client.CloseIdleConnections()
}
