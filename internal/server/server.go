// Package server is the traffic-serving front end over the STM engines: an
// HTTP reservation/ledger service in which every request is one transaction.
// It is the piece that turns the library's production seams — admission
// control (stm.AdmissionGate), request-scoped cancellation (context → retry
// loop), the panic-safe async lifecycle (stm.PanicError futures), the health
// watchdog — into an actual system serving traffic, and the end-to-end
// harness the latency experiments (cmd/twm-load, BENCH_server.json) measure.
//
// Request → transaction mapping:
//
//   - Update requests run through stm.AtomicallyAsyncGated with the request's
//     context: saturation is refused at the gate (429 + Retry-After), client
//     disconnect cancels the retry loop (499), a server-side deadline bounds
//     pathological contention (504), and a panicking body resolves the future
//     with a *stm.PanicError (500) instead of killing the process.
//   - Read-only requests run stm.AtomicallyCtx directly: they bypass the gate
//     (on the multi-version engines they never abort and hold no locks), so
//     reads stay fast while updates queue at the door — the paper's
//     mv-permissiveness claim, observable as p99 read latency under a write
//     storm.
//
// See DESIGN.md §15 for the architecture and the shutdown drain ordering.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engines"
	"repro/internal/health"
	"repro/internal/stm"
	"repro/internal/wal"
)

// StatusClientClosedRequest is the nginx-convention status for a request
// whose client went away while the server was still working on it (here: the
// transaction's context was cancelled mid-retry). No standard code means
// "the caller cancelled"; 499 is the de-facto one.
const StatusClientClosedRequest = 499

// Config assembles a Server. The zero value of every field selects a usable
// default; Engine defaults to "twm".
type Config struct {
	// Engine names the engine to build from the registry (ignored when TM is
	// set). Default "twm".
	Engine string
	// TM supplies a pre-built engine — tests wrap one in chaos fault
	// injection, benchmarks share one across measurements.
	TM stm.TM
	// Accounts pre-creates accounts "0".."N-1" with InitialBalance each, so
	// load generators can start firing without a seeding phase.
	Accounts       int
	InitialBalance int64
	// GateLimit caps concurrently admitted update transactions (default
	// 4×GOMAXPROCS); GateWait bounds queueing at the gate before a 429
	// (default 0: pure shed — an overloaded server should say so immediately,
	// the load generator measures exactly this).
	GateLimit int
	GateWait  time.Duration
	// RequestTimeout bounds each request's transaction (default 2s; <0
	// disables). Contention pathologies surface as 504s, not hung requests.
	RequestTimeout time.Duration
	// WatchdogEvery is the health watchdog sampling period (default 100ms;
	// <0 disables the watchdog entirely).
	WatchdogEvery time.Duration
	// Logger receives structured request/alert logs (default slog.Default).
	Logger *slog.Logger
	// Debug adds the /debugz fault-drill endpoints (panic inside a handler,
	// panic inside a transaction body). Tests and ops drills only.
	Debug bool

	// ClockShards partitions the engine's commit clock into this many domains
	// (rounded to a power of two; see DESIGN.md §17). Accounts are colocated —
	// an account's balance and held variables share a shard — so single-account
	// operations commit against one clock and a transfer touches at most two.
	// 0 or 1 keeps the single global clock; requires a shardable Engine and is
	// incompatible with a pre-built TM.
	ClockShards int

	// WALDir, when set, makes the server durable: boot replays the directory's
	// snapshot and log (wal.Recover), the engine is built with the log attached
	// (engines.NewDurable — Engine must name a WAL-capable engine, and TM must
	// be nil), and every committed write set is appended before it is
	// acknowledged. See DESIGN.md §16.
	WALDir string
	// FsyncPolicy selects the durability/latency trade ("per-commit",
	// "per-batch" or "interval"; default per-commit). Zero-loss guarantees hold
	// only at per-commit.
	FsyncPolicy string
	// SnapshotEvery is the periodic checkpoint interval (default 1m; <0
	// disables periodic checkpoints — Close still writes a final one).
	SnapshotEvery time.Duration

	// ReadHeaderTimeout bounds how long a connection may dribble its request
	// header before the server cuts it off (default 5s) — the slow-loris
	// guard. IdleTimeout reaps idle keep-alive connections (default 60s);
	// MaxHeaderBytes caps header memory per connection (default 64KB).
	ReadHeaderTimeout time.Duration
	IdleTimeout       time.Duration
	MaxHeaderBytes    int
}

// Metrics are the server's own request-outcome counters (the engine's
// transaction counters live in stm.Stats; these count HTTP-level outcomes).
type Metrics struct {
	Requests  atomic.Uint64 // all requests routed to a handler
	Commits   atomic.Uint64 // 2xx responses backed by a committed transaction
	UserFails atomic.Uint64 // 4xx domain refusals (insufficient funds, ...)
	Sheds     atomic.Uint64 // 429 admission refusals
	Cancels   atomic.Uint64 // 499/504 cancelled or timed-out transactions
	Panics    atomic.Uint64 // 500s from contained panics
}

// Server is the HTTP front end. Construct with New, expose with Handler (or
// drive the full lifecycle with Serve), release background resources with
// Close.
type Server struct {
	cfg    Config
	tm     stm.TM
	gate   *stm.AdmissionGate
	ledger *Ledger
	dog    *health.Watchdog
	log    *slog.Logger
	mux    *http.ServeMux

	metrics Metrics
	// draining flips when Serve begins shutdown; /healthz then reports 503 so
	// load balancers stop routing to an instance that is about to go away.
	draining atomic.Bool

	// Durable-mode state (nil/zero on a memory-only server): the log writer,
	// a mutex serializing checkpoints, and the periodic checkpoint loop's
	// lifecycle channels.
	wal      *wal.Writer
	ckptMu   sync.Mutex
	snapStop chan struct{}
	snapDone chan struct{}
}

// New builds a server over the configured engine. The health watchdog starts
// sampling immediately (unless disabled); Close stops it.
func New(cfg Config) (*Server, error) {
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Engine == "" {
		cfg.Engine = "twm"
	}
	tm := cfg.TM
	var (
		w   *wal.Writer
		rec *wal.Recovered
	)
	if cfg.WALDir != "" {
		if tm != nil {
			return nil, errors.New("server: Config.TM and Config.WALDir are mutually exclusive (a durable engine must be built with the log attached)")
		}
		var err error
		if tm, w, rec, err = openDurable(&cfg); err != nil {
			return nil, err
		}
	}
	if tm == nil {
		var err error
		if cfg.ClockShards > 1 {
			tm, err = engines.NewSharded(cfg.Engine, cfg.ClockShards, accountSharder)
		} else {
			tm, err = engines.New(cfg.Engine)
		}
		if err != nil {
			return nil, err
		}
	}
	if cfg.ClockShards > 1 && cfg.TM != nil {
		return nil, errors.New("server: Config.TM and Config.ClockShards are mutually exclusive (sharding is an engine-construction option)")
	}
	if cfg.GateLimit <= 0 {
		cfg.GateLimit = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	if cfg.WatchdogEvery == 0 {
		cfg.WatchdogEvery = 100 * time.Millisecond
	}
	s := &Server{
		cfg:    cfg,
		tm:     tm,
		gate:   stm.NewAdmissionGate(cfg.GateLimit, cfg.GateWait),
		ledger: NewLedger(tm),
		log:    cfg.Logger,
		wal:    w,
	}
	if w != nil {
		s.ledger.logMeta = w.AppendMeta
		if err := s.recover(rec); err != nil {
			w.Close()
			return nil, err
		}
	}
	for i := 0; i < cfg.Accounts; i++ {
		err := s.ledger.Create(fmt.Sprint(i), cfg.InitialBalance)
		if errors.Is(err, ErrExists) {
			continue // recovered from the log; its durable balance stands
		}
		if err != nil {
			return nil, err
		}
	}
	if w != nil && cfg.SnapshotEvery > 0 {
		s.snapStop, s.snapDone = make(chan struct{}), make(chan struct{})
		go s.checkpointLoop(cfg.SnapshotEvery)
	}
	if cfg.WatchdogEvery > 0 {
		s.dog = health.New(health.Config{
			SampleEvery: cfg.WatchdogEvery,
			OnAlert: []health.AlertFunc{func(a health.Alert) {
				s.log.Warn("health transition", "target", a.Target, "condition", a.Condition, "raised", a.Raised, "detail", a.Detail)
			}},
		}, health.TargetOf(tm))
		s.dog.Start()
	}
	s.mux = s.routes()
	return s, nil
}

// TM exposes the engine (tests and the load harness read its stats).
func (s *Server) TM() stm.TM { return s.tm }

// Gate exposes the admission gate's counters.
func (s *Server) Gate() *stm.AdmissionGate { return s.gate }

// Metrics exposes the request-outcome counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Ledger exposes the account table (seeding and audits).
func (s *Server) Ledger() *Ledger { return s.ledger }

// Close stops the watchdog's sampling goroutine and, on a durable server,
// writes a final checkpoint and closes the log. It does not wait for in-flight
// requests — that is Serve's drain (or the HTTP server's Shutdown); call Close
// after the drain so the final checkpoint covers everything acknowledged.
func (s *Server) Close() {
	if s.dog != nil {
		s.dog.Stop()
	}
	if s.snapStop != nil {
		close(s.snapStop)
		<-s.snapDone
		s.snapStop = nil
	}
	if s.wal != nil {
		if err := s.Checkpoint(); err != nil {
			s.log.Warn("final checkpoint failed; recovery will replay the full log", "err", err)
		}
		s.wal.Close()
	}
}

// Handler returns the full middleware-wrapped handler: recovery outermost
// (a handler bug must answer 500, not kill the process), then request
// logging, then the per-request transaction deadline, then routing.
func (s *Server) Handler() http.Handler {
	var h http.Handler = s.mux
	h = s.timeoutMiddleware(h)
	h = s.loggingMiddleware(h)
	h = s.recoveryMiddleware(h)
	return h
}

// Serve accepts on ln until ctx is cancelled, then shuts down gracefully:
// stop accepting, let in-flight requests finish (their transactions are
// bounded by RequestTimeout) for up to drain, then hard-close whatever
// remains. The drain ordering matters: requests first (they hold gate slots
// and engine state), watchdog last (it only observes). Returns nil on a clean
// drain; the ledger and engine remain usable after return (Close releases the
// watchdog).
func (s *Server) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	// The request base context must OUTLIVE ctx: deriving requests from ctx
	// directly would cancel every in-flight transaction the instant the
	// shutdown signal fires — a mass 499 instead of a drain. base cancels
	// only after Shutdown's drain window, catching whatever is still
	// retrying then.
	base, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	// Protocol-level self-defence lives here, not in middleware: a client
	// that never finishes its header never reaches a handler, so only the
	// http.Server itself can bound it (ReadHeaderTimeout). IdleTimeout reaps
	// parked keep-alive connections and MaxHeaderBytes caps what an unread
	// header can make us buffer.
	readHeader := s.cfg.ReadHeaderTimeout
	if readHeader == 0 {
		readHeader = 5 * time.Second
	}
	idle := s.cfg.IdleTimeout
	if idle == 0 {
		idle = 60 * time.Second
	}
	maxHeader := s.cfg.MaxHeaderBytes
	if maxHeader == 0 {
		maxHeader = 64 << 10
	}
	hs := &http.Server{
		Handler:           s.Handler(),
		BaseContext:       func(net.Listener) context.Context { return base },
		ReadHeaderTimeout: readHeader,
		IdleTimeout:       idle,
		MaxHeaderBytes:    maxHeader,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	s.draining.Store(true)
	if drain <= 0 {
		drain = 5 * time.Second
	}
	// ctx is already done; Shutdown needs a fresh deadline for the drain.
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := hs.Shutdown(sctx)
	// Drain over — cleanly or expired. Cancel anything still retrying (a
	// no-op on a clean drain) and, if connections remain, force-close them so
	// their now-cancelled handlers' goroutines retire instead of leaking.
	cancelBase()
	if err != nil {
		hs.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed
	if err != nil {
		return fmt.Errorf("server: drain incomplete: %w", err)
	}
	return nil
}

// routes builds the ServeMux. Method+path patterns (Go 1.22 mux) keep the
// routing table declarative.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/accounts", s.handleCreateAccount)
	mux.HandleFunc("GET /v1/accounts/{id}", s.handleGetAccount)
	mux.HandleFunc("GET /v1/audit", s.handleAudit)
	mux.HandleFunc("POST /v1/transfer", s.handleTransfer)
	mux.HandleFunc("POST /v1/deposit", s.handleMove(deposit))
	mux.HandleFunc("POST /v1/reserve", s.handleMove(reserve))
	mux.HandleFunc("POST /v1/release", s.handleMove(release))
	mux.HandleFunc("POST /v1/capture", s.handleMove(capture))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	if s.cfg.Debug {
		mux.HandleFunc("POST /debugz/panic", func(http.ResponseWriter, *http.Request) {
			panic("debugz: handler panic drill")
		})
		mux.HandleFunc("POST /debugz/txpanic", s.handleTxPanic)
	}
	return mux
}

// update runs fn as a gated update transaction bound to the request context.
// The async form is deliberate: a body panic resolves the future with a
// *stm.PanicError (stack captured at the panic site) instead of unwinding
// this goroutine, so the error path below is uniform — every failure mode is
// a typed error.
func (s *Server) update(ctx context.Context, fn func(stm.Tx) error) error {
	return stm.AtomicallyAsyncGated(ctx, s.tm, false, s.gate, nil, fn).Wait()
}

// read runs fn as a read-only transaction bound to the request context,
// bypassing the gate.
func (s *Server) read(ctx context.Context, fn func(stm.Tx) error) error {
	return stm.AtomicallyCtx(ctx, s.tm, true, fn)
}

// moveRequest is the body of the single-account money-movement endpoints.
type moveRequest struct {
	Account string `json:"account"`
	Amount  int64  `json:"amount"`
}

// transferRequest is the body of POST /v1/transfer.
type transferRequest struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Amount int64  `json:"amount"`
}

// createRequest is the body of POST /v1/accounts.
type createRequest struct {
	ID      string `json:"id"`
	Balance int64  `json:"balance"`
}

func (s *Server) handleCreateAccount(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if !decode(w, r, &req) {
		return
	}
	if req.ID == "" {
		s.writeError(w, r, fmt.Errorf("%w: missing account id", ErrBadAmount))
		return
	}
	if err := s.ledger.Create(req.ID, req.Balance); err != nil {
		s.writeError(w, r, err)
		return
	}
	s.metrics.Commits.Add(1)
	writeJSON(w, http.StatusCreated, BalanceView{ID: req.ID, Balance: req.Balance, Available: req.Balance})
}

func (s *Server) handleGetAccount(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	a, err := s.ledger.lookup(id)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	var view BalanceView
	if err := s.read(r.Context(), func(tx stm.Tx) error {
		a.readInto(tx, id, &view)
		return nil
	}); err != nil {
		s.writeError(w, r, err)
		return
	}
	s.metrics.Commits.Add(1)
	writeJSON(w, http.StatusOK, view)
}

// auditView is the full-ledger invariant snapshot: one read-only transaction
// scans every account, so the sums are a consistent cut even while transfers
// churn underneath — the long analytical read the multi-version engines
// promise never aborts.
type auditView struct {
	Accounts     int   `json:"accounts"`
	TotalBalance int64 `json:"totalBalance"`
	TotalHeld    int64 `json:"totalHeld"`
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	ids := s.ledger.IDs()
	accs := make([]*account, 0, len(ids))
	for _, id := range ids {
		if a, err := s.ledger.lookup(id); err == nil {
			accs = append(accs, a)
		}
	}
	var view auditView
	if err := s.read(r.Context(), func(tx stm.Tx) error {
		view = auditView{Accounts: len(accs)} // reset per attempt
		for _, a := range accs {
			view.TotalBalance += a.balance.Get(tx)
			view.TotalHeld += a.held.Get(tx)
		}
		return nil
	}); err != nil {
		s.writeError(w, r, err)
		return
	}
	s.metrics.Commits.Add(1)
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleTransfer(w http.ResponseWriter, r *http.Request) {
	var req transferRequest
	if !decode(w, r, &req) {
		return
	}
	from, err := s.ledger.lookup(req.From)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	to, err := s.ledger.lookup(req.To)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if req.From == req.To {
		s.writeError(w, r, fmt.Errorf("%w: self-transfer", ErrBadAmount))
		return
	}
	if err := s.update(r.Context(), func(tx stm.Tx) error {
		return transfer(tx, from, to, req.Amount)
	}); err != nil {
		s.writeError(w, r, err)
		return
	}
	s.metrics.Commits.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"status": "committed"})
}

// handleMove builds the handler for the single-account operations (deposit,
// reserve, release, capture) — same decode/lookup/update/respond shell, one
// ledger operation plugged in.
func (s *Server) handleMove(op func(stm.Tx, *account, int64) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req moveRequest
		if !decode(w, r, &req) {
			return
		}
		a, err := s.ledger.lookup(req.Account)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		if err := s.update(r.Context(), func(tx stm.Tx) error {
			return op(tx, a, req.Amount)
		}); err != nil {
			s.writeError(w, r, err)
			return
		}
		s.metrics.Commits.Add(1)
		writeJSON(w, http.StatusOK, map[string]string{"status": "committed"})
	}
}

// handleTxPanic panics from inside a transaction body: the drill for the
// panic-safe async lifecycle (future resolves with *stm.PanicError → 500
// here, process lives).
func (s *Server) handleTxPanic(w http.ResponseWriter, r *http.Request) {
	err := s.update(r.Context(), func(stm.Tx) error {
		panic("debugz: transaction body panic drill") //twm:impure deliberate fault drill; the body never commits
	})
	s.writeError(w, r, err)
}

// healthzView is the /healthz document: the watchdog's snapshot plus the
// gate's admission counters and the server's own outcome counters.
type healthzView struct {
	Status   string           `json:"status"` // "ok", "degraded" or "draining"
	Watchdog *health.Snapshot `json:"watchdog,omitempty"`
	Gate     gateView         `json:"gate"`
	Server   metricsView      `json:"server"`
}

type gateView struct {
	Limit     int    `json:"limit"`
	InFlight  int    `json:"inFlight"`
	Waiting   int64  `json:"waiting"`
	Admitted  uint64 `json:"admitted"`
	Overloads uint64 `json:"overloads"`
	Cancels   uint64 `json:"cancels"`
}

type metricsView struct {
	Requests  uint64 `json:"requests"`
	Commits   uint64 `json:"commits"`
	UserFails uint64 `json:"userFails"`
	Sheds     uint64 `json:"sheds"`
	Cancels   uint64 `json:"cancels"`
	Panics    uint64 `json:"panics"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	view := healthzView{
		Status: "ok",
		Gate: gateView{
			Limit: s.gate.Limit(), InFlight: s.gate.InFlight(), Waiting: s.gate.Waiting(),
			Admitted: s.gate.Admitted(), Overloads: s.gate.Overloads(), Cancels: s.gate.Cancels(),
		},
		Server: metricsView{
			Requests: s.metrics.Requests.Load(), Commits: s.metrics.Commits.Load(),
			UserFails: s.metrics.UserFails.Load(), Sheds: s.metrics.Sheds.Load(),
			Cancels: s.metrics.Cancels.Load(), Panics: s.metrics.Panics.Load(),
		},
	}
	status := http.StatusOK
	if s.dog != nil {
		snap := s.dog.Snapshot()
		view.Watchdog = &snap
		for _, t := range snap.Targets {
			if len(t.Active) > 0 {
				view.Status = "degraded"
				status = http.StatusServiceUnavailable
			}
		}
	}
	if s.draining.Load() {
		view.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, view)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.tm.Stats().Snapshot())
}

// writeError maps a transaction's failure mode to its HTTP shape. This is the
// single point where the stm error taxonomy becomes wire protocol:
//
//	*stm.OverloadError  → 429 + Retry-After (the gate shed the request)
//	*stm.CancelledError → 499 (client went away) or 504 (server deadline)
//	*stm.PanicError     → 500 (contained body panic; stack logged)
//	domain errors       → 404 / 409 / 400 (user-level aborts, not retried)
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	var (
		oe *stm.OverloadError
		ce *stm.CancelledError
		pe *stm.PanicError
	)
	switch {
	case errors.As(err, &oe):
		s.metrics.Sheds.Add(1)
		// The client should come back after roughly one gate wait (minimum
		// 1s: Retry-After has whole-second resolution).
		retry := int64(1)
		if s.cfg.GateWait > time.Second {
			retry = int64(s.cfg.GateWait / time.Second)
		}
		w.Header().Set("Retry-After", fmt.Sprint(retry))
		writeErrJSON(w, http.StatusTooManyRequests, "overloaded", err)
	case errors.As(err, &ce):
		s.metrics.Cancels.Add(1)
		if errors.Is(err, context.DeadlineExceeded) {
			writeErrJSON(w, http.StatusGatewayTimeout, "deadline", err)
			return
		}
		// The client is usually gone; the status is for the access log.
		writeErrJSON(w, StatusClientClosedRequest, "cancelled", err)
	case errors.As(err, &pe):
		s.metrics.Panics.Add(1)
		s.log.Error("transaction body panic contained",
			"method", r.Method, "path", r.URL.Path, "value", fmt.Sprint(pe.Value), "stack", string(pe.Stack))
		writeErrJSON(w, http.StatusInternalServerError, "internal", errors.New("internal error"))
	case errors.Is(err, ErrNotFound):
		s.metrics.UserFails.Add(1)
		writeErrJSON(w, http.StatusNotFound, "not-found", err)
	case errors.Is(err, ErrExists):
		s.metrics.UserFails.Add(1)
		writeErrJSON(w, http.StatusConflict, "exists", err)
	case errors.Is(err, ErrInsufficient), errors.Is(err, ErrInsufficientHold):
		s.metrics.UserFails.Add(1)
		writeErrJSON(w, http.StatusConflict, "insufficient", err)
	case errors.Is(err, ErrBadAmount):
		s.metrics.UserFails.Add(1)
		writeErrJSON(w, http.StatusBadRequest, "bad-request", err)
	default:
		s.log.Error("unclassified request error", "method", r.Method, "path", r.URL.Path, "err", err)
		writeErrJSON(w, http.StatusInternalServerError, "internal", err)
	}
}

// errBody is the uniform JSON error envelope.
type errBody struct {
	Error  string `json:"error"`
	Detail string `json:"detail"`
}

func writeErrJSON(w http.ResponseWriter, status int, kind string, err error) {
	writeJSON(w, status, errBody{Error: kind, Detail: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// decode parses the JSON request body, answering 400 itself on malformed
// input. Bodies are tiny; 1MB bounds hostile ones.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErrJSON(w, http.StatusBadRequest, "bad-json", err)
		return false
	}
	return true
}
