package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"testing"

	"repro/internal/server"
)

// Sharded durable server tests (DESIGN.md §17): the account-colocating
// sharder keeps every single-account operation on one clock domain, commit
// records carry shard vectors, and restart fast-forwards each shard clock
// past its own replayed floor.

func shardedConfig(dir string, shards int) server.Config {
	cfg := durableConfig(dir)
	cfg.ClockShards = shards
	return cfg
}

// TestShardedDurableRestart runs the zero-loss restart walk on a 4-shard
// engine: clean restart from the final checkpoint (whose snapshot carries the
// clock vector), then a crash-style restart replaying sharded commit records.
func TestShardedDurableRestart(t *testing.T) {
	dir := t.TempDir()

	s1, err := server.New(shardedConfig(dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	h := s1.Handler()
	mustPost(t, h, "/v1/deposit", `{"account":"0","amount":100}`)    // single-shard
	mustPost(t, h, "/v1/transfer", `{"from":"1","to":"2","amount":250}`) // cross-shard
	mustPost(t, h, "/v1/reserve", `{"account":"3","amount":50}`)
	mustPost(t, h, "/v1/accounts", `{"id":"extra","balance":500}`)
	mustPost(t, h, "/v1/deposit", `{"account":"extra","amount":25}`)
	s1.Close()

	if snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap")); len(snaps) != 1 {
		t.Fatalf("want exactly one snapshot after clean close, got %v", snaps)
	}

	s2, err := server.New(shardedConfig(dir, 4))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	h2 := s2.Handler()
	for _, tc := range []struct {
		id            string
		balance, held int64
	}{
		{"0", 1100, 0}, {"1", 750, 0}, {"2", 1250, 0}, {"3", 1000, 50}, {"extra", 525, 0},
	} {
		if b, hd := getBalance(t, h2, tc.id); b != tc.balance || hd != tc.held {
			t.Errorf("after restart, account %s: balance=%d held=%d, want %d/%d", tc.id, b, hd, tc.balance, tc.held)
		}
	}

	// Crash-style stop: more acknowledged writes, log closed, no checkpoint —
	// the next boot replays the snapshot plus sharded record suffix.
	mustPost(t, h2, "/v1/deposit", `{"account":"extra","amount":75}`)
	mustPost(t, h2, "/v1/transfer", `{"from":"0","to":"3","amount":40}`)
	s2.WAL().Close()
	s2.Close()

	s3, err := server.New(shardedConfig(dir, 4))
	if err != nil {
		t.Fatalf("crash restart: %v", err)
	}
	defer s3.Close()
	h3 := s3.Handler()
	if b, _ := getBalance(t, h3, "extra"); b != 600 {
		t.Errorf("after crash restart, extra balance=%d, want 600", b)
	}
	if b, _ := getBalance(t, h3, "0"); b != 1060 {
		t.Errorf("after crash restart, account 0 balance=%d, want 1060", b)
	}

	rr := get(h3, "/v1/audit")
	var audit struct {
		Accounts     int   `json:"accounts"`
		TotalBalance int64 `json:"totalBalance"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &audit); err != nil {
		t.Fatal(err)
	}
	if audit.Accounts != 5 || audit.TotalBalance != 4*1000+100+500+25+75 {
		t.Errorf("audit after two restarts: %+v", audit)
	}
}

// TestShardedRestartAfterReshard: booting with a different shard count than
// the log was written with must still recover — the seeding falls back to
// raising every clock past the global maximum.
func TestShardedRestartAfterReshard(t *testing.T) {
	dir := t.TempDir()
	s1, err := server.New(shardedConfig(dir, 8))
	if err != nil {
		t.Fatal(err)
	}
	h := s1.Handler()
	for i := 0; i < 4; i++ {
		mustPost(t, h, "/v1/deposit", fmt.Sprintf(`{"account":"%d","amount":10}`, i))
	}
	s1.WAL().Close() // crash shape: replay from raw sharded records
	s1.Close()

	s2, err := server.New(shardedConfig(dir, 2))
	if err != nil {
		t.Fatalf("resharded restart: %v", err)
	}
	defer s2.Close()
	h2 := s2.Handler()
	for i := 0; i < 4; i++ {
		if b, _ := getBalance(t, h2, fmt.Sprint(i)); b != 1010 {
			t.Errorf("account %d after resharded restart: %d, want 1010", i, b)
		}
	}
	// And commits keep flowing on the new layout.
	mustPost(t, h2, "/v1/transfer", `{"from":"0","to":"1","amount":5}`)
	if b, _ := getBalance(t, h2, "1"); b != 1015 {
		t.Errorf("post-reshard transfer: %d, want 1015", b)
	}
}

// TestShardedVolatileServer: ClockShards on a volatile (no-WAL) server just
// shards the engine clock; the API behaves identically.
func TestShardedVolatileServer(t *testing.T) {
	s := newTestServer(t, server.Config{
		Engine: "twm", Accounts: 8, InitialBalance: 100, ClockShards: 4,
	})
	h := s.Handler()
	mustPost(t, h, "/v1/transfer", `{"from":"0","to":"7","amount":30}`)
	if b, _ := getBalance(t, h, "7"); b != 130 {
		t.Errorf("transfer on sharded volatile server: %d, want 130", b)
	}
	rr := get(h, "/statsz")
	if rr.Code != http.StatusOK {
		t.Fatalf("statsz: %d", rr.Code)
	}
}
