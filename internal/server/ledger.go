package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/stm"
)

// Domain errors. The HTTP layer maps them to statuses (404 for ErrNotFound,
// 409 for the rest); they are user-level aborts, so the transaction that
// returns one is not retried and makes no durable change.
var (
	ErrNotFound         = errors.New("ledger: account not found")
	ErrExists           = errors.New("ledger: account already exists")
	ErrInsufficient     = errors.New("ledger: insufficient available funds")
	ErrInsufficientHold = errors.New("ledger: release/capture exceeds held funds")
	ErrBadAmount        = errors.New("ledger: amount must be positive")
)

// account is one ledger row: two transactional variables, so any mix of
// transfers, reservations and reads composes atomically. Balance counts all
// funds including held ones; held is the reserved slice, so available funds
// are balance-held. The invariant 0 <= held <= balance is maintained by every
// operation and audited by the chaos soak.
type account struct {
	balance *stm.TVar[int64]
	held    *stm.TVar[int64]
}

// Ledger is the account table. The registry itself is a plain RWMutex map,
// not a transactional structure: TVars must be published before they are
// shared (stm.TM.NewVar is not transactional), so account creation takes the
// write lock once and every request-path lookup is a read-locked map hit.
// All money movement happens inside transactions over the accounts' TVars.
//
// On a durable server (Config.WALDir) the ledger also owns the metadata side
// of the log: each creation appends one meta record — payload, variable
// allocation and registration all under the write lock, so the meta sequence
// order equals the creation order equals the variable-id order, which is what
// lets recovery re-create accounts with the exact variable ids the log's
// commit records refer to.
type Ledger struct {
	tm stm.TM

	// logMeta, when non-nil, durably appends one creation record
	// (wal.Writer.AppendMeta); a refusal fails the creation — an account the
	// log does not know cannot be recovered.
	logMeta func(payload []byte) error

	mu       sync.RWMutex
	accounts map[string]*account
	order    []string // ids in creation order (the meta sequence order)
	metas    [][]byte // meta payloads in creation order (checkpoint copies)
}

// NewLedger returns an empty ledger over tm.
func NewLedger(tm stm.TM) *Ledger {
	return &Ledger{tm: tm, accounts: make(map[string]*account)}
}

// Create registers a new account with an initial balance. It is
// non-transactional (variable allocation happens outside any transaction);
// the handle is published under the registry lock before any transaction can
// reach it. Allocation happens under the lock too, so on a durable ledger
// the variable ids follow the meta sequence order (see the type comment).
func (l *Ledger) Create(id string, initial int64) error {
	if initial < 0 {
		return ErrBadAmount
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.accounts[id]; ok {
		return ErrExists
	}
	var payload []byte
	if l.logMeta != nil {
		var err error
		if payload, err = json.Marshal(accountMeta{ID: id, Balance: initial}); err != nil {
			return err
		}
		if err := l.logMeta(payload); err != nil {
			return fmt.Errorf("ledger: durable create: %w", err)
		}
	}
	bal := stm.NewTVar(l.tm, initial)
	held := stm.NewTVar(l.tm, int64(0))
	l.register(id, &account{balance: bal, held: held}, payload)
	return nil
}

// register publishes one account under the held write lock.
func (l *Ledger) register(id string, a *account, payload []byte) {
	l.accounts[id] = a
	if l.logMeta != nil {
		l.order = append(l.order, id)
		l.metas = append(l.metas, payload)
	}
}

// lookup resolves an account id outside any transaction.
func (l *Ledger) lookup(id string) (*account, error) {
	l.mu.RLock()
	a := l.accounts[id]
	l.mu.RUnlock()
	if a == nil {
		return nil, ErrNotFound
	}
	return a, nil
}

// Size reports the number of accounts.
func (l *Ledger) Size() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.accounts)
}

// IDs returns the account ids, sorted (reporting and audits).
func (l *Ledger) IDs() []string {
	l.mu.RLock()
	ids := make([]string, 0, len(l.accounts))
	for id := range l.accounts {
		ids = append(ids, id)
	}
	l.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// BalanceView is one account's state as read by a single transaction.
type BalanceView struct {
	ID        string `json:"id"`
	Balance   int64  `json:"balance"`
	Held      int64  `json:"held"`
	Available int64  `json:"available"`
}

// readInto snapshots the account inside tx.
func (a *account) readInto(tx stm.Tx, id string, out *BalanceView) {
	bal, held := a.balance.Get(tx), a.held.Get(tx)
	out.ID, out.Balance, out.Held, out.Available = id, bal, held, bal-held
}

// transfer moves amount from one account's available funds to another's,
// atomically. Bodies re-execute on abort; all state lives in the TVars.
func transfer(tx stm.Tx, from, to *account, amount int64) error {
	if amount <= 0 {
		return ErrBadAmount
	}
	fb := from.balance.Get(tx)
	if fb-from.held.Get(tx) < amount {
		return ErrInsufficient
	}
	from.balance.Set(tx, fb-amount) //twm:allow abortshape insufficient-funds guard is inherent check-then-act in a ledger debit
	to.balance.Set(tx, to.balance.Get(tx)+amount)
	return nil
}

// deposit credits amount to the account.
func deposit(tx stm.Tx, a *account, amount int64) error {
	if amount <= 0 {
		return ErrBadAmount
	}
	a.balance.Set(tx, a.balance.Get(tx)+amount)
	return nil
}

// reserve places a hold on amount of the account's available funds (the
// two-step booking flow: reserve, then capture or release).
func reserve(tx stm.Tx, a *account, amount int64) error {
	if amount <= 0 {
		return ErrBadAmount
	}
	h := a.held.Get(tx)
	if a.balance.Get(tx)-h < amount {
		return ErrInsufficient
	}
	a.held.Set(tx, h+amount) //twm:allow abortshape hold placement is inherent check-then-act against available funds
	return nil
}

// release returns amount of held funds to the available pool.
func release(tx stm.Tx, a *account, amount int64) error {
	if amount <= 0 {
		return ErrBadAmount
	}
	h := a.held.Get(tx)
	if h < amount {
		return ErrInsufficientHold
	}
	a.held.Set(tx, h-amount) //twm:allow abortshape hold release is inherent check-then-act against the held slice
	return nil
}

// capture consumes amount of held funds: the hold is lifted and the balance
// debited in the same transaction (the second half of a reservation).
func capture(tx stm.Tx, a *account, amount int64) error {
	if amount <= 0 {
		return ErrBadAmount
	}
	h := a.held.Get(tx)
	if h < amount {
		return ErrInsufficientHold
	}
	a.held.Set(tx, h-amount) //twm:allow abortshape capture is inherent check-then-act against the held slice
	a.balance.Set(tx, a.balance.Get(tx)-amount)
	return nil
}
