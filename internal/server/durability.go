package server

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/wal"
)

// This file is the durable-server glue: boot-time recovery from the WAL
// directory, account re-creation from meta records, and the rotate → snapshot
// → prune checkpoint protocol. The log itself (format, fsync policies, replay
// fold) lives in internal/wal; the commit-path hooks live in the engines; what
// belongs here is the mapping between accounts and variable ids, which is the
// only state the log cannot reconstruct on its own.
//
// Variable-id prediction: the engines assign variable ids densely in NewVar
// order, and the ledger creates exactly two variables per account (balance,
// then held) under the registry lock, in meta-record order. So the k-th meta
// record (0-based) owns ids 2k+1 and 2k+2 — recovery re-creates accounts in
// meta order and asserts the prediction, turning any drift between this
// reasoning and the engine into a loud boot failure instead of silently
// crediting the wrong account.

// accountMeta is the WAL meta-record payload for one account creation.
type accountMeta struct {
	ID      string `json:"id"`
	Balance int64  `json:"balance"`
}

// clocked and clockSeeded are the engine capabilities recovery needs beyond
// stm.TM: reading the commit clock (checkpoint serial) and fast-forwarding it
// past everything the log replayed (so post-recovery commits serialize after
// pre-crash ones). shardClocked extends them to partitioned clocks (DESIGN.md
// §17): the checkpoint snapshots the whole clock vector and recovery
// fast-forwards each shard past its own replayed floor.
type clocked interface{ Clock() uint64 }
type clockSeeded interface{ SeedClock(v uint64) }
type shardClocked interface {
	ClockShards() int
	ClockVec(dst []uint64) []uint64
	SeedClockShard(s int, v uint64)
}

// accountSharder colocates each account's two variables — the ledger creates
// balance then held, so the k-th account (0-based) owns ids 2k+1 and 2k+2 —
// on one clock shard. Single-account operations (deposit, withdraw, hold)
// then always commit against a single clock domain, and a transfer touches at
// most two.
func accountSharder(id uint64, shards int) int {
	if id == 0 {
		return 0
	}
	return int(((id - 1) / 2) % uint64(shards))
}

// openDurable recovers the WAL directory and builds the engine with the log
// attached. Meta records already recovered must not be re-appended on the next
// checkpoint's rotation boundary, hence MetaStart.
func openDurable(cfg *Config) (stm.TM, *wal.Writer, *wal.Recovered, error) {
	policy, err := wal.ParsePolicy(cfg.FsyncPolicy)
	if err != nil {
		return nil, nil, nil, err
	}
	rec, err := wal.Recover(cfg.WALDir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("server: recover %s: %w", cfg.WALDir, err)
	}
	w, err := wal.Open(wal.Options{
		Dir:       cfg.WALDir,
		Policy:    policy,
		MetaStart: uint64(len(rec.Metas)),
	})
	if err != nil {
		return nil, nil, nil, err
	}
	var tm stm.TM
	if cfg.ClockShards > 1 {
		tm, err = engines.NewDurableSharded(cfg.Engine, w, cfg.ClockShards, accountSharder)
	} else {
		tm, err = engines.NewDurable(cfg.Engine, w)
	}
	if err != nil {
		w.Close()
		return nil, nil, nil, err
	}
	return tm, w, rec, nil
}

// recover rebuilds the ledger from a recovery result: every meta record
// becomes an account whose balance/held come from the replay fold (falling
// back to the meta's initial balance for variables the snapshot+log carry no
// value for — an account created but never touched). The engine clock is then
// seeded past the highest replayed serial.
func (s *Server) recover(rec *wal.Recovered) error {
	if err := s.ledger.replay(rec); err != nil {
		return err
	}
	if sc, ok := s.tm.(shardClocked); ok && sc.ClockShards() > 1 {
		// Per-shard fast-forward: each domain's clock moves past its own
		// replayed floor, so a shard untouched since the snapshot is not
		// dragged up to the global maximum. If the log mentions a shard the
		// current layout does not have, the shard count changed across the
		// restart and the variable-to-shard mapping with it — fall back to
		// raising every line past the global maximum, which is always sound.
		k := sc.ClockShards()
		resharded := false
		for sh := range rec.ShardSerials {
			if int(sh) >= k {
				resharded = true
				break
			}
		}
		if resharded {
			if g, ok := s.tm.(clockSeeded); ok {
				g.SeedClock(rec.Serial)
			}
		} else {
			for sh, v := range rec.ShardSerials {
				sc.SeedClockShard(int(sh), v)
			}
		}
	} else if sc, ok := s.tm.(clockSeeded); ok {
		sc.SeedClock(rec.Serial)
	}
	if len(rec.Metas) > 0 || rec.Records > 0 {
		s.log.Info("wal recovery complete",
			"dir", s.cfg.WALDir, "accounts", len(rec.Metas), "records", rec.Records,
			"serial", rec.Serial, "snapshotSerial", rec.SnapshotSerial, "torn", rec.Torn)
	}
	return nil
}

// replay re-creates the recovered accounts in meta order. No meta is appended
// (these creations are already in the log); the variable-id assertion is the
// recovery oracle for the prediction scheme described above.
func (l *Ledger) replay(rec *wal.Recovered) error {
	nextID := uint64(1)
	for i, payload := range rec.Metas {
		var m accountMeta
		if err := json.Unmarshal(payload, &m); err != nil {
			return fmt.Errorf("server: meta record %d: %w", i, err)
		}
		bal, err := asInt64(rec.Value(nextID, m.Balance))
		if err != nil {
			return fmt.Errorf("server: account %q balance: %w", m.ID, err)
		}
		held, err := asInt64(rec.Value(nextID+1, int64(0)))
		if err != nil {
			return fmt.Errorf("server: account %q held: %w", m.ID, err)
		}
		if err := l.recoverCreate(m.ID, bal, held, nextID, payload); err != nil {
			return err
		}
		nextID += 2
	}
	return nil
}

// recoverCreate installs one recovered account, asserting that the engine
// handed out exactly the variable ids the log's commit records refer to.
func (l *Ledger) recoverCreate(id string, balance, held int64, wantID uint64, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.accounts[id]; ok {
		return fmt.Errorf("server: duplicate account %q in recovered metas", id)
	}
	bal := stm.NewTVar(l.tm, balance)
	hld := stm.NewTVar(l.tm, held)
	if got := varID(bal); got != wantID {
		return fmt.Errorf("server: account %q balance var id %d, predicted %d", id, got, wantID)
	}
	if got := varID(hld); got != wantID+1 {
		return fmt.Errorf("server: account %q held var id %d, predicted %d", id, got, wantID+1)
	}
	l.register(id, &account{balance: bal, held: hld}, payload)
	return nil
}

// varID extracts the engine-assigned variable id (0 when the engine does not
// number its variables — never the case for the WAL-capable engines).
func varID(v *stm.TVar[int64]) uint64 {
	if iv, ok := v.Raw().(interface{ VarID() uint64 }); ok {
		return iv.VarID()
	}
	return 0
}

// asInt64 narrows a replayed value to the ledger's int64 domain.
func asInt64(v stm.Value) (int64, error) {
	switch n := v.(type) {
	case int64:
		return n, nil
	case int:
		return int64(n), nil
	case uint64:
		return int64(n), nil
	}
	return 0, fmt.Errorf("unexpected recovered value type %T", v)
}

// WAL exposes the log writer on a durable server (nil otherwise); tests and
// zero-loss clients gate acknowledgements on its Err.
func (s *Server) WAL() *wal.Writer { return s.wal }

// Checkpoint writes a durable snapshot of the full ledger and prunes the log
// segments it covers. The protocol and its correctness argument (DESIGN.md
// §16):
//
//  1. Under the registry write lock, copy the meta payloads and rotate the
//     log. The lock freezes creation, so every meta record in a pre-rotation
//     (prunable) segment is in the copy; rotation guarantees every commit
//     record appended so far lives in a segment below the returned sequence.
//  2. Sample the engine clock c0 after the rotation. Both engines bump the
//     clock before appending, so any record in a prunable segment has
//     serial ≤ c0.
//  3. Read every account in one read-only transaction started after c0. The
//     engines publish a commit's versions only at lock release, which happens
//     after its append and before its acknowledgement — so every record with
//     serial ≤ c0 is fully visible to this read, and its effect (or a later
//     overwrite, which replay prefers anyway) is in the values captured here.
//  4. Write the snapshot with Serial = c0 under the rotation sequence, then
//     prune segments below it. Replay skips records with serial ≤ c0 (the
//     snapshot covers them) and folds the retained suffix on top.
//
// Checkpoints serialize on ckptMu; concurrent commits and creations are not
// blocked outside the brief step-1 critical section.
func (s *Server) Checkpoint() error {
	if s.wal == nil {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	l := s.ledger
	l.mu.Lock()
	metas := make([][]byte, len(l.metas))
	copy(metas, l.metas)
	accs := make([]*account, len(l.order))
	for i, id := range l.order {
		accs[i] = l.accounts[id]
	}
	seq, err := s.wal.Rotate()
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("server: checkpoint rotate: %w", err)
	}

	c, ok := s.tm.(clocked)
	if !ok {
		return fmt.Errorf("server: engine %T has no commit clock; cannot checkpoint", s.tm)
	}
	snap := &wal.Snapshot{
		Serial: c.Clock(),
		Metas:  metas,
		Values: make(map[uint64]wal.Value, 2*len(accs)),
	}
	if sc, ok := s.tm.(shardClocked); ok {
		// Partitioned clock: capture the whole vector c0[s] (a fenced
		// consistent cut). Step 2's argument then holds per shard — a record
		// in a prunable segment has serial ≤ c0[s] on every shard it touched —
		// and replay's per-shard coverage rule consumes the vector directly.
		// Serial becomes the vector maximum: serials from different shards are
		// not comparable, and the global floor must dominate them all.
		if vec := sc.ClockVec(nil); len(vec) > 1 {
			snap.ShardSerials = vec
			snap.Serial = 0
			for _, v := range vec {
				if v > snap.Serial {
					snap.Serial = v
				}
			}
		}
	}
	if err := stm.Atomically(s.tm, true, func(tx stm.Tx) error {
		clear(snap.Values) // the body may re-run
		for _, a := range accs {
			snap.Values[varID(a.balance)] = a.balance.Get(tx)
			snap.Values[varID(a.held)] = a.held.Get(tx)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("server: checkpoint scan: %w", err)
	}
	if err := wal.WriteSnapshot(s.wal.Dir(), seq, snap); err != nil {
		return fmt.Errorf("server: checkpoint write: %w", err)
	}
	if err := s.wal.Prune(seq); err != nil {
		return fmt.Errorf("server: checkpoint prune: %w", err)
	}
	s.log.Info("checkpoint complete", "seq", seq, "serial", snap.Serial, "accounts", len(accs))
	return nil
}

// checkpointLoop runs periodic checkpoints until Close.
func (s *Server) checkpointLoop(every time.Duration) {
	defer close(s.snapDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.snapStop:
			return
		case <-t.C:
			if err := s.Checkpoint(); err != nil {
				s.log.Warn("periodic checkpoint failed", "err", err)
			}
		}
	}
}
