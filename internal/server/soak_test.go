package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/engines"
	"repro/internal/server"
	"repro/internal/stm/stmtest"
	"repro/internal/xrand"
)

// chaosSeed returns the seed a soak runs under: def normally, or
// TWM_CHAOS_SEED when set (replaying a failure). Always logged, so a failing
// soak names the exact seed that reproduces it.
func chaosSeed(t *testing.T, def uint64) uint64 {
	t.Helper()
	seed := def
	if env := os.Getenv("TWM_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseUint(env, 0, 64)
		if err != nil {
			t.Fatalf("bad TWM_CHAOS_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("chaos seed %#x (replay with TWM_CHAOS_SEED=%#x)", seed, seed)
	return seed
}

// TestServerChaosSoak drives the full HTTP stack — real TCP listener, real
// request contexts — over a fault-injected engine: spurious mid-transaction
// aborts, barrier delays, forced commit failures and commit stalls, exactly
// the schedule chaos manufactures for the engine soaks, now with the server's
// request→transaction lifecycle on top. Invariants checked:
//
//   - conservation: transfers move money, reserve/release only shuffle the
//     held slice, so the audit's TotalBalance equals the seeded total and
//     TotalHeld equals (committed reserves − committed releases) as counted
//     from 2xx responses — a 200 is a commit promise, chaos or no chaos;
//   - liveness: the soak commits a nonzero number of updates through the
//     noise (the contention machinery digests injected failures);
//   - no leaks: every async transaction goroutine, HTTP goroutine and the
//     watchdog wind down with the test.
func TestServerChaosSoak(t *testing.T) {
	stmtest.CheckGoroutines(t)
	seed := chaosSeed(t, 0xC0FFEE)

	const accounts = 16
	const initial = 1_000
	tm := chaos.New(engines.MustNew("twm"), chaos.Options{
		Seed:           seed,
		AbortProb:      0.02,
		DelayProb:      0.02,
		CommitFailProb: 0.05,
		StallProb:      0.01,
	})
	s, err := server.New(server.Config{
		TM:             tm,
		Accounts:       accounts,
		InitialBalance: initial,
		GateLimit:      8,
		GateWait:       50 * time.Millisecond,
		RequestTimeout: time.Second,
		Logger:         quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	client := hs.Client()

	workers := 8
	perWorker := 60
	if testing.Short() {
		workers, perWorker = 4, 30
	}
	var reservedCommitted, releasedCommitted atomic.Int64
	var statuses [600]atomic.Uint64 // indexed by HTTP status
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(xrand.Mix(seed + uint64(w) + 1))
			for i := 0; i < perWorker; i++ {
				var path, body string
				kind := rng.Intn(10)
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				for to == from {
					to = rng.Intn(accounts)
				}
				switch {
				case kind < 6: // transfers dominate
					path = "/v1/transfer"
					body = fmt.Sprintf(`{"from":"%d","to":"%d","amount":%d}`, from, to, 1+rng.Intn(20))
				case kind < 8:
					path = "/v1/reserve"
					body = fmt.Sprintf(`{"account":"%d","amount":%d}`, from, 1+rng.Intn(10))
				case kind < 9:
					path = "/v1/release"
					body = fmt.Sprintf(`{"account":"%d","amount":%d}`, from, 1+rng.Intn(10))
				default: // mv-permissive read-only scan under the churn
					resp, err := client.Get(hs.URL + "/v1/audit")
					if err != nil {
						t.Errorf("audit: %v", err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					statuses[resp.StatusCode].Add(1)
					continue
				}
				resp, err := client.Post(hs.URL+path, "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				statuses[resp.StatusCode].Add(1)
				if resp.StatusCode == http.StatusOK {
					var amt struct{ Amount int64 }
					_ = json.Unmarshal([]byte(body), &amt)
					switch path {
					case "/v1/reserve":
						reservedCommitted.Add(amt.Amount)
					case "/v1/release":
						releasedCommitted.Add(amt.Amount)
					}
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()

	var counts []string
	for code := range statuses {
		if n := statuses[code].Load(); n > 0 {
			counts = append(counts, fmt.Sprintf("%d:%d", code, n))
		}
	}
	t.Logf("status counts: %s", strings.Join(counts, " "))
	if statuses[http.StatusOK].Load() == 0 {
		t.Fatal("no request committed through the chaos")
	}
	for code := range statuses {
		switch code {
		case http.StatusOK, http.StatusConflict, http.StatusTooManyRequests,
			http.StatusGatewayTimeout, server.StatusClientClosedRequest:
		default:
			if n := statuses[code].Load(); n > 0 {
				t.Errorf("unexpected status %d (%d times)", code, n)
			}
		}
	}

	// Conservation audit, read through the API like any client would.
	resp, err := client.Get(hs.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	var audit struct {
		Accounts               int
		TotalBalance, TotalHeld int64
	}
	if err := json.NewDecoder(resp.Body).Decode(&audit); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if audit.Accounts != accounts || audit.TotalBalance != accounts*initial {
		t.Errorf("money not conserved: %+v, want %d across %d accounts", audit, accounts*initial, accounts)
	}
	if want := reservedCommitted.Load() - releasedCommitted.Load(); audit.TotalHeld != want {
		t.Errorf("held = %d, want %d (committed reserves %d − releases %d)",
			audit.TotalHeld, want, reservedCommitted.Load(), releasedCommitted.Load())
	}
}
