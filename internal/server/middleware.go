package server

import (
	"context"
	"net/http"
	"runtime/debug"
	"time"
)

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

// recoveryMiddleware is the outermost layer: a panic anywhere in the handler
// stack answers 500 and the process keeps serving. Transaction-body panics
// normally never reach here — the async lifecycle contains them into
// *stm.PanicError futures and writeError maps them — so anything recovered
// here is a bug in handler code itself, logged with its stack.
//
// http.ErrAbortHandler is re-panicked: it is net/http's own control flow for
// deliberately torn-down responses, not an error.
func (s *Server) recoveryMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.metrics.Panics.Add(1)
				s.log.Error("handler panic recovered",
					"method", r.Method, "path", r.URL.Path, "value", rec, "stack", string(debug.Stack()))
				// Best effort: if the handler already wrote, this is a no-op.
				writeErrJSON(w, http.StatusInternalServerError, "internal", http.ErrAbortHandler)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// loggingMiddleware emits one structured line per request and counts it.
func (s *Server) loggingMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.Requests.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.log.Debug("request",
			"method", r.Method, "path", r.URL.Path,
			"status", sw.status, "dur", time.Since(start))
	})
}

// timeoutMiddleware derives the per-request transaction deadline. The
// deadline propagates into the retry loop (AtomicallyCtx / the gated async
// path), so a transaction livelocked by contention gives up with a
// *stm.CancelledError that writeError turns into a 504 — requests never hang
// past the bound.
func (s *Server) timeoutMiddleware(next http.Handler) http.Handler {
	if s.cfg.RequestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
