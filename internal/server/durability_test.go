package server_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/server"
)

// durableConfig is the base durable-server config for restart tests: no
// watchdog and no periodic checkpoints, so the tests control every durability
// event themselves.
func durableConfig(dir string) server.Config {
	return server.Config{
		Engine:         "twm",
		Accounts:       4,
		InitialBalance: 1000,
		WALDir:         dir,
		SnapshotEvery:  -1,
		WatchdogEvery:  -1,
		Logger:         quietLogger(),
	}
}

func getBalance(t *testing.T, h http.Handler, id string) (balance, held int64) {
	t.Helper()
	rr := get(h, "/v1/accounts/"+id)
	if rr.Code != http.StatusOK {
		t.Fatalf("GET %s: %d %s", id, rr.Code, rr.Body)
	}
	var v struct {
		Balance int64 `json:"balance"`
		Held    int64 `json:"held"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	return v.Balance, v.Held
}

func mustPost(t *testing.T, h http.Handler, path, body string) {
	t.Helper()
	rr := post(h, path, body)
	if rr.Code != http.StatusOK && rr.Code != http.StatusCreated {
		t.Fatalf("POST %s: %d %s", path, rr.Code, rr.Body)
	}
}

// TestDurableRestartZeroLoss is the acceptance walk: acknowledged writes (at
// the default fsync-per-commit policy) survive a clean restart via the final
// checkpoint, survive a second crash-style restart (log closed with no
// checkpoint) via log replay, and dynamically created accounts come back from
// their meta records.
func TestDurableRestartZeroLoss(t *testing.T) {
	dir := t.TempDir()

	s1, err := server.New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	h := s1.Handler()
	mustPost(t, h, "/v1/deposit", `{"account":"0","amount":100}`)
	mustPost(t, h, "/v1/transfer", `{"from":"1","to":"2","amount":250}`)
	mustPost(t, h, "/v1/reserve", `{"account":"3","amount":50}`)
	mustPost(t, h, "/v1/accounts", `{"id":"extra","balance":500}`)
	mustPost(t, h, "/v1/deposit", `{"account":"extra","amount":25}`)
	s1.Close() // clean shutdown: final checkpoint + log close

	if snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap")); len(snaps) != 1 {
		t.Fatalf("want exactly one snapshot after clean close, got %v", snaps)
	}

	s2, err := server.New(durableConfig(dir))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	h2 := s2.Handler()
	for _, tc := range []struct {
		id            string
		balance, held int64
	}{
		{"0", 1100, 0}, {"1", 750, 0}, {"2", 1250, 0}, {"3", 1000, 50}, {"extra", 525, 0},
	} {
		if b, hd := getBalance(t, h2, tc.id); b != tc.balance || hd != tc.held {
			t.Errorf("after restart, account %s: balance=%d held=%d, want %d/%d", tc.id, b, hd, tc.balance, tc.held)
		}
	}

	// Second generation: more acknowledged writes, then a crash-style stop —
	// the log is closed with no checkpoint, so the next boot must replay the
	// snapshot plus the post-checkpoint log suffix.
	mustPost(t, h2, "/v1/deposit", `{"account":"extra","amount":75}`)
	mustPost(t, h2, "/v1/release", `{"account":"3","amount":20}`)
	s2.WAL().Close()
	s2.Close() // checkpoint fails against the closed log; that is the crash shape

	s3, err := server.New(durableConfig(dir))
	if err != nil {
		t.Fatalf("crash restart: %v", err)
	}
	defer s3.Close()
	h3 := s3.Handler()
	if b, _ := getBalance(t, h3, "extra"); b != 600 {
		t.Errorf("after crash restart, extra balance=%d, want 600", b)
	}
	if _, hd := getBalance(t, h3, "3"); hd != 30 {
		t.Errorf("after crash restart, account 3 held=%d, want 30", hd)
	}

	// The audit total is the conservation invariant across both restarts.
	rr := get(h3, "/v1/audit")
	var audit struct {
		Accounts     int   `json:"accounts"`
		TotalBalance int64 `json:"totalBalance"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &audit); err != nil {
		t.Fatal(err)
	}
	if audit.Accounts != 5 || audit.TotalBalance != 4*1000+100+500+25+75 {
		t.Errorf("audit after two restarts: %+v", audit)
	}
}

// TestDurableCheckpointPrune: an explicit checkpoint prunes the log down to
// the active segment, and a restart from snapshot+suffix reproduces the
// state.
func TestDurableCheckpointPrune(t *testing.T) {
	dir := t.TempDir()
	s, err := server.New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	for i := 0; i < 10; i++ {
		mustPost(t, h, "/v1/transfer", `{"from":"0","to":"1","amount":10}`)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("checkpoint must prune to the active segment, got %v", segs)
	}
	mustPost(t, h, "/v1/transfer", `{"from":"0","to":"1","amount":5}`) // post-checkpoint suffix
	s.WAL().Close()
	s.Close()

	s2, err := server.New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if b, _ := getBalance(t, s2.Handler(), "1"); b != 1105 {
		t.Errorf("account 1 after checkpointed restart: %d, want 1105", b)
	}
}

// TestSlowHeaderCutOff: a client that dribbles its request header must be cut
// off by ReadHeaderTimeout instead of parking a connection (and its goroutine)
// forever — the slow-loris regression for the http.Server hardening.
func TestSlowHeaderCutOff(t *testing.T) {
	s := newTestServer(t, server.Config{
		Engine: "twm", Accounts: 2, InitialBalance: 100,
		ReadHeaderTimeout: 150 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln, time.Second) }()
	defer func() { cancel(); <-served }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send an eternally unfinished header and wait for the server to hang up.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x\r\nX-Slow: ")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered an unfinished header")
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("server kept the slow-header connection for %v", waited)
	}
}
