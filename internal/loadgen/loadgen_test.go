package loadgen_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/stm/stmtest"
)

// TestInProcessSmoke is the CI gate for the whole serving pipeline: boot a
// real server per engine on loopback, offer a second of open-loop mixed
// traffic, and require nonzero commits, no unexplained failures, and a fully
// drained goroutine set — the same conditions the committed BENCH_server.json
// artifact is produced under, at a fraction of the duration.
func TestInProcessSmoke(t *testing.T) {
	stmtest.CheckGoroutines(t)
	engines := []string{"twm", "tl2"}
	if testing.Short() {
		engines = engines[:1]
	}
	cfg := loadgen.Config{
		Rate:      200,
		Duration:  time.Second,
		Accounts:  64,
		ZipfS:     1.1,
		UpdatePct: 0.5,
		Seed:      42,
	}
	art, err := loadgen.RunInProcess(context.Background(), engines, cfg, loadgen.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Engines) != len(engines) {
		t.Fatalf("got %d results, want %d", len(art.Engines), len(engines))
	}
	for _, res := range art.Engines {
		t.Logf("%s: sent=%d ok=%d shed=%d cancel=%d err=%d p50=%.2fms p99=%.2fms",
			res.Engine, res.All.Sent, res.All.OK, res.All.Shed, res.All.Cancelled,
			res.All.Errors, res.All.P50ms, res.All.P99ms)
		if res.All.OK == 0 {
			t.Errorf("%s: no request committed", res.Engine)
		}
		if res.All.Errors > 0 {
			t.Errorf("%s: %d transport/5xx errors under nominal load", res.Engine, res.All.Errors)
		}
		if res.EngineCommits == 0 {
			t.Errorf("%s: engine counted no commits", res.Engine)
		}
		if res.LeakedGoroutines != 0 {
			t.Errorf("%s: %d goroutines leaked past drain", res.Engine, res.LeakedGoroutines)
		}
		if res.All.OK > 0 && res.All.P50ms <= 0 {
			t.Errorf("%s: p50 not computed", res.Engine)
		}
	}

	// The artifact must round-trip as JSON — it gets committed and diffed.
	var buf bytes.Buffer
	if err := art.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back loadgen.Artifact
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if back.Experiment != "server_latency_ab" || len(back.Engines) != len(engines) {
		t.Errorf("round-tripped artifact mangled: %+v", back)
	}
}

// TestRunSeedReplay pins the open-loop generator's determinism: the same seed
// must produce the same request sequence (counted per class), or
// TWM_CHAOS_SEED-style replay debugging is fiction.
func TestRunSeedReplay(t *testing.T) {
	stmtest.CheckGoroutines(t)
	cfg := loadgen.Config{
		Rate:      400,
		Duration:  500 * time.Millisecond,
		Accounts:  32,
		UpdatePct: 0.3,
		Seed:      7,
	}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.Update.Sent != b.Update.Sent || a.ReadOnly.Sent != b.ReadOnly.Sent {
		t.Errorf("same seed, different schedule: %d/%d updates, %d/%d reads",
			a.Update.Sent, b.Update.Sent, a.ReadOnly.Sent, b.ReadOnly.Sent)
	}
}

func mustRun(t *testing.T, cfg loadgen.Config) loadgen.Result {
	t.Helper()
	art, err := loadgen.RunInProcess(context.Background(), []string{"twm"}, cfg, loadgen.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return art.Engines[0]
}
