package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"runtime"
	"time"

	"repro/internal/server"
)

// Artifact is the committed BENCH_server.json shape: one load configuration
// applied to each engine under test, in sequence, on the same machine. Cells
// are directly comparable because the arrival schedule and key draws replay
// from the same seed for every engine.
type Artifact struct {
	Experiment string   `json:"experiment"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	Config     Config   `json:"config"`
	Engines    []Result `json:"engines"`
}

// WriteJSON emits the artifact with stable indentation so successive runs
// diff cleanly when committed to the repository.
func (a *Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// ServerOptions shapes the in-process server each engine is mounted behind.
// Zero values take the server package's defaults.
type ServerOptions struct {
	GateLimit      int
	GateWait       time.Duration
	RequestTimeout time.Duration
	Drain          time.Duration
}

// RunInProcess A/B-tests engines under one load Config: for each engine it
// boots a twm-server on a loopback listener, offers the identical (seeded)
// load with Run, gracefully drains the server, and verifies the whole stack
// wound down (LeakedGoroutines in each Result). Engines run sequentially so
// they never compete for the machine.
func RunInProcess(ctx context.Context, engineNames []string, cfg Config, opts ServerOptions) (*Artifact, error) {
	cfg.fill()
	if opts.Drain <= 0 {
		opts.Drain = 5 * time.Second
	}
	art := &Artifact{
		Experiment: "server_latency_ab",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Config:     cfg,
	}
	for _, name := range engineNames {
		res, err := runOne(ctx, name, cfg, opts)
		if err != nil {
			return nil, fmt.Errorf("engine %s: %w", name, err)
		}
		art.Engines = append(art.Engines, res)
	}
	return art, nil
}

func runOne(ctx context.Context, engine string, cfg Config, opts ServerOptions) (Result, error) {
	baseline := runtime.NumGoroutine()

	s, err := server.New(server.Config{
		Engine:         engine,
		Accounts:       cfg.Accounts,
		InitialBalance: 1 << 30, // deep pockets: domain refusals would pollute the latency A/B
		GateLimit:      opts.GateLimit,
		GateWait:       opts.GateWait,
		RequestTimeout: opts.RequestTimeout,
		ClockShards:    cfg.ClockShards,
		// The measurement is the HTTP responses; server logs would only skew
		// it (stderr writes on the serving path) and flood the bench output.
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		return Result{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return Result{}, err
	}
	srvCtx, stop := context.WithCancel(ctx)
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(srvCtx, ln, opts.Drain) }()

	res, runErr := Run(ctx, "http://"+ln.Addr().String(), cfg)
	res.Engine = engine

	snap := s.TM().Stats().Snapshot()
	res.EngineStarts = snap.Starts
	res.EngineCommits = snap.Commits + snap.ROCommits
	res.EngineAborts = snap.Aborts
	m := s.Metrics()
	res.ServerSheds = m.Sheds.Load()
	res.ServerCancels = m.Cancels.Load()

	stop()
	err = <-serveErr
	s.Close()
	if runErr == nil {
		runErr = err
	}

	// Post-drain leak check: give the runtime a moment to retire HTTP and
	// async-transaction goroutines, then record any excess over the pre-start
	// baseline. A nonzero value in a committed artifact is a red flag.
	deadline := time.Now().Add(2 * time.Second)
	leaked := runtime.NumGoroutine() - baseline
	for leaked > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		leaked = runtime.NumGoroutine() - baseline
	}
	res.LeakedGoroutines = max(leaked, 0)
	return res, runErr
}
