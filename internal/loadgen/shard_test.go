package loadgen

import (
	"testing"

	"repro/internal/xrand"
)

// TestAlignShard checks the partition-aware destination draw: the adjusted
// index stays in range, lands in the requested residue class (same shard or a
// different one), and same-shard draws avoid the source account whenever the
// shard holds more than one.
func TestAlignShard(t *testing.T) {
	rng := xrand.New(xrand.Mix(7))
	for _, tc := range []struct{ accounts, k int }{
		{1024, 4}, {1024, 16}, {100, 8}, {17, 4}, {5, 4},
	} {
		for i := 0; i < 2000; i++ {
			from := rng.Intn(tc.accounts)
			to := rng.Intn(tc.accounts)
			cross := i%2 == 0
			got := alignShard(rng, from, to, tc.accounts, tc.k, cross)
			if got < 0 || got >= tc.accounts {
				t.Fatalf("accounts=%d k=%d: alignShard(%d,%d,cross=%v) = %d out of range",
					tc.accounts, tc.k, from, to, cross, got)
			}
			sameShard := got%tc.k == from%tc.k
			if cross && sameShard {
				t.Fatalf("accounts=%d k=%d: cross draw %d shares shard with %d",
					tc.accounts, tc.k, got, from)
			}
			if !cross {
				// from's shard holds more than one account iff from±k is in
				// range; only then can the draw both stay in the shard and
				// avoid the source. Single-account shards fall back to any
				// other account (already covered by the range check above).
				multi := from+tc.k < tc.accounts || from-tc.k >= 0
				if multi && !sameShard {
					t.Fatalf("accounts=%d k=%d: same-shard draw %d left shard of %d",
						tc.accounts, tc.k, got, from)
				}
				if multi && got == from {
					t.Fatalf("accounts=%d k=%d: same-shard draw returned the source %d",
						tc.accounts, tc.k, from)
				}
			}
		}
	}
}
