// Package loadgen is the open-loop load generator for the twm-server front
// end (cmd/twm-load drives it). Open loop is the property that matters:
// arrivals are scheduled by a rate process, not by completions, so a slow or
// shedding server faces the same offered load a real population would apply
// — queueing delay shows up in the latency distribution instead of silently
// throttling the generator (the coordinated-omission trap closed-loop
// harnesses fall into). Latency is therefore measured from each request's
// *scheduled* arrival instant to its response, not from when a goroutine got
// around to sending it.
//
// The workload is the ledger API's mixed traffic: updates (transfers between
// Zipf-skewed accounts) and read-only balance lookups, in a configurable
// ratio. Results report p50/p99/p999/max latency per class plus outcome
// counts — commits, domain conflicts, 429 sheds, 499/504 cancels — the
// acceptance signals ISSUE 8 names.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/xrand"
)

// Config parameterizes one load run against one server.
type Config struct {
	// Rate is the offered load in arrivals/second (open loop). Default 500.
	Rate float64 `json:"rate"`
	// Duration is how long arrivals are generated. Default 5s.
	Duration time.Duration `json:"-"`
	// DurationMS mirrors Duration in the JSON artifact.
	DurationMS int64 `json:"duration_ms"`
	// Accounts is the key space; the server must have at least this many
	// pre-created accounts named "0".."N-1". Default 1024.
	Accounts int `json:"accounts"`
	// ZipfS is the account-selection skew (0 uniform; 1.1 ≈ web traffic).
	ZipfS float64 `json:"zipf_s"`
	// UpdatePct is the fraction of arrivals that are transfers (the rest are
	// read-only balance lookups). Default 0.5.
	UpdatePct float64 `json:"update_pct"`
	// Amount is the per-transfer amount (default 1; small keeps insufficient-
	// funds conflicts rare so the abort machinery, not the domain, is on
	// trial).
	Amount int64 `json:"amount"`
	// ClockShards tells the generator the server's partitioned-clock layout
	// (DESIGN.md §17): the server's account sharder colocates account index i
	// on clock shard i % ClockShards. 0 or 1 disables partition-aware draws.
	ClockShards int `json:"clock_shards,omitempty"`
	// CrossShardFrac is the fraction of transfers whose two accounts live on
	// different clock shards (only meaningful with ClockShards > 1). The
	// remaining transfers stay within the source account's shard, so a 0
	// setting offers pure single-shard update traffic — the zero-coordination
	// fast path — and 1 makes every transfer pay the cross-shard fence.
	CrossShardFrac float64 `json:"cross_shard_frac,omitempty"`
	// Seed makes the arrival schedule and key draws replayable.
	Seed uint64 `json:"seed"`
	// Timeout bounds each HTTP request client-side (default 5s — above the
	// server's own transaction deadline, so server-side statuses win).
	Timeout time.Duration `json:"-"`
	// MaxInFlight caps concurrently outstanding requests (default 4096). An
	// arrival past the cap is counted as Dropped rather than blocking the
	// schedule — the generator itself must never close the loop.
	MaxInFlight int `json:"max_in_flight"`
}

func (c *Config) fill() {
	if c.Rate <= 0 {
		c.Rate = 500
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	c.DurationMS = c.Duration.Milliseconds()
	if c.Accounts <= 0 {
		c.Accounts = 1024
	}
	if c.UpdatePct < 0 || c.UpdatePct > 1 {
		c.UpdatePct = 0.5
	}
	if c.Amount <= 0 {
		c.Amount = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CrossShardFrac < 0 || c.CrossShardFrac > 1 {
		c.CrossShardFrac = 0
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4096
	}
}

// OpStats aggregates one traffic class (updates, read-only, or all).
type OpStats struct {
	Sent      uint64 `json:"sent"`
	OK        uint64 `json:"ok"`        // 2xx: committed
	Conflicts uint64 `json:"conflicts"` // 4xx domain refusals (insufficient funds, ...)
	Shed      uint64 `json:"shed"`      // 429: admission gate refused
	Cancelled uint64 `json:"cancelled"` // 499/504: cancelled or timed out
	Errors    uint64 `json:"errors"`    // transport failures and 5xx
	Dropped   uint64 `json:"dropped"`   // arrivals past MaxInFlight, never sent

	P50ms  float64 `json:"p50_ms"`
	P99ms  float64 `json:"p99_ms"`
	P999ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// Result is one engine's (or one server's) load run.
type Result struct {
	Engine       string  `json:"engine"`
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"` // sent / wall time

	Update   OpStats `json:"update"`
	ReadOnly OpStats `json:"read_only"`
	All      OpStats `json:"all"`

	// Engine-side counters sampled across the run (zero when the harness has
	// no in-process engine handle, e.g. driving an external URL).
	EngineStarts  uint64 `json:"engine_starts,omitempty"`
	EngineCommits uint64 `json:"engine_commits,omitempty"`
	EngineAborts  uint64 `json:"engine_aborts,omitempty"`
	// Server-side outcome counters (same caveat).
	ServerSheds   uint64 `json:"server_sheds,omitempty"`
	ServerCancels uint64 `json:"server_cancels,omitempty"`
	// LeakedGoroutines is the post-drain goroutine excess over the pre-start
	// baseline (in-process harness only; 0 is the healthy value).
	LeakedGoroutines int `json:"leaked_goroutines"`
}

// sample is one completed request's measurement.
type sample struct {
	update  bool
	status  int // 0 = transport error
	latency time.Duration
}

// collector accumulates samples; one mutex is plenty at the rates the
// container sustains (the HTTP round trip dwarfs the append).
type collector struct {
	mu      sync.Mutex
	samples []sample
}

func (c *collector) add(s sample) {
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

// Run offers cfg's load to the server at baseURL and aggregates the outcome.
// ctx aborts the run early (the schedule stops; in-flight requests finish).
func Run(ctx context.Context, baseURL string, cfg Config) (Result, error) {
	cfg.fill()
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.MaxInFlight,
			MaxIdleConnsPerHost: cfg.MaxInFlight,
		},
	}
	defer client.CloseIdleConnections()

	zipf := xrand.NewZipf(cfg.Accounts, cfg.ZipfS)
	rng := xrand.New(xrand.Mix(cfg.Seed))
	col := &collector{samples: make([]sample, 0, int(cfg.Rate*cfg.Duration.Seconds())+16)}

	var wg sync.WaitGroup
	inflight := make(chan struct{}, cfg.MaxInFlight)
	var dropped struct {
		update, ro uint64
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	// Poisson arrivals: exponential interarrival times at the offered rate,
	// drawn from the seeded stream so a run is replayable.
	next := start
	for {
		next = next.Add(time.Duration(-math.Log(1-rng.Float64()) / cfg.Rate * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		if err := ctx.Err(); err != nil {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		update := rng.Float64() < cfg.UpdatePct
		var path, body string
		if update {
			from := zipf.Next(rng)
			to := zipf.Next(rng)
			if cfg.ClockShards > 1 {
				to = alignShard(rng, from, to, cfg.Accounts, cfg.ClockShards,
					rng.Float64() < cfg.CrossShardFrac)
			} else {
				for to == from {
					to = zipf.Next(rng)
				}
			}
			path = "/v1/transfer"
			body = fmt.Sprintf(`{"from":"%d","to":"%d","amount":%d}`, from, to, cfg.Amount)
		} else {
			path = fmt.Sprintf("/v1/accounts/%d", zipf.Next(rng))
		}
		select {
		case inflight <- struct{}{}:
		default:
			// The generator would close the loop if it blocked here; record
			// the arrival as dropped offered load instead.
			if update {
				dropped.update++
			} else {
				dropped.ro++
			}
			continue
		}
		scheduled := next
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-inflight }()
			status := fire(ctx, client, baseURL, path, body)
			col.add(sample{update: update, status: status, latency: time.Since(scheduled)})
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	res := Result{Engine: "external", OfferedRate: cfg.Rate}
	res.Update = summarize(col.samples, true)
	res.ReadOnly = summarize(col.samples, false)
	res.All = merge(col.samples)
	res.Update.Dropped, res.ReadOnly.Dropped = dropped.update, dropped.ro
	res.All.Dropped = dropped.update + dropped.ro
	res.AchievedRate = float64(res.All.Sent) / wall.Seconds()
	return res, nil
}

// alignShard maps a Zipf-drawn transfer destination onto the requested shard
// relation with the source: the server colocates account index i on clock
// shard i % k, so the destination's residue class decides whether the
// transfer's footprint spans one clock domain or two. The adjustment shifts
// the draw to the nearest index in the wanted residue class, preserving the
// Zipf rank (and hence the configured contention skew) within each shard.
func alignShard(rng *xrand.Rand, from, to, accounts, k int, cross bool) int {
	want := from % k
	if cross {
		want = (want + 1 + rng.Intn(k-1)) % k
	}
	to = to - to%k + want
	if to >= accounts {
		to -= k
	}
	if to < 0 {
		to = want % accounts
	}
	if !cross && to == from {
		to += k
		if to >= accounts {
			to = want
		}
		if to == from {
			// Degenerate layout (one account in the shard): any other account.
			to = (from + 1) % accounts
		}
	}
	return to
}

// fire sends one request and classifies the outcome by status (0 = transport
// error).
func fire(ctx context.Context, client *http.Client, baseURL, path, body string) int {
	var (
		resp *http.Response
		err  error
	)
	if body == "" {
		req, rerr := http.NewRequestWithContext(ctx, "GET", baseURL+path, nil)
		if rerr != nil {
			return 0
		}
		resp, err = client.Do(req)
	} else {
		req, rerr := http.NewRequestWithContext(ctx, "POST", baseURL+path, strings.NewReader(body))
		if rerr != nil {
			return 0
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err = client.Do(req)
	}
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// summarize aggregates the samples of one class.
func summarize(samples []sample, update bool) OpStats {
	var lat []time.Duration
	var st OpStats
	for _, s := range samples {
		if s.update != update {
			continue
		}
		classify(&st, s, &lat)
	}
	percentiles(&st, lat)
	return st
}

// merge aggregates all samples.
func merge(samples []sample) OpStats {
	var lat []time.Duration
	var st OpStats
	for _, s := range samples {
		classify(&st, s, &lat)
	}
	percentiles(&st, lat)
	return st
}

func classify(st *OpStats, s sample, lat *[]time.Duration) {
	st.Sent++
	switch {
	case s.status >= 200 && s.status < 300:
		st.OK++
		*lat = append(*lat, s.latency) // percentiles are over served requests
	case s.status == http.StatusTooManyRequests:
		st.Shed++
	case s.status == 499 || s.status == http.StatusGatewayTimeout:
		st.Cancelled++
	case s.status >= 400 && s.status < 500:
		st.Conflicts++
		*lat = append(*lat, s.latency) // a refusal is still a served answer
	default: // transport errors (0) and 5xx
		st.Errors++
	}
}

func percentiles(st *OpStats, lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	q := func(p float64) time.Duration {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	st.P50ms = ms(q(0.50))
	st.P99ms = ms(q(0.99))
	st.P999ms = ms(q(0.999))
	st.MaxMs = ms(lat[len(lat)-1])
	st.MeanMs = ms(sum / time.Duration(len(lat)))
}
