package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/stm"
)

// Recovered is the replayed durable state of a log directory.
type Recovered struct {
	// Serial is the highest serialization key seen anywhere (snapshot or
	// log). Seed the engine clock with it so post-recovery commits order
	// strictly after everything recovered.
	Serial uint64
	// Metas holds every application metadata payload in append order —
	// snapshot metas first, then log metas with higher sequence numbers.
	// Replaying them in order recreates variables with the same ids they
	// had before the crash.
	Metas [][]byte
	// Values maps variable id to its recovered value. Variables absent here
	// keep whatever initial value their meta replay assigns.
	Values map[uint64]stm.Value
	// Records counts replayed commit records; Torn reports that a torn
	// final record was truncated (expected after a crash mid-append).
	Records int
	Torn    bool
	// SnapshotSerial is the serial of the snapshot used, 0 when none.
	SnapshotSerial uint64
	// ShardSerials is the per-clock-shard max-Serial fold: for every shard a
	// commit record declared (shard 0 for unsharded records), the highest
	// Serial seen on that shard's number line, including the snapshot's
	// per-shard floor. Sharded engines fast-forward each shard's clock past
	// its entry; Serial above remains the global max across shards.
	ShardSerials map[uint32]uint64

	wins             map[uint64]winner // fold state: winning (Serial, Tie) per var
	snapShardSerials []uint64          // snapshot's per-shard serial vector, nil for scalar snapshots
}

// winner is the serialization key of the currently winning write of one
// variable during the replay fold.
type winner struct{ serial, tie uint64 }

// Value returns the recovered value of varID, or fallback when the durable
// state never wrote it.
func (r *Recovered) Value(varID uint64, fallback stm.Value) stm.Value {
	if v, ok := r.Values[varID]; ok {
		return v
	}
	return fallback
}

// Recover replays dir: the newest readable snapshot plus every commit record
// with Serial above it, folded per variable in serialization order (max
// Serial wins; equal Serial resolves to min Tie, matching the in-memory
// clash-elision rule). The fold is idempotent, so duplicated segments and
// re-delivered records are harmless. A torn or checksum-failed record at the
// tail of the newest segment is truncated (Torn=true) — that is the normal
// shape of a crash mid-append; the same damage anywhere else is corruption
// and fails loudly.
func Recover(dir string) (*Recovered, error) {
	out := &Recovered{
		Values:       make(map[uint64]stm.Value),
		wins:         make(map[uint64]winner),
		ShardSerials: make(map[uint32]uint64),
	}
	segs, snaps, err := listDir(dir)
	if err != nil {
		return nil, err
	}

	// Newest readable snapshot wins; damaged ones are skipped, not fatal —
	// older snapshots plus longer replay reproduce the same state.
	for i := len(snaps) - 1; i >= 0; i-- {
		s, err := readSnapshot(filepath.Join(dir, snaps[i].name))
		if err != nil {
			continue
		}
		out.SnapshotSerial = s.Serial
		out.Serial = s.Serial
		out.snapShardSerials = s.ShardSerials
		for sh, v := range s.ShardSerials {
			out.ShardSerials[uint32(sh)] = v
		}
		if len(s.ShardSerials) == 0 && s.Serial > 0 {
			out.ShardSerials[0] = s.Serial
		}
		out.Metas = append(out.Metas, s.Metas...)
		for id, v := range s.Values {
			// No fold entry: every surviving record has Serial above the
			// snapshot's and overrides the snapshot value unconditionally.
			out.Values[id] = v
		}
		break
	}
	nextMeta := uint64(len(out.Metas))

	for i, seg := range segs {
		last := i == len(segs)-1
		if err := out.replaySegment(filepath.Join(dir, seg.name), last, &nextMeta); err != nil {
			return nil, fmt.Errorf("wal: segment %s: %w", seg.name, err)
		}
		if out.Torn {
			break // nothing readable follows a torn tail
		}
	}
	return out, nil
}

// replaySegment folds one segment's records into out. In the final segment a
// structurally broken record marks a torn tail; elsewhere it is an error.
func (r *Recovered) replaySegment(path string, last bool, nextMeta *uint64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < len(segMagic) || string(raw[:len(segMagic)]) != segMagic {
		if last && len(raw) < len(segMagic) {
			r.Torn = true
			return nil
		}
		return errCorrupt
	}
	raw = raw[len(segMagic):]
	for len(raw) > 0 {
		body, rest, ok := nextRecord(raw)
		if !ok {
			if last {
				r.Torn = true
				return nil
			}
			return errCorrupt
		}
		raw = rest
		if err := r.apply(body, nextMeta); err != nil {
			return err
		}
	}
	return nil
}

// nextRecord slices one framed record off raw, verifying length and CRC.
func nextRecord(raw []byte) (body, rest []byte, ok bool) {
	if len(raw) < 4 {
		return nil, nil, false
	}
	n := int(binary.LittleEndian.Uint32(raw))
	if n < 1 || len(raw) < 4+n+4 {
		return nil, nil, false
	}
	body = raw[4 : 4+n]
	sum := binary.LittleEndian.Uint32(raw[4+n:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, nil, false
	}
	return body, raw[4+n+4:], true
}

// covered reports whether the snapshot value-covers rec. With a scalar
// snapshot the rule is the original serial comparison. With a per-shard
// snapshot vector, serials from different shards are not mutually comparable:
// a record is covered only if its Serial is at or below the snapshot's
// component for EVERY shard it touched — a record from a slow shard with a
// numerically small serial appended after the snapshot must replay, even when
// a fast shard pushed the scalar max far past it.
func (r *Recovered) covered(rec *stm.CommitRecord) bool {
	if len(r.snapShardSerials) == 0 {
		return rec.Serial <= r.SnapshotSerial
	}
	if len(rec.Shards) == 0 {
		return rec.Serial <= r.snapShardSerials[0]
	}
	for _, s := range rec.Shards {
		if int(s) >= len(r.snapShardSerials) || rec.Serial > r.snapShardSerials[s] {
			return false
		}
	}
	return true
}

// apply folds one record body.
func (r *Recovered) apply(body []byte, nextMeta *uint64) error {
	switch body[0] {
	case recCommit, recCommitSharded:
		recs, err := decodeCommitBody(body[1:], body[0] == recCommitSharded)
		if err != nil {
			return err
		}
		r.Records++
		for i := range recs {
			rec := &recs[i]
			if rec.Serial > r.Serial {
				r.Serial = rec.Serial
			}
			if len(rec.Shards) == 0 {
				if rec.Serial > r.ShardSerials[0] {
					r.ShardSerials[0] = rec.Serial
				}
			} else {
				for _, s := range rec.Shards {
					if rec.Serial > r.ShardSerials[s] {
						r.ShardSerials[s] = rec.Serial
					}
				}
			}
			if r.covered(rec) {
				continue // value-covered by the snapshot
			}
			for _, w := range rec.Writes {
				// Per-variable serialization fold: max Serial wins; equal
				// Serial means a time-warp clash elided the later natural
				// committer, so the smaller Tie is the readable version.
				// Idempotent under re-delivery.
				if cur, ok := r.wins[w.VarID]; ok {
					if rec.Serial < cur.serial ||
						(rec.Serial == cur.serial && rec.Tie >= cur.tie) {
						continue
					}
				}
				r.Values[w.VarID] = w.Value
				r.wins[w.VarID] = winner{rec.Serial, rec.Tie}
			}
		}
		return nil
	case recMeta:
		seq, payload, err := decodeMetaBody(body[1:])
		if err != nil {
			return err
		}
		switch {
		case seq < *nextMeta:
			return nil // covered by the snapshot or a duplicated segment
		case seq == *nextMeta:
			r.Metas = append(r.Metas, payload)
			*nextMeta++
			return nil
		default:
			return fmt.Errorf("%w: meta sequence gap (%d, want %d)", errCorrupt, seq, *nextMeta)
		}
	default:
		return errCorrupt
	}
}
