package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
)

// Snapshot is a point-in-time copy of engine state: the serialization clock
// S the snapshot read at, the application metadata records accepted so far
// (in append order — they define variable identity for replay), and the
// value of every variable as observed by one read-only transaction.
//
// The snapshot protocol (DESIGN.md §16) is: rotate the log to a fresh
// segment, run a read-only transaction that reads EVERY variable and capture
// its start clock as Serial, write the snapshot file, then prune segments
// below the rotation point. Because the read-only transaction semi-visibly
// stamps every variable it reads, no later committer can time-warp a version
// below Serial past it (the triad rule makes such a committer both source
// and target), so every record in the pruned segments is value-covered by
// the snapshot and every surviving record with Serial > S replays on top.
type Snapshot struct {
	Serial uint64
	Metas  [][]byte
	Values map[uint64]Value
	// ShardSerials is the per-clock-shard serial vector the snapshot read at
	// (index = shard id), set when the engine runs with ClockShards > 1. It
	// replaces the scalar Serial in replay's coverage rule: serials from
	// different shards are not mutually comparable, so a record is covered
	// only when its serial is at or below the component of every shard it
	// touched. Empty for unsharded engines — the snapshot file then stays
	// byte-identical to the pre-sharding format.
	ShardSerials []uint64
}

// Value aliases stm.Value without forcing snapshot consumers to import stm.
type Value = any

// WriteSnapshot durably writes s as the snapshot covering segments below
// seq: temp file, fsync, atomic rename, directory fsync. A crash at any
// point leaves either no snap-seq file or a complete one.
func WriteSnapshot(dir string, seq uint64, s *Snapshot) error {
	body := []byte{}
	body = appendU64(body, s.Serial)
	body = appendU32(body, uint32(len(s.Metas)))
	for _, m := range s.Metas {
		body = appendU32(body, uint32(len(m)))
		body = append(body, m...)
	}
	body = appendU32(body, uint32(len(s.Values)))
	for id, v := range s.Values {
		body = appendU64(body, id)
		var err error
		if body, err = encodeValue(body, v); err != nil {
			return err
		}
	}
	if len(s.ShardSerials) > 1 {
		// Optional trailing shard vector; absent on unsharded snapshots so
		// their bytes match the pre-sharding format exactly.
		body = appendU32(body, uint32(len(s.ShardSerials)))
		for _, v := range s.ShardSerials {
			body = appendU64(body, v)
		}
	}

	path := snapPath(dir, seq)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	out := append([]byte(snapMagic), appendU32(nil, uint32(len(body)))...)
	out = append(out, body...)
	out = appendU32(out, crc32.ChecksumIEEE(body))
	if _, err := f.Write(out); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// readSnapshot parses and CRC-checks one snapshot file.
func readSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(snapMagic)+8 || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, errCorrupt
	}
	raw = raw[len(snapMagic):]
	n := int(binary.LittleEndian.Uint32(raw))
	raw = raw[4:]
	if n < 0 || len(raw) != n+4 {
		return nil, errCorrupt
	}
	body, sum := raw[:n], binary.LittleEndian.Uint32(raw[n:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, errCorrupt
	}

	s := &Snapshot{Values: make(map[uint64]Value)}
	if len(body) < 12 {
		return nil, errCorrupt
	}
	s.Serial = binary.LittleEndian.Uint64(body)
	nm := int(binary.LittleEndian.Uint32(body[8:]))
	body = body[12:]
	for i := 0; i < nm; i++ {
		if len(body) < 4 {
			return nil, errCorrupt
		}
		l := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if l < 0 || len(body) < l {
			return nil, errCorrupt
		}
		s.Metas = append(s.Metas, append([]byte(nil), body[:l]...))
		body = body[l:]
	}
	if len(body) < 4 {
		return nil, errCorrupt
	}
	nv := int(binary.LittleEndian.Uint32(body))
	body = body[4:]
	for i := 0; i < nv; i++ {
		if len(body) < 8 {
			return nil, errCorrupt
		}
		id := binary.LittleEndian.Uint64(body)
		body = body[8:]
		val, rest, err := decodeValue(body)
		if err != nil {
			return nil, err
		}
		body = rest
		s.Values[id] = val
	}
	if len(body) > 0 {
		// Trailing per-shard serial vector (sharded snapshots only).
		if len(body) < 4 {
			return nil, errCorrupt
		}
		ns := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if ns < 2 || ns > 1<<16 || len(body) != 8*ns {
			return nil, errCorrupt
		}
		s.ShardSerials = make([]uint64, ns)
		for i := range s.ShardSerials {
			s.ShardSerials[i] = binary.LittleEndian.Uint64(body[8*i:])
		}
		body = nil
	}
	if len(body) != 0 {
		return nil, errCorrupt
	}
	return s, nil
}
