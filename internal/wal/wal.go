// Package wal is the durability subsystem: an append-only, checksummed,
// segment-rotating write-ahead log of committed write sets in time-warp
// commit order, periodic variable snapshots, and crash recovery by replay
// (DESIGN.md §16).
//
// The Writer implements stm.CommitLogger. Engines call Append with write
// locks held, before any version becomes visible, and Durable after install;
// because no write is visible before its record is appended and an fsync
// covers every prior append, a crash loses only a dependency-closed suffix
// of the history — the recovered state is always a serializable prefix.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stm"
)

// Policy selects when appended records are fsynced.
type Policy uint8

const (
	// SyncPerCommit fsyncs before any commit acknowledges: Durable blocks
	// until an fsync covering its LSN has completed. Concurrent waiters are
	// group-combined — one fsync serves every record appended before it
	// started — so the cost is one disk flush per combining window, not per
	// transaction. Zero acknowledged commits are lost on a crash.
	SyncPerCommit Policy = iota
	// SyncPerBatch is classic group commit: Durable blocks, but the fsync
	// fires only once BatchAppends records are pending or BatchWait has
	// elapsed since the first pending append. Acknowledged commits are still
	// never lost; the latency floor is the batch horizon.
	SyncPerBatch
	// SyncInterval trades the tail of durability for latency: Durable returns
	// immediately and a background ticker fsyncs every Interval. A crash
	// loses at most the last interval of acknowledged commits.
	SyncInterval
)

// String returns the config spelling of the policy.
func (p Policy) String() string {
	switch p {
	case SyncPerBatch:
		return "per-batch"
	case SyncInterval:
		return "interval"
	}
	return "per-commit"
}

// ParsePolicy parses the config spelling of a policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "per-commit", "":
		return SyncPerCommit, nil
	case "per-batch":
		return SyncPerBatch, nil
	case "interval":
		return SyncInterval, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (per-commit | per-batch | interval)", s)
}

// Hooks are fault-injection points around the writer's file operations; the
// chaos package's crash plans latch the writer through them. A non-nil error
// from a hook fails the operation and latches the writer (see Writer.Err).
type Hooks struct {
	BeforeAppend func() error
	AfterAppend  func() error
	BeforeSync   func() error
	AfterSync    func() error
}

func callHook(h func() error) error {
	if h == nil {
		return nil
	}
	return h()
}

// Options configures a Writer.
type Options struct {
	Dir          string
	Policy       Policy
	SegmentBytes int64         // rotate past this many bytes (default 8 MiB)
	BatchAppends int           // per-batch: fsync at this many pending appends (default 32)
	BatchWait    time.Duration // per-batch: max wait before syncing pending appends (default 2ms)
	Interval     time.Duration // interval policy period (default 50ms)
	MetaStart    uint64        // first meta sequence number (recovered meta count)
	Hooks        Hooks
}

func (o *Options) defaults() {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.BatchAppends == 0 {
		o.BatchAppends = 32
	}
	if o.BatchWait == 0 {
		o.BatchWait = 2 * time.Millisecond
	}
	if o.Interval == 0 {
		o.Interval = 50 * time.Millisecond
	}
}

// ErrClosed reports an operation on a closed writer.
var ErrClosed = errors.New("wal: writer closed")

// Writer is the append side of the log. It implements stm.CommitLogger.
//
// Failure latching: once any file operation (or injected hook) fails, the
// writer stays failed — every later Append returns the latched error, so
// engines abort new commits (stm.ReasonDurability) instead of acknowledging
// writes that will never reach disk. Records already synced remain durable.
type Writer struct {
	opts Options

	mu       sync.Mutex // file writes, rotation, latched error
	f        *os.File
	seq      uint64 // current segment sequence
	segBytes int64  // bytes written to the current segment
	metaSeq  uint64
	buf      []byte // encode scratch, reused across appends
	failed   error
	failedP  atomic.Pointer[error] // lock-free mirror of failed for Err

	appended atomic.Uint64 // records accepted (the LSN source)
	synced   atomic.Uint64 // records covered by a completed fsync

	syncMu sync.Mutex // serializes fsyncs (group-combining point)

	waitMu   sync.Mutex // per-batch waiter parking
	waitCond *sync.Cond

	kick   chan struct{} // per-batch: first-pending signal to the syncer
	quit   chan struct{}
	done   chan struct{}
	closed atomic.Bool
}

// Open creates (or reuses) dir and starts a fresh segment numbered after the
// highest existing one, so recovery artifacts are never overwritten. Call
// Recover first: Open itself neither reads nor replays old segments.
func Open(opts Options) (*Writer, error) {
	opts.defaults()
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	segs, _, err := listDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1].seq + 1
	}
	w := &Writer{
		opts:    opts,
		metaSeq: opts.MetaStart,
		kick:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	w.waitCond = sync.NewCond(&w.waitMu)
	if err := w.openSegment(next); err != nil {
		return nil, err
	}
	switch opts.Policy {
	case SyncPerBatch:
		go w.batchSyncer()
	case SyncInterval:
		go w.intervalSyncer()
	default:
		close(w.done)
	}
	return w, nil
}

// Dir returns the log directory.
func (w *Writer) Dir() string { return w.opts.Dir }

// Policy returns the configured fsync policy.
func (w *Writer) Policy() Policy { return w.opts.Policy }

// openSegment opens segment seq for writing; caller holds mu or is Open.
func (w *Writer) openSegment(seq uint64) error {
	f, err := os.OpenFile(segPath(w.opts.Dir, seq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return err
	}
	w.f, w.seq, w.segBytes = f, seq, int64(len(segMagic))
	return nil
}

// latch records the first failure; caller holds mu.
func (w *Writer) latch(err error) error {
	if w.failed == nil {
		w.failed = err
		w.failedP.Store(&err)
	}
	w.broadcast()
	return w.failed
}

// Err returns the latched failure, if any. It takes no lock, so the health
// watchdog and parked Durable waiters can poll it freely.
func (w *Writer) Err() error {
	if p := w.failedP.Load(); p != nil {
		return *p
	}
	return nil
}

// Append implements stm.CommitLogger: it stages the write sets of the
// transactions committing under one clock advance, in natural-commit order,
// and returns the record's LSN. The caller still holds the commit write
// locks, so nothing appended here is visible to other transactions yet.
func (w *Writer) Append(recs []stm.CommitRecord) (stm.LSN, error) {
	body, err := encodeCommitBody(nil, recs)
	if err != nil {
		return 0, err
	}
	return w.appendBody(body)
}

// AppendMeta appends an application metadata record (e.g. an account
// creation) and forces it durable before returning, regardless of policy:
// metadata records define variable identity for replay, and they are rare
// enough that an unconditional fsync costs nothing measurable.
func (w *Writer) AppendMeta(payload []byte) error {
	w.mu.Lock()
	body := encodeMetaBody(nil, w.metaSeq, payload)
	lsn, err := w.appendLocked(body)
	if err == nil {
		w.metaSeq++ // seq consumed only by a successful append
	}
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return w.syncTo(uint64(lsn))
}

func (w *Writer) appendBody(body []byte) (stm.LSN, error) {
	w.mu.Lock()
	lsn, err := w.appendLocked(body)
	w.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if w.opts.Policy == SyncPerBatch {
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
	return lsn, nil
}

// appendLocked frames and writes one record; caller holds mu.
func (w *Writer) appendLocked(body []byte) (stm.LSN, error) {
	if w.failed != nil {
		return 0, w.failed
	}
	if w.closed.Load() {
		return 0, ErrClosed
	}
	if err := callHook(w.opts.Hooks.BeforeAppend); err != nil {
		return 0, w.latch(err)
	}
	if w.segBytes >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	w.buf = frame(w.buf[:0], body)
	if _, err := w.f.Write(w.buf); err != nil {
		return 0, w.latch(err)
	}
	w.segBytes += int64(len(w.buf))
	lsn := stm.LSN(w.appended.Add(1))
	if err := callHook(w.opts.Hooks.AfterAppend); err != nil {
		// The record reached the OS; treat the injected fault as striking
		// after the write — the commit still fails, and recovery may or may
		// not see the record, exactly like a real crash in this window.
		return 0, w.latch(err)
	}
	return lsn, nil
}

// Durable implements stm.CommitLogger: it blocks until the record at lsn is
// durable under the configured policy.
func (w *Writer) Durable(lsn stm.LSN) error {
	if w.synced.Load() >= uint64(lsn) {
		return nil
	}
	switch w.opts.Policy {
	case SyncInterval:
		return nil
	case SyncPerBatch:
		w.waitMu.Lock()
		defer w.waitMu.Unlock()
		for w.synced.Load() < uint64(lsn) {
			if err := w.Err(); err != nil {
				return err
			}
			if w.closed.Load() {
				return ErrClosed
			}
			w.waitCond.Wait()
		}
		return nil
	default:
		return w.syncTo(uint64(lsn))
	}
}

// syncTo fsyncs until the watermark covers lsn. The syncMu double-check is
// the group-combining: a waiter whose LSN was covered by a concurrent fsync
// returns without touching the disk.
func (w *Writer) syncTo(lsn uint64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced.Load() >= lsn {
		return nil
	}
	return w.syncLocked()
}

// Sync forces an fsync of everything appended so far.
func (w *Writer) Sync() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.syncLocked()
}

// syncLocked performs one fsync covering every record appended before it
// started; caller holds syncMu. Rotation keeps the invariant that every
// segment but the current one is already synced, so syncing the current file
// is enough to advance the watermark to the captured append count.
func (w *Writer) syncLocked() error {
	w.mu.Lock()
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return err
	}
	f := w.f
	cur := w.appended.Load()
	if err := callHook(w.opts.Hooks.BeforeSync); err != nil {
		err = w.latch(err)
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	if err := f.Sync(); err != nil {
		w.mu.Lock()
		err = w.latch(err)
		w.mu.Unlock()
		return err
	}
	w.mu.Lock()
	if err := callHook(w.opts.Hooks.AfterSync); err != nil {
		err = w.latch(err)
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	w.advance(cur)
	return nil
}

// advance raises the synced watermark to cur (monotone) and wakes waiters.
func (w *Writer) advance(cur uint64) {
	for {
		old := w.synced.Load()
		if cur <= old || w.synced.CompareAndSwap(old, cur) {
			break
		}
	}
	w.broadcast()
}

func (w *Writer) broadcast() {
	w.waitMu.Lock()
	w.waitCond.Broadcast()
	w.waitMu.Unlock()
}

// batchSyncer drives the per-batch policy: after the first pending append it
// waits for the batch to fill or the wait horizon to pass, then syncs once
// for everyone.
func (w *Writer) batchSyncer() {
	defer close(w.done)
	for {
		select {
		case <-w.quit:
			return
		case <-w.kick:
		}
		t := time.NewTimer(w.opts.BatchWait)
	fill:
		for w.pending() < uint64(w.opts.BatchAppends) {
			select {
			case <-w.kick:
			case <-t.C:
				break fill
			case <-w.quit:
				break fill
			}
		}
		t.Stop()
		if w.pending() > 0 {
			w.Sync() //nolint:errcheck // latched; waiters observe Err
		}
	}
}

// intervalSyncer drives the interval policy.
func (w *Writer) intervalSyncer() {
	defer close(w.done)
	tick := time.NewTicker(w.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-w.quit:
			return
		case <-tick.C:
			if w.pending() > 0 {
				w.Sync() //nolint:errcheck // latched; waiters observe Err
			}
		}
	}
}

func (w *Writer) pending() uint64 {
	a, s := w.appended.Load(), w.synced.Load()
	if a < s {
		return 0
	}
	return a - s
}

// WALCounters reports append/sync progress for the health watchdog's
// WAL-stall judge: appended and synced record counts, the pending gap, and
// the latched failure (nil while healthy).
func (w *Writer) WALCounters() (appended, synced uint64, pending int, err error) {
	a, s := w.appended.Load(), w.synced.Load()
	p := 0
	if a > s {
		p = int(a - s)
	}
	return a, s, p, w.Err()
}

// Rotate fsyncs and closes the current segment and opens the next one,
// returning the new segment's sequence number. Records appended before the
// rotation all live in segments below the returned sequence; the snapshot
// protocol rotates first so that pruning "everything below seq" after a
// snapshot is safe.
func (w *Writer) Rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return 0, w.failed
	}
	if w.closed.Load() {
		return 0, ErrClosed
	}
	if err := w.rotateLocked(); err != nil {
		return 0, err
	}
	return w.seq, nil
}

func (w *Writer) rotateLocked() error {
	cur := w.appended.Load()
	if err := w.f.Sync(); err != nil {
		return w.latch(err)
	}
	if err := w.f.Close(); err != nil {
		return w.latch(err)
	}
	w.advance(cur) // everything in closed segments is durable
	if err := w.openSegment(w.seq + 1); err != nil {
		return w.latch(err)
	}
	return syncDir(w.opts.Dir)
}

// Prune removes segments and snapshots strictly below seq. It is called
// after a snapshot at seq is durably in place; missing files are fine (a
// crash mid-prune just leaves extra covered segments, which replay skips).
func (w *Writer) Prune(seq uint64) error {
	segs, snaps, err := listDir(w.opts.Dir)
	if err != nil {
		return err
	}
	w.mu.Lock()
	active := w.seq
	w.mu.Unlock()
	for _, s := range segs {
		if s.seq < seq && s.seq != active {
			if err := os.Remove(filepath.Join(w.opts.Dir, s.name)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	for _, s := range snaps {
		if s.seq < seq {
			if err := os.Remove(filepath.Join(w.opts.Dir, s.name)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return syncDir(w.opts.Dir)
}

// Close stops the syncer, fsyncs everything appended, and closes the
// segment. Records appended but never synced before a crash-style shutdown
// are exactly what recovery's torn-tail handling is for; Close itself is the
// graceful path and leaves nothing pending.
func (w *Writer) Close() error {
	if !w.closed.CompareAndSwap(false, true) {
		<-w.done
		return w.Err()
	}
	close(w.quit)
	<-w.done
	w.broadcast()
	var first error
	if err := w.Sync(); err != nil && !errors.Is(err, ErrClosed) {
		first = err
	}
	w.mu.Lock()
	if err := w.f.Close(); err != nil && first == nil {
		first = err
	}
	w.mu.Unlock()
	return first
}

// --- directory layout -------------------------------------------------------

type dirFile struct {
	name string
	seq  uint64
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.seg", seq))
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.snap", seq))
}

// listDir returns the segment and snapshot files in dir, each sorted by
// sequence number. Unknown names are ignored (editor droppings, temp files).
func listDir(dir string) (segs, snaps []dirFile, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		var seq uint64
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			if _, err := fmt.Sscanf(name, "wal-%d.seg", &seq); err == nil {
				segs = append(segs, dirFile{name, seq})
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if _, err := fmt.Sscanf(name, "snap-%d.snap", &seq); err == nil {
				snaps = append(snaps, dirFile{name, seq})
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq < snaps[j].seq })
	return segs, snaps, nil
}

// syncDir fsyncs the directory so created/removed names are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
