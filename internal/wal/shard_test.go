package wal_test

import (
	"testing"

	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/wal"
)

// Sharded-clock log format tests (DESIGN.md §17): commit records carrying
// shard vectors, the per-shard max-Serial recovery fold, and the per-shard
// snapshot coverage rule — serials from different clock domains are not
// mutually comparable, so coverage is decided shard by shard.

// appendShardT appends one commit record with a shard vector.
func appendShardT(t *testing.T, w *wal.Writer, serial uint64, shards []uint32, writes ...stm.LoggedWrite) {
	t.Helper()
	lsn, err := w.Append([]stm.CommitRecord{{Serial: serial, Tie: serial, Shards: shards, Writes: writes}})
	if err != nil {
		t.Fatalf("Append(serial=%d shards=%v): %v", serial, shards, err)
	}
	if err := w.Durable(lsn); err != nil {
		t.Fatalf("Durable(%d): %v", lsn, err)
	}
}

func TestShardedRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, wal.SyncPerCommit)
	// Two independent number lines with overlapping serial ranges, plus one
	// cross-shard record whose serial feeds both folds.
	appendShardT(t, w, 5, []uint32{0}, lw(1, int64(10)))
	appendShardT(t, w, 3, []uint32{1}, lw(2, int64(20)))
	appendShardT(t, w, 7, []uint32{0, 1}, lw(1, int64(11)), lw(2, int64(21)))
	appendShardT(t, w, 8, []uint32{1}, lw(2, int64(22)))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.Serial != 8 || rec.Records != 4 || rec.Torn {
		t.Fatalf("got serial=%d records=%d torn=%v, want 8/4/false", rec.Serial, rec.Records, rec.Torn)
	}
	if rec.ShardSerials[0] != 7 || rec.ShardSerials[1] != 8 {
		t.Fatalf("per-shard fold = %v, want {0:7 1:8}", rec.ShardSerials)
	}
	if got := rec.Value(1, nil); got != int64(11) {
		t.Fatalf("var 1 = %#v, want 11", got)
	}
	if got := rec.Value(2, nil); got != int64(22) {
		t.Fatalf("var 2 = %#v, want 22", got)
	}
}

// TestUnshardedRecordShardFold: records without a shard vector fold onto
// shard 0, so a ClockShards=1 engine's recovery sees the same numbers through
// either interface.
func TestUnshardedRecordShardFold(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, wal.SyncPerCommit)
	appendT(t, w, 4, 4, lw(1, int64(1)))
	appendT(t, w, 9, 9, lw(1, int64(2)))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.ShardSerials) != 1 || rec.ShardSerials[0] != 9 {
		t.Fatalf("unsharded fold = %v, want {0:9}", rec.ShardSerials)
	}
}

// TestShardedSnapshotCoverage checks the per-shard coverage rule: a record is
// value-covered only when its serial is at or below the snapshot's component
// for EVERY shard it touched. A record from a slow shard with a small serial
// must replay even when a fast shard's component is far past it.
func TestShardedSnapshotCoverage(t *testing.T) {
	dir := t.TempDir()
	if err := wal.WriteSnapshot(dir, 0, &wal.Snapshot{
		Serial:       10,
		Values:       map[uint64]wal.Value{1: int64(100), 2: int64(200), 3: int64(300)},
		ShardSerials: []uint64{10, 5},
	}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	w := openT(t, dir, wal.SyncPerCommit)
	// Covered: shard 0 at serial 7 <= component 10. Stale duplicate — the
	// snapshot value must win.
	appendShardT(t, w, 7, []uint32{0}, lw(1, int64(-1)))
	// Not covered: shard 1 at serial 7 > component 5, despite 7 < Serial 10.
	appendShardT(t, w, 7, []uint32{1}, lw(2, int64(201)))
	// Not covered: touches shard 1 above its component — replays both writes.
	appendShardT(t, w, 11, []uint32{0, 1}, lw(3, int64(301)))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.SnapshotSerial != 10 {
		t.Fatalf("SnapshotSerial = %d, want 10", rec.SnapshotSerial)
	}
	if got := rec.Value(1, nil); got != int64(100) {
		t.Fatalf("covered record overrode snapshot: var 1 = %#v, want 100", got)
	}
	if got := rec.Value(2, nil); got != int64(201) {
		t.Fatalf("slow-shard record not replayed: var 2 = %#v, want 201", got)
	}
	if got := rec.Value(3, nil); got != int64(301) {
		t.Fatalf("cross-shard record not replayed: var 3 = %#v, want 301", got)
	}
	// Fold floors start at the snapshot vector and rise with replayed serials.
	if rec.ShardSerials[0] != 11 || rec.ShardSerials[1] != 11 {
		t.Fatalf("per-shard fold = %v, want {0:11 1:11}", rec.ShardSerials)
	}
	if rec.Serial != 11 {
		t.Fatalf("Serial = %d, want 11", rec.Serial)
	}
}

// TestShardedSnapshotRoundTrip: the trailing shard vector survives the
// snapshot file format, and an unsharded snapshot recovers with a scalar
// floor on shard 0.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := wal.WriteSnapshot(dir, 0, &wal.Snapshot{
		Serial:       42,
		Values:       map[uint64]wal.Value{1: "x"},
		ShardSerials: []uint64{42, 17, 8, 3},
	}); err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{42, 17, 8, 3}
	for s, v := range want {
		if rec.ShardSerials[uint32(s)] != v {
			t.Fatalf("shard %d floor = %d, want %d (all: %v)", s, rec.ShardSerials[uint32(s)], v, rec.ShardSerials)
		}
	}

	dir2 := t.TempDir()
	if err := wal.WriteSnapshot(dir2, 0, &wal.Snapshot{
		Serial: 42,
		Values: map[uint64]wal.Value{1: "x"},
	}); err != nil {
		t.Fatal(err)
	}
	rec2, err := wal.Recover(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.ShardSerials) != 1 || rec2.ShardSerials[0] != 42 {
		t.Fatalf("scalar snapshot floor = %v, want {0:42}", rec2.ShardSerials)
	}
}

// shardClocked is the capability a sharded engine exposes for recovery:
// sample the clock vector and fast-forward individual shard clocks.
type shardClocked interface {
	ClockVec(dst []uint64) []uint64
	SeedClockShard(s int, v uint64)
}

// TestDurableShardedEngine drives the sharded WAL-capable engines over a real
// log, restarts each with per-shard clock fast-forward, and checks both the
// recovered values and clock vector domination — the end-to-end recovery
// contract.
func TestDurableShardedEngine(t *testing.T) {
	for _, name := range []string{"twm", "twm-gc", "jvstm", "jvstm-gc"} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w := openT(t, dir, wal.SyncPerCommit)

			tm, err := engines.NewDurableSharded(name, w, 4, nil)
			if err != nil {
				t.Fatal(err)
			}
			vars := make([]stm.Var, 8)
			ids := make([]uint64, 8)
			for i := range vars {
				vars[i] = tm.NewVar(0)
				ids[i] = vars[i].(interface{ VarID() uint64 }).VarID()
			}
			// Single-shard commits on every shard plus a cross-shard commit
			// per round.
			for round := 1; round <= 3; round++ {
				for i, v := range vars {
					tx := tm.Begin(false)
					tx.Write(v, round*10+i)
					if !tm.Commit(tx) {
						t.Fatalf("commit failed")
					}
				}
				tx := tm.Begin(false)
				tx.Write(vars[0], round)
				tx.Write(vars[1], round)
				if !tm.Commit(tx) {
					t.Fatalf("cross commit failed")
				}
			}
			vec := tm.(shardClocked).ClockVec(nil)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			rec, err := wal.Recover(dir)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			w2 := openT(t, dir, wal.SyncPerCommit)
			defer w2.Close()
			tm2, err := engines.NewDurableSharded(name, w2, 4, nil)
			if err != nil {
				t.Fatal(err)
			}
			for s, v := range rec.ShardSerials {
				tm2.(shardClocked).SeedClockShard(int(s), v)
			}
			vars2 := make([]stm.Var, 8)
			for i := range vars2 {
				vars2[i] = tm2.NewVar(rec.Value(ids[i], 0))
			}
			ro := tm2.Begin(true)
			for i, v := range vars2 {
				want := 30 + i
				if i < 2 {
					want = 3 // the final cross-shard commit wins on vars 0 and 1
				}
				if got := ro.Read(v); got != want {
					t.Fatalf("var %d = %v after restart, want %d", i, got, want)
				}
			}
			tm2.Commit(ro)
			vec2 := tm2.(shardClocked).ClockVec(nil)
			for s := range vec {
				if vec2[s] < vec[s] {
					t.Fatalf("shard %d clock went backwards across restart: %d < %d", s, vec2[s], vec[s])
				}
			}
		})
	}
}
