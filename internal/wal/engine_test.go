package wal_test

import (
	"sync"
	"testing"

	"repro/internal/dsg"
	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/wal"
	"repro/internal/xrand"
)

// TestLoggedEngineDSG runs the serializability oracle over every WAL-capable
// engine with a live logger attached: the commit-path append must not perturb
// the ordering guarantees, and the log left behind must recover cleanly.
func TestLoggedEngineDSG(t *testing.T) {
	for _, name := range engines.DurableSet() {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := wal.Open(wal.Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			tm := engines.MustNewDurable(name, w)
			dsg.CheckRandom(t, tm, dsg.RunOptions{Goroutines: 4, TxPerG: 80})
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			rec, err := wal.Recover(dir)
			if err != nil {
				t.Fatalf("Recover after DSG run: %v", err)
			}
			if rec.Records == 0 {
				t.Fatal("no commit records logged during the DSG run")
			}
		})
	}
}

// TestEngineRecoveryMatchesLiveState is the end-to-end zero-loss check at
// fsync-per-commit: drive concurrent transfers over a logged engine, close the
// log cleanly, recover, and require the recovered value of every variable to
// equal the live in-memory state — byte for byte, not just conserved.
func TestEngineRecoveryMatchesLiveState(t *testing.T) {
	const (
		nVars    = 16
		initial  = int64(1000)
		workers  = 4
		transfer = 200
	)
	for _, name := range engines.DurableSet() {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncPerCommit})
			if err != nil {
				t.Fatal(err)
			}
			tm := engines.MustNewDurable(name, w)

			vars := make([]*stm.TVar[int64], nVars)
			ids := make([]uint64, nVars)
			for i := range vars {
				vars[i] = stm.NewTVar(tm, initial)
				iv, ok := vars[i].Raw().(interface{ VarID() uint64 })
				if !ok {
					t.Fatalf("engine %s variables carry no id", name)
				}
				ids[i] = iv.VarID()
			}

			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := xrand.New(xrand.Mix(uint64(g) + 42))
					for i := 0; i < transfer; i++ {
						from, to := rng.Intn(nVars), rng.Intn(nVars)
						if from == to {
							continue
						}
						amt := int64(1 + rng.Intn(10))
						err := stm.Atomically(tm, false, func(tx stm.Tx) error {
							b := vars[from].Get(tx)
							if b < amt {
								return nil
							}
							vars[from].Set(tx, b-amt) //twm:allow abortshape insufficient-funds guard is the workload's inherent check-then-act
							vars[to].Set(tx, vars[to].Get(tx)+amt)
							return nil
						})
						if err != nil {
							t.Errorf("transfer: %v", err)
							return
						}
					}
				}(g)
			}
			wg.Wait()

			live := make([]int64, nVars)
			if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
				for i := range vars {
					live[i] = vars[i].Get(tx)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			rec, err := wal.Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			var total int64
			for i := range vars {
				got := rec.Value(ids[i], initial)
				n, ok := got.(int64)
				if !ok {
					t.Fatalf("var %d recovered as %T", ids[i], got)
				}
				if n != live[i] {
					t.Errorf("var %d: recovered %d, live %d", ids[i], n, live[i])
				}
				total += n
			}
			if total != nVars*initial {
				t.Errorf("money not conserved: %d, want %d", total, nVars*initial)
			}
		})
	}
}
