package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/stm"
)

// On-disk framing. Segments are a magic header followed by records:
//
//	record  = bodyLen:u32 | body | crc:u32(IEEE over body)
//	body    = type:u8 | payload
//	commit  = ntx:u32 | ntx × (serial:u64 | tie:u64 | nwrites:u32 | writes)
//	scommit = ntx:u32 | ntx × (serial:u64 | tie:u64 | nshards:u32 |
//	          nshards × shard:u32 | nwrites:u32 | writes)
//	write   = varID:u64 | value
//	meta    = metaSeq:u64 | len:u32 | payload bytes
//	value   = tag:u8 | data (see encodeValue)
//
// All integers are little-endian and fixed-width: the log is a durability
// artifact, not a wire format, and fixed widths keep torn-tail detection a
// pure length/CRC question.
//
// Sharded-clock engines (Options.ClockShards > 1) append recCommitSharded
// records whose shard vector names the clock shards the commit's serial was
// drawn from; recovery folds a per-shard max serial from them. Unsharded
// engines leave CommitRecord.Shards nil and their logs stay byte-identical
// to the pre-sharding format (recCommit, shard 0 implied).
const (
	segMagic  = "TWMWAL1\n"
	snapMagic = "TWMSNP1\n"

	recCommit        = 1
	recMeta          = 2
	recCommitSharded = 3
)

// Value codec tags. The WAL stores stm.Values of the transparent Go types the
// repository's workloads use; anything else fails the append (durable stores
// require loggable value types).
const (
	tagNil = iota
	tagFalse
	tagTrue
	tagInt64
	tagUint64
	tagFloat64
	tagString
	tagBytes
	tagInt
)

// ErrValueType reports a write whose value the codec cannot represent.
var ErrValueType = errors.New("wal: unsupported value type (loggable types: nil, bool, int, int64, uint64, float64, string, []byte)")

// errCorrupt reports a structurally invalid record or snapshot body.
var errCorrupt = errors.New("wal: corrupt record")

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func encodeValue(b []byte, v stm.Value) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, tagNil), nil
	case bool:
		if x {
			return append(b, tagTrue), nil
		}
		return append(b, tagFalse), nil
	case int64:
		return appendU64(append(b, tagInt64), uint64(x)), nil
	case int:
		return appendU64(append(b, tagInt), uint64(x)), nil
	case uint64:
		return appendU64(append(b, tagUint64), x), nil
	case float64:
		return appendU64(append(b, tagFloat64), math.Float64bits(x)), nil
	case string:
		b = appendU32(append(b, tagString), uint32(len(x)))
		return append(b, x...), nil
	case []byte:
		b = appendU32(append(b, tagBytes), uint32(len(x)))
		return append(b, x...), nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrValueType, v)
	}
}

func decodeValue(b []byte) (stm.Value, []byte, error) {
	if len(b) < 1 {
		return nil, nil, errCorrupt
	}
	tag, b := b[0], b[1:]
	switch tag {
	case tagNil:
		return nil, b, nil
	case tagFalse:
		return false, b, nil
	case tagTrue:
		return true, b, nil
	case tagInt64, tagInt, tagUint64, tagFloat64:
		if len(b) < 8 {
			return nil, nil, errCorrupt
		}
		u := binary.LittleEndian.Uint64(b)
		b = b[8:]
		switch tag {
		case tagInt64:
			return int64(u), b, nil
		case tagInt:
			return int(u), b, nil
		case tagFloat64:
			return math.Float64frombits(u), b, nil
		}
		return u, b, nil
	case tagString, tagBytes:
		if len(b) < 4 {
			return nil, nil, errCorrupt
		}
		n := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if n < 0 || len(b) < n {
			return nil, nil, errCorrupt
		}
		if tag == tagString {
			return string(b[:n]), b[n:], nil
		}
		return append([]byte(nil), b[:n]...), b[n:], nil
	default:
		return nil, nil, errCorrupt
	}
}

// encodeCommitBody appends the body of a commit record (type byte included).
// A batch containing any shard vector is framed as recCommitSharded; a batch
// of plain records keeps the original recCommit layout byte-for-byte.
func encodeCommitBody(b []byte, recs []stm.CommitRecord) ([]byte, error) {
	sharded := false
	for i := range recs {
		if len(recs[i].Shards) > 0 {
			sharded = true
			break
		}
	}
	if sharded {
		b = append(b, recCommitSharded)
	} else {
		b = append(b, recCommit)
	}
	b = appendU32(b, uint32(len(recs)))
	for i := range recs {
		r := &recs[i]
		b = appendU64(b, r.Serial)
		b = appendU64(b, r.Tie)
		if sharded {
			b = appendU32(b, uint32(len(r.Shards)))
			for _, s := range r.Shards {
				b = appendU32(b, s)
			}
		}
		b = appendU32(b, uint32(len(r.Writes)))
		for _, w := range r.Writes {
			b = appendU64(b, w.VarID)
			var err error
			if b, err = encodeValue(b, w.Value); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// decodeCommitBody parses a commit-record body past the type byte. sharded
// selects the recCommitSharded layout (per-record shard vectors).
func decodeCommitBody(b []byte, sharded bool) ([]stm.CommitRecord, error) {
	if len(b) < 4 {
		return nil, errCorrupt
	}
	ntx := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	recs := make([]stm.CommitRecord, 0, ntx)
	for i := 0; i < ntx; i++ {
		if len(b) < 16 {
			return nil, errCorrupt
		}
		var r stm.CommitRecord
		r.Serial = binary.LittleEndian.Uint64(b)
		r.Tie = binary.LittleEndian.Uint64(b[8:])
		b = b[16:]
		if sharded {
			if len(b) < 4 {
				return nil, errCorrupt
			}
			ns := int(binary.LittleEndian.Uint32(b))
			b = b[4:]
			if ns < 0 || len(b) < 4*ns {
				return nil, errCorrupt
			}
			if ns > 0 {
				r.Shards = make([]uint32, ns)
				for j := 0; j < ns; j++ {
					r.Shards[j] = binary.LittleEndian.Uint32(b[4*j:])
				}
				b = b[4*ns:]
			}
		}
		if len(b) < 4 {
			return nil, errCorrupt
		}
		nw := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		r.Writes = make([]stm.LoggedWrite, 0, nw)
		for j := 0; j < nw; j++ {
			if len(b) < 8 {
				return nil, errCorrupt
			}
			id := binary.LittleEndian.Uint64(b)
			b = b[8:]
			val, rest, err := decodeValue(b)
			if err != nil {
				return nil, err
			}
			b = rest
			r.Writes = append(r.Writes, stm.LoggedWrite{VarID: id, Value: val})
		}
		recs = append(recs, r)
	}
	if len(b) != 0 {
		return nil, errCorrupt
	}
	return recs, nil
}

// encodeMetaBody appends the body of a meta record (type byte included).
func encodeMetaBody(b []byte, seq uint64, payload []byte) []byte {
	b = append(b, recMeta)
	b = appendU64(b, seq)
	b = appendU32(b, uint32(len(payload)))
	return append(b, payload...)
}

// decodeMetaBody parses a meta-record body past the type byte.
func decodeMetaBody(b []byte) (seq uint64, payload []byte, err error) {
	if len(b) < 12 {
		return 0, nil, errCorrupt
	}
	seq = binary.LittleEndian.Uint64(b)
	n := int(binary.LittleEndian.Uint32(b[8:]))
	b = b[12:]
	if len(b) != n {
		return 0, nil, errCorrupt
	}
	return seq, append([]byte(nil), b...), nil
}

// frame wraps a body into a full record: length prefix and CRC suffix.
func frame(dst, body []byte) []byte {
	dst = appendU32(dst, uint32(len(body)))
	dst = append(dst, body...)
	return appendU32(dst, crc32.ChecksumIEEE(body))
}
