package wal_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/stm"
	"repro/internal/wal"
)

// openT opens a writer over dir with the given policy, failing the test on
// error.
func openT(t *testing.T, dir string, policy wal.Policy) *wal.Writer {
	t.Helper()
	w, err := wal.Open(wal.Options{Dir: dir, Policy: policy})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w
}

// appendT appends one commit record and waits out durability.
func appendT(t *testing.T, w *wal.Writer, serial, tie uint64, writes ...stm.LoggedWrite) {
	t.Helper()
	lsn, err := w.Append([]stm.CommitRecord{{Serial: serial, Tie: tie, Writes: writes}})
	if err != nil {
		t.Fatalf("Append(serial=%d): %v", serial, err)
	}
	if err := w.Durable(lsn); err != nil {
		t.Fatalf("Durable(%d): %v", lsn, err)
	}
}

func lw(id uint64, v stm.Value) stm.LoggedWrite { return stm.LoggedWrite{VarID: id, Value: v} }

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, wal.SyncPerCommit)
	// Cover every supported value type plus an overwrite the fold must order.
	appendT(t, w, 1, 1, lw(1, int64(10)), lw(2, "hello"), lw(3, []byte{0xde, 0xad}))
	appendT(t, w, 2, 2, lw(4, true), lw(5, nil), lw(6, 3.5), lw(7, uint64(9)), lw(8, 42))
	appendT(t, w, 3, 3, lw(1, int64(20))) // overwrites var 1
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.Serial != 3 || rec.Records != 3 || rec.Torn {
		t.Fatalf("got serial=%d records=%d torn=%v, want 3/3/false", rec.Serial, rec.Records, rec.Torn)
	}
	want := map[uint64]stm.Value{
		1: int64(20), 2: "hello", 3: []byte{0xde, 0xad},
		4: true, 5: nil, 6: 3.5, 7: uint64(9), 8: 42,
	}
	for id, v := range want {
		if got := rec.Value(id, "missing"); !reflect.DeepEqual(got, v) {
			t.Errorf("var %d: got %#v, want %#v", id, got, v)
		}
	}
	if got := rec.Value(99, int64(-1)); got != int64(-1) {
		t.Errorf("unknown var fallback: got %#v", got)
	}
}

// TestClashElisionFold checks the replay tie-break matches the in-memory rule:
// equal Serial means a time-warp clash was elided, and the smaller Tie
// (earlier natural order) is the readable version.
func TestClashElisionFold(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, wal.SyncPerCommit)
	appendT(t, w, 5, 7, lw(1, int64(100)))
	appendT(t, w, 5, 3, lw(1, int64(200))) // same serial, smaller tie: wins
	appendT(t, w, 4, 9, lw(1, int64(300))) // lower serial: loses
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Value(1, nil); got != int64(200) {
		t.Fatalf("fold winner: got %#v, want 200", got)
	}
}

func TestMetaRecovery(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, wal.SyncPerCommit)
	for _, p := range []string{"alpha", "beta"} {
		if err := w.AppendMeta([]byte(p)); err != nil {
			t.Fatalf("AppendMeta(%s): %v", p, err)
		}
	}
	appendT(t, w, 1, 1, lw(1, int64(5)))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Metas) != 2 || string(rec.Metas[0]) != "alpha" || string(rec.Metas[1]) != "beta" {
		t.Fatalf("metas: got %q", rec.Metas)
	}

	// Reopen with MetaStart: the recovered metas keep their sequence slots, so
	// new metas continue the numbering and recovery sees all three in order.
	w2, err := wal.Open(wal.Options{Dir: dir, MetaStart: uint64(len(rec.Metas))})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendMeta([]byte("gamma")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Metas) != 3 || string(rec2.Metas[2]) != "gamma" {
		t.Fatalf("metas after reopen: got %q", rec2.Metas)
	}
}

// TestRecoveryEdges is the table of degenerate directory shapes recovery must
// absorb: nothing at all, a snapshot with no log, a torn final record, a
// duplicated segment.
func TestRecoveryEdges(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T, dir string)
		check func(t *testing.T, rec *wal.Recovered)
	}{
		{
			name:  "empty",
			build: func(t *testing.T, dir string) {},
			check: func(t *testing.T, rec *wal.Recovered) {
				if rec.Serial != 0 || rec.Records != 0 || len(rec.Metas) != 0 || len(rec.Values) != 0 || rec.Torn {
					t.Fatalf("empty dir: got %+v", rec)
				}
			},
		},
		{
			name: "snapshot-only",
			build: func(t *testing.T, dir string) {
				snap := &wal.Snapshot{
					Serial: 17,
					Metas:  [][]byte{[]byte("acct")},
					Values: map[uint64]wal.Value{1: int64(250), 2: int64(0)},
				}
				if err := wal.WriteSnapshot(dir, 3, snap); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, rec *wal.Recovered) {
				if rec.SnapshotSerial != 17 || rec.Serial != 17 {
					t.Fatalf("serials: %+v", rec)
				}
				if got := rec.Value(1, nil); got != int64(250) {
					t.Fatalf("var 1: %#v", got)
				}
				if len(rec.Metas) != 1 || string(rec.Metas[0]) != "acct" {
					t.Fatalf("metas: %q", rec.Metas)
				}
			},
		},
		{
			name: "torn-last-record",
			build: func(t *testing.T, dir string) {
				w := openT(t, dir, wal.SyncPerCommit)
				appendT(t, w, 1, 1, lw(1, int64(11)))
				appendT(t, w, 2, 2, lw(2, int64(22)))
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				// Shear a few bytes off the newest segment: the final record's
				// CRC no longer matches, which must read as a torn tail, not
				// corruption.
				seg := newestSegment(t, dir)
				info, err := os.Stat(seg)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(seg, info.Size()-3); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, rec *wal.Recovered) {
				if !rec.Torn {
					t.Fatal("want Torn=true")
				}
				if rec.Records != 1 || rec.Value(1, nil) != int64(11) {
					t.Fatalf("surviving prefix: records=%d values=%v", rec.Records, rec.Values)
				}
				if _, ok := rec.Values[2]; ok {
					t.Fatal("torn record must not be applied")
				}
			},
		},
		{
			name: "duplicate-segment",
			build: func(t *testing.T, dir string) {
				w := openT(t, dir, wal.SyncPerCommit)
				appendT(t, w, 1, 1, lw(1, int64(7)))
				appendT(t, w, 2, 2, lw(1, int64(8)))
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				// Re-deliver the whole segment under a higher sequence; the
				// fold must absorb the duplicates without changing the result.
				seg := newestSegment(t, dir)
				raw, err := os.ReadFile(seg)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, "wal-00000009.seg"), raw, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, rec *wal.Recovered) {
				if got := rec.Value(1, nil); got != int64(8) {
					t.Fatalf("fold result: %#v", got)
				}
				if rec.Serial != 2 || rec.Torn {
					t.Fatalf("got %+v", rec)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			tc.build(t, dir)
			rec, err := wal.Recover(dir)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			tc.check(t, rec)
		})
	}
}

// TestCorruptMiddleSegmentFails: tail damage is only forgivable in the newest
// segment; the same damage in an older (fully synced) one is real corruption.
func TestCorruptMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, wal.SyncPerCommit)
	appendT(t, w, 1, 1, lw(1, int64(1)))
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendT(t, w, 2, 2, lw(2, int64(2)))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want 2+ segments, got %v (%v)", segs, err)
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-2); err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Recover(dir); err == nil {
		t.Fatal("want error for damage in a non-final segment")
	}
}

// TestRotateSnapshotPrune drives the full checkpoint protocol at the wal
// level: records below the rotation fold into a snapshot, the old segments
// are pruned, and recovery stitches snapshot + retained suffix together.
func TestRotateSnapshotPrune(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, wal.SyncPerCommit)
	if err := w.AppendMeta([]byte("m0")); err != nil {
		t.Fatal(err)
	}
	appendT(t, w, 1, 1, lw(1, int64(100)))
	appendT(t, w, 2, 2, lw(2, int64(200)))

	seq, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	snap := &wal.Snapshot{
		Serial: 2,
		Metas:  [][]byte{[]byte("m0")},
		Values: map[uint64]wal.Value{1: int64(100), 2: int64(200)},
	}
	if err := wal.WriteSnapshot(dir, seq, snap); err != nil {
		t.Fatal(err)
	}
	appendT(t, w, 3, 3, lw(1, int64(111))) // post-rotation: must survive prune
	if err := w.Prune(seq); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("prune left %v", segs)
	}
	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotSerial != 2 || rec.Serial != 3 {
		t.Fatalf("serials: %+v", rec)
	}
	if rec.Value(1, nil) != int64(111) || rec.Value(2, nil) != int64(200) {
		t.Fatalf("values: %v", rec.Values)
	}
	if len(rec.Metas) != 1 || string(rec.Metas[0]) != "m0" {
		t.Fatalf("metas: %q", rec.Metas)
	}
}

// TestPolicies exercises the per-batch and interval syncers end to end: the
// Durable wait (or fire-and-forget) must return without error and the records
// must recover.
func TestPolicies(t *testing.T) {
	for _, p := range []wal.Policy{wal.SyncPerBatch, wal.SyncInterval} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			w := openT(t, dir, p)
			for i := uint64(1); i <= 20; i++ {
				appendT(t, w, i, i, lw(1, int64(i)))
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			rec, err := wal.Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Records != 20 || rec.Value(1, nil) != int64(20) {
				t.Fatalf("records=%d values=%v", rec.Records, rec.Values)
			}
		})
	}
}

// TestLatchedWriterRefuses: one hook failure latches the writer; every later
// operation reports the original error.
func TestLatchedWriterRefuses(t *testing.T) {
	dir := t.TempDir()
	boom := os.ErrClosed
	fail := false
	w, err := wal.Open(wal.Options{Dir: dir, Hooks: wal.Hooks{BeforeAppend: func() error {
		if fail {
			return boom
		}
		return nil
	}}})
	if err != nil {
		t.Fatal(err)
	}
	appendT(t, w, 1, 1, lw(1, int64(1)))
	fail = true
	if _, err := w.Append([]stm.CommitRecord{{Serial: 2, Tie: 2, Writes: []stm.LoggedWrite{lw(1, int64(2))}}}); err == nil {
		t.Fatal("want injected append failure")
	}
	if w.Err() == nil {
		t.Fatal("writer must latch the failure")
	}
	if _, err := w.Append([]stm.CommitRecord{{Serial: 3, Tie: 3, Writes: []stm.LoggedWrite{lw(1, int64(3))}}}); err == nil {
		t.Fatal("latched writer must refuse further appends")
	}
	w.Close()
	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 1 || rec.Value(1, nil) != int64(1) {
		t.Fatalf("pre-latch record must survive alone: %+v", rec)
	}
}

func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	return segs[len(segs)-1]
}
