package jvstm_test

import (
	"sync"
	"testing"

	"repro/internal/dsg"
	"repro/internal/jvstm"
	"repro/internal/stm"
	"repro/internal/stm/stmtest"
)

func gcFactory() stm.TM { return jvstm.New(jvstm.Options{GroupCommit: true}) }

func TestGroupCommitConformance(t *testing.T) {
	stmtest.Run(t, gcFactory, stmtest.Options{RONeverAborts: true})
}

func TestGroupCommitConformanceSmallBatches(t *testing.T) {
	stmtest.Run(t, func() stm.TM {
		return jvstm.New(jvstm.Options{GroupCommit: true, GroupMaxBatch: 2})
	}, stmtest.Options{RONeverAborts: true})
}

func TestGroupCommitSerializabilityDSG(t *testing.T) {
	dsg.CheckRandom(t, gcFactory(), dsg.RunOptions{})
}

func TestGroupCommitSerializabilityDSGHighContention(t *testing.T) {
	dsg.CheckRandom(t, gcFactory(), dsg.RunOptions{Vars: 3, Goroutines: 8, TxPerG: 120, Seed: 42})
}

// TestGroupCommitOneTickPerBatch mirrors the core assertion: one shared-clock
// advance per installed batch, with the batch-carried commit count equal to
// the engine's update-commit count.
func TestGroupCommitOneTickPerBatch(t *testing.T) {
	tm := jvstm.New(jvstm.Options{GroupCommit: true})
	clock0 := tm.Clock()
	const goroutines, txPerG, vars = 8, 200, 64
	tvs := make([]*stm.TVar[int], vars)
	for i := range tvs {
		tvs[i] = stm.NewTVar(tm, 0)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < txPerG; i++ {
				v := tvs[(g*txPerG+i*7)%vars]
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					v.Set(tx, v.Get(tx)+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	snap := tm.Stats().Snapshot()
	if snap.ClockAdvances != snap.GroupBatches {
		t.Fatalf("clock advances = %d, batches = %d: want exactly one advance per batch",
			snap.ClockAdvances, snap.GroupBatches)
	}
	if snap.GroupBatches == 0 {
		t.Fatalf("no batches recorded: %+v", snap)
	}
	if snap.GroupBatchTxs < snap.Commits || snap.GroupBatchTxs > snap.Commits+snap.Aborts {
		t.Fatalf("batch txs = %d, commits = %d, aborts = %d",
			snap.GroupBatchTxs, snap.Commits, snap.Aborts)
	}
	if moved := tm.Clock() - clock0; moved != snap.GroupBatchTxs {
		t.Fatalf("clock moved %d, batch txs = %d", moved, snap.GroupBatchTxs)
	}
}
