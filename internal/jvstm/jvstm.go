// Package jvstm implements a JVSTM-style multi-version STM (Fernandes and
// Cachopo, PPoPP 2011) over the common stm API: per-variable version lists
// ordered by a global commit clock, classic commit-time validation for update
// transactions, and abort-free read-only transactions (mv-permissiveness for
// readers). It is the multi-version baseline of the TWM paper's evaluation.
//
// The original JVSTM uses a lock-free commit; as with the TWM prototype, that
// concern is orthogonal to what the paper measures here (version maintenance
// cost and the classic validation rule), so commit uses per-variable locks
// acquired in id order, mirroring internal/core for a like-for-like
// comparison.
package jvstm

import (
	"math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/mvutil"
	"repro/internal/stm"
)

// Options tunes a JVSTM instance. The zero value uses defaults.
type Options struct {
	// GCEveryNCommits triggers version garbage collection each time this
	// many update transactions commit; 0 selects the default, negative
	// disables automatic GC.
	GCEveryNCommits int
	// LockSpinBudget bounds spinning on a peer's commit lock.
	LockSpinBudget int
	// Budget, when non-nil, caps the engine's version memory exactly as in
	// internal/core (see mvutil.VersionBudget and DESIGN.md §11): soft
	// pressure triggers eager GC, hard pressure trims chains to
	// MaxVersionDepth and, as a last resort, fails commits with
	// stm.ReasonMemoryPressure. Nil leaves version memory unbounded.
	Budget *mvutil.VersionBudget
	// MaxVersionDepth is the per-variable chain depth the hard-pressure trim
	// cuts to. 0 selects the default; only consulted when Budget is set.
	MaxVersionDepth int
	// GroupCommit routes every update commit through a flat-combining
	// leader/follower stage exactly as in internal/core (DESIGN.md §13), with
	// the classic validation rule applied per batch member: intra-batch
	// read-write conflicts abort where TWM warps — the paper's contrast,
	// preserved under batching. The engine's name becomes "jvstm-gc".
	GroupCommit bool
	// GroupMaxBatch caps the members installed per combiner batch; 0 selects
	// mvutil.DefaultMaxBatch. Only consulted when GroupCommit is set.
	GroupMaxBatch int
	// GroupHooks injects the combiner's fault points (internal/chaos).
	GroupHooks *mvutil.BatchHooks
	// Logger, when non-nil, receives every update commit's write set under
	// the two-phase stm.CommitLogger protocol, exactly as in internal/core:
	// Append runs with the write locks held, before any version is visible;
	// Durable runs after install, before the commit is acknowledged. JVSTM
	// never time-warps, so records carry Tie == Serial (== the write version).
	Logger stm.CommitLogger
	// ClockShards partitions the variable space into that many clock domains,
	// exactly as in internal/core (rounded up to a power of two, capped at
	// mvutil.MaxClockShards; 0 and 1 keep the single global clock): a
	// transaction whose footprint stays inside one shard draws its write
	// version from that shard's clock alone, and a cross-shard footprint draws
	// through the fence and validates every read per shard (DESIGN.md §17).
	ClockShards int
	// Sharder overrides the variable→shard assignment (default: round-robin
	// on the variable id). Consulted once, at NewVar, with the effective shard
	// count; must be pure and total.
	Sharder func(id uint64, shards int) int
}

const (
	defaultGCEvery   = 4096
	defaultSpinLimit = 2048
	defaultTrimDepth = 8
)

// TM is a JVSTM instance.
type TM struct {
	opts Options
	// clock defines the commit order. At ClockShards=1 it degenerates to the
	// single shared clock (cell 0) on its own cache line; at K>1 each shard's
	// cell is an independent number line (DESIGN.md §17).
	clock   mvutil.ClockDomain
	sharded bool // ClockShards > 1
	stats   stm.Stats
	prof    atomic.Pointer[stm.Profiler]

	active  *mvutil.ActiveSet
	gcCount atomic.Uint64
	gcMu    sync.Mutex

	// txns pools transaction descriptors across attempts; see Recycle.
	txns sync.Pool

	varsMu  sync.Mutex
	vars    []*jvar
	history atomic.Bool

	// combiner is the flat-combining commit stage; nil unless
	// Options.GroupCommit. The scratch slices and claim map are leader state,
	// guarded by the combiner's leader lock. shardSeq deals out sticky
	// publication stripes, one per descriptor lifetime.
	combiner      *mvutil.Combiner
	shardSeq      atomic.Uint32
	batchPend     []*txn
	batchAdmitted []*txn
	batchShard    []*txn // sharded processing order (assignShardOrders)
	batchClaimed  map[*jvar]struct{}
	// batchLogged/batchRecs are the leader's durability scratch (Logger
	// only): members whose unlocks are deferred until the batch record is
	// appended, and the one record per clock advance handed to the logger.
	batchLogged []*txn
	batchRecs   []stm.CommitRecord
}

// New returns a JVSTM instance.
func New(opts Options) *TM {
	if opts.GCEveryNCommits == 0 {
		opts.GCEveryNCommits = defaultGCEvery
	}
	if opts.LockSpinBudget == 0 {
		opts.LockSpinBudget = defaultSpinLimit
	}
	if opts.MaxVersionDepth <= 0 {
		opts.MaxVersionDepth = defaultTrimDepth
	}
	tm := &TM{opts: opts}
	if opts.GroupCommit {
		tm.combiner = mvutil.NewCombiner(opts.GroupMaxBatch, opts.GroupHooks)
	}
	tm.sharded = tm.clock.Init(opts.ClockShards, 1) > 1
	tm.active = mvutil.NewActiveSet()
	tm.txns.New = func() any {
		return &txn{tm: tm, stats: tm.stats.Shard(), shard: int(tm.shardSeq.Add(1))}
	}
	return tm
}

// Name implements stm.TM.
func (tm *TM) Name() string {
	if tm.opts.GroupCommit {
		return "jvstm-gc"
	}
	return "jvstm"
}

// MultiVersion implements stm.MultiVersioned.
func (tm *TM) MultiVersion() bool { return true }

// Stats implements stm.TM.
func (tm *TM) Stats() *stm.Stats { return &tm.stats }

// SetProfiler implements stm.Profilable.
func (tm *TM) SetProfiler(p *stm.Profiler) { tm.prof.Store(p) }

// Clock exposes a monotone commit-clock progress measure: the single clock
// value at ClockShards=1 and the sum of the shard cells otherwise (health
// watchdog, tests).
func (tm *TM) Clock() uint64 { return tm.clock.Sum() }

// ClockShards reports the effective clock-shard count (1 when unsharded).
func (tm *TM) ClockShards() int { return tm.clock.Shards() }

// ClockVec appends the current per-shard clock vector to dst (one consistent
// cut). Checkpoints use it to stamp snapshots with per-shard serials.
func (tm *TM) ClockVec(dst []uint64) []uint64 { return tm.clock.Snapshot(dst) }

// VarShard reports the clock shard v was assigned to (tests, checkpoints).
func (tm *TM) VarShard(v stm.Var) int { return int(v.(*jvar).shard) }

// ActiveSet exposes the active-transaction registry (health watchdog).
func (tm *TM) ActiveSet() *mvutil.ActiveSet { return tm.active }

// Budget exposes the configured version budget; nil when unbounded.
func (tm *TM) Budget() *mvutil.VersionBudget { return tm.opts.Budget }

// CommitLogger exposes the configured durability logger; nil when the engine
// runs without a write-ahead log (health watchdog, server wiring).
func (tm *TM) CommitLogger() stm.CommitLogger { return tm.opts.Logger }

// SeedClock raises every shard's commit clock to at least v. Recovery-only:
// call it once, after replaying a WAL and before the first transaction, so
// post-recovery commits draw write versions strictly above every recovered
// serial. Recovered values themselves are installed as initial versions
// (version 0) via NewVar. Raising every shard to the global maximum is always
// sound and stays correct when the shard count or sharder changed across the
// restart.
func (tm *TM) SeedClock(v uint64) {
	for s := 0; s < tm.clock.Shards(); s++ {
		tm.clock.Raise(s, v)
	}
}

// SeedClockShard advances one shard's clock to at least v (per-shard recovery
// fast-forward from the WAL's per-shard max-Serial fold). Callers that cannot
// prove the variable→shard assignment is unchanged since the log was written
// must follow with SeedClock of the global maximum.
func (tm *TM) SeedClockShard(s int, v uint64) {
	if s >= 0 && s < tm.clock.Shards() {
		tm.clock.Raise(s, v)
	}
}

// jversion is one committed value (a JVSTM "body").
type jversion struct {
	value stm.Value
	ver   uint64
	next  atomic.Pointer[jversion]
}

// jvar is the transactional variable (a VBox).
type jvar struct {
	id uint64
	// shard is the clock domain the variable belongs to (always 0 when
	// unsharded); its versions' numbers and the snapshot component it is read
	// against live on this shard's line.
	shard uint32
	owner atomic.Pointer[txn]
	head  atomic.Pointer[jversion]

	histMu sync.Mutex
	hist   []stm.VersionRecord
}

// VarID implements stm.IDedVar (commit-lock ordering).
func (v *jvar) VarID() uint64 { return v.id }

// NewVar implements stm.TM.
func (tm *TM) NewVar(initial stm.Value) stm.Var {
	v := &jvar{}
	v.head.Store(&jversion{value: initial})
	if b := tm.opts.Budget; b != nil {
		// The initial version is charged too: GC may free it once newer
		// versions exist, and releases must balance installs.
		b.Install(1, mvutil.ApproxVersionBytes(initial))
	}
	tm.varsMu.Lock()
	v.id = uint64(len(tm.vars)) + 1
	tm.vars = append(tm.vars, v)
	tm.varsMu.Unlock()
	if tm.sharded {
		v.shard = uint32(tm.shardOf(v.id))
	}
	return v
}

// shardOf maps a variable id to its clock shard through the configured
// sharder (default: round-robin), clamped into range.
func (tm *TM) shardOf(id uint64) int {
	k := tm.clock.Shards()
	if f := tm.opts.Sharder; f != nil {
		s := f(id, k) % k
		if s < 0 {
			s += k
		}
		return s
	}
	return tm.clock.ShardOf(id)
}

// txn is a JVSTM transaction. Descriptors are pooled (see Recycle); the
// slices keep their backing arrays across reuse.
type txn struct {
	tm       *TM
	stats    *stm.StatShard // striped counters; assigned once per descriptor
	readOnly bool
	start    uint64 // at ClockShards>1 the min over vec (GC registration)

	// vec is the per-shard snapshot vector, one consistent cut sampled at
	// Begin (sharded mode only; nil otherwise); every read of a variable in
	// shard s is judged against vec[s]. smask/wmask accumulate the footprint
	// shards of reads+writes and writes; a multi-bit smask routes Commit onto
	// the cross-shard draw.
	vec   []uint64
	smask uint64
	wmask uint64

	readSet  []*jvar
	writeSet stm.WriteSet[*jvar]
	locked   []*jvar
	slot     mvutil.Slot

	lastReason stm.AbortReason // why the last Commit returned false

	// shard is this descriptor's sticky combiner publication stripe. req and
	// inBatch serve the group-commit stage exactly as in internal/core: req is
	// the embedded combiner request, and inBatch — written only by the leader,
	// under the combiner's leader lock, always false by the time the request
	// resolves — marks membership in the batch being installed. wv is the
	// member's batch-assigned write version (leader state, same lock).
	shard   int
	req     mvutil.CommitReq
	inBatch bool
	wv      uint64

	// logRecs/logWrites/logShards are scratch for the commit-logger hand-off;
	// the logger must not retain them past Append (stm.CommitLogger contract).
	logRecs   []stm.CommitRecord
	logWrites []stm.LoggedWrite
	logShards []uint32
}

// logRecord builds this transaction's commit record over the scratch slices.
// JVSTM serializes in natural (write-version) order, so Tie == Serial == wv.
// At ClockShards>1 the record carries the write-footprint shard vector for
// recovery's per-shard max-Serial fold; unsharded records stay byte-identical
// on disk.
func (tx *txn) logRecord(wv uint64) stm.CommitRecord {
	ents := tx.writeSet.Entries()
	w := tx.logWrites[:0]
	for i := range ents {
		w = append(w, stm.LoggedWrite{VarID: ents[i].Key.id, Value: ents[i].Val})
	}
	tx.logWrites = w
	rec := stm.CommitRecord{Serial: wv, Tie: wv, Writes: w}
	if tx.tm.sharded {
		tx.logShards = tx.logShards[:0]
		for m := tx.wmask; m != 0; m &= m - 1 {
			tx.logShards = append(tx.logShards, uint32(bits.TrailingZeros64(m)))
		}
		rec.Shards = tx.logShards
	}
	return rec
}

// homeShard is the clock shard a single-shard-footprint transaction commits
// against (0 in unsharded mode, where the mask may be unset).
func (tx *txn) homeShard() int {
	if tx.smask != 0 {
		return bits.TrailingZeros64(tx.smask)
	}
	return 0
}

// snap is the snapshot component a read of v is judged against: the shard's
// vector component at ClockShards>1, the scalar start otherwise.
func (tx *txn) snap(v *jvar) uint64 {
	if tx.vec != nil {
		return tx.vec[v.shard]
	}
	return tx.start
}

// snapShard is snap by shard index (the commit shortcut's home-shard check).
func (tx *txn) snapShard(s int) uint64 {
	if tx.vec != nil {
		return tx.vec[s]
	}
	return tx.start
}

// ReadOnly implements stm.Tx.
func (tx *txn) ReadOnly() bool { return tx.readOnly }

// LastAbortReason implements stm.AbortReasoner: the reason of the most recent
// commit-time abort (read-path aborts travel in the retry signal).
func (tx *txn) LastAbortReason() stm.AbortReason { return tx.lastReason }

// failCommit records a commit-time abort with its reason, releases held locks
// and reports failure.
func (tx *txn) failCommit(reason stm.AbortReason) bool {
	tx.releaseLocks()
	tx.stats.RecordAbort(reason)
	tx.lastReason = reason
	return false
}

// Begin implements stm.TM.
func (tm *TM) Begin(readOnly bool) stm.Tx {
	tx := tm.txns.Get().(*txn)
	tx.readOnly = readOnly
	tx.stats.RecordStart()
	if tm.sharded {
		// One consistent per-shard vector cut (mvutil.ClockDomain.Snapshot).
		// Register the whole vector so the GC folds per-shard bounds from the
		// live components (gcLocked); the scalar min backs quiesce-style
		// consumers. Registering only the min would couple every shard's GC
		// bound to the slowest shard's clock.
		tx.vec = tm.clock.Snapshot(tx.vec)
		min := tx.vec[0]
		for _, c := range tx.vec[1:] {
			if c < min {
				min = c
			}
		}
		tm.active.RegisterVec(&tx.slot, tx.vec, min)
		tx.start = min
		return tx
	}
	// One clock sample serves both the active-set registration and the
	// snapshot: the GC bound is registered before the snapshot is used and
	// equals it, so the collector can never trim a version this transaction
	// may read.
	c0 := tm.clock.Load(0)
	tm.active.Register(&tx.slot, c0)
	tx.start = c0
	return tx
}

// Recycle implements stm.TxRecycler: reset the descriptor and return it to
// the pool. Only stm.Atomically calls this, after an attempt has fully
// finished; manual Begin/Commit users never recycle.
func (tm *TM) Recycle(txi stm.Tx) {
	tx, ok := txi.(*txn)
	if !ok {
		return
	}
	tx.readSet = stm.ResetVarSlice(tx.readSet)
	tx.writeSet.Reset()
	tx.locked = stm.ResetVarSlice(tx.locked)
	tx.start = 0
	tx.smask, tx.wmask = 0, 0 // vec keeps its backing array; Begin refills it
	tx.lastReason = stm.ReasonNone
	tm.txns.Put(tx)
}

// Read implements stm.Tx: multi-version reads never conflict-abort — the
// transaction walks back to the newest version at or before its snapshot.
//
// The read must first wait out a committer holding the variable's lock: a
// transaction that began after the committer drew its version number (so the
// new version belongs in this snapshot) could otherwise read the stale head
// while the committer is still publishing. The committer holds the lock from
// before its clock increment until after the insertion, so waiting here
// closes that window; readers hold no locks, so the wait always terminates.
func (tx *txn) Read(v stm.Var) stm.Value {
	tv := v.(*jvar)
	prof := tx.tm.prof.Load()
	var t0 int64
	if prof != nil {
		t0 = prof.Now()
	}
	if !tx.readOnly {
		if val, ok := tx.writeSet.Get(tv); ok {
			if prof != nil {
				prof.AddRead(prof.Now() - t0)
			}
			return val
		}
		tx.readSet = append(tx.readSet, tv)
		tx.smask |= 1 << tv.shard
	}
	for tv.owner.Load() != nil {
		runtime.Gosched()
	}
	snap := tx.snap(tv)
	ver := tv.head.Load()
	for ver.ver > snap {
		ver = ver.next.Load()
		if ver == nil {
			// A hard-pressure trim reclaimed the version this snapshot needs
			// (trim only cuts a chain suffix, so a walk that terminates
			// normally saw everything it would have pre-trim). Restart with a
			// fresh snapshot, which the trim depth always serves — the one
			// documented case where a read-only transaction aborts.
			tx.stats.RecordAbort(stm.ReasonMemoryPressure)
			stm.Retry(stm.ReasonMemoryPressure)
		}
	}
	if prof != nil {
		prof.AddRead(prof.Now() - t0)
	}
	return ver.value
}

// Write implements stm.Tx.
func (tx *txn) Write(v stm.Var, val stm.Value) {
	if tx.readOnly {
		panic("jvstm: Write on a read-only transaction")
	}
	tv := v.(*jvar)
	tx.smask |= 1 << tv.shard
	tx.wmask |= 1 << tv.shard
	tx.writeSet.Put(tv, val)
}

// Abort implements stm.TM.
func (tm *TM) Abort(txi stm.Tx) {
	tx := txi.(*txn)
	tx.releaseLocks()
	tm.active.Unregister(&tx.slot)
}

func (tx *txn) releaseLocks() {
	for _, v := range tx.locked {
		v.owner.CompareAndSwap(tx, nil)
	}
	tx.locked = tx.locked[:0]
}

// Commit implements stm.TM: lock write set, classic validation of the read
// set ("commit in the present"), publish versions at the new clock value.
func (tm *TM) Commit(txi stm.Tx) bool {
	tx := txi.(*txn)
	defer tm.active.Unregister(&tx.slot)
	if tx.readOnly || tx.writeSet.Len() == 0 {
		tx.stats.RecordCommit(tx.readOnly)
		return true
	}

	if tm.combiner != nil {
		// Group commit: publish the write set to the flat-combining stage and
		// let a leader — possibly this goroutine — perform the whole protocol
		// batched (groupcommit.go).
		return tm.commitGrouped(tx)
	}

	// Version-memory backpressure: before taking any commit lock, make sure
	// the budget can absorb this transaction's installs (see admitInstall).
	if tm.opts.Budget != nil && !tm.admitInstall() {
		return tx.failCommit(stm.ReasonMemoryPressure)
	}

	prof := tm.prof.Load()
	var t0 int64
	if prof != nil {
		t0 = prof.Now()
		defer prof.AddTx()
	}

	// Clock-pressure relief ("pass on abort", DESIGN.md §12): a commit whose
	// read set is already stale is certain to fail the authoritative
	// validation below — a head version number never decreases — so abort it
	// here, before any lock is taken and before the clock is bumped. Failed
	// commits that bump the clock age every concurrent snapshot for nothing;
	// passing on the bump also makes the wv == start+1 validation shortcut
	// below fire far more often. This check takes no lock waits: a head
	// mid-publication is left to the authoritative pass.
	for _, v := range tx.readSet {
		if v.head.Load().ver > tx.snap(v) {
			return tx.failCommit(stm.ReasonReadConflict)
		}
	}

	// Lookups are over: sort the write entries in place by id (deadlock
	// avoidance) without sort.Slice's closure allocations.
	ents := tx.writeSet.Entries()
	stm.SortEntriesByID(ents)
	for i := range ents {
		if !tx.lockVar(ents[i].Key) {
			return tx.failCommit(stm.ReasonWriteConflict)
		}
	}
	if prof != nil {
		now := prof.Now()
		prof.AddCommit(now - t0)
		t0 = now
	}

	// Draw the write version before validating (as TL2 does): every
	// committer with a smaller version number already held all its write
	// locks when it drew its number, so the lock wait below guarantees the
	// validation observes its versions. Drawing the number after validation
	// would let a reader outrun a writer it missed and still serialize after
	// it. A single-shard footprint draws from its shard's clock alone
	// (identical to the unsharded path at ClockShards=1); a cross-shard
	// footprint draws through the fence — one more than the maximum over
	// every touched shard's cell, every touched cell raised to wv under the
	// fence seqlock, so Begin's vector cuts never observe half of it.
	cross := tm.sharded && tx.smask&(tx.smask-1) != 0
	var wv uint64
	home := tx.homeShard()
	if cross {
		var casRetries int
		wv, casRetries = tm.clock.AdvanceCross(tx.smask)
		tx.stats.RecordShardCASRetries(casRetries)
	} else {
		wv = tm.clock.Add(home, 1)
	}

	// Classic validation: abort if any read variable has a version newer
	// than our snapshot. A concurrent committer that holds a lock on a read
	// variable is waited out (bounded) so we validate a stable head.
	//
	// The wv == start+1 shortcut (TL2's rv+1 rule): our increment directly
	// followed the clock value we began at, so every other committer drew
	// either at or below start — its publications are inside our snapshot,
	// and the read barrier already waited those out — or above wv, in which
	// case it serializes after us and cannot have produced a version our
	// reads missed. Nothing remains to validate. With a single-shard
	// footprint the same argument runs on the home shard's number line
	// against its snapshot component; a cross-shard draw has no shortcut
	// (several lines advanced) and validates every read per shard.
	if cross || wv != tx.snapShard(home)+1 {
		for _, v := range tx.readSet {
			if !tx.waitUnlocked(v) {
				return tx.failCommit(stm.ReasonLockTimeout)
			}
			if v.head.Load().ver > tx.snap(v) {
				if prof != nil {
					prof.AddReadSetVal(prof.Now() - t0)
				}
				return tx.failCommit(stm.ReasonReadConflict)
			}
		}
	}
	if prof != nil {
		now := prof.Now()
		prof.AddReadSetVal(now - t0)
		t0 = now
	}

	// Durability: the commit is decided — append the write set before any
	// version becomes visible (the locks are still held, and readers wait
	// them out), so the log's append order respects the reads-from order. A
	// refused append fails the commit with nothing installed.
	var lsn stm.LSN
	if l := tm.opts.Logger; l != nil {
		tx.logRecs = append(tx.logRecs[:0], tx.logRecord(wv))
		var err error
		if lsn, err = l.Append(tx.logRecs); err != nil {
			return tx.failCommit(stm.ReasonDurability)
		}
	}

	for i := range ents {
		v, val := ents[i].Key, ents[i].Val
		nv := &jversion{value: val, ver: wv}
		nv.next.Store(v.head.Load())
		v.head.Store(nv)
		if b := tm.opts.Budget; b != nil {
			b.Install(1, mvutil.ApproxVersionBytes(val))
		}
		if tm.history.Load() {
			v.histMu.Lock()
			v.hist = append(v.hist, stm.VersionRecord{Value: val, Serial: wv})
			v.histMu.Unlock()
		}
		v.owner.CompareAndSwap(tx, nil)
	}
	tx.locked = tx.locked[:0]
	if prof != nil {
		prof.AddCommit(prof.Now() - t0)
	}
	tx.stats.RecordCommit(false)
	if tm.sharded {
		tx.stats.RecordShardCommit(cross)
	}
	tm.maybeGC()
	if l := tm.opts.Logger; l != nil {
		// Wait out the fsync policy before acknowledging. A Durable failure
		// cannot demote the commit (its versions are visible); the latched
		// writer fails the next Append and the health watchdog surfaces it.
		l.Durable(lsn) //nolint:errcheck
	}
	return true
}

func (tx *txn) lockVar(v *jvar) bool {
	for spins := 0; ; spins++ {
		if v.owner.CompareAndSwap(nil, tx) {
			tx.locked = append(tx.locked, v)
			return true
		}
		if spins >= tx.tm.opts.LockSpinBudget {
			return false
		}
		runtime.Gosched()
	}
}

func (tx *txn) waitUnlocked(v *jvar) bool {
	for spins := 0; ; spins++ {
		o := v.owner.Load()
		if o == nil || o == tx {
			return true
		}
		if spins >= tx.tm.opts.LockSpinBudget {
			return false
		}
		runtime.Gosched()
	}
}

// gcOwner is the sentinel lock holder used by the garbage collector.
var gcOwner = new(txn)

func (tm *TM) maybeGC() {
	every := tm.opts.GCEveryNCommits
	if every < 0 {
		return
	}
	if tm.gcCount.Add(1)%uint64(every) != 0 {
		return
	}
	tm.GC()
}

// GC trims version tails below the oldest active snapshot, exactly as in
// internal/core but with the single (natural) time line. Passes are
// serialized so each pass's bound is at least its predecessor's (an older
// bound walking a fresher-truncated list would run off the tail).
func (tm *TM) GC() int {
	tm.gcMu.Lock()
	defer tm.gcMu.Unlock()
	return tm.gcLocked()
}

// gcLocked is the collection pass body; the caller holds gcMu. At
// ClockShards>1 the bound is computed per shard from the registered snapshot
// vectors (RegisterVec + MinStarts), capped by each shard's own clock —
// exact per domain, so one lagging shard clock cannot freeze collection on
// the others (see core/gc.go for the failure shape that motivates this).
func (tm *TM) gcLocked() int {
	var bounds [mvutil.MaxClockShards]uint64
	k := tm.clock.Shards()
	for s := 0; s < k; s++ {
		bounds[s] = tm.clock.Load(s)
	}
	tm.active.MinStarts(bounds[:k])
	tm.varsMu.Lock()
	vars := tm.vars
	tm.varsMu.Unlock()

	freed := 0
	var freedBytes int64
	for _, v := range vars {
		if !v.owner.CompareAndSwap(nil, gcOwner) {
			continue
		}
		bound := bounds[v.shard]
		ver := v.head.Load()
		for ver.ver > bound {
			next := ver.next.Load()
			if next == nil {
				// A trim pass already cut below the version visible at bound.
				break
			}
			ver = next
		}
		for tail := ver.next.Load(); tail != nil; tail = tail.next.Load() {
			freed++
			freedBytes += mvutil.ApproxVersionBytes(tail.value)
		}
		ver.next.Store(nil)
		v.owner.CompareAndSwap(gcOwner, nil)
	}
	if b := tm.opts.Budget; b != nil && freed > 0 {
		b.Release(int64(freed), freedBytes)
	}
	return freed
}

// trimLocked cuts every variable's chain to at most depth versions, newest
// first; the caller holds gcMu. It ignores the active-snapshot bound, so it
// may free versions an in-flight transaction still needs — those restart with
// stm.ReasonMemoryPressure when their read walk reaches the shortened end
// (the hard-pressure degradation; see DESIGN.md §11).
func (tm *TM) trimLocked(depth int) int {
	if depth < 1 {
		depth = 1
	}
	tm.varsMu.Lock()
	vars := tm.vars
	tm.varsMu.Unlock()

	freed := 0
	var freedBytes int64
	for _, v := range vars {
		if !v.owner.CompareAndSwap(nil, gcOwner) {
			continue
		}
		ver := v.head.Load()
		for i := 1; i < depth; i++ {
			next := ver.next.Load()
			if next == nil {
				break
			}
			ver = next
		}
		for tail := ver.next.Load(); tail != nil; tail = tail.next.Load() {
			freed++
			freedBytes += mvutil.ApproxVersionBytes(tail.value)
		}
		ver.next.Store(nil)
		v.owner.CompareAndSwap(gcOwner, nil)
	}
	if b := tm.opts.Budget; b != nil && freed > 0 {
		b.Release(int64(freed), freedBytes)
	}
	return freed
}

// admitInstall enforces the version budget before a commit may install new
// versions, mirroring internal/core: soft pressure triggers an eager
// non-blocking GC pass, hard pressure runs a blocking pass, then trims every
// chain to MaxVersionDepth, and when even trimming leaves the budget above
// its hard limit the install is refused. It runs before any commit lock is
// taken and reports whether the commit may proceed.
func (tm *TM) admitInstall() bool {
	b := tm.opts.Budget
	switch b.Level() {
	case mvutil.PressureNone:
		return true
	case mvutil.PressureSoft:
		if tm.gcMu.TryLock() {
			tm.gcLocked()
			tm.gcMu.Unlock()
			b.NoteSoftGC()
		}
		return true
	}
	tm.gcMu.Lock()
	if b.Level() == mvutil.PressureHard {
		tm.gcLocked()
		b.NoteSoftGC()
	}
	if b.Level() == mvutil.PressureHard {
		tm.trimLocked(tm.opts.MaxVersionDepth)
		b.NoteTrim()
	}
	level := b.Level()
	tm.gcMu.Unlock()
	if level == mvutil.PressureHard {
		b.NoteReject()
		return false
	}
	return true
}

// VersionCount returns the live version count of v (tests).
func (tm *TM) VersionCount(v stm.Var) int {
	tv := v.(*jvar)
	n := 0
	for ver := tv.head.Load(); ver != nil; ver = ver.next.Load() {
		n++
	}
	return n
}

// EnableHistory implements stm.HistoryRecording.
func (tm *TM) EnableHistory() { tm.history.Store(true) }

// History implements stm.HistoryRecording.
func (tm *TM) History(v stm.Var) []stm.VersionRecord {
	tv := v.(*jvar)
	tv.histMu.Lock()
	defer tv.histMu.Unlock()
	out := make([]stm.VersionRecord, len(tv.hist))
	copy(out, tv.hist)
	slices.SortFunc(out, func(a, b stm.VersionRecord) int {
		switch {
		case a.Serial < b.Serial:
			return -1
		case a.Serial > b.Serial:
			return 1
		}
		return 0
	})
	return out
}
