package jvstm_test

import (
	"testing"

	"repro/internal/dsg"
	"repro/internal/jvstm"
	"repro/internal/stm"
	"repro/internal/stm/stmtest"
)

func factory() stm.TM { return jvstm.New(jvstm.Options{}) }

func TestConformance(t *testing.T) {
	stmtest.Run(t, factory, stmtest.Options{RONeverAborts: true})
}

func TestSerializabilityDSG(t *testing.T) {
	dsg.CheckRandom(t, factory(), dsg.RunOptions{})
}

func TestSerializabilityDSGHighContention(t *testing.T) {
	dsg.CheckRandom(t, factory(), dsg.RunOptions{Vars: 3, Goroutines: 8, TxPerG: 120, Seed: 42})
}

func TestMultiVersionReadNeverBlocksOrAborts(t *testing.T) {
	tm := jvstm.New(jvstm.Options{GCEveryNCommits: -1})
	x := tm.NewVar("v0")

	ro := tm.Begin(true) // snapshot at version 0
	for i := 1; i <= 3; i++ {
		w := tm.Begin(false)
		w.Write(x, "newer")
		if !tm.Commit(w) {
			t.Fatalf("writer %d failed", i)
		}
	}
	// The old snapshot still reads its version.
	if got := ro.Read(x); got != "v0" {
		t.Fatalf("snapshot read = %v, want v0", got)
	}
	if !tm.Commit(ro) {
		t.Fatalf("read-only commit failed")
	}
	if n := tm.VersionCount(x); n != 4 {
		t.Fatalf("version count = %d, want 4", n)
	}
	if freed := tm.GC(); freed != 3 {
		t.Fatalf("freed = %d, want 3", freed)
	}
}

func TestFailedCommitReleasesWriteLocks(t *testing.T) {
	// Regression: a commit that fails read validation after acquiring write
	// locks must release them, or every later writer of those variables
	// live-locks on lock timeouts.
	tm := factory()
	x := tm.NewVar(0)
	y := tm.NewVar(0)

	t1 := tm.Begin(false)
	t1.Read(x)
	t1.Write(y, 1) // t1 will lock y, then fail validating x

	t2 := tm.Begin(false)
	t2.Write(x, 1)
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}
	if tm.Commit(t1) {
		t.Fatalf("t1 should fail classic validation")
	}
	// y must be writable again without retries.
	t3 := tm.Begin(false)
	t3.Write(y, 2)
	if !tm.Commit(t3) {
		t.Fatalf("write lock leaked by failed commit")
	}
	snap := tm.Stats().Snapshot()
	if snap.ByReason["lock-timeout"] != 0 {
		t.Fatalf("lock timeouts recorded: %v", snap.ByReason)
	}
}

func TestClassicValidationAbortsStaleRead(t *testing.T) {
	// JVSTM reads never abort mid-flight (unlike TL2), but the classic
	// commit-time validation still rejects the time-warpable history —
	// exactly the gap TWM closes.
	tm := factory()
	x := tm.NewVar(0)
	y := tm.NewVar(0)

	t1 := tm.Begin(false)
	if got := t1.Read(x); got != 0 {
		t.Fatalf("read = %v", got)
	}
	t1.Write(y, 1)

	t2 := tm.Begin(false)
	t2.Write(x, 1)
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}
	// The read stays serviceable (multi-version)...
	if got := t1.Read(x); got != 0 {
		t.Fatalf("stale snapshot read = %v, want 0", got)
	}
	// ...but commit-in-the-present validation aborts.
	if tm.Commit(t1) {
		t.Fatalf("JVSTM must abort on stale read at commit")
	}
}

func TestDoomedCommitPassesOnClock(t *testing.T) {
	// Clock-pressure relief: a commit whose read set is already stale is
	// rejected by the pre-lock doom check, before the clock is bumped —
	// failed commits must not age concurrent snapshots.
	tm := jvstm.New(jvstm.Options{})
	x := tm.NewVar(0)
	y := tm.NewVar(0)

	t1 := tm.Begin(false)
	if got := t1.Read(x); got != 0 {
		t.Fatalf("read = %v", got)
	}
	t1.Write(y, 1)

	t2 := tm.Begin(false)
	t2.Write(x, 1)
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}

	before := tm.Clock()
	if tm.Commit(t1) {
		t.Fatalf("t1 must abort on its stale read set")
	}
	if after := tm.Clock(); after != before {
		t.Fatalf("doomed commit bumped the clock: %d -> %d", before, after)
	}
}
