package jvstm_test

import (
	"testing"

	"repro/internal/jvstm"
	"repro/internal/mvutil"
	"repro/internal/stm"
)

// TestBudgetSoftGCEager mirrors the core test: past the soft limit, commits
// trigger eager GC (automatic GC is disabled, so the budget is the only
// collector) and version memory stabilizes.
func TestBudgetSoftGCEager(t *testing.T) {
	b := mvutil.NewVersionBudget(mvutil.BudgetConfig{SoftVersions: 8, HardVersions: 10_000})
	tm := jvstm.New(jvstm.Options{GCEveryNCommits: -1, Budget: b})
	v := stm.NewTVar(tm, 0)
	for i := 0; i < 50; i++ {
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			v.Set(tx, v.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if b.SoftGCs() == 0 {
		t.Fatal("no eager GC pass ran past the soft limit")
	}
	if got := b.Versions(); got > 9 {
		t.Fatalf("version memory did not stabilize: %d live versions (soft limit 8)", got)
	}
	if b.Trims() != 0 || b.Rejects() != 0 {
		t.Fatalf("soft pressure escalated to trim/reject: %+v", b.Snapshot())
	}
}

// TestBudgetHardTrimRevokesPinnedReader: with GC blocked by a pinned old
// snapshot, hard pressure trims chains; the pinned reader's next read
// restarts with ReasonMemoryPressure while fresh snapshots are served.
func TestBudgetHardTrimRevokesPinnedReader(t *testing.T) {
	b := mvutil.NewVersionBudget(mvutil.BudgetConfig{SoftVersions: 4, HardVersions: 8})
	tm := jvstm.New(jvstm.Options{GCEveryNCommits: -1, Budget: b, MaxVersionDepth: 2})
	v := stm.NewTVar(tm, 0)

	ro := tm.Begin(true) // pin the initial snapshot

	for i := 0; i < 30; i++ {
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			v.Set(tx, v.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Trims() == 0 {
		t.Fatalf("hard pressure never trimmed: %+v", b.Snapshot())
	}
	if got := tm.VersionCount(v.Raw()); got > 9 {
		t.Fatalf("chain depth %d despite hard limit 8", got)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("pinned read-only transaction read a trimmed chain without restarting")
			}
		}()
		ro.Read(v.Raw())
	}()
	tm.Abort(ro)
	if got := tm.Stats().Snapshot().ByReason[stm.ReasonMemoryPressure.String()]; got == 0 {
		t.Fatal("memory-pressure abort not recorded")
	}

	var got int
	if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
		got = v.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Fatalf("recovered read = %d, want 30", got)
	}
}

// TestBudgetHardReject: trimming cannot get below the hard limit when the
// per-variable floor exceeds it, so installs are refused; releasing the
// pinned snapshot restores full service.
func TestBudgetHardReject(t *testing.T) {
	b := mvutil.NewVersionBudget(mvutil.BudgetConfig{SoftVersions: 4, HardVersions: 8})
	tm := jvstm.New(jvstm.Options{GCEveryNCommits: -1, Budget: b, MaxVersionDepth: 4})
	vars := make([]*stm.TVar[int], 4)
	for i := range vars {
		vars[i] = stm.NewTVar(tm, 0)
	}

	ro := tm.Begin(true) // pin

	var rejected stm.Tx
	for i := 0; i < 10; i++ {
		tx := tm.Begin(false)
		for _, v := range vars {
			tx.Write(v.Raw(), i)
		}
		if !tm.Commit(tx) {
			rejected = tx
			break
		}
	}
	if rejected == nil {
		t.Fatalf("no commit was refused under blocked-GC hard pressure: %+v", b.Snapshot())
	}
	if got := rejected.(stm.AbortReasoner).LastAbortReason(); got != stm.ReasonMemoryPressure {
		t.Fatalf("reject reason = %v, want memory-pressure", got)
	}
	if b.Rejects() == 0 {
		t.Fatal("reject not counted in the budget")
	}

	tm.Abort(ro)
	tx := tm.Begin(false)
	for _, v := range vars {
		tx.Write(v.Raw(), 99)
	}
	if !tm.Commit(tx) {
		t.Fatalf("commit still refused after pin release: %+v", b.Snapshot())
	}
	if lvl := b.Level(); lvl == mvutil.PressureHard {
		t.Fatalf("level = %v after recovery", lvl)
	}
}
