package jvstm

import (
	"math/bits"
	"runtime"

	"repro/internal/mvutil"
	"repro/internal/stm"
)

// This file is the JVSTM group-commit stage: the same flat-combining batch
// shape as internal/core/groupcommit.go — pairwise write-write-disjoint
// admission with spill, all members locked before any is processed, one clock
// advance of k covering write versions base-k+1..base, members installed in
// version order — but with the classic validation rule applied at each
// member's turn. A member that reads a variable an earlier member wrote sees
// the freshly installed head and aborts with stm.ReasonReadConflict, exactly
// as in the sequential schedule the batch is equivalent to; TWM would warp
// there instead, which is the paper's contrast and it survives batching
// unchanged.

// commitGrouped publishes tx to the combiner and waits for a leader —
// possibly this goroutine — to resolve it.
func (tm *TM) commitGrouped(tx *txn) bool {
	tx.req.Reset(tx)
	ok, handoff := tm.combiner.Submit(&tx.req, tx.shard, tm.commitBatch)
	if handoff {
		tx.stats.RecordHandoff()
	}
	return ok
}

// commitBatch installs one drained batch. It always runs under the combiner's
// leader lock, which guards the TM's batch scratch state; it must resolve
// every request exactly once.
func (tm *TM) commitBatch(reqs []*mvutil.CommitReq) {
	if tm.batchClaimed == nil {
		tm.batchClaimed = make(map[*jvar]struct{}, 64)
	}
	pend := tm.batchPend[:0]
	for _, r := range reqs {
		pend = append(pend, r.Tx.(*txn))
	}
	tm.batchPend = pend
	for len(pend) > 0 {
		pend = tm.commitRound(pend)
	}
	// Drop descriptor references: a resolved member may be recycled by its
	// submitter at any time, and TM-held scratch must not pin it.
	clear(tm.batchPend[:cap(tm.batchPend)])
	clear(tm.batchAdmitted[:cap(tm.batchAdmitted)])
	clear(tm.batchShard[:cap(tm.batchShard)])
	clear(tm.batchLogged[:cap(tm.batchLogged)])
	clear(tm.batchRecs[:cap(tm.batchRecs)])
}

// commitRound admits a write-write-disjoint subset of pend, installs it under
// one clock advance, and returns the members spilled to the next round.
func (tm *TM) commitRound(pend []*txn) []*txn {
	// Version-memory backpressure, once per round on behalf of every member.
	if tm.opts.Budget != nil && !tm.admitInstall() {
		for _, m := range pend {
			tm.finishMember(m, stm.ReasonMemoryPressure)
		}
		return nil
	}

	// Durability fail-fast: a latched logger can never accept another append,
	// so fail the round at the door — before any lock or clock tick — instead
	// of installing versions whose batch record is known to be unwritable.
	logger := tm.opts.Logger
	if logger != nil {
		if e, ok := logger.(interface{ Err() error }); ok && e.Err() != nil {
			for _, m := range pend {
				tm.finishMember(m, stm.ReasonDurability)
			}
			return nil
		}
	}

	// Selection: members whose read set is already stale fail without
	// consuming clock ticks (the serial path's pass-on-abort relief — a head
	// version number never decreases, so the verdict is final), and each
	// survivor joins the batch iff its write set is disjoint from every
	// earlier member's claims.
	admitted := tm.batchAdmitted[:0]
	spill := pend[:0]
	clear(tm.batchClaimed)
	for _, m := range pend {
		stale := false
		for _, v := range m.readSet {
			if v.head.Load().ver > m.snap(v) {
				stale = true
				break
			}
		}
		if stale {
			tm.finishMember(m, stm.ReasonReadConflict)
			continue
		}
		ents := m.writeSet.Entries()
		stm.SortEntriesByID(ents)
		overlap := false
		for i := range ents {
			if _, ok := tm.batchClaimed[ents[i].Key]; ok {
				overlap = true
				break
			}
		}
		if overlap {
			m.stats.RecordBatchSpills(1)
			spill = append(spill, m)
			continue
		}
		for i := range ents {
			tm.batchClaimed[ents[i].Key] = struct{}{}
		}
		admitted = append(admitted, m)
	}
	tm.batchAdmitted = admitted

	// Lock phase: acquire every admitted member's commit locks (per member in
	// id order) before any member is processed. Every update commit flows
	// through the combiner, so the only possible contender is the GC's
	// try-lock sentinel.
	locked := admitted[:0]
	for _, m := range admitted {
		m.inBatch = true
		got := true
		for _, e := range m.writeSet.Entries() {
			if !m.lockVar(e.Key) {
				got = false
				break
			}
		}
		if !got {
			tm.finishMember(m, stm.ReasonWriteConflict)
			continue
		}
		locked = append(locked, m)
	}
	k := len(locked)
	if k == 0 {
		return spill
	}

	// Write-version assignment, after the lock phase so the serial invariant
	// holds: a committer owns all its write locks when it draws its number —
	// a reader whose snapshot covers a member's version waits on that
	// member's lock until the version is installed. Unsharded, one clock
	// advance of k covers the batch, members taking base-k+1..base in
	// admitted order. Sharded, assignShardOrders reorders the batch into
	// per-shard runs (one Add per populated shard) followed by the
	// cross-footprint members (one fence draw each); write versions still
	// ascend per shard in processing order, which is all the sequential-
	// schedule argument below needs — two members touching a common variable
	// share that variable's shard, so their processing order matches their
	// version order on its number line.
	locked[0].stats.RecordBatch(k)
	if tm.sharded {
		locked = tm.assignShardOrders(locked)
	} else {
		base := tm.clock.Add(0, uint64(k))
		first := base - uint64(k) + 1
		locked[0].stats.RecordClockAdvance()
		for i, m := range locked {
			m.wv = first + uint64(i)
		}
	}

	// Install phase: validate and publish members in version order. Each
	// member validates against the heads left by every earlier member, so the
	// batch is observationally the sequential schedule m_1; ...; m_k. The
	// serial wv == snap+1 shortcut needs no special casing here: member i's
	// write version on its shard is above every earlier same-shard member's
	// snapshot component (the shard's Add follows every member's Begin), so
	// the shortcut can only fire for a shard run's first member, for which it
	// is the ordinary TL2 argument on that number line. Cross-footprint
	// members advanced several number lines and always validate in full.
	var charge mvutil.BatchCharge
	logged := tm.batchLogged[:0]
	tm.batchRecs = tm.batchRecs[:0]
	for _, m := range locked {
		wv := m.wv
		cross := tm.sharded && m.smask&(m.smask-1) != 0
		if cross || wv != m.snapShard(m.homeShard())+1 {
			r := stm.ReasonNone
			for _, v := range m.readSet {
				if !m.waitUnlockedBatch(v) {
					r = stm.ReasonLockTimeout
					break
				}
				if v.head.Load().ver > m.snap(v) {
					r = stm.ReasonReadConflict
					break
				}
			}
			if r != stm.ReasonNone {
				tm.finishMember(m, r)
				continue
			}
		}
		ents := m.writeSet.Entries()
		for j := range ents {
			v, val := ents[j].Key, ents[j].Val
			nv := &jversion{value: val, ver: wv}
			nv.next.Store(v.head.Load())
			v.head.Store(nv)
			if tm.opts.Budget != nil {
				charge.Add(1, mvutil.ApproxVersionBytes(val))
			}
			if tm.history.Load() {
				v.histMu.Lock()
				v.hist = append(v.hist, stm.VersionRecord{Value: val, Serial: wv})
				v.histMu.Unlock()
			}
			if logger == nil {
				v.owner.CompareAndSwap(m, nil)
			}
		}
		if logger == nil {
			m.locked = m.locked[:0]
			m.inBatch = false
			m.stats.RecordCommit(false)
			if tm.sharded {
				m.stats.RecordShardCommit(cross)
			}
			m.req.Finish(true)
			continue
		}
		// Durability path: keep the commit locks — a head is only readable
		// once its variable unlocks (readers wait owners out), so deferring
		// the unlock to after the batch append preserves append-before-visible
		// without disturbing intra-batch validation.
		logged = append(logged, m)
		tm.batchRecs = append(tm.batchRecs, m.logRecord(wv))
	}
	tm.batchLogged = logged
	if logger != nil && len(logged) > 0 {
		// One record per clock advance: the batch's survivors in version
		// order, appended while every survivor's write locks are still held.
		lsn, err := logger.Append(tm.batchRecs)
		for _, m := range logged {
			m.releaseLocks()
			m.inBatch = false
		}
		if err == nil {
			// Group commit: one durability wait covers the whole batch.
			logger.Durable(lsn) //nolint:errcheck
		}
		// On append failure the members were already installed, so the batch
		// stands in memory un-logged; acks must be gated on Writer.Err by
		// callers that promise zero loss (see internal/server).
		for _, m := range logged {
			m.stats.RecordCommit(false)
			if tm.sharded {
				m.stats.RecordShardCommit(m.smask&(m.smask-1) != 0)
			}
			m.req.Finish(true)
		}
	}
	charge.Flush(tm.opts.Budget)
	tm.maybeGCBatch(k)
	return spill
}

// assignShardOrders reorders a locked batch for a sharded clock and assigns
// each member's write version (m.wv). Single-shard-footprint members are
// stable-partitioned into per-shard runs, each run taking one Add(s, k_s) on
// its shard's clock and consecutive write versions in admitted order;
// cross-footprint members go last, each drawing its version through the
// fence (AdvanceCross over the full footprint), which lands above every run
// version on every shard it touches. Write versions therefore ascend per
// shard in processing order — the invariant the install loop's
// sequential-schedule argument relies on. Returns the new processing order
// (tm.batchShard scratch, valid under the leader lock).
func (tm *TM) assignShardOrders(locked []*txn) []*txn {
	out := tm.batchShard[:0]
	var groupMask uint64
	ncross := 0
	for _, m := range locked {
		if m.smask&(m.smask-1) == 0 {
			groupMask |= m.smask
		} else {
			ncross++
		}
	}
	for mask := groupMask; mask != 0; mask &= mask - 1 {
		s := bits.TrailingZeros64(mask)
		start := len(out)
		for _, m := range locked {
			if m.smask == 1<<uint(s) {
				out = append(out, m)
			}
		}
		ks := uint64(len(out) - start)
		base := tm.clock.Add(s, ks)
		first := base - ks + 1
		out[start].stats.RecordClockAdvance()
		for i, m := range out[start:] {
			m.wv = first + uint64(i)
		}
	}
	if ncross > 0 {
		for _, m := range locked {
			if m.smask&(m.smask-1) == 0 {
				continue
			}
			wv, casRetries := tm.clock.AdvanceCross(m.smask)
			m.stats.RecordShardCASRetries(casRetries)
			m.stats.RecordClockAdvance()
			m.wv = wv
			out = append(out, m)
		}
	}
	tm.batchShard = out
	return out
}

// waitUnlockedBatch is the leader's variant of waitUnlocked: locks held by
// other members of the batch being installed count as unlocked — their heads
// are exactly the heads the sequential schedule would show this member, since
// not-yet-processed members have published nothing. Only the GC's try-lock
// sentinel (never in a batch) is genuinely waited out.
func (m *txn) waitUnlockedBatch(v *jvar) bool {
	for spins := 0; ; spins++ {
		o := v.owner.Load()
		if o == nil || o == m || o.inBatch {
			return true
		}
		if spins >= m.tm.opts.LockSpinBudget {
			return false
		}
		runtime.Gosched()
	}
}

// finishMember resolves one batch member as aborted: locks released, stats and
// descriptor reason recorded. Everything the submitter may observe is written
// before Finish — it can recycle the descriptor the moment Done reports true.
func (tm *TM) finishMember(m *txn, reason stm.AbortReason) {
	m.inBatch = false
	m.releaseLocks()
	m.stats.RecordAbort(reason)
	m.lastReason = reason
	m.req.Finish(false)
}

// maybeGCBatch is maybeGC for a batch of k commits: the commit counter
// advances by k at once, and a pass runs if the count crossed a multiple of
// the configured period anywhere inside the jump.
func (tm *TM) maybeGCBatch(k int) {
	every := tm.opts.GCEveryNCommits
	if every < 0 || k == 0 {
		return
	}
	e := uint64(every)
	n := tm.gcCount.Add(uint64(k))
	if n/e != (n-uint64(k))/e {
		tm.GC()
	}
}
