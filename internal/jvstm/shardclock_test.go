package jvstm_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dsg"
	"repro/internal/jvstm"
	"repro/internal/stm"
	"repro/internal/stm/stmtest"
)

// Partitioned multi-clock tests for the JVSTM baseline (DESIGN.md §17): the
// conformance and serializability batteries at several shard counts, the
// single- vs cross-shard commit accounting, and per-shard clock seeding.
// JVSTM never time-warps, so sharding only changes which number line a
// commit draws from — the classic validation rule is otherwise untouched.

func shardFactory(k int, group bool) func() stm.TM {
	return func() stm.TM {
		return jvstm.New(jvstm.Options{ClockShards: k, GroupCommit: group})
	}
}

func TestConformanceClockShards(t *testing.T) {
	for _, k := range []int{2, 4, 16} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			stmtest.Run(t, shardFactory(k, false), stmtest.Options{RONeverAborts: true})
		})
	}
}

func TestSerializabilityDSGClockShards(t *testing.T) {
	for _, k := range []int{2, 4, 16} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			dsg.CheckRandom(t, shardFactory(k, false)(), dsg.RunOptions{Seed: uint64(30 + k)})
		})
	}
}

func TestSerializabilityDSGClockShardsHighContention(t *testing.T) {
	// Few variables over few shards: almost every update transaction has a
	// multi-shard footprint, hammering the fence draw and per-shard
	// validation.
	for _, k := range []int{2, 4} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			dsg.CheckRandom(t, shardFactory(k, false)(),
				dsg.RunOptions{Vars: 3, Goroutines: 8, TxPerG: 120, Seed: uint64(300 + k)})
		})
	}
}

func TestSerializabilityDSGClockShardsGroupCommit(t *testing.T) {
	for _, k := range []int{2, 4} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			dsg.CheckRandom(t, shardFactory(k, true)(),
				dsg.RunOptions{Vars: 4, Goroutines: 8, TxPerG: 120, Seed: uint64(400 + k)})
		})
	}
}

func TestConformanceClockShardsGroupCommit(t *testing.T) {
	stmtest.Run(t, shardFactory(4, true), stmtest.Options{RONeverAborts: true})
}

func TestShardCommitAccounting(t *testing.T) {
	tm := jvstm.New(jvstm.Options{ClockShards: 4})
	a := tm.NewVar(0) // round-robin: shard 0
	b := tm.NewVar(0) // shard 1
	if tm.VarShard(a) == tm.VarShard(b) {
		t.Fatalf("round-robin sharder put consecutive vars on one shard")
	}

	tx := tm.Begin(false)
	tx.Write(a, 1)
	if !tm.Commit(tx) {
		t.Fatalf("single-shard commit failed")
	}
	snap := tm.Stats().Snapshot()
	if snap.SingleShardCommits != 1 || snap.CrossShardCommits != 0 {
		t.Fatalf("after single-shard commit: single=%d cross=%d",
			snap.SingleShardCommits, snap.CrossShardCommits)
	}

	tx = tm.Begin(false)
	if got := tx.Read(a); got != 1 {
		t.Fatalf("read a = %v", got)
	}
	tx.Write(b, 2)
	if !tm.Commit(tx) {
		t.Fatalf("cross-shard commit failed")
	}
	snap = tm.Stats().Snapshot()
	if snap.SingleShardCommits != 1 || snap.CrossShardCommits != 1 {
		t.Fatalf("after cross-shard commit: single=%d cross=%d",
			snap.SingleShardCommits, snap.CrossShardCommits)
	}
}

func TestShardCustomSharder(t *testing.T) {
	tm := jvstm.New(jvstm.Options{
		ClockShards: 4,
		Sharder:     func(id uint64, shards int) int { return 2 },
	})
	a, b := tm.NewVar(0), tm.NewVar(0)
	if tm.VarShard(a) != 2 || tm.VarShard(b) != 2 {
		t.Fatalf("sharder not honored: shards %d, %d", tm.VarShard(a), tm.VarShard(b))
	}
	tx := tm.Begin(false)
	tx.Read(a)
	tx.Write(b, 1)
	if !tm.Commit(tx) {
		t.Fatalf("commit failed")
	}
	if snap := tm.Stats().Snapshot(); snap.CrossShardCommits != 0 || snap.SingleShardCommits != 1 {
		t.Fatalf("colocated footprint took the cross path: %+v", snap)
	}
}

// TestShardStaleReadAborts: classic validation per shard — a transaction that
// read a variable overwritten after its snapshot aborts whether or not the
// conflicting write lives on another shard.
func TestShardStaleReadAborts(t *testing.T) {
	tm := jvstm.New(jvstm.Options{ClockShards: 4})
	a := tm.NewVar("D") // shard 0
	b := tm.NewVar("E") // shard 1

	t3 := tm.Begin(false)
	t3.Read(a)
	t3.Write(b, "nil")

	t2 := tm.Begin(false)
	t2.Read(a)
	t2.Write(a, "B")
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}
	if tm.Commit(t3) {
		t.Fatalf("stale cross-shard read must abort under classic validation")
	}
	snap := tm.Stats().Snapshot()
	if snap.ByReason["read-conflict"] != 1 {
		t.Fatalf("abort reasons = %v, want one read-conflict", snap.ByReason)
	}
}

// TestSeedClockShardMonotone races per-shard and global clock seeding against
// concurrent single-shard committers on every shard (the recovery
// fast-forward path). No committed update may be lost and the final clock
// vector must dominate every seed.
func TestSeedClockShardMonotone(t *testing.T) {
	const (
		k       = 4
		workers = 8
		perW    = 300
		seedTo  = 5000
	)
	tm := jvstm.New(jvstm.Options{ClockShards: k})
	vars := make([]stm.Var, k)
	for i := range vars {
		vars[i] = tm.NewVar(0) // round-robin: vars[i] on shard i
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := vars[w%k]
			for i := 0; i < perW; i++ {
				err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					tx.Write(v, tx.Read(v).(int)+1)
					return nil
				})
				if err != nil {
					t.Errorf("atomic increment: %v", err)
					return
				}
			}
		}(w)
	}
	for s := 0; s < k; s++ {
		tm.SeedClockShard(s, seedTo)
	}
	tm.SeedClock(seedTo / 2) // lower global seed must be a no-op
	wg.Wait()

	vec := tm.ClockVec(nil)
	if len(vec) != k {
		t.Fatalf("ClockVec len = %d, want %d", len(vec), k)
	}
	for s, c := range vec {
		if c < seedTo {
			t.Fatalf("shard %d clock %d below seed %d", s, c, seedTo)
		}
	}
	total := 0
	ro := tm.Begin(true)
	for _, v := range vars {
		total += ro.Read(v).(int)
	}
	tm.Commit(ro)
	if want := workers * perW; total != want {
		t.Fatalf("lost updates across seeding: got %d, want %d", total, want)
	}
}

// TestShardGC: per-shard GC bounds keep exactly the newest version per
// variable once no snapshot can need older ones.
func TestShardGC(t *testing.T) {
	tm := jvstm.New(jvstm.Options{ClockShards: 4, GCEveryNCommits: -1})
	vars := make([]stm.Var, 8)
	for i := range vars {
		vars[i] = tm.NewVar(0)
	}
	for round := 1; round <= 5; round++ {
		for _, v := range vars {
			tx := tm.Begin(false)
			tx.Write(v, round)
			if !tm.Commit(tx) {
				t.Fatalf("commit failed")
			}
		}
	}
	tm.GC()
	for i, v := range vars {
		if n := tm.VersionCount(v); n != 1 {
			t.Fatalf("var %d retains %d versions after GC, want 1", i, n)
		}
		ro := tm.Begin(true)
		if got := ro.Read(v); got != 5 {
			t.Fatalf("var %d = %v after GC, want 5", i, got)
		}
		tm.Commit(ro)
	}
}
