// Package dsg is a mechanical serializability oracle based on Adya's Direct
// Serialization Graph, the formalism §3.1 and §4 of the TWM paper reason
// with. A recorded history is serializable iff its DSG — read-, write- and
// anti-dependency edges over committed transactions — is acyclic.
//
// The oracle needs two inputs:
//
//   - per-transaction observations (which value each committed transaction
//     read from and wrote to each variable), collected by the test driver;
//     written values are unique, so a read value identifies the version and
//     its writer;
//   - the per-variable version order, reported by the engine under test via
//     stm.HistoryRecording in its own serialization order.
//
// From those it builds wr edges (version writer -> reader), ww edges
// (consecutive version writers) and rw edges (reader of version i -> writer
// of version i+1) and checks acyclicity, reporting a concrete cycle on
// failure.
package dsg

import (
	"fmt"
	"sort"

	"repro/internal/stm"
)

// TxID identifies a committed transaction in a recorded history. ID 0 is the
// virtual initializing transaction that wrote every variable's initial value.
type TxID int

// TxRecord is one committed transaction's observations.
type TxRecord struct {
	ID       TxID
	ReadOnly bool
	// Reads maps variable index -> value observed. Reads of self-written
	// values (read-after-write) should be omitted or will be skipped.
	Reads map[int]int64
	// Writes maps variable index -> value written.
	Writes map[int]int64
}

// EdgeKind labels DSG edges.
type EdgeKind uint8

const (
	// WR is a read dependency: the target read a version the source wrote.
	WR EdgeKind = iota
	// WW is a write dependency: the target overwrote a version the source
	// wrote (consecutive in the version order).
	WW
	// RW is an anti-dependency: the source read a version the target
	// replaced with a newer one.
	RW
)

func (k EdgeKind) String() string {
	switch k {
	case WR:
		return "wr"
	case WW:
		return "ww"
	case RW:
		return "rw"
	}
	return "?"
}

// Edge is one labelled DSG edge.
type Edge struct {
	From, To TxID
	Kind     EdgeKind
	Var      int
}

// Graph is a DSG over a committed history.
type Graph struct {
	edges map[TxID][]Edge
	nodes map[TxID]bool
}

// Build constructs the DSG for a history.
//
// vars are the engine variables in index order; histories come from tm (which
// must have had history recording enabled before the run); records are the
// committed transactions' observations. initial[i] is variable i's initial
// value (attributed to the virtual transaction 0).
func Build(tm stm.HistoryRecording, vars []stm.Var, initial []int64, records []TxRecord) (*Graph, error) {
	g := &Graph{edges: make(map[TxID][]Edge), nodes: make(map[TxID]bool)}
	g.nodes[0] = true
	for _, r := range records {
		if r.ID == 0 {
			return nil, fmt.Errorf("dsg: transaction id 0 is reserved")
		}
		if g.nodes[r.ID] {
			return nil, fmt.Errorf("dsg: duplicate transaction id %d", r.ID)
		}
		g.nodes[r.ID] = true
	}

	// writerOf maps (var, value) -> writing transaction.
	type verKey struct {
		v   int
		val int64
	}
	writerOf := make(map[verKey]TxID)
	for i, init := range initial {
		writerOf[verKey{i, init}] = 0
	}
	for _, r := range records {
		for v, val := range r.Writes {
			k := verKey{v, val}
			if prev, dup := writerOf[k]; dup {
				return nil, fmt.Errorf("dsg: value %d of var %d written by both tx %d and tx %d (values must be unique)", val, v, prev, r.ID)
			}
			writerOf[k] = r.ID
		}
	}

	// Per-variable version chains from the engine's reported serialization
	// order; elided versions (TWM clash victims) participate in ww edges but
	// are never read.
	versionChain := make([][]TxID, len(vars))
	readable := make(map[verKey]int) // position of readable versions in chain
	for i, v := range vars {
		chain := []TxID{0}
		readable[verKey{i, initial[i]}] = 0
		for _, rec := range tm.History(v) {
			val, ok := rec.Value.(int64)
			if !ok {
				return nil, fmt.Errorf("dsg: var %d history holds %T, want int64", i, rec.Value)
			}
			w, ok := writerOf[verKey{i, val}]
			if !ok {
				return nil, fmt.Errorf("dsg: var %d version value %d has no recorded writer", i, val)
			}
			chain = append(chain, w)
			if !rec.Elided {
				readable[verKey{i, val}] = len(chain) - 1
			}
		}
		versionChain[i] = chain
		// ww edges along the chain.
		for p := 1; p < len(chain); p++ {
			g.addEdge(Edge{From: chain[p-1], To: chain[p], Kind: WW, Var: i})
		}
	}

	// wr and rw edges from reads.
	for _, r := range records {
		for v, val := range r.Reads {
			w, ok := writerOf[verKey{v, val}]
			if !ok {
				return nil, fmt.Errorf("dsg: tx %d read value %d of var %d with no writer (phantom value)", r.ID, val, v)
			}
			if w == r.ID {
				continue // read-after-write, no edge
			}
			g.addEdge(Edge{From: w, To: r.ID, Kind: WR, Var: v})
			pos, ok := readable[verKey{v, val}]
			if !ok {
				return nil, fmt.Errorf("dsg: tx %d read elided/unknown version %d of var %d", r.ID, val, v)
			}
			// Anti-dependency toward the next version's writer, if any.
			if pos+1 < len(versionChain[v]) {
				next := versionChain[v][pos+1]
				if next != r.ID {
					g.addEdge(Edge{From: r.ID, To: next, Kind: RW, Var: v})
				}
			}
		}
	}
	return g, nil
}

func (g *Graph) addEdge(e Edge) {
	if e.From == e.To {
		return
	}
	g.edges[e.From] = append(g.edges[e.From], e)
}

// Nodes returns the number of transactions in the graph (including the
// virtual initializer).
func (g *Graph) Nodes() int { return len(g.nodes) }

// Edges returns the total edge count.
func (g *Graph) Edges() int {
	n := 0
	for _, es := range g.edges {
		n += len(es)
	}
	return n
}

// FindCycle returns a cycle as a sequence of edges, or nil if the graph is
// acyclic (i.e. the history is serializable).
func (g *Graph) FindCycle() []Edge {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[TxID]int, len(g.nodes))
	var stack []Edge
	var cycle []Edge

	var visit func(n TxID) bool
	visit = func(n TxID) bool {
		color[n] = grey
		for _, e := range g.edges[n] {
			switch color[e.To] {
			case white:
				stack = append(stack, e)
				if visit(e.To) {
					return true
				}
				stack = stack[:len(stack)-1]
			case grey:
				// Found a back edge: extract the cycle from the stack.
				stack = append(stack, e)
				start := 0
				for i, se := range stack {
					if se.From == e.To {
						start = i
						break
					}
				}
				cycle = append(cycle, stack[start:]...)
				return true
			}
		}
		color[n] = black
		return false
	}

	// Deterministic iteration for reproducible failure reports.
	ids := make([]TxID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if color[id] == white {
			stack = stack[:0]
			if visit(id) {
				return cycle
			}
		}
	}
	return nil
}

// FormatCycle renders a cycle for failure messages.
func FormatCycle(cycle []Edge) string {
	if len(cycle) == 0 {
		return "(acyclic)"
	}
	s := ""
	for _, e := range cycle {
		s += fmt.Sprintf("T%d -%s(v%d)-> ", e.From, e.Kind, e.Var)
	}
	return s + fmt.Sprintf("T%d", cycle[len(cycle)-1].To)
}
