package dsg_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dsg"
	"repro/internal/hytm"
)

// TestCheckRandomHybrid drives the serializability oracle through the hybrid
// wrapper's own Atomically entry point: hardware-profile commits and software
// fallbacks interleave in a single history, recorded by the inner TWM engine.
// Tight capacity limits plus a spurious-abort probability force both paths to
// be exercised; under -race this doubles as a data-race check on the hybrid
// commit subscription.
func TestCheckRandomHybrid(t *testing.T) {
	tm := hytm.New(core.New(core.Options{}), hytm.Options{
		MaxReads:   4,
		MaxWrites:  2,
		AbortProb:  0.05,
		HWAttempts: 2,
	})
	dsg.CheckRandomAtomic(t, tm, dsg.RunOptions{Goroutines: 6, TxPerG: 100, Seed: 7})

	stats := tm.HybridStats()
	hw := stats.HWCommits.Load() + stats.ROFastCommits.Load()
	fb := stats.Fallbacks.Load()
	t.Logf("%s: %d hardware commits, %d fallbacks", tm.Name(), hw, fb)
	if hw == 0 {
		t.Errorf("expected some hardware-path commits, got none")
	}
	if fb == 0 {
		t.Errorf("expected some software fallbacks under tight capacity, got none")
	}
}

// TestCheckRandomAdapter keeps the plain-TM entry point covered through the
// same Atomic seam the hybrid uses.
func TestCheckRandomAdapter(t *testing.T) {
	dsg.CheckRandom(t, core.New(core.Options{}), dsg.RunOptions{Goroutines: 4, TxPerG: 80, Seed: 11})
}
