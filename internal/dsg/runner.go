package dsg

import (
	"sync"

	"repro/internal/stm"
)

// RunOptions configures a randomized serializability check.
type RunOptions struct {
	Vars       int     // number of shared variables (default 8)
	Goroutines int     // concurrent workers (default 6)
	TxPerG     int     // committed transactions per worker (default 150)
	ReadOnlyP  float64 // fraction of read-only transactions (default 0.3)
	Seed       uint64  // base RNG seed (default 1)
}

func (o *RunOptions) defaults() {
	if o.Vars == 0 {
		o.Vars = 8
	}
	if o.Goroutines == 0 {
		o.Goroutines = 6
	}
	if o.TxPerG == 0 {
		o.TxPerG = 150
	}
	if o.ReadOnlyP == 0 {
		o.ReadOnlyP = 0.3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// TB is the subset of testing.TB the oracle reports through; *testing.T
// satisfies it, and cmd/twm-verify adapts it for CLI soak runs.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
	Logf(format string, args ...any)
	Failed() bool
}

// Atomic is the engine surface the randomized oracle drives: it names
// itself, allocates variables, runs transaction bodies, and records
// per-variable version histories. Any stm.TM that implements
// stm.HistoryRecording satisfies it through CheckRandom's adapter; engines
// with their own transaction entry point (hytm.TM) satisfy it directly.
type Atomic interface {
	stm.HistoryRecording
	Name() string
	NewVar(initial stm.Value) stm.Var
	Atomically(readOnly bool, fn func(stm.Tx) error) error
}

// tmRunner adapts a plain stm.TM to Atomic via the package-level
// stm.Atomically entry point.
type tmRunner struct {
	tm stm.TM
	stm.HistoryRecording
}

func (r tmRunner) Name() string                     { return r.tm.Name() }
func (r tmRunner) NewVar(initial stm.Value) stm.Var { return r.tm.NewVar(initial) }
func (r tmRunner) Atomically(readOnly bool, fn func(stm.Tx) error) error {
	return stm.Atomically(r.tm, readOnly, fn)
}

// CheckRandom drives CheckRandomAtomic against a software engine. The TM
// must implement stm.HistoryRecording.
func CheckRandom(t TB, tm stm.TM, opts RunOptions) {
	t.Helper()
	hr, ok := tm.(stm.HistoryRecording)
	if !ok {
		t.Fatalf("engine %s does not support history recording", tm.Name())
	}
	CheckRandomAtomic(t, tmRunner{tm, hr}, opts)
}

// CheckRandomAtomic drives a randomized concurrent history against a and
// asserts that the resulting Direct Serialization Graph is acyclic. The
// engine must have been created fresh (history is enabled here, before any
// variable exists).
func CheckRandomAtomic(t TB, a Atomic, opts RunOptions) {
	t.Helper()
	opts.defaults()
	a.EnableHistory()

	vars := make([]stm.Var, opts.Vars)
	initial := make([]int64, opts.Vars)
	for i := range vars {
		vars[i] = a.NewVar(int64(0))
	}

	var mu sync.Mutex
	var records []TxRecord

	var wg sync.WaitGroup
	for g := 0; g < opts.Goroutines; g++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			r := rng(opts.Seed + uint64(gid)*7919)
			local := make([]TxRecord, 0, opts.TxPerG)
			for i := 0; i < opts.TxPerG; i++ {
				id := TxID(gid*1_000_000 + i + 1)
				ro := r.float() < opts.ReadOnlyP
				rec := TxRecord{ID: id, ReadOnly: ro}
				err := a.Atomically(ro, func(tx stm.Tx) error {
					// Reset per attempt: only the committed attempt counts.
					rec.Reads = make(map[int]int64)
					rec.Writes = make(map[int]int64)
					nReads := 1 + r.intn(3)
					for k := 0; k < nReads; k++ {
						v := r.intn(opts.Vars)
						if _, wrote := rec.Writes[v]; wrote {
							continue
						}
						rec.Reads[v] = tx.Read(vars[v]).(int64)
					}
					if !ro {
						nWrites := 1 + r.intn(2)
						for k := 0; k < nWrites; k++ {
							v := r.intn(opts.Vars)
							val := int64(id)*100 + int64(v)
							tx.Write(vars[v], val) //twm:allow abortshape history generator explores upgrade windows as part of the schedule space
							rec.Writes[v] = val
						}
					}
					return nil
				})
				if err != nil {
					t.Errorf("tx %d: %v", id, err)
					return
				}
				local = append(local, rec)
			}
			mu.Lock()
			records = append(records, local...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	graph, err := Build(a, vars, initial, records)
	if err != nil {
		t.Fatalf("%s: building DSG: %v", a.Name(), err)
	}
	if cycle := graph.FindCycle(); cycle != nil {
		t.Fatalf("%s: non-serializable history: %s", a.Name(), FormatCycle(cycle))
	}
	t.Logf("%s: DSG acyclic over %d transactions, %d edges", a.Name(), graph.Nodes(), graph.Edges())
}

// rng is a tiny xorshift generator; workloads must not depend on math/rand's
// global lock.
type xorshift struct{ s uint64 }

func rng(seed uint64) *xorshift {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &xorshift{s: seed}
}

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

func (x *xorshift) float() float64 { return float64(x.next()%1_000_000) / 1_000_000 }
