package dsg

import (
	"strings"
	"testing"

	"repro/internal/stm"
)

// fakeHist is a hand-built history provider for oracle unit tests.
type fakeHist map[stm.Var][]stm.VersionRecord

func (f fakeHist) EnableHistory() {}
func (f fakeHist) History(v stm.Var) []stm.VersionRecord {
	return f[v]
}

func TestAcyclicSerialHistory(t *testing.T) {
	v0, v1 := new(int), new(int)
	hist := fakeHist{
		v0: {{Value: int64(101), Serial: 1}, {Value: int64(201), Serial: 2}},
		v1: {{Value: int64(202), Serial: 2}},
	}
	records := []TxRecord{
		{ID: 1, Reads: map[int]int64{0: 0}, Writes: map[int]int64{0: 101}},
		{ID: 2, Reads: map[int]int64{0: 101}, Writes: map[int]int64{0: 201, 1: 202}},
		{ID: 3, ReadOnly: true, Reads: map[int]int64{0: 201, 1: 202}},
	}
	g, err := Build(hist, []stm.Var{v0, v1}, []int64{0, 0}, records)
	if err != nil {
		t.Fatal(err)
	}
	if cycle := g.FindCycle(); cycle != nil {
		t.Fatalf("unexpected cycle: %s", FormatCycle(cycle))
	}
	if g.Nodes() != 4 {
		t.Fatalf("nodes = %d, want 4", g.Nodes())
	}
}

func TestDetectsWriteSkewCycle(t *testing.T) {
	// T1 reads x,y writes x; T2 reads x,y writes y; both committed with both
	// versions in each chain -> rw cycle T1 -> T2 -> T1.
	x, y := new(int), new(int)
	hist := fakeHist{
		x: {{Value: int64(100), Serial: 1}},
		y: {{Value: int64(200), Serial: 2}},
	}
	records := []TxRecord{
		{ID: 1, Reads: map[int]int64{0: 0, 1: 0}, Writes: map[int]int64{0: 100}},
		{ID: 2, Reads: map[int]int64{0: 0, 1: 0}, Writes: map[int]int64{1: 200}},
	}
	g, err := Build(hist, []stm.Var{x, y}, []int64{0, 0}, records)
	if err != nil {
		t.Fatal(err)
	}
	cycle := g.FindCycle()
	if cycle == nil {
		t.Fatalf("write-skew cycle not detected")
	}
	s := FormatCycle(cycle)
	if !strings.Contains(s, "rw") {
		t.Fatalf("cycle should contain rw edges: %s", s)
	}
}

func TestDetectsLostUpdateCycle(t *testing.T) {
	// Both transactions read the initial value and both wrote: T1's version
	// ordered first. T2 read init (overwritten by T1) -> rw T2->T1; ww T1->T2
	// plus T1 read init -> rw T1->T2. Cycle.
	x := new(int)
	hist := fakeHist{
		x: {{Value: int64(100), Serial: 1}, {Value: int64(200), Serial: 2}},
	}
	records := []TxRecord{
		{ID: 1, Reads: map[int]int64{0: 0}, Writes: map[int]int64{0: 100}},
		{ID: 2, Reads: map[int]int64{0: 0}, Writes: map[int]int64{0: 200}},
	}
	g, err := Build(hist, []stm.Var{x}, []int64{0}, records)
	if err != nil {
		t.Fatal(err)
	}
	if g.FindCycle() == nil {
		t.Fatalf("lost-update cycle not detected")
	}
}

func TestElidedVersionsAreUnreadable(t *testing.T) {
	x := new(int)
	hist := fakeHist{
		x: {{Value: int64(100), Serial: 1, Elided: true}, {Value: int64(200), Serial: 1, Tie: 0}},
	}
	records := []TxRecord{
		{ID: 1, Writes: map[int]int64{0: 100}},
		{ID: 2, Writes: map[int]int64{0: 200}},
		{ID: 3, ReadOnly: true, Reads: map[int]int64{0: 100}},
	}
	_, err := Build(hist, []stm.Var{x}, []int64{0}, records)
	if err == nil || !strings.Contains(err.Error(), "elided") {
		t.Fatalf("expected elided-read error, got %v", err)
	}
}

func TestPhantomValueRejected(t *testing.T) {
	x := new(int)
	hist := fakeHist{x: nil}
	records := []TxRecord{
		{ID: 1, ReadOnly: true, Reads: map[int]int64{0: 999}},
	}
	_, err := Build(hist, []stm.Var{x}, []int64{0}, records)
	if err == nil || !strings.Contains(err.Error(), "phantom") {
		t.Fatalf("expected phantom error, got %v", err)
	}
}

func TestDuplicateValueRejected(t *testing.T) {
	x := new(int)
	hist := fakeHist{x: nil}
	records := []TxRecord{
		{ID: 1, Writes: map[int]int64{0: 5}},
		{ID: 2, Writes: map[int]int64{0: 5}},
	}
	_, err := Build(hist, []stm.Var{x}, []int64{0}, records)
	if err == nil || !strings.Contains(err.Error(), "unique") {
		t.Fatalf("expected uniqueness error, got %v", err)
	}
}

func TestFormatCycleEmpty(t *testing.T) {
	if got := FormatCycle(nil); got != "(acyclic)" {
		t.Fatalf("FormatCycle(nil) = %q", got)
	}
}
