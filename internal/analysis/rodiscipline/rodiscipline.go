// Package rodiscipline implements the twm-lint analyzer that makes the
// readOnly=true promise checkable at compile time.
//
// The paper's model statically classifies read-only transactions
// (stm.TM.Begin's readOnly parameter); the multi-version engines reward
// the promise with mv-permissive, abort-free execution that skips read-set
// maintenance and validation. A body that breaks the promise — calling
// Tx.Write, TVar.Set or stm.Retry from a transaction started with
// readOnly=true — bypasses exactly those skipped mechanisms and corrupts
// the engine's invariants at runtime. The analyzer flags any such call
// that is reachable from a body whose runner receives a constant
// readOnly=true, transitively through same-package helpers that take the
// Tx along.
package rodiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/stmtypes"
)

// Analyzer is the rodiscipline analysis.
var Analyzer = &framework.Analyzer{
	Name: "rodiscipline",
	Doc:  "report Tx.Write/TVar.Set/stm.Retry reachable from readOnly=true transaction bodies",
	Run:  run,
}

// violation is one write-side operation, positioned where it occurs.
type violation struct {
	pos  token.Pos
	what string
}

type checker struct {
	pass       *framework.Pass
	decls      map[*types.Func]*ast.FuncDecl
	summaries  map[*types.Func][]violation
	inProgress map[*types.Func]bool
}

func run(pass *framework.Pass) error {
	c := &checker{
		pass:       pass,
		decls:      declaredFuncs(pass),
		summaries:  make(map[*types.Func][]violation),
		inProgress: make(map[*types.Func]bool),
	}
	for _, body := range stmtypes.FindBodies(pass.TypesInfo, pass.Files) {
		if !body.ReadOnlyKnown || !body.ReadOnly {
			continue
		}
		for _, v := range c.scan(body.Lit.Body) {
			pass.Reportf(v.pos, "%s inside a transaction body started with readOnly=true; read-only transactions must not write (mv-permissiveness contract)", v.what)
		}
	}
	return nil
}

func declaredFuncs(pass *framework.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

func (c *checker) summary(fn *types.Func) []violation {
	if s, ok := c.summaries[fn]; ok {
		return s
	}
	if c.inProgress[fn] {
		return nil
	}
	decl := c.decls[fn]
	if decl == nil {
		return nil
	}
	c.inProgress[fn] = true
	s := c.scan(decl.Body)
	c.inProgress[fn] = false
	c.summaries[fn] = s
	return s
}

// scan collects write-side operations in a function body: direct Tx.Write /
// TVar.Set / stm.Retry calls, plus calls that hand a Tx to a same-package
// helper whose own summary contains one.
func (c *checker) scan(body ast.Node) []violation {
	info := c.pass.TypesInfo
	var out []violation
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case stmtypes.IsTxWrite(info, call):
			out = append(out, violation{call.Pos(), "Tx.Write"})
		case stmtypes.IsTVarSet(info, call):
			out = append(out, violation{call.Pos(), "TVar.Set (a Tx.Write)"})
		default:
			fn := stmtypes.FuncOf(info, call)
			if fn == nil {
				return true
			}
			if stmtypes.IsStmFunc(fn, "Retry") {
				out = append(out, violation{call.Pos(), "stm.Retry"})
				return true
			}
			if fn.Pkg() == c.pass.Pkg && passesTx(info, call) {
				if s := c.summary(fn); len(s) > 0 {
					out = append(out, violation{call.Pos(), "call to " + fn.Name() + ", which reaches " + s[0].what + ","})
				}
			}
		}
		return true
	})
	return out
}

// passesTx reports whether any argument of call has static type stm.Tx.
func passesTx(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && stmtypes.IsTx(tv.Type) {
			return true
		}
	}
	return false
}
