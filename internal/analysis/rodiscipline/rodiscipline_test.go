package rodiscipline_test

import (
	"testing"

	"repro/internal/analysis/framework/checktest"
	"repro/internal/analysis/rodiscipline"
)

func TestRODiscipline(t *testing.T) {
	checktest.Run(t, "rodisc", rodiscipline.Analyzer)
}
