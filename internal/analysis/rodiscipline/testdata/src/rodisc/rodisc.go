// Package rodisc is twm-lint golden-test input: write-side operations that
// must be unreachable from transaction bodies started with readOnly=true.
package rodisc

import "repro/internal/stm"

func positives(tm stm.TM, x *stm.TVar[int]) {
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		x.Set(tx, 1)              // want `TVar.Set .a Tx.Write. inside a transaction body started with readOnly=true`
		tx.Write(x.Raw(), 2)      // want `Tx.Write inside a transaction body`
		stm.Retry(stm.ReasonUser) // want `stm.Retry inside a transaction body`
		bump(tx, x)               // want `call to bump, which reaches TVar.Set`
		chain(tx, x)              // want `call to chain, which reaches`
		return nil
	})
}

func bump(tx stm.Tx, x *stm.TVar[int]) { x.Set(tx, 9) }

func chain(tx stm.Tx, x *stm.TVar[int]) { bump(tx, x) }

func negatives(tm stm.TM, x *stm.TVar[int]) {
	// Reads and read-only helpers are the whole point of readOnly=true.
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		_ = x.Get(tx)
		observe(tx, x)
		return nil
	})
	// Update transactions may write freely.
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		x.Set(tx, 3)
		bump(tx, x)
		return nil
	})
	// A non-constant readOnly argument cannot be checked statically.
	ro := true
	_ = stm.Atomically(tm, ro, func(tx stm.Tx) error {
		x.Set(tx, 4)
		return nil
	})
}

func observe(tx stm.Tx, x *stm.TVar[int]) { _ = x.Get(tx) }

// The async entry points carry the same readOnly discipline: their bodies
// are transaction bodies, and the constant readOnly argument is theirs.
func asyncPositives(tm stm.TM, x *stm.TVar[int]) {
	f := stm.AtomicallyAsync(tm, true, func(tx stm.Tx) error {
		x.Set(tx, 5) // want `TVar.Set .a Tx.Write. inside a transaction body started with readOnly=true`
		bump(tx, x)  // want `call to bump, which reaches TVar.Set`
		return nil
	})
	_ = f.Wait()
}

func asyncNegatives(tm stm.TM, x *stm.TVar[int]) {
	f := stm.AtomicallyAsync(tm, true, func(tx stm.Tx) error {
		_ = x.Get(tx)
		observe(tx, x)
		return nil
	})
	_ = f.Wait()
	// Async update transactions may write freely.
	g := stm.AtomicallyAsync(tm, false, func(tx stm.Tx) error {
		x.Set(tx, 6)
		return nil
	})
	_ = g.Wait()
}

// The framework-level //twm:allow directive suppresses rodiscipline
// findings like any other rule.
func allowedWrite(tm stm.TM, x *stm.TVar[int]) {
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		x.Set(tx, 9) //twm:allow rodiscipline exercising the engine's read-only write rejection on purpose
		return nil
	})
}
