// Package stmtypes centralizes how the twm-lint analyzers recognize the
// repository's STM vocabulary in type-checked syntax: the stm.Tx interface,
// transaction-body closures (func(stm.Tx) error literals), Atomically-style
// runners and their readOnly argument, and the stm package's own
// transactional accessors (Tx.Write, TVar.Set, Retry).
package stmtypes

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// StmPath is the import path of the package that defines the transactional
// contract every analyzer enforces.
const StmPath = "repro/internal/stm"

// normPath strips the " [pkg.test]" variant suffix the go command appends
// to package paths of test units, so type identity survives `go vet` over
// test variants.
func normPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// isNamed reports whether t is the named type path.name.
func isNamed(t types.Type, path, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && normPath(obj.Pkg().Path()) == path && obj.Name() == name
}

// IsTx reports whether t is stm.Tx (the transaction interface).
func IsTx(t types.Type) bool {
	if t == nil {
		return false
	}
	if isNamed(t, StmPath, "Tx") {
		return true
	}
	// An alias (type Tx = stm.Tx) resolves to the same named type.
	if a, ok := t.(*types.Alias); ok {
		return IsTx(types.Unalias(a))
	}
	return false
}

// IsBodySig reports whether sig is func(stm.Tx) error — the shape of a
// transaction body.
func IsBodySig(sig *types.Signature) bool {
	if sig == nil || sig.Recv() != nil {
		return false
	}
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if !IsTx(sig.Params().At(0).Type()) {
		return false
	}
	res, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && res.Obj() != nil && res.Obj().Pkg() == nil && res.Obj().Name() == "error"
}

// Body is one transaction-body closure found in a package.
type Body struct {
	Lit *ast.FuncLit
	// TxParam is the declared object of the closure's Tx parameter, or nil
	// when the parameter is blank.
	TxParam types.Object
	// Call is the call expression the closure is passed to (stm.Atomically,
	// stm.AtomicallyCtx, a hybrid engine's Atomically method, or any other
	// runner taking func(stm.Tx) error); nil if the closure is bound to a
	// variable instead.
	Call *ast.CallExpr
	// ReadOnly reports the constant value of the runner's readOnly
	// argument; ReadOnlyKnown is false when there is no such argument or it
	// is not constant.
	ReadOnly      bool
	ReadOnlyKnown bool
}

// FindBodies returns every transaction-body closure in the files: all
// function literals of type func(stm.Tx) error. Literals passed directly to
// a call also carry the call and, when determinable, the constant readOnly
// argument of that call.
func FindBodies(info *types.Info, files []*ast.File) []Body {
	parentCall := make(map[*ast.FuncLit]*ast.CallExpr)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					parentCall[lit] = call
				}
			}
			return true
		})
	}

	var bodies []Body
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			sig, ok := info.Types[lit].Type.(*types.Signature)
			if !ok || !IsBodySig(sig) {
				return true
			}
			b := Body{Lit: lit}
			if params := lit.Type.Params.List; len(params) == 1 && len(params[0].Names) == 1 {
				if name := params[0].Names[0]; name.Name != "_" {
					b.TxParam = info.Defs[name]
				}
			}
			if call := parentCall[lit]; call != nil {
				b.Call = call
				b.ReadOnly, b.ReadOnlyKnown = readOnlyArg(info, call)
			}
			bodies = append(bodies, b)
			return true
		})
	}
	return bodies
}

// readOnlyArg finds the callee's bool parameter named readOnly (or ro) and
// returns the constant value of the corresponding argument.
func readOnlyArg(info *types.Info, call *ast.CallExpr) (val, known bool) {
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return false, false
	}
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		p := sig.Params().At(i)
		if p.Name() != "readOnly" && p.Name() != "ro" {
			continue
		}
		if b, ok := p.Type().(*types.Basic); !ok || b.Kind() != types.Bool {
			continue
		}
		tv, ok := info.Types[call.Args[i]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
			return false, false
		}
		return constant.BoolVal(tv.Value), true
	}
	return false, false
}

// FuncOf resolves the called function or method object of call, or nil.
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// PkgPathOf returns the normalized package path of obj, or "".
func PkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return normPath(obj.Pkg().Path())
}

// IsStmFunc reports whether fn is the named package-level function of the
// stm package (e.g. "Atomically", "Retry").
func IsStmFunc(fn *types.Func, name string) bool {
	return fn != nil && fn.Name() == name && PkgPathOf(fn) == StmPath &&
		fn.Type().(*types.Signature).Recv() == nil
}

// IsAtomicallyCall reports whether call starts a transaction: a call to any
// package-level stm function named with the Atomically prefix (Atomically,
// AtomicallyCtx, AtomicallyCM, AtomicallyGated, the async variants returning
// a *stm.Future, and whatever the family grows next), or to a method named
// Atomically that takes a transaction body — the engine-wrapper convention
// (hytm's entry point, the dsg runner seam). The name alone is not enough:
// a user-defined Atomically* helper in another package, or a method that
// merely shares the name without taking a func(stm.Tx) error, does not
// start a transaction and must not trip the body-discipline analyzers.
func IsAtomicallyCall(info *types.Info, call *ast.CallExpr) bool {
	fn := FuncOf(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if strings.HasPrefix(fn.Name(), "Atomically") && PkgPathOf(fn) == StmPath && sig.Recv() == nil {
		return true
	}
	if fn.Name() == "Atomically" && sig.Recv() != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			if p, ok := sig.Params().At(i).Type().(*types.Signature); ok && IsBodySig(p) {
				return true
			}
		}
	}
	return false
}

// IsAsyncAtomicallyCall reports whether call starts an asynchronous
// transaction returning a *stm.Future (the AtomicallyAsync family).
func IsAsyncAtomicallyCall(info *types.Info, call *ast.CallExpr) bool {
	fn := FuncOf(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil && PkgPathOf(fn) == StmPath &&
		strings.HasPrefix(fn.Name(), "AtomicallyAsync")
}

// IsFuture reports whether t is *stm.Future (or stm.Future itself).
func IsFuture(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamed(types.Unalias(t), StmPath, "Future")
}

// FutureMethodOf returns the name of the stm.Future method call invokes
// ("Wait", "WaitCtx" or "Done"), or "".
func FutureMethodOf(info *types.Info, call *ast.CallExpr) string {
	fn := FuncOf(info, call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !IsFuture(sig.Recv().Type()) {
		return ""
	}
	switch fn.Name() {
	case "Wait", "WaitCtx", "Done":
		return fn.Name()
	}
	return ""
}

// commitLoggerIface locates the stm.CommitLogger interface type as seen by
// pkg: the stm package's own scope when pkg is stm (or its test variant),
// otherwise the scope of pkg's direct stm import. Nil when pkg cannot see
// the interface — then nothing in pkg can implement it relevantly either.
func commitLoggerIface(pkg *types.Package) *types.Interface {
	if pkg == nil {
		return nil
	}
	stm := pkg
	if normPath(pkg.Path()) != StmPath {
		stm = nil
		for _, imp := range pkg.Imports() {
			if normPath(imp.Path()) == StmPath {
				stm = imp
				break
			}
		}
		if stm == nil {
			return nil
		}
	}
	obj := stm.Scope().Lookup("CommitLogger")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// IsCommitLoggerMethod reports whether fn is a method through which its
// receiver type satisfies stm.CommitLogger: the receiver (or a pointer to
// it) implements the interface and fn's name is in the interface's method
// set. Such methods are the engines' commit-path durability seam — invoked
// once per commit with write locks held, never from inside a re-executable
// transaction body — which is why txpurity exempts them from the body
// purity discipline. A mere name match (an Append on a type that does not
// implement the interface) does not qualify.
func IsCommitLoggerMethod(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	iface := commitLoggerIface(fn.Pkg())
	if iface == nil {
		return false
	}
	inSet := false
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == fn.Name() {
			inSet = true
			break
		}
	}
	if !inSet {
		return false
	}
	recv := sig.Recv().Type()
	if types.Implements(recv, iface) {
		return true
	}
	if _, isPtr := recv.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(recv), iface)
	}
	return false
}

// IsTxWrite reports whether call invokes stm.Tx.Write (on the interface or
// any value whose static type is stm.Tx).
func IsTxWrite(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Write" {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && IsTx(tv.Type)
}

// IsTVarSet reports whether call invokes (*stm.TVar[T]).Set, the typed
// wrapper over Tx.Write.
func IsTVarSet(info *types.Info, call *ast.CallExpr) bool {
	return isTVarMethod(info, call, "Set")
}

// isTVarMethod reports whether call invokes the named method with a
// *stm.TVar[T] receiver (the stm package has other types with Get/Set
// methods, e.g. WriteSet).
func isTVarMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := FuncOf(info, call)
	if fn == nil || fn.Name() != name || PkgPathOf(fn) != StmPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, isNamed := recv.(*types.Named)
	return isNamed && named.Obj().Name() == "TVar"
}

// IsTxRead reports whether call invokes stm.Tx.Read.
func IsTxRead(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Read" {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && IsTx(tv.Type)
}

// IsTVarGet reports whether call invokes (*stm.TVar[T]).Get, the typed
// wrapper over Tx.Read.
func IsTVarGet(info *types.Info, call *ast.CallExpr) bool {
	return isTVarMethod(info, call, "Get")
}
