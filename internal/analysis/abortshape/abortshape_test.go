package abortshape_test

import (
	"testing"

	"repro/internal/analysis/abortshape"
	"repro/internal/analysis/framework/checktest"
)

func TestAbortShape(t *testing.T) {
	checktest.Run(t, "shape", abortshape.Analyzer)
}

// TestAbortShapeCrossPackage proves write reachability crosses package
// boundaries via WritesFact: a write-free cross-package helper does not
// shield a body from the read-only-in-effect rule, and a writing one does.
func TestAbortShapeCrossPackage(t *testing.T) {
	checktest.Run(t, "crossshape/consumer", abortshape.Analyzer)
}
