// Package abortshape implements the twm-lint analyzer that flags
// statically-authored abort risk in transaction bodies.
//
// The paper's runtime machinery (time-warp commits, multi-version reads)
// minimizes aborts, but two abort-prone shapes are decided at the call
// site, before any transaction runs:
//
//   - Read-then-write upgrades. A body that reads a TVar, computes or
//     branches on the value, and only later writes the same TVar opens a
//     window in which concurrent readers of that TVar accumulate
//     anti-dependencies; the eventual write turns each of them into a
//     time-warp pivot edge (the paper's T_j -rw-> T_i with T_i
//     committing earlier — exactly the conflict notion arXiv 1307.8256
//     formalizes for multi-version histories). The analyzer reports a
//     write to a TVar whose read *completed before the write began* and
//     *preceded every write to it* — a read after the first write is a
//     read-your-write on a TVar the transaction already owns. The
//     atomic read-modify-write idiom `x.Set(tx, x.Get(tx)+1)`, where the
//     read is nested inside the write's own arguments, has no such window
//     and stays clean — the rule targets the check-then-act shape, not
//     every RMW.
//
//   - Forfeited read-only guarantees. A body whose reachable effect is
//     only reads — no Tx.Write, TVar.Set or stm.Retry, transitively
//     through same-package helpers and, via WritesFact, across package
//     boundaries — but whose runner receives constant readOnly=false
//     executes on the update path: it validates, can abort, and gives up
//     the mv-permissive no-abort guarantee (arXiv 1305.6624) the engines
//     grant declared read-only transactions for free.
//
// TVar identity is syntactic where it must be: a receiver that is a plain
// identifier resolves to its object; anything else (`accs[i]`, `s.field`)
// is keyed by its source text, so distinct index expressions are assumed
// distinct. `//twm:allow abortshape <reason>` suppresses a finding, like
// every twm-lint rule; inherent check-then-act logic (a bounded withdraw,
// a compare-and-publish) is the expected use.
package abortshape

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/stmtypes"
)

// Analyzer is the abortshape analysis.
var Analyzer = &framework.Analyzer{
	Name:      "abortshape",
	Doc:       "report read-then-write TVar upgrades and effectively read-only bodies not declared readOnly",
	Run:       run,
	FactTypes: []framework.Fact{&WritesFact{}},
}

// WritesFact marks a function that (transitively) reaches a transactional
// write: Tx.Write, TVar.Set or stm.Retry. Its absence on an analyzed
// dependency's function means the function is write-free, which is what
// lets the read-only-in-effect rule trust cross-package helpers.
type WritesFact struct {
	What string
}

// AFact marks WritesFact as a framework fact.
func (*WritesFact) AFact() {}

func (f *WritesFact) String() string { return "writes: " + f.What }

type checker struct {
	pass       *framework.Pass
	decls      map[*types.Func]*ast.FuncDecl
	summaries  map[*types.Func]*writeSummary
	inProgress map[*types.Func]bool
}

// writeSummary describes a function's write reachability; unknown is set
// when the function hands its Tx to a callee the analysis cannot see
// through (a func value, an interface method), which blocks the
// read-only-in-effect rule but exports no fact.
type writeSummary struct {
	what    string // first write reached, as a chain; "" if none
	unknown bool
}

func run(pass *framework.Pass) error {
	c := &checker{
		pass:       pass,
		decls:      declaredFuncs(pass),
		summaries:  make(map[*types.Func]*writeSummary),
		inProgress: make(map[*types.Func]bool),
	}
	for _, body := range stmtypes.FindBodies(pass.TypesInfo, pass.Files) {
		if body.ReadOnlyKnown && body.ReadOnly {
			continue // write-free by contract; rodiscipline polices it
		}
		c.checkUpgrades(body)
		c.checkReadOnlyInEffect(body)
	}
	for fn := range c.decls {
		if s := c.summary(fn); s.what != "" {
			pass.ExportObjectFact(fn, &WritesFact{What: s.what})
		}
	}
	return nil
}

func declaredFuncs(pass *framework.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// access is one transactional read or write of a TVar within a body.
type access struct {
	pos, end token.Pos
	text     string // receiver/var expression, for the message
}

// varKey gives the identity under which reads and writes of an expression
// are correlated: the types.Object for a plain identifier, the source
// text otherwise.
func varKey(info *types.Info, e ast.Expr) any {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
	}
	return types.ExprString(e)
}

// checkUpgrades reports writes to a TVar some read of which completed
// before the write began (the upgrade window).
func (c *checker) checkUpgrades(body stmtypes.Body) {
	info := c.pass.TypesInfo
	reads := make(map[any][]access)
	var writes []struct {
		key any
		acc access
	}
	ast.Inspect(body.Lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var target ast.Expr
		isWrite := false
		switch {
		case stmtypes.IsTVarGet(info, call):
			target = ast.Unparen(call.Fun).(*ast.SelectorExpr).X
		case stmtypes.IsTxRead(info, call):
			if len(call.Args) > 0 {
				target = call.Args[0]
			}
		case stmtypes.IsTVarSet(info, call):
			target = ast.Unparen(call.Fun).(*ast.SelectorExpr).X
			isWrite = true
		case stmtypes.IsTxWrite(info, call):
			if len(call.Args) > 0 {
				target = call.Args[0]
				isWrite = true
			}
		}
		if target == nil {
			return true
		}
		acc := access{pos: call.Pos(), end: call.End(), text: types.ExprString(ast.Unparen(target))}
		key := varKey(info, target)
		if isWrite {
			writes = append(writes, struct {
				key any
				acc access
			}{key, acc})
		} else {
			reads[key] = append(reads[key], acc)
		}
		return true
	})
	// A read after the first write to the same TVar is a read-your-write:
	// the transaction is already a writer of that TVar, so no later write
	// can upgrade it. Only reads before the first write open a window.
	firstWrite := make(map[any]token.Pos)
	for _, w := range writes {
		if p, ok := firstWrite[w.key]; !ok || w.acc.pos < p {
			firstWrite[w.key] = w.acc.pos
		}
	}
	for _, w := range writes {
		for _, r := range reads[w.key] {
			if r.end <= w.acc.pos && r.pos < firstWrite[w.key] {
				c.pass.Reportf(w.acc.pos,
					"read-then-write upgrade of %s: the read at %s completed before this write, so every concurrent reader in the window becomes a time-warp pivot anti-dependency; shrink the window to the RMW form or justify with //twm:allow abortshape",
					w.acc.text, c.pass.Fset.Position(r.pos))
				break
			}
		}
	}
}

// checkReadOnlyInEffect reports update-mode bodies (constant
// readOnly=false) that read but provably never write.
func (c *checker) checkReadOnlyInEffect(body stmtypes.Body) {
	if !body.ReadOnlyKnown || body.ReadOnly || body.Call == nil {
		return
	}
	info := c.pass.TypesInfo
	hasRead := false
	ast.Inspect(body.Lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok &&
			(stmtypes.IsTVarGet(info, call) || stmtypes.IsTxRead(info, call)) {
			hasRead = true
		}
		return !hasRead
	})
	if !hasRead {
		return // trivial or opaque body: nothing to gain from the flag
	}
	s := c.scanWrites(body.Lit.Body)
	if s.what == "" && !s.unknown {
		c.pass.Reportf(body.Call.Pos(),
			"transaction body only reads (no Tx.Write, TVar.Set or stm.Retry reachable) but runs with readOnly=false; declare readOnly=true for the multi-version no-abort guarantee, or //twm:allow abortshape if exercising the update path is deliberate")
	}
}

func (c *checker) summary(fn *types.Func) *writeSummary {
	if s, ok := c.summaries[fn]; ok {
		return s
	}
	if c.inProgress[fn] {
		return &writeSummary{}
	}
	decl := c.decls[fn]
	if decl == nil {
		return &writeSummary{}
	}
	c.inProgress[fn] = true
	s := c.scanWrites(decl.Body)
	c.inProgress[fn] = false
	c.summaries[fn] = s
	return s
}

// scanWrites computes write reachability for a function or body: direct
// Tx.Write/TVar.Set/stm.Retry, transitively through same-package callees,
// and across packages through WritesFact. Handing the Tx to a callee the
// analysis cannot resolve makes the result unknown.
func (c *checker) scanWrites(body ast.Node) *writeSummary {
	info := c.pass.TypesInfo
	s := &writeSummary{}
	reach := func(what string) {
		if s.what == "" {
			s.what = what
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case stmtypes.IsTxWrite(info, call):
			reach("Tx.Write")
		case stmtypes.IsTVarSet(info, call):
			reach("TVar.Set")
		default:
			fn := stmtypes.FuncOf(info, call)
			if fn == nil {
				if passesTx(info, call) {
					s.unknown = true // func value or method value taking the Tx
				}
				return true
			}
			if stmtypes.IsStmFunc(fn, "Retry") {
				reach("stm.Retry")
				return true
			}
			if stmtypes.PkgPathOf(fn) == stmtypes.StmPath {
				return true // the runner/accessor surface itself
			}
			if fn.Pkg() == c.pass.Pkg {
				sub := c.summary(fn)
				if sub.what != "" {
					reach("call to " + fn.Name() + ", which reaches " + sub.what)
				}
				if sub.unknown || (c.decls[fn] == nil && passesTx(info, call)) {
					s.unknown = true
				}
				return true
			}
			// Cross-package: the callee's package was analyzed before this
			// one (Session ordering in source mode, unit ordering in vet
			// mode), so a missing WritesFact means write-free. Only
			// packages of this module can name stm.Tx in a signature, so
			// there is no "never analyzed but takes a Tx" case.
			var f WritesFact
			if c.pass.ImportObjectFact(fn, &f) {
				reach("call to " + fn.Pkg().Name() + "." + fn.Name() + ", which reaches " + f.What)
			}
		}
		return true
	})
	return s
}

// passesTx reports whether any argument of call has static type stm.Tx.
func passesTx(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && stmtypes.IsTx(tv.Type) {
			return true
		}
	}
	return false
}
