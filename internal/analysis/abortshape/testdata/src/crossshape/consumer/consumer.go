// Package consumer proves the read-only-in-effect rule sees through
// package boundaries: helper.Sum is write-free (no WritesFact), so a body
// that only calls it forfeits the no-abort guarantee; helper.Bump carries
// a WritesFact, so the same body shape with Bump is a real update.
package consumer

import (
	"crossshape/helper"

	"repro/internal/stm"
)

func bodies(tm stm.TM, x *stm.TVar[int], xs []*stm.TVar[int]) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error { // want `only reads .* readOnly=false`
		_ = helper.Sum(tx, xs)
		_ = x.Get(tx)
		return nil
	})
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error { // cross-package write: clean
		if helper.Sum(tx, xs) > 0 {
			helper.Bump(tx, x)
		}
		return nil
	})
}
