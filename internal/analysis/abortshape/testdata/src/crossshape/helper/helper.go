// Package helper is the dependency side of the cross-package abortshape
// golden test: WritesFact must mark Bump (so bodies calling it are not
// read-only in effect) and must not mark Sum (so bodies that only call
// Sum are).
package helper

import "repro/internal/stm"

// Bump increments the counter. // want Bump:"writes: TVar.Set"
func Bump(tx stm.Tx, x *stm.TVar[int]) { x.Set(tx, x.Get(tx)+1) }

// Sum only reads: no fact.
func Sum(tx stm.Tx, xs []*stm.TVar[int]) int {
	total := 0
	for _, x := range xs {
		total += x.Get(tx)
	}
	return total
}
