// Package shape is twm-lint golden-test input for the abortshape analyzer:
// read-then-write upgrade windows, effectively read-only bodies run in
// update mode, and the //twm:allow escape hatch for both.
package shape

import (
	"errors"

	"repro/internal/stm"
)

func upgrades(tm stm.TM, x, y *stm.TVar[int], arr []*stm.TVar[int]) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		v := x.Get(tx)
		if v <= 0 {
			return errors.New("empty")
		}
		x.Set(tx, v-1) // want `read-then-write upgrade of x`
		return nil
	})
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		x.Set(tx, x.Get(tx)+1) // RMW form: the read has no window; clean
		y.Set(tx, 7)           // never read: clean
		_ = x.Get(tx)          // read after write: clean
		return nil
	})
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		x.Set(tx, 1)
		v := x.Get(tx) // read-your-write: x is already in the write set
		x.Set(tx, v+1) // so this is no upgrade; clean
		return nil
	})
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		a := arr[0].Get(tx)
		arr[1].Set(tx, a) // different index expression: assumed distinct, clean
		arr[0].Set(tx, a) // want `read-then-write upgrade of arr\[0\]`
		return nil
	})
}

func rawTxUpgrade(tm stm.TM, v stm.Var) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		cur := tx.Read(v).(int)
		if cur%2 == 0 {
			return nil
		}
		tx.Write(v, cur+1) // want `read-then-write upgrade of v`
		return nil
	})
}

func allowedUpgrade(tm stm.TM, x *stm.TVar[int]) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		v := x.Get(tx)
		//twm:allow abortshape bounded-withdraw check-then-act is inherent here
		x.Set(tx, v-1)
		return nil
	})
}

func readOnlyInEffect(tm stm.TM, x *stm.TVar[int]) (got int) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error { // want `only reads .* readOnly=false`
		got = x.Get(tx)
		return nil
	})
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error { // declared read-only: clean
		got = x.Get(tx)
		return nil
	})
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error { // writes: clean
		x.Set(tx, x.Get(tx)+1)
		return nil
	})
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error { // retries: clean
		if x.Get(tx) == 0 {
			stm.Retry(stm.AbortReason(0))
		}
		return nil
	})
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error { // helper writes: clean
		bump(tx, x)
		return nil
	})
	return got
}

func opaque(tm stm.TM, x *stm.TVar[int], f func(stm.Tx)) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error { // Tx escapes to a func value: unknown, clean
		_ = x.Get(tx)
		f(tx)
		return nil
	})
}

func allowedReadOnly(tm stm.TM, x *stm.TVar[int]) {
	//twm:allow abortshape deliberately exercising the update path's empty-write-set commit
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		_ = x.Get(tx)
		return nil
	})
}

func bump(tx stm.Tx, x *stm.TVar[int]) { x.Set(tx, x.Get(tx)+1) }
