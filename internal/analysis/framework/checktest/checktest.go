// Package checktest is the golden-file test harness for twm-lint
// analyzers, equivalent in spirit to x/tools' analysistest: a testdata
// package is type-checked from source, the analyzers run over it (and,
// first, over any sibling testdata packages it imports, with facts flowing
// between them), and the results are matched line-by-line against `// want`
// expectation comments in the testdata itself.
//
// Expectation syntax (a subset of analysistest's):
//
//	x = tx            // want `escapes`
//	fmt.Println(x)    // want "calls fmt" "second diagnostic on this line"
//	func Log() {}     // want Log:"impure: calls fmt.Printf"
//
// A bare quoted string is an anchored-nowhere regular expression that must
// match the message of exactly one diagnostic reported on that line; a
// name:"pattern" token asserts an exported object fact — the object named
// `name` declared on that line must carry a fact whose String() matches.
// Diagnostics and expectations must cover each other exactly. Fact
// expectations are opt-in per file: in a file containing at least one
// name:"pattern" token, every fact exported on that file's objects must be
// matched; files with none ignore facts entirely (analyzers export facts
// pervasively, and most golden files are about diagnostics).
//
// The testdata tree is also a GOPATH-style source root: a golden package
// may import another golden package by its testdata/src-relative path
// (e.g. package testdata/src/crosspure/consumer importing
// "crosspure/helper"), which is how the cross-package fact tests are
// written. Imported golden packages are analyzed too, and their own
// `// want` comments are checked in the same run.
package checktest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// Run loads the package in testdata/src/<pkgname> (relative to the test's
// working directory, i.e. the analyzer's package directory) and checks the
// analyzers' diagnostics and exported facts against the `// want`
// expectations of it and of every sibling testdata package it imports.
func Run(t *testing.T, pkgname string, analyzers ...*framework.Analyzer) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("checktest: %v", err)
	}
	dir := filepath.Join(srcRoot, filepath.FromSlash(pkgname))
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("checktest: %v", err)
	}
	modRoot, modPath, err := findModule()
	if err != nil {
		t.Fatalf("checktest: %v", err)
	}
	loader := framework.NewLoader(modRoot, modPath)
	loader.SrcRoot = srcRoot
	pkg, err := loader.LoadDir(dir, "")
	if err != nil {
		t.Fatalf("checktest: %v", err)
	}
	session := framework.NewSession(loader, analyzers)
	if _, err := session.Analyze(pkg); err != nil {
		t.Fatalf("checktest: %v", err)
	}

	// The checked set: the target plus every golden sibling it pulled in.
	var checked []*framework.LoadedPackage
	for _, lp := range loader.LoadedAll() {
		if strings.HasPrefix(lp.Dir, srcRoot+string(filepath.Separator)) || lp.Dir == dir {
			checked = append(checked, lp)
		}
	}

	type key struct {
		file string
		line int
	}
	diagWants := make(map[key][]*regexp.Regexp)
	type factWant struct {
		name string
		re   *regexp.Regexp
	}
	factWants := make(map[key][]factWant)
	factFiles := make(map[string]bool) // files that opted into fact checking

	for _, lp := range checked {
		for _, f := range lp.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					expects, ok := parseWant(c.Text)
					if !ok {
						continue
					}
					pos := loader.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, e := range expects {
						re, err := regexp.Compile(e.pattern)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, e.pattern, err)
						}
						if e.name == "" {
							diagWants[k] = append(diagWants[k], re)
						} else {
							factWants[k] = append(factWants[k], factWant{e.name, re})
							factFiles[pos.Filename] = true
						}
					}
				}
			}
		}
	}

	// Match diagnostics against expectations, package by package.
	for _, lp := range checked {
		for _, d := range session.Diagnostics(lp.Path) {
			pos := loader.Fset.Position(d.Pos)
			k := key{pos.Filename, pos.Line}
			matched := false
			for i, re := range diagWants[k] {
				if re.MatchString(d.Message) {
					diagWants[k] = append(diagWants[k][:i], diagWants[k][i+1:]...)
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
			}
		}
	}
	for k, res := range diagWants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}

	// Match exported facts against expectations in opted-in files.
	for _, of := range session.Facts.AllObjectFacts() {
		if of.Object == nil {
			continue
		}
		pos := loader.Fset.Position(of.Object.Pos())
		if !factFiles[pos.Filename] {
			continue
		}
		k := key{pos.Filename, pos.Line}
		text := fmt.Sprint(of.Fact)
		matched := false
		for i, w := range factWants[k] {
			if w.name == of.Object.Name() && w.re.MatchString(text) {
				factWants[k] = append(factWants[k][:i], factWants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected fact on %s: %s (%T)", pos, of.Object.Name(), text, of.Fact)
		}
	}
	for k, ws := range factWants {
		for _, w := range ws {
			t.Errorf("%s:%d: expected fact on %s matching %q, got none", k.file, k.line, w.name, w.re)
		}
	}
}

// expect is one parsed expectation: a diagnostic pattern (name empty) or an
// object-fact pattern.
type expect struct {
	name    string
	pattern string
}

// parseWant extracts the expectations from a `// want "..." name:"..."`
// comment; ok is false if the comment is not an expectation.
func parseWant(text string) (expects []expect, ok bool) {
	rest, found := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "want ")
	if !found {
		return nil, false
	}
	rest = strings.TrimSpace(rest)
	for rest != "" {
		var name string
		if i := identPrefixLen(rest); i > 0 && i < len(rest) && rest[i] == ':' {
			name = rest[:i]
			rest = rest[i+1:]
		}
		if rest == "" {
			return expects, len(expects) > 0
		}
		quote := rest[0]
		if quote != '"' && quote != '`' {
			return expects, len(expects) > 0
		}
		if quote == '`' {
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return expects, len(expects) > 0
			}
			expects = append(expects, expect{name, rest[1 : 1+end]})
			rest = strings.TrimSpace(rest[end+2:])
			continue
		}
		// Double-quoted: respect escapes via strconv.
		prefix, err := quotedPrefix(rest)
		if err != nil {
			return expects, len(expects) > 0
		}
		unq, err := strconv.Unquote(prefix)
		if err != nil {
			return expects, len(expects) > 0
		}
		expects = append(expects, expect{name, unq})
		rest = strings.TrimSpace(rest[len(prefix):])
	}
	return expects, len(expects) > 0
}

// identPrefixLen returns the length of the leading Go identifier of s, or 0.
func identPrefixLen(s string) int {
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
		digit := '0' <= c && c <= '9'
		if !alpha && !(i > 0 && digit) {
			return i
		}
	}
	return len(s)
}

// quotedPrefix returns the leading double-quoted Go string literal of s.
func quotedPrefix(s string) (string, error) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("unterminated string in want comment: %s", s)
}

// findModule locates the enclosing module from the test's working
// directory.
func findModule() (root, path string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module directive in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above test directory")
		}
		dir = parent
	}
}
