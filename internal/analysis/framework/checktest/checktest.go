// Package checktest is the golden-file test harness for twm-lint
// analyzers, equivalent in spirit to x/tools' analysistest: a testdata
// package is type-checked from source, the analyzer runs over it, and the
// diagnostics are matched line-by-line against `// want "regexp"`
// expectation comments in the testdata itself.
//
// Expectation syntax (a subset of analysistest's):
//
//	x = tx            // want `escapes`
//	fmt.Println(x)    // want "calls fmt" "second diagnostic on this line"
//
// Each quoted string is an anchored-nowhere regular expression that must
// match the message of exactly one diagnostic reported on that line;
// diagnostics and expectations must cover each other exactly.
package checktest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// Run loads the package in testdata/src/<pkgname> (relative to the test's
// working directory, i.e. the analyzer's package directory) and checks the
// analyzer's diagnostics against the `// want` expectations.
func Run(t *testing.T, pkgname string, analyzers ...*framework.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkgname)
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("checktest: %v", err)
	}
	modRoot, modPath, err := findModule()
	if err != nil {
		t.Fatalf("checktest: %v", err)
	}
	loader := framework.NewLoader(modRoot, modPath)
	pkg, err := loader.LoadDir(dir, "")
	if err != nil {
		t.Fatalf("checktest: %v", err)
	}
	diags, err := pkg.Run(analyzers, loader.Fset)
	if err != nil {
		t.Fatalf("checktest: %v", err)
	}

	type key struct {
		file string
		line int
	}
	// Gather expectations from the testdata comments.
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, p, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	// Match diagnostics against expectations.
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// parseWant extracts the quoted patterns from a `// want "..." `...`  `
// comment; ok is false if the comment is not an expectation.
func parseWant(text string) (patterns []string, ok bool) {
	rest, found := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "want ")
	if !found {
		return nil, false
	}
	rest = strings.TrimSpace(rest)
	for rest != "" {
		var quote byte = rest[0]
		if quote != '"' && quote != '`' {
			return patterns, len(patterns) > 0
		}
		if quote == '`' {
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return patterns, len(patterns) > 0
			}
			patterns = append(patterns, rest[1:1+end])
			rest = strings.TrimSpace(rest[end+2:])
			continue
		}
		// Double-quoted: respect escapes via strconv.
		prefix, err := quotedPrefix(rest)
		if err != nil {
			return patterns, len(patterns) > 0
		}
		unq, err := strconv.Unquote(prefix)
		if err != nil {
			return patterns, len(patterns) > 0
		}
		patterns = append(patterns, unq)
		rest = strings.TrimSpace(rest[len(prefix):])
	}
	return patterns, len(patterns) > 0
}

// quotedPrefix returns the leading double-quoted Go string literal of s.
func quotedPrefix(s string) (string, error) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("unterminated string in want comment: %s", s)
}

// findModule locates the enclosing module from the test's working
// directory.
func findModule() (root, path string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module directive in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above test directory")
		}
		dir = parent
	}
}
