package framework

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader type-checks packages of one module from source, resolving module
// imports from the module tree and everything else (the standard library)
// through the compiler's source importer. It needs no network, no export
// data and no `go` invocation, which makes it usable from unit tests (the
// checktest harness) and from twm-lint's -mode=source path.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // absolute path of the module root directory
	ModPath string // module path from go.mod (e.g. "repro")

	std  types.ImporterFrom          // source importer for non-module paths
	deps map[string]*types.Package   // memoized module dependencies
}

// NewLoader returns a loader for the module rooted at modRoot.
func NewLoader(modRoot, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: modRoot,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		deps:    make(map[string]*types.Package),
	}
}

// dirFor maps a module import path to its directory, or "" if the path does
// not belong to the module.
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest))
	}
	return ""
}

// Import implements types.Importer: module packages come from source under
// ModRoot, everything else is delegated to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.dirFor(path); dir != "" {
		if pkg, ok := l.deps[path]; ok {
			return pkg, nil
		}
		files, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: l, Sizes: types.SizesFor("gc", runtime.GOARCH)}
		pkg, err := conf.Check(path, l.Fset, files, nil)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", path, err)
		}
		l.deps[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

// parseDir parses the buildable non-test Go files of dir (honoring build
// constraints for the host platform), with comments attached.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("resolving %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadedPackage is one fully type-checked package ready for analysis.
type LoadedPackage struct {
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// LoadDir type-checks the package in dir (non-test files only) with full
// type information. importPath may be "" to derive it from the module
// layout; directories outside the module (e.g. testdata trees) get a
// synthetic path.
func (l *Loader) LoadDir(dir, importPath string) (*LoadedPackage, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if importPath == "" {
		if rel, err := filepath.Rel(l.ModRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
			importPath = l.ModPath + "/" + filepath.ToSlash(rel)
		} else {
			importPath = "testdata/" + filepath.Base(abs)
		}
	}
	files, err := l.parseDir(abs)
	if err != nil {
		return nil, err
	}
	info := NewInfo()
	sizes := types.SizesFor("gc", runtime.GOARCH)
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Sizes:    sizes,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, typeErrs[0])
	}
	return &LoadedPackage{Path: importPath, Dir: abs, Files: files, Pkg: pkg, Info: info, Sizes: sizes}, nil
}

// Run applies the analyzers to a loaded package.
func (p *LoadedPackage) Run(analyzers []*Analyzer, fset *token.FileSet) ([]Diagnostic, error) {
	return RunAnalyzers(analyzers, fset, p.Files, p.Pkg, p.Info, p.Sizes)
}
