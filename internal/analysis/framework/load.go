package framework

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader type-checks packages of one module from source, resolving module
// imports from the module tree and everything else (the standard library)
// through the compiler's source importer. It needs no network, no export
// data and no `go` invocation, which makes it usable from unit tests (the
// checktest harness) and from twm-lint's -mode=source path.
//
// Every module (or SrcRoot) package it type-checks — root or dependency —
// is retained as a LoadedPackage with full syntax and types.Info, so a
// Session can run analyzers over the dependency closure in order and
// propagate facts across package boundaries.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // absolute path of the module root directory
	ModPath string // module path from go.mod (e.g. "repro")
	// SrcRoot optionally names a GOPATH-style source root: an import path
	// not under the module resolves to SrcRoot/<path> when that directory
	// exists. checktest points it at testdata/src so golden packages can
	// import sibling golden packages.
	SrcRoot string

	std    types.ImporterFrom        // source importer for non-module paths
	loaded map[string]*LoadedPackage // every module/SrcRoot package seen
}

// NewLoader returns a loader for the module rooted at modRoot.
func NewLoader(modRoot, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: modRoot,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		loaded:  make(map[string]*LoadedPackage),
	}
}

// dirFor maps an import path to its source directory, or "" if the path
// belongs to neither the module nor SrcRoot.
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest))
	}
	if l.SrcRoot != "" {
		dir := filepath.Join(l.SrcRoot, filepath.FromSlash(path))
		if bp, err := build.Default.ImportDir(dir, 0); err == nil && len(bp.GoFiles) > 0 {
			return dir
		}
	}
	return ""
}

// pathFor derives the import path of an absolute directory from the module
// or SrcRoot layout; directories under neither get a synthetic path.
func (l *Loader) pathFor(abs string) string {
	if rel, err := filepath.Rel(l.ModRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.ModPath
		}
		return l.ModPath + "/" + filepath.ToSlash(rel)
	}
	if l.SrcRoot != "" {
		if rel, err := filepath.Rel(l.SrcRoot, abs); err == nil && !strings.HasPrefix(rel, "..") && rel != "." {
			return filepath.ToSlash(rel)
		}
	}
	return "testdata/" + filepath.Base(abs)
}

// Import implements types.Importer: module and SrcRoot packages come from
// source (retained with full info), everything else is delegated to the
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.dirFor(path); dir != "" {
		lp, err := l.load(dir, path)
		if err != nil {
			return nil, err
		}
		return lp.Pkg, nil
	}
	return l.std.Import(path)
}

// Loaded returns the retained package for an import path, or nil if the
// loader has not type-checked it (standard library, or never imported).
func (l *Loader) Loaded(path string) *LoadedPackage {
	return l.loaded[path]
}

// LoadedAll returns every retained package, sorted by import path.
func (l *Loader) LoadedAll() []*LoadedPackage {
	paths := make([]string, 0, len(l.loaded))
	for p := range l.loaded {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*LoadedPackage, 0, len(paths))
	for _, p := range paths {
		out = append(out, l.loaded[p])
	}
	return out
}

// parseDir parses the buildable non-test Go files of dir (honoring build
// constraints for the host platform), with comments attached.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("resolving %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadedPackage is one fully type-checked package ready for analysis.
type LoadedPackage struct {
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// load type-checks the package in abs once, memoized by import path.
func (l *Loader) load(abs, importPath string) (*LoadedPackage, error) {
	if lp, ok := l.loaded[importPath]; ok {
		return lp, nil
	}
	files, err := l.parseDir(abs)
	if err != nil {
		return nil, err
	}
	info := NewInfo()
	sizes := types.SizesFor("gc", runtime.GOARCH)
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Sizes:    sizes,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, typeErrs[0])
	}
	lp := &LoadedPackage{Path: importPath, Dir: abs, Files: files, Pkg: pkg, Info: info, Sizes: sizes}
	l.loaded[importPath] = lp
	return lp, nil
}

// LoadDir type-checks the package in dir (non-test files only) with full
// type information. importPath may be "" to derive it from the module or
// SrcRoot layout.
func (l *Loader) LoadDir(dir, importPath string) (*LoadedPackage, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if importPath == "" {
		importPath = l.pathFor(abs)
	}
	return l.load(abs, importPath)
}

// Run applies the analyzers to a loaded package with a private fact store.
func (p *LoadedPackage) Run(analyzers []*Analyzer, fset *token.FileSet) ([]Diagnostic, error) {
	return RunAnalyzersFacts(analyzers, fset, p.Files, p.Pkg, p.Info, p.Sizes, NewFactStore())
}

// Session runs a set of analyzers over many packages of one Loader with a
// shared fact store, visiting each package's loader-resolved dependencies
// first so that facts (txpurity's cross-package impurity summaries, for
// example) are always computed before anyone asks for them. It is the
// source-mode analog of the dependency ordering the go command provides in
// vet mode.
type Session struct {
	Loader    *Loader
	Analyzers []*Analyzer
	Facts     *FactStore

	done  map[string]bool
	diags map[string][]Diagnostic
}

// NewSession returns a session with a fresh fact store.
func NewSession(l *Loader, analyzers []*Analyzer) *Session {
	RegisterFactTypes(analyzers)
	return &Session{
		Loader:    l,
		Analyzers: analyzers,
		Facts:     NewFactStore(),
		done:      make(map[string]bool),
		diags:     make(map[string][]Diagnostic),
	}
}

// Analyze runs the session's analyzers over lp and, first, over any of its
// imports the loader type-checked from source. Each package is analyzed at
// most once per session (its diagnostics are memoized, so a package first
// visited as a dependency still reports when asked for directly); only
// lp's own diagnostics are returned.
func (s *Session) Analyze(lp *LoadedPackage) ([]Diagnostic, error) {
	if err := s.ensure(lp); err != nil {
		return nil, err
	}
	return s.diags[lp.Path], nil
}

// Diagnostics returns the memoized diagnostics of an already-analyzed
// package path (nil if the package was never analyzed in this session).
func (s *Session) Diagnostics(path string) []Diagnostic {
	return s.diags[path]
}

// ensure analyzes lp's loader-retained dependencies, then lp, memoizing
// diagnostics per package.
func (s *Session) ensure(lp *LoadedPackage) error {
	if s.done[lp.Path] {
		return nil
	}
	s.done[lp.Path] = true
	for _, imp := range lp.Pkg.Imports() {
		if dep := s.Loader.Loaded(imp.Path()); dep != nil {
			if err := s.ensure(dep); err != nil {
				return err
			}
		}
	}
	diags, err := RunAnalyzersFacts(s.Analyzers, s.Loader.Fset, lp.Files, lp.Pkg, lp.Info, lp.Sizes, s.Facts)
	if err != nil {
		return err
	}
	s.diags[lp.Path] = diags
	return nil
}
