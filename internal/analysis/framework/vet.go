package framework

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
)

// vetConfig mirrors the JSON configuration file cmd/go hands to a
// -vettool for each package unit (see cmd/go/internal/work and
// x/tools/go/analysis/unitchecker, which consume the same format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetUnit implements the `go vet -vettool` protocol for one package unit:
// it reads the cfg file, type-checks the unit against the export data the
// go command already produced, runs the analyzers and prints diagnostics
// in the standard file:line:col form. The returned exit code follows
// unitchecker's convention: 0 clean, 1 operational error, 2 diagnostics.
func VetUnit(analyzers []*Analyzer, cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "twm-lint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "twm-lint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command requires the facts output file to exist after a
	// successful run, even though these analyzers exchange no facts.
	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "twm-lint: writing %s: %v\n", cfg.VetxOutput, err)
			return false
		}
		return true
	}

	// Dependency units are visited only so fact-exporting tools can chain;
	// with no facts to compute there is nothing to do.
	if cfg.VetxOnly {
		if !writeVetx() {
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(stderr, "twm-lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Resolve imports through the export data files listed in the config,
	// applying the unit's import map (test variants, vendoring).
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	sizes := types.SizesFor(compiler, runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    sizes,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := NewInfo()
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			if !writeVetx() {
				return 1
			}
			return 0
		}
		for _, e := range typeErrs {
			fmt.Fprintf(stderr, "twm-lint: %v\n", e)
		}
		return 1
	}

	diags, err := RunAnalyzers(analyzers, fset, files, pkg, info, sizes)
	if err != nil {
		fmt.Fprintf(stderr, "twm-lint: %v\n", err)
		return 1
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		return 2
	}
	if !writeVetx() {
		return 1
	}
	return 0
}
