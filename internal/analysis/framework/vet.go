package framework

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// vetConfig mirrors the JSON configuration file cmd/go hands to a
// -vettool for each package unit (see cmd/go/internal/work and
// x/tools/go/analysis/unitchecker, which consume the same format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// DiagJSONDirEnv names the environment variable through which the twm-lint
// driver asks vet units to mirror their diagnostics as JSON files (one per
// unit) into a directory, so the driver can assemble a SARIF report after
// `go vet` finishes. Unset means text-only output.
const DiagJSONDirEnv = "TWM_LINT_DIAG_DIR"

// DiagJSON is the per-diagnostic record written into the diagnostics
// directory and consumed by the SARIF assembler and the baseline gate.
type DiagJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// VetUnit implements the `go vet -vettool` protocol for one package unit:
// it reads the cfg file, type-checks the unit against the export data the
// go command already produced, decodes the facts its dependencies exported
// (PackageVetx), runs the analyzers, prints diagnostics in the standard
// file:line:col form, and gob-encodes the unit's fact store — its own
// exports plus the imported closure — to VetxOutput for dependent units.
// Facts-only units (VetxOnly, dependencies outside the vetted pattern) run
// just the fact-carrying analyzers with diagnostics suppressed. The
// returned exit code follows unitchecker's convention: 0 clean, 1
// operational error, 2 diagnostics.
func VetUnit(analyzers []*Analyzer, cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "twm-lint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "twm-lint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}

	RegisterFactTypes(analyzers)

	// Facts are a module-internal protocol: effects of standard-library
	// functions are captured by the analyzers' curated lists, not by
	// analyzing the stdlib itself (which go vet offers as VetxOnly units of
	// every dependency). Write an empty vetx and move on.
	if cfg.VetxOnly && isStdlibUnit(&cfg) {
		facts := NewFactStore()
		payload, err := facts.EncodeVetx()
		if err == nil && cfg.VetxOutput != "" {
			err = os.WriteFile(cfg.VetxOutput, payload, 0o666)
		}
		if err != nil {
			fmt.Fprintf(stderr, "twm-lint: %v\n", err)
			return 1
		}
		return 0
	}

	// The store starts as the union of the dependencies' exports; the go
	// command orders units so every vetx named here already exists.
	facts := NewFactStore()
	for _, vetxFile := range sortedValues(cfg.PackageVetx) {
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			// A missing dependency vetx degrades cross-package precision,
			// never correctness: analyzers treat "no fact" as "nothing
			// known". Keep going.
			continue
		}
		if err := facts.DecodeVetx(data); err != nil {
			fmt.Fprintf(stderr, "twm-lint: %s: %v\n", vetxFile, err)
			return 1
		}
	}

	// writeVetx persists the unit's facts; the go command requires the
	// output file to exist after a successful run even when empty.
	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		payload, err := facts.EncodeVetx()
		if err != nil {
			fmt.Fprintf(stderr, "twm-lint: %v\n", err)
			return false
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			fmt.Fprintf(stderr, "twm-lint: writing %s: %v\n", cfg.VetxOutput, err)
			return false
		}
		return true
	}

	run := analyzers
	if cfg.VetxOnly {
		// Facts-only dependency unit: only analyzers that export facts
		// need to run, and their diagnostics belong to the unit that owns
		// the package, not to this visit.
		run = nil
		for _, a := range analyzers {
			if len(a.FactTypes) > 0 {
				run = append(run, a)
			}
		}
		if len(run) == 0 {
			if !writeVetx() {
				return 1
			}
			return 0
		}
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(stderr, "twm-lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Resolve imports through the export data files listed in the config,
	// applying the unit's import map (test variants, vendoring).
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	sizes := types.SizesFor(compiler, runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    sizes,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := NewInfo()
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
			if !writeVetx() {
				return 1
			}
			return 0
		}
		for _, e := range typeErrs {
			fmt.Fprintf(stderr, "twm-lint: %v\n", e)
		}
		return 1
	}

	diags, err := RunAnalyzersFacts(run, fset, files, pkg, info, sizes, facts)
	if err != nil {
		fmt.Fprintf(stderr, "twm-lint: %v\n", err)
		return 1
	}
	if cfg.VetxOnly {
		diags = nil
	}
	writeDiagJSON(cfg.ID, fset, diags)
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		// Facts are still written: dependents analyze regardless of this
		// unit's diagnostics, exactly like unitchecker.
		writeVetx()
		return 2
	}
	if !writeVetx() {
		return 1
	}
	return 0
}

// isStdlibUnit reports whether the unit vets a standard-library package:
// either the config says so or its sources live under GOROOT/src.
func isStdlibUnit(cfg *vetConfig) bool {
	if cfg.Standard[normVariantPath(cfg.ImportPath)] {
		return true
	}
	if len(cfg.GoFiles) == 0 {
		return false
	}
	goroot := build.Default.GOROOT
	if goroot == "" {
		return false
	}
	rel, err := filepath.Rel(filepath.Join(goroot, "src"), cfg.GoFiles[0])
	return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
}

// writeDiagJSON mirrors the unit's diagnostics into the driver's
// diagnostics directory (DiagJSONDirEnv) for SARIF assembly. Best-effort:
// the text output on stderr remains authoritative.
func writeDiagJSON(unitID string, fset *token.FileSet, diags []Diagnostic) {
	dir := os.Getenv(DiagJSONDirEnv)
	if dir == "" || len(diags) == 0 {
		return
	}
	out := make([]DiagJSON, 0, len(diags))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		out = append(out, DiagJSON{File: p.Filename, Line: p.Line, Col: p.Column, Analyzer: d.Analyzer, Message: d.Message})
	}
	data, err := json.Marshal(out)
	if err != nil {
		return
	}
	name := fmt.Sprintf("%x.json", sha256.Sum256([]byte(unitID)))
	os.WriteFile(filepath.Join(dir, name), data, 0o666)
}

// sortedValues returns m's values in key order, for deterministic fact
// merging.
func sortedValues(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
