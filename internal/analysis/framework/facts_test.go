package framework

import (
	"encoding/gob"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// markFact is the test's fact type.
type markFact struct {
	Note string
}

func (*markFact) AFact() {}

func init() { gob.Register(&markFact{}) }

const factSrc = `package p

func Fn() {}

type T struct{}

func (T) Value() {}
func (*T) Pointer() {}

var V int
`

// checkPkg type-checks factSrc in a fresh universe, simulating the
// separate type-check worlds of two vet units (source vs export data: the
// objects differ by identity but agree by name).
func checkPkg(t *testing.T, path string) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", factSrc, 0)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func lookup(t *testing.T, pkg *types.Package, name string) types.Object {
	t.Helper()
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		t.Fatalf("no object %s", name)
	}
	return obj
}

func method(t *testing.T, pkg *types.Package, typ, name string) types.Object {
	t.Helper()
	named := lookup(t, pkg, typ).Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == name {
			return named.Method(i)
		}
	}
	t.Fatalf("no method %s.%s", typ, name)
	return nil
}

// TestFactVetxRoundTrip drives a fact through the exact path the vet
// protocol uses: export on objects of one type-check universe, gob-encode
// (EncodeVetx), gob-decode into a dependent unit's store (DecodeVetx), and
// import against objects of a second, independent type-check of the same
// package.
func TestFactVetxRoundTrip(t *testing.T) {
	producer := checkPkg(t, "example.com/p")
	store := NewFactStore()
	store.ExportObjectFact(lookup(t, producer, "Fn"), &markFact{Note: "func"})
	store.ExportObjectFact(lookup(t, producer, "V"), &markFact{Note: "var"})
	store.ExportObjectFact(method(t, producer, "T", "Value"), &markFact{Note: "value method"})
	store.ExportObjectFact(method(t, producer, "T", "Pointer"), &markFact{Note: "pointer method"})

	payload, err := store.EncodeVetx()
	if err != nil {
		t.Fatal(err)
	}

	imported := NewFactStore()
	if err := imported.DecodeVetx(payload); err != nil {
		t.Fatal(err)
	}

	consumer := checkPkg(t, "example.com/p")
	cases := []struct {
		obj  types.Object
		want string
	}{
		{lookup(t, consumer, "Fn"), "func"},
		{lookup(t, consumer, "V"), "var"},
		{method(t, consumer, "T", "Value"), "value method"},
		{method(t, consumer, "T", "Pointer"), "pointer method"},
	}
	for _, c := range cases {
		var f markFact
		if !imported.ImportObjectFact(c.obj, &f) {
			t.Errorf("no fact for %s after round trip", c.obj.Name())
			continue
		}
		if f.Note != c.want {
			t.Errorf("fact for %s = %q, want %q", c.obj.Name(), f.Note, c.want)
		}
	}
	if got := len(imported.AllObjectFacts()); got != 4 {
		t.Errorf("AllObjectFacts after round trip: %d facts, want 4", got)
	}

	// No fact was exported on T itself.
	var f markFact
	if imported.ImportObjectFact(lookup(t, consumer, "T"), &f) {
		t.Error("unexpected fact on T")
	}
}

// TestFactTestVariantPaths proves a fact exported while analyzing a test
// variant ("p [p.test]") resolves against objects of the ordinary package
// and vice versa — the go command vets both spellings of the same package.
func TestFactTestVariantPaths(t *testing.T) {
	variant := checkPkg(t, "example.com/p [example.com/p.test]")
	store := NewFactStore()
	store.ExportObjectFact(lookup(t, variant, "Fn"), &markFact{Note: "from variant"})

	plain := checkPkg(t, "example.com/p")
	var f markFact
	if !store.ImportObjectFact(lookup(t, plain, "Fn"), &f) || f.Note != "from variant" {
		t.Errorf("fact exported under test-variant path not visible under plain path (got %+v)", f)
	}
}

// TestFactReplaceAndEmptyDecode covers the store edge cases the protocol
// relies on: same-type export replaces, empty vetx payloads (from
// facts-free tool versions) decode to nothing, and decode does not
// overwrite fresher local facts.
func TestFactReplaceAndEmptyDecode(t *testing.T) {
	pkg := checkPkg(t, "example.com/p")
	fn := lookup(t, pkg, "Fn")

	store := NewFactStore()
	store.ExportObjectFact(fn, &markFact{Note: "one"})
	store.ExportObjectFact(fn, &markFact{Note: "two"})
	var f markFact
	if !store.ImportObjectFact(fn, &f) || f.Note != "two" {
		t.Errorf("re-export did not replace: got %+v", f)
	}
	if n := len(store.AllObjectFacts()); n != 1 {
		t.Errorf("re-export duplicated the fact: %d entries", n)
	}

	if err := store.DecodeVetx(nil); err != nil {
		t.Errorf("empty payload: %v", err)
	}

	// A dependency's re-export of the same object must not clobber the
	// unit's own fresher fact.
	stale := NewFactStore()
	stale.ExportObjectFact(fn, &markFact{Note: "stale"})
	payload, err := stale.EncodeVetx()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.DecodeVetx(payload); err != nil {
		t.Fatal(err)
	}
	if !store.ImportObjectFact(fn, &f) || f.Note != "two" {
		t.Errorf("decode clobbered local fact: got %+v", f)
	}
}
