package framework

// This file is the stdlib-only analog of golang.org/x/tools/go/analysis
// facts: serializable deductions an analyzer attaches to objects of the
// package it is analyzing, which later analyses of *importing* packages can
// read back. Facts are what turn a per-package checker into an
// interprocedural one — txpurity's "this function is impure" summary, for
// example, survives the package boundary as an ImpureFact instead of being
// forgotten when the pass ends.
//
// Two deliberate simplifications relative to x/tools:
//
//   - Facts are keyed by (package path, object key) strings rather than by
//     go/types object identity plus objectpath. The repository's analyzers
//     only attach facts to package-level functions, variables and methods,
//     so a name-based key (see ObjectKey) is exact for everything they do
//     and stays stable between a source type-check and an export-data
//     type-check of the same package — the property the vet protocol needs.
//   - The store is shared by all analyzers of a run instead of being
//     namespaced per analyzer. Fact *types* provide the namespace: an
//     analyzer only sees facts whose dynamic type it asks for, and gob
//     refuses to decode a type nobody registered.
//
// In source mode (and checktest) one FactStore spans every package of the
// session, populated in dependency order by Session.Analyze. In `go vet
// -vettool` mode each package unit decodes the gob-encoded stores of its
// dependencies (PackageVetx), analyzes, and re-encodes the union to its
// VetxOutput, so facts flow along the build graph exactly like export data.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Fact is a serializable deduction about an object. Implementations must be
// pointers to gob-encodable structs; the AFact marker keeps arbitrary types
// from being stored by accident. Each fact type used by an analyzer must be
// listed in its FactTypes so the framework can gob-register it.
type Fact interface {
	AFact()
}

// ObjectKey returns a stable identity for obj usable across separate
// type-checks of the same package (source vs. export data): the normalized
// package path plus a kind-tagged name. Only package-level objects and
// methods are keyable; ok is false otherwise (no facts for locals, fields
// or parameters — the analyzers never need them).
func ObjectKey(obj types.Object) (pkgPath, key string, ok bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	pkgPath = normVariantPath(obj.Pkg().Path())
	if fn, isFn := obj.(*types.Func); isFn {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if p, isPtr := recv.(*types.Pointer); isPtr {
				recv = p.Elem()
			}
			named, isNamed := recv.(*types.Named)
			if !isNamed {
				return "", "", false // method on an unnamed type: not keyable
			}
			return pkgPath, "M:" + named.Obj().Name() + "." + fn.Name(), true
		}
		return pkgPath, "F:" + fn.Name(), true
	}
	// Remaining kinds (Var, Const, TypeName) are keyable only at package
	// scope, where the name is unique.
	if obj.Parent() != nil && obj.Parent() == obj.Pkg().Scope() {
		return pkgPath, "O:" + obj.Name(), true
	}
	return "", "", false
}

// normVariantPath strips the " [pkg.test]" suffix the go command appends to
// package paths of test variants, so a fact exported while vetting the test
// variant resolves against objects of the ordinary package and vice versa.
func normVariantPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// factKey identifies one object in the store.
type factKey struct {
	PkgPath string
	Obj     string
}

// ObjectFact pairs a keyed object with one attached fact, for enumeration
// (checktest assertions, the vetx encoder).
type ObjectFact struct {
	PkgPath string
	ObjKey  string
	// Object is the in-process object the fact was exported on, when the
	// export happened in this process; nil for facts decoded from a vetx
	// file (the importing unit has no syntax for its dependencies).
	Object types.Object
	Fact   Fact
}

// FactStore holds the object facts of one analysis session or vet unit.
// The zero value is not usable; call NewFactStore.
type FactStore struct {
	facts map[factKey][]Fact
	objs  map[factKey]types.Object // position info for in-process exports
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		facts: make(map[factKey][]Fact),
		objs:  make(map[factKey]types.Object),
	}
}

// ExportObjectFact attaches fact to obj, replacing any existing fact of the
// same dynamic type. Unkeyable objects are ignored (matching x/tools, where
// exporting on a local is a no-op for importers).
func (s *FactStore) ExportObjectFact(obj types.Object, fact Fact) {
	pkg, key, ok := ObjectKey(obj)
	if !ok {
		return
	}
	k := factKey{pkg, key}
	s.objs[k] = obj
	for i, f := range s.facts[k] {
		if reflect.TypeOf(f) == reflect.TypeOf(fact) {
			s.facts[k][i] = fact
			return
		}
	}
	s.facts[k] = append(s.facts[k], fact)
}

// ImportObjectFact copies the fact of ptr's dynamic type attached to obj
// into ptr and reports whether one was found. ptr must be a pointer to a
// fact struct, as passed to ExportObjectFact.
func (s *FactStore) ImportObjectFact(obj types.Object, ptr Fact) bool {
	pkg, key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	for _, f := range s.facts[factKey{pkg, key}] {
		if reflect.TypeOf(f) == reflect.TypeOf(ptr) {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// AllObjectFacts enumerates every fact in the store, sorted by package,
// object and fact type for deterministic output.
func (s *FactStore) AllObjectFacts() []ObjectFact {
	var out []ObjectFact
	for k, facts := range s.facts {
		for _, f := range facts {
			out = append(out, ObjectFact{PkgPath: k.PkgPath, ObjKey: k.Obj, Object: s.objs[k], Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PkgPath != out[j].PkgPath {
			return out[i].PkgPath < out[j].PkgPath
		}
		if out[i].ObjKey != out[j].ObjKey {
			return out[i].ObjKey < out[j].ObjKey
		}
		return fmt.Sprintf("%T", out[i].Fact) < fmt.Sprintf("%T", out[j].Fact)
	})
	return out
}

// factRecord is the gob wire form of one fact.
type factRecord struct {
	PkgPath string
	ObjKey  string
	Fact    Fact
}

// vetxPayload is the gob wire form of a whole store. A version tag guards
// against stale vet caches built by an older tool (the go command hashes
// the tool binary into the cache key, so this is belt-and-braces).
type vetxPayload struct {
	Version int
	Facts   []factRecord
}

const vetxVersion = 1

// EncodeVetx serializes every fact in the store — the unit's own exports
// and the facts it imported from dependencies — so a dependent unit sees
// the transitive closure even if the go command hands it only direct
// dependencies' vetx files.
func (s *FactStore) EncodeVetx() ([]byte, error) {
	payload := vetxPayload{Version: vetxVersion}
	for _, of := range s.AllObjectFacts() {
		payload.Facts = append(payload.Facts, factRecord{PkgPath: of.PkgPath, ObjKey: of.ObjKey, Fact: of.Fact})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return nil, fmt.Errorf("encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeVetx merges the facts of one encoded store (a dependency's vetx
// file) into s. Empty input — the vetx of a unit analyzed by a facts-free
// tool version, or the placeholder the go command requires even from
// fact-free runs — decodes to nothing. Same-type facts already present win
// (a unit's own exports are fresher than a dependency's re-export).
func (s *FactStore) DecodeVetx(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var payload vetxPayload
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&payload); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	if payload.Version != vetxVersion {
		return nil // a different tool era's facts: ignore, never fail the build
	}
	for _, rec := range payload.Facts {
		if rec.Fact == nil {
			continue
		}
		k := factKey{rec.PkgPath, rec.ObjKey}
		dup := false
		for _, f := range s.facts[k] {
			if reflect.TypeOf(f) == reflect.TypeOf(rec.Fact) {
				dup = true
				break
			}
		}
		if !dup {
			s.facts[k] = append(s.facts[k], rec.Fact)
		}
	}
	return nil
}

// RegisterFactTypes gob-registers the fact types declared by the analyzers
// so vetx payloads can carry them as interface values. Safe to call more
// than once with the same types.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}
