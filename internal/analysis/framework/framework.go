// Package framework is a self-contained, standard-library-only analog of
// golang.org/x/tools/go/analysis, sized for this repository's needs.
//
// The repository builds hermetically (no module downloads), so the usual
// x/tools analysis stack is not available; this package reimplements the
// small slice of it that twm-lint needs: the Analyzer/Pass/Diagnostic
// model, a module-aware source loader for in-process runs and tests
// (load.go), and the `go vet -vettool` unit-checker protocol (vet.go).
// Analyzers written against it look and behave like ordinary go/analysis
// analyzers, so a future migration to x/tools is mechanical.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. It mirrors analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be a
	// valid Go identifier.
	Name string
	// Doc is the help text: first sentence is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass presents one package to an Analyzer. It mirrors analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// TypesSizes gives the target's layout rules (used by atomichygiene's
	// alignment check, which additionally consults 32-bit sizes itself).
	TypesSizes types.Sizes

	report func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Inspect walks every file of the pass in depth-first order, calling fn for
// each node; fn returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// RunAnalyzers applies each analyzer to the package described by (fset,
// files, pkg, info) and returns the combined diagnostics sorted by position.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sizes types.Sizes) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: sizes,
			report:     func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// HasDirective reports whether the comment group contains the given
// twm directive (e.g. "twm:impure"), either alone or followed by an
// explanation after a space.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// DirectiveLines returns the set of source lines (per file of the pass) on
// which the given directive comment appears. A node is conventionally
// suppressed when the directive sits on its own line or on the line above.
func DirectiveLines(fset *token.FileSet, files []*ast.File, directive string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text != directive && !strings.HasPrefix(text, directive+" ") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// SuppressedAt reports whether lines (from DirectiveLines) suppress the
// given position: the directive is on the same line or the line above.
func SuppressedAt(fset *token.FileSet, lines map[string]map[int]bool, pos token.Pos) bool {
	p := fset.Position(pos)
	m := lines[p.Filename]
	return m != nil && (m[p.Line] || m[p.Line-1])
}
