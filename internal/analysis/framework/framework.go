// Package framework is a self-contained, standard-library-only analog of
// golang.org/x/tools/go/analysis, sized for this repository's needs.
//
// The repository builds hermetically (no module downloads), so the usual
// x/tools analysis stack is not available; this package reimplements the
// small slice of it that twm-lint needs: the Analyzer/Pass/Diagnostic
// model, a module-aware source loader for in-process runs and tests
// (load.go), and the `go vet -vettool` unit-checker protocol (vet.go).
// Analyzers written against it look and behave like ordinary go/analysis
// analyzers, so a future migration to x/tools is mechanical.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. It mirrors analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be a
	// valid Go identifier.
	Name string
	// Doc is the help text: first sentence is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// FactTypes lists prototype values (non-nil pointers) of every Fact
	// type the analyzer exports or imports, for gob registration. An
	// analyzer with no FactTypes neither produces nor consumes facts and
	// is skipped entirely in facts-only (VetxOnly) units.
	FactTypes []Fact
}

// Pass presents one package to an Analyzer. It mirrors analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// TypesSizes gives the target's layout rules (used by atomichygiene's
	// alignment check, which additionally consults 32-bit sizes itself).
	TypesSizes types.Sizes

	report func(Diagnostic)
	facts  *FactStore
}

// ExportObjectFact attaches a fact to obj for later passes — including
// passes over other packages that import this one. Facts on local objects
// are silently dropped (see ObjectKey).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts != nil {
		p.facts.ExportObjectFact(obj, fact)
	}
}

// ImportObjectFact copies the fact of ptr's dynamic type attached to obj —
// by this pass or by an earlier pass over the package that declares obj —
// into ptr, reporting whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	return p.facts != nil && p.facts.ImportObjectFact(obj, ptr)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Inspect walks every file of the pass in depth-first order, calling fn for
// each node; fn returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// RunAnalyzers applies each analyzer to the package described by (fset,
// files, pkg, info) and returns the combined diagnostics sorted by position.
// Facts stay private to this one package; use RunAnalyzersFacts to thread a
// session-wide store.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sizes types.Sizes) ([]Diagnostic, error) {
	return RunAnalyzersFacts(analyzers, fset, files, pkg, info, sizes, NewFactStore())
}

// RunAnalyzersFacts is RunAnalyzers with an explicit fact store: analyzers
// read facts that earlier analyses (of this package's dependencies) left in
// the store and add their own for later ones. Diagnostics suppressed by a
// `//twm:allow <rule>` directive on their line or the line above are
// dropped here, so every analyzer honors the directive uniformly.
func RunAnalyzersFacts(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sizes types.Sizes, facts *FactStore) ([]Diagnostic, error) {
	allows := CollectAllows(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: sizes,
			facts:      facts,
			report: func(d Diagnostic) {
				if !allowedAt(fset, allows, d) {
					diags = append(diags, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// AllowDirective is one parsed `//twm:allow rule[,rule] justification`
// comment: a per-line, per-rule suppression every analyzer honors, with
// the justification kept for the -allowlist audit.
type AllowDirective struct {
	File          string
	Line          int
	Rules         []string
	Justification string
}

// CollectAllows parses every //twm:allow directive in the files.
func CollectAllows(fset *token.FileSet, files []*ast.File) []AllowDirective {
	var out []AllowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "twm:allow")
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, AllowDirective{
					File:          pos.Filename,
					Line:          pos.Line,
					Rules:         strings.Split(fields[0], ","),
					Justification: strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0])),
				})
			}
		}
	}
	return out
}

// allowedAt reports whether d is suppressed by a directive naming d's
// analyzer (or "all") on d's line or the line above.
func allowedAt(fset *token.FileSet, allows []AllowDirective, d Diagnostic) bool {
	if len(allows) == 0 {
		return false
	}
	p := fset.Position(d.Pos)
	for _, a := range allows {
		if a.File != p.Filename || (a.Line != p.Line && a.Line != p.Line-1) {
			continue
		}
		for _, r := range a.Rules {
			if r == d.Analyzer || r == "all" {
				return true
			}
		}
	}
	return false
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// HasDirective reports whether the comment group contains the given
// twm directive (e.g. "twm:impure"), either alone or followed by an
// explanation after a space.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// DirectiveLines returns the set of source lines (per file of the pass) on
// which the given directive comment appears. A node is conventionally
// suppressed when the directive sits on its own line or on the line above.
func DirectiveLines(fset *token.FileSet, files []*ast.File, directive string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text != directive && !strings.HasPrefix(text, directive+" ") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// SuppressedAt reports whether lines (from DirectiveLines) suppress the
// given position: the directive is on the same line or the line above.
func SuppressedAt(fset *token.FileSet, lines map[string]map[int]bool, pos token.Pos) bool {
	p := fset.Position(pos)
	m := lines[p.Filename]
	return m != nil && (m[p.Line] || m[p.Line-1])
}
