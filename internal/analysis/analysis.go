// Package analysis aggregates the twm-lint analyzer suite: the static
// checks that enforce this repository's transactional usage discipline
// (see DESIGN.md §9). The analyzers are built on the stdlib-only
// framework subpackage and are wired into CI through cmd/twm-lint.
package analysis

import (
	"repro/internal/analysis/abortshape"
	"repro/internal/analysis/atomichygiene"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/rodiscipline"
	"repro/internal/analysis/txescape"
	"repro/internal/analysis/txfuture"
	"repro/internal/analysis/txpurity"
)

// All returns the full analyzer suite in reporting order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		txescape.Analyzer,
		txpurity.Analyzer,
		rodiscipline.Analyzer,
		atomichygiene.Analyzer,
		txfuture.Analyzer,
		abortshape.Analyzer,
	}
}
