package atomichygiene_test

import (
	"testing"

	"repro/internal/analysis/atomichygiene"
	"repro/internal/analysis/framework/checktest"
)

func TestAtomicHygiene(t *testing.T) {
	checktest.Run(t, "hygiene", atomichygiene.Analyzer)
}
