// Package atomichygiene implements the twm-lint analyzer that audits raw
// sync/atomic usage on struct fields.
//
// The engines' hot-path counters (stm.Stats shards, mvutil's active-set
// slots) moved to cache-line-padded, atomically-accessed layouts in the
// allocation overhaul; that design survives only if every access to an
// atomic field actually goes through sync/atomic and 64-bit fields keep
// the 8-byte alignment the atomic package demands on 32-bit platforms.
// The analyzer reports, per package:
//
//   - mixed access: a struct field that some code touches through
//     sync/atomic address-based calls (atomic.AddUint64(&s.f, ...)) and
//     other code reads or writes with a plain selector — a data race the
//     race detector only finds when both paths execute;
//   - alignment hazards: a raw int64/uint64 field used with 64-bit atomic
//     calls whose offset under 32-bit layout rules is not 8-byte aligned,
//     which panics on 386/arm (use an atomic.Int64/Uint64 field, which
//     carries its own alignment guarantee, or move the field first).
//
// A deliberate mixed access (e.g. a reset of a pooled descriptor that is
// provably unshared at that point) can be annotated `//twm:nonatomic`.
package atomichygiene

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the atomichygiene analysis.
var Analyzer = &framework.Analyzer{
	Name: "atomichygiene",
	Doc:  "report struct fields mixing sync/atomic and plain access, and misalignable 64-bit atomic fields",
	Run:  run,
}

// atomicUse records how a field is accessed atomically.
type atomicUse struct {
	pos    token.Pos
	name   string // the sync/atomic function used
	is64   bool
	parent *types.Struct // owning struct layout, for the alignment check
}

func run(pass *framework.Pass) error {
	info := pass.TypesInfo
	suppress := framework.DirectiveLines(pass.Fset, pass.Files, "twm:nonatomic")

	// Phase 1: find address-based sync/atomic calls on struct fields.
	uses := make(map[*types.Var]atomicUse)
	inAtomicArg := make(map[*ast.SelectorExpr]bool)
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calledAtomicFunc(info, call)
		if fn == nil || len(call.Args) == 0 {
			return true
		}
		unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || unary.Op != token.AND {
			return true
		}
		sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field, parent := fieldOf(info, sel)
		if field == nil {
			return true
		}
		inAtomicArg[sel] = true
		if _, seen := uses[field]; !seen {
			uses[field] = atomicUse{
				pos:    call.Pos(),
				name:   fn.Name(),
				is64:   strings.HasSuffix(fn.Name(), "64"),
				parent: parent,
			}
		}
		return true
	})
	if len(uses) == 0 {
		return nil
	}

	// Phase 2: plain accesses to those same fields.
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || inAtomicArg[sel] {
			return true
		}
		field, _ := fieldOf(info, sel)
		if field == nil {
			return true
		}
		use, ok := uses[field]
		if !ok {
			return true
		}
		if framework.SuppressedAt(pass.Fset, suppress, sel.Pos()) {
			return true
		}
		pass.Reportf(sel.Pos(), "field %s is accessed with atomic.%s elsewhere but plainly here; mixed access races (//twm:nonatomic to allow)", field.Name(), use.name)
		return true
	})

	// Phase 3: 32-bit alignment of 64-bit atomically-accessed raw fields.
	sizes := types.SizesFor("gc", "386")
	reported := make(map[*types.Var]bool)
	for field, use := range uses {
		if !use.is64 || use.parent == nil || reported[field] {
			continue
		}
		reported[field] = true
		fields := make([]*types.Var, use.parent.NumFields())
		idx := -1
		for i := 0; i < use.parent.NumFields(); i++ {
			fields[i] = use.parent.Field(i)
			if fields[i] == field {
				idx = i
			}
		}
		if idx < 0 {
			continue
		}
		offsets := sizes.Offsetsof(fields)
		if offsets[idx]%8 != 0 {
			pass.Reportf(field.Pos(), "64-bit atomic field %s is at offset %d under 32-bit layout and may fault in atomic.%s; use atomic.Int64/Uint64 (self-aligning) or move it to the front of the struct", field.Name(), offsets[idx], use.name)
		}
	}
	return nil
}

// calledAtomicFunc returns the called package-level sync/atomic function,
// or nil (methods on atomic.Uint64 etc. manage their own discipline).
func calledAtomicFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return fn
}

// fieldOf resolves sel to a struct field object and the struct layout that
// owns it; (nil, nil) if sel is not a field selection.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) (*types.Var, *types.Struct) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, nil
	}
	recv := s.Recv()
	for {
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			continue
		}
		break
	}
	st, _ := recv.Underlying().(*types.Struct)
	return field, st
}
