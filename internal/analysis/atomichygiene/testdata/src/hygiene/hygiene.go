// Package hygiene is twm-lint golden-test input: struct fields that mix
// sync/atomic with plain access, and 64-bit atomic fields whose 32-bit
// alignment is not guaranteed.
package hygiene

import "sync/atomic"

type counters struct {
	aligned uint64 // offset 0 everywhere: fine
	flag    uint32
	hits    uint64 // want `64-bit atomic field hits is at offset 12 under 32-bit layout`
	typed   atomic.Uint64
}

func bump(c *counters) {
	atomic.AddUint64(&c.aligned, 1)
	atomic.AddUint64(&c.hits, 1)
	c.typed.Add(1) // typed atomics carry their own guarantees: fine
}

func mixedRead(c *counters) uint64 {
	return c.hits // want `field hits is accessed with atomic.AddUint64 elsewhere but plainly here`
}

func mixedWrite(c *counters) {
	c.aligned = 0 // want `field aligned is accessed with atomic.AddUint64 elsewhere but plainly here`
}

func atomicRead(c *counters) uint64 {
	return atomic.LoadUint64(&c.hits) // every access atomic: fine
}

func suppressedReset(c *counters) {
	c.hits = 0 //twm:nonatomic pooled descriptor, provably unshared here
}

// plain is never touched atomically; plain access everywhere is fine.
type plain struct {
	n uint64
}

func bumpPlain(p *plain) { p.n++ }

// The framework-level //twm:allow directive works alongside the analyzer's
// own //twm:nonatomic hatch.
func allowedMixedWrite(c *counters) {
	c.aligned = 7 //twm:allow atomichygiene init-before-publish; no concurrent access yet
}
