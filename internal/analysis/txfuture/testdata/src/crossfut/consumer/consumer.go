// Package consumer proves txfuture's blocking discipline crosses package
// boundaries: helper.WaitFor blocks, and a body here that reaches it is
// reported.
package consumer

import (
	"crossfut/helper"

	"repro/internal/stm"
)

func bodies(tm stm.TM, f *stm.Future) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		_ = helper.WaitFor(f) // want `calls helper.WaitFor, which blocks on Future.Wait`
		_ = helper.Peek(f)    // non-blocking: clean
		return nil
	})
}
