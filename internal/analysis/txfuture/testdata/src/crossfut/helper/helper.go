// Package helper is the dependency side of the cross-package txfuture
// golden test: its blocking helper must be visible, via BlocksFact, to
// transaction bodies in the consumer package.
package helper

import "repro/internal/stm"

// WaitFor blocks on the future. // want WaitFor:"blocks: blocks on Future.Wait"
func WaitFor(f *stm.Future) error { return f.Wait() }

// Peek is non-blocking: no fact.
func Peek(f *stm.Future) bool {
	select {
	case <-f.Done():
		return true
	default:
		return false
	}
}
