// Package future is twm-lint golden-test input for the txfuture analyzer:
// dropped async futures, futures waited on inside transaction bodies, and
// the //twm:allow escape hatch.
package future

import (
	"context"

	"repro/internal/stm"
)

func body(tx stm.Tx) error { return nil }

func dropped(tm stm.TM) {
	stm.AtomicallyAsync(tm, false, body)                              // want `future returned by stm.AtomicallyAsync is dropped`
	_ = stm.AtomicallyAsyncCtx(context.Background(), tm, false, body) // want `future returned by stm.AtomicallyAsyncCtx is discarded with the blank identifier`
	f := stm.AtomicallyAsync(tm, false, body)                         // want `future returned by stm.AtomicallyAsync is never consumed`
	_ = f
}

func consumed(tm stm.TM) error {
	f := stm.AtomicallyAsync(tm, false, body)
	if err := f.Wait(); err != nil {
		return err
	}
	g := stm.AtomicallyAsyncCtx(context.Background(), tm, false, body)
	<-g.Done()
	h := stm.AtomicallyAsync(tm, false, body)
	return reap(h) // handed off: reap's problem now
}

func reap(f *stm.Future) error { return f.Wait() }

func escapes(tm stm.TM) []*stm.Future {
	fs := []*stm.Future{stm.AtomicallyAsync(tm, false, body)}
	fs = append(fs, stm.AtomicallyAsync(tm, false, body))
	return fs
}

func sink(f *stm.Future) {}

func inBody(tm stm.TM, f *stm.Future) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		_ = f.Wait()                                 // want `transaction body blocks on Future.Wait`
		_ = f.WaitCtx(context.Background())          // want `transaction body blocks on Future.WaitCtx`
		sink(stm.AtomicallyAsync(tm, false, body))   // want `launches an asynchronous transaction \(stm.AtomicallyAsync\)`
		waits(f)                                     // want `transaction body calls waits, which blocks on Future.Wait`
		deepWaits(f)                                 // want `transaction body calls deepWaits, which calls waits, which blocks on Future.Wait`
		return nil
	})
}

func waits(f *stm.Future) { _ = f.Wait() }

func deepWaits(f *stm.Future) { waits(f) }

func allowed(tm stm.TM, f *stm.Future) {
	//twm:allow txfuture fire-and-forget warm-up probe; outcome deliberately ignored
	stm.AtomicallyAsync(tm, false, body)
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		_ = f.Wait() //twm:allow txfuture engine under test is not combiner-gated here
		return nil
	})
}
