// Package txfuture implements the twm-lint analyzer that enforces the
// async-transaction discipline around stm.Future.
//
// The AtomicallyAsync family (internal/stm/future.go) runs a transaction
// on its own goroutine and hands back a *stm.Future that resolves exactly
// once. Two misuse classes are statically visible:
//
//   - Dropped futures. A future nobody consumes silently discards the
//     transaction's outcome: a user abort, *stm.CancelledError or
//     *stm.OverloadError vanishes, and the program has no ordering point
//     for the commit. The analyzer flags an AtomicallyAsync* result used
//     as an expression statement, assigned to the blank identifier, or
//     bound to a local whose every use is a blank assignment. A future
//     that escapes — returned, passed to another function, stored in a
//     structure — is someone else's to consume and stays legal.
//
//   - Futures inside transaction bodies. Future.Wait/WaitCtx reachable
//     from a body (transitively through helpers, across packages via
//     BlocksFact) can deadlock a combiner-gated commit: under the
//     group-commit engines the waiting body may be the very member whose
//     turn the combiner leader is waiting to run, and the awaited
//     transaction may be queued behind it (DESIGN.md §13). Launching an
//     AtomicallyAsync* transaction from inside a body is flagged for the
//     same reason txpurity flags nested Atomically: bodies re-execute on
//     retry, so every retry leaks another transaction goroutine.
//
// `//twm:allow txfuture <reason>` on the offending line (or the line
// above) suppresses a finding, like every twm-lint rule.
package txfuture

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/stmtypes"
)

// Analyzer is the txfuture analysis.
var Analyzer = &framework.Analyzer{
	Name:      "txfuture",
	Doc:       "report dropped stm.Futures and Future.Wait or async launches reachable from transaction bodies",
	Run:       run,
	FactTypes: []framework.Fact{&BlocksFact{}},
}

// BlocksFact marks a function that (transitively) blocks on Future.Wait /
// WaitCtx or launches an asynchronous transaction — operations that must
// stay unreachable from transaction bodies.
type BlocksFact struct {
	What string
}

// AFact marks BlocksFact as a framework fact.
func (*BlocksFact) AFact() {}

func (f *BlocksFact) String() string { return "blocks: " + f.What }

// violation is one future-discipline breach inside body-reachable code.
type violation struct {
	pos  token.Pos
	what string
}

type checker struct {
	pass       *framework.Pass
	decls      map[*types.Func]*ast.FuncDecl
	summaries  map[*types.Func][]violation
	inProgress map[*types.Func]bool
}

func run(pass *framework.Pass) error {
	checkDropped(pass)

	c := &checker{
		pass:       pass,
		decls:      declaredFuncs(pass),
		summaries:  make(map[*types.Func][]violation),
		inProgress: make(map[*types.Func]bool),
	}
	for _, body := range stmtypes.FindBodies(pass.TypesInfo, pass.Files) {
		for _, v := range c.scan(body.Lit.Body) {
			pass.Reportf(v.pos, "transaction body %s; a body that waits on or launches other transactions can deadlock a combiner-gated commit (DESIGN.md §13)", v.what)
		}
	}
	for fn := range c.decls {
		if s := c.summary(fn); len(s) > 0 {
			pass.ExportObjectFact(fn, &BlocksFact{What: s[0].what})
		}
	}
	return nil
}

func declaredFuncs(pass *framework.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

func (c *checker) summary(fn *types.Func) []violation {
	if s, ok := c.summaries[fn]; ok {
		return s
	}
	if c.inProgress[fn] {
		return nil
	}
	decl := c.decls[fn]
	if decl == nil {
		return nil
	}
	c.inProgress[fn] = true
	s := c.scan(decl.Body)
	c.inProgress[fn] = false
	c.summaries[fn] = s
	return s
}

// scan collects Wait/WaitCtx calls and async launches in a function body:
// direct ones, transitive ones through same-package callees, and
// cross-package ones through imported BlocksFacts.
func (c *checker) scan(body ast.Node) []violation {
	info := c.pass.TypesInfo
	var out []violation
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case stmtypes.FutureMethodOf(info, call) == "Wait",
			stmtypes.FutureMethodOf(info, call) == "WaitCtx":
			out = append(out, violation{call.Pos(), "blocks on Future." + stmtypes.FutureMethodOf(info, call)})
		case stmtypes.IsAsyncAtomicallyCall(info, call):
			fn := stmtypes.FuncOf(info, call)
			out = append(out, violation{call.Pos(), "launches an asynchronous transaction (stm." + fn.Name() + ")"})
		default:
			fn := stmtypes.FuncOf(info, call)
			if fn == nil {
				return true
			}
			if fn.Pkg() == c.pass.Pkg {
				if s := c.summary(fn); len(s) > 0 {
					out = append(out, violation{call.Pos(), "calls " + fn.Name() + ", which " + s[0].what})
				}
			} else {
				var f BlocksFact
				if c.pass.ImportObjectFact(fn, &f) {
					out = append(out, violation{call.Pos(), "calls " + fn.Pkg().Name() + "." + fn.Name() + ", which " + f.What})
				}
			}
		}
		return true
	})
	return out
}

// checkDropped flags AtomicallyAsync* results that no one can ever
// consume.
func checkDropped(pass *framework.Pass) {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		parents := parentMap(file)
		var candidates []struct {
			obj types.Object
			pos token.Pos
			fn  string
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !stmtypes.IsAsyncAtomicallyCall(info, call) {
				return true
			}
			name := stmtypes.FuncOf(info, call).Name()
			switch parent := parents[call].(type) {
			case *ast.ExprStmt:
				pass.Reportf(call.Pos(), "future returned by stm.%s is dropped; consume it via Wait, WaitCtx or Done, or the transaction's outcome is lost", name)
			case *ast.AssignStmt:
				if len(parent.Lhs) != len(parent.Rhs) {
					return true
				}
				for i, rhs := range parent.Rhs {
					if rhs != ast.Expr(call) {
						continue
					}
					lhs, ok := ast.Unparen(parent.Lhs[i]).(*ast.Ident)
					if !ok {
						continue // stored into a field/element: escapes
					}
					if lhs.Name == "_" {
						pass.Reportf(call.Pos(), "future returned by stm.%s is discarded with the blank identifier; consume it via Wait, WaitCtx or Done", name)
						continue
					}
					var obj types.Object
					if parent.Tok == token.DEFINE {
						obj = info.Defs[lhs]
					} else {
						obj = info.Uses[lhs]
					}
					// Only locals can be proven dropped; package-level
					// futures are consumable from anywhere.
					if obj != nil && obj.Parent() != pass.Pkg.Scope() {
						candidates = append(candidates, struct {
							obj types.Object
							pos token.Pos
							fn  string
						}{obj, call.Pos(), name})
					}
				}
			}
			return true
		})
		for _, cand := range candidates {
			if !consumedSomewhere(info, file, parents, cand.obj) {
				pass.Reportf(cand.pos, "future returned by stm.%s is never consumed: every use of the variable discards it; call Wait, WaitCtx or Done", cand.fn)
			}
		}
	}
}

// consumedSomewhere reports whether any use of the future-holding variable
// could consume or hand off the future. Blank reassignments (`_ = f`) do
// not count; anything else — a Wait/WaitCtx/Done selector, an argument
// position, a return, a store — conservatively does.
func consumedSomewhere(info *types.Info, file *ast.File, parents map[ast.Node]ast.Node, obj types.Object) bool {
	consumed := false
	ast.Inspect(file, func(n ast.Node) bool {
		if consumed {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		if assign, ok := parents[id].(*ast.AssignStmt); ok {
			// A use on the RHS of an all-blank assignment discards.
			allBlank := true
			for _, lhs := range assign.Lhs {
				if l, ok := ast.Unparen(lhs).(*ast.Ident); !ok || l.Name != "_" {
					allBlank = false
					break
				}
			}
			onRhs := false
			for _, rhs := range assign.Rhs {
				if ast.Unparen(rhs) == ast.Expr(id) {
					onRhs = true
					break
				}
			}
			if onRhs && allBlank {
				return true
			}
		}
		consumed = true
		return false
	})
	return consumed
}

// parentMap records each node's immediate parent within file.
func parentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
