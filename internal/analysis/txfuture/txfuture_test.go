package txfuture_test

import (
	"testing"

	"repro/internal/analysis/framework/checktest"
	"repro/internal/analysis/txfuture"
)

func TestTxFuture(t *testing.T) {
	checktest.Run(t, "future", txfuture.Analyzer)
}

// TestTxFutureCrossPackage proves the blocking discipline propagates
// across a package boundary via BlocksFact.
func TestTxFutureCrossPackage(t *testing.T) {
	checktest.Run(t, "crossfut/consumer", txfuture.Analyzer)
}
