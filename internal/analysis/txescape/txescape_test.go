package txescape_test

import (
	"testing"

	"repro/internal/analysis/framework/checktest"
	"repro/internal/analysis/txescape"
)

func TestTxEscape(t *testing.T) {
	checktest.Run(t, "escape", txescape.Analyzer)
}
