// Package escape is twm-lint golden-test input: every way an stm.Tx may
// (and may not) leave the transaction body that received it.
package escape

import (
	"repro/internal/stm"
)

type holder struct{ tx stm.Tx }

var globalTx stm.Tx

func positives(tm stm.TM, ch chan stm.Tx, h *holder) {
	var leaked stm.Tx
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		go func() { // want `Tx captured by goroutine`
			_ = tx.Read(nil)
		}()
		ch <- tx                // want `Tx sent on a channel`
		h.tx = tx               // want `Tx assigned to a field`
		_ = holder{tx: tx}      // want `Tx stored in a composite literal`
		_ = []stm.Tx{tx}        // want `Tx stored in a composite literal`
		globalTx = tx           // want `outlives the transaction body`
		leaked = tx             // want `outlives the transaction body`
		m := make(map[int]stm.Tx)
		m[0] = tx // want `Tx stored in a slice/map element`
		return nil
	})
	_ = leaked
}

func negatives(tm stm.TM, x *stm.TVar[int]) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		alias := tx // fresh local alias inside the body: allowed
		helper(alias, x)
		helper(tx, x) // passing Tx down the call tree is the intended style
		v := x.Get(tx)
		x.Set(tx, v+1)
		return nil
	})
}

// Async entry points are transaction-body roots like any other: the body of
// an AtomicallyAsync call is under the same escape discipline.
func asyncPositives(tm stm.TM, ch chan stm.Tx) {
	var leaked stm.Tx
	f := stm.AtomicallyAsync(tm, false, func(tx stm.Tx) error {
		ch <- tx    // want `Tx sent on a channel`
		leaked = tx // want `outlives the transaction body`
		return nil
	})
	_ = f.Wait()
	_ = leaked
}

func asyncNegatives(tm stm.TM, x *stm.TVar[int]) {
	f := stm.AtomicallyAsync(tm, false, func(tx stm.Tx) error {
		helper(tx, x)
		x.Set(tx, x.Get(tx)+1)
		return nil
	})
	<-f.Done()
}

func helper(tx stm.Tx, x *stm.TVar[int]) { _ = x.Get(tx) }

// The framework-level //twm:allow directive suppresses txescape findings
// like any other rule.
func allowedEscape(tm stm.TM, ch chan stm.Tx) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		//twm:allow txescape test fixture hands its Tx to a cooperating goroutine it joins before returning
		ch <- tx
		return nil
	})
}
