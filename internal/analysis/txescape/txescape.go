// Package txescape implements the twm-lint analyzer that keeps stm.Tx
// values inside the transaction body that received them.
//
// A Tx is single-goroutine and dies at commit (internal/stm/stm.go); with
// pooling engines the descriptor is recycled the moment Atomically's
// attempt finishes, so a Tx that leaks past its closure aliases a future,
// unrelated transaction. The analyzer flags, for the Tx parameter of every
// transaction-body closure:
//
//   - capture by a goroutine spawned inside the body (`go` statement);
//   - sending the Tx on a channel;
//   - storing the Tx in a composite literal (struct, slice, map, array);
//   - assigning the Tx to anything that outlives the body: a struct field
//     or element (selector/index assignment), a package-level variable, or
//     a variable captured from an enclosing function.
//
// Passing the Tx down to helper functions as an ordinary argument is the
// intended instrumentation style and stays legal.
package txescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/stmtypes"
)

// Analyzer is the txescape analysis.
var Analyzer = &framework.Analyzer{
	Name: "txescape",
	Doc:  "report stm.Tx values escaping the transaction body that received them",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, body := range stmtypes.FindBodies(pass.TypesInfo, pass.Files) {
		if body.TxParam == nil {
			continue
		}
		checkBody(pass, body)
	}
	return nil
}

// usesTx reports whether the expression tree contains an identifier bound
// to the body's Tx parameter.
func usesTx(info *types.Info, tx types.Object, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == tx {
			found = true
		}
		return !found
	})
	return found
}

// isTxIdent reports whether e is (after unwrapping parens) exactly the Tx
// parameter.
func isTxIdent(info *types.Info, tx types.Object, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == tx
}

func checkBody(pass *framework.Pass, body stmtypes.Body) {
	tx := body.TxParam
	info := pass.TypesInfo

	// Scope of the closure: assignment targets declared inside it are
	// local aliases (fine); everything else outlives the attempt.
	escapesClosure := func(obj types.Object) bool {
		if obj == nil {
			return true
		}
		if obj.Parent() == pass.Pkg.Scope() {
			return true // package-level variable
		}
		return !(body.Lit.Body.Pos() <= obj.Pos() && obj.Pos() < body.Lit.Body.End()) &&
			!(body.Lit.Type.Pos() <= obj.Pos() && obj.Pos() < body.Lit.Type.End())
	}

	ast.Inspect(body.Lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if usesTx(info, tx, n.Call) {
				pass.Reportf(n.Pos(), "Tx captured by goroutine spawned inside transaction body: a Tx is single-goroutine and dies at commit")
			}
		case *ast.SendStmt:
			if usesTx(info, tx, n.Value) {
				pass.Reportf(n.Pos(), "Tx sent on a channel escapes the transaction body that received it")
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isTxIdent(info, tx, v) {
					pass.Reportf(v.Pos(), "Tx stored in a composite literal outlives the transaction body; pass the Tx as a plain argument instead")
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, body, n, escapesClosure)
		}
		return true
	})
}

func checkAssign(pass *framework.Pass, body stmtypes.Body, n *ast.AssignStmt, escapesClosure func(types.Object) bool) {
	info := pass.TypesInfo
	tx := body.TxParam
	for i, rhs := range n.Rhs {
		if !isTxIdent(info, tx, rhs) {
			continue
		}
		if i >= len(n.Lhs) {
			break
		}
		switch lhs := ast.Unparen(n.Lhs[i]).(type) {
		case *ast.SelectorExpr:
			pass.Reportf(n.Pos(), "Tx assigned to a field escapes the transaction body; a recycled Tx aliases a future transaction")
		case *ast.IndexExpr:
			pass.Reportf(n.Pos(), "Tx stored in a slice/map element escapes the transaction body")
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			var obj types.Object
			if n.Tok == token.DEFINE {
				obj = info.Defs[lhs]
			} else {
				obj = info.Uses[lhs]
			}
			if n.Tok == token.DEFINE && obj != nil {
				continue // fresh local alias inside the body
			}
			if escapesClosure(obj) {
				pass.Reportf(n.Pos(), "Tx assigned to %s, which outlives the transaction body that received it", lhs.Name)
			}
		}
	}
}
