// Package txpurity implements the twm-lint analyzer that keeps transaction
// bodies side-effect free.
//
// Atomically re-executes its body on every abort (internal/stm/atomically.go),
// so anything a body does besides Tx.Read/Tx.Write happens once per attempt,
// not once per transaction: I/O duplicates output, clocks and RNGs make
// retries non-deterministic, channel and mutex operations can deadlock
// against the very transactions the engine is waiting out, goroutines leak
// per retry, and a nested Atomically deadlocks engines with per-goroutine
// commit locks. The analyzer walks every transaction-body closure and,
// transitively, every same-package function it calls, and reports:
//
//   - nested Atomically / AtomicallyCtx calls;
//   - `go` statements;
//   - channel operations (send, receive, select, close, range-over-channel);
//   - sync.Mutex/RWMutex/WaitGroup/Once/Cond method calls;
//   - mutating sync/atomic operations;
//   - I/O and OS effects: fmt, log, os, io, bufio, net, ... package calls
//     and the print/println builtins;
//   - nondeterminism: time.Now/Sleep/..., math/rand, runtime.Gosched.
//
// The escape hatch is a `//twm:impure` comment: on the line of (or above)
// the offending statement, or in the doc comment of a called function, it
// declares the impurity deliberate (the bench yield wrapper's scheduling
// yields are the canonical use) and silences the report.
//
// One structural exemption needs no directive: methods through which a type
// implements stm.CommitLogger (Append, Durable). They are the durability
// seam of the engines' commit paths — invoked once per commit with write
// locks held, never from inside a re-executable transaction body — and
// performing I/O is their contract, so they neither report locally nor
// export impurity facts. A lookalike method on a type that does not
// implement the interface gets no such pass.
//
// Purity is transitive across package boundaries: the analyzer exports an
// ImpureFact for every function of the analyzed package whose body
// (transitively) has an effect, and consults the facts of imported
// packages at every cross-package call site. In source mode the framework
// Session computes dependency facts in-process; under `go vet -vettool`
// they travel as gob payloads piggybacked on the unit-checker protocol
// (framework/facts.go), so an impure helper three packages away is
// reported at the body that ultimately calls it.
package txpurity

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/stmtypes"
)

// Analyzer is the txpurity analysis.
var Analyzer = &framework.Analyzer{
	Name:      "txpurity",
	Doc:       "report side effects inside transaction bodies, which re-execute on retry",
	Run:       run,
	FactTypes: []framework.Fact{&ImpureFact{}},
}

// ImpureFact marks a function whose body (transitively) performs an effect
// a transaction body must not have. What reads like a violation chain:
// "calls fmt.Printf" or "calls logIt, which calls fmt.Printf".
type ImpureFact struct {
	What string
}

// AFact marks ImpureFact as a framework fact.
func (*ImpureFact) AFact() {}

func (f *ImpureFact) String() string { return "impure: " + f.What }

// purePkgFuncs exempts pure constructors from otherwise-forbidden
// packages: they build values without touching the outside world, and
// returning a fmt.Errorf user-abort error from a body is part of the
// Atomically contract.
var purePkgFuncs = map[string]map[string]bool{
	"fmt": {
		"Errorf": true, "Sprintf": true, "Sprint": true, "Sprintln": true,
		"Appendf": true, "Append": true, "Appendln": true,
	},
}

// forbiddenPkgs are packages whose every call is an effect a transaction
// body must not have.
var forbiddenPkgs = map[string]bool{
	"fmt":          true,
	"log":          true,
	"log/slog":     true,
	"os":           true,
	"io":           true,
	"io/ioutil":    true,
	"bufio":        true,
	"net":          true,
	"net/http":     true,
	"math/rand":    true,
	"math/rand/v2": true,
}

// forbiddenFuncs are individual package-level functions that inject
// nondeterminism or scheduling effects.
var forbiddenFuncs = map[string]map[string]bool{
	"time": {
		"Now": true, "Sleep": true, "Since": true, "Until": true,
		"After": true, "AfterFunc": true, "Tick": true,
		"NewTimer": true, "NewTicker": true,
	},
	"runtime": {"Gosched": true},
}

// atomicMutators are the sync/atomic operation name prefixes that modify
// shared memory outside transactional control.
var atomicMutators = []string{"Add", "Store", "Swap", "CompareAndSwap", "Or", "And"}

// violation is one impurity, positioned where it occurs.
type violation struct {
	pos  token.Pos
	what string // reads like "calls fmt.Printf" or "spawns a goroutine"
}

type checker struct {
	pass        *framework.Pass
	impureLines map[string]map[int]bool
	decls       map[*types.Func]*ast.FuncDecl
	summaries   map[*types.Func][]violation
	inProgress  map[*types.Func]bool
}

func run(pass *framework.Pass) error {
	c := &checker{
		pass:        pass,
		impureLines: framework.DirectiveLines(pass.Fset, pass.Files, "twm:impure"),
		decls:       declaredFuncs(pass),
		summaries:   make(map[*types.Func][]violation),
		inProgress:  make(map[*types.Func]bool),
	}
	for _, body := range stmtypes.FindBodies(pass.TypesInfo, pass.Files) {
		for _, v := range c.scan(body.Lit.Body) {
			pass.Reportf(v.pos, "transaction body %s; bodies re-execute on retry (//twm:impure to allow)", v.what)
		}
	}
	// Export an impurity fact for every declared function with an effect,
	// whether or not a local body calls it: callers in packages that import
	// this one resolve their cross-package call sites through these facts.
	for fn := range c.decls {
		if s := c.summary(fn); len(s) > 0 {
			pass.ExportObjectFact(fn, &ImpureFact{What: s[0].what})
		}
	}
	return nil
}

// declaredFuncs maps this package's function and method objects to their
// declarations, for transitive scanning.
func declaredFuncs(pass *framework.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// summary returns the violations of a same-package function, memoized;
// recursion is cut off (a cycle contributes nothing new).
func (c *checker) summary(fn *types.Func) []violation {
	if s, ok := c.summaries[fn]; ok {
		return s
	}
	if c.inProgress[fn] {
		return nil
	}
	decl := c.decls[fn]
	if decl == nil {
		return nil
	}
	if framework.HasDirective(decl.Doc, "twm:impure") {
		c.summaries[fn] = nil
		return nil
	}
	// stm.CommitLogger implementations are commit-path code, not body code:
	// the engines invoke Append with write locks held after validation and
	// Durable after install, exactly once per commit, never from inside a
	// re-executable body — and their entire job is I/O. A nil summary both
	// silences local call sites and keeps the ImpureFact from being
	// exported, so durable loggers don't poison every cross-package caller.
	if stmtypes.IsCommitLoggerMethod(fn) {
		c.summaries[fn] = nil
		return nil
	}
	c.inProgress[fn] = true
	s := c.scan(decl.Body)
	c.inProgress[fn] = false
	c.summaries[fn] = s
	return s
}

// scan walks a function body collecting direct violations and, for calls
// into same-package functions, transitive ones.
func (c *checker) scan(body ast.Node) []violation {
	info := c.pass.TypesInfo
	var out []violation
	add := func(pos token.Pos, what string) {
		if framework.SuppressedAt(c.pass.Fset, c.impureLines, pos) {
			return
		}
		out = append(out, violation{pos, what})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			add(n.Pos(), "spawns a goroutine")
		case *ast.SendStmt:
			add(n.Pos(), "performs a channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				add(n.Pos(), "performs a channel receive")
			}
		case *ast.SelectStmt:
			add(n.Pos(), "blocks in a select statement")
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					add(n.Pos(), "ranges over a channel")
				}
			}
		case *ast.CallExpr:
			c.checkCall(n, add)
		}
		return true
	})
	return out
}

func (c *checker) checkCall(call *ast.CallExpr, add func(token.Pos, string)) {
	info := c.pass.TypesInfo

	// Builtins: close tears down shared channels, print/println are I/O.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "close":
				add(call.Pos(), "closes a channel")
			case "print", "println":
				add(call.Pos(), "calls builtin "+b.Name())
			}
			return
		}
	}

	if stmtypes.IsAtomicallyCall(info, call) {
		add(call.Pos(), "starts a nested transaction")
		return
	}

	fn := stmtypes.FuncOf(info, call)
	if fn == nil {
		return
	}
	path := stmtypes.PkgPathOf(fn)
	sig, _ := fn.Type().(*types.Signature)

	if sig != nil && sig.Recv() != nil {
		recvPath := recvPkgPath(sig)
		switch recvPath {
		case "sync":
			add(call.Pos(), "calls sync."+recvTypeName(sig)+"."+fn.Name())
			return
		case "sync/atomic":
			if hasMutatorPrefix(fn.Name()) {
				add(call.Pos(), "mutates shared memory with sync/atomic ("+fn.Name()+")")
			}
			return
		}
	}

	switch {
	case forbiddenPkgs[path]:
		if purePkgFuncs[path] != nil && purePkgFuncs[path][fn.Name()] {
			return
		}
		add(call.Pos(), "calls "+shortName(path)+"."+fn.Name())
	case forbiddenFuncs[path] != nil && forbiddenFuncs[path][fn.Name()]:
		add(call.Pos(), "calls "+shortName(path)+"."+fn.Name())
	case path == "sync/atomic" && hasMutatorPrefix(fn.Name()):
		add(call.Pos(), "mutates shared memory with sync/atomic ("+fn.Name()+")")
	case fn.Pkg() == c.pass.Pkg:
		// Same-package callee: fold its summary in at the call site.
		if s := c.summary(fn); len(s) > 0 {
			add(call.Pos(), "calls "+fn.Name()+", which "+s[0].what)
		}
	default:
		// Cross-package callee: the owning package's analysis exported an
		// ImpureFact if the function has (transitive) effects. No fact
		// means pure — dependencies are always analyzed first, in source
		// mode by the Session and in vet mode by the go command's unit
		// ordering.
		var f ImpureFact
		if c.pass.ImportObjectFact(fn, &f) {
			add(call.Pos(), "calls "+fn.Pkg().Name()+"."+fn.Name()+", which "+f.What)
		}
	}
}

func recvPkgPath(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path()
	}
	return ""
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func hasMutatorPrefix(name string) bool {
	for _, p := range atomicMutators {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func shortName(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
