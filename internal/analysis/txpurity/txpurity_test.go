package txpurity_test

import (
	"testing"

	"repro/internal/analysis/framework/checktest"
	"repro/internal/analysis/txpurity"
)

func TestTxPurity(t *testing.T) {
	checktest.Run(t, "purity", txpurity.Analyzer)
}

// TestTxPurityCrossPackage proves purity propagates across a package
// boundary: the impure helpers live in crosspure/helper, the transaction
// bodies that reach them in crosspure/consumer, and the findings (plus the
// helper package's exported ImpureFacts) are asserted in both.
func TestTxPurityCrossPackage(t *testing.T) {
	checktest.Run(t, "crosspure/consumer", txpurity.Analyzer)
}

// TestTxPurityCommitLogger proves the structural exemption: methods through
// which a type implements stm.CommitLogger are commit-path code (no
// diagnostics, no exported facts), while a name-alike Append on a
// non-implementing type is still flagged and still exports its fact.
func TestTxPurityCommitLogger(t *testing.T) {
	checktest.Run(t, "commitlogger", txpurity.Analyzer)
}
