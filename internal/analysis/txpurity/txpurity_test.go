package txpurity_test

import (
	"testing"

	"repro/internal/analysis/framework/checktest"
	"repro/internal/analysis/txpurity"
)

func TestTxPurity(t *testing.T) {
	checktest.Run(t, "purity", txpurity.Analyzer)
}
