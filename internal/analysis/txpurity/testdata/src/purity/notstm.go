// Negative golden for runner resolution: callees that merely look like the
// stm runner surface must not count as transaction entry points. Inside a
// real body, calling a user-defined AtomicallyLocal or a user method named
// Atomically without a body parameter draws no nested-transaction
// diagnostic — both would have matched the old name-prefix heuristic. The
// engine-wrapper convention — a method named exactly Atomically taking a
// func(stm.Tx) error — still counts, so it is flagged as nested.
package purity

import "repro/internal/stm"

// AtomicallyLocal shares the runner's prefix but is plain user code.
func AtomicallyLocal(tm stm.TM, readOnly bool, fn func(tx stm.Tx) error) error {
	return fn(nil)
}

type journal struct{}

// Atomically here is a user method with no transaction-body parameter.
func (journal) Atomically(step func() error) error { return step() }

type engine struct{}

// Atomically matches the engine-wrapper convention: named Atomically with
// a func(stm.Tx) error parameter.
func (engine) Atomically(readOnly bool, fn func(tx stm.Tx) error) error { return fn(nil) }

func pureBody(tx stm.Tx) error { return nil }

func pureStep() error { return nil }

func lookalikes(tm stm.TM, j journal, e engine) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		_ = AtomicallyLocal(tm, false, pureBody) // prefix lookalike: clean
		_ = j.Atomically(pureStep)               // method lookalike: clean
		_ = e.Atomically(false, pureBody)        // want `starts a nested transaction`
		return nil
	})
}
