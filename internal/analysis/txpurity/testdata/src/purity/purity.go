// Package purity is twm-lint golden-test input: effects a transaction body
// must not have (it re-executes on retry), and the //twm:impure escape
// hatch that declares an effect deliberate.
package purity

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stm"
)

var counter uint64

func positives(tm stm.TM, ch chan int, mu *sync.Mutex) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		fmt.Println("attempt")    // want `calls fmt.Println`
		_ = time.Now()            // want `calls time.Now`
		_ = rand.Int()            // want `calls rand.Int`
		ch <- 1                   // want `performs a channel send`
		<-ch                      // want `performs a channel receive`
		close(ch)                 // want `closes a channel`
		mu.Lock()                 // want `calls sync.Mutex.Lock`
		atomic.AddUint64(&counter, 1) // want `mutates shared memory with sync/atomic`
		go work()                 // want `spawns a goroutine`
		logIt()                   // want `calls logIt, which calls fmt.Printf`
		deep()                    // want `calls deep, which calls logIt, which calls fmt.Printf`
		_ = stm.Atomically(tm, false, func(inner stm.Tx) error { return nil }) // want `starts a nested transaction`
		_ = stm.AtomicallyAsync(tm, false, func(inner stm.Tx) error { return nil }) // want `starts a nested transaction`
		return nil
	})
}

// Async bodies are transaction bodies: the purity discipline applies
// unchanged, and starting any Atomically-family transaction inside one is
// still a nesting violation.
func asyncBody(tm stm.TM) {
	f := stm.AtomicallyAsync(tm, false, func(tx stm.Tx) error {
		fmt.Println("attempt") // want `calls fmt.Println`
		_ = stm.AtomicallyCtx(nil, tm, false, func(inner stm.Tx) error { return nil }) // want `starts a nested transaction`
		return nil
	})
	_ = f.Wait()
}

func selectsAndRanges(tm stm.TM, ch chan int) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		select { // want `blocks in a select statement`
		case <-ch: // want `performs a channel receive`
		default:
		}
		for range ch { // want `ranges over a channel`
			break
		}
		return nil
	})
}

func suppressed(tm stm.TM) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		//twm:impure deliberate debug output while bisecting
		fmt.Println("allowed")
		runtime.Gosched() //twm:impure scheduling yield, same cost on every engine
		yieldHelper()
		return nil
	})
}

//twm:impure scheduling helper modeled on the bench yield wrapper
func yieldHelper() { runtime.Gosched() }

func negatives(tm stm.TM, x *stm.TVar[int], sink *[]int) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		v := x.Get(tx)
		x.Set(tx, v+1)
		pureHelper(tx, x)
		*sink = append((*sink)[:0], v) // captured-state reset per attempt is legal
		_ = atomic.LoadUint64(&counter)
		return nil
	})
}

func pureHelper(tx stm.Tx, x *stm.TVar[int]) { x.Set(tx, x.Get(tx)*2) }

func work() {}

func logIt() { fmt.Printf("done\n") }

func deep() { logIt() }
