// Package consumer proves txpurity's purity discipline is transitive
// across package boundaries: effects authored in crosspure/helper are
// reported at the transaction bodies here that (directly or through a
// local helper) reach them.
package consumer

import (
	"crosspure/helper"

	"repro/internal/stm"
)

func bodies(tm stm.TM, x *stm.TVar[int]) {
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		helper.Log("attempt")   // want `calls helper.Log, which calls fmt.Println`
		helper.Chain("attempt") // want `calls helper.Chain, which calls Log, which calls fmt.Println`
		x.Set(tx, helper.Pure(1, 2))
		helper.Allowed() // doc-directive //twm:impure in helper: no fact, no report
		return nil
	})
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		local(tx, x) // want `calls local, which calls helper.Log, which calls fmt.Println`
		return nil
	})
}

// local folds a cross-package impurity into a same-package summary: the
// body above sees the full chain.
func local(tx stm.Tx, x *stm.TVar[int]) {
	helper.Log("deep")
	x.Set(tx, 0)
}
