// Package helper is the dependency side of the cross-package purity golden
// test: txpurity analyzing this package must export ImpureFacts that the
// consumer package's analysis reads back at its call sites.
package helper

import "fmt"

// Log writes to stdout: directly impure.
func Log(s string) { fmt.Println(s) } // want Log:"impure: calls fmt.Println"

// Chain is impure only through Log.
func Chain(s string) { Log(s) } // want Chain:"impure: calls Log, which calls fmt.Println"

// Pure computes without effects: no fact.
func Pure(a, b int) int { return a + b }

// Allowed is deliberately effectful; the doc directive keeps the fact from
// being exported, so cross-package callers stay clean.
//
//twm:impure deliberate debug output, exercised by the golden test
func Allowed() { fmt.Println("allowed") }
