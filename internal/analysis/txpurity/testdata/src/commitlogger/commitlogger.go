// Package commitlogger is twm-lint golden-test input for the structural
// CommitLogger exemption: methods through which a type implements
// stm.CommitLogger are commit-path code — their I/O neither reports at call
// sites nor exports impurity facts — while name-alike methods on types that
// do NOT implement the interface stay under the ordinary body discipline.
package commitlogger

import (
	"fmt"

	"repro/internal/stm"
)

// CountingLog implements stm.CommitLogger with deliberately effectful
// methods: the whole point of a logger is I/O. Neither method may carry an
// ImpureFact, and bodies calling them stay clean.
type CountingLog struct{ n uint64 }

var _ stm.CommitLogger = (*CountingLog)(nil)

func (l *CountingLog) Append(recs []stm.CommitRecord) (stm.LSN, error) {
	fmt.Println("append", len(recs)) // commit-path I/O: exempt
	l.n += uint64(len(recs))
	return stm.LSN(l.n), nil
}

func (l *CountingLog) Durable(lsn stm.LSN) error {
	fmt.Println("durable", lsn) // commit-path I/O: exempt
	return nil
}

// Helper is impure in the ordinary way and anchors the fact expectations of
// this file: it proves the harness checks facts here, so the absence of
// facts on the logger methods above is a real assertion, not a blind spot.
func Helper() { fmt.Println("helper") } // want Helper:"impure: calls fmt.Println"

// Lookalike shares the method name Append but does not implement
// stm.CommitLogger (wrong signature): no structural exemption.
type Lookalike struct{}

func (Lookalike) Append(s string) { fmt.Println(s) } // want Append:"impure: calls fmt.Println"

// bodies exports its own fact — starting a transaction is itself an effect
// a body must not have — which this file's fact checking must acknowledge.
func bodies(tm stm.TM, l *CountingLog, lk Lookalike) { // want bodies:"impure: starts a nested transaction"
	_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
		_, _ = l.Append(nil) // exempt: CommitLogger method, commit-path code
		_ = l.Durable(0)     // exempt likewise
		lk.Append("x")       // want `calls Append, which calls fmt.Println`
		return nil
	})
}
