package chaos_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/jvstm"
	"repro/internal/mvutil"
	"repro/internal/stm"
	"repro/internal/stm/stmtest"
)

// alertLog collects watchdog transitions; Step is always driven from the
// test goroutine, so no locking is needed to append, but reads race with
// nothing either (append and read interleave on one goroutine).
type alertLog struct{ events []health.Alert }

func (l *alertLog) fn(a health.Alert) { l.events = append(l.events, a) }

func (l *alertLog) saw(c health.Condition, raised bool) bool {
	for _, a := range l.events {
		if a.Cond == c && a.Raised == raised {
			return true
		}
	}
	return false
}

// TestPressureSoakStabilizeDegradeRecover is the acceptance soak for the
// resource-exhaustion layer, run for both multi-version engines under fault
// injection (and under -race in CI):
//
//  1. Stabilize: sustained update load with automatic GC disabled stays
//     inside the version budget because soft pressure triggers eager GC.
//  2. Degrade: a pinned old snapshot blocks GC and the trim floor (vars ×
//     MaxVersionDepth) exceeds the hard limit, so commits are refused with
//     ReasonMemoryPressure; the watchdog raises budget-hard and livelock.
//  3. Recover: releasing the pin lets GC relieve the pressure; commits
//     succeed again and the watchdog clears both alerts.
func TestPressureSoakStabilizeDegradeRecover(t *testing.T) {
	const (
		nv       = 64
		depth    = 4   // trim floor nv*depth = 256 > hard: trimming cannot relieve
		softVers = 96  // 64 roots + 32 extra versions
		hardVers = 160 // far below the pinned-phase demand
		workers  = 4
	)
	type engineCase struct {
		name  string
		build func(b *mvutil.VersionBudget) stm.TM
	}
	cases := []engineCase{
		{"twm", func(b *mvutil.VersionBudget) stm.TM {
			return core.New(core.Options{GCEveryNCommits: -1, Budget: b, MaxVersionDepth: depth})
		}},
		{"jvstm", func(b *mvutil.VersionBudget) stm.TM {
			return jvstm.New(jvstm.Options{GCEveryNCommits: -1, Budget: b, MaxVersionDepth: depth})
		}},
	}
	for _, ec := range cases {
		t.Run(ec.name, func(t *testing.T) {
			stmtest.CheckGoroutines(t)
			b := mvutil.NewVersionBudget(mvutil.BudgetConfig{SoftVersions: softVers, HardVersions: hardVers})
			inner := ec.build(b)
			tm := chaos.New(inner, chaos.Options{
				Seed:      chaosSeed(t, 0xBAD_B1D6E7),
				AbortProb: 0.02,
				DelayProb: 0.10,
			})
			vars := make([]stm.Var, nv)
			for i := range vars {
				vars[i] = tm.NewVar(0)
			}
			log := &alertLog{}
			w := health.New(health.Config{RaiseAfter: 2, ClearAfter: 2, MinAborts: 8,
				OnAlert: []health.AlertFunc{log.fn}}, health.TargetOf(inner))

			// Phase 1 — stabilize: hammer updates; the only collector is the
			// budget's eager soft-pressure GC.
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 300; i++ {
						idx := (g*300 + i) % nv
						if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
							tx.Write(vars[idx], tx.Read(vars[idx]).(int)+1)
							return nil
						}); err != nil {
							t.Errorf("stabilize write: %v", err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if b.SoftGCs() == 0 {
				t.Fatalf("no soft-limit GC observed: %+v", b.Snapshot())
			}
			if got := b.Versions(); got > hardVers+2*workers {
				t.Fatalf("version memory did not stabilize under the budget: %d live (hard %d)", got, hardVers)
			}
			t.Logf("phase 1 stabilized: %+v", b.Snapshot())

			// Phase 2 — degrade: pin an old snapshot on the inner engine so GC
			// cannot advance, then keep writing until installs are refused and
			// the watchdog raises budget-hard and livelock.
			pin := inner.Begin(true)
			ctx, cancel := context.WithCancel(context.Background())
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; ctx.Err() == nil; i++ {
						idx := (g + i) % nv
						err := stm.AtomicallyCtx(ctx, tm, false, func(tx stm.Tx) error {
							tx.Write(vars[idx], tx.Read(vars[idx]).(int)+1)
							return nil
						})
						var ce *stm.CancelledError
						if err != nil && !errors.As(err, &ce) {
							t.Errorf("degrade write: %v", err)
							return
						}
					}
				}(g)
			}
			deadline := time.Now().Add(30 * time.Second)
			for time.Now().Before(deadline) {
				w.Step()
				if b.Rejects() > 0 &&
					log.saw(health.CondBudget, true) && log.saw(health.CondLivelock, true) {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			cancel()
			wg.Wait()
			if t.Failed() {
				return
			}
			if b.Rejects() == 0 {
				t.Fatalf("hard pressure never refused an install: %+v", b.Snapshot())
			}
			if got := inner.Stats().Snapshot().ByReason[stm.ReasonMemoryPressure.String()]; got == 0 {
				t.Fatal("no ReasonMemoryPressure aborts recorded under forced hard pressure")
			}
			if !log.saw(health.CondBudget, true) {
				t.Fatalf("watchdog never raised budget-hard; alerts: %+v", log.events)
			}
			if !log.saw(health.CondLivelock, true) {
				t.Fatalf("watchdog never raised livelock; alerts: %+v", log.events)
			}
			t.Logf("phase 2 degraded: %+v", b.Snapshot())

			// Phase 3 — recover: release the pin; the next commits' GC passes
			// relieve the pressure and the watchdog clears both alerts.
			inner.Abort(pin)
			for i := 0; i < 50; i++ {
				idx := i % nv
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					tx.Write(vars[idx], tx.Read(vars[idx]).(int)+1)
					return nil
				}); err != nil {
					t.Fatalf("recovery write: %v", err)
				}
			}
			deadline = time.Now().Add(30 * time.Second)
			for time.Now().Before(deadline) {
				// Keep a trickle of commits flowing so livelock windows read
				// healthy while the hysteresis clears.
				if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					tx.Write(vars[0], tx.Read(vars[0]).(int)+1)
					return nil
				}); err != nil {
					t.Fatalf("recovery trickle: %v", err)
				}
				w.Step()
				if log.saw(health.CondBudget, false) && log.saw(health.CondLivelock, false) {
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			if !log.saw(health.CondBudget, false) || !log.saw(health.CondLivelock, false) {
				t.Fatalf("watchdog never cleared; alerts: %+v, budget: %+v", log.events, b.Snapshot())
			}
			if lvl := b.Level(); lvl == mvutil.PressureHard {
				t.Fatalf("still at hard pressure after recovery: %+v", b.Snapshot())
			}
			t.Logf("phase 3 recovered: %+v; %d alerts: %+v", b.Snapshot(), len(log.events), log.events)
		})
	}
}
