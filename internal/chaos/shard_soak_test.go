package chaos_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/dsg"
	"repro/internal/engines"
	"repro/internal/stm"
)

// TestCrossShardChaosSoak drives the sharded engines through the dsg
// serializability oracle under fault injection, at skewed shard mixes: a few
// variables over several clock domains means nearly every update transaction
// has a cross-shard footprint (fence draws + per-shard validation), while the
// wider spread leaves plenty of single-shard fast-path commits. Any cycle the
// oracle finds is a real sharded-commit bug reachable under a legal schedule.
// Replayable via TWM_CHAOS_SEED.
func TestCrossShardChaosSoak(t *testing.T) {
	opts := dsg.RunOptions{Goroutines: 6, TxPerG: 120}
	if testing.Short() {
		opts = dsg.RunOptions{Goroutines: 4, TxPerG: 40}
	}
	mixes := []struct {
		label string
		vars  int
		k     int
	}{
		{"cross-heavy", 3, 4},  // ~every update spans shards
		{"balanced", 8, 4},     // mixed single/cross footprints
		{"single-heavy", 8, 2}, // most footprints fit one shard
	}
	for _, name := range engines.ShardedSet() {
		for _, mix := range mixes {
			t.Run(fmt.Sprintf("%s/%s", name, mix.label), func(t *testing.T) {
				inner := engines.MustNewSharded(name, mix.k, nil)
				tm := chaos.New(inner, chaos.Options{
					Seed:           chaosSeed(t, 0x5AA3D),
					AbortProb:      0.05,
					DelayProb:      0.15,
					CommitFailProb: 0.05,
					StallProb:      0.05,
				})
				o := opts
				o.Vars = mix.vars
				dsg.CheckRandom(t, tm, o)
				inj := tm.Injected()
				t.Logf("injected: %d aborts, %d commit fails, %d delays, %d stalls",
					inj.Aborts.Load(), inj.CommitFails.Load(), inj.Delays.Load(), inj.Stalls.Load())
				if inj.Aborts.Load() == 0 && inj.CommitFails.Load() == 0 {
					t.Errorf("soak injected no faults; the schedule was not adversarial")
				}
			})
		}
	}
}

// TestCrossShardConservationSoak hammers a sharded TWM engine with transfers
// between per-shard account pairs — a deliberately skewed mix of single- and
// cross-shard footprints under chaos — and checks the conservation invariant
// plus the commit-class accounting at the end.
func TestCrossShardConservationSoak(t *testing.T) {
	const (
		k       = 4
		nVars   = 16
		workers = 6
		perW    = 150
		initial = 1000
	)
	inner := engines.MustNewSharded("twm", k, nil)
	tm := chaos.New(inner, chaos.Options{
		Seed:           chaosSeed(t, 0xFACADE),
		AbortProb:      0.03,
		DelayProb:      0.2,
		CommitFailProb: 0.03,
	})
	vars := make([]stm.Var, nVars)
	for i := range vars {
		vars[i] = tm.NewVar(initial)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// Workers 0..2 transfer within a shard (round-robin layout:
				// indices i and i+k share shard (i+1) mod k... same residue);
				// workers 3..5 transfer across shards.
				var from, to int
				if w < 3 {
					from = (w + i) % k
					to = from + k // same residue class mod k: same shard
				} else {
					from = (w + i) % nVars
					to = (from + 1) % nVars // neighboring id: different shard
				}
				err := stm.Atomically(tm, false, func(tx stm.Tx) error {
					a := tx.Read(vars[from]).(int)
					b := tx.Read(vars[to]).(int)
					tx.Write(vars[from], a-1)
					tx.Write(vars[to], b+1)
					return nil
				})
				if err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	total := 0
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		total = 0
		for _, v := range vars {
			total += tx.Read(v).(int)
		}
		return nil
	})
	if want := nVars * initial; total != want {
		t.Fatalf("conservation violated across shard mixes: total %d, want %d", total, want)
	}
	snap := tm.Stats().Snapshot()
	if snap.SingleShardCommits == 0 || snap.CrossShardCommits == 0 {
		t.Fatalf("soak exercised only one commit class: single=%d cross=%d",
			snap.SingleShardCommits, snap.CrossShardCommits)
	}
	t.Logf("commits: %d single-shard, %d cross-shard, %d CAS retries",
		snap.SingleShardCommits, snap.CrossShardCommits, snap.ShardClockCASRetries)
}
