//go:build !race

package chaos_test

// raceEnabled reports whether the race detector is active; the allocation
// budgets only hold without it (the race runtime instruments sync.Pool and
// adds bookkeeping allocations).
const raceEnabled = false
