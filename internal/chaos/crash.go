package chaos

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"repro/internal/wal"
	"repro/internal/xrand"
)

// This file is the durability arm of the chaos middleware: deterministic
// crash-point injection for the write-ahead log (internal/wal). A CrashPlan
// picks — from a seed, so a failing soak replays exactly — one of the WAL's
// four hook points, an operation count at which the "crash" fires, and an
// optional post-crash mutilation of the log directory modelling what an
// unclean storage stack leaves behind (a torn tail, a corrupted checksum, a
// duplicated segment). The process stays alive — the injected hook error
// latches the Writer, which is the WAL's own model of "the log died under
// me" — and the test then runs Recover over the mutilated directory and
// audits the rebuilt state.

// ErrCrash is the sentinel error a CrashPlan's hooks inject at the chosen
// crash point. The wal.Writer latches it like any hook failure.
var ErrCrash = errors.New("chaos: injected crash")

// CrashPoint selects which wal.Hooks fault point the crash fires at.
type CrashPoint int

const (
	// CrashBeforeAppend fires before a record's bytes reach the OS: the
	// record is lost entirely, as if the process died just before write().
	CrashBeforeAppend CrashPoint = iota
	// CrashAfterAppend fires after write() but before any fsync: the record
	// is in the page cache only and a torn or missing tail is plausible.
	CrashAfterAppend
	// CrashBeforeSync fires with appended bytes not yet durable — the
	// widest-loss point: everything since the previous fsync may vanish.
	CrashBeforeSync
	// CrashAfterSync fires just after durability was achieved: nothing may
	// be lost, the strictest recovery assertion.
	CrashAfterSync
	numCrashPoints
)

// String returns a short stable label.
func (p CrashPoint) String() string {
	switch p {
	case CrashBeforeAppend:
		return "before-append"
	case CrashAfterAppend:
		return "after-append"
	case CrashBeforeSync:
		return "before-sync"
	case CrashAfterSync:
		return "after-sync"
	}
	return "unknown"
}

// CorruptMode selects the post-crash mutilation Mutilate applies.
type CorruptMode int

const (
	// CorruptNone leaves the directory exactly as the crash left it.
	CorruptNone CorruptMode = iota
	// CorruptTearTail truncates the newest segment mid-record — the classic
	// torn write. Recovery must drop the tail, not fail.
	CorruptTearTail
	// CorruptFlipCRC flips one bit in the newest segment's final checksum;
	// recovery must treat the record as torn, same as a short write.
	CorruptFlipCRC
	// CorruptDuplicateSegment copies an existing segment to a fresh higher
	// sequence number — re-delivered records that the replay fold must absorb
	// idempotently.
	CorruptDuplicateSegment
	numCorruptModes
)

// String returns a short stable label.
func (m CorruptMode) String() string {
	switch m {
	case CorruptNone:
		return "none"
	case CorruptTearTail:
		return "tear-tail"
	case CorruptFlipCRC:
		return "flip-crc"
	case CorruptDuplicateSegment:
		return "duplicate-segment"
	}
	return "unknown"
}

// CrashPlan is one deterministic crash scenario. Zero value: crash at the
// first BeforeAppend, no corruption. Plans are single-use — a fired plan
// keeps failing its point, which matches the Writer's own failure latch.
type CrashPlan struct {
	// Point is the hook the crash fires at.
	Point CrashPoint
	// AfterOps fires the crash on the Nth traversal of Point (1-based;
	// 0 behaves as 1).
	AfterOps uint64
	// Corrupt is the mutilation Mutilate applies after the crash.
	Corrupt CorruptMode

	ops   atomic.Uint64
	fired atomic.Bool
}

// NewCrashPlan derives a crash scenario deterministically from seed: the
// same seed always yields the same (point, count, corruption) triple, so a
// soak failure replays from the seed it logged.
func NewCrashPlan(seed uint64) *CrashPlan {
	rng := xrand.New(xrand.Mix(seed | 1))
	return &CrashPlan{
		Point:    CrashPoint(rng.Intn(int(numCrashPoints))),
		AfterOps: 1 + uint64(rng.Intn(40)),
		Corrupt:  CorruptMode(rng.Intn(int(numCorruptModes))),
	}
}

// String describes the scenario for failure logs.
func (p *CrashPlan) String() string {
	return fmt.Sprintf("crash at %s op %d, corrupt %s", p.Point, p.AfterOps, p.Corrupt)
}

// Fired reports whether the crash has been injected.
func (p *CrashPlan) Fired() bool { return p.fired.Load() }

// Hooks returns the wal.Hooks wiring this plan into a Writer.
func (p *CrashPlan) Hooks() wal.Hooks {
	return wal.Hooks{
		BeforeAppend: func() error { return p.at(CrashBeforeAppend) },
		AfterAppend:  func() error { return p.at(CrashAfterAppend) },
		BeforeSync:   func() error { return p.at(CrashBeforeSync) },
		AfterSync:    func() error { return p.at(CrashAfterSync) },
	}
}

// at counts traversals of pt and injects ErrCrash from the configured count
// on. Once fired the point stays failed — a crashed process does not come
// back for one more append.
func (p *CrashPlan) at(pt CrashPoint) error {
	if pt != p.Point {
		return nil
	}
	n := p.AfterOps
	if n == 0 {
		n = 1
	}
	if p.ops.Add(1) >= n {
		p.fired.Store(true)
		return ErrCrash
	}
	return nil
}

// Mutilate applies the plan's corruption to the log directory. Call it after
// the crash fired and the Writer is closed, before Recover. Tail damage is
// only ever applied to the newest segment — damage to older (fully synced)
// segments models broken hardware, not a crash, and recovery correctly
// refuses it.
func (p *CrashPlan) Mutilate(dir string) error {
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		return err
	}
	sort.Strings(segs) // zero-padded names: lexicographic == sequence order
	newest := segs[len(segs)-1]
	switch p.Corrupt {
	case CorruptNone:
		return nil
	case CorruptTearTail:
		info, err := os.Stat(newest)
		if err != nil {
			return err
		}
		// Tear 1..16 bytes, never into the magic header.
		cut := int64(1 + p.AfterOps%16)
		if size := info.Size() - 8; cut > size {
			cut = size
		}
		if cut <= 0 {
			return nil
		}
		return os.Truncate(newest, info.Size()-cut)
	case CorruptFlipCRC:
		f, err := os.OpenFile(newest, os.O_RDWR, 0)
		if err != nil {
			return err
		}
		defer f.Close()
		info, err := f.Stat()
		if err != nil {
			return err
		}
		if info.Size() <= 8 {
			return nil // header only: nothing to corrupt
		}
		var b [1]byte
		if _, err := f.ReadAt(b[:], info.Size()-1); err != nil {
			return err
		}
		b[0] ^= 1 << (p.AfterOps % 8)
		_, err = f.WriteAt(b[:], info.Size()-1)
		return err
	case CorruptDuplicateSegment:
		// Re-deliver the oldest segment under a sequence past the newest.
		var maxSeq uint64
		if _, err := fmt.Sscanf(filepath.Base(newest), "wal-%d.seg", &maxSeq); err != nil {
			return err
		}
		dup := filepath.Join(dir, fmt.Sprintf("wal-%08d.seg", maxSeq+1))
		return copyFile(segs[0], dup)
	}
	return nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
