// Package chaos provides a fault-injection middleware for STM engines: a
// composable stm.TM wrapper (same shape as trace.TM, bench.WithYield and
// hytm.TM) that deterministically injects spurious aborts, barrier delays and
// commit stalls into any inner engine.
//
// Its purpose is adversarial testing of the retry and contention-management
// layer. Engines in this repository abort only when a real conflict (or lock
// timeout) occurs, which makes pathological schedules — spurious aborts, long
// commit sections, retry storms — hard to reach from workloads alone. The
// wrapper manufactures those schedules on demand while the inner engine keeps
// full responsibility for isolation, so any serializability violation found
// under chaos is a real engine bug, and any livelock is a real policy bug.
//
// All randomized decisions are drawn from xrand streams derived
// deterministically from Options.Seed and a per-attempt counter: attempt i
// draws from the stream Mix(seed, i) regardless of goroutine scheduling, so a
// given (seed, attempt-index) pair always injects the same events.
//
// Chaos respects stm.EscalationActive: while a starvation-escalated attempt
// holds its serialization token, no spurious aborts or forced commit failures
// are injected anywhere (delays and stalls still are). The injected faults
// model conflict-like events — validation false positives, HTM capacity
// aborts, a peer winning a lock race — and a serialized solo transaction has
// no peer to lose to; injecting one would fake an impossible failure and
// would void the bounded-attempts guarantee the starvation tests prove.
package chaos

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stm"
	"repro/internal/xrand"
)

// Options tunes the injected faults. The zero value injects nothing.
type Options struct {
	// Seed selects the deterministic decision streams (0 behaves like 1).
	Seed uint64

	// AbortProb is the per-barrier probability of a spurious abort: the
	// transaction panics with stm.ReasonChaos from inside Read/Write, taking
	// the same path as an engine's early abort.
	AbortProb float64
	// AbortEvery injects a spurious abort on every Nth barrier (global
	// counter; 0 disables). Deterministic counterpart of AbortProb.
	AbortEvery int

	// DelayProb is the per-barrier probability of a delay, widening the
	// window in which transactions overlap (like bench.WithYield, but
	// randomized). Delay is the sleep per injected delay; 0 yields the
	// processor instead.
	DelayProb float64
	Delay     time.Duration

	// CommitFailProb is the per-update-commit probability of a forced commit
	// failure: the inner transaction is aborted and Commit reports false, as
	// if validation had failed. Read-only transactions are never failed (all
	// engines commit them unconditionally, and tests rely on it).
	CommitFailProb float64
	// CommitFailEvery forces every Nth update commit to fail (global
	// counter; 0 disables). Deterministic counterpart of CommitFailProb.
	CommitFailEvery int

	// StallProb is the per-update-commit probability of a stall before the
	// inner commit runs, simulating a slow commit section (descheduled
	// committer holding locks). Stall is the sleep per injected stall; 0
	// yields the processor instead.
	StallProb float64
	Stall     time.Duration
}

// Injected counts the faults delivered so far, by kind.
type Injected struct {
	Aborts      atomic.Uint64 // spurious barrier aborts
	CommitFails atomic.Uint64 // forced commit failures
	Delays      atomic.Uint64 // barrier delays
	Stalls      atomic.Uint64 // commit stalls
}

// TM wraps an inner engine with fault injection.
type TM struct {
	inner stm.TM
	rec   stm.TxRecycler // inner's recycler; nil when unsupported
	opts  Options

	attempts atomic.Uint64 // per-attempt stream derivation
	barriers atomic.Uint64 // AbortEvery counter
	commits  atomic.Uint64 // CommitFailEvery counter
	inj      Injected
	pool     sync.Pool // of *chaosTx wrappers
}

// New wraps inner with fault injection per opts.
func New(inner stm.TM, opts Options) *TM {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	t := &TM{inner: inner, opts: opts}
	t.rec, _ = inner.(stm.TxRecycler)
	t.pool.New = func() any { return &chaosTx{rng: xrand.New(1)} }
	return t
}

// Inner returns the wrapped engine.
func (t *TM) Inner() stm.TM { return t.inner }

// Injected returns the live fault counters.
func (t *TM) Injected() *Injected { return &t.inj }

// Name implements stm.TM.
func (t *TM) Name() string { return t.inner.Name() + "+chaos" }

// NewVar implements stm.TM.
func (t *TM) NewVar(initial stm.Value) stm.Var { return t.inner.NewVar(initial) }

// Stats implements stm.TM.
func (t *TM) Stats() *stm.Stats { return t.inner.Stats() }

// SetProfiler implements stm.Profilable when the inner engine does.
func (t *TM) SetProfiler(p *stm.Profiler) {
	if prof, ok := t.inner.(stm.Profilable); ok {
		prof.SetProfiler(p)
	}
}

// EnableHistory implements stm.HistoryRecording when the inner engine does,
// so chaos-wrapped engines run under the dsg serializability oracle.
func (t *TM) EnableHistory() {
	if h, ok := t.inner.(stm.HistoryRecording); ok {
		h.EnableHistory()
	}
}

// History implements stm.HistoryRecording when the inner engine does.
func (t *TM) History(v stm.Var) []stm.VersionRecord {
	if h, ok := t.inner.(stm.HistoryRecording); ok {
		return h.History(v)
	}
	return nil
}

// Begin implements stm.TM. Each attempt gets its own deterministic decision
// stream derived from (seed, attempt index).
func (t *TM) Begin(readOnly bool) stm.Tx {
	ct := t.pool.Get().(*chaosTx)
	ct.inner, ct.tm = t.inner.Begin(readOnly), t
	ct.injected = stm.ReasonNone
	ct.rng.Reseed(xrand.Mix(t.opts.Seed + t.attempts.Add(1)*0x9E3779B97F4A7C15))
	return ct
}

// Recycle implements stm.TxRecycler: the wrapper returns to its own pool and
// the wrapped transaction is forwarded to the inner engine's recycler, so
// wrapping an engine in chaos never disables its descriptor pooling.
func (t *TM) Recycle(tx stm.Tx) {
	ct, ok := tx.(*chaosTx)
	if !ok {
		return
	}
	inner := ct.inner
	ct.inner = nil
	t.pool.Put(ct)
	if t.rec != nil {
		t.rec.Recycle(inner)
	}
}

// Commit implements stm.TM, injecting stalls and forced failures around the
// inner commit.
func (t *TM) Commit(tx stm.Tx) bool {
	ct := tx.(*chaosTx)
	o := &t.opts
	if ct.inner.ReadOnly() {
		return t.inner.Commit(ct.inner)
	}
	if o.StallProb > 0 && ct.rng.Bool(o.StallProb) {
		t.inj.Stalls.Add(1)
		pause(o.Stall)
	}
	fail := o.CommitFailEvery > 0 && t.commits.Add(1)%uint64(o.CommitFailEvery) == 0
	if !fail && o.CommitFailProb > 0 && ct.rng.Bool(o.CommitFailProb) {
		fail = true
	}
	if fail && stm.EscalationActive() {
		fail = false // serialized attempts have no peers to conflict with
	}
	if fail {
		t.inner.Abort(ct.inner)
		ct.injected = stm.ReasonChaos
		t.inj.CommitFails.Add(1)
		return false
	}
	return t.inner.Commit(ct.inner)
}

// Abort implements stm.TM.
func (t *TM) Abort(tx stm.Tx) {
	t.inner.Abort(tx.(*chaosTx).inner)
}

// chaosTx forwards barriers to the inner transaction, injecting delays and
// spurious aborts on the way.
type chaosTx struct {
	inner    stm.Tx
	tm       *TM
	rng      *xrand.Rand
	injected stm.AbortReason // ReasonChaos when chaos failed the commit
}

// barrier runs the per-barrier injections: a delay first (widening overlap),
// then possibly a spurious abort.
func (ct *chaosTx) barrier() {
	o := &ct.tm.opts
	if o.DelayProb > 0 && ct.rng.Bool(o.DelayProb) {
		ct.tm.inj.Delays.Add(1)
		pause(o.Delay)
	}
	abort := o.AbortEvery > 0 && ct.tm.barriers.Add(1)%uint64(o.AbortEvery) == 0
	if !abort && o.AbortProb > 0 && ct.rng.Bool(o.AbortProb) {
		abort = true
	}
	if abort && stm.EscalationActive() {
		abort = false // serialized attempts have no peers to conflict with
	}
	if abort {
		ct.tm.inj.Aborts.Add(1)
		stm.Retry(stm.ReasonChaos)
	}
}

func (ct *chaosTx) Read(v stm.Var) stm.Value {
	ct.barrier()
	return ct.inner.Read(v)
}

func (ct *chaosTx) Write(v stm.Var, val stm.Value) {
	ct.barrier()
	ct.inner.Write(v, val)
}

func (ct *chaosTx) ReadOnly() bool { return ct.inner.ReadOnly() }

// LastAbortReason implements stm.AbortReasoner: an injected commit failure
// reports ReasonChaos; otherwise the inner engine's reason is forwarded.
func (ct *chaosTx) LastAbortReason() stm.AbortReason {
	if ct.injected != stm.ReasonNone {
		return ct.injected
	}
	if ar, ok := ct.inner.(stm.AbortReasoner); ok {
		return ar.LastAbortReason()
	}
	return stm.ReasonNone
}

// pause sleeps for d, or yields the processor when d is zero.
func pause(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
		return
	}
	runtime.Gosched()
}
