package chaos_test

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dsg"
	"repro/internal/jvstm"
	"repro/internal/stm"
)

// TestGroupCommitChaosSoak drives the group-commit engines through the dsg
// serializability oracle with faults injected at both layers: the stm.TM
// chaos wrapper above (spurious aborts, delays, forced commit failures) and
// the combiner hooks below (stalled leaders, split batches). A sleeping
// leader is also the most effective batch generator — followers pile up
// behind it — so the soak exercises genuinely multi-member batches even on a
// single core. Replayable via TWM_CHAOS_SEED.
func TestGroupCommitChaosSoak(t *testing.T) {
	opts := dsg.RunOptions{Goroutines: 6, TxPerG: 120}
	if testing.Short() {
		opts = dsg.RunOptions{Goroutines: 4, TxPerG: 40}
	}
	engines := map[string]func(hooks *chaos.GroupInjector) stm.TM{
		"twm-gc": func(g *chaos.GroupInjector) stm.TM {
			return core.New(core.Options{GroupCommit: true, GroupHooks: g.Hooks()})
		},
		"jvstm-gc": func(g *chaos.GroupInjector) stm.TM {
			return jvstm.New(jvstm.Options{GroupCommit: true, GroupHooks: g.Hooks()})
		},
	}
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			seed := chaosSeed(t, 0xBA7C4)
			ginj := chaos.NewGroupInjector(chaos.GroupOptions{
				Seed:            seed,
				LeaderStallProb: 0.3,
				LeaderStall:     200 * time.Microsecond,
				BatchSplitProb:  0.5,
			})
			inner := mk(ginj)
			tm := chaos.New(inner, chaos.Options{
				Seed:           seed,
				AbortProb:      0.05,
				DelayProb:      0.15,
				CommitFailProb: 0.05,
				StallProb:      0.05,
			})
			dsg.CheckRandom(t, tm, opts)

			snap := inner.Stats().Snapshot()
			gi := ginj.Injected()
			t.Logf("batches %d (mean size %.2f), spills %d, handoffs %d; injected %d leader stalls, %d batch splits",
				snap.GroupBatches, snap.MeanBatchSize(), snap.BatchSpills, snap.CombinerHandoffs,
				gi.Stalls.Load(), gi.Splits.Load())
			if gi.Stalls.Load() == 0 {
				t.Errorf("soak injected no leader stalls; the schedule was not adversarial")
			}
			// The one-tick-per-batch invariant must hold under fault injection
			// too — stalls and splits may reshape batches, never the advance.
			if snap.ClockAdvances != snap.GroupBatches {
				t.Errorf("clock advances = %d, batches = %d", snap.ClockAdvances, snap.GroupBatches)
			}
		})
	}
}
