package chaos_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/engines"
	"repro/internal/stm"
	"repro/internal/wal"
	"repro/internal/xrand"
)

// TestCrashRecoverSoak is the durability soak: every WAL-capable engine runs
// concurrent transfers against a log armed with a seeded crash plan (one of
// the four WAL fault points plus an optional post-crash mutilation of the
// directory), and after the "crash" the test recovers the directory and
// audits money conservation. Because the engines append a commit's write set
// before its versions become visible, the surviving records always form a
// dependency-closed prefix of the commit order — so the recovered state must
// balance exactly, whatever the crash point. Replayable via TWM_CHAOS_SEED.
func TestCrashRecoverSoak(t *testing.T) {
	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	base := chaosSeed(t, 0xD1E5D1E5)
	for round := 0; round < rounds; round++ {
		seed := base + uint64(round)*0x9E3779B97F4A7C15
		for _, name := range engines.DurableSet() {
			t.Run(fmt.Sprintf("%s/round%d", name, round), func(t *testing.T) {
				runCrashSoak(t, name, seed)
			})
		}
	}
}

func runCrashSoak(t *testing.T, engine string, seed uint64) {
	const (
		nVars   = 12
		initial = int64(1000)
		workers = 4
		opsPerW = 400
	)
	dir := t.TempDir()
	plan := chaos.NewCrashPlan(seed)
	t.Logf("engine %s, seed %#x: %s", engine, seed, plan)

	w, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncPerCommit, Hooks: plan.Hooks()})
	if err != nil {
		t.Fatal(err)
	}
	tm := engines.MustNewDurable(engine, w)

	vars := make([]*stm.TVar[int64], nVars)
	ids := make([]uint64, nVars)
	for i := range vars {
		vars[i] = stm.NewTVar(tm, initial)
		ids[i] = vars[i].Raw().(interface{ VarID() uint64 }).VarID()
	}

	// Once the crash fires, the latched log fails every commit forever; the
	// workers' retry loops must be cancelled, not waited out.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watch := make(chan struct{})
	go func() {
		defer close(watch)
		for !plan.Fired() {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
		cancel()
	}()

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(xrand.Mix(seed ^ uint64(g+1)))
			for i := 0; i < opsPerW && ctx.Err() == nil; i++ {
				from, to := rng.Intn(nVars), rng.Intn(nVars)
				if from == to {
					continue
				}
				amt := int64(1 + rng.Intn(9))
				// Errors are expected here: cancellation once the crash
				// fires. The audit below is the actual assertion.
				_ = stm.AtomicallyCtx(ctx, tm, false, func(tx stm.Tx) error {
					b := vars[from].Get(tx)
					if b < amt {
						return nil
					}
					vars[from].Set(tx, b-amt) //twm:allow abortshape insufficient-funds guard is the workload's inherent check-then-act
					vars[to].Set(tx, vars[to].Get(tx)+amt)
					return nil
				})
			}
		}(g)
	}
	wg.Wait()
	cancel()
	<-watch
	w.Close() //nolint:errcheck // reports the latched crash; that is the point

	if err := plan.Mutilate(dir); err != nil {
		t.Fatalf("Mutilate: %v", err)
	}
	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatalf("Recover after %s: %v", plan, err)
	}
	var total int64
	for i := range ids {
		v := rec.Value(ids[i], initial)
		n, ok := v.(int64)
		if !ok {
			t.Fatalf("var %d recovered as %T after %s", ids[i], v, plan)
		}
		total += n
	}
	if total != nVars*initial {
		t.Fatalf("money not conserved after %s: recovered %d, want %d (%d records, torn=%v)",
			plan, total, nVars*initial, rec.Records, rec.Torn)
	}
	t.Logf("fired=%v records=%d torn=%v serial=%d", plan.Fired(), rec.Records, rec.Torn, rec.Serial)
}
