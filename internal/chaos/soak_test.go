package chaos_test

import (
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/chaos"
	"repro/internal/dsg"
	"repro/internal/engines"
	"repro/internal/stm"
)

// chaosSeed returns the seed a soak runs under: def normally, or the value of
// TWM_CHAOS_SEED when set (for replaying a failure). The seed is always
// logged — t.Logf output surfaces on failure, so a failing soak names the
// exact seed that reproduces it.
func chaosSeed(t *testing.T, def uint64) uint64 {
	t.Helper()
	seed := def
	if env := os.Getenv("TWM_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseUint(env, 0, 64)
		if err != nil {
			t.Fatalf("bad TWM_CHAOS_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("chaos seed %#x (replay with TWM_CHAOS_SEED=%#x)", seed, seed)
	return seed
}

// TestChaosSoakSerializable drives every registered engine through the
// randomized dsg serializability oracle with fault injection layered on top:
// spurious mid-transaction aborts, barrier delays (widening overlap), forced
// commit failures and commit stalls. The inner engine remains fully
// responsible for isolation, so any cycle the oracle finds under chaos is a
// real engine bug reachable under a pathological-but-legal schedule.
func TestChaosSoakSerializable(t *testing.T) {
	opts := dsg.RunOptions{Goroutines: 6, TxPerG: 120}
	if testing.Short() {
		opts = dsg.RunOptions{Goroutines: 4, TxPerG: 40}
	}
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := chaos.New(engines.MustNew(name), chaos.Options{
				Seed:           chaosSeed(t, 0xC0FFEE),
				AbortProb:      0.05,
				DelayProb:      0.15, // Delay 0: Gosched, forcing overlap on any core count
				CommitFailProb: 0.05,
				StallProb:      0.05,
			})
			dsg.CheckRandom(t, tm, opts)
			inj := tm.Injected()
			t.Logf("injected: %d aborts, %d commit fails, %d delays, %d stalls",
				inj.Aborts.Load(), inj.CommitFails.Load(), inj.Delays.Load(), inj.Stalls.Load())
			if inj.Aborts.Load() == 0 && inj.CommitFails.Load() == 0 {
				t.Errorf("soak injected no faults; the schedule was not adversarial")
			}
		})
	}
}

// TestChaosStarvationBoundedProgress asserts the StarvationPolicy progress
// guarantee end to end on a real engine under fault injection:
// CommitFailEvery=2 fails every second update commit, so real conflicts plus
// injected failures regularly push calls past the escalation threshold K.
// An escalated attempt holds the serialization token exclusively — it cannot
// lose a real conflict (it runs alone in the policy's domain) and chaos
// suppresses conflict-like injection under stm.EscalationActive — so every
// call must commit within K+1 attempts, the policy's hard bound.
func TestChaosStarvationBoundedProgress(t *testing.T) {
	const (
		G     = 4
		calls = 40
		K     = 2
		bound = K + 1
	)
	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	for round := 0; round < rounds; round++ {
		eng := engines.MustNew("twm")
		tm := chaos.New(eng, chaos.Options{
			Seed:            chaosSeed(t, uint64(round+1)),
			CommitFailEvery: 2,
			DelayProb:       0.5, // Gosched: interleave attempts on any core count
		})
		p := stm.NewStarvationPolicy(K, nil)
		vars := make([]stm.Var, 4)
		for i := range vars {
			vars[i] = tm.NewVar(0)
		}
		var (
			maxAttempts atomic.Int64
			starved     atomic.Int64 // calls that aborted at least K times
			wg          sync.WaitGroup
		)
		for g := 0; g < G; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < calls; i++ {
					attempts := 0
					err := stm.AtomicallyCM(nil, tm, false, p, func(tx stm.Tx) error {
						attempts++
						for _, v := range vars {
							tx.Write(v, tx.Read(v).(int)+1)
						}
						return nil
					})
					if err != nil {
						t.Errorf("call failed: %v", err)
						return
					}
					if attempts > K {
						starved.Add(1)
					}
					for {
						cur := maxAttempts.Load()
						if int64(attempts) <= cur || maxAttempts.CompareAndSwap(cur, int64(attempts)) {
							break
						}
					}
				}
			}(g)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		// Every call committed: the shared counters saw every increment.
		var total int
		_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
			total = 0
			for _, v := range vars {
				total += tx.Read(v).(int)
			}
			return nil
		})
		if total != G*calls*len(vars) {
			t.Fatalf("round %d: counter total %d, want %d", round, total, G*calls*len(vars))
		}
		if got := maxAttempts.Load(); got > bound {
			t.Fatalf("round %d: a call needed %d attempts (bound %d); escalation failed to bound progress", round, got, bound)
		}
		t.Logf("round %d: max attempts %d (bound %d), %d/%d calls starved past K, %d escalations, %d injected commit fails",
			round, maxAttempts.Load(), bound, starved.Load(), G*calls, p.Escalations(), tm.Injected().CommitFails.Load())
		if starved.Load() > 0 && p.Escalations() == 0 {
			t.Fatalf("round %d: calls exceeded K attempts without escalating", round)
		}
	}
}
