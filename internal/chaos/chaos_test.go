package chaos_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/engines"
	"repro/internal/stm"
)

// reasonRecorder is a Policy (and its own manager) that records the abort
// reasons the retry loop reports, so tests can assert injected faults are
// classified as ReasonChaos.
type reasonRecorder struct {
	mu      sync.Mutex
	reasons []stm.AbortReason
}

func (r *reasonRecorder) NewManager() stm.ContentionManager { return r }
func (r *reasonRecorder) BeforeAttempt(int)                 {}
func (r *reasonRecorder) AfterAttempt(int)                  {}
func (r *reasonRecorder) Wait(_ context.Context, _ int, reason stm.AbortReason) {
	r.mu.Lock()
	r.reasons = append(r.reasons, reason)
	r.mu.Unlock()
}

func (r *reasonRecorder) observed() []stm.AbortReason {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]stm.AbortReason(nil), r.reasons...)
}

func TestChaosInjectsSpuriousAborts(t *testing.T) {
	tm := chaos.New(engines.MustNew("twm"), chaos.Options{Seed: 42, AbortEvery: 3})
	v := tm.NewVar(0)
	const calls = 20
	for i := 0; i < calls; i++ {
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			tx.Write(v, tx.Read(v).(int)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Every call still commits (aborts only force retries)...
	var final int
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		final = tx.Read(v).(int)
		return nil
	})
	if final != calls {
		t.Fatalf("final value %d, want %d: injected aborts must not lose updates", final, calls)
	}
	// ...and the injector actually fired (2 barriers per update attempt, every
	// 3rd barrier aborts).
	if got := tm.Injected().Aborts.Load(); got == 0 {
		t.Fatalf("no spurious aborts injected")
	}
}

func TestChaosCommitFailEvery(t *testing.T) {
	tm := chaos.New(engines.MustNew("twm"), chaos.Options{Seed: 7, CommitFailEvery: 2})
	v := tm.NewVar(0)
	const calls = 10
	totalAttempts := 0
	for i := 0; i < calls; i++ {
		attempts := 0
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			attempts++
			tx.Write(v, tx.Read(v).(int)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// Deterministic relenting: with Every=2 and a single goroutine, two
		// consecutive attempts cannot both land on an even counter value.
		if attempts > 2 {
			t.Fatalf("call needed %d attempts; CommitFailEvery=2 must relent after one failure", attempts)
		}
		totalAttempts += attempts
	}
	fails := tm.Injected().CommitFails.Load()
	if fails == 0 {
		t.Fatalf("no commit failures injected")
	}
	if int(fails) != totalAttempts-calls {
		t.Fatalf("injected %d commit fails but saw %d retries", fails, totalAttempts-calls)
	}
	var final int
	_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
		final = tx.Read(v).(int)
		return nil
	})
	if final != calls {
		t.Fatalf("final value %d, want %d: forced commit failures must abort cleanly", final, calls)
	}
}

func TestChaosCommitFailureReportsReasonChaos(t *testing.T) {
	// The retry loop must observe injected commit failures as ReasonChaos, not
	// as the inner engine's (stale or absent) reason.
	tm := chaos.New(engines.MustNew("twm"), chaos.Options{Seed: 7, CommitFailEvery: 2})
	v := tm.NewVar(0)
	rec := &reasonRecorder{}
	for i := 0; i < 6; i++ {
		if err := stm.AtomicallyCM(nil, tm, false, rec, func(tx stm.Tx) error {
			tx.Write(v, tx.Read(v).(int)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	reasons := rec.observed()
	if len(reasons) == 0 {
		t.Fatalf("no aborts observed")
	}
	for _, r := range reasons {
		if r != stm.ReasonChaos {
			t.Fatalf("observed reason %v, want chaos", r)
		}
	}
}

func TestChaosDeterministicForSeed(t *testing.T) {
	// Two wrappers with the same seed driven through an identical
	// single-goroutine schedule must inject the identical fault sequence.
	run := func(seed uint64) (aborts, fails uint64, final int) {
		tm := chaos.New(engines.MustNew("tl2"), chaos.Options{
			Seed:           seed,
			AbortProb:      0.2,
			CommitFailProb: 0.2,
		})
		v := tm.NewVar(0)
		for i := 0; i < 50; i++ {
			_ = stm.Atomically(tm, false, func(tx stm.Tx) error {
				tx.Write(v, tx.Read(v).(int)+1)
				return nil
			})
		}
		_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
			final = tx.Read(v).(int)
			return nil
		})
		return tm.Injected().Aborts.Load(), tm.Injected().CommitFails.Load(), final
	}
	a1, f1, v1 := run(99)
	a2, f2, v2 := run(99)
	if a1 != a2 || f1 != f2 || v1 != v2 {
		t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", a1, f1, v1, a2, f2, v2)
	}
	if a1 == 0 && f1 == 0 {
		t.Fatalf("probabilistic injection never fired over 50 calls")
	}
	a3, f3, _ := run(100)
	if a1 == a3 && f1 == f3 {
		t.Logf("note: seeds 99 and 100 injected identical counts (possible, just unusual)")
	}
}

func TestChaosDelaysAndStalls(t *testing.T) {
	tm := chaos.New(engines.MustNew("norec"), chaos.Options{
		Seed:      3,
		DelayProb: 1, // Delay 0: yield instead of sleeping
		StallProb: 1, // Stall 0: yield instead of sleeping
	})
	v := tm.NewVar(0)
	for i := 0; i < 5; i++ {
		if err := stm.Atomically(tm, false, func(tx stm.Tx) error {
			tx.Write(v, tx.Read(v).(int)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if tm.Injected().Delays.Load() == 0 {
		t.Fatalf("DelayProb=1 injected no delays")
	}
	if tm.Injected().Stalls.Load() == 0 {
		t.Fatalf("StallProb=1 injected no stalls")
	}
}

func TestChaosReadOnlyCommitsNeverFail(t *testing.T) {
	tm := chaos.New(engines.MustNew("twm"), chaos.Options{Seed: 5, CommitFailEvery: 1})
	v := tm.NewVar(7)
	for i := 0; i < 10; i++ {
		attempts := 0
		if err := stm.Atomically(tm, true, func(tx stm.Tx) error {
			attempts++
			_ = tx.Read(v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if attempts != 1 {
			t.Fatalf("read-only tx retried %d times under CommitFailEvery=1", attempts)
		}
	}
	if tm.Injected().CommitFails.Load() != 0 {
		t.Fatalf("read-only commits were failed")
	}
}

func TestChaosForwardsEngineSurface(t *testing.T) {
	inner := engines.MustNew("twm")
	tm := chaos.New(inner, chaos.Options{Seed: 1})
	if tm.Inner() != inner {
		t.Fatalf("Inner() lost the wrapped engine")
	}
	if tm.Name() != inner.Name()+"+chaos" {
		t.Fatalf("Name()=%q", tm.Name())
	}
	if tm.Stats() != inner.Stats() {
		t.Fatalf("Stats() must forward to the inner engine")
	}
	if _, ok := stm.TM(tm).(stm.HistoryRecording); !ok {
		t.Fatalf("chaos wrapper must forward history recording")
	}
	if _, ok := stm.TM(tm).(stm.TxRecycler); !ok {
		t.Fatalf("chaos wrapper must forward descriptor recycling")
	}
}

func TestChaosAllocsReadOnly(t *testing.T) {
	// The wrapper must preserve the inner engine's pooled, allocation-free
	// read path: chaosTx wrappers are pooled and Recycle forwards, so a
	// quiescent chaos wrapper adds zero allocations per transaction.
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}
	tm := chaos.New(engines.MustNew("twm"), chaos.Options{Seed: 1})
	vars := make([]stm.Var, 8)
	for i := range vars {
		vars[i] = tm.NewVar(i)
	}
	roTx := func() {
		_ = stm.Atomically(tm, true, func(tx stm.Tx) error {
			for _, v := range vars {
				_ = tx.Read(v)
			}
			return nil
		})
	}
	roTx() // warm the wrapper and descriptor pools
	if got := testing.AllocsPerRun(200, roTx); got > 0 {
		t.Errorf("chaos-wrapped read-only tx: %.1f allocs/op, budget 0", got)
	}
}
