package chaos

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mvutil"
	"repro/internal/xrand"
)

// GroupOptions tunes fault injection inside a group-commit combiner
// (mvutil.BatchHooks): the faults fire from the leader itself, underneath the
// engine's commit protocol, where the stm.TM-level wrapper above cannot reach.
// The zero value injects nothing.
type GroupOptions struct {
	// Seed selects the deterministic decision stream (0 behaves like 1).
	Seed uint64

	// LeaderStallProb is the probability that a leader drain session stalls
	// before draining — a descheduled leader, the failure mode followers'
	// spin-then-sleep wait must tolerate. LeaderStall is the sleep per
	// injected stall; 0 yields the processor instead.
	LeaderStallProb float64
	LeaderStall     time.Duration

	// BatchSplitProb is the per-batch probability that a prospective batch of
	// n members is cut to a random size in [1, n), forcing the chunking and
	// re-round paths that a well-behaved workload rarely exercises.
	BatchSplitProb float64
}

// GroupInjected counts the combiner faults delivered so far.
type GroupInjected struct {
	Stalls atomic.Uint64 // leader stalls
	Splits atomic.Uint64 // batch splits
}

// GroupInjector produces mvutil.BatchHooks with deterministic fault
// injection. One injector serves one engine instance; the combiner invokes
// hooks only under its leader lock, but the injector guards its stream anyway
// so sharing across engines (or future concurrent hook sites) stays sound.
type GroupInjector struct {
	opts GroupOptions

	mu  sync.Mutex
	rng *xrand.Rand
	inj GroupInjected
}

// NewGroupInjector returns an injector drawing from the stream seeded by
// opts.Seed.
func NewGroupInjector(opts GroupOptions) *GroupInjector {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &GroupInjector{opts: opts, rng: xrand.New(opts.Seed)}
}

// Injected returns the live fault counters.
func (g *GroupInjector) Injected() *GroupInjected { return &g.inj }

// Hooks returns the BatchHooks to pass as the engine's GroupHooks option.
func (g *GroupInjector) Hooks() *mvutil.BatchHooks {
	return &mvutil.BatchHooks{
		LeaderStall: g.leaderStall,
		SplitBatch:  g.splitBatch,
	}
}

func (g *GroupInjector) leaderStall() {
	g.mu.Lock()
	hit := g.opts.LeaderStallProb > 0 && g.rng.Float64() < g.opts.LeaderStallProb
	g.mu.Unlock()
	if !hit {
		return
	}
	g.inj.Stalls.Add(1)
	if g.opts.LeaderStall > 0 {
		time.Sleep(g.opts.LeaderStall)
	} else {
		runtime.Gosched()
	}
}

func (g *GroupInjector) splitBatch(n int) int {
	if n <= 1 {
		return n
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.opts.BatchSplitProb <= 0 || g.rng.Float64() >= g.opts.BatchSplitProb {
		return n
	}
	g.inj.Splits.Add(1)
	return 1 + int(g.rng.Uint64()%uint64(n-1))
}
