package hytm_test

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/hytm"
	"repro/internal/stm"
)

func newHybrid(opts hytm.Options) *hytm.TM {
	return hytm.New(core.New(core.Options{}), opts)
}

func TestHardwarePathCommits(t *testing.T) {
	tm := newHybrid(hytm.Options{})
	x := tm.NewVar(0)
	for i := 0; i < 50; i++ {
		if err := tm.Atomically(false, func(tx stm.Tx) error {
			tx.Write(x, tx.Read(x).(int)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := tm.HybridStats()
	if s.HWCommits.Load() != 50 || s.Fallbacks.Load() != 0 {
		t.Fatalf("uncontended run should stay on hardware: %d hw, %d fallbacks",
			s.HWCommits.Load(), s.Fallbacks.Load())
	}
	_ = tm.Atomically(true, func(tx stm.Tx) error {
		if got := tx.Read(x); got != 50 {
			t.Errorf("x = %v", got)
		}
		return nil
	})
	if s.ROFastCommits.Load() == 0 {
		t.Fatalf("read-only hardware commit not counted")
	}
}

func TestCapacityFallsBack(t *testing.T) {
	tm := newHybrid(hytm.Options{MaxReads: 4, MaxWrites: 2})
	vars := make([]stm.Var, 16)
	for i := range vars {
		vars[i] = tm.NewVar(i)
	}
	if err := tm.Atomically(false, func(tx stm.Tx) error {
		sum := 0
		for _, v := range vars {
			sum += tx.Read(v).(int)
		}
		for _, v := range vars[:8] {
			tx.Write(v, sum)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := tm.HybridStats()
	if s.HWCapacity.Load() == 0 {
		t.Fatalf("capacity aborts not recorded")
	}
	if s.Fallbacks.Load() != 1 {
		t.Fatalf("fallbacks = %d, want 1", s.Fallbacks.Load())
	}
	// The oversized transaction still committed, via software.
	_ = tm.Atomically(true, func(tx stm.Tx) error {
		if got := tx.Read(vars[0]); got != 120 {
			t.Errorf("vars[0] = %v, want 120", got)
		}
		return nil
	})
}

func TestSpuriousAbortsForceFallback(t *testing.T) {
	tm := newHybrid(hytm.Options{AbortProb: 1.0, HWAttempts: 2})
	x := tm.NewVar(0)
	if err := tm.Atomically(false, func(tx stm.Tx) error {
		tx.Write(x, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := tm.HybridStats()
	if s.HWSpurious.Load() != 2 || s.Fallbacks.Load() != 1 || s.HWCommits.Load() != 0 {
		t.Fatalf("stats: spurious=%d fallbacks=%d hw=%d",
			s.HWSpurious.Load(), s.Fallbacks.Load(), s.HWCommits.Load())
	}
}

func TestConcurrentCounterExact(t *testing.T) {
	tm := newHybrid(hytm.Options{})
	x := tm.NewVar(0)
	const goroutines, perG = 6, 120
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := tm.Atomically(false, func(tx stm.Tx) error {
					tx.Write(x, tx.Read(x).(int)+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	_ = tm.Atomically(true, func(tx stm.Tx) error {
		if got := tx.Read(x); got != goroutines*perG {
			t.Errorf("counter = %v, want %d", got, goroutines*perG)
		}
		return nil
	})
	s := tm.HybridStats()
	if s.HWCommits.Load()+s.Fallbacks.Load() == 0 {
		t.Fatalf("no work recorded")
	}
	t.Logf("hw=%d conflicts=%d fallbacks=%d",
		s.HWCommits.Load(), s.HWConflicts.Load(), s.Fallbacks.Load())
}

func TestUserErrorNoFallbackBurn(t *testing.T) {
	tm := newHybrid(hytm.Options{})
	x := tm.NewVar(7)
	boom := errors.New("boom")
	if err := tm.Atomically(false, func(tx stm.Tx) error {
		tx.Write(x, 8)
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := tm.HybridStats().Fallbacks.Load(); got != 0 {
		t.Fatalf("user error must not burn fallback attempts: %d", got)
	}
	_ = tm.Atomically(true, func(tx stm.Tx) error {
		if got := tx.Read(x); got != 7 {
			t.Errorf("aborted write leaked: %v", got)
		}
		return nil
	})
}

func TestInteroperatesWithDirectInnerTransactions(t *testing.T) {
	inner := core.New(core.Options{})
	tm := hytm.New(inner, hytm.Options{})
	x := tm.NewVar(0)
	// Mixed use: hybrid transactions and plain software transactions on the
	// same variable.
	for i := 0; i < 20; i++ {
		if err := tm.Atomically(false, func(tx stm.Tx) error {
			tx.Write(x, tx.Read(x).(int)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := stm.Atomically(inner, false, func(tx stm.Tx) error {
			tx.Write(x, tx.Read(x).(int)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	_ = stm.Atomically(inner, true, func(tx stm.Tx) error {
		if got := tx.Read(x); got != 40 {
			t.Errorf("x = %v, want 40", got)
		}
		return nil
	})
}

func TestEveryEngineAsFallback(t *testing.T) {
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			tm := hytm.New(engines.MustNew(name), hytm.Options{AbortProb: 0.5, HWAttempts: 2})
			x := tm.NewVar(0)
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 60; i++ {
						if err := tm.Atomically(false, func(tx stm.Tx) error {
							tx.Write(x, tx.Read(x).(int)+1)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			_ = tm.Atomically(true, func(tx stm.Tx) error {
				if got := tx.Read(x); got != 240 {
					t.Errorf("counter = %v, want 240", got)
				}
				return nil
			})
		})
	}
}
