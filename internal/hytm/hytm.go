// Package hytm implements the future-work direction of the paper's §6: a
// hybrid TM in which transactions first attempt a best-effort "hardware"
// path and fall back to a software TM — such as TWM — when the hardware
// gives up. The paper asks how STMs with reduced spurious aborts behave as
// the fallback path of hardware TMs; this package provides the simulated
// substrate to study exactly that question (see BenchmarkHybridFallback).
//
// The hardware is simulated, not real (the container has no TSX/TME), but
// the model captures the properties the paper's discussion hinges on:
//
//   - best-effort semantics: a hardware attempt can always fail — capacity
//     limits on read/write set sizes, a tunable random abort probability
//     (interrupts, cache evictions), and eager conflict sensitivity;
//   - eager conflicts: a hardware transaction aborts if any software or
//     hardware update transaction committed anywhere during its window
//     (modeled with a global commit subscription, the standard
//     hybrid-TM fallback-lock/counter construction);
//   - safety from the software engine: every attempt — hardware profile or
//     fallback — executes on the inner stm.TM, so isolation never depends
//     on the simulation.
//
// After Options.HWAttempts failed hardware attempts a transaction falls
// back to an unconstrained software transaction on the inner engine.
package hytm

import (
	"sync"
	"sync/atomic"

	"repro/internal/stm"
	"repro/internal/xrand"
)

// Options tunes the simulated hardware.
type Options struct {
	// MaxReads and MaxWrites bound the hardware read/write capacity
	// (distinct variables); 0 selects defaults (64/16 — small, like a few
	// cache sets).
	MaxReads, MaxWrites int
	// HWAttempts is the number of hardware tries before falling back
	// (default 3, a common retry policy).
	HWAttempts int
	// AbortProb is the per-attempt probability of a spurious hardware abort
	// (interrupt/eviction model).
	AbortProb float64
}

func (o *Options) defaults() {
	if o.MaxReads == 0 {
		o.MaxReads = 64
	}
	if o.MaxWrites == 0 {
		o.MaxWrites = 16
	}
	if o.HWAttempts == 0 {
		o.HWAttempts = 3
	}
}

// Stats counts path outcomes.
type Stats struct {
	HWCommits     atomic.Uint64
	HWConflicts   atomic.Uint64 // eager conflict aborts (subscription fired)
	HWCapacity    atomic.Uint64 // capacity aborts
	HWSpurious    atomic.Uint64 // random aborts
	Fallbacks     atomic.Uint64 // transactions that took the software path
	ROFastCommits atomic.Uint64 // read-only hardware commits
}

// TM is a hybrid transactional memory over an inner software engine.
type TM struct {
	inner stm.TM
	rec   stm.TxRecycler // inner's recycler; nil when unsupported
	opts  Options
	// commits is the global commit subscription: every update commit (hw or
	// sw) bumps it; a hardware attempt that observes movement aborts.
	commits atomic.Uint64
	stats   Stats
	// hwPool recycles hwTx wrappers (and their read/write tracking maps)
	// across hardware attempts.
	hwPool sync.Pool
}

// New wraps inner with the hybrid scheduler.
func New(inner stm.TM, opts Options) *TM {
	opts.defaults()
	tm := &TM{inner: inner, opts: opts}
	tm.rec, _ = inner.(stm.TxRecycler)
	tm.hwPool.New = func() any {
		return &hwTx{
			tm:     tm,
			reads:  make(map[stm.Var]struct{}, 8),
			writes: make(map[stm.Var]struct{}, 4),
		}
	}
	return tm
}

// recycleInner hands a finished inner transaction back to the inner engine's
// pool, mirroring what stm.Atomically does for the fallback path.
func (tm *TM) recycleInner(tx stm.Tx) {
	if tm.rec != nil {
		tm.rec.Recycle(tx)
	}
}

// releaseHW returns a hardware wrapper to the pool with its tracking maps
// cleared (the maps themselves are kept — they stay small by construction,
// bounded by MaxReads/MaxWrites).
func (tm *TM) releaseHW(t *hwTx) {
	clear(t.reads)
	clear(t.writes)
	t.inner = nil
	tm.hwPool.Put(t)
}

// Inner returns the fallback engine.
func (tm *TM) Inner() stm.TM { return tm.inner }

// Name identifies the hybrid configuration by its fallback engine.
func (tm *TM) Name() string { return "hytm(" + tm.inner.Name() + ")" }

// EnableHistory turns on version recording on the inner engine. Every
// attempt — hardware profile or fallback — commits through the inner
// engine, so its history covers all hybrid commits in serialization order;
// this makes the hybrid checkable by the dsg oracle. Panics if the inner
// engine does not implement stm.HistoryRecording.
func (tm *TM) EnableHistory() {
	tm.inner.(stm.HistoryRecording).EnableHistory()
}

// History returns the committed versions of v recorded by the inner engine.
func (tm *TM) History(v stm.Var) []stm.VersionRecord {
	return tm.inner.(stm.HistoryRecording).History(v)
}

// HybridStats returns the live path counters.
func (tm *TM) HybridStats() *Stats { return &tm.stats }

// NewVar allocates on the inner engine; hybrid transactions and pure inner
// transactions interoperate on the same variables.
func (tm *TM) NewVar(initial stm.Value) stm.Var { return tm.inner.NewVar(initial) }

// hwAbort is the sentinel panic for simulated hardware aborts.
type hwAbort struct{ cause *atomic.Uint64 }

// hwTx wraps an inner transaction with the hardware constraints.
type hwTx struct {
	inner    stm.Tx
	tm       *TM
	reads    map[stm.Var]struct{}
	writes   map[stm.Var]struct{}
	readOnly bool
}

func (t *hwTx) ReadOnly() bool { return t.readOnly }

func (t *hwTx) Read(v stm.Var) stm.Value {
	if _, ok := t.reads[v]; !ok {
		t.reads[v] = struct{}{}
		if len(t.reads) > t.tm.opts.MaxReads {
			panic(hwAbort{cause: &t.tm.stats.HWCapacity})
		}
	}
	return t.inner.Read(v)
}

func (t *hwTx) Write(v stm.Var, val stm.Value) {
	if _, ok := t.writes[v]; !ok {
		t.writes[v] = struct{}{}
		if len(t.writes) > t.tm.opts.MaxWrites {
			panic(hwAbort{cause: &t.tm.stats.HWCapacity})
		}
	}
	t.inner.Write(v, val)
}

// Atomically runs fn as a hybrid transaction: up to HWAttempts hardware
// tries, then the software fallback. fn follows the stm.Atomically contract.
func (tm *TM) Atomically(readOnly bool, fn func(stm.Tx) error) error {
	r := rngPool.Get().(*xrand.Rand)
	defer rngPool.Put(r)
	var bo stm.Backoff
	for attempt := 0; attempt < tm.opts.HWAttempts; attempt++ {
		err, committed := tm.tryHardware(readOnly, fn, r)
		if committed {
			return err
		}
		bo.Wait()
	}
	tm.stats.Fallbacks.Add(1)
	err := stm.Atomically(tm.inner, readOnly, fn)
	if err == nil && !readOnly {
		tm.commits.Add(1)
	}
	return err
}

// tryHardware runs one simulated hardware attempt. committed reports whether
// the transaction finished (successfully or with a user error); false means
// a hardware abort occurred and the caller decides what to try next.
func (tm *TM) tryHardware(readOnly bool, fn func(stm.Tx) error, r *xrand.Rand) (err error, committed bool) {
	sub := tm.commits.Load() // subscribe
	inner := tm.inner.Begin(readOnly)
	tx := tm.hwPool.Get().(*hwTx)
	tx.inner, tx.readOnly = inner, readOnly
	defer tm.releaseHW(tx)
	defer func() {
		if p := recover(); p != nil {
			tm.inner.Abort(inner)
			tm.recycleInner(inner)
			if ha, ok := p.(hwAbort); ok {
				ha.cause.Add(1)
				err, committed = nil, false
				return
			}
			// Inner-engine retry signals and foreign panics count as
			// hardware conflicts: real HTM aborts eagerly on any conflict.
			tm.stats.HWConflicts.Add(1)
			err, committed = nil, false
		}
	}()

	if tm.opts.AbortProb > 0 && r.Bool(tm.opts.AbortProb) {
		panic(hwAbort{cause: &tm.stats.HWSpurious})
	}
	if userErr := fn(tx); userErr != nil {
		tm.inner.Abort(inner)
		tm.recycleInner(inner)
		return userErr, true
	}
	// Eager conflict check: any update commit during the window kills the
	// hardware attempt (conservative, like a fallback-lock subscription).
	if !readOnly && tm.commits.Load() != sub {
		panic(hwAbort{cause: &tm.stats.HWConflicts})
	}
	committedInner := tm.inner.Commit(inner)
	tm.recycleInner(inner)
	if !committedInner {
		tm.stats.HWConflicts.Add(1)
		return nil, false
	}
	if readOnly {
		tm.stats.ROFastCommits.Add(1)
	} else {
		tm.commits.Add(1)
		tm.stats.HWCommits.Add(1)
	}
	return nil, true
}

// rngPool provides per-attempt randomness without a global lock; each pooled
// generator gets a distinct seed.
var (
	rngSeed atomic.Uint64
	rngPool = sync.Pool{New: func() any {
		return xrand.New(rngSeed.Add(1) * 0x9E3779B97F4A7C15)
	}}
)
