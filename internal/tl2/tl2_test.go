package tl2_test

import (
	"testing"

	"repro/internal/dsg"
	"repro/internal/stm"
	"repro/internal/stm/stmtest"
	"repro/internal/tl2"
)

func factory() stm.TM { return tl2.New(tl2.Options{}) }

func TestConformance(t *testing.T) {
	stmtest.Run(t, factory, stmtest.Options{})
}

func TestSerializabilityDSG(t *testing.T) {
	dsg.CheckRandom(t, factory(), dsg.RunOptions{})
}

func TestSerializabilityDSGHighContention(t *testing.T) {
	dsg.CheckRandom(t, factory(), dsg.RunOptions{Vars: 3, Goroutines: 8, TxPerG: 120, Seed: 42})
}

func TestClassicValidationAbortsStaleRead(t *testing.T) {
	tm := factory()
	x := tm.NewVar(0)
	y := tm.NewVar(0)

	t1 := tm.Begin(false)
	t1.Read(x)
	t1.Write(y, 1)

	t2 := tm.Begin(false)
	t2.Write(x, 1)
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}
	// t1's read of x is stale; TL2's classic validation must abort it even
	// though the history is serializable (t1 before t2) — the spurious abort
	// TWM is designed to avoid.
	if tm.Commit(t1) {
		t.Fatalf("TL2 must abort on stale read (classic validation)")
	}
}

func TestReadAbortsOnNewerVersion(t *testing.T) {
	tm := factory()
	x := tm.NewVar(0)
	t1 := tm.Begin(false)

	t2 := tm.Begin(false)
	t2.Write(x, 1)
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("expected retry signal reading newer version")
		}
		tm.Abort(t1)
	}()
	t1.Read(x)
}
