// Package tl2 implements the Transactional Locking II algorithm of Dice,
// Shalev and Shavit (DISC 2006) over the common stm API: a single-version STM
// with a global version clock and per-variable versioned write locks, using
// the classic validation rule ("commit in the present"). It is one of the two
// single-thread-efficient baselines of the TWM paper's evaluation (§5).
//
// Transactions sample a read version rv at begin. Reads are consistent if the
// variable is unlocked and its version is at most rv (sandwich check). Commit
// locks the write set in id order, increments the clock to obtain the write
// version wv, validates the read set (unlocked-or-mine, version <= rv) and
// publishes values at version wv. Read-only transactions keep no read set and
// need no commit-time validation (each read is individually consistent at rv),
// matching the methodology note in the paper's §5.
package tl2

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/stm"
)

// Options tunes a TL2 instance. The zero value uses defaults.
type Options struct {
	// LockSpinBudget bounds spinning on a peer's write lock before aborting.
	LockSpinBudget int
}

const defaultSpinLimit = 512

// TM is a TL2 instance.
type TM struct {
	opts  Options
	clock atomic.Uint64
	stats stm.Stats
	prof  atomic.Pointer[stm.Profiler]

	// txns pools transaction descriptors across attempts; see Recycle.
	txns sync.Pool

	varID   atomic.Uint64
	history atomic.Bool
}

// New returns a TL2 instance.
func New(opts Options) *TM {
	if opts.LockSpinBudget == 0 {
		opts.LockSpinBudget = defaultSpinLimit
	}
	tm := &TM{opts: opts}
	tm.clock.Store(1)
	tm.txns.New = func() any { return &txn{tm: tm, stats: tm.stats.Shard()} }
	return tm
}

// Name implements stm.TM.
func (tm *TM) Name() string { return "tl2" }

// Stats implements stm.TM.
func (tm *TM) Stats() *stm.Stats { return &tm.stats }

// SetProfiler implements stm.Profilable.
func (tm *TM) SetProfiler(p *stm.Profiler) { tm.prof.Store(p) }

// tlvar packs the versioned lock (version<<1 | lockbit) and the value. The
// value pointer is only replaced while the lock bit is held, and readers
// sandwich the value load between two meta loads.
type tlvar struct {
	id   uint64
	meta atomic.Uint64
	val  atomic.Pointer[stm.Value]

	histMu sync.Mutex
	hist   []stm.VersionRecord
}

// VarID implements stm.IDedVar (commit-lock ordering).
func (v *tlvar) VarID() uint64 { return v.id }

const lockBit = 1

func metaVersion(m uint64) uint64 { return m >> 1 }
func metaLocked(m uint64) bool    { return m&lockBit != 0 }

// NewVar implements stm.TM.
func (tm *TM) NewVar(initial stm.Value) stm.Var {
	v := &tlvar{id: tm.varID.Add(1)}
	v.val.Store(&initial)
	return v
}

// txn is a TL2 transaction. Descriptors are pooled (see Recycle); the slices
// keep their backing arrays across reuse.
type txn struct {
	tm       *TM
	stats    *stm.StatShard // striped counters; assigned once per descriptor
	readOnly bool
	rv       uint64

	readSet  []*tlvar
	writeSet stm.WriteSet[*tlvar]
	locked   []*tlvar

	lastReason stm.AbortReason // why the last Commit returned false
}

// ReadOnly implements stm.Tx.
func (tx *txn) ReadOnly() bool { return tx.readOnly }

// LastAbortReason implements stm.AbortReasoner: the reason of the most recent
// commit-time abort (read-path aborts travel in the retry signal).
func (tx *txn) LastAbortReason() stm.AbortReason { return tx.lastReason }

// failCommit records a commit-time abort with its reason, releases held locks
// and reports failure.
func (tx *txn) failCommit(reason stm.AbortReason) bool {
	tx.releaseLocks()
	tx.stats.RecordAbort(reason)
	tx.lastReason = reason
	return false
}

// Begin implements stm.TM.
func (tm *TM) Begin(readOnly bool) stm.Tx {
	tx := tm.txns.Get().(*txn)
	tx.readOnly = readOnly
	tx.rv = tm.clock.Load()
	tx.stats.RecordStart()
	return tx
}

// Recycle implements stm.TxRecycler: reset the descriptor and return it to
// the pool. Only stm.Atomically calls this, after an attempt has fully
// finished; manual Begin/Commit users never recycle.
func (tm *TM) Recycle(txi stm.Tx) {
	tx, ok := txi.(*txn)
	if !ok {
		return
	}
	tx.readSet = stm.ResetVarSlice(tx.readSet)
	tx.writeSet.Reset()
	tx.locked = stm.ResetVarSlice(tx.locked)
	tx.rv = 0
	tx.lastReason = stm.ReasonNone
	tm.txns.Put(tx)
}

// Read implements stm.Tx: the TL2 read barrier with the pre/post sandwich.
func (tx *txn) Read(v stm.Var) stm.Value {
	tv := v.(*tlvar)
	prof := tx.tm.prof.Load()
	var t0 int64
	if prof != nil {
		t0 = prof.Now()
	}
	if !tx.readOnly {
		if val, ok := tx.writeSet.Get(tv); ok {
			if prof != nil {
				prof.AddRead(prof.Now() - t0)
			}
			return val
		}
	}
	for spins := 0; ; spins++ {
		m1 := tv.meta.Load()
		if !metaLocked(m1) {
			val := *tv.val.Load()
			if tv.meta.Load() == m1 {
				if metaVersion(m1) > tx.rv {
					// The variable changed after our snapshot: classic
					// validation admits no extension, abort.
					tx.stats.RecordAbort(stm.ReasonReadConflict)
					stm.Retry(stm.ReasonReadConflict)
				}
				if !tx.readOnly {
					tx.readSet = append(tx.readSet, tv)
				}
				if prof != nil {
					prof.AddRead(prof.Now() - t0)
				}
				return val
			}
		}
		if spins >= tx.tm.opts.LockSpinBudget {
			tx.stats.RecordAbort(stm.ReasonLockTimeout)
			stm.Retry(stm.ReasonLockTimeout)
		}
		runtime.Gosched()
	}
}

// Write implements stm.Tx.
func (tx *txn) Write(v stm.Var, val stm.Value) {
	if tx.readOnly {
		panic("tl2: Write on a read-only transaction")
	}
	tx.writeSet.Put(v.(*tlvar), val)
}

// Abort implements stm.TM.
func (tm *TM) Abort(txi stm.Tx) {
	tx := txi.(*txn)
	tx.releaseLocks()
}

func (tx *txn) releaseLocks() {
	for _, v := range tx.locked {
		m := v.meta.Load()
		v.meta.Store(m &^ lockBit)
	}
	tx.locked = tx.locked[:0]
}

// lockVar acquires tv's write lock with bounded spinning.
func (tx *txn) lockVar(tv *tlvar) bool {
	for spins := 0; ; spins++ {
		m := tv.meta.Load()
		if !metaLocked(m) {
			if metaVersion(m) > tx.rv {
				return false // already newer than our snapshot: doomed
			}
			if tv.meta.CompareAndSwap(m, m|lockBit) {
				tx.locked = append(tx.locked, tv)
				return true
			}
			continue
		}
		if spins >= tx.tm.opts.LockSpinBudget {
			return false
		}
		runtime.Gosched()
	}
}

// Commit implements stm.TM.
func (tm *TM) Commit(txi stm.Tx) bool {
	tx := txi.(*txn)
	if tx.readOnly || tx.writeSet.Len() == 0 {
		tx.stats.RecordCommit(tx.readOnly)
		return true
	}
	prof := tm.prof.Load()
	var t0 int64
	if prof != nil {
		t0 = prof.Now()
		defer prof.AddTx()
	}

	// Lookups are over: sort the write entries in place by id (deadlock
	// avoidance) without sort.Slice's closure allocations.
	ents := tx.writeSet.Entries()
	stm.SortEntriesByID(ents)
	for i := range ents {
		if !tx.lockVar(ents[i].Key) {
			return tx.failCommit(stm.ReasonWriteConflict)
		}
	}

	// Clock-pressure relief ("pass on abort", DESIGN.md §12): a read variable
	// whose version already exceeds rv dooms the commit — versions only grow,
	// so the authoritative validation below would reject it too. Abort before
	// drawing the write version so doomed commits leave the shared clock
	// untouched. Only the stale-version signal is used; a variable locked by
	// a peer is not doom (the peer may yet abort) and is left to the
	// authoritative pass. (A variable we hold ourselves passed the version
	// check inside lockVar and cannot have changed since.)
	for _, v := range tx.readSet {
		if metaVersion(v.meta.Load()) > tx.rv {
			return tx.failCommit(stm.ReasonReadConflict)
		}
	}

	// Draw the write version GV4-style (Dice et al.'s improved global
	// version-clock scheme): attempt one CAS increment, and on failure adopt
	// the winner's value instead of retrying. Two committers sharing a write
	// version are safe: if their footprints overlap, both hold their write
	// locks across validation, so the reader of the pair sees the writer's
	// lock (or its freshly published version) and aborts; if they are
	// disjoint, no reader can distinguish their order. Under commit storms
	// this turns N clock increments into one, which is exactly when the
	// shared clock line is hottest.
	wv, own := tm.drawWV()

	if prof != nil {
		now := prof.Now()
		prof.AddCommit(now - t0) // lock acquisition counts as commit work
		t0 = now
	}

	// Classic read-set validation: every read variable must still be at a
	// version <= rv and not locked by another transaction. The wv == rv+1
	// shortcut (no concurrent committer) is from the original TL2 paper; it
	// requires that the increment was our own — a passed-on (adopted) value
	// equal to rv+1 proves a *peer* committed there, not that the window was
	// quiet.
	if !own || wv != tx.rv+1 {
		for _, v := range tx.readSet {
			m := v.meta.Load()
			if metaVersion(m) > tx.rv || (metaLocked(m) && !tx.holds(v)) {
				if prof != nil {
					prof.AddReadSetVal(prof.Now() - t0)
				}
				return tx.failCommit(stm.ReasonReadConflict)
			}
		}
	}
	if prof != nil {
		now := prof.Now()
		prof.AddReadSetVal(now - t0)
		t0 = now
	}

	for i := range ents {
		v, val := ents[i].Key, ents[i].Val
		v.val.Store(&val)
		if tm.history.Load() {
			v.histMu.Lock()
			v.hist = append(v.hist, stm.VersionRecord{Value: val, Serial: wv})
			v.histMu.Unlock()
		}
		v.meta.Store(wv << 1) // publish new version and release the lock
	}
	tx.locked = tx.locked[:0]
	if prof != nil {
		prof.AddCommit(prof.Now() - t0)
	}
	tx.stats.RecordCommit(false)
	return true
}

// drawWV obtains the commit's write version. One CAS increment is attempted;
// own reports whether it succeeded. On failure the clock has already moved
// past the loaded value (it is monotone), so the freshly observed value is
// adopted as wv instead of fighting for an increment of our own — GV4's
// "pass on failure". The adopted value is always at least rv+1 (the clock
// never goes backward from the value sampled at Begin) and exceeds every
// version this transaction read or overwrites.
func (tm *TM) drawWV() (wv uint64, own bool) {
	old := tm.clock.Load()
	if tm.clock.CompareAndSwap(old, old+1) {
		return old + 1, true
	}
	return tm.clock.Load(), false
}

func (tx *txn) holds(v *tlvar) bool {
	for _, l := range tx.locked {
		if l == v {
			return true
		}
	}
	return false
}

// EnableHistory implements stm.HistoryRecording.
func (tm *TM) EnableHistory() { tm.history.Store(true) }

// History implements stm.HistoryRecording: versions in commit (serialization)
// order.
func (tm *TM) History(v stm.Var) []stm.VersionRecord {
	tv := v.(*tlvar)
	tv.histMu.Lock()
	defer tv.histMu.Unlock()
	out := make([]stm.VersionRecord, len(tv.hist))
	copy(out, tv.hist)
	slices.SortFunc(out, func(a, b stm.VersionRecord) int {
		switch {
		case a.Serial < b.Serial:
			return -1
		case a.Serial > b.Serial:
			return 1
		}
		return 0
	})
	return out
}
