package tl2

import (
	"testing"
	"testing/quick"
)

func TestMetaEncodingProperty(t *testing.T) {
	f := func(version uint32, locked bool) bool {
		m := uint64(version) << 1
		if locked {
			m |= lockBit
		}
		return metaVersion(m) == uint64(version) && metaLocked(m) == locked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockReleaseOnAbort(t *testing.T) {
	tm := New(Options{})
	x := tm.NewVar(0)
	y := tm.NewVar(0)

	// Force a commit failure after y is locked: make x stale.
	t1 := tm.Begin(false)
	if got := t1.Read(x); got != 0 {
		t.Fatalf("read = %v", got)
	}
	t1.Write(y, 1)

	t2 := tm.Begin(false)
	t2.Write(x, 1)
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}
	if tm.Commit(t1) {
		t.Fatalf("t1 should fail validation")
	}
	if metaLocked(y.(*tlvar).meta.Load()) {
		t.Fatalf("y's lock leaked after failed commit")
	}
	t3 := tm.Begin(false)
	t3.Write(y, 2)
	if !tm.Commit(t3) {
		t.Fatalf("y not writable after abort")
	}
}

func TestReadOnlyAbortsOnNewerVersion(t *testing.T) {
	// TL2 read-only transactions skip commit validation but each read is
	// individually checked against rv — a stale snapshot aborts mid-read.
	tm := New(Options{})
	x := tm.NewVar(0)
	ro := tm.Begin(true)

	w := tm.Begin(false)
	w.Write(x, 1)
	if !tm.Commit(w) {
		t.Fatalf("w commit failed")
	}

	aborted := func() (a bool) {
		defer func() { a = recover() != nil }()
		ro.Read(x)
		return false
	}()
	if !aborted {
		t.Fatalf("RO read of newer version must retry (single-version TM)")
	}
	tm.Abort(ro)
	if tm.Stats().Snapshot().ByReason["read-conflict"] == 0 {
		t.Fatalf("abort reason not recorded")
	}
}

func TestWriteVersionMonotonicPerVar(t *testing.T) {
	tm := New(Options{})
	tm.EnableHistory()
	x := tm.NewVar(0)
	for i := 1; i <= 5; i++ {
		tx := tm.Begin(false)
		tx.Write(x, i)
		if !tm.Commit(tx) {
			t.Fatalf("commit %d failed", i)
		}
	}
	hist := tm.History(x)
	if len(hist) != 5 {
		t.Fatalf("history = %d entries", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Serial <= hist[i-1].Serial {
			t.Fatalf("versions not strictly increasing: %v", hist)
		}
	}
}

func TestDoomedCommitPassesOnClock(t *testing.T) {
	// Clock-pressure relief: a commit whose read set is already stale aborts
	// before drawWV, leaving the shared clock untouched.
	tm := New(Options{})
	x := tm.NewVar(0)
	y := tm.NewVar(0)

	t1 := tm.Begin(false)
	if got := t1.Read(x); got != 0 {
		t.Fatalf("read = %v", got)
	}
	t1.Write(y, 1)

	t2 := tm.Begin(false)
	t2.Write(x, 2)
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}

	before := tm.clock.Load()
	if tm.Commit(t1) {
		t.Fatalf("t1 must abort on its stale read set")
	}
	if after := tm.clock.Load(); after != before {
		t.Fatalf("doomed commit bumped the clock: %d -> %d", before, after)
	}
}

func TestDrawWVOwnIncrement(t *testing.T) {
	// The uncontended drawWV path: the CAS wins, wv is a fresh increment and
	// own is true — the only combination that may take the rv+1 validation
	// shortcut. (The adopted path needs a racing committer and is exercised by
	// the concurrent conformance battery.)
	tm := New(Options{})
	before := tm.clock.Load()
	wv, own := tm.drawWV()
	if !own || wv != before+1 {
		t.Fatalf("drawWV = (%d, %v), want (%d, true)", wv, own, before+1)
	}
}

func TestEarlyLockFailOnNewerVersion(t *testing.T) {
	// lockVar refuses to lock a variable whose version already exceeds rv:
	// the transaction is doomed, so it aborts before taking locks.
	tm := New(Options{})
	x := tm.NewVar(0)
	t1 := tm.Begin(false)
	t1.Write(x, 10)

	t2 := tm.Begin(false)
	t2.Write(x, 20)
	if !tm.Commit(t2) {
		t.Fatalf("t2 commit failed")
	}
	if tm.Commit(t1) {
		t.Fatalf("t1 blind write over newer version must abort (no read ever validated x)")
	}
}
