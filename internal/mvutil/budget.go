package mvutil

import "sync/atomic"

// VersionBudget is a process-wide cap on the memory the multi-versioned
// engines (TWM and JVSTM) may spend on version chains. Multi-versioning trades
// memory for abort-freedom; under a read-heavy skewed workload the chains
// behind hot variables otherwise grow without bound until the process dies.
// The budget tracks live versions (exact count, approximate bytes) at
// version-install time and classifies the total into pressure levels the
// engines react to with escalating force:
//
//	PressureNone  below the soft limit: nothing happens.
//	PressureSoft  past the soft limit: the engine runs an eager GC pass
//	              (bounded by the ordinary active-snapshot rule, so every
//	              paper guarantee survives).
//	PressureHard  past the hard limit even after GC: the engine trims each
//	              chain to a configured max depth — possibly cutting versions
//	              an old snapshot still needs — and, if the total still
//	              exceeds the hard limit, fails the installing commit with
//	              stm.ReasonMemoryPressure.
//
// One budget may be shared by several engines (the limits then cap their
// combined version memory). All methods are safe for concurrent use and
// allocation-free; the health watchdog samples Level and the counters on its
// steady-state path.
type VersionBudget struct {
	cfg BudgetConfig

	count atomic.Int64 // live versions
	bytes atomic.Int64 // approximate live version bytes

	softGCs   atomic.Uint64 // eager GC passes triggered at soft pressure
	trims     atomic.Uint64 // chain-trim passes triggered at hard pressure
	rejects   atomic.Uint64 // installs refused (ReasonMemoryPressure aborts)
	recovered atomic.Uint64 // initial versions installed by WAL replay
}

// BudgetConfig sets the limits. A zero limit disables that axis; the soft
// limit of an axis must be at or below its hard limit. Count limits are exact;
// byte limits compare against the ApproxVersionBytes estimate.
type BudgetConfig struct {
	SoftVersions, HardVersions int64
	SoftBytes, HardBytes       int64
}

// Pressure classifies the budget state; higher is worse.
type Pressure uint8

const (
	PressureNone Pressure = iota
	PressureSoft
	PressureHard
)

// String returns a short stable label for the level.
func (p Pressure) String() string {
	switch p {
	case PressureSoft:
		return "soft"
	case PressureHard:
		return "hard"
	}
	return "none"
}

// NewVersionBudget returns a budget with the given limits. It panics when a
// soft limit exceeds its hard limit (both non-zero); that configuration would
// skip straight from no pressure to rejects with no GC escalation between.
func NewVersionBudget(cfg BudgetConfig) *VersionBudget {
	if cfg.SoftVersions > 0 && cfg.HardVersions > 0 && cfg.SoftVersions > cfg.HardVersions {
		panic("mvutil: SoftVersions above HardVersions")
	}
	if cfg.SoftBytes > 0 && cfg.HardBytes > 0 && cfg.SoftBytes > cfg.HardBytes {
		panic("mvutil: SoftBytes above HardBytes")
	}
	return &VersionBudget{cfg: cfg}
}

// Install records n freshly installed versions totalling approximately bytes.
// Engines call it for every version insertion, including the initial version
// a variable is born with (the GC may free that one later, and releases must
// balance installs).
func (b *VersionBudget) Install(n, bytes int64) {
	b.count.Add(n)
	b.bytes.Add(bytes)
}

// Release returns n collected versions totalling approximately bytes to the
// budget (GC and trim passes).
func (b *VersionBudget) Release(n, bytes int64) {
	b.count.Add(-n)
	b.bytes.Add(-bytes)
}

// Level classifies the current totals against the limits; the worse of the
// count axis and the byte axis wins.
func (b *VersionBudget) Level() Pressure {
	lvl := axisLevel(b.count.Load(), b.cfg.SoftVersions, b.cfg.HardVersions)
	if bl := axisLevel(b.bytes.Load(), b.cfg.SoftBytes, b.cfg.HardBytes); bl > lvl {
		lvl = bl
	}
	return lvl
}

func axisLevel(v, soft, hard int64) Pressure {
	switch {
	case hard > 0 && v > hard:
		return PressureHard
	case soft > 0 && v > soft:
		return PressureSoft
	}
	return PressureNone
}

// Versions returns the live version count.
func (b *VersionBudget) Versions() int64 { return b.count.Load() }

// Bytes returns the approximate live version bytes.
func (b *VersionBudget) Bytes() int64 { return b.bytes.Load() }

// NoteSoftGC counts one eager GC pass triggered at soft pressure.
func (b *VersionBudget) NoteSoftGC() { b.softGCs.Add(1) }

// NoteTrim counts one chain-trim pass triggered at hard pressure.
func (b *VersionBudget) NoteTrim() { b.trims.Add(1) }

// NoteReject counts one refused install (a ReasonMemoryPressure abort).
func (b *VersionBudget) NoteReject() { b.rejects.Add(1) }

// NoteRecovered counts n initial versions installed by crash recovery (WAL
// replay re-creating variables with their durable values). Their memory is
// charged through the ordinary Install path by NewVar; this counter only
// tells the memory accounting apart — a budget that fills at boot is sized
// too small for the recovered working set, not leaking under load.
func (b *VersionBudget) NoteRecovered(n int64) { b.recovered.Add(uint64(n)) }

// SoftGCs reports eager GC passes triggered so far.
func (b *VersionBudget) SoftGCs() uint64 { return b.softGCs.Load() }

// Trims reports chain-trim passes triggered so far.
func (b *VersionBudget) Trims() uint64 { return b.trims.Load() }

// Rejects reports refused installs so far.
func (b *VersionBudget) Rejects() uint64 { return b.rejects.Load() }

// Recovered reports initial versions installed by WAL replay.
func (b *VersionBudget) Recovered() uint64 { return b.recovered.Load() }

// BudgetSnapshot is a JSON-able copy of the budget state.
type BudgetSnapshot struct {
	Versions int64  `json:"versions"`
	Bytes    int64  `json:"bytes"`
	Level    string `json:"level"`
	SoftGCs  uint64 `json:"softGCs"`
	Trims    uint64 `json:"trims"`
	Rejects  uint64 `json:"rejects"`
	// Recovered counts the initial versions WAL replay installed at boot;
	// they are part of Versions/Bytes like any other install.
	Recovered uint64 `json:"recovered,omitempty"`
}

// Snapshot copies the counters for reporting.
func (b *VersionBudget) Snapshot() BudgetSnapshot {
	return BudgetSnapshot{
		Versions:  b.count.Load(),
		Bytes:     b.bytes.Load(),
		Level:     b.Level().String(),
		SoftGCs:   b.softGCs.Load(),
		Trims:     b.trims.Load(),
		Rejects:   b.rejects.Load(),
		Recovered: b.recovered.Load(),
	}
}

// ApproxVersionBytes estimates the heap footprint of one version holding val:
// a fixed overhead for the version node and its interface header plus the
// payload of the common transparent types. The estimate is deliberately cheap
// and allocation-free (it runs on every version install); exotic payloads are
// charged a flat word-pair.
func ApproxVersionBytes(val any) int64 {
	const overhead = 64
	switch v := val.(type) {
	case nil:
		return overhead
	case string:
		return overhead + int64(len(v))
	case []byte:
		return overhead + int64(len(v))
	default:
		return overhead + 16
	}
}
