package mvutil

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// finishAll is the trivial commit callback: succeed everything.
func finishAll(batch []*CommitReq) {
	for _, r := range batch {
		r.Finish(true)
	}
}

func TestCommitReqLifecycle(t *testing.T) {
	var r CommitReq
	r.Reset("tx")
	if r.Done() || r.OK || r.Tx != "tx" {
		t.Fatalf("bad reset state: done=%v ok=%v tx=%v", r.Done(), r.OK, r.Tx)
	}
	r.Finish(true)
	if !r.Done() || !r.OK {
		t.Fatalf("bad finished state: done=%v ok=%v", r.Done(), r.OK)
	}
	r.Reset("tx2")
	if r.Done() || r.OK {
		t.Fatal("Reset did not clear resolution")
	}
}

func TestCombinerSingleSubmitLeads(t *testing.T) {
	c := NewCombiner(0, nil)
	var r CommitReq
	r.Reset(nil)
	ok, handoff := c.Submit(&r, 3, finishAll)
	if !ok || handoff {
		t.Fatalf("ok=%v handoff=%v, want committed by own leader session", ok, handoff)
	}
}

// runFleet drives one deterministic leader/follower schedule: a first
// submitter publishes on stripe 0 and wins the leader lock; its first commit
// invocation blocks until every follower stripe in [1, followers] holds a
// published request (observable in-package via the stripe heads), so the
// leader's next drain sweep picks up the whole fleet at once. It returns the
// per-invocation batch sizes, whether the first submitter saw a handoff
// (must be false — it led), and how many followers did (must be all).
func runFleet(t *testing.T, c *Combiner, followers int) (sizes []int, leaderHandoff bool, handoffs int32) {
	t.Helper()
	if followers >= combinerStripes {
		t.Fatalf("runFleet needs distinct stripes: %d followers", followers)
	}
	inCommit := make(chan struct{})
	var once sync.Once
	var mu sync.Mutex
	commit := func(batch []*CommitReq) {
		once.Do(func() {
			close(inCommit)
			for i := 1; i <= followers; i++ {
				for c.stripes[i].head.Load() == nil {
					time.Sleep(time.Millisecond)
				}
			}
		})
		mu.Lock()
		sizes = append(sizes, len(batch))
		mu.Unlock()
		finishAll(batch)
	}

	leaderDone := make(chan bool, 1)
	go func() {
		var r CommitReq
		r.Reset(nil)
		_, h := c.Submit(&r, 0, commit)
		leaderDone <- h
	}()
	<-inCommit // the first submitter now holds the leader lock

	var wg sync.WaitGroup
	var ho atomic.Int32
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(stripe int) {
			defer wg.Done()
			var r CommitReq
			r.Reset(nil)
			ok, h := c.Submit(&r, stripe, commit)
			if !ok {
				t.Error("follower commit failed")
			}
			if h {
				ho.Add(1)
			}
		}(i)
	}
	wg.Wait()
	return sizes, <-leaderDone, ho.Load()
}

// TestCombinerHandoff: requests published while a leader session is active
// are committed by that same session, and their submitters observe the
// handoff.
func TestCombinerHandoff(t *testing.T) {
	c := NewCombiner(0, nil)
	sizes, leaderHandoff, handoffs := runFleet(t, c, 2)
	if leaderHandoff {
		t.Fatal("first submitter reported a handoff despite leading")
	}
	if handoffs != 2 {
		t.Fatalf("handoffs = %d, want 2 (leader committed on the followers' behalf)", handoffs)
	}
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 2 {
		t.Fatalf("batch sizes %v, want [1 2]", sizes)
	}
}

// TestCombinerMaxBatchChunking: a backlog deeper than maxBatch is handed to
// the callback in chunks of at most maxBatch.
func TestCombinerMaxBatchChunking(t *testing.T) {
	const followers, maxBatch = 7, 2
	c := NewCombiner(maxBatch, nil)
	sizes, leaderHandoff, handoffs := runFleet(t, c, followers)
	if leaderHandoff || handoffs != followers {
		t.Fatalf("leaderHandoff=%v handoffs=%d, want false/%d", leaderHandoff, handoffs, followers)
	}
	total := 0
	for _, n := range sizes {
		if n < 1 || n > maxBatch {
			t.Fatalf("batch size %d outside [1,%d] (sizes %v)", n, maxBatch, sizes)
		}
		total += n
	}
	if total != followers+1 {
		t.Fatalf("batch sizes %v sum to %d, want %d", sizes, total, followers+1)
	}
	// The gated sweep saw all 7 followers at once: 2+2+2+1 after the
	// leader's own opening batch of 1.
	if len(sizes) != 5 {
		t.Fatalf("batch sizes %v, want the leader batch plus four chunks", sizes)
	}
}

// TestCombinerSplitBatchHook: the chaos split hook shrinks prospective
// batches; the remainder re-rounds rather than being lost.
func TestCombinerSplitBatchHook(t *testing.T) {
	var splits atomic.Int32
	hooks := &BatchHooks{SplitBatch: func(n int) int {
		if n > 1 {
			splits.Add(1)
			return 1
		}
		return n
	}}
	const followers = 5
	c := NewCombiner(0, hooks)
	sizes, _, _ := runFleet(t, c, followers)
	total := 0
	for _, n := range sizes {
		if n != 1 {
			t.Fatalf("split hook violated: batch size %d (sizes %v)", n, sizes)
		}
		total += n
	}
	if total != followers+1 {
		t.Fatalf("batch sizes %v sum to %d, want %d", sizes, total, followers+1)
	}
	if splits.Load() == 0 {
		// The gated sweep presented all 5 followers to one chunking pass, so
		// the hook must have seen n > 1 at least once.
		t.Fatal("split hook never fired despite a gated multi-member backlog")
	}
}

func TestBatchCharge(t *testing.T) {
	b := NewVersionBudget(BudgetConfig{SoftVersions: 2, HardVersions: 4})
	var ch BatchCharge
	ch.Add(1, 10)
	ch.Add(2, 20)
	if b.Level() != PressureNone {
		t.Fatal("budget charged before Flush")
	}
	ch.Flush(b)
	if b.Level() != PressureSoft {
		t.Fatalf("level = %v after flushing 3 versions (soft=2), want soft", b.Level())
	}
	// Flush resets the accumulator: a second flush charges nothing.
	ch.Flush(b)
	if b.Level() != PressureSoft {
		t.Fatalf("empty flush changed the level to %v", b.Level())
	}
	// A nil budget is a no-op but still resets.
	ch.Add(100, 0)
	ch.Flush(nil)
	if ch.Count != 0 || ch.Bytes != 0 {
		t.Fatalf("flush to nil budget did not reset: %+v", ch)
	}
	ch.Flush(b)
	if b.Level() != PressureSoft {
		t.Fatal("reset accumulator still charged the budget")
	}
}
