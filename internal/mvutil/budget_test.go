package mvutil

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestBudgetLevels(t *testing.T) {
	b := NewVersionBudget(BudgetConfig{SoftVersions: 4, HardVersions: 8})
	if got := b.Level(); got != PressureNone {
		t.Fatalf("empty budget level = %v", got)
	}
	b.Install(4, 100)
	if got := b.Level(); got != PressureNone {
		t.Fatalf("at soft limit level = %v (limits are exclusive)", got)
	}
	b.Install(1, 10)
	if got := b.Level(); got != PressureSoft {
		t.Fatalf("past soft level = %v", got)
	}
	b.Install(4, 10)
	if got := b.Level(); got != PressureHard {
		t.Fatalf("past hard level = %v", got)
	}
	b.Release(6, 60)
	if got := b.Level(); got != PressureNone {
		t.Fatalf("after release level = %v (count %d)", got, b.Versions())
	}
}

func TestBudgetByteAxis(t *testing.T) {
	b := NewVersionBudget(BudgetConfig{SoftBytes: 1000, HardBytes: 2000})
	b.Install(1, 1500)
	if got := b.Level(); got != PressureSoft {
		t.Fatalf("byte soft level = %v", got)
	}
	b.Install(1, 1000)
	if got := b.Level(); got != PressureHard {
		t.Fatalf("byte hard level = %v", got)
	}
	// The worse axis wins when both are configured.
	b2 := NewVersionBudget(BudgetConfig{SoftVersions: 100, HardVersions: 200, SoftBytes: 10, HardBytes: 20})
	b2.Install(1, 50)
	if got := b2.Level(); got != PressureHard {
		t.Fatalf("mixed-axis level = %v, want hard from byte axis", got)
	}
}

func TestBudgetZeroLimitsDisabled(t *testing.T) {
	b := NewVersionBudget(BudgetConfig{})
	b.Install(1<<40, 1<<50)
	if got := b.Level(); got != PressureNone {
		t.Fatalf("unlimited budget level = %v", got)
	}
}

func TestBudgetInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("soft above hard must panic")
		}
	}()
	NewVersionBudget(BudgetConfig{SoftVersions: 10, HardVersions: 5})
}

func TestBudgetSnapshotJSON(t *testing.T) {
	b := NewVersionBudget(BudgetConfig{SoftVersions: 1, HardVersions: 2})
	b.Install(3, 300)
	b.NoteSoftGC()
	b.NoteTrim()
	b.NoteReject()
	snap := b.Snapshot()
	if snap.Versions != 3 || snap.Level != "hard" || snap.SoftGCs != 1 || snap.Trims != 1 || snap.Rejects != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-able: %v", err)
	}
}

// TestBudgetConcurrent installs and releases from many goroutines and checks
// the ledger balances (race-clean accounting).
func TestBudgetConcurrent(t *testing.T) {
	b := NewVersionBudget(BudgetConfig{SoftVersions: 1000, HardVersions: 2000})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Install(2, 128)
				_ = b.Level()
				b.Release(2, 128)
			}
		}()
	}
	wg.Wait()
	if b.Versions() != 0 || b.Bytes() != 0 {
		t.Fatalf("ledger unbalanced: %d versions, %d bytes", b.Versions(), b.Bytes())
	}
}

func TestApproxVersionBytes(t *testing.T) {
	if got := ApproxVersionBytes(nil); got != 64 {
		t.Fatalf("nil = %d", got)
	}
	if got := ApproxVersionBytes("hello"); got != 69 {
		t.Fatalf("string = %d", got)
	}
	if got := ApproxVersionBytes(make([]byte, 100)); got != 164 {
		t.Fatalf("bytes = %d", got)
	}
	if got := ApproxVersionBytes(42); got != 80 {
		t.Fatalf("int = %d", got)
	}
}
