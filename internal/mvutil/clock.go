package mvutil

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxClockShards bounds the shard count of a ClockDomain. 64 keeps the shard
// masks in a single uint64 word and the whole cell array at 8KB — small enough
// to embed in an engine by value, large enough that the per-shard commit rate
// is a rounding error of the global one at any realistic core count.
const MaxClockShards = 64

// clockCell is one shard's commit clock on its own cache line. The padding is
// the point: an unpadded array of counters ships every increment to every
// other shard's core as false sharing (BenchmarkClockContention measures the
// gap), which would re-create exactly the global-clock wall the sharding is
// meant to remove.
type clockCell struct {
	v atomic.Uint64
	_ [120]byte
}

// ClockDomain is a partitioned commit clock: K independent per-shard cells
// plus a cross-shard fence. It is the mvutil primitive behind the engines'
// Options.ClockShards mode.
//
// The contract the engines build on:
//
//   - Numbers drawn from different shards live on unrelated number lines.
//     They are only ever compared between versions of the same variable, and
//     every variable belongs to exactly one shard, so per-variable version
//     orders, read stamps and snapshot components all stay within one domain.
//   - A transaction whose footprint (reads ∪ writes) stays inside one shard
//     advances that shard's cell with a plain fetch-add — no CAS loop, no
//     fence, no contact with any other shard's cache line. That is the
//     zero-coordination fast path.
//   - A transaction whose footprint spans shards must draw its write version
//     inside the fence (AdvanceCross): take xmu, flip xseq odd, max-fold the
//     touched cells into wv = max+1, raise every touched cell to wv
//     (GV4-style CAS-max — a concurrent single-shard fetch-add may win the
//     race, in which case the raise retries and the retry count is surfaced
//     as a stat), flip xseq even, release. The fence is what makes vector
//     snapshots sound; see Snapshot.
//
// Snapshot consistency. A vector read is a consistent cut iff no causal chain
// of commits has its first clock advance after our read of its shard and its
// last advance before our read of another shard. Within one shard the cell is
// a single atomic — trivially consistent. Across shards, causality can only
// hop shard boundaries through a transaction with a cross-shard footprint
// (a single-shard transaction reads and writes one shard only, so a chain of
// them never changes shard). Every such transaction advances clocks inside
// the fence, and its advance sits timewise between the chain's first and last
// advances. Therefore: if a reader observes xseq even and unchanged around
// its cell reads, no fence — and hence no shard-hopping advance — overlapped
// the read window, and the cut is consistent. Readers that keep losing the
// seqlock race fall back to reading under xmu, which excludes fences by mutual
// exclusion; plain single-shard fetch-adds may still land mid-read, but by the
// argument above they cannot make the cut inconsistent.
type ClockDomain struct {
	k    int
	mask uint64
	_    [40]byte // keep cell 0 off the header's cache line
	cells [MaxClockShards]clockCell
	xseq atomic.Uint64 // fence seqlock: odd while a cross-shard draw is in flight
	_    [120]byte
	xmu  sync.Mutex
}

// Init sizes the domain to k shards (rounded up to a power of two, clamped to
// [1, MaxClockShards]) and seeds every cell with initial. It returns the
// effective shard count. Engines seed with 1 for the same reason the scalar
// clock started at 1: a variable's zero read stamp must never satisfy a
// "stamp >= snapshot" check in any shard's domain.
func (c *ClockDomain) Init(k int, initial uint64) int {
	if k < 1 {
		k = 1
	}
	if k > MaxClockShards {
		k = MaxClockShards
	}
	if k&(k-1) != 0 {
		k = 1 << bits.Len(uint(k))
	}
	c.k = k
	c.mask = uint64(k - 1)
	for s := 0; s < k; s++ {
		c.cells[s].v.Store(initial)
	}
	return k
}

// Shards returns the effective shard count.
func (c *ClockDomain) Shards() int { return c.k }

// ShardOf maps a variable id onto a shard with the default round-robin
// policy. Engines may override it with a pluggable sharder.
func (c *ClockDomain) ShardOf(id uint64) int { return int((id - 1) & c.mask) }

// Load returns shard s's clock.
func (c *ClockDomain) Load(s int) uint64 { return c.cells[s].v.Load() }

// Add advances shard s's clock by delta and returns the new value. This is
// the single-shard commit path: one uncontended-by-construction fetch-add.
func (c *ClockDomain) Add(s int, delta uint64) uint64 { return c.cells[s].v.Add(delta) }

// Raise CAS-maxes shard s's cell to at least v and reports how many CAS
// attempts lost a race on the way (0 on the uncontended path). Used by the
// cross-shard draw and by recovery fast-forward.
func (c *ClockDomain) Raise(s int, v uint64) (retries int) {
	for {
		cur := c.cells[s].v.Load()
		if cur >= v {
			return retries
		}
		if c.cells[s].v.CompareAndSwap(cur, v) {
			return retries
		}
		retries++
	}
}

// AdvanceCross draws one write version covering every shard set in wmask:
// wv = 1 + max over the touched cells, then every touched cell is raised to
// wv, all inside the fence. The returned wv is strictly greater than any
// number previously drawn from any touched shard, and casRetries counts the
// GV4-style raise attempts that lost to concurrent single-shard fetch-adds.
func (c *ClockDomain) AdvanceCross(wmask uint64) (wv uint64, casRetries int) {
	c.xmu.Lock()
	c.xseq.Add(1) // odd: fence open
	var max uint64
	for m := wmask; m != 0; m &= m - 1 {
		s := bits.TrailingZeros64(m)
		if v := c.cells[s].v.Load(); v > max {
			max = v
		}
	}
	wv = max + 1
	for m := wmask; m != 0; m &= m - 1 {
		casRetries += c.Raise(bits.TrailingZeros64(m), wv)
	}
	c.xseq.Add(1) // even: fence closed
	c.xmu.Unlock()
	return wv, casRetries
}

// FenceSample spins until no fence is in flight and returns the (even) fence
// sequence. Pair with FenceStable to bracket a set of cell reads.
func (c *ClockDomain) FenceSample() uint64 {
	for i := 0; ; i++ {
		x := c.xseq.Load()
		if x&1 == 0 {
			return x
		}
		if i&15 == 15 {
			runtime.Gosched()
		}
	}
}

// FenceStable reports whether no fence started since x0 was sampled. If it
// returns true, every cell value read between FenceSample and this call
// belongs to one consistent cut (see the type comment's argument).
func (c *ClockDomain) FenceStable(x0 uint64) bool { return c.xseq.Load() == x0 }

// snapshotSpins bounds the optimistic seqlock attempts before Snapshot falls
// back to reading under the fence mutex. Cross-shard draws are rare relative
// to snapshot reads, so the fallback almost never runs; it exists so that a
// begin-storm cannot livelock behind a commit-storm of cross-shard writers.
const snapshotSpins = 4

// Snapshot appends one consistent vector cut (all K cells) to dst and returns
// it. dst is reused across calls to stay allocation-free on the hot path.
func (c *ClockDomain) Snapshot(dst []uint64) []uint64 {
	dst = dst[:0]
	if c.k == 1 {
		return append(dst, c.cells[0].v.Load())
	}
	for attempt := 0; attempt < snapshotSpins; attempt++ {
		x0 := c.xseq.Load()
		if x0&1 != 0 {
			runtime.Gosched()
			continue
		}
		dst = dst[:0]
		for s := 0; s < c.k; s++ {
			dst = append(dst, c.cells[s].v.Load())
		}
		if c.xseq.Load() == x0 {
			return dst
		}
	}
	c.xmu.Lock()
	dst = dst[:0]
	for s := 0; s < c.k; s++ {
		dst = append(dst, c.cells[s].v.Load())
	}
	c.xmu.Unlock()
	return dst
}

// Max returns the largest cell value. It is the recovery-seeding upper bound:
// raising every cell to at least Max of a recovered domain guarantees new
// commits in any shard serialize after everything replayed.
func (c *ClockDomain) Max() uint64 {
	var max uint64
	for s := 0; s < c.k; s++ {
		if v := c.cells[s].v.Load(); v > max {
			max = v
		}
	}
	return max
}

// Sum returns the sum of all cells — a monotone progress measure (each commit
// strictly increases it) that equals the scalar clock at K=1. Health
// watchdogs use it where they used the scalar clock.
func (c *ClockDomain) Sum() uint64 {
	var sum uint64
	for s := 0; s < c.k; s++ {
		sum += c.cells[s].v.Load()
	}
	return sum
}
