package mvutil

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestMinStartEmpty(t *testing.T) {
	a := NewActiveSet()
	if got := a.MinStart(42); got != 42 {
		t.Fatalf("empty min = %d, want fallback 42", got)
	}
}

func TestRegisterUnregister(t *testing.T) {
	a := NewActiveSet()
	s1 := a.Register(10)
	s2 := a.Register(5)
	s3 := a.Register(20)
	if got := a.MinStart(100); got != 5 {
		t.Fatalf("min = %d, want 5", got)
	}
	a.Unregister(s2)
	if got := a.MinStart(100); got != 10 {
		t.Fatalf("min = %d, want 10", got)
	}
	a.Unregister(s1)
	a.Unregister(s3)
	if got := a.MinStart(7); got != 7 {
		t.Fatalf("min = %d, want fallback 7", got)
	}
	a.Unregister(nil) // must be safe
}

func TestMinStartNeverAboveLiveMinimum(t *testing.T) {
	// Property: with any set of live registrations, MinStart is the exact
	// minimum of the live starts (or the fallback when none).
	f := func(starts []uint16, removeMask uint8) bool {
		a := NewActiveSet()
		slots := make([]*Slot, len(starts))
		for i, s := range starts {
			slots[i] = a.Register(uint64(s))
		}
		live := make([]uint64, 0, len(starts))
		for i, s := range starts {
			if i < 8 && removeMask&(1<<i) != 0 {
				a.Unregister(slots[i])
				continue
			}
			live = append(live, uint64(s))
		}
		const fallback = uint64(1 << 40)
		want := fallback
		for _, s := range live {
			if s < want {
				want = s
			}
		}
		return a.MinStart(fallback) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentRegistration(t *testing.T) {
	a := NewActiveSet()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := a.Register(base + uint64(i))
				_ = a.MinStart(1 << 40)
				a.Unregister(s)
			}
		}(uint64(g) * 1000)
	}
	wg.Wait()
	if got := a.MinStart(99); got != 99 {
		t.Fatalf("all unregistered, min = %d", got)
	}
}
