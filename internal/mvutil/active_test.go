package mvutil

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestMinStartEmpty(t *testing.T) {
	a := NewActiveSet()
	if got := a.MinStart(42); got != 42 {
		t.Fatalf("empty min = %d, want fallback 42", got)
	}
}

func TestRegisterUnregister(t *testing.T) {
	a := NewActiveSet()
	var s1, s2, s3 Slot
	a.Register(&s1, 10)
	a.Register(&s2, 5)
	a.Register(&s3, 20)
	if got := a.MinStart(100); got != 5 {
		t.Fatalf("min = %d, want 5", got)
	}
	a.Unregister(&s2)
	if got := a.MinStart(100); got != 10 {
		t.Fatalf("min = %d, want 10", got)
	}
	a.Unregister(&s1)
	a.Unregister(&s3)
	if got := a.MinStart(7); got != 7 {
		t.Fatalf("min = %d, want fallback 7", got)
	}
	a.Unregister(new(Slot)) // never registered: must be a safe no-op
}

func TestSlotReuse(t *testing.T) {
	// A pooled slot is registered and unregistered many times; its home shard
	// is sticky and each registration's start must be visible exactly while
	// registered.
	a := NewActiveSet()
	var s Slot
	for i := uint64(1); i <= 50; i++ {
		a.Register(&s, i)
		if got := a.MinStart(1 << 40); got != i {
			t.Fatalf("round %d: min = %d", i, got)
		}
		a.Unregister(&s)
		if got := a.MinStart(1 << 40); got != 1<<40 {
			t.Fatalf("round %d: slot leaked, min = %d", i, got)
		}
	}
}

func TestMinStartNeverAboveLiveMinimum(t *testing.T) {
	// Property: with any set of live registrations, MinStart is the exact
	// minimum of the live starts (or the fallback when none).
	f := func(starts []uint16, removeMask uint8) bool {
		a := NewActiveSet()
		slots := make([]*Slot, len(starts))
		for i, s := range starts {
			slots[i] = new(Slot)
			a.Register(slots[i], uint64(s))
		}
		live := make([]uint64, 0, len(starts))
		for i, s := range starts {
			if i < 8 && removeMask&(1<<i) != 0 {
				a.Unregister(slots[i])
				continue
			}
			live = append(live, uint64(s))
		}
		const fallback = uint64(1 << 40)
		want := fallback
		for _, s := range live {
			if s < want {
				want = s
			}
		}
		return a.MinStart(fallback) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentRegistration(t *testing.T) {
	a := NewActiveSet()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			var s Slot // reused across iterations, as pooled engines do
			for i := 0; i < 200; i++ {
				a.Register(&s, base+uint64(i))
				_ = a.MinStart(1 << 40)
				a.Unregister(&s)
			}
		}(uint64(g) * 1000)
	}
	wg.Wait()
	if got := a.MinStart(99); got != 99 {
		t.Fatalf("all unregistered, min = %d", got)
	}
}
