package mvutil

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the flat-combining commit stage shared by the
// group-commit engines (internal/core and internal/jvstm with GroupCommit
// set; DESIGN.md §13). Committers with a validated-ready write set publish a
// CommitReq to a striped Treiber stack and spin on a per-request done flag;
// whichever committer wins the leader lock drains every stripe and commits
// the whole batch on the followers' behalf, handing each result back through
// its request. The combiner itself is engine-agnostic — it owns publication,
// leader election, batching and handoff; the engine's callback owns locking,
// validation and version installation.

const (
	// combinerStripes is the publication-stack stripe count (power of two).
	// Stripes only exist to spread the publish CAS across cache lines;
	// correctness never depends on which stripe a request lands in.
	combinerStripes = 8
	// DefaultMaxBatch caps the members handed to one commit callback. Batches
	// beyond it are split — the callback's working state (claimed-variable
	// map, lock list) stays bounded no matter how deep the queue got.
	DefaultMaxBatch = 64
	// submitSpins is how many Gosched iterations a follower spins on its done
	// flag before escalating to short sleeps. On an oversubscribed machine a
	// spinning follower competes with the leader for the cores the leader
	// needs to finish the batch; sleeping followers give them back.
	submitSpins = 64
	// submitNap is the follower's sleep once spinning escalates.
	submitNap = 20 * time.Microsecond
)

// CommitReq is one published commit request. The engine embeds a CommitReq in
// its pooled transaction descriptor and points Tx back at the descriptor, so
// publication allocates nothing. A request is owned by its submitter until
// the publish CAS, by the leader from drain until Finish, and by the
// submitter again after Done reports true — Finish/Done carry the
// release/acquire pair that makes the leader's writes to the descriptor
// (orders, stats, abort reason) visible to the submitter.
type CommitReq struct {
	// Tx is the engine's transaction descriptor.
	Tx any
	// OK is the commit outcome, written by the leader before Finish.
	OK bool

	// next links the Treiber stack; it is synchronized by the stack head's
	// CAS/Swap and must not be touched after publication until drained.
	next *CommitReq
	done atomic.Uint32
}

// Reset readies the request for publication on behalf of tx. It must be
// called before every Submit (requests are reused across a descriptor's
// pooled lifetimes).
func (r *CommitReq) Reset(tx any) {
	r.Tx = tx
	r.OK = false
	r.next = nil
	r.done.Store(0)
}

// Finish resolves the request with the commit outcome. Leader-side: every
// write to the underlying descriptor must happen before Finish, because the
// submitter may recycle the descriptor the moment Done reports true.
func (r *CommitReq) Finish(ok bool) {
	r.OK = ok
	r.done.Store(1)
}

// Done reports whether a leader has resolved the request.
func (r *CommitReq) Done() bool { return r.done.Load() == 1 }

// BatchHooks are the combiner's fault points, exercised by internal/chaos:
// LeaderStall runs at the start of every leader drain session (a descheduled
// leader — followers must tolerate it), and SplitBatch may shrink a
// prospective batch of n members to fewer (forcing the spill/re-round paths).
// A nil hook injects nothing.
type BatchHooks struct {
	LeaderStall func()
	SplitBatch  func(n int) int
}

// combinerStripe is one padded publication stack.
type combinerStripe struct {
	head atomic.Pointer[CommitReq]
	_    [128 - 8]byte
}

// Combiner is the striped flat-combining queue. One Combiner serves one
// engine instance; all of that engine's update commits flow through it, which
// is what makes the leader the engine's only commit-lock acquirer.
type Combiner struct {
	maxBatch int
	hooks    *BatchHooks

	stripes [combinerStripes]combinerStripe

	// mu elects the leader. The commit callback always runs under it, so the
	// engine may keep per-batch scratch state on its TM without further
	// locking; scratch is the combiner's own drain buffer under the same rule.
	mu      sync.Mutex
	scratch []*CommitReq
}

// NewCombiner returns a combiner splitting batches at maxBatch members
// (0 selects DefaultMaxBatch). hooks may be nil.
func NewCombiner(maxBatch int, hooks *BatchHooks) *Combiner {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	return &Combiner{maxBatch: maxBatch, hooks: hooks}
}

// Submit publishes req on a stripe and waits until some leader — possibly
// this caller — resolves it. commit receives each drained batch (at most
// maxBatch requests) and must Finish every request it is handed, exactly
// once. stripe spreads publication (any value; the caller's descriptor-sticky
// shard index is ideal). It returns the commit outcome and whether the commit
// was performed by another goroutine's leader session (the flat-combining
// handoff).
func (c *Combiner) Submit(req *CommitReq, stripe int, commit func(batch []*CommitReq)) (ok, handoff bool) {
	h := &c.stripes[stripe&(combinerStripes-1)].head
	for {
		old := h.Load()
		req.next = old
		if h.CompareAndSwap(old, req) {
			break
		}
	}
	for spins := 0; ; spins++ {
		if req.Done() {
			return req.OK, true
		}
		if c.mu.TryLock() {
			c.lead(commit)
			c.mu.Unlock()
			// The drain loop only returns once every stripe is empty, and our
			// request was published before the lock was won, so it has been
			// resolved — by us, or by the previous leader racing the TryLock.
			return req.OK, false
		}
		if spins < submitSpins {
			runtime.Gosched()
		} else {
			time.Sleep(submitNap)
		}
	}
}

// lead drains every stripe and commits the accumulated requests, repeating
// until a full sweep finds nothing — requests published while a batch was
// committing are picked up by the same leader session rather than waiting for
// their submitters to win the lock.
func (c *Combiner) lead(commit func(batch []*CommitReq)) {
	if c.hooks != nil && c.hooks.LeaderStall != nil {
		c.hooks.LeaderStall()
	}
	for {
		buf := c.scratch[:0]
		for i := range c.stripes {
			for r := c.stripes[i].head.Swap(nil); r != nil; r = r.next {
				buf = append(buf, r)
			}
		}
		if len(buf) == 0 {
			return
		}
		for off := 0; off < len(buf); {
			n := len(buf) - off
			if n > c.maxBatch {
				n = c.maxBatch
			}
			if c.hooks != nil && c.hooks.SplitBatch != nil {
				if m := c.hooks.SplitBatch(n); m >= 1 && m < n {
					n = m
				}
			}
			commit(buf[off : off+n])
			off += n
		}
		// Drop the drained descriptors before the next sweep: a resolved
		// request may be recycled by its submitter at any time, and scratch
		// must not pin it (or its engine) beyond the batch that resolved it.
		clear(buf)
		c.scratch = buf[:0]
	}
}

// BatchCharge accumulates version-budget installs across one batch so the
// engine charges its VersionBudget once per batch instead of once per
// version — the batched analogue of the per-install charge (DESIGN.md §11).
type BatchCharge struct {
	Count, Bytes int64
}

// Add records n installed versions totalling approximately bytes.
func (c *BatchCharge) Add(n, bytes int64) {
	c.Count += n
	c.Bytes += bytes
}

// Flush charges the accumulated installs to b (nil b, or an empty charge,
// is a no-op) and resets the accumulator.
func (c *BatchCharge) Flush(b *VersionBudget) {
	if b != nil && c.Count != 0 {
		b.Install(c.Count, c.Bytes)
	}
	c.Count, c.Bytes = 0, 0
}
