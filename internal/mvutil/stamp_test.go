package mvutil

import (
	"sync"
	"testing"
)

func TestShardedStampRaiseMax(t *testing.T) {
	var s ShardedStamp
	if got := s.Max(); got != 0 {
		t.Fatalf("zero-value Max = %d, want 0", got)
	}
	if r := s.Raise(3, 10); r != 0 {
		t.Fatalf("uncontended Raise reported %d retries", r)
	}
	if got := s.Max(); got != 10 {
		t.Fatalf("Max = %d, want 10", got)
	}
	// A lower raise on the same shard is a no-op.
	s.Raise(3, 5)
	if got := s.Max(); got != 10 {
		t.Fatalf("Max after lower raise = %d, want 10", got)
	}
	// A raise on a different shard contributes to the maximum.
	s.Raise(7, 42)
	if got := s.Max(); got != 42 {
		t.Fatalf("Max across shards = %d, want 42", got)
	}
	// Home shards wrap modulo StampShards.
	s.Raise(3+StampShards, 50)
	if got := s.shards[3].v.Load(); got != 50 {
		t.Fatalf("wrapped raise landed at %d, want 50 in shard 3", got)
	}
}

func TestShardedStampSeed(t *testing.T) {
	var s ShardedStamp
	s.Raise(0, 99)
	s.Seed(7)
	for i := range s.shards {
		want := uint64(7)
		if i == 0 {
			want = 99 // Seed never lowers a shard
		}
		if got := s.shards[i].v.Load(); got != want {
			t.Fatalf("shard %d = %d, want %d", i, got, want)
		}
	}
	if got := s.Max(); got != 99 {
		t.Fatalf("Max after seed = %d, want 99", got)
	}
}

// TestShardedStampConcurrentMax checks the monotone-maximum property under
// concurrency: after all raises complete, Max is the global maximum raised,
// regardless of which home shards the raisers used.
func TestShardedStampConcurrentMax(t *testing.T) {
	var s ShardedStamp
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(home int) {
			defer wg.Done()
			for i := 1; i <= perWorker; i++ {
				// Two raisers per home shard (home and home+workers wrap onto
				// distinct shards only if StampShards > workers; force real
				// CAS contention by halving the shard space).
				s.Raise(home%4, uint64(home*perWorker+i))
			}
		}(w)
	}
	wg.Wait()
	want := uint64((workers-1)*perWorker + perWorker)
	if got := s.Max(); got != want {
		t.Fatalf("Max = %d, want %d", got, want)
	}
}
