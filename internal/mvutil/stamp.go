package mvutil

import "sync/atomic"

// ShardedStamp is a scalable CAS-maximum register for semi-visible read
// stamps (DESIGN.md §12). The plain implementation — one shared atomic
// advanced by every reader — makes each read of a hot variable a write to the
// same cache line, which ping-pongs across every reading core: exactly the
// visible-reader scalability cliff semi-visible reads were meant to avoid.
//
// A ShardedStamp splits the register into StampShards cache-line-padded
// slots. A raiser CAS-maxes only its home shard (a sticky, per-descriptor
// assignment, the same scheme as ActiveSet slots and Stats stripes), so
// concurrent raisers on different shards never touch the same line. An
// observer takes the maximum over all shards; since each shard is
// individually monotone, the maximum is monotone and equals the aggregate
// maximum of every raise that completed before the scan — the only property
// the semi-visible read argument needs (the raise/observe race argument is
// per-location and carries over shard-wise; see DESIGN.md §12).
//
// The type is sized for *contended* stamps: StampShards padded lines are 1
// KiB per instance, far too heavy to embed in every variable. Engines keep a
// single inline atomic stamp per variable and promote it to a ShardedStamp
// only when raisers actually collide (see core's twvar.semiVisibleRead);
// after promotion the inline stamp stays valid and observers fold it into
// the maximum, so no raise is ever lost across the transition.
type ShardedStamp struct {
	shards [StampShards]stampLine
}

// StampShards is the stripe count; must be a power of two (home-shard choice
// masks with StampShards-1).
const StampShards = 16

// stampLine pads each shard out to 128 bytes — two cache lines, the
// destructive-interference granularity with adjacent-line prefetching — so
// raisers on neighboring shards do not false-share.
type stampLine struct {
	v atomic.Uint64
	_ [120]byte
}

// Raise advances the home shard of the given sticky assignment to at least
// ts via a CAS maximum. It returns the number of failed CAS attempts (0 on
// the uncontended path); callers feed that into the read-stamp contention
// counters. Any shard value may only grow, so a raise that observes a value
// at or above ts is already satisfied.
func (s *ShardedStamp) Raise(home int, ts uint64) (retries uint64) {
	sh := &s.shards[home&(StampShards-1)].v
	for {
		last := sh.Load()
		if last >= ts || sh.CompareAndSwap(last, ts) {
			return retries
		}
		retries++
	}
}

// Max returns the maximum over all shards: the highest stamp any completed
// raise has published. Committers call it at the anti-dependency check sites.
func (s *ShardedStamp) Max() uint64 {
	var max uint64
	for i := range s.shards {
		if v := s.shards[i].v.Load(); v > max {
			max = v
		}
	}
	return max
}

// Seed initializes every shard to at least ts. Engines call it once at
// promotion time, before publishing the ShardedStamp, so the sharded maximum
// starts no lower than the inline stamp it extends (the inline stamp remains
// part of the observed maximum regardless; seeding just keeps the shard
// values meaningful in isolation for tests and debugging).
func (s *ShardedStamp) Seed(ts uint64) {
	for i := range s.shards {
		if s.shards[i].v.Load() < ts {
			s.shards[i].v.Store(ts)
		}
	}
}
