package mvutil

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestClockDomainInit(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {16, 16},
		{33, 64}, {64, 64}, {100, 64},
	}
	for _, c := range cases {
		var d ClockDomain
		if got := d.Init(c.in, 1); got != c.want || d.Shards() != c.want {
			t.Errorf("Init(%d) = %d (Shards %d), want %d", c.in, got, d.Shards(), c.want)
		}
		for s := 0; s < d.Shards(); s++ {
			if d.Load(s) != 1 {
				t.Fatalf("Init(%d): cell %d = %d, want 1", c.in, s, d.Load(s))
			}
		}
	}
}

func TestClockDomainShardOf(t *testing.T) {
	var d ClockDomain
	d.Init(4, 1)
	seen := map[int]int{}
	for id := uint64(1); id <= 16; id++ {
		s := d.ShardOf(id)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf(%d) = %d out of range", id, s)
		}
		seen[s]++
	}
	for s := 0; s < 4; s++ {
		if seen[s] != 4 {
			t.Errorf("round-robin imbalance: shard %d got %d of 16 ids", s, seen[s])
		}
	}
}

func TestClockDomainRaise(t *testing.T) {
	var d ClockDomain
	d.Init(2, 1)
	if r := d.Raise(0, 10); r != 0 || d.Load(0) != 10 {
		t.Fatalf("Raise(0,10): retries %d cell %d", r, d.Load(0))
	}
	// Raising below the current value is a no-op.
	if r := d.Raise(0, 5); r != 0 || d.Load(0) != 10 {
		t.Fatalf("Raise(0,5) after 10: retries %d cell %d", r, d.Load(0))
	}
	if d.Load(1) != 1 {
		t.Fatalf("Raise leaked into other shard: %d", d.Load(1))
	}
}

func TestClockDomainAdvanceCross(t *testing.T) {
	var d ClockDomain
	d.Init(4, 1)
	d.Add(1, 41) // shard 1 is ahead at 42
	wv, _ := d.AdvanceCross(0b0110)
	if wv != 43 {
		t.Fatalf("AdvanceCross max-fold: wv = %d, want 43", wv)
	}
	if d.Load(1) != 43 || d.Load(2) != 43 {
		t.Fatalf("touched cells not raised: %d, %d", d.Load(1), d.Load(2))
	}
	if d.Load(0) != 1 || d.Load(3) != 1 {
		t.Fatalf("untouched cells moved: %d, %d", d.Load(0), d.Load(3))
	}
	// A second draw over the same shards strictly exceeds the first.
	wv2, _ := d.AdvanceCross(0b0110)
	if wv2 <= wv {
		t.Fatalf("second cross draw %d not above first %d", wv2, wv)
	}
}

// TestClockDomainSnapshotConsistency hammers the seqlock with concurrent
// cross-shard draws and asserts the sharp consistency invariant: shards 2 and
// 3 are advanced only inside fences, and every fence leaves them equal — so a
// consistent cut must never show them apart. Shards 0 and 1 take plain
// single-shard traffic at the same time to keep the cells moving.
func TestClockDomainSnapshotConsistency(t *testing.T) {
	var d ClockDomain
	d.Init(4, 1)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for !stop.Load() {
				d.Add(s, 1)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			d.AdvanceCross(0b1100)
		}
	}()

	vec := make([]uint64, 0, 4)
	for i := 0; i < 20000; i++ {
		vec = d.Snapshot(vec)
		if len(vec) != 4 {
			t.Fatalf("snapshot length %d", len(vec))
		}
		if vec[2] != vec[3] {
			t.Fatalf("inconsistent cut: fence-only shards differ: %v", vec)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestClockDomainFenceBracket exercises the two-step read primitive the
// engines' lazy snapshot extension uses: a pair of cell reads bracketed by an
// unchanged fence sequence is a consistent cut.
func TestClockDomainFenceBracket(t *testing.T) {
	var d ClockDomain
	d.Init(4, 1)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			d.AdvanceCross(0b1100)
		}
	}()

	consistent := 0
	for i := 0; i < 50000; i++ {
		x0 := d.FenceSample()
		c2 := d.Load(2)
		c3 := d.Load(3)
		if d.FenceStable(x0) {
			consistent++
			if c2 != c3 {
				t.Fatalf("stable bracket but inconsistent pair: %d != %d", c2, c3)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if consistent == 0 {
		t.Skip("fence never stable across the bracket; cannot assert")
	}
}

func TestClockDomainMaxSum(t *testing.T) {
	var d ClockDomain
	d.Init(4, 1)
	d.Add(2, 9)
	if d.Max() != 10 {
		t.Fatalf("Max = %d, want 10", d.Max())
	}
	if d.Sum() != 13 { // 1+1+10+1
		t.Fatalf("Sum = %d, want 13", d.Sum())
	}
	var one ClockDomain
	one.Init(1, 1)
	one.Add(0, 5)
	if one.Sum() != 6 || one.Max() != 6 {
		t.Fatalf("K=1 Sum/Max = %d/%d, want 6/6", one.Sum(), one.Max())
	}
}

// TestClockDomainSeedRace is the race-pinning test for recovery fast-forward:
// Raise (the CAS-max seed loop) racing plain Add must never lose an update —
// the cell ends at least at the seed value plus every fetch-add that landed
// after the seed won.
func TestClockDomainSeedRace(t *testing.T) {
	var d ClockDomain
	d.Init(2, 1)
	const adds = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < adds; i++ {
			d.Add(0, 1)
		}
	}()
	go func() {
		defer wg.Done()
		for v := uint64(0); v < 3000; v++ {
			d.Raise(0, v)
		}
	}()
	wg.Wait()
	// Every Add must be preserved: the final value is at least 1+adds, and at
	// least the largest seed.
	if got := d.Load(0); got < 1+adds || got < 2999 {
		t.Fatalf("lost updates: cell = %d, want >= %d and >= 2999", got, 1+adds)
	}
}

// unpaddedClock is the control for BenchmarkClockContention: K counters
// packed on adjacent words, the layout the padded clockCell exists to avoid.
type unpaddedClock struct {
	cells [MaxClockShards]atomic.Uint64
}

// BenchmarkClockContention measures the false-sharing gap between padded and
// unpadded per-shard clock cells under parallel single-shard advances. On a
// multi-core host the unpadded variant ships every increment to every other
// core; the padded variant is the satellite fix proving the clock belongs on
// its own cache line independent of the sharding tentpole.
func BenchmarkClockContention(b *testing.B) {
	shards := 8
	b.Run("padded", func(b *testing.B) {
		var d ClockDomain
		d.Init(shards, 1)
		var next atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			s := int(next.Add(1)-1) % shards
			for pb.Next() {
				d.Add(s, 1)
			}
		})
	})
	b.Run("unpadded", func(b *testing.B) {
		var u unpaddedClock
		var next atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			s := int(next.Add(1)-1) % shards
			for pb.Next() {
				u.cells[s].Add(1)
			}
		})
	})
	b.Run("global", func(b *testing.B) {
		var c atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Add(1)
			}
		})
	})
	_ = runtime.NumCPU()
}
