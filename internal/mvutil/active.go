// Package mvutil provides small utilities shared by the multi-versioned
// engines (TWM in internal/core and JVSTM in internal/jvstm): an active
// transaction registry used to bound version garbage collection.
package mvutil

import (
	"sync"
	"sync/atomic"
)

// ActiveSet tracks the start timestamps of in-flight transactions so a
// version garbage collector can compute the oldest snapshot any active
// transaction may still read. It is sharded to keep registration off the
// global contention path.
type ActiveSet struct {
	next   atomic.Uint64
	shards [activeShards]activeShard
}

const activeShards = 16

type activeShard struct {
	mu    sync.Mutex
	slots map[*Slot]struct{}
}

// Slot is one registration; slots are single-use.
type Slot struct {
	start uint64
	shard *activeShard
}

// NewActiveSet returns an initialized registry.
func NewActiveSet() *ActiveSet {
	a := &ActiveSet{}
	for i := range a.shards {
		a.shards[i].slots = make(map[*Slot]struct{})
	}
	return a
}

// Register records a transaction whose start timestamp will be at least
// start. It must be called before the transaction samples its snapshot, so
// the GC bound can never overtake a live snapshot.
func (a *ActiveSet) Register(start uint64) *Slot {
	sh := &a.shards[a.next.Add(1)%activeShards]
	slot := &Slot{start: start, shard: sh}
	sh.mu.Lock()
	sh.slots[slot] = struct{}{}
	sh.mu.Unlock()
	return slot
}

// Unregister removes a finished transaction. Safe to call with nil.
func (a *ActiveSet) Unregister(slot *Slot) {
	if slot == nil {
		return
	}
	sh := slot.shard
	sh.mu.Lock()
	delete(sh.slots, slot)
	sh.mu.Unlock()
}

// MinStart returns the smallest registered start timestamp, or fallback when
// nothing is registered.
func (a *ActiveSet) MinStart(fallback uint64) uint64 {
	min := fallback
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		for slot := range sh.slots {
			if slot.start < min {
				min = slot.start
			}
		}
		sh.mu.Unlock()
	}
	return min
}
